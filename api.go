package bayestree

import (
	"fmt"
	"io"
	"os"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
	"bayestree/internal/eval"
	"bayestree/internal/persist"
	"bayestree/internal/stream"
)

// Re-exported core types: see the internal/core package for full
// documentation of each.
type (
	// Config holds the Bayes tree structural parameters (fanout and leaf
	// capacities, kernel, reinsertion policy).
	Config = core.Config
	// Tree is a Bayes tree over one class population.
	Tree = core.Tree
	// Classifier is the per-class-forest anytime classifier with the qbk
	// refinement strategy.
	Classifier = core.Classifier
	// ClassifierOptions select descent strategy, priority measure and the
	// qbk parameter k.
	ClassifierOptions = core.ClassifierOptions
	// Query is an in-progress anytime classification.
	Query = core.Query
	// Cursor is an in-progress anytime density query on a single tree.
	Cursor = core.Cursor
	// Strategy is the tree descent order (global best, breadth- or
	// depth-first).
	Strategy = core.Strategy
	// Priority is the global-descent ordering measure.
	Priority = core.Priority
	// MultiTree is the single-tree multi-class variant of Section 4.1.
	MultiTree = core.MultiTree
	// MultiOptions configure the multi-class tree.
	MultiOptions = core.MultiOptions
	// DecayOptions configure exponential forgetting for evolving
	// streams: Lambda is the per-epoch fade exponent (weights decay as
	// 2^(−λ·Δe), Section 4.2) and MinWeight the maintenance sweep's
	// pruning floor. Enable with Classifier.EnableDecay (or
	// MultiTree.EnableDecay), advance logical time with AdvanceDecay.
	DecayOptions = core.DecayOptions
	// SweepStats summarise one decay maintenance sweep.
	SweepStats = core.SweepStats
	// Dataset is a labelled vector data set.
	Dataset = dataset.Dataset
	// CSVOptions control CSV parsing.
	CSVOptions = dataset.CSVOptions
	// SyntheticSpec parameterises synthetic data generation.
	SyntheticSpec = dataset.SyntheticSpec
	// Curve is an anytime accuracy curve.
	Curve = eval.Curve
	// CurveOptions parameterise anytime accuracy measurement.
	CurveOptions = eval.CurveOptions
	// StreamItem is one stream element for the online runner.
	StreamItem = stream.Item
	// StreamResult summarises a stream run.
	StreamResult = stream.Result
	// Budgeter converts available time into node budgets.
	Budgeter = stream.Budgeter
)

// Descent strategies and priorities (Section 2.2).
const (
	DescentGlobal         = core.DescentGlobal
	DescentBFT            = core.DescentBFT
	DescentDFT            = core.DescentDFT
	PriorityProbabilistic = core.PriorityProbabilistic
	PriorityGeometric     = core.PriorityGeometric
)

// DefaultConfig returns the default tree parameters for the given
// dimensionality (an emulated 2 KiB page).
func DefaultConfig(dim int) Config { return core.DefaultConfig(dim) }

// LoadCSV reads a labelled CSV data set from disk.
func LoadCSV(path string, opts CSVOptions) (*Dataset, error) {
	return dataset.LoadCSV(path, opts)
}

// Synthetic generates a seeded synthetic data set.
func Synthetic(spec SyntheticSpec) (*Dataset, error) { return dataset.Synthetic(spec) }

// TrainOptions configure Train.
type TrainOptions struct {
	// Loader names the bulk-loading strategy: "emtopdown" (default, the
	// paper's best), "hilbert", "zcurve", "str", "goldberger", "vsample"
	// or "iterative".
	Loader string
	// Config overrides the tree parameters; nil means DefaultConfig.
	Config *Config
	// Classifier sets descent and qbk options (zero value = the paper's
	// best: global best-first descent, probabilistic priority, k = 2).
	Classifier ClassifierOptions
}

// Train bulk loads one Bayes tree per class of the data set and returns
// the anytime classifier.
func Train(ds *Dataset, opts TrainOptions) (*Classifier, error) {
	if ds == nil {
		return nil, fmt.Errorf("bayestree: nil dataset")
	}
	name := opts.Loader
	if name == "" {
		name = "emtopdown"
	}
	loader, ok := bulkload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bayestree: unknown loader %q (have %v)", name, bulkload.Names())
	}
	cfgFn := core.DefaultConfig
	if opts.Config != nil {
		cfg := *opts.Config
		cfgFn = func(int) core.Config { return cfg }
	}
	return eval.TrainForest(ds, loader, cfgFn, opts.Classifier)
}

// AnytimeCurve measures the anytime accuracy of a bulk-loading strategy on
// a data set with k-fold cross validation — the paper's evaluation
// protocol.
func AnytimeCurve(ds *Dataset, loaderName string, opts CurveOptions) (*Curve, error) {
	loader, ok := bulkload.ByName(loaderName)
	if !ok {
		return nil, fmt.Errorf("bayestree: unknown loader %q (have %v)", loaderName, bulkload.Names())
	}
	return eval.AnytimeCurve(ds, loader, opts)
}

// RunStream feeds items through the classifier under an arrival process
// with the given mean rate (objects/second, Poisson gaps), classifying
// each with the node budget the gap allows and learning labelled items
// online.
func RunStream(clf *Classifier, items []StreamItem, rate float64, budgeter Budgeter, seed int64) (*StreamResult, error) {
	return stream.Run(clf, items, stream.Poisson{Rate: rate}, budgeter, seed)
}

// RunStreamBatch is RunStream with windowed parallel classification: each
// window of the given size is classified by a pool of workers (per-object
// budgets drawn exactly as in RunStream), then the window's labelled items
// are learned in arrival order. window ≤ 1 reproduces RunStream exactly;
// larger windows trade label freshness within a window for throughput.
func RunStreamBatch(clf *Classifier, items []StreamItem, rate float64, budgeter Budgeter, seed int64, window, workers int) (*StreamResult, error) {
	return stream.RunBatch(clf, items, stream.Poisson{Rate: rate}, budgeter, seed, window, workers)
}

// BatchClassify classifies every object of xs with the given node budget
// using a pool of workers (workers ≤ 0 = GOMAXPROCS) and returns the
// predictions in input order. Classification is read-only, so any number
// of workers may share one classifier; per-worker query and cursor state
// is pooled, making steady-state batch serving allocation-free. Use
// Classifier.Classify for single objects and this for throughput-bound
// batches. Do not Learn on the classifier while a batch is in flight.
func BatchClassify(clf *Classifier, xs [][]float64, budget, workers int) []int {
	return clf.ClassifyBatch(xs, budget, workers)
}

// Encode writes a versioned binary snapshot of the trained classifier:
// configuration, tree topology, leaf observations and every entry's
// cluster feature, with float64 values preserved bit-exactly and a
// checksum over the payload. Decode rebuilds the derived state (frozen
// Gaussians, priors) from the stored features, so the reloaded model
// classifies digit-identically to the saved one. See internal/persist
// for the format.
func Encode(w io.Writer, clf *Classifier) error { return persist.EncodeClassifier(w, clf) }

// Decode reads a classifier snapshot written by Encode (or Save). It
// rejects truncated, corrupted and incompatible-version snapshots with
// descriptive errors before building any model state.
func Decode(r io.Reader) (*Classifier, error) { return persist.DecodeClassifier(r) }

// Save writes a snapshot of the trained classifier to path, durably and
// atomically: the snapshot is written to a temporary file in the same
// directory, fsynced and renamed into place (with a directory fsync),
// so a crash mid-save leaves either the previous snapshot or the
// complete new one at path — never a torn file.
func Save(clf *Classifier, path string) error {
	err := persist.WriteFileAtomic(path, func(w io.Writer) error {
		return persist.EncodeClassifier(w, clf)
	})
	if err != nil {
		return fmt.Errorf("bayestree: save: %w", err)
	}
	return nil
}

// Load reads a classifier snapshot written by Save and warm-starts it:
// frozen per-entry caches are rebuilt from the stored cluster features,
// so the loaded classifier is immediately serving-ready and classifies
// digit-identically to the model that was saved.
func Load(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bayestree: load: %w", err)
	}
	defer f.Close()
	clf, err := persist.DecodeClassifier(f)
	if err != nil {
		return nil, fmt.Errorf("bayestree: load %s: %w", path, err)
	}
	return clf, nil
}

// LoaderNames lists the available bulk-loading strategies.
func LoaderNames() []string { return bulkload.Names() }
