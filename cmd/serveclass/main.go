// Command serveclass runs the anytime classification server: a sharded
// set of multi-class Bayes trees served over HTTP with per-request
// anytime budgets, a global node-read admission controller, online
// learning via /insert, and snapshot-based warm starts.
//
// Start from a named data set, sharded four ways, with an admission
// capacity of 200k node reads per second:
//
//	serveclass -dataset covertype -scale 0.05 -shards 4 -nps 200000
//
// Warm-start from (and persist back to) a snapshot:
//
//	serveclass -snapshot model.btsn -addr :8080
//
// Track concept drift with exponential forgetting: weights fade by
// 2^(-λ) per decay epoch (-decay-every wall-clock time each), and a
// background maintenance sweep prunes observations and subtrees whose
// decayed weight falls below -min-weight, bounding the model:
//
//	serveclass -dataset covertype -decay-lambda 0.1 -decay-every 30s -min-weight 0.05
//
// Run a read-only replica that tails a primary's WAL stream, serves
// follower reads with a reported staleness bound, and can be promoted
// (SIGHUP or -promote-file) when the primary dies:
//
//	serveclass -wal-dir /data/replica -follow http://primary:8080
//
// Endpoints: POST /classify ({"x":[...],"budget":25}; NDJSON body for
// batch streaming), POST /insert ({"x":[...],"label":2}; NDJSON for
// bulk ingest), GET /stats, GET /healthz (liveness), GET /readyz
// (readiness), GET /replicate (replication stream). On SIGTERM or
// SIGINT the server drains gracefully: /readyz flips to 503 so load
// balancers stop routing here, in-flight requests finish within the
// -drain timeout, and the model is snapshotted back to -snapshot if
// set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/dataset"
	"bayestree/internal/persist"
	"bayestree/internal/registry"
	"bayestree/internal/replica"
	"bayestree/internal/serve"
	"bayestree/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		shards   = flag.Int("shards", 4, "number of model shards (ignored when warm-starting from -snapshot)")
		snapshot = flag.String("snapshot", "", "snapshot path: warm-start from it when present, write it back on drain")
		dsName   = flag.String("dataset", "", "bootstrap data set when no snapshot exists (pendigits|letter|gender|covertype)")
		scale    = flag.Float64("scale", 0.05, "bootstrap data set scale in (0,1]")
		emptyDim = flag.Int("empty-dim", 0, "bootstrap an empty model of this dimensionality when no snapshot or dataset is given — the model is built entirely by ingest traffic")
		emptyLab = flag.String("empty-labels", "0,1,2", "comma-separated class label set of an -empty-dim bootstrap")
		seed     = flag.Int64("seed", 42, "bootstrap shuffle seed")
		budget   = flag.Int("budget", 32, "default per-request node budget when the request sets none")
		maxB     = flag.Int("max-budget", server.DefaultMaxBudget, "hard cap on any request's node budget")
		nps      = flag.Float64("nps", 0, "admission capacity in node reads/second across all requests (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "admission bucket capacity in node reads (0 = max(nps, max-budget))")
		strategy = flag.String("strategy", "glo", "descent strategy glo|bft|dft")
		priority = flag.String("priority", "prob", "descent priority prob|geom")
		pooled   = flag.Bool("pooled", false, "bootstrap trees with pooled per-entry variance")
		entropy  = flag.Bool("entropy", false, "bootstrap trees with entropy-weighted descent priority")
		drain    = flag.Duration("drain", 10*time.Second, "graceful drain timeout on SIGTERM/SIGINT")
		decayL   = flag.Float64("decay-lambda", 0, "concept-drift forgetting rate λ: weights fade 2^(-λ) per decay epoch (0 = append-only, never forget)")
		minW     = flag.Float64("min-weight", 0.05, "maintenance pruning floor: observations whose decayed weight falls below it are forgotten (with -decay-lambda > 0)")
		decayDur = flag.Duration("decay-every", time.Minute, "wall-clock length of one decay epoch for the background maintenance sweep (with -decay-lambda > 0)")
		walDir   = flag.String("wal-dir", "", "durability directory: per-shard write-ahead log + checkpoint snapshots; inserts survive crashes via snapshot+replay recovery")
		fsyncDur = flag.Duration("fsync-every", 100*time.Millisecond, "WAL group-commit fsync interval; 0 fsyncs every insert (with -wal-dir)")
		follow   = flag.String("follow", "", "run as a read-only replica of the primary at this base URL, e.g. http://host:8080 (requires -wal-dir; writes answer 307 to the primary)")
		promFile = flag.String("promote-file", "", "promote this replica to primary when the file appears (SIGHUP promotes too; with -follow)")
		replAddr = flag.String("replicate-addr", "", "serve the replication stream (/replicate) on a second listener at this address (with -wal-dir)")

		tenantsDir   = flag.String("tenants-dir", "", "multi-tenant mode: serve a registry of named models rooted at this directory (/t/{tenant}/classify, …); excludes -snapshot/-dataset/-wal-dir/-follow")
		maxResident  = flag.Int("max-resident", 0, "multi-tenant: resident-model cap; LRU tenants beyond it are checkpointed and paged out (0 = registry default)")
		maxResBytes  = flag.Int64("max-resident-bytes", 0, "multi-tenant: additional resident-memory cap in estimated bytes (0 = none)")
		tenantDim    = flag.Int("tenant-default-dim", 3, "multi-tenant: dimensionality of tenants created on first write")
		tenantLabels = flag.String("tenant-default-labels", "0,1,2", "multi-tenant: comma-separated label set of tenants created on first write")
		tenantShards = flag.Int("tenant-default-shards", 1, "multi-tenant: shard count of tenants created on first write")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: serveclass [flags]\n\n"+
				"Serve anytime classification over HTTP from a sharded Bayes tree model.\n"+
				"Model source: -snapshot (warm start), -dataset (bootstrap), or -empty-dim\n"+
				"(start empty and let ingest traffic build the model); one is required.\n"+
				"-decay-lambda enables exponential forgetting (concept-drift tracking with\n"+
				"bounded memory); -decay-every sets the epoch length and -min-weight the\n"+
				"maintenance sweep's pruning floor.\n"+
				"-wal-dir makes ingest durable: every insert is appended to a per-shard\n"+
				"write-ahead log (group-committed every -fsync-every), recovery replays the\n"+
				"log tail over the latest checkpoint, and a drain checkpoints + truncates.\n"+
				"-follow runs a read-only replica of a primary: it bootstraps from the\n"+
				"primary's checkpoint, tails its WAL stream, and can be promoted with\n"+
				"SIGHUP or -promote-file when the primary dies.\n"+
				"-tenants-dir serves a multi-tenant model registry instead: named models\n"+
				"at /t/{tenant}/classify etc., created on first write (or PUT /t/{tenant}),\n"+
				"each durable in its own subdirectory, LRU-paged to disk beyond\n"+
				"-max-resident; the legacy routes alias the 'default' tenant.\n\n"+
				"Endpoints:\n"+
				"  POST /classify   {\"x\":[...],\"budget\":25}; NDJSON body streams a batch\n"+
				"  POST /insert     {\"x\":[...],\"label\":2}; NDJSON body bulk-ingests\n"+
				"  GET  /stats      shard sizes, admission, WAL and replication counters\n"+
				"  GET  /healthz    liveness: 200 once listening\n"+
				"  GET  /readyz     readiness: 503 while recovering or draining\n"+
				"  GET  /replicate  replication stream (checkpoint + live WAL tail)\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		usageErrorf("unexpected arguments %v", flag.Args())
	}

	strat, ok := parseStrategy(*strategy)
	if !ok {
		usageErrorf("unknown strategy %q (want glo|bft|dft)", *strategy)
	}
	prio, ok := parsePriority(*priority)
	if !ok {
		usageErrorf("unknown priority %q (want prob|geom)", *priority)
	}
	cfg := server.Config{
		DefaultBudget:  *budget,
		MaxBudget:      *maxB,
		NodesPerSecond: *nps,
		Burst:          *burst,
		Query:          core.ClassifierOptions{Strategy: strat, Priority: prio},
	}
	if *decayL > 0 {
		decay := core.DecayOptions{Lambda: *decayL, MinWeight: *minW}
		if err := decay.Validate(); err != nil {
			usageErrorf("%v", err)
		}
		if *decayDur <= 0 {
			usageErrorf("-decay-every must be > 0 with -decay-lambda set, got %v", *decayDur)
		}
		cfg.Decay = decay
		cfg.DecayEvery = *decayDur
	} else if *decayL < 0 {
		usageErrorf("-decay-lambda must be ≥ 0, got %v", *decayL)
	}

	if *tenantsDir != "" {
		if *snapshot != "" || *dsName != "" || *walDir != "" || *follow != "" || *replAddr != "" {
			usageErrorf("-tenants-dir is exclusive with -snapshot/-dataset/-wal-dir/-follow/-replicate-addr")
		}
		if *fsyncDur < 0 {
			usageErrorf("-fsync-every must be ≥ 0, got %v", *fsyncDur)
		}
		labels, err := parseLabelList(*tenantLabels)
		if err != nil {
			usageErrorf("-tenant-default-labels: %v", err)
		}
		defaults := registry.TenantConfig{
			Dim:           *tenantDim,
			Labels:        labels,
			Shards:        *tenantShards,
			DefaultBudget: *budget,
			MaxBudget:     *maxB,
		}
		if *decayL > 0 {
			defaults.DecayLambda = *decayL
			defaults.DecayMinWeight = *minW
			defaults.DecayEveryMS = (*decayDur).Milliseconds()
		}
		runRegistry(*addr, *drain, registry.Options{
			Dir:              *tenantsDir,
			MaxResident:      *maxResident,
			MaxResidentBytes: *maxResBytes,
			NodesPerSecond:   *nps,
			FsyncEvery:       *fsyncDur,
			Defaults:         defaults,
		})
		return
	}
	if *maxResident != 0 || *maxResBytes != 0 {
		usageErrorf("-max-resident/-max-resident-bytes require -tenants-dir")
	}

	if *follow != "" {
		if *walDir == "" {
			usageErrorf("-follow requires -wal-dir (the replica's own durable state)")
		}
		if *fsyncDur < 0 {
			usageErrorf("-fsync-every must be ≥ 0, got %v", *fsyncDur)
		}
		runFollower(*addr, *follow, *promFile, *replAddr, *drain,
			server.DurabilityOptions{Dir: *walDir, FsyncEvery: *fsyncDur}, cfg)
		return
	}
	if *promFile != "" {
		usageErrorf("-promote-file only applies to a replica (-follow)")
	}
	if *replAddr != "" && *walDir == "" {
		usageErrorf("-replicate-addr requires -wal-dir (replication ships the WAL)")
	}

	bootstrap := func() (*server.Server, error) {
		return buildServer(*snapshot, *dsName, *scale, *seed, *shards, *emptyDim, *emptyLab, *pooled, *entropy, cfg)
	}
	var s *server.Server
	var err error
	var recoverFn func() error
	if *walDir != "" {
		if *fsyncDur < 0 {
			usageErrorf("-fsync-every must be ≥ 0, got %v", *fsyncDur)
		}
		dopts := server.DurabilityOptions{Dir: *walDir, FsyncEvery: *fsyncDur}
		s, err = server.OpenDurableServer(dopts, cfg, bootstrap)
		if err == nil {
			recoverFn = func() error {
				if err := s.Recover(); err != nil {
					return err
				}
				st := s.Stats()
				log.Printf("recovery complete: %d WAL records replayed (%d torn dropped), generation %d, %d observations",
					st.WALReplayed, st.WALDroppedRecords, st.SnapshotGeneration, st.Observations)
				return nil
			}
		}
	} else {
		s, err = bootstrap()
	}
	if err != nil {
		var ue usageError
		if errors.As(err, &ue) {
			usageErrorf("%v", err)
		}
		log.Fatalf("serveclass: %v", err)
	}
	log.Printf("serving %d observations over %d shards on %s (default budget %d, admission %s, decay %s, wal %s)",
		s.Len(), s.NumShards(), *addr, *budget, admissionDesc(*nps), decayDesc(s, *decayL, *minW, *decayDur), walDesc(*walDir, *fsyncDur))

	app := serve.App{
		Name:         "serveclass",
		Addr:         *addr,
		Handler:      s.Handler(),
		DrainTimeout: *drain,
		Recover:      recoverFn,
		SetDraining:  s.SetDraining,
		Close:        s.Close,
	}
	if *replAddr != "" {
		app.ReplicateAddr = *replAddr
		app.ReplicateHandler = s.ReplicateHandler()
	}
	app.Persist = func() error {
		if *walDir != "" {
			if err := s.Checkpoint(); err != nil {
				return err
			}
			if err := s.CloseDurability(); err != nil {
				return err
			}
			log.Printf("final checkpoint written to %s (%d observations)", *walDir, s.Len())
		}
		if *snapshot != "" {
			if err := saveSnapshot(s, *snapshot); err != nil {
				return err
			}
			log.Printf("snapshot written to %s (%d observations)", *snapshot, s.Len())
		}
		return nil
	}
	if err := serve.Run(app); err != nil {
		log.Fatalf("%v", err)
	}
}

// runRegistry runs the multi-tenant lifecycle: a model registry over
// the tenants directory, served until a drain checkpoints every loaded
// tenant back to disk.
func runRegistry(addr string, drain time.Duration, opts registry.Options) {
	r, err := registry.Open(opts, registry.ClassifyBackend())
	if err != nil {
		log.Fatalf("serveclass: %v", err)
	}
	log.Printf("serving %d tenants (0 resident) from %s on %s (max resident %d, admission %s)",
		r.Tenants(), opts.Dir, addr, r.Stats().MaxResident, admissionDesc(opts.NodesPerSecond))
	app := serve.App{
		Name:         "serveclass",
		Addr:         addr,
		Handler:      r.Handler(),
		DrainTimeout: drain,
		SetDraining:  r.SetDraining,
		Persist: func() error {
			// Drain = checkpoint-all: every loaded tenant is paged out
			// through the eviction path, then the manifest gets its final
			// save.
			if err := r.Close(); err != nil {
				return err
			}
			log.Printf("drained: %d tenants checkpointed to %s", r.Tenants(), opts.Dir)
			return nil
		},
	}
	if err := serve.Run(app); err != nil {
		log.Fatalf("%v", err)
	}
}

// parseLabelList parses the comma-separated -tenant-default-labels set.
func parseLabelList(s string) ([]int, error) {
	var labels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad label %q", part)
		}
		labels = append(labels, v)
	}
	if len(labels) < 2 {
		return nil, fmt.Errorf("need at least two labels, got %v", labels)
	}
	return labels, nil
}

// runFollower runs the replica lifecycle: a Follower over the durable
// directory, a Tailer pumping the primary's stream into it, and the
// serve loop with the promote triggers armed.
func runFollower(addr, primaryURL, promoteFile, replAddr string, drain time.Duration, dopts server.DurabilityOptions, cfg server.Config) {
	f, err := server.NewFollowerServer(dopts, cfg, primaryURL)
	if err != nil {
		log.Fatalf("serveclass: %v", err)
	}
	t := replica.New(f, replica.Options{
		PrimaryURL: primaryURL,
		Workload:   replica.WorkloadClassify,
		Epoch:      f.Epoch,
	})
	t.Start()
	log.Printf("following %s (wal %s); promote with SIGHUP%s", primaryURL, dopts.Dir, promoteHint(promoteFile))
	app := serve.App{
		Name:         "serveclass",
		Addr:         addr,
		Handler:      f.Handler(),
		DrainTimeout: drain,
		SetDraining:  f.SetDraining,
		Close:        f.Close,
		Persist: func() error {
			t.Stop()
			return f.Persist()
		},
		Promote: func() error {
			t.Stop()
			return f.Promote()
		},
		PromoteFile: promoteFile,
	}
	if replAddr != "" {
		app.ReplicateAddr = replAddr
		app.ReplicateHandler = followReplicateHandler(f.Handler())
	}
	if err := serve.Run(app); err != nil {
		log.Fatalf("%v", err)
	}
}

// followReplicateHandler exposes only /replicate of a follower's full
// handler on the replication listener — live once the follower is
// promoted (or for chained replication).
func followReplicateHandler(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/replicate", h)
	return mux
}

// promoteHint describes the promote-file trigger for the startup log.
func promoteHint(path string) string {
	if path == "" {
		return ""
	}
	return fmt.Sprintf(" or by creating %s", path)
}

// walDesc describes the durability mode for the startup log line.
func walDesc(dir string, fsyncEvery time.Duration) string {
	if dir == "" {
		return "off"
	}
	if fsyncEvery == 0 {
		return fmt.Sprintf("%s (fsync per insert)", dir)
	}
	return fmt.Sprintf("%s (group commit %v)", dir, fsyncEvery)
}

// usageError marks configuration mistakes that should print usage and
// exit with status 2 rather than 1.
type usageError string

func (e usageError) Error() string { return string(e) }

// buildServer resolves the model source: an existing snapshot wins,
// otherwise a data set is bootstrapped into empty shards via the same
// hash routing online inserts use.
func buildServer(snapshot, dsName string, scale float64, seed int64, shards, emptyDim int, emptyLabels string, pooled, entropy bool, cfg server.Config) (*server.Server, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err == nil {
			defer f.Close()
			s, err := server.FromSnapshot(f, cfg)
			if err != nil {
				return nil, fmt.Errorf("snapshot %s: %w", snapshot, err)
			}
			log.Printf("warm start from %s: %d shards, %d observations", snapshot, s.NumShards(), s.Len())
			return s, nil
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
		log.Printf("snapshot %s does not exist yet; bootstrapping", snapshot)
	}
	if shards < 1 {
		return nil, usageError(fmt.Sprintf("-shards must be ≥ 1, got %d", shards))
	}
	if dsName == "" {
		if emptyDim <= 0 {
			return nil, usageError("need -snapshot (existing), -dataset or -empty-dim to build a model")
		}
		labels, err := parseLabelList(emptyLabels)
		if err != nil {
			return nil, usageError(fmt.Sprintf("-empty-labels: %v", err))
		}
		mopts := core.MultiOptions{PooledVariance: pooled, EntropyPriority: entropy}
		s, err := server.NewEmpty(shards, core.DefaultConfig(emptyDim), labels, mopts, cfg)
		if err != nil {
			return nil, err
		}
		log.Printf("bootstrapped empty model: %d dims, %d classes, %d shards — awaiting ingest", emptyDim, len(labels), shards)
		return s, nil
	}
	ds, err := dataset.ByName(dsName, scale)
	if err != nil {
		return nil, usageError(err.Error())
	}
	ds.Shuffle(seed)
	mopts := core.MultiOptions{PooledVariance: pooled, EntropyPriority: entropy}
	s, err := server.NewEmpty(shards, core.DefaultConfig(ds.Dim()), ds.Classes(), mopts, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < ds.Len(); i++ {
		if err := s.Insert(ds.X[i], ds.Y[i]); err != nil {
			return nil, fmt.Errorf("bootstrap insert %d: %w", i, err)
		}
	}
	log.Printf("bootstrapped %s: %d observations, %d classes, %d dims into %d shards in %v",
		ds.Name, ds.Len(), len(ds.Classes()), ds.Dim(), shards, time.Since(start).Round(time.Millisecond))
	return s, nil
}

// saveSnapshot writes the model durably and atomically.
func saveSnapshot(s *server.Server, path string) error {
	return persist.WriteFileAtomic(path, s.WriteSnapshot)
}

func admissionDesc(nps float64) string {
	if nps <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0f node reads/s", nps)
}

// decayDesc describes the decay state the server actually runs with —
// which may come from a warm-started snapshot rather than the flags. A
// decayed snapshot loaded without -decay-lambda keeps fading scores
// but advances no epochs, which deserves a loud hint, not "off".
func decayDesc(s *server.Server, lambda, minWeight float64, every time.Duration) string {
	st := s.Stats()
	if !st.DecayEnabled {
		return "off"
	}
	if lambda <= 0 {
		return fmt.Sprintf("snapshot state at epoch %d — no maintenance loop; pass -decay-lambda/-decay-every to resume forgetting", st.DecayEpoch)
	}
	return fmt.Sprintf("λ=%g floor=%g epoch=%v", lambda, minWeight, every)
}

func parseStrategy(s string) (core.Strategy, bool) {
	switch s {
	case "glo", "global":
		return core.DescentGlobal, true
	case "bft", "breadth":
		return core.DescentBFT, true
	case "dft", "depth":
		return core.DescentDFT, true
	}
	return 0, false
}

func parsePriority(s string) (core.Priority, bool) {
	switch s {
	case "prob", "probabilistic":
		return core.PriorityProbabilistic, true
	case "geom", "geometric":
		return core.PriorityGeometric, true
	}
	return 0, false
}

// usageErrorf prints the error and usage, then exits with status 2 —
// the conventional "bad invocation" status, distinct from runtime
// failures (1).
func usageErrorf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "serveclass: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
