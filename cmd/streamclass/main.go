// Command streamclass demonstrates anytime classification on a simulated
// data stream: a classifier is trained on an initial window, then objects
// arrive under a Poisson process and each is classified with exactly the
// node budget its inter-arrival gap allows (Section 1's "varying
// streams"); labelled arrivals are learned online.
//
// Usage:
//
//	streamclass -dataset covertype -rate 200 -nps 5000
//	streamclass -dataset letter -window 64 -workers 8   # windowed parallel run
//
// -window sets the batch window size: 1 (default) reproduces the strictly
// sequential online run, larger windows classify each window in parallel
// with -workers goroutines and learn the window's labels afterwards,
// trading label freshness within a window for throughput.
//
// -decay-lambda enables exponential forgetting on the classifier for
// drifting streams: every -decay-every learned objects advance one decay
// epoch, fading stored weights by 2^(-λ) and pruning what falls below
// -min-weight. Bad invocations (unknown data set or loader, malformed
// flags) exit with status 2; runtime failures exit with status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
	"bayestree/internal/eval"
	"bayestree/internal/stream"
)

func main() {
	var (
		dsName  = flag.String("dataset", "covertype", "data set (pendigits|letter|gender|covertype)")
		scale   = flag.Float64("scale", 0.02, "data set scale")
		loader  = flag.String("loader", "emtopdown", "bulk-loading strategy for the initial window")
		rate    = flag.Float64("rate", 200, "mean arrival rate (objects/second)")
		nps     = flag.Float64("nps", 5000, "emulated node reads per second")
		trainPc = flag.Float64("train", 0.5, "fraction used for the initial training window")
		seed    = flag.Int64("seed", 42, "seed")
		window  = flag.Int("window", 1, "batch window size: 1 = strictly sequential online run, >1 = classify each window in parallel, then learn its labels")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel classification workers per window (only used when -window > 1)")
		decayL  = flag.Float64("decay-lambda", 0, "concept-drift forgetting rate λ: weights fade 2^(-λ) per decay epoch (0 = never forget)")
		minW    = flag.Float64("min-weight", 0.05, "pruning floor for decayed observations (with -decay-lambda > 0)")
		decayN  = flag.Int("decay-every", 500, "learned objects per decay epoch (with -decay-lambda > 0)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: streamclass [flags]\n\n"+
				"Simulate a Poisson data stream and classify each arrival with the anytime\n"+
				"budget its inter-arrival gap allows; labelled arrivals are learned online.\n"+
				"Use -window/-workers for the windowed parallel (batch) run and\n"+
				"-decay-lambda/-decay-every/-min-weight for drift-tracking forgetting.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		usagef("unexpected arguments %v", flag.Args())
	}

	ds, err := dataset.ByName(*dsName, *scale)
	if err != nil {
		usagef("%v", err)
	}
	ds.Shuffle(*seed)
	nTrain := int(*trainPc * float64(ds.Len()))
	if nTrain < len(ds.Classes())*10 {
		fatalf("training window too small (%d)", nTrain)
	}
	trainIdx := make([]int, nTrain)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	train := ds.Subset(trainIdx, "train")
	l, ok := bulkload.ByName(*loader)
	if !ok {
		usagef("unknown loader %q (have %v)", *loader, bulkload.Names())
	}
	clf, err := eval.TrainForest(train, l, core.DefaultConfig, core.ClassifierOptions{})
	if err != nil {
		fatalf("training: %v", err)
	}
	items := make([]stream.Item, 0, ds.Len()-nTrain)
	for i := nTrain; i < ds.Len(); i++ {
		items = append(items, stream.Item{X: ds.X[i], Label: ds.Y[i], Labeled: true})
	}
	var engine stream.Engine = clf
	if *decayL > 0 {
		decay := core.DecayOptions{Lambda: *decayL, MinWeight: *minW}
		if err := decay.Validate(); err != nil {
			usagef("%v", err)
		}
		if *decayN <= 0 {
			usagef("-decay-every must be > 0 with -decay-lambda set, got %d", *decayN)
		}
		if err := clf.EnableDecay(decay); err != nil {
			fatalf("decay: %v", err)
		}
		// The wrapper is not a *core.Classifier, so RunBatch keeps it on
		// the generic engine path at every window size — the decay clock
		// ticks for sequential (-window 1) runs too.
		engine = stream.WithDecayEvery(clf, *decayN)
	} else if *decayL < 0 {
		usagef("-decay-lambda must be ≥ 0, got %v", *decayL)
	}
	budgeter := stream.Budgeter{NodesPerSecond: *nps, MaxNodes: 500}
	start := time.Now()
	res, err := stream.RunBatch(engine, items, stream.Poisson{Rate: *rate}, budgeter, *seed, *window, *workers)
	if err != nil {
		fatalf("stream: %v", err)
	}
	elapsed := time.Since(start)
	fmt.Printf("stream of %d objects at rate %.0f/s, %.0f node-reads/s\n", res.Processed, *rate, *nps)
	fmt.Printf("processed in %v (%.0f objects/s wall clock, window=%d, workers=%d)\n",
		elapsed.Round(time.Millisecond), float64(res.Processed)/elapsed.Seconds(), *window, *workers)
	fmt.Printf("accuracy (online, anytime budgets): %.4f\n", res.Accuracy)
	fmt.Printf("node budget: min=%d mean=%.1f max=%d\n", res.MinBudget, res.MeanBudget, res.MaxBudget)
	fmt.Printf("learned online: %d objects\n", res.Learned)
	fmt.Println("budget histogram (bucket → objects):")
	buckets := make([]int, 0, len(res.BudgetHist))
	for b := range res.BudgetHist {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Printf("  ≤%-5d %d\n", b, res.BudgetHist[b])
	}
}

// fatalf reports a runtime failure and exits with status 1.
func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamclass: "+format+"\n", args...)
	os.Exit(1)
}

// usagef reports a bad invocation, prints usage and exits with status 2
// — the conventional "usage error" status, distinct from runtime
// failures.
func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamclass: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
