// Command bulkload compares the bulk-loading strategies structurally:
// build time, tree shape (height, node count, fanout, occupancy) and
// invariant validation, per class of a data set. Use -dump to print the
// level structure of one class tree — the textual analogue of Figure 1c.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
)

func main() {
	var (
		dsName  = flag.String("dataset", "pendigits", "data set (pendigits|letter|gender|covertype)")
		scale   = flag.Float64("scale", 0.2, "data set scale in (0,1]")
		loaders = flag.String("loaders", strings.Join(bulkload.Names(), ","), "comma-separated loaders")
		dump    = flag.Bool("dump", false, "print the level structure of the first class tree")
		seed    = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()

	ds, err := dataset.ByName(*dsName, *scale)
	if err != nil {
		fatalf("%v", err)
	}
	ds.Shuffle(*seed)
	byClass := ds.ByClass()
	labels := ds.Classes()
	cfg := core.DefaultConfig(ds.Dim())
	fmt.Printf("dataset %s: %d observations, %d classes, %d features\n", ds.Name, ds.Len(), len(labels), ds.Dim())
	fmt.Printf("tree config: fanout [%d,%d], leaf [%d,%d]\n\n", cfg.MinFanout, cfg.MaxFanout, cfg.MinLeaf, cfg.MaxLeaf)
	fmt.Printf("%-12s %10s %8s %8s %8s %9s %9s %8s\n",
		"loader", "build", "height", "nodes", "leaves", "fanout", "leafocc", "valid")

	for _, name := range strings.Split(*loaders, ",") {
		name = strings.TrimSpace(name)
		loader, ok := bulkload.ByName(name)
		if !ok {
			fatalf("unknown loader %q (have %v)", name, bulkload.Names())
		}
		start := time.Now()
		var trees []*core.Tree
		for _, y := range labels {
			t, err := loader.Build(byClass[y], cfg)
			if err != nil {
				fatalf("%s class %d: %v", name, y, err)
			}
			trees = append(trees, t)
		}
		elapsed := time.Since(start)
		agg := aggregateStats(trees)
		valid := "ok"
		for i, t := range trees {
			if err := t.Validate(); err != nil {
				valid = fmt.Sprintf("class %d: %v", labels[i], err)
				break
			}
		}
		fmt.Printf("%-12s %10s %8.1f %8d %8d %9.2f %9.2f %8s\n",
			name, elapsed.Round(time.Millisecond), agg.avgHeight, agg.nodes, agg.leaves,
			agg.avgFanout, agg.avgLeafOcc, valid)
		if *dump && name == strings.TrimSpace(strings.Split(*loaders, ",")[0]) {
			dumpTree(trees[0], labels[0])
		}
	}
}

type agg struct {
	avgHeight             float64
	nodes, leaves         int
	avgFanout, avgLeafOcc float64
}

func aggregateStats(trees []*core.Tree) agg {
	var a agg
	var fanoutSum, occSum float64
	var fanoutN, occN int
	for _, t := range trees {
		s := t.Stats()
		a.avgHeight += float64(s.Height)
		a.nodes += s.Nodes
		a.leaves += s.Leaves
		if s.InnerNodes > 0 {
			fanoutSum += s.AvgFanout * float64(s.InnerNodes)
			fanoutN += s.InnerNodes
		}
		occSum += s.AvgLeafOcc * float64(s.Leaves)
		occN += s.Leaves
	}
	a.avgHeight /= float64(len(trees))
	if fanoutN > 0 {
		a.avgFanout = fanoutSum / float64(fanoutN)
	}
	if occN > 0 {
		a.avgLeafOcc = occSum / float64(occN)
	}
	return a
}

// dumpTree prints node counts per depth and a sample of entry summaries.
func dumpTree(t *core.Tree, label int) {
	fmt.Printf("\nclass %d tree (%d observations):\n", label, t.Len())
	type lvl struct {
		nodes, entries, points int
	}
	levels := map[int]*lvl{}
	var walk func(n *core.Node, d int)
	walk = func(n *core.Node, d int) {
		l := levels[d]
		if l == nil {
			l = &lvl{}
			levels[d] = l
		}
		l.nodes++
		if n.IsLeaf() {
			l.points += len(n.Points())
			return
		}
		l.entries += len(n.Entries())
		for _, e := range n.Entries() {
			walk(e.Child, d+1)
		}
	}
	walk(t.Root(), 0)
	depths := make([]int, 0, len(levels))
	for d := range levels {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		l := levels[d]
		fmt.Printf("  depth %d: %d nodes, %d entries, %d observations\n", d, l.nodes, l.entries, l.points)
	}
	if e, ok := t.RootEntry(); ok {
		g := e.Gaussian()
		fmt.Printf("  root model: n=%.0f mean[0]=%.3f var[0]=%.4f mbr=%s...\n",
			e.CF.N, g.Mean[0], g.Var[0], e.Rect.String()[:min(40, len(e.Rect.String()))])
	}
	fmt.Println()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bulkload: "+format+"\n", args...)
	os.Exit(1)
}
