// Command anytime regenerates the paper's evaluation artefacts: Table 1
// and the anytime-accuracy figures 2, 3 and 4 (see EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	anytime -experiment all                  # everything, default scales
//	anytime -experiment fig3 -scale 0.2      # letter at 20% size
//	anytime -experiment fig2 -scale 1        # paper-size pendigits
//	anytime -dataset letter -loaders emtopdown,iterative -nodes 60
//
// The -dataset form runs a custom comparison outside the canned figures,
// with -loaders, -nodes, -folds, -strategy, -priority and -k selecting
// the comparison; see -h for every flag. Bad invocations (unknown
// experiment, data set, loader, strategy or priority) exit with status
// 2; runtime failures exit with status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
	"bayestree/internal/eval"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "paper artefact to regenerate: table1|fig2|fig3|fig4a|fig4b|all")
		scale      = flag.Float64("scale", 0, "data set scale in (0,1]; 0 = experiment default, 1 = paper size")
		seed       = flag.Int64("seed", 42, "cross-validation seed")
		dsName     = flag.String("dataset", "", "custom run: data set (pendigits|letter|gender|covertype)")
		loaders    = flag.String("loaders", "emtopdown,hilbert,goldberger,iterative", "custom run: comma-separated loaders")
		nodes      = flag.Int("nodes", 100, "custom run: node budget (x-axis extent)")
		folds      = flag.Int("folds", 4, "custom run: cross-validation folds")
		strategy   = flag.String("strategy", "glo", "custom run: descent strategy glo|bft|dft")
		priority   = flag.String("priority", "prob", "custom run: descent priority prob|geom")
		k          = flag.Int("k", 0, "custom run: qbk parameter (0 = paper default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: anytime [flags]\n\n"+
				"Regenerate the paper's evaluation artefacts (-experiment table1|fig2|fig3|\n"+
				"fig4a|fig4b|all) or run a custom anytime-accuracy comparison (-dataset with\n"+
				"-loaders/-nodes/-folds/-strategy/-priority/-k).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		usagef("unexpected arguments %v", flag.Args())
	}

	if *experiment == "" && *dsName == "" {
		*experiment = "all"
	}
	if *experiment != "" {
		runExperiments(*experiment, *scale, *seed)
		return
	}
	runCustom(*dsName, *scale, *seed, *loaders, *nodes, *folds, *strategy, *priority, *k)
}

func runExperiments(which string, scale float64, seed int64) {
	var exps []eval.Experiment
	if which == "all" {
		exps = eval.Experiments()
	} else {
		e, ok := eval.ExperimentByID(which)
		if !ok {
			usagef("unknown experiment %q (want table1|fig2|fig3|fig4a|fig4b|all)", which)
		}
		exps = []eval.Experiment{e}
	}
	for _, e := range exps {
		if _, err := e.Run(os.Stdout, scale, seed); err != nil {
			fatalf("experiment %s: %v", e.ID, err)
		}
		fmt.Println()
	}
}

func runCustom(dsName string, scale float64, seed int64, loaderList string, nodes, folds int, strategy, priority string, k int) {
	if scale <= 0 {
		scale = 0.2
	}
	ds, err := dataset.ByName(dsName, scale)
	if err != nil {
		usagef("%v", err)
	}
	strat, ok := parseStrategy(strategy)
	if !ok {
		usagef("unknown strategy %q (want glo|bft|dft)", strategy)
	}
	prio, ok := parsePriority(priority)
	if !ok {
		usagef("unknown priority %q (want prob|geom)", priority)
	}
	fmt.Printf("dataset %s: %d observations, %d classes, %d features\n",
		ds.Name, ds.Len(), len(ds.Classes()), ds.Dim())
	var curves []*eval.Curve
	for _, name := range strings.Split(loaderList, ",") {
		name = strings.TrimSpace(name)
		loader, ok := bulkload.ByName(name)
		if !ok {
			usagef("unknown loader %q (have %v)", name, bulkload.Names())
		}
		c, err := eval.AnytimeCurve(ds, loader, eval.CurveOptions{
			Folds:    folds,
			MaxNodes: nodes,
			Seed:     seed,
			Classifier: core.ClassifierOptions{
				Strategy: strat,
				Priority: prio,
				K:        k,
			},
		})
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		curves = append(curves, c)
		fmt.Printf("  %-12s final=%.4f mean=%.4f build=%s\n", c.Name, c.Final(), c.Mean(), c.BuildTime.Round(1e6))
	}
	if err := eval.PlotCurves(os.Stdout, fmt.Sprintf("%s (%s/%s)", ds.Name, strategy, priority), curves); err != nil {
		fatalf("%v", err)
	}
	eval.CurveTable(os.Stdout, curves, []int{0, 5, 10, 20, 50, nodes})
}

func parseStrategy(s string) (core.Strategy, bool) {
	switch s {
	case "glo", "global":
		return core.DescentGlobal, true
	case "bft", "breadth":
		return core.DescentBFT, true
	case "dft", "depth":
		return core.DescentDFT, true
	}
	return 0, false
}

func parsePriority(s string) (core.Priority, bool) {
	switch s {
	case "prob", "probabilistic":
		return core.PriorityProbabilistic, true
	case "geom", "geometric":
		return core.PriorityGeometric, true
	}
	return 0, false
}

// fatalf reports a runtime failure and exits with status 1.
func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "anytime: "+format+"\n", args...)
	os.Exit(1)
}

// usagef reports a bad invocation, prints usage and exits with status 2.
func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "anytime: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
