// Command serveproxy runs the scatter-gather serving proxy: a
// stateless L7 tier in front of one or more primary/replica groups
// that consistent-hash-routes writes to the owning primary (following
// 307s and failing over to a promoted replica on its own), scatters
// reads across fresh followers with size-proportional budget splits
// and exact merges, and hedges slow reads against the next-least-stale
// replica.
//
// One group, a primary with two followers:
//
//	serveproxy -addr :8090 -group http://primary:8080,http://replica1:8081,http://replica2:8082
//
// Two groups (writes hash across them with the engine's shard
// function; reads scatter over both and merge exactly):
//
//	serveproxy -group http://p0:8080,http://r0:8081 -group http://p1:8090,http://r1:8091
//
// Endpoints: POST /classify and GET /microclusters, /macroclusters
// (scattered reads), POST /insert and /cluster (routed writes), GET
// /stats (proxy counters + per-backend routing view), GET /healthz,
// GET /readyz. NDJSON streaming bodies are rejected — the proxy routes
// each point individually.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bayestree/internal/proxy"
	"bayestree/internal/serve"
)

// groupFlag collects repeated -group flags, each a comma-separated
// primary,replica,replica... URL list.
type groupFlag []proxy.Group

// String renders the collected groups for flag help.
func (g *groupFlag) String() string {
	parts := make([]string, len(*g))
	for i, gr := range *g {
		parts[i] = strings.Join(append([]string{gr.Primary}, gr.Replicas...), ",")
	}
	return strings.Join(parts, " ")
}

// Set parses one -group value.
func (g *groupFlag) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("backend URL %q must start with http:// or https://", u)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return fmt.Errorf("empty group")
	}
	*g = append(*g, proxy.Group{Primary: urls[0], Replicas: urls[1:]})
	return nil
}

func main() {
	var groups groupFlag
	var (
		addr         = flag.String("addr", ":8090", "HTTP listen address")
		budget       = flag.Int("budget", 32, "default classify node budget when a request sends 0")
		maxBudget    = flag.Int("max-budget", 0, "per-request budget cap (0 = server default)")
		probeEvery   = flag.Duration("probe-every", 250*time.Millisecond, "backend health/staleness probe period")
		maxStaleness = flag.Duration("max-staleness", 5*time.Second, "follower freshness window; staler followers are skipped for reads")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "end-to-end bound on one proxied read")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "end-to-end bound on one proxied write including failover retries")
		hedge        = flag.Bool("hedge", true, "hedge slow reads against the next-least-stale replica")
		hedgeMin     = flag.Duration("hedge-min", 2*time.Millisecond, "floor on the hedge trigger delay (tracked p95 otherwise)")
		retries      = flag.Int("write-retries", 8, "write failover retries, each after a synchronous re-probe")
		drain        = flag.Duration("drain", 10*time.Second, "graceful drain timeout on SIGTERM/SIGINT")
	)
	flag.Var(&groups, "group", "one primary/replica group as primary,replica,replica... (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `serveproxy — scatter-gather proxy over primary/replica groups

Usage:
  serveproxy -group http://primary:8080,http://replica:8081 [-group ...] [flags]

Examples:
  serveproxy -addr :8090 -group http://localhost:8080,http://localhost:8081,http://localhost:8082
  serveproxy -group http://p0:8080,http://r0:8081 -group http://p1:8090,http://r1:8091 -hedge=false

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		usageErrorf("unexpected arguments %v", flag.Args())
	}
	if len(groups) == 0 {
		usageErrorf("at least one -group is required")
	}

	p, err := proxy.New(proxy.Config{
		Groups:        groups,
		DefaultBudget: *budget,
		MaxBudget:     *maxBudget,
		ProbeEvery:    *probeEvery,
		MaxStaleness:  *maxStaleness,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
		Hedge:         *hedge,
		HedgeMin:      *hedgeMin,
		WriteRetries:  *retries,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serveproxy: %v\n", err)
		os.Exit(1)
	}
	p.Start()

	if err := serve.Run(serve.App{
		Name:         "serveproxy",
		Addr:         *addr,
		Handler:      p.Handler(),
		DrainTimeout: *drain,
		SetDraining:  p.SetDraining,
		Close:        func() { p.Close() },
	}); err != nil {
		fmt.Fprintf(os.Stderr, "serveproxy: %v\n", err)
		os.Exit(1)
	}
}

// usageErrorf prints a usage error plus the flag help and exits 2.
func usageErrorf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "serveproxy: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
