// Command benchjson runs the serving-path benchmarks in process and
// writes the results as JSON, so the performance trajectory of the
// engine is machine-readable: CI runs it as a smoke step and uploads
// BENCH_serving.json as an artifact, and successive PRs can be diffed
// without scraping go-test output.
//
//	benchjson -out BENCH_serving.json
//
// The suite covers both engine workloads: sharded anytime
// classification (fan-out + log-sum-exp merge) and sharded anytime
// clustering ingest (budgeted descent, parked insertions), each at two
// shard counts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/loadgen"
	"bayestree/internal/registry"
	"bayestree/internal/replica"
	"bayestree/internal/server"
)

// result is one benchmark in the emitted JSON.
type result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries cell-specific metrics that don't fit the ns/op
	// shape — the loadgen cells put tail percentiles and quality
	// fractions here.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// report is the emitted JSON document.
type report struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GoVersion  string   `json:"go_version"`
	MaxProcs   int      `json:"gomaxprocs"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_serving.json", "output path (- for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: benchjson [flags]\n\n"+
				"Run the serving benchmarks (classification fan-out, clustering ingest)\n"+
				"in process and write machine-readable JSON results.\n\n"+
				"Examples:\n"+
				"  benchjson -out BENCH_serving.json\n"+
				"  benchjson -out -\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: unexpected arguments %v\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	rep := report{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GoVersion: runtime.Version(), MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{1, 4} {
		// soa_classify pair: the default serving path descends the
		// structure-of-arrays mirror; the soa=off sibling forces the exact
		// pointer layout (Query.ExactDescent), so the diff between the two
		// cells is the layout speedup at otherwise identical settings.
		for _, budget := range []int{10, 50} {
			rep.Benchmarks = append(rep.Benchmarks,
				run(fmt.Sprintf("server_classify/shards=%d/budget=%d/soa=on", shards, budget),
					benchClassify(shards, budget, false)),
				run(fmt.Sprintf("server_classify/shards=%d/budget=%d/soa=off", shards, budget),
					benchClassify(shards, budget, true)))
		}
		rep.Benchmarks = append(rep.Benchmarks,
			run(fmt.Sprintf("cluster_ingest/shards=%d/budget=8", shards), benchIngest(shards, 8)),
			run(fmt.Sprintf("cluster_ingest/shards=%d/budget=1", shards), benchIngest(shards, 1)))
	}
	rep.Benchmarks = append(rep.Benchmarks, run("cluster_microclusters", benchMicro()))
	// WAL-on vs WAL-off ingest: the durability overhead of the write
	// path, per workload. "wal=group" is the production mode (group
	// commit, bounded power-loss window); "wal=fsync" pays a synchronous
	// fsync per insert.
	rep.Benchmarks = append(rep.Benchmarks,
		run("server_insert/shards=4/wal=off", benchInsert(4, "off")),
		run("server_insert/shards=4/wal=group", benchInsert(4, "group")),
		run("server_insert/shards=4/wal=fsync", benchInsert(4, "fsync")),
		run("server_insert/shards=4/wal=group/replicated", benchInsertReplicated(4)),
		run("cluster_ingest/shards=4/budget=8/wal=off", benchIngestWAL(4, 8, "off")),
		run("cluster_ingest/shards=4/budget=8/wal=group", benchIngestWAL(4, 8, "group")),
	)
	// End-to-end serving cells from a short closed-loop loadgen run over
	// HTTP: ns_per_op is the p99 latency, ops_per_sec the achieved
	// throughput, and extra carries the rest of the tail plus the
	// quality-under-load fractions — so the trend file tracks what a
	// client sees, not just what the engine costs in process.
	rep.Benchmarks = append(rep.Benchmarks,
		loadgenCell(loadgen.WorkloadClassify),
		loadgenCell(loadgen.WorkloadCluster),
	)
	// Multi-tenant registry cells: what a request pays to touch a paged-
	// out tenant (cold-load p99), and what the whole process sustains
	// when Zipf traffic over many tenants continuously churns a small
	// resident set.
	rep.Benchmarks = append(rep.Benchmarks,
		registryColdLoadCell(),
		registryChurnCell(),
	)
	// Scatter-gather proxy cells: read fan-out scaling over emulated
	// single-core followers, and the p99 a hedged read claws back from an
	// intermittently slow replica. See proxy.go for the emulation.
	rep.Benchmarks = append(rep.Benchmarks, proxyScalingCells()...)
	rep.Benchmarks = append(rep.Benchmarks, proxyHedgeCells()...)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// run executes one benchmark function and shapes its result.
func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	ops := 0.0
	if nsPerOp > 0 {
		ops = 1e9 / nsPerOp
	}
	return result{
		Name: name, N: r.N, NsPerOp: nsPerOp, OpsPerSec: ops,
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
	}
}

// loadgenCell runs a short closed-loop loadgen scenario against an
// in-process server of the given workload and shapes the report as one
// benchmark cell.
func loadgenCell(wl loadgen.Workload) result {
	var handler http.Handler
	var closeSrv func()
	switch wl {
	case loadgen.WorkloadClassify:
		s, err := server.NewEmpty(4, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
		if err != nil {
			fatalf("loadgen cell: %v", err)
		}
		handler, closeSrv = s.Handler(), s.Close
	case loadgen.WorkloadCluster:
		s, err := server.NewCluster(clustree.DefaultConfig(2), 4, server.Config{}, server.ClusterOptions{SnapshotEvery: -1})
		if err != nil {
			fatalf("loadgen cell: %v", err)
		}
		handler, closeSrv = s.Handler(), s.Close
	}
	ts := httptest.NewServer(handler)
	defer func() {
		ts.Close()
		closeSrv()
	}()
	rep, err := loadgen.Run(context.Background(), loadgen.Scenario{
		Target:      ts.URL,
		Workload:    wl,
		Concurrency: 8,
		Duration:    2 * time.Second,
		Mix:         loadgen.Mix{InsertFraction: 0.2, Budget: 32},
		Seed:        1,
	})
	if err != nil {
		fatalf("loadgen cell: %v", err)
	}
	all := rep.Latency["all"]
	return result{
		Name:      fmt.Sprintf("loadgen_closed/workload=%s/conc=8", wl),
		N:         int(rep.Requests),
		NsPerOp:   all.P99Ms * 1e6,
		OpsPerSec: rep.AchievedRPS,
		Extra: map[string]float64{
			"p50_ms":            all.P50Ms,
			"p90_ms":            all.P90Ms,
			"p999_ms":           all.P999Ms,
			"max_ms":            all.MaxMs,
			"error_rate":        rep.ErrorRate,
			"granted_fraction":  rep.Quality.GrantedFraction,
			"degraded_fraction": rep.Quality.DegradedFraction,
			"accuracy":          rep.Quality.Accuracy,
		},
	}
}

// registryColdLoadCell measures the page-in price: tenants holding a
// checkpointed model are evicted and touched again, and the sampled
// reload latencies (clean-eviction path: snapshot decode only, no WAL
// replay) are reported with the p99 as ns_per_op — the bounded-latency
// disk fetch claim of the registry, as a number.
func registryColdLoadCell() result {
	dir, err := os.MkdirTemp("", "benchjson-registry-*")
	if err != nil {
		fatalf("registry cell: %v", err)
	}
	defer os.RemoveAll(dir)
	r, err := registry.Open(registry.Options{
		Dir:         dir,
		MaxResident: 64,
		FsyncEvery:  5 * time.Millisecond,
		Defaults:    registry.TenantConfig{Dim: 3, Labels: []int{0, 1, 2}},
	}, registry.ClassifyBackend())
	if err != nil {
		fatalf("registry cell: %v", err)
	}
	defer r.Close()

	const tenants = 16
	const obs = 500
	rng := rand.New(rand.NewSource(1))
	for t := 0; t < tenants; t++ {
		err := r.With(fmt.Sprintf("cl%03d", t), true, func(s *server.Server) error {
			for i := 0; i < obs; i++ {
				x, label := classPoint(rng)
				if err := s.Insert(x, label); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fatalf("registry cell: %v", err)
		}
	}

	var samples []float64
	for round := 0; round < 8; round++ {
		for t := 0; t < tenants; t++ {
			name := fmt.Sprintf("cl%03d", t)
			if err := r.Evict(name); err != nil {
				fatalf("registry cell: evict: %v", err)
			}
			t0 := time.Now()
			if err := r.With(name, false, func(*server.Server) error { return nil }); err != nil {
				fatalf("registry cell: reload: %v", err)
			}
			samples = append(samples, float64(time.Since(t0).Nanoseconds()))
		}
	}
	sort.Float64s(samples)
	q := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	p99 := q(0.99)
	return result{
		Name:      fmt.Sprintf("registry_coldload/obs=%d", obs),
		N:         len(samples),
		NsPerOp:   p99,
		OpsPerSec: 1e9 / p99,
		Extra: map[string]float64{
			"p50_ms":  q(0.50) / 1e6,
			"p99_ms":  p99 / 1e6,
			"max_ms":  samples[len(samples)-1] / 1e6,
			"mean_ms": sum / float64(len(samples)) / 1e6,
		},
	}
}

// registryChurnCell measures resident-churn throughput: closed-loop
// Zipf traffic over 256 tenants against a 32-model resident cap, so
// the measured phase continuously pages the cold tail. ops_per_sec is
// the sustained request rate with paging on the request path;
// ns_per_op the p99 a client sees across hot hits and cold reloads.
func registryChurnCell() result {
	dir, err := os.MkdirTemp("", "benchjson-registry-*")
	if err != nil {
		fatalf("registry churn cell: %v", err)
	}
	defer os.RemoveAll(dir)
	const tenants = 256
	const capResident = 32
	r, err := registry.Open(registry.Options{
		Dir:         dir,
		MaxResident: capResident,
		FsyncEvery:  5 * time.Millisecond,
		Defaults:    registry.TenantConfig{Dim: 3, Labels: []int{0, 1, 2}},
	}, registry.ClassifyBackend())
	if err != nil {
		fatalf("registry churn cell: %v", err)
	}
	ts := httptest.NewServer(r.Handler())
	defer func() {
		ts.Close()
		r.Close()
	}()
	rep, err := loadgen.Run(context.Background(), loadgen.Scenario{
		Target:      ts.URL,
		Workload:    loadgen.WorkloadClassify,
		Concurrency: 8,
		Duration:    2 * time.Second,
		Mix:         loadgen.Mix{InsertFraction: 0.2, Budget: 32},
		Seed:        1,
		Tenants:     tenants,
		TenantSkew:  loadgen.DefaultTenantSkew,
		Warmup:      2 * tenants,
	})
	if err != nil {
		fatalf("registry churn cell: %v", err)
	}
	st := r.Stats()
	all := rep.Latency["all"]
	return result{
		Name:      fmt.Sprintf("registry_churn/tenants=%d/resident=%d/skew=%.1f", tenants, capResident, loadgen.DefaultTenantSkew),
		N:         int(rep.Requests),
		NsPerOp:   all.P99Ms * 1e6,
		OpsPerSec: rep.AchievedRPS,
		Extra: map[string]float64{
			"p50_ms":            all.P50Ms,
			"p999_ms":           all.P999Ms,
			"max_ms":            all.MaxMs,
			"error_rate":        rep.ErrorRate,
			"cold_loads":        float64(st.ColdLoads),
			"evictions":         float64(st.Evictions),
			"cold_load_mean_ms": st.ColdLoadMeanMs,
			"cold_load_max_ms":  st.ColdLoadMaxMs,
		},
	}
}

// classPoint draws a labelled observation from three separated blobs,
// matching the server package's benchmark distribution.
func classPoint(rng *rand.Rand) ([]float64, int) {
	label := rng.Intn(3)
	return []float64{
		float64(label)*3 + 0.4*rng.NormFloat64(),
		-float64(label)*3 + 0.4*rng.NormFloat64(),
		rng.NormFloat64(),
	}, label
}

// benchClassify measures served classifications on a pre-filled
// sharded server; exact forces the pointer-layout descent (SoA mirror
// unused).
func benchClassify(shards, budget int, exact bool) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := server.Config{}
		cfg.Query.ExactDescent = exact
		s, err := server.NewEmpty(shards, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			x, label := classPoint(rng)
			if err := s.Insert(x, label); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, _ := classPoint(rng)
			if _, err := s.Classify(x, budget); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchIngest measures clustering ingest at a fixed descent budget
// (budget 1 exercises the parked-insertion path).
func benchIngest(shards, budget int) func(b *testing.B) {
	return func(b *testing.B) {
		cs, err := server.NewCluster(clustree.DefaultConfig(2), shards, server.Config{}, server.ClusterOptions{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			if _, err := cs.Insert(x, budget); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// durableServer builds a classification server in mode "off" (memory
// only), "group" (WAL, 100ms group commit) or "fsync" (WAL, fsync per
// insert), recovered and ready to ingest.
func durableServer(b *testing.B, shards int, mode string) *server.Server {
	b.Helper()
	bootstrap := func() (*server.Server, error) {
		return server.NewEmpty(shards, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
	}
	if mode == "off" {
		s, err := bootstrap()
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	dopts := server.DurabilityOptions{Dir: b.TempDir()}
	if mode == "group" {
		dopts.FsyncEvery = 100 * time.Millisecond
	}
	s, err := server.OpenDurableServer(dopts, server.Config{}, bootstrap)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		b.Fatal(err)
	}
	return s
}

// benchInsert measures the classification ingest path with and without
// the write-ahead log — the durability overhead record in
// BENCH_serving.json.
func benchInsert(shards int, mode string) func(b *testing.B) {
	return func(b *testing.B) {
		s := durableServer(b, shards, mode)
		defer s.CloseDurability()
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, label := classPoint(rng)
			if err := s.Insert(x, label); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchInsertReplicated measures classification ingest with a live
// follower tailing the WAL stream — the replication-on ingest
// throughput cell, diffable against its wal=group sibling to price the
// shipping overhead.
func benchInsertReplicated(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		s := durableServer(b, shards, "group")
		defer s.CloseDurability()
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.CloseClientConnections()
			ts.Close()
		}()
		foll, err := server.NewFollowerServer(
			server.DurabilityOptions{Dir: b.TempDir(), FsyncEvery: 100 * time.Millisecond},
			server.Config{}, ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		tail := replica.New(foll, replica.Options{
			PrimaryURL: ts.URL,
			Workload:   replica.WorkloadClassify,
			Epoch:      foll.Epoch,
		})
		tail.Start()
		defer tail.Stop()
		// One insert outside the timer proves the stream is up before
		// measuring.
		rng := rand.New(rand.NewSource(1))
		x, label := classPoint(rng)
		if err := s.Insert(x, label); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.Stats().ReplFollowers == 0 {
			if time.Now().After(deadline) {
				b.Fatal("follower never connected")
			}
			time.Sleep(time.Millisecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x, label := classPoint(rng)
			if err := s.Insert(x, label); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchIngestWAL measures clustering ingest with and without the
// write-ahead log.
func benchIngestWAL(shards, budget int, mode string) func(b *testing.B) {
	return func(b *testing.B) {
		copts := server.ClusterOptions{SnapshotEvery: -1}
		bootstrap := func() (*server.ClusterServer, error) {
			return server.NewCluster(clustree.DefaultConfig(2), shards, server.Config{}, copts)
		}
		var cs *server.ClusterServer
		var err error
		if mode == "off" {
			cs, err = bootstrap()
		} else {
			cs, err = server.OpenDurableCluster(
				server.DurabilityOptions{Dir: b.TempDir(), FsyncEvery: 100 * time.Millisecond},
				server.Config{}, copts, bootstrap)
			if err == nil {
				err = cs.Recover()
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		defer cs.CloseDurability()
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			if _, err := cs.Insert(x, budget); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchMicro measures the union micro-cluster read on a filled server.
func benchMicro() func(b *testing.B) {
	return func(b *testing.B) {
		cs, err := server.NewCluster(clustree.DefaultConfig(2), 4, server.Config{}, server.ClusterOptions{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			if _, err := cs.Insert([]float64{rng.Float64(), rng.Float64()}, 8); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cs.MicroClusters(0.5)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
