package main

// The proxy_scaling cells measure the scatter-gather tier end to end.
// All backends run in this one process and would otherwise share
// GOMAXPROCS, so raw multi-process scaling cannot appear; instead every
// backend is wrapped in a one-request semaphore that charges a fixed
// service time — the one-core-per-process emulation. What the cells
// then isolate is exactly what the proxy adds: how throughput scales
// when reads spread over 3 single-core followers versus one single-core
// primary (at identical holdout accuracy, since every follower is a
// snapshot copy), and how much of the tail a hedged read recovers when
// one replica is intermittently slow.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/loadgen"
	"bayestree/internal/proxy"
	"bayestree/internal/server"
)

// backendService is the emulated per-request service time of one
// single-core backend process.
const backendService = 2 * time.Millisecond

// emulateOneCore serializes a backend behind a one-slot semaphore and
// charges service per request — a single-core process in miniature.
// /stats stays outside the semaphore so the proxy's prober is never
// queued behind emulated work.
func emulateOneCore(h http.Handler, service time.Duration) http.Handler {
	sem := make(chan struct{}, 1)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			h.ServeHTTP(w, r)
			return
		}
		sem <- struct{}{}
		defer func() { <-sem }()
		time.Sleep(service)
		h.ServeHTTP(w, r)
	})
}

// statsFacade overrides GET /stats with a fixed role (and, for
// followers, a fresh staleness bound) so an in-process snapshot copy
// presents to the prober the way a real replica would, while every
// other endpoint serves the real model.
func statsFacade(s *server.Server, role string, inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" && r.Method == http.MethodGet {
			w.Header().Set("Content-Type", "application/json")
			if role == "primary" {
				fmt.Fprintf(w, `{"role":"primary","observations":%d}`, s.Len())
				return
			}
			fmt.Fprintf(w, `{"role":"follower","staleness_ms":1,"observations":%d}`, s.Len())
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// snapshotCopies clones a server n times through its snapshot codec —
// the same digit-identical state a bootstrapped follower would hold.
func snapshotCopies(s *server.Server, n int) ([]*server.Server, error) {
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		return nil, err
	}
	out := make([]*server.Server, n)
	for i := range out {
		c, err := server.FromSnapshot(bytes.NewReader(buf.Bytes()), server.Config{})
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// classifyScenario is the shared read-only measured phase: 2s of
// closed-loop holdout classifies at concurrency 8, no warmup (the
// caller seeds), identical seed so both sides score the same holdout.
func classifyScenario(target string) loadgen.Scenario {
	return loadgen.Scenario{
		Target:      target,
		Workload:    loadgen.WorkloadClassify,
		Concurrency: 8,
		Duration:    2 * time.Second,
		Mix:         loadgen.Mix{InsertFraction: 0, Budget: 32},
		Seed:        1,
		Warmup:      -1,
	}
}

// loadgenResult shapes a loadgen report as a benchmark cell.
func loadgenResult(name string, rep *loadgen.Report, extra map[string]float64) result {
	all := rep.Latency["all"]
	if extra == nil {
		extra = map[string]float64{}
	}
	extra["p50_ms"] = all.P50Ms
	extra["p90_ms"] = all.P90Ms
	extra["p999_ms"] = all.P999Ms
	extra["max_ms"] = all.MaxMs
	extra["error_rate"] = rep.ErrorRate
	extra["accuracy"] = rep.Quality.Accuracy
	return result{
		Name: name, N: int(rep.Requests),
		NsPerOp: all.P99Ms * 1e6, OpsPerSec: rep.AchievedRPS,
		Extra: extra,
	}
}

// proxyScalingCells measures read fan-out scaling: the same read-only
// holdout traffic against one emulated single-core primary directly,
// then through the proxy over three snapshot-copy followers (each its
// own single core). The proxy cell's extra carries the throughput
// speedup; accuracy in both cells must match, since every follower is
// digit-identical to the baseline model and the seed fixes the holdout.
func proxyScalingCells() []result {
	prim, err := server.NewEmpty(4, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
	if err != nil {
		fatalf("proxy scaling cell: %v", err)
	}
	primTS := httptest.NewServer(emulateOneCore(statsFacade(prim, "primary", prim.Handler()), backendService))
	defer primTS.Close()

	// Seed the model through the primary the way a real deployment would
	// (600 warmup inserts), then run the read-only baseline.
	sc := classifyScenario(primTS.URL)
	sc.Warmup = 600
	baseRep, err := loadgen.Run(context.Background(), sc)
	if err != nil {
		fatalf("proxy scaling baseline: %v", err)
	}

	// Followers are snapshot copies of the now-seeded primary — what a
	// caught-up replica holds. (The baseline's measured phase is
	// read-only, so the model is unchanged since warmup.)
	copies, err := snapshotCopies(prim, 3)
	if err != nil {
		fatalf("proxy scaling cell: %v", err)
	}
	replicas := make([]string, len(copies))
	for i, c := range copies {
		ts := httptest.NewServer(emulateOneCore(statsFacade(c, "follower", c.Handler()), backendService))
		defer ts.Close()
		replicas[i] = ts.URL
	}

	p, err := proxy.New(proxy.Config{
		Groups: []proxy.Group{{Primary: primTS.URL, Replicas: replicas}},
		Hedge:  false, // pure fan-out scaling; the hedge cells price hedging
	})
	if err != nil {
		fatalf("proxy scaling cell: %v", err)
	}
	defer p.Close()
	p.Start()
	pts := httptest.NewServer(p.Handler())
	defer pts.Close()

	proxRep, err := loadgen.Run(context.Background(), classifyScenario(pts.URL))
	if err != nil {
		fatalf("proxy scaling proxy run: %v", err)
	}

	speedup := 0.0
	if baseRep.AchievedRPS > 0 {
		speedup = proxRep.AchievedRPS / baseRep.AchievedRPS
	}
	return []result{
		loadgenResult("proxy_scaling/followers=0/baseline", baseRep, nil),
		loadgenResult("proxy_scaling/followers=3", proxRep, map[string]float64{
			"speedup_x":         speedup,
			"baseline_rps":      baseRep.AchievedRPS,
			"baseline_accuracy": baseRep.Quality.Accuracy,
		}),
	}
}

// slowEveryNth makes every nth /classify pay extra service time — an
// intermittently slow replica (GC pause, page-in, noisy neighbor), the
// tail-latency shape hedging exists for.
func slowEveryNth(h http.Handler, n int64, extra time.Duration) http.Handler {
	var count atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/classify" && count.Add(1)%n == 0 {
			time.Sleep(extra)
		}
		h.ServeHTTP(w, r)
	})
}

// proxyHedgeCells measures what hedged reads recover: two snapshot-copy
// followers, one of which stalls every 20th classify by 200ms, under the
// same read-only traffic with hedging off and then on. Unhedged, every
// stall lands in the tail; hedged, the proxy re-issues to the other
// follower after the tracked p95 and the stall is capped near the
// hedge delay.
func proxyHedgeCells() []result {
	prim, err := server.NewEmpty(4, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
	if err != nil {
		fatalf("proxy hedge cell: %v", err)
	}
	primTS := httptest.NewServer(emulateOneCore(statsFacade(prim, "primary", prim.Handler()), backendService))
	defer primTS.Close()
	sc := classifyScenario(primTS.URL)
	sc.Warmup = 600
	sc.Duration = time.Millisecond // seed only; the measured runs go through the proxy
	if _, err := loadgen.Run(context.Background(), sc); err != nil {
		fatalf("proxy hedge seed: %v", err)
	}

	copies, err := snapshotCopies(prim, 2)
	if err != nil {
		fatalf("proxy hedge cell: %v", err)
	}
	replicas := make([]string, len(copies))
	for i, c := range copies {
		h := emulateOneCore(statsFacade(c, "follower", c.Handler()), backendService)
		if i == 0 {
			h = slowEveryNth(h, 20, 200*time.Millisecond)
		}
		ts := httptest.NewServer(h)
		defer ts.Close()
		replicas[i] = ts.URL
	}

	cells := make([]result, 0, 2)
	var offP99 float64
	for _, hedge := range []bool{false, true} {
		p, err := proxy.New(proxy.Config{
			Groups: []proxy.Group{{Primary: primTS.URL, Replicas: replicas}},
			Hedge:  hedge,
		})
		if err != nil {
			fatalf("proxy hedge cell: %v", err)
		}
		p.Start()
		pts := httptest.NewServer(p.Handler())
		rep, err := loadgen.Run(context.Background(), classifyScenario(pts.URL))
		pts.Close()
		st := p.CurrentStats()
		p.Close()
		if err != nil {
			fatalf("proxy hedge run: %v", err)
		}
		name := "proxy_scaling/hedge=off"
		extra := map[string]float64{}
		if hedge {
			name = "proxy_scaling/hedge=on"
			extra["hedges"] = float64(st.Hedges)
			extra["hedge_wins"] = float64(st.HedgeWins)
			extra["hedge_delay_ms"] = st.HedgeDelayMs
			if p99 := rep.Latency["all"].P99Ms; p99 > 0 {
				extra["p99_cut_x"] = offP99 / p99
			}
		} else {
			offP99 = rep.Latency["all"].P99Ms
		}
		cells = append(cells, loadgenResult(name, rep, extra))
	}
	return cells
}
