// Command loadgen drives a live serveclass or servecluster instance
// with open-loop (Poisson, bursty on/off, diurnal ramp, adversarial
// hot-key) or closed-loop (fixed concurrency) mixed traffic, records
// per-request latency into an HDR-style histogram, scores answer
// quality against a labelled holdout, and reports p50/p90/p99/p999/max
// latency plus quality-under-load (granted-budget fraction,
// degraded-answer fraction, accuracy) as JSON or NDJSON.
//
//	loadgen -target http://localhost:8080 -process poisson -rate 500 -duration 30s
//	loadgen -selfserve class -process closed -concurrency 8 -duration 10s \
//	    -slo-p99 50ms -slo-error-rate 1e-9 -slo-accuracy 0.9
//
// With any -slo-* flag set, a violated objective makes loadgen exit 1
// — the CI regression-gate mode. Usage errors exit 2.
//
// -selfserve starts an in-process server (classification or
// clustering) on a loopback port and aims the harness at it: the
// no-dependency smoke mode CI runs, and a one-command way to measure a
// configuration without deploying anything.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/loadgen"
	"bayestree/internal/registry"
	"bayestree/internal/server"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of the server under load (mutually exclusive with -selfserve)")
		selfserve   = flag.String("selfserve", "", "start an in-process server to load: 'class' or 'cluster'")
		workload    = flag.String("workload", "", "traffic kind: 'classify' or 'cluster' (default: inferred from -selfserve, else classify)")
		process     = flag.String("process", "poisson", "arrival process: poisson|bursty|diurnal|hotkey|closed")
		rate        = flag.Float64("rate", 500, "open-loop offered rate, requests/second")
		concurrency = flag.Int("concurrency", 0, "closed-loop workers / open-loop in-flight cap (0 = defaults)")
		duration    = flag.Duration("duration", 10*time.Second, "measured phase length")
		insertFrac  = flag.Float64("insert-frac", 0.2, "fraction of classification requests that are inserts")
		budget      = flag.Int("budget", 32, "per-request anytime budget (0 = server default, <0 = max)")
		seed        = flag.Int64("seed", 1, "traffic seed")
		warmup      = flag.Int("warmup", 0, "observations inserted before measuring (0 = default, <0 = none)")
		holdout     = flag.Int("holdout", 0, "labelled holdout size (0 = default)")
		out         = flag.String("out", "-", "report path (- for stdout)")
		ndjson      = flag.Bool("ndjson", false, "emit NDJSON cells instead of one JSON document")
		shards      = flag.Int("shards", 4, "selfserve: shard count")
		nps         = flag.Float64("nps", 0, "selfserve: admission capacity, node reads/second (0 = no admission)")
		tenants     = flag.Int("tenants", 0, "spread traffic across N tenants via /t/{tenant} paths with Zipf popularity (0 = single-tenant)")
		tenantSkew  = flag.Float64("tenant-skew", 0, "Zipf exponent of tenant popularity (<=1 = default 1.2)")
		maxResident = flag.Int("max-resident", 0, "selfserve multi-tenant: resident-model cap of the in-process registry (0 = registry default)")
		sloP50      = flag.Duration("slo-p50", 0, "SLO: max p50 latency (0 = unchecked)")
		sloP99      = flag.Duration("slo-p99", 0, "SLO: max p99 latency")
		sloP999     = flag.Duration("slo-p999", 0, "SLO: max p999 latency")
		sloMax      = flag.Duration("slo-max", 0, "SLO: max latency")
		sloErrRate  = flag.Float64("slo-error-rate", 0, "SLO: max error rate (use a tiny epsilon to require zero)")
		sloAccuracy = flag.Float64("slo-accuracy", 0, "SLO: min holdout accuracy")
		sloGranted  = flag.Float64("slo-granted", 0, "SLO: min granted-budget fraction")
		sloMinReqs  = flag.Int64("slo-min-requests", 0, "SLO: min completed requests (guards vacuous passes)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: loadgen [flags]\n\n"+
				"Drive a serveclass/servecluster instance with open- or closed-loop\n"+
				"traffic and report tail latency plus answer quality under load.\n\n"+
				"Examples:\n"+
				"  loadgen -target http://localhost:8080 -process poisson -rate 500\n"+
				"  loadgen -target http://localhost:8080 -process diurnal -rate 800 -duration 30s\n"+
				"  loadgen -selfserve cluster -process hotkey -rate 2000 -budget 8\n"+
				"  loadgen -selfserve class -process closed -concurrency 8 \\\n"+
				"      -slo-p99 50ms -slo-error-rate 1e-9 -slo-accuracy 0.9   # exit 1 on breach\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments %v\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if (*target == "") == (*selfserve == "") {
		fmt.Fprintln(os.Stderr, "loadgen: exactly one of -target or -selfserve is required")
		os.Exit(2)
	}

	wl := loadgen.Workload(*workload)
	switch *selfserve {
	case "":
	case "class":
		if wl == "" {
			wl = loadgen.WorkloadClassify
		}
	case "cluster":
		if wl == "" {
			wl = loadgen.WorkloadCluster
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: -selfserve %q (want 'class' or 'cluster')\n", *selfserve)
		os.Exit(2)
	}
	if wl == "" {
		wl = loadgen.WorkloadClassify
	}
	if wl != loadgen.WorkloadClassify && wl != loadgen.WorkloadCluster {
		fmt.Fprintf(os.Stderr, "loadgen: -workload %q (want 'classify' or 'cluster')\n", *workload)
		os.Exit(2)
	}

	proc, err := loadgen.NewProcess(*process, *rate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	url := *target
	if *selfserve != "" {
		var stop func()
		url, stop, err = startSelfServe(*selfserve, *shards, *nps, *tenants, *maxResident)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: selfserve: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "loadgen: in-process %s server at %s (shards=%d nps=%g tenants=%d)\n",
			*selfserve, url, *shards, *nps, *tenants)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	rep, err := loadgen.Run(ctx, loadgen.Scenario{
		Target:      url,
		Workload:    wl,
		Proc:        proc,
		Concurrency: *concurrency,
		Duration:    *duration,
		Mix:         loadgen.Mix{InsertFraction: *insertFrac, Budget: *budget},
		Seed:        *seed,
		HoldoutSize: *holdout,
		Warmup:      *warmup,
		Tenants:     *tenants,
		TenantSkew:  *tenantSkew,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	slo := loadgen.SLO{
		P50: *sloP50, P99: *sloP99, P999: *sloP999, Max: *sloMax,
		MaxErrorRate: *sloErrRate, MinAccuracy: *sloAccuracy,
		MinGrantedFraction: *sloGranted, MinRequests: *sloMinReqs,
	}
	breaches := slo.Evaluate(rep)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *ndjson {
		err = rep.WriteNDJSON(w)
	} else {
		err = rep.WriteJSON(w)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: write report: %v\n", err)
		os.Exit(1)
	}

	all := rep.Latency["all"]
	fmt.Fprintf(os.Stderr,
		"loadgen: %s/%s %d reqs %.0f rps | p50 %.2fms p99 %.2fms p999 %.2fms max %.2fms | granted %.3f degraded %.3f acc %.3f err %.5f\n",
		rep.Workload, rep.Process, rep.Requests, rep.AchievedRPS,
		all.P50Ms, all.P99Ms, all.P999Ms, all.MaxMs,
		rep.Quality.GrantedFraction, rep.Quality.DegradedFraction,
		rep.Quality.Accuracy, rep.ErrorRate)
	if len(breaches) > 0 {
		for _, b := range breaches {
			fmt.Fprintf(os.Stderr, "loadgen: SLO breach: %s\n", b)
		}
		os.Exit(1)
	}
}

// startSelfServe boots an in-process server of the given kind on a
// loopback port, returning its base URL and a shutdown func. With
// tenants > 0 the in-process server is a multi-tenant registry backed
// by a throwaway directory, so paging under Zipf traffic can be
// measured with one command.
func startSelfServe(kind string, shards int, nps float64, tenants, maxResident int) (string, func(), error) {
	cfg := server.Config{NodesPerSecond: nps}
	var handler http.Handler
	var closeSrv func()
	if tenants > 0 {
		dir, err := os.MkdirTemp("", "loadgen-registry-*")
		if err != nil {
			return "", nil, err
		}
		opts := registry.Options{
			Dir:            dir,
			MaxResident:    maxResident,
			NodesPerSecond: nps,
			// Smoke mode on a throwaway dir: group-commit the WALs so
			// tenant churn measures paging, not per-append fsyncs.
			FsyncEvery: 5 * time.Millisecond,
		}
		switch kind {
		case "class":
			opts.Defaults = registry.TenantConfig{Dim: 3, Labels: []int{0, 1, 2}, Shards: shards}
			r, err := registry.Open(opts, registry.ClassifyBackend())
			if err != nil {
				os.RemoveAll(dir)
				return "", nil, err
			}
			handler, closeSrv = r.Handler(), func() { r.Close(); os.RemoveAll(dir) }
		case "cluster":
			opts.Defaults = registry.TenantConfig{Dim: 2, Shards: shards}
			r, err := registry.Open(opts, registry.ClusterBackend(server.ClusterOptions{SnapshotEvery: -1}))
			if err != nil {
				os.RemoveAll(dir)
				return "", nil, err
			}
			handler, closeSrv = r.Handler(), func() { r.Close(); os.RemoveAll(dir) }
		default:
			os.RemoveAll(dir)
			return "", nil, fmt.Errorf("unknown kind %q", kind)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeSrv()
			return "", nil, err
		}
		hs := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		go hs.Serve(ln)
		stop := func() {
			hs.Close()
			closeSrv()
		}
		return "http://" + ln.Addr().String(), stop, nil
	}
	switch kind {
	case "class":
		s, err := server.NewEmpty(shards, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, cfg)
		if err != nil {
			return "", nil, err
		}
		handler, closeSrv = s.Handler(), s.Close
	case "cluster":
		s, err := server.NewCluster(clustree.DefaultConfig(2), shards, cfg, server.ClusterOptions{SnapshotEvery: -1})
		if err != nil {
			return "", nil, err
		}
		handler, closeSrv = s.Handler(), s.Close
	default:
		return "", nil, fmt.Errorf("unknown kind %q", kind)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		closeSrv()
	}
	return "http://" + ln.Addr().String(), stop, nil
}
