// Command datagen writes the synthetic Table 1 stand-in data sets (or a
// custom synthetic spec) to CSV, with the label in the last column —
// ready for external tools or for reloading via the CSV loader.
package main

import (
	"flag"
	"fmt"
	"os"

	"bayestree/internal/dataset"
)

func main() {
	var (
		name     = flag.String("dataset", "pendigits", "named data set (pendigits|letter|gender|covertype) or 'custom'")
		scale    = flag.Float64("scale", 1.0, "scale in (0,1] for named data sets")
		out      = flag.String("out", "", "output file (default <name>.csv)")
		size     = flag.Int("size", 10000, "custom: observations")
		classes  = flag.Int("classes", 5, "custom: classes")
		features = flag.Int("features", 8, "custom: features")
		seed     = flag.Int64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	var ds *dataset.Dataset
	var err error
	if *name == "custom" {
		ds, err = dataset.Synthetic(dataset.SyntheticSpec{
			Name: "custom", Size: *size, Classes: *classes, Features: *features, Seed: *seed,
		})
	} else {
		ds, err = dataset.ByName(*name, *scale)
	}
	if err != nil {
		fatalf("%v", err)
	}
	path := *out
	if path == "" {
		path = ds.Name + ".csv"
	}
	if err := ds.SaveCSV(path); err != nil {
		fatalf("%v", err)
	}
	counts := ds.ClassCounts()
	fmt.Printf("wrote %s: %d observations, %d features, %d classes %v\n",
		path, ds.Len(), ds.Dim(), len(counts), counts)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
