// Command servecluster runs the anytime clustering server: a sharded
// set of Section-4.2 clustering trees (ClusTrees) served over HTTP with
// per-object anytime descent budgets, a global node-visit admission
// controller, a pyramidal micro-cluster history and snapshot-based warm
// starts — the clustering counterpart of serveclass, running on the
// same engine.
//
// Start an empty two-dimensional server, sharded four ways, forgetting
// with half-life 1/0.004 stream objects:
//
//	servecluster -dim 2 -shards 4 -lambda 0.004
//
// Warm-start from (and persist back to) a snapshot:
//
//	servecluster -snapshot clusters.btsn -addr :8081
//
// Run a read-only replica that tails a primary's WAL stream and can be
// promoted (SIGHUP or -promote-file) when the primary dies:
//
//	servecluster -wal-dir /data/replica -follow http://primary:8081
//
// Endpoints: POST /cluster ({"x":[...],"budget":3}; NDJSON body for
// bulk ingest), GET /microclusters?minw=, GET /macroclusters?eps=&minw=,
// GET /window?t1=&t2=, GET /stats, GET /healthz (liveness), GET /readyz
// (readiness), GET /replicate (replication stream). On SIGTERM or
// SIGINT the server drains gracefully: /readyz flips to 503, in-flight
// requests finish within the -drain timeout, and the model is
// snapshotted back to -snapshot if set.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/persist"
	"bayestree/internal/registry"
	"bayestree/internal/replica"
	"bayestree/internal/serve"
	"bayestree/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8081", "HTTP listen address")
		shards   = flag.Int("shards", 4, "number of model shards (ignored when warm-starting from -snapshot)")
		snapshot = flag.String("snapshot", "", "snapshot path: warm-start from it when present, write it back on drain")
		dim      = flag.Int("dim", 0, "observation dimensionality when no snapshot exists")
		budget   = flag.Int("budget", 8, "default per-object descent budget when the request sets none")
		maxB     = flag.Int("max-budget", 64, "hard cap on any object's descent budget")
		nps      = flag.Float64("nps", 0, "admission capacity in node visits/second across all ingests (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "admission bucket capacity in node visits (0 = max(nps, max-budget))")
		lambda   = flag.Float64("lambda", 0.004, "decay rate: a weight halves every 1/λ stream objects (0 = never forget)")
		minW     = flag.Float64("min-weight", 0.05, "maintenance pruning floor: micro-clusters whose decayed weight falls below it are forgotten (with -lambda > 0)")
		decayDur = flag.Duration("decay-every", time.Minute, "wall-clock interval between maintenance sweeps (with -lambda > 0)")
		snapN    = flag.Int("snap-every", 1024, "record a pyramidal micro-cluster snapshot every N ingested objects (< 0 disables /window)")
		alpha    = flag.Int("snap-alpha", 2, "pyramidal store base (granularity coarsens by this factor per order)")
		snapCap  = flag.Int("snap-cap", 0, "pyramidal store per-order capacity (0 = alpha+1)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful drain timeout on SIGTERM/SIGINT")
		walDir   = flag.String("wal-dir", "", "durability directory: per-shard write-ahead log + checkpoint snapshots; ingested objects survive crashes via snapshot+replay recovery")
		fsyncDur = flag.Duration("fsync-every", 100*time.Millisecond, "WAL group-commit fsync interval; 0 fsyncs every ingest (with -wal-dir)")
		follow   = flag.String("follow", "", "run as a read-only replica of the primary at this base URL, e.g. http://host:8081 (requires -wal-dir; writes answer 307 to the primary)")
		promFile = flag.String("promote-file", "", "promote this replica to primary when the file appears (SIGHUP promotes too; with -follow)")
		replAddr = flag.String("replicate-addr", "", "serve the replication stream (/replicate) on a second listener at this address (with -wal-dir)")

		tenantsDir   = flag.String("tenants-dir", "", "multi-tenant mode: serve a registry of named clustering models rooted at this directory (/t/{tenant}/cluster, …); excludes -snapshot/-wal-dir/-follow")
		maxResident  = flag.Int("max-resident", 0, "multi-tenant: resident-model cap; LRU tenants beyond it are checkpointed and paged out (0 = registry default)")
		maxResBytes  = flag.Int64("max-resident-bytes", 0, "multi-tenant: additional resident-memory cap in estimated bytes (0 = none)")
		tenantDim    = flag.Int("tenant-default-dim", 2, "multi-tenant: dimensionality of tenants created on first write")
		tenantShards = flag.Int("tenant-default-shards", 1, "multi-tenant: shard count of tenants created on first write")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: servecluster [flags]\n\n"+
				"Serve the Section-4.2 anytime clustering extension over HTTP from a sharded\n"+
				"ClusTree model. Model source: -snapshot (warm start) or -dim (empty start);\n"+
				"one is required. Each ingested object descends with an anytime budget —\n"+
				"under overload objects park in inner-node buffers and hitchhike leafward\n"+
				"later, so the stream never backs up. -lambda sets exponential forgetting\n"+
				"per stream object; the background sweep prunes micro-clusters below\n"+
				"-min-weight every -decay-every. -wal-dir makes ingest durable: objects are\n"+
				"appended to a per-shard write-ahead log (group-committed every\n"+
				"-fsync-every) and recovery replays the log tail over the latest\n"+
				"checkpoint.\n\n"+
				"Examples:\n"+
				"  servecluster -dim 2 -shards 4 -lambda 0.004\n"+
				"  servecluster -snapshot clusters.btsn -nps 50000\n\n"+
				"Endpoints:\n"+
				"  POST /cluster        {\"x\":[...],\"budget\":3}; NDJSON body bulk-ingests\n"+
				"  GET  /microclusters  ?minw=0.5    current micro-clusters\n"+
				"  GET  /macroclusters  ?eps=&minw=  density-based offline clustering\n"+
				"  GET  /window         ?t1=&t2=     historical view via pyramidal snapshots\n"+
				"  GET  /stats          shard sizes, parked/merge/split, admission and replication counters\n"+
				"  GET  /healthz        liveness: 200 once listening\n"+
				"  GET  /readyz         readiness: 503 while recovering or draining\n"+
				"  GET  /replicate      replication stream (checkpoint + live WAL tail)\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		usageErrorf("unexpected arguments %v", flag.Args())
	}

	cfg := server.Config{
		DefaultBudget:  *budget,
		MaxBudget:      *maxB,
		NodesPerSecond: *nps,
		Burst:          *burst,
	}
	if *lambda > 0 {
		// No core.DecayOptions.Validate here: its MinWeight < 1 bound is
		// a classifier rule (fresh observations weigh 1); micro-cluster
		// floors are decayed object counts and may usefully exceed 1.
		if *minW < 0 {
			usageErrorf("-min-weight must be ≥ 0, got %v", *minW)
		}
		if *decayDur <= 0 {
			usageErrorf("-decay-every must be > 0 with -lambda set, got %v", *decayDur)
		}
		cfg.Decay = core.DecayOptions{Lambda: *lambda, MinWeight: *minW}
		cfg.DecayEvery = *decayDur
	} else if *lambda < 0 {
		usageErrorf("-lambda must be ≥ 0, got %v", *lambda)
	}
	copts := server.ClusterOptions{
		SnapshotAlpha:    *alpha,
		SnapshotCapacity: *snapCap,
		SnapshotEvery:    *snapN,
	}

	if *tenantsDir != "" {
		if *snapshot != "" || *walDir != "" || *follow != "" || *replAddr != "" {
			usageErrorf("-tenants-dir is exclusive with -snapshot/-wal-dir/-follow/-replicate-addr")
		}
		if *fsyncDur < 0 {
			usageErrorf("-fsync-every must be ≥ 0, got %v", *fsyncDur)
		}
		defaults := registry.TenantConfig{
			Dim:           *tenantDim,
			Shards:        *tenantShards,
			DefaultBudget: *budget,
			MaxBudget:     *maxB,
		}
		if *lambda > 0 {
			defaults.DecayLambda = *lambda
			defaults.DecayMinWeight = *minW
			defaults.DecayEveryMS = (*decayDur).Milliseconds()
		}
		runRegistry(*addr, *drain, registry.Options{
			Dir:              *tenantsDir,
			MaxResident:      *maxResident,
			MaxResidentBytes: *maxResBytes,
			NodesPerSecond:   *nps,
			FsyncEvery:       *fsyncDur,
			Defaults:         defaults,
		}, copts)
		return
	}
	if *maxResident != 0 || *maxResBytes != 0 {
		usageErrorf("-max-resident/-max-resident-bytes require -tenants-dir")
	}

	if *follow != "" {
		if *walDir == "" {
			usageErrorf("-follow requires -wal-dir (the replica's own durable state)")
		}
		if *fsyncDur < 0 {
			usageErrorf("-fsync-every must be ≥ 0, got %v", *fsyncDur)
		}
		runFollower(*addr, *follow, *promFile, *replAddr, *drain,
			server.DurabilityOptions{Dir: *walDir, FsyncEvery: *fsyncDur}, cfg, copts)
		return
	}
	if *promFile != "" {
		usageErrorf("-promote-file only applies to a replica (-follow)")
	}
	if *replAddr != "" && *walDir == "" {
		usageErrorf("-replicate-addr requires -wal-dir (replication ships the WAL)")
	}

	bootstrap := func() (*server.ClusterServer, error) {
		return buildServer(*snapshot, *dim, *shards, cfg, copts)
	}
	var s *server.ClusterServer
	var err error
	var recoverFn func() error
	if *walDir != "" {
		if *fsyncDur < 0 {
			usageErrorf("-fsync-every must be ≥ 0, got %v", *fsyncDur)
		}
		dopts := server.DurabilityOptions{Dir: *walDir, FsyncEvery: *fsyncDur}
		s, err = server.OpenDurableCluster(dopts, cfg, copts, bootstrap)
		if err == nil {
			recoverFn = func() error {
				if err := s.Recover(); err != nil {
					return err
				}
				st := s.Stats()
				log.Printf("recovery complete: %d WAL records replayed (%d torn dropped), generation %d, clock %d",
					st.WALReplayed, st.WALDroppedRecords, st.SnapshotGeneration, st.Clock)
				return nil
			}
		}
	} else {
		s, err = bootstrap()
	}
	if err != nil {
		log.Fatalf("servecluster: %v", err)
	}
	log.Printf("serving clustering over %d shards on %s (dim %d, default budget %d, λ=%g, clock %d)",
		s.NumShards(), *addr, s.Dim(), *budget, *lambda, s.Clock())

	app := serve.App{
		Name:         "servecluster",
		Addr:         *addr,
		Handler:      s.Handler(),
		DrainTimeout: *drain,
		Recover:      recoverFn,
		SetDraining:  s.SetDraining,
		Close:        s.Close,
		Persist: func() error {
			if *walDir != "" {
				if err := s.Checkpoint(); err != nil {
					return err
				}
				if err := s.CloseDurability(); err != nil {
					return err
				}
				log.Printf("final checkpoint written to %s (clock %d)", *walDir, s.Clock())
			}
			if *snapshot != "" {
				if err := persist.WriteFileAtomic(*snapshot, s.WriteSnapshot); err != nil {
					return err
				}
				log.Printf("snapshot written to %s (clock %d)", *snapshot, s.Clock())
			}
			return nil
		},
	}
	if *replAddr != "" {
		app.ReplicateAddr = *replAddr
		app.ReplicateHandler = s.ReplicateHandler()
	}
	if err := serve.Run(app); err != nil {
		log.Fatalf("%v", err)
	}
}

// runRegistry runs the multi-tenant lifecycle: a clustering model
// registry over the tenants directory, served until a drain
// checkpoints every loaded tenant back to disk.
func runRegistry(addr string, drain time.Duration, opts registry.Options, copts server.ClusterOptions) {
	r, err := registry.Open(opts, registry.ClusterBackend(copts))
	if err != nil {
		log.Fatalf("servecluster: %v", err)
	}
	log.Printf("serving %d clustering tenants (0 resident) from %s on %s (max resident %d)",
		r.Tenants(), opts.Dir, addr, r.Stats().MaxResident)
	app := serve.App{
		Name:         "servecluster",
		Addr:         addr,
		Handler:      r.Handler(),
		DrainTimeout: drain,
		SetDraining:  r.SetDraining,
		Persist: func() error {
			if err := r.Close(); err != nil {
				return err
			}
			log.Printf("drained: %d tenants checkpointed to %s", r.Tenants(), opts.Dir)
			return nil
		},
	}
	if err := serve.Run(app); err != nil {
		log.Fatalf("%v", err)
	}
}

// runFollower runs the replica lifecycle: a Follower over the durable
// directory, a Tailer pumping the primary's stream into it, and the
// serve loop with the promote triggers armed.
func runFollower(addr, primaryURL, promoteFile, replAddr string, drain time.Duration, dopts server.DurabilityOptions, cfg server.Config, copts server.ClusterOptions) {
	f, err := server.NewFollowerCluster(dopts, cfg, copts, primaryURL)
	if err != nil {
		log.Fatalf("servecluster: %v", err)
	}
	t := replica.New(f, replica.Options{
		PrimaryURL: primaryURL,
		Workload:   replica.WorkloadCluster,
		Epoch:      f.Epoch,
	})
	t.Start()
	log.Printf("following %s (wal %s); promote with SIGHUP%s", primaryURL, dopts.Dir, promoteHint(promoteFile))
	app := serve.App{
		Name:         "servecluster",
		Addr:         addr,
		Handler:      f.Handler(),
		DrainTimeout: drain,
		SetDraining:  f.SetDraining,
		Close:        f.Close,
		Persist: func() error {
			t.Stop()
			return f.Persist()
		},
		Promote: func() error {
			t.Stop()
			return f.Promote()
		},
		PromoteFile: promoteFile,
	}
	if replAddr != "" {
		app.ReplicateAddr = replAddr
		mux := http.NewServeMux()
		mux.Handle("/replicate", f.Handler())
		app.ReplicateHandler = mux
	}
	if err := serve.Run(app); err != nil {
		log.Fatalf("%v", err)
	}
}

// promoteHint describes the promote-file trigger for the startup log.
func promoteHint(path string) string {
	if path == "" {
		return ""
	}
	return fmt.Sprintf(" or by creating %s", path)
}

// buildServer resolves the model source: an existing snapshot wins,
// otherwise empty shards over the flag dimensionality.
func buildServer(snapshot string, dim, shards int, cfg server.Config, copts server.ClusterOptions) (*server.ClusterServer, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err == nil {
			defer f.Close()
			s, err := server.ClusterFromSnapshot(f, cfg, copts)
			if err != nil {
				return nil, fmt.Errorf("snapshot %s: %w", snapshot, err)
			}
			log.Printf("warm start from %s: %d shards, clock %d", snapshot, s.NumShards(), s.Clock())
			return s, nil
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
		log.Printf("snapshot %s does not exist yet; starting empty", snapshot)
	}
	if dim < 1 {
		usageErrorf("need -snapshot (existing) or -dim ≥ 1 to build a model")
	}
	if shards < 1 {
		usageErrorf("-shards must be ≥ 1, got %d", shards)
	}
	ccfg := clustree.DefaultConfig(dim)
	if cfg.Decay.Enabled() {
		ccfg.Lambda = cfg.Decay.Lambda
	} else {
		ccfg.Lambda = 0
	}
	return server.NewCluster(ccfg, shards, cfg, copts)
}

// usageErrorf prints the error and usage, then exits with status 2 —
// the conventional "bad invocation" status, distinct from runtime
// failures (1).
func usageErrorf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "servecluster: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
