// Command doclint checks that every exported symbol in the given
// package directories carries a doc comment — the repository's
// documentation gate, run in CI over the public facade and the core
// serving packages.
//
// Usage:
//
//	doclint DIR [DIR...]
//
// For grouped declarations (const/var/type blocks) a doc comment on the
// block or on the individual spec both count; test files are skipped.
// Exit status: 0 when clean, 1 when symbols are missing docs, 2 on bad
// invocation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint DIR [DIR...]")
		os.Exit(2)
	}
	missing := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		missing += n
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols without doc comments\n", missing)
		os.Exit(1)
	}
}

// lintDir parses one directory (skipping tests) and reports every
// exported symbol without a doc comment, returning the count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	missing := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: %s %s has no doc comment\n", fset.Position(pos), kind, name)
		missing++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
									report(name.Pos(), declKind(d.Tok), name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// exportedRecv reports whether a function's receiver (if any) is an
// exported type — methods on unexported types are internal API.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

// funcName renders Recv.Name for methods, Name for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// declKind names a value declaration for the report.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "constant"
	}
	return "variable"
}
