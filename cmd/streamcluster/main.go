// Command streamcluster demonstrates the Section 4.2 anytime clustering
// extension on a synthetic evolving stream: objects arrive with varying
// time budgets, the clustering tree parks and hitchhikes insertions under
// pressure, decayed cluster features follow concept drift, and a
// density-based offline step reports the macro clusters — with pyramidal
// snapshots enabling windowed views of the stream history.
package main

import (
	"flag"
	"fmt"
	"os"

	"bayestree/internal/clustree"
	"bayestree/internal/dataset"
)

func main() {
	var (
		size    = flag.Int("size", 30000, "stream length")
		classes = flag.Int("sources", 4, "number of drifting sources")
		dims    = flag.Int("dims", 2, "dimensionality")
		lambda  = flag.Float64("lambda", 0.003, "decay rate (weight halves every 1/λ)")
		drift   = flag.Float64("drift", 0.35, "drift distance over the stream")
		burst   = flag.Int("burst", 6, "every burst-th object arrives with budget 1")
		eps     = flag.Float64("eps", 0.12, "macro clustering connection radius")
		minw    = flag.Float64("minw", 5, "macro clustering core weight")
		seed    = flag.Int64("seed", 42, "seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: streamcluster [flags]\n\n"+
				"Demonstrate the Section-4.2 anytime clustering extension on a synthetic\n"+
				"drifting stream: budget-starved objects park in inner-node buffers and\n"+
				"hitchhike leafward, decayed cluster features follow the drift, and a\n"+
				"density-based offline step reports the macro clusters — with pyramidal\n"+
				"snapshots enabling windowed views of the stream history.\n\n"+
				"Examples:\n"+
				"  streamcluster\n"+
				"  streamcluster -size 100000 -sources 6 -lambda 0.001 -burst 3\n"+
				"  streamcluster -dims 5 -eps 0.2 -minw 10\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		usageErrorf("unexpected arguments %v", flag.Args())
	}
	if *size < 1 {
		usageErrorf("-size must be ≥ 1, got %d", *size)
	}
	if *dims < 1 {
		usageErrorf("-dims must be ≥ 1, got %d", *dims)
	}
	if *lambda < 0 {
		usageErrorf("-lambda must be ≥ 0, got %v", *lambda)
	}

	ds, err := dataset.DriftStream(dataset.DriftSpec{
		Name: "stream", Size: *size, Classes: *classes, Features: *dims,
		DriftDistance: *drift, Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	cfg := clustree.DefaultConfig(*dims)
	cfg.Lambda = *lambda
	tree, err := clustree.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	store, err := clustree.NewSnapshotStore(2, 4)
	if err != nil {
		fatalf("%v", err)
	}

	for i := 0; i < ds.Len(); i++ {
		budget := -1
		if *burst > 0 && i%*burst == 0 {
			budget = 1
		}
		ts := float64(i + 1)
		if err := tree.Insert(ds.X[i], ts, budget); err != nil {
			fatalf("insert %d: %v", i, err)
		}
		if i%256 == 255 {
			if err := store.Record(ts, tree.MicroClusters(0.5)); err != nil {
				fatalf("snapshot: %v", err)
			}
		}
	}
	if err := tree.Validate(); err != nil {
		fatalf("invariant violation: %v", err)
	}

	fmt.Printf("stream of %d objects, %d drifting sources, λ=%v\n", ds.Len(), *classes, *lambda)
	fmt.Printf("parked insertions: %d  leaf splits: %d  merges into micro-clusters kept the tree at weight %.1f\n",
		tree.Parked(), tree.Splits(), tree.Weight())

	mcs := tree.MicroClusters(1)
	macros, noise := clustree.MacroClusters(mcs, clustree.MacroOptions{Eps: *eps, MinWeight: *minw})
	fmt.Printf("\ncurrent view: %d micro-clusters → %d macro clusters (%d noise)\n", len(mcs), len(macros), len(noise))
	for i, m := range macros {
		fmt.Printf("  cluster %d: weight %8.1f at %s\n", i, m.Weight, coords(m.Mean))
	}

	// Windowed view over the last quarter of the stream via snapshots.
	t2 := float64(ds.Len())
	t1 := t2 * 0.75
	window, err := store.Window(t1, t2, 0.1)
	if err != nil {
		fmt.Printf("\n(windowed view unavailable: %v)\n", err)
		return
	}
	wm, wn := clustree.MacroClusters(window, clustree.MacroOptions{Eps: *eps, MinWeight: *minw / 2})
	fmt.Printf("\nwindow (%.0f, %.0f]: %d macro clusters (%d noise) — recent data only\n", t1, t2, len(wm), len(wn))
	for i, m := range wm {
		fmt.Printf("  cluster %d: weight %8.1f at %s\n", i, m.Weight, coords(m.Mean))
	}
	fmt.Printf("\nsnapshots retained: %d (pyramidal over %d timestamps)\n", store.Len(), ds.Len())
}

func coords(x []float64) string {
	s := "("
	for i, v := range x {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.2f", v)
	}
	return s + ")"
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamcluster: "+format+"\n", args...)
	os.Exit(1)
}

// usageErrorf prints the error and usage, then exits with status 2 —
// the conventional "bad invocation" status, distinct from runtime
// failures (1).
func usageErrorf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamcluster: "+format+"\n\n", args...)
	flag.Usage()
	os.Exit(2)
}
