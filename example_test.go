package bayestree_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bayestree"
)

// Train a classifier and classify one object under increasing anytime
// budgets: with more node reads the posterior sharpens.
func Example() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "example", Size: 2000, Classes: 2, Features: 4,
		ModesPerClass: 3, Spread: 0.07, Overlap: 0.2, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "emtopdown"})
	if err != nil {
		log.Fatal(err)
	}
	x := ds.X[10]
	fmt.Println("true label:", ds.Y[10])
	fmt.Println("budget 0:  ", clf.Classify(x, 0))
	fmt.Println("budget 50: ", clf.Classify(x, 50))
	fmt.Println("full model:", clf.Classify(x, -1))
	// Output:
	// true label: 1
	// budget 0:   1
	// budget 50:  1
	// full model: 1
}

// The interruptible query API: refine until an external deadline and read
// off the current best prediction — the anytime contract.
func ExampleClassifier_NewQuery() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "q", Size: 1000, Classes: 2, Features: 3,
		ModesPerClass: 2, Spread: 0.06, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "hilbert"})
	if err != nil {
		log.Fatal(err)
	}
	q := clf.NewQuery(ds.X[0])
	for q.NodesRead() < 8 && q.Step() {
		// ... until the stream interrupts us.
	}
	fmt.Println("nodes read:", q.NodesRead())
	fmt.Println("prediction:", q.Predict() == ds.Y[0])
	// Output:
	// nodes read: 8
	// prediction: true
}

// Online learning: the classifier absorbs labelled stream objects and its
// priors shift accordingly.
func ExampleClassifier_Learn() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "learn", Size: 600, Classes: 2, Features: 3,
		ModesPerClass: 2, Spread: 0.06, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "iterative"})
	if err != nil {
		log.Fatal(err)
	}
	before := clf.Tree(0).Len()
	if err := clf.Learn(ds.X[0], 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree grew by:", clf.Tree(0).Len()-before)
	// Output:
	// tree grew by: 1
}

// Throughput-bound serving: BatchClassify fans a batch of objects over
// a worker pool sharing one classifier. Classification is read-only, so
// the workers need no locks, and the predictions come back in input
// order regardless of worker scheduling.
func ExampleBatchClassify() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "batch", Size: 1500, Classes: 3, Features: 4,
		ModesPerClass: 2, Spread: 0.06, Seed: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "emtopdown"})
	if err != nil {
		log.Fatal(err)
	}
	preds := bayestree.BatchClassify(clf, ds.X[:200], 25, 4)
	correct := 0
	for i, p := range preds {
		if p == ds.Y[i] {
			correct++
		}
	}
	fmt.Println("batch size:", len(preds))
	fmt.Println("correct at budget 25:", correct)
	// Output:
	// batch size: 200
	// correct at budget 25: 198
}

// Snapshot persistence: a trained classifier saved to disk reloads to a
// model that classifies digit-identically — the warm-start path for
// serving processes, sparing the bulk-loading time on restart.
func ExampleSave() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "snap", Size: 1200, Classes: 3, Features: 4,
		ModesPerClass: 2, Spread: 0.07, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "emtopdown"})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "bayestree-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.btsn")
	if err := bayestree.Save(clf, path); err != nil {
		log.Fatal(err)
	}
	loaded, err := bayestree.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := 0; i < 300; i++ {
		x := ds.X[i]
		if clf.Classify(x, 25) != loaded.Classify(x, 25) ||
			clf.OutlierScore(x, 25) != loaded.OutlierScore(x, 25) {
			identical = false
		}
	}
	fmt.Println("reloaded classifications digit-identical:", identical)
	// Output:
	// reloaded classifications digit-identical: true
}
