package bayestree_test

import (
	"fmt"
	"log"

	"bayestree"
)

// Train a classifier and classify one object under increasing anytime
// budgets: with more node reads the posterior sharpens.
func Example() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "example", Size: 2000, Classes: 2, Features: 4,
		ModesPerClass: 3, Spread: 0.07, Overlap: 0.2, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "emtopdown"})
	if err != nil {
		log.Fatal(err)
	}
	x := ds.X[10]
	fmt.Println("true label:", ds.Y[10])
	fmt.Println("budget 0:  ", clf.Classify(x, 0))
	fmt.Println("budget 50: ", clf.Classify(x, 50))
	fmt.Println("full model:", clf.Classify(x, -1))
	// Output:
	// true label: 1
	// budget 0:   1
	// budget 50:  1
	// full model: 1
}

// The interruptible query API: refine until an external deadline and read
// off the current best prediction — the anytime contract.
func ExampleClassifier_NewQuery() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "q", Size: 1000, Classes: 2, Features: 3,
		ModesPerClass: 2, Spread: 0.06, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "hilbert"})
	if err != nil {
		log.Fatal(err)
	}
	q := clf.NewQuery(ds.X[0])
	for q.NodesRead() < 8 && q.Step() {
		// ... until the stream interrupts us.
	}
	fmt.Println("nodes read:", q.NodesRead())
	fmt.Println("prediction:", q.Predict() == ds.Y[0])
	// Output:
	// nodes read: 8
	// prediction: true
}

// Online learning: the classifier absorbs labelled stream objects and its
// priors shift accordingly.
func ExampleClassifier_Learn() {
	ds, err := bayestree.Synthetic(bayestree.SyntheticSpec{
		Name: "learn", Size: 600, Classes: 2, Features: 3,
		ModesPerClass: 2, Spread: 0.06, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := bayestree.Train(ds, bayestree.TrainOptions{Loader: "iterative"})
	if err != nil {
		log.Fatal(err)
	}
	before := clf.Tree(0).Len()
	if err := clf.Learn(ds.X[0], 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree grew by:", clf.Tree(0).Len()-before)
	// Output:
	// tree grew by: 1
}
