package bulkload

import (
	"fmt"
	"math"

	"bayestree/internal/core"
	"bayestree/internal/em"
)

// EMTopDown is the machine-learning bulk loader of Section 3.1 that the
// paper found best on every data set: recursively split the training set
// with the EM algorithm into at most M (the fanout) clusters, fix up
// degenerate outcomes (fewer than m clusters → split the biggest again;
// a single cluster → split at the two farthest elements), store clusters
// of at most L observations as leaves and recurse into larger ones. The
// resulting tree may be unbalanced, which the paper explicitly accepts:
// "the results show that this is not a drawback but even leads to better
// anytime classification performance".
type EMTopDown struct {
	// Seed makes the EM runs reproducible (default 1).
	Seed int64
	// MaxIters bounds each EM run (default 25, plenty for splitting).
	MaxIters int
}

// Name implements Loader.
func (EMTopDown) Name() string { return "emtopdown" }

// Build implements Loader.
func (e EMTopDown) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	if err := validatePoints(points, cfg); err != nil {
		return nil, err
	}
	seed := e.Seed
	if seed == 0 {
		seed = 1
	}
	iters := e.MaxIters
	if iters <= 0 {
		iters = 25
	}
	b, err := core.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	builder := &emBuilder{b: b, cfg: cfg, seed: seed, iters: iters}
	root, err := builder.build(points, 0)
	if err != nil {
		return nil, err
	}
	return b.Finish(root, false)
}

type emBuilder struct {
	b     *core.Builder
	cfg   core.Config
	seed  int64
	iters int
	calls int64
}

// build constructs the subtree over the given observations.
func (eb *emBuilder) build(points [][]float64, depth int) (*core.Node, error) {
	if len(points) <= eb.cfg.MaxLeaf {
		return eb.b.Leaf(points)
	}
	if depth > 64 {
		return nil, fmt.Errorf("bulkload: EMTopDown recursion too deep (%d points)", len(points))
	}
	clusters, err := eb.cluster(points)
	if err != nil {
		return nil, err
	}
	children := make([]*core.Node, 0, len(clusters))
	for _, cl := range clusters {
		child, err := eb.build(cl, depth+1)
		if err != nil {
			return nil, err
		}
		children = append(children, child)
	}
	return eb.b.Inner(children)
}

// cluster partitions the observations into between 2 and M groups using
// EM with the paper's fix-ups.
func (eb *emBuilder) cluster(points [][]float64) ([][][]float64, error) {
	eb.calls++
	res, err := em.Fit(points, em.Options{
		K:        eb.cfg.MaxFanout,
		MaxIters: eb.iters,
		Seed:     eb.seed + eb.calls, // vary per call, deterministic overall
	})
	if err != nil {
		return nil, err
	}
	groups := make([][][]float64, 0, res.K())
	for _, idxs := range res.Clusters() {
		g := make([][]float64, len(idxs))
		for i, idx := range idxs {
			g[i] = points[idx]
		}
		groups = append(groups, g)
	}
	// "In the rare case that the EM returns a single cluster, this cluster
	// is split by picking the two farthest elements and assigning the
	// remaining elements to the closest of the two."
	if len(groups) == 1 {
		a, bb := farthestPairSplit(groups[0])
		groups = [][][]float64{a, bb}
	}
	// "If the EM returns less than m clusters, the biggest resulting
	// cluster is split again such that the total number of resulting
	// clusters is at most M."
	for len(groups) < eb.cfg.MinFanout && len(groups) < eb.cfg.MaxFanout {
		big := 0
		for i := range groups {
			if len(groups[i]) > len(groups[big]) {
				big = i
			}
		}
		if len(groups[big]) < 2 {
			break
		}
		a, bb := farthestPairSplit(groups[big])
		groups[big] = a
		groups = append(groups, bb)
	}
	// Guard the node capacity (EM cannot exceed M by construction, the
	// extra splits above are capped, but be defensive).
	if len(groups) > eb.cfg.MaxFanout {
		groups = groups[:eb.cfg.MaxFanout]
	}
	// Merge empty or singleton artifacts into their nearest neighbour so
	// no degenerate subtrees arise.
	groups = mergeTiny(groups, 2)
	if len(groups) < 2 {
		a, bb := farthestPairSplit(groups[0])
		groups = [][][]float64{a, bb}
	}
	return groups, nil
}

// farthestPairSplit splits points by their two mutually farthest elements
// (approximated by a double sweep from the centroid, which is exact enough
// for a splitting heuristic and O(n)) and assigns the rest to the closer
// representative.
func farthestPairSplit(points [][]float64) (a, b [][]float64) {
	d := len(points[0])
	centroid := make([]float64, d)
	for _, p := range points {
		for k, v := range p {
			centroid[k] += v
		}
	}
	for k := range centroid {
		centroid[k] /= float64(len(points))
	}
	p1 := farthestFrom(points, centroid)
	p2 := farthestFrom(points, p1)
	for _, p := range points {
		if sq(p, p1) <= sq(p, p2) {
			a = append(a, p)
		} else {
			b = append(b, p)
		}
	}
	// Never return an empty side.
	if len(a) == 0 {
		a = append(a, b[len(b)-1])
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		b = append(b, a[len(a)-1])
		a = a[:len(a)-1]
	}
	return a, b
}

func farthestFrom(points [][]float64, from []float64) []float64 {
	best := points[0]
	bestD := -1.0
	for _, p := range points {
		if d := sq(p, from); d > bestD {
			best, bestD = p, d
		}
	}
	return best
}

func sq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// mergeTiny merges groups smaller than minSize into the group with the
// nearest centroid.
func mergeTiny(groups [][][]float64, minSize int) [][][]float64 {
	for {
		tiny := -1
		for i, g := range groups {
			if len(g) < minSize && len(groups) > 1 {
				tiny = i
				break
			}
		}
		if tiny == -1 {
			return groups
		}
		tc := centroidOf(groups[tiny])
		best, bestD := -1, math.Inf(1)
		for i, g := range groups {
			if i == tiny {
				continue
			}
			if d := sq(centroidOf(g), tc); d < bestD {
				best, bestD = i, d
			}
		}
		groups[best] = append(groups[best], groups[tiny]...)
		groups = append(groups[:tiny], groups[tiny+1:]...)
	}
}

func centroidOf(points [][]float64) []float64 {
	d := len(points[0])
	c := make([]float64, d)
	for _, p := range points {
		for k, v := range p {
			c[k] += v
		}
	}
	for k := range c {
		c[k] /= float64(len(points))
	}
	return c
}
