package bulkload

import (
	"math"
	"math/rand"
	"testing"

	"bayestree/internal/core"
)

// The paper's deployment combines both construction modes: bulk load the
// initial training window, then learn incrementally from the stream.
// Every loader's tree must accept subsequent R*-style insertions without
// violating invariants — including the unbalanced EMTopDown trees.
func TestBulkLoadThenIncrementalInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	initial := randomPoints(rng, 200, 3)
	stream := randomPoints(rng, 300, 3)
	for _, loader := range All() {
		tree, err := loader.Build(initial, testConfig(3))
		if err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
		for i, p := range stream {
			if err := tree.Insert(p); err != nil {
				t.Fatalf("%s: stream insert %d: %v", loader.Name(), i, err)
			}
		}
		if tree.Len() != 500 {
			t.Fatalf("%s: Len = %d", loader.Name(), tree.Len())
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: invariants after mixed construction: %v", loader.Name(), err)
		}
		// Queries over the mixed tree remain exact.
		cur := tree.NewCursor(stream[0], core.DescentGlobal, core.PriorityProbabilistic)
		cur.RefineAll()
		if ld := cur.LogDensity(); math.IsNaN(ld) || math.IsInf(ld, 1) {
			t.Fatalf("%s: degenerate density %v", loader.Name(), ld)
		}
	}
}

// Goldberger's post-processing fallback path: adversarial group-size
// interactions (heavy duplicates at the capacity boundary) must still
// produce a legal tree via the z-curve chunking fallback.
func TestGoldbergerAdversarialSizes(t *testing.T) {
	var points [][]float64
	// Two tight far-apart blobs plus scattered singles: regrouping tends
	// to produce one huge and many tiny groups.
	for i := 0; i < 60; i++ {
		points = append(points, []float64{0.001 * float64(i%3), 0})
	}
	for i := 0; i < 60; i++ {
		points = append(points, []float64{10 + 0.001*float64(i%3), 10})
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 17; i++ {
		points = append(points, []float64{rng.Float64() * 20, rng.Float64() * 20})
	}
	tree, err := (Goldberger{}).Build(points, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tree.Len() != len(points) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(points))
	}
}

// Loaders must not retain references to the caller's point slices.
func TestLoadersCopyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	points := randomPoints(rng, 60, 2)
	for _, loader := range All() {
		tree, err := loader.Build(points, testConfig(2))
		if err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
		before := sumFirstCoord(tree)
		for _, p := range points {
			p[0] = 999
		}
		after := sumFirstCoord(tree)
		// Restore for the next loader.
		for i, p := range points {
			p[0] = before / float64(len(points)) // irrelevant exact value
			_ = i
		}
		points = randomPoints(rng, 60, 2)
		if before != after {
			t.Fatalf("%s: tree aliases caller's data", loader.Name())
		}
	}
}

func sumFirstCoord(tree *core.Tree) float64 {
	var s float64
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n.IsLeaf() {
			for _, p := range n.Points() {
				s += p[0]
			}
			return
		}
		for _, e := range n.Entries() {
			walk(e.Child)
		}
	}
	walk(tree.Root())
	return s
}
