package bulkload

import (
	"fmt"
	"math"

	"bayestree/internal/core"
	"bayestree/internal/mixture"
	"bayestree/internal/sfc"
	"bayestree/internal/stats"
)

// Goldberger is the statistical bottom-up bulk loader of Section 3.1 based
// on Goldberger & Roweis [10]: starting from a mixture with one kernel per
// training item, each tree level is the coarser mixture obtained by
// regroup/refit under the KL mixture distance (Definition 4), initialised
// by grouping ⌈0.75·M⌉ components in z-curve order. Groups that end up
// holding too many members for a node are split by moving the group mean
// ±ε along its highest-variance dimension and re-assigning members as in
// the regroup step; groups with too few members are merged with their
// KL-closest neighbour — exactly the post-processing the paper chose after
// rejecting the integer-linear-program formulation as too slow.
type Goldberger struct {
	// MaxIters bounds each level's regroup/refit loop (default 8; the
	// loop usually converges much earlier).
	MaxIters int
	// Epsilon scales the representative displacement of the oversize
	// split, in units of the group's standard deviation (default 0.5).
	Epsilon float64
}

// Name implements Loader.
func (Goldberger) Name() string { return "goldberger" }

// Build implements Loader.
func (g Goldberger) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	reducer := func(f *mixture.Model, s, group int) (*mixture.ReduceResult, error) {
		iters := g.MaxIters
		if iters <= 0 {
			iters = 8
		}
		return mixture.Reduce(f, s, mixture.ReduceOptions{MaxIters: iters, GroupSize: group})
	}
	return statisticalBuild(points, cfg, reducer, g.Epsilon)
}

// VirtualSampling is the second statistical approach the paper adapted
// (Vasconcelos & Lippman [21]); the paper reports it was outperformed by
// Goldberger, which the ablation benches let you confirm.
type VirtualSampling struct {
	// MaxIters bounds each level's EM loop (default 8).
	MaxIters int
	// Epsilon as for Goldberger (default 0.5).
	Epsilon float64
}

// Name implements Loader.
func (VirtualSampling) Name() string { return "vsample" }

// Build implements Loader.
func (v VirtualSampling) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	reducer := func(f *mixture.Model, s, group int) (*mixture.ReduceResult, error) {
		iters := v.MaxIters
		if iters <= 0 {
			iters = 8
		}
		return mixture.VirtualSample(f, s, mixture.VirtualSampleOptions{MaxIters: iters})
	}
	return statisticalBuild(points, cfg, reducer, v.Epsilon)
}

type reduceFn func(f *mixture.Model, s, group int) (*mixture.ReduceResult, error)

// statisticalBuild stacks tree levels bottom-up, each produced by reducing
// the previous level's mixture.
func statisticalBuild(points [][]float64, cfg core.Config, reduce reduceFn, epsilon float64) (*core.Tree, error) {
	if err := validatePoints(points, cfg); err != nil {
		return nil, err
	}
	if epsilon <= 0 {
		epsilon = 0.5
	}
	b, err := core.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}

	// Level 0: one kernel per training item, bandwidth by Silverman.
	cf := stats.CFOfAll(points, cfg.Dim)
	variance := cf.Variance()
	sigma := make([]float64, len(variance))
	for i, v := range variance {
		sigma[i] = math.Sqrt(v)
	}
	bw := stats.SilvermanBandwidth(sigma, len(points), cfg.Dim)
	kernelVar := make([]float64, cfg.Dim)
	for i, h := range bw {
		kernelVar[i] = h * h
		if kernelVar[i] < stats.VarianceFloor {
			kernelVar[i] = stats.VarianceFloor
		}
	}
	comps := make([]stats.Gaussian, len(points))
	weights := make([]float64, len(points))
	for i, p := range points {
		comps[i] = stats.Gaussian{Mean: p, Var: kernelVar}
		weights[i] = 1
	}
	fine, err := mixture.New(weights, comps)
	if err != nil {
		return nil, err
	}

	// Reduce kernels to leaves.
	leafGroups, err := reduceToGroups(fine, len(points), cfg.MinLeaf, cfg.MaxLeaf, reduce, epsilon)
	if err != nil {
		return nil, fmt.Errorf("bulkload: leaf level: %w", err)
	}
	nodes := make([]*core.Node, 0, len(leafGroups))
	for _, grp := range leafGroups {
		pts := make([][]float64, len(grp))
		for i, idx := range grp {
			pts[i] = points[idx]
		}
		leaf, err := b.Leaf(pts)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, leaf)
	}

	// Stack inner levels until everything fits under one root.
	for len(nodes) > cfg.MaxFanout {
		level, err := levelMixture(nodes, cfg.Dim)
		if err != nil {
			return nil, err
		}
		groups, err := reduceToGroups(level, len(nodes), cfg.MinFanout, cfg.MaxFanout, reduce, epsilon)
		if err != nil {
			return nil, fmt.Errorf("bulkload: inner level (%d nodes): %w", len(nodes), err)
		}
		next := make([]*core.Node, 0, len(groups))
		for _, grp := range groups {
			children := make([]*core.Node, len(grp))
			for i, idx := range grp {
				children[i] = nodes[idx]
			}
			inner, err := b.Inner(children)
			if err != nil {
				return nil, err
			}
			next = append(next, inner)
		}
		if len(next) >= len(nodes) {
			return nil, fmt.Errorf("bulkload: level reduction made no progress (%d → %d)", len(nodes), len(next))
		}
		nodes = next
	}
	var root *core.Node
	if len(nodes) == 1 {
		root = nodes[0]
	} else {
		root, err = b.Inner(nodes)
		if err != nil {
			return nil, err
		}
	}
	// Mixture-driven grouping does not guarantee equal-size paths per se,
	// but levels are stacked uniformly, so the tree is balanced.
	return b.Finish(root, true)
}

// levelMixture builds the mixture of a node level: one component per node
// from its cluster feature, weighted by its count.
func levelMixture(nodes []*core.Node, dim int) (*mixture.Model, error) {
	weights := make([]float64, len(nodes))
	comps := make([]stats.Gaussian, len(nodes))
	for i, n := range nodes {
		cf := nodeCF(n, dim)
		weights[i] = cf.N
		comps[i] = cf.Gaussian()
	}
	return mixture.New(weights, comps)
}

func nodeCF(n *core.Node, dim int) stats.CF {
	cf := stats.NewCF(dim)
	if n.IsLeaf() {
		for _, p := range n.Points() {
			cf.Add(p)
		}
		return cf
	}
	for _, e := range n.Entries() {
		cf.Merge(e.CF)
	}
	return cf
}

// reduceToGroups reduces the fine mixture to ~count/⌈0.75·max⌉ groups and
// post-processes them into the legal size range [min, max].
func reduceToGroups(fine *mixture.Model, count, minSize, maxSize int, reduce reduceFn, epsilon float64) ([][]int, error) {
	group := (3*maxSize + 3) / 4 // ⌈0.75·M⌉
	if group < minSize {
		group = minSize
	}
	if count <= maxSize {
		all := make([]int, count)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	s := (count + group - 1) / group
	if s < 2 {
		s = 2
	}
	res, err := reduce(fine, s, group)
	if err != nil {
		return nil, err
	}
	groups := make([][]int, s)
	for i, j := range res.Pi {
		groups[j] = append(groups[j], i)
	}
	nonEmpty := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	return enforceGroupBounds(nonEmpty, fine, minSize, maxSize, epsilon)
}

// enforceGroupBounds applies the paper's post-processing: split oversize
// groups via ±ε representatives, merge undersize groups into their
// KL-closest neighbour. A bounded number of passes resolves interactions;
// any residual illegality falls back to z-curve chunking, which is always
// legal.
func enforceGroupBounds(groups [][]int, fine *mixture.Model, minSize, maxSize int, epsilon float64) ([][]int, error) {
	for pass := 0; pass < 12; pass++ {
		changed := false
		// Split oversize groups.
		var next [][]int
		for _, g := range groups {
			if len(g) <= maxSize {
				next = append(next, g)
				continue
			}
			a, b := splitGroup(g, fine, epsilon)
			next = append(next, a, b)
			changed = true
		}
		groups = next
		// Merge undersize groups.
		for {
			tiny := -1
			for i, g := range groups {
				if len(g) < minSize && len(groups) > 1 {
					tiny = i
					break
				}
			}
			if tiny == -1 {
				break
			}
			gTiny := groupGaussian(groups[tiny], fine)
			best, bestKL := -1, math.Inf(1)
			for i, g := range groups {
				if i == tiny {
					continue
				}
				if kl := stats.KL(gTiny, groupGaussian(g, fine)); kl < bestKL {
					best, bestKL = i, kl
				}
			}
			groups[best] = append(groups[best], groups[tiny]...)
			groups = append(groups[:tiny], groups[tiny+1:]...)
			changed = true
		}
		legal := true
		for _, g := range groups {
			if len(g) > maxSize || (len(g) < minSize && len(groups) > 1) {
				legal = false
				break
			}
		}
		if legal {
			return groups, nil
		}
		if !changed {
			break
		}
	}
	// Fallback: flatten and re-chunk in z-curve order of means. Always
	// legal; only reached for adversarial size interactions.
	var all []int
	for _, g := range groups {
		all = append(all, g...)
	}
	means := make([][]float64, len(all))
	for i, idx := range all {
		means[i] = fine.Comps[idx].Mean
	}
	order, err := sfc.SortByCurve(means, fine.Dim(), 10, sfc.ZOrder)
	if err != nil {
		return nil, err
	}
	sizes := chunkSizes(len(all), minSize, maxSize, (3*maxSize+3)/4)
	out := make([][]int, 0, len(sizes))
	pos := 0
	for _, sz := range sizes {
		g := make([]int, sz)
		for i := 0; i < sz; i++ {
			g[i] = all[order[pos+i]]
		}
		out = append(out, g)
		pos += sz
	}
	return out, nil
}

// splitGroup implements the paper's oversize split: compute the group's
// Gaussian, move its mean by ±ε·σ along the dimension with the highest
// variance, place a Gaussian over each representative and re-assign the
// members by KL as in the regroup step. Degenerate assignments fall back
// to a median split along the same dimension.
func splitGroup(g []int, fine *mixture.Model, epsilon float64) (a, b []int) {
	gg := groupGaussian(g, fine)
	dim := 0
	for k := range gg.Var {
		if gg.Var[k] > gg.Var[dim] {
			dim = k
		}
	}
	delta := epsilon * math.Sqrt(gg.Var[dim])
	if delta <= 0 {
		delta = 1e-6
	}
	repA := stats.Gaussian{Mean: append([]float64(nil), gg.Mean...), Var: gg.Var}
	repB := stats.Gaussian{Mean: append([]float64(nil), gg.Mean...), Var: gg.Var}
	repA.Mean[dim] -= delta
	repB.Mean[dim] += delta
	for _, idx := range g {
		if stats.KL(fine.Comps[idx], repA) <= stats.KL(fine.Comps[idx], repB) {
			a = append(a, idx)
		} else {
			b = append(b, idx)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		// Median split along the chosen dimension.
		sorted := append([]int(nil), g...)
		sortSlice(sorted, func(x, y int) bool {
			return fine.Comps[x].Mean[dim] < fine.Comps[y].Mean[dim]
		})
		mid := len(sorted) / 2
		return sorted[:mid], sorted[mid:]
	}
	return a, b
}

// groupGaussian is the moment-preserving merge of a group's components.
func groupGaussian(g []int, fine *mixture.Model) stats.Gaussian {
	w, acc := 0.0, stats.Gaussian{}
	first := true
	for _, idx := range g {
		if first {
			w, acc = fine.Weights[idx], fine.Comps[idx]
			first = false
			continue
		}
		w, acc = mixture.MergeGaussians(w, acc, fine.Weights[idx], fine.Comps[idx])
	}
	return acc
}

func sortSlice(ids []int, less func(a, b int) bool) {
	// insertion sort is sufficient for group-size slices
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
