// Package bulkload implements the bulk-loading strategies of Section 3 of
// the paper, all producing Bayes trees over one training population:
//
//   - Iterative — the baseline ("Iterativ" in the figures): R*-style
//     incremental insertion, one observation at a time, as in [16].
//   - Hilbert, ZCurve — traditional R-tree bottom-up packing in
//     space-filling-curve order.
//   - STR — sort-tile-recursive packing [14].
//   - Goldberger — statistical bottom-up construction that reduces the
//     mixture of one level to the next coarser level by regroup/refit
//     under the KL-based mixture distance [10].
//   - VirtualSampling — the alternative statistical reduction of [21],
//     which the paper also adapted (and found weaker).
//   - EMTopDown — recursive top-down EM clustering of the observations,
//     the strategy the paper found best throughout.
package bulkload

import (
	"fmt"
	"sort"

	"bayestree/internal/core"
)

// Loader builds a Bayes tree from a training population.
type Loader interface {
	// Name identifies the strategy in reports and flags ("emtopdown",
	// "hilbert", "zcurve", "str", "goldberger", "vsample", "iterative").
	Name() string
	// Build constructs a tree over the observations with the given
	// structural configuration.
	Build(points [][]float64, cfg core.Config) (*core.Tree, error)
}

// ByName returns the loader registered under name, using default options.
func ByName(name string) (Loader, bool) {
	switch name {
	case "iterative", "iterativ":
		return Iterative{}, true
	case "hilbert":
		return Hilbert{}, true
	case "zcurve", "z":
		return ZCurve{}, true
	case "str":
		return STR{}, true
	case "goldberger":
		return Goldberger{}, true
	case "vsample", "virtualsampling":
		return VirtualSampling{}, true
	case "emtopdown", "em":
		return EMTopDown{}, true
	}
	return nil, false
}

// Names lists the registered loader names in canonical report order.
func Names() []string {
	return []string{"emtopdown", "hilbert", "goldberger", "iterative", "zcurve", "str", "vsample"}
}

// All returns one default-configured loader per strategy, in Names order.
func All() []Loader {
	names := Names()
	out := make([]Loader, 0, len(names))
	for _, n := range names {
		l, _ := ByName(n)
		out = append(out, l)
	}
	return out
}

// Iterative is the paper's baseline: build by repeated incremental
// insertion (Section 2.2 / [16]).
type Iterative struct{}

// Name implements Loader.
func (Iterative) Name() string { return "iterative" }

// Build implements Loader.
func (Iterative) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("bulkload: no observations")
	}
	t, err := core.NewTree(cfg)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		if err := t.Insert(p); err != nil {
			return nil, fmt.Errorf("bulkload: inserting observation %d: %w", i, err)
		}
	}
	return t, nil
}

// validatePoints performs the shared input checks.
func validatePoints(points [][]float64, cfg core.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(points) == 0 {
		return fmt.Errorf("bulkload: no observations")
	}
	for i, p := range points {
		if len(p) != cfg.Dim {
			return fmt.Errorf("bulkload: observation %d has dim %d, want %d", i, len(p), cfg.Dim)
		}
	}
	return nil
}

// chunkSizes splits n items into groups within [minSize, maxSize], as
// evenly as possible, preferring the target fill. It returns nil when n
// cannot be split legally (n < minSize yields a single undersized group,
// which callers may accept for roots).
func chunkSizes(n, minSize, maxSize, target int) []int {
	if target > maxSize {
		target = maxSize
	}
	if target < minSize {
		target = minSize
	}
	if n <= maxSize {
		return []int{n}
	}
	groups := (n + target - 1) / target
	for {
		base := n / groups
		if base >= minSize {
			break
		}
		groups--
		if groups <= 1 {
			groups = 1
			break
		}
	}
	sizes := make([]int, groups)
	base := n / groups
	rem := n % groups
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	// A group may exceed maxSize when min-fill forced few groups; rebalance
	// by adding groups while all stay ≥ minSize.
	for sizes[0] > maxSize {
		groups++
		base = n / groups
		if base < minSize {
			break // accept oversize; caller splits further
		}
		rem = n % groups
		sizes = make([]int, groups)
		for i := range sizes {
			sizes[i] = base
			if i < rem {
				sizes[i]++
			}
		}
	}
	return sizes
}

// orderedCopy returns the points permuted by idx.
func orderedCopy(points [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(points))
	for rank, i := range idx {
		out[rank] = points[i]
	}
	return out
}

// sortIndicesBy returns indices sorted by the given less function, stably.
func sortIndicesBy(n int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	return idx
}
