package bulkload

import (
	"fmt"
	"math"
	"sort"

	"bayestree/internal/core"
	"bayestree/internal/sfc"
)

// Hilbert packs observations bottom-up in Hilbert-curve order: compute the
// Hilbert value of every observation, sort, fill leaf nodes, then repeat on
// the node mean vectors level by level until a single root remains —
// exactly the procedure described in Section 3.1.
type Hilbert struct {
	// Bits is the curve quantisation precision per dimension (default 10).
	Bits int
	// Fill is the target node occupancy as a fraction of capacity
	// (default 1.0 — classical full packing "w.r.t. the page size").
	Fill float64
}

// Name implements Loader.
func (Hilbert) Name() string { return "hilbert" }

// Build implements Loader.
func (h Hilbert) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	return curveBuild(points, cfg, sfc.Hilbert, h.Bits, h.Fill)
}

// ZCurve packs observations bottom-up in z-order (Morton order), the other
// space-filling curve named in Section 3.1.
type ZCurve struct {
	// Bits is the curve quantisation precision per dimension (default 10).
	Bits int
	// Fill is the target occupancy fraction (default 1.0).
	Fill float64
}

// Name implements Loader.
func (ZCurve) Name() string { return "zcurve" }

// Build implements Loader.
func (z ZCurve) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	return curveBuild(points, cfg, sfc.ZOrder, z.Bits, z.Fill)
}

func curveBuild(points [][]float64, cfg core.Config, curve sfc.Curve, bits int, fill float64) (*core.Tree, error) {
	if err := validatePoints(points, cfg); err != nil {
		return nil, err
	}
	if bits <= 0 {
		bits = 10
	}
	if fill <= 0 || fill > 1 {
		fill = 1
	}
	b, err := core.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	order, err := sfc.SortByCurve(points, cfg.Dim, bits, curve)
	if err != nil {
		return nil, err
	}
	ordered := orderedCopy(points, order)
	leafTarget := int(fill * float64(cfg.MaxLeaf))
	nodes, err := packLeaves(b, ordered, cfg, leafTarget)
	if err != nil {
		return nil, err
	}
	for len(nodes) > 1 {
		means := nodeMeans(b, nodes)
		order, err := sfc.SortByCurve(means, cfg.Dim, bits, curve)
		if err != nil {
			return nil, err
		}
		sorted := make([]*core.Node, len(nodes))
		for rank, i := range order {
			sorted[rank] = nodes[i]
		}
		innerTarget := int(fill * float64(cfg.MaxFanout))
		nodes, err = packInner(b, sorted, cfg, innerTarget)
		if err != nil {
			return nil, err
		}
	}
	return b.Finish(nodes[0], true)
}

// packLeaves cuts the ordered observations into legal leaf nodes.
func packLeaves(b *core.Builder, ordered [][]float64, cfg core.Config, target int) ([]*core.Node, error) {
	sizes := chunkSizes(len(ordered), cfg.MinLeaf, cfg.MaxLeaf, target)
	nodes := make([]*core.Node, 0, len(sizes))
	pos := 0
	for _, s := range sizes {
		leaf, err := b.Leaf(ordered[pos : pos+s])
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, leaf)
		pos += s
	}
	if pos != len(ordered) {
		return nil, fmt.Errorf("bulkload: packed %d of %d observations", pos, len(ordered))
	}
	return nodes, nil
}

// packInner cuts an ordered node sequence into legal parent nodes.
func packInner(b *core.Builder, ordered []*core.Node, cfg core.Config, target int) ([]*core.Node, error) {
	if len(ordered) == 1 {
		return ordered, nil
	}
	sizes := chunkSizes(len(ordered), cfg.MinFanout, cfg.MaxFanout, target)
	parents := make([]*core.Node, 0, len(sizes))
	pos := 0
	for _, s := range sizes {
		inner, err := b.Inner(ordered[pos : pos+s])
		if err != nil {
			return nil, err
		}
		parents = append(parents, inner)
		pos += s
	}
	return parents, nil
}

// nodeMeans returns the CF mean of each node, the representatives the
// paper re-orders at every packing level.
func nodeMeans(b *core.Builder, nodes []*core.Node) [][]float64 {
	out := make([][]float64, len(nodes))
	for i, n := range nodes {
		out[i] = nodeMean(n, b.Config().Dim)
	}
	return out
}

func nodeMean(n *core.Node, dim int) []float64 {
	sum := make([]float64, dim)
	var count float64
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n.IsLeaf() {
			for _, p := range n.Points() {
				for k, v := range p {
					sum[k] += v
				}
				count++
			}
			return
		}
		for _, e := range n.Entries() {
			// Entries already carry the subtree CF; use it directly.
			for k := range sum {
				sum[k] += e.CF.LS[k]
			}
			count += e.CF.N
		}
	}
	walk(n)
	if count > 0 {
		for k := range sum {
			sum[k] /= count
		}
	}
	return sum
}

// STR is the sort-tile-recursive packing of Leutenegger et al. [14]: sort
// by the first dimension, cut into vertical slabs, recurse within each
// slab on the remaining dimensions, pack runs into nodes; repeat on node
// centres for the upper levels.
type STR struct {
	// Fill is the target occupancy fraction (default 1.0).
	Fill float64
}

// Name implements Loader.
func (STR) Name() string { return "str" }

// Build implements Loader.
func (s STR) Build(points [][]float64, cfg core.Config) (*core.Tree, error) {
	if err := validatePoints(points, cfg); err != nil {
		return nil, err
	}
	fill := s.Fill
	if fill <= 0 || fill > 1 {
		fill = 1
	}
	b, err := core.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	leafTarget := int(fill * float64(cfg.MaxLeaf))
	if leafTarget < cfg.MinLeaf {
		leafTarget = cfg.MinLeaf
	}
	ordered := strOrder(points, cfg.Dim, leafTarget)
	nodes, err := packLeaves(b, ordered, cfg, leafTarget)
	if err != nil {
		return nil, err
	}
	for len(nodes) > 1 {
		innerTarget := int(fill * float64(cfg.MaxFanout))
		if innerTarget < cfg.MinFanout {
			innerTarget = cfg.MinFanout
		}
		means := nodeMeans(b, nodes)
		perm := strPermutation(means, cfg.Dim, innerTarget)
		sorted := make([]*core.Node, len(nodes))
		for rank, i := range perm {
			sorted[rank] = nodes[i]
		}
		nodes, err = packInner(b, sorted, cfg, innerTarget)
		if err != nil {
			return nil, err
		}
	}
	return b.Finish(nodes[0], true)
}

// strOrder returns the observations in sort-tile-recursive order for node
// capacity c.
func strOrder(points [][]float64, dim, c int) [][]float64 {
	idx := strPermutation(points, dim, c)
	return orderedCopy(points, idx)
}

// strPermutation computes the STR ordering of the given vectors.
func strPermutation(points [][]float64, dim, c int) []int {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	var tile func(ids []int, axis int)
	tile = func(ids []int, axis int) {
		if len(ids) <= c || axis >= dim {
			return
		}
		sortIdsByAxis(points, ids, axis)
		remaining := dim - axis
		pages := int(math.Ceil(float64(len(ids)) / float64(c)))
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(remaining))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(ids) + slabs - 1) / slabs
		for start := 0; start < len(ids); start += per {
			end := start + per
			if end > len(ids) {
				end = len(ids)
			}
			tile(ids[start:end], axis+1)
		}
	}
	tile(idx, 0)
	return idx
}

func sortIdsByAxis(points [][]float64, ids []int, axis int) {
	sort.SliceStable(ids, func(a, b int) bool { return points[ids[a]][axis] < points[ids[b]][axis] })
}
