package bulkload

import (
	"math"
	"math/rand"
	"testing"

	"bayestree/internal/core"
	"bayestree/internal/kernels"
)

func testConfig(dim int) core.Config {
	return core.Config{
		Dim:       dim,
		MinFanout: 2, MaxFanout: 5,
		MinLeaf: 2, MaxLeaf: 8,
		Kernel:         kernels.Gaussian{},
		ForcedReinsert: true,
	}
}

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for k := range p {
			p[k] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

// collectPoints gathers all observations stored in a tree, for membership
// checks against the input.
func collectPoints(tree *core.Tree) [][]float64 {
	var out [][]float64
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n.IsLeaf() {
			out = append(out, n.Points()...)
			return
		}
		for _, e := range n.Entries() {
			walk(e.Child)
		}
	}
	walk(tree.Root())
	return out
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		l, ok := ByName(name)
		if !ok {
			t.Errorf("registered name %q not resolvable", name)
			continue
		}
		if l.Name() != name {
			t.Errorf("loader %q reports name %q", name, l.Name())
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Errorf("unknown loader resolved")
	}
	if _, ok := ByName("iterativ"); !ok {
		t.Errorf("paper spelling alias missing")
	}
	if len(All()) != len(Names()) {
		t.Errorf("All/Names mismatch")
	}
}

// Every loader must produce a structurally valid tree containing exactly
// the input observations — the fundamental contract.
func TestAllLoadersPreserveData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points := randomPoints(rng, 333, 3)
	// Multiset of inputs keyed by the first coordinate (floats are unique
	// with probability 1).
	want := map[float64]int{}
	for _, p := range points {
		want[p[0]]++
	}
	for _, loader := range All() {
		tree, err := loader.Build(points, testConfig(3))
		if err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
		if tree.Len() != len(points) {
			t.Fatalf("%s: Len = %d, want %d", loader.Name(), tree.Len(), len(points))
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: invariants: %v", loader.Name(), err)
		}
		got := map[float64]int{}
		for _, p := range collectPoints(tree) {
			got[p[0]]++
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("%s: observation %v appears %d times, want %d", loader.Name(), k, got[k], n)
			}
		}
	}
}

// All loaders must handle edge-case population sizes: below leaf capacity,
// just above it, and around fanout boundaries.
func TestLoadersEdgeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 7, 8, 9, 16, 17, 40, 41, 65} {
		points := randomPoints(rng, n, 2)
		for _, loader := range All() {
			tree, err := loader.Build(points, testConfig(2))
			if err != nil {
				t.Fatalf("%s n=%d: %v", loader.Name(), n, err)
			}
			if tree.Len() != n {
				t.Fatalf("%s n=%d: Len = %d", loader.Name(), n, tree.Len())
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("%s n=%d: %v", loader.Name(), n, err)
			}
		}
	}
}

func TestLoadersRejectBadInput(t *testing.T) {
	for _, loader := range All() {
		if _, err := loader.Build(nil, testConfig(2)); err == nil {
			t.Errorf("%s: empty input accepted", loader.Name())
		}
		if _, err := loader.Build([][]float64{{1}}, testConfig(2)); err == nil {
			t.Errorf("%s: wrong-dim input accepted", loader.Name())
		}
		bad := testConfig(2)
		bad.Dim = 0
		if _, err := loader.Build([][]float64{{1, 2}}, bad); err == nil {
			t.Errorf("%s: invalid config accepted", loader.Name())
		}
	}
}

func TestLoadersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := randomPoints(rng, 200, 2)
	for _, loader := range All() {
		t1, err := loader.Build(points, testConfig(2))
		if err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
		t2, err := loader.Build(points, testConfig(2))
		if err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
		s1, s2 := t1.Stats(), t2.Stats()
		if s1 != s2 {
			t.Errorf("%s: nondeterministic shape: %+v vs %+v", loader.Name(), s1, s2)
		}
		// Density queries agree exactly.
		x := []float64{0.5, 0.5}
		c1 := t1.NewCursor(x, core.DescentGlobal, core.PriorityProbabilistic)
		c2 := t2.NewCursor(x, core.DescentGlobal, core.PriorityProbabilistic)
		c1.RefineAll()
		c2.RefineAll()
		if math.Abs(c1.LogDensity()-c2.LogDensity()) > 1e-12 {
			t.Errorf("%s: nondeterministic densities", loader.Name())
		}
	}
}

// Duplicate-heavy data (clusters of identical points) must not break any
// loader — degenerate variances and zero-extent MBRs are common in
// discretised sensor data.
func TestLoadersDuplicateHeavy(t *testing.T) {
	var points [][]float64
	for i := 0; i < 100; i++ {
		points = append(points, []float64{float64(i % 3), float64(i % 2)})
	}
	for _, loader := range All() {
		tree, err := loader.Build(points, testConfig(2))
		if err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", loader.Name(), err)
		}
	}
}

func TestCurveLoadersAreBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points := randomPoints(rng, 300, 2)
	for _, name := range []string{"hilbert", "zcurve", "str", "goldberger", "vsample", "iterative"} {
		loader, _ := ByName(name)
		tree, err := loader.Build(points, testConfig(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tree.Balanced() {
			t.Errorf("%s: tree not balanced", name)
		}
	}
}

func TestEMTopDownMayBeUnbalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Strongly uneven cluster sizes make unbalance likely; the contract
	// is only that the tree is valid and flagged as not balance-checked.
	var points [][]float64
	for i := 0; i < 400; i++ {
		points = append(points, []float64{rng.NormFloat64() * 0.01, rng.NormFloat64() * 0.01})
	}
	for i := 0; i < 20; i++ {
		points = append(points, []float64{5 + rng.NormFloat64()*0.01, 5 + rng.NormFloat64()*0.01})
	}
	tree, err := (EMTopDown{}).Build(points, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Balanced() {
		t.Errorf("EMTopDown should not claim balance")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestChunkSizes(t *testing.T) {
	cases := []struct {
		n, min, max, target int
	}{
		{100, 2, 8, 6}, {7, 2, 8, 6}, {9, 2, 8, 6}, {17, 4, 16, 12},
		{33, 2, 5, 4}, {1000, 8, 32, 24},
	}
	for _, c := range cases {
		sizes := chunkSizes(c.n, c.min, c.max, c.target)
		total := 0
		for _, s := range sizes {
			total += s
			if len(sizes) > 1 && (s < c.min || s > c.max) {
				t.Errorf("chunkSizes(%+v): illegal size %d in %v", c, s, sizes)
			}
		}
		if total != c.n {
			t.Errorf("chunkSizes(%+v): total %d != n", c, total)
		}
	}
}

// The Hilbert loader should produce spatially tighter leaves than random
// insertion order would suggest: leaf MBR areas must be small relative to
// the data extent (a sanity check of the packing logic, not a benchmark).
func TestHilbertPackingLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := randomPoints(rng, 512, 2)
	tree, err := (Hilbert{}).Build(points, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var leafArea float64
	var leaves int
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if n.IsLeaf() {
			leaves++
			lo := []float64{math.Inf(1), math.Inf(1)}
			hi := []float64{math.Inf(-1), math.Inf(-1)}
			for _, p := range n.Points() {
				for k := 0; k < 2; k++ {
					lo[k] = math.Min(lo[k], p[k])
					hi[k] = math.Max(hi[k], p[k])
				}
			}
			leafArea += (hi[0] - lo[0]) * (hi[1] - lo[1])
			return
		}
		for _, e := range n.Entries() {
			walk(e.Child)
		}
	}
	walk(tree.Root())
	avg := leafArea / float64(leaves)
	// 512 points in 64 leaves over the unit square: an ideal tiling has
	// area 1/64 ≈ 0.016 per leaf; Hilbert should stay well under 5×.
	if avg > 0.08 {
		t.Errorf("average Hilbert leaf area %v too large", avg)
	}
}

func TestGoldbergerFanoutBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points := randomPoints(rng, 600, 3)
	tree, err := (Goldberger{}).Build(points, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Validate() already enforces bounds for balanced trees; double-check
	// the tree reports balanced so those checks were active.
	if !tree.Balanced() {
		t.Errorf("goldberger tree must be balanced")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
