// Package rstar implements a standalone in-memory R*-tree (Beckmann et
// al., SIGMOD 1990) over axis-aligned rectangles with arbitrary payloads.
// It is the spatial-index substrate that the Bayes tree "extends" with
// statistical entry information (Section 2.2 of the paper references
// Guttman's R-tree [11]; the Bayes tree itself uses the R*-variant).
//
// Supported operations: insertion with forced reinsertion, deletion with
// tree condensation, range (window) queries, point queries and k-nearest-
// neighbour queries via best-first MINDIST search.
package rstar

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"bayestree/internal/mbr"
)

// Item is a payload stored in the tree together with its bounding
// rectangle.
type Item[T any] struct {
	Rect  mbr.Rect
	Value T
}

// Config controls node capacities and the forced-reinsertion policy.
type Config struct {
	// Dim is the dimensionality of all indexed rectangles.
	Dim int
	// MaxEntries is M, the node capacity (≥ 4 for sensible splits).
	MaxEntries int
	// MinEntries is m, the minimum fill (typically 40% of M).
	MinEntries int
	// ReinsertFraction is the share p of entries force-reinserted on the
	// first overflow per level (R* uses 30%). Zero disables reinsertion.
	ReinsertFraction float64
}

// DefaultConfig returns the classical R*-tree parameterisation for the
// given dimensionality: M = 16, m = 6 (≈40%), 30% forced reinsertion.
func DefaultConfig(dim int) Config {
	return Config{Dim: dim, MaxEntries: 16, MinEntries: 6, ReinsertFraction: 0.3}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("rstar: dim must be ≥ 1, got %d", c.Dim)
	}
	if c.MaxEntries < 4 {
		return fmt.Errorf("rstar: MaxEntries must be ≥ 4, got %d", c.MaxEntries)
	}
	if c.MinEntries < 1 || c.MinEntries > c.MaxEntries/2 {
		return fmt.Errorf("rstar: MinEntries must be in [1, MaxEntries/2], got %d", c.MinEntries)
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.5 {
		return fmt.Errorf("rstar: ReinsertFraction must be in [0, 0.5], got %v", c.ReinsertFraction)
	}
	return nil
}

type entry[T any] struct {
	rect  mbr.Rect
	child *node[T] // nil for leaf entries
	item  Item[T]  // valid for leaf entries
}

type node[T any] struct {
	leaf    bool
	level   int // 0 = leaf
	entries []entry[T]
}

func (n *node[T]) computeMBR(dim int) mbr.Rect {
	r := mbr.Empty(dim)
	for i := range n.entries {
		r.Extend(n.entries[i].rect)
	}
	return r
}

// Tree is an in-memory R*-tree. It is not safe for concurrent mutation;
// concurrent readers are safe between mutations.
type Tree[T any] struct {
	cfg  Config
	root *node[T]
	size int
}

// New creates an empty tree, validating the configuration.
func New[T any](cfg Config) (*Tree[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tree[T]{
		cfg:  cfg,
		root: &node[T]{leaf: true, level: 0},
	}, nil
}

// Len returns the number of stored items.
func (t *Tree[T]) Len() int { return t.size }

// Height returns the number of levels (1 for a tree holding only a root
// leaf).
func (t *Tree[T]) Height() int { return t.root.level + 1 }

// Insert adds an item to the tree.
func (t *Tree[T]) Insert(rect mbr.Rect, value T) error {
	if rect.Dim() != t.cfg.Dim {
		return fmt.Errorf("rstar: rect dim %d != tree dim %d", rect.Dim(), t.cfg.Dim)
	}
	if err := rect.Validate(); err != nil {
		return err
	}
	reinserted := make(map[int]bool)
	t.insertEntry(entry[T]{rect: rect.Clone(), item: Item[T]{Rect: rect.Clone(), Value: value}}, 0, reinserted)
	t.size++
	return nil
}

// insertEntry places e at the given level, handling overflow via forced
// reinsertion (once per level per insertion) and node splits.
func (t *Tree[T]) insertEntry(e entry[T], level int, reinserted map[int]bool) {
	path := t.choosePath(e.rect, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	t.overflowChain(path, reinserted)
}

// choosePath descends from the root to the node at targetLevel chosen by
// the R* subtree selection, returning the whole path.
func (t *Tree[T]) choosePath(r mbr.Rect, targetLevel int) []*node[T] {
	path := []*node[T]{t.root}
	n := t.root
	for n.level > targetLevel {
		idx := t.chooseSubtree(n, r)
		n = n.entries[idx].child
		path = append(path, n)
	}
	return path
}

// chooseSubtree implements the R* selection: for nodes whose children are
// leaves, minimise overlap enlargement; otherwise minimise area
// enlargement, with area as the tie breaker.
func (t *Tree[T]) chooseSubtree(n *node[T], r mbr.Rect) int {
	best := 0
	if n.level == 1 {
		bestOverlap := math.Inf(1)
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i := range n.entries {
			u := mbr.Union(n.entries[i].rect, r)
			var overlap float64
			for j := range n.entries {
				if j == i {
					continue
				}
				overlap += mbr.OverlapArea(u, n.entries[j].rect)
				overlap -= mbr.OverlapArea(n.entries[i].rect, n.entries[j].rect)
			}
			enl := u.Area() - n.entries[i].rect.Area()
			area := n.entries[i].rect.Area()
			if overlap < bestOverlap ||
				(overlap == bestOverlap && enl < bestEnl) ||
				(overlap == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, overlap, enl, area
			}
		}
		return best
	}
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range n.entries {
		enl := mbr.Enlargement(n.entries[i].rect, r)
		area := n.entries[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// overflowChain fixes up the path bottom-up: refreshes MBRs, splits or
// force-reinserts overflowing nodes, and grows the root when it splits.
func (t *Tree[T]) overflowChain(path []*node[T], reinserted map[int]bool) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.cfg.MaxEntries {
			t.refreshPath(path[:i+1])
			continue
		}
		if i > 0 && t.cfg.ReinsertFraction > 0 && !reinserted[n.level] {
			reinserted[n.level] = true
			removed := t.pickReinsert(n)
			t.refreshPath(path[:i+1])
			for _, e := range removed {
				t.insertEntry(e, n.level, reinserted)
			}
			return // the reinsertions handled the rest of the chain
		}
		left, right := t.split(n)
		if i == 0 {
			// Root split: grow the tree by one level.
			newRoot := &node[T]{level: n.level + 1}
			newRoot.entries = []entry[T]{
				{rect: left.computeMBR(t.cfg.Dim), child: left},
				{rect: right.computeMBR(t.cfg.Dim), child: right},
			}
			t.root = newRoot
			return
		}
		parent := path[i-1]
		// Replace the child pointer to n with the two halves.
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry[T]{rect: left.computeMBR(t.cfg.Dim), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry[T]{rect: right.computeMBR(t.cfg.Dim), child: right})
	}
}

// refreshPath recomputes the parent MBRs along the path (leaf-most last).
func (t *Tree[T]) refreshPath(path []*node[T]) {
	for i := len(path) - 1; i >= 1; i-- {
		child := path[i]
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = child.computeMBR(t.cfg.Dim)
				break
			}
		}
	}
}

// pickReinsert removes the p·M entries whose centres lie farthest from the
// node's MBR centre (R* forced reinsert, "far reinsert" variant) and
// returns them in decreasing distance order.
func (t *Tree[T]) pickReinsert(n *node[T]) []entry[T] {
	p := int(t.cfg.ReinsertFraction * float64(t.cfg.MaxEntries))
	if p < 1 {
		p = 1
	}
	center := n.computeMBR(t.cfg.Dim).Center()
	type distEntry struct {
		d float64
		e entry[T]
	}
	ds := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		c := e.rect.Center()
		var s float64
		for k := range c {
			dd := c[k] - center[k]
			s += dd * dd
		}
		ds[i] = distEntry{d: s, e: e}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	removed := make([]entry[T], 0, p)
	for i := 0; i < p; i++ {
		removed = append(removed, ds[i].e)
	}
	n.entries = n.entries[:0]
	for i := p; i < len(ds); i++ {
		n.entries = append(n.entries, ds[i].e)
	}
	return removed
}

// split performs the R* topological split: choose the axis minimising the
// summed margin over all distributions, then the distribution minimising
// overlap (area as tie breaker).
func (t *Tree[T]) split(n *node[T]) (left, right *node[T]) {
	m := t.cfg.MinEntries
	M := len(n.entries) // M+1 entries at overflow
	bestAxis, bestLower := 0, false
	bestMargin := math.Inf(1)
	for axis := 0; axis < t.cfg.Dim; axis++ {
		for _, lower := range []bool{true, false} {
			sortEntriesByAxis(n.entries, axis, lower)
			var margin float64
			for k := m; k <= M-m; k++ {
				lr := groupMBR(n.entries[:k], t.cfg.Dim)
				rr := groupMBR(n.entries[k:], t.cfg.Dim)
				margin += lr.Margin() + rr.Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis, bestLower = margin, axis, lower
			}
		}
	}
	sortEntriesByAxis(n.entries, bestAxis, bestLower)
	bestK := m
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := m; k <= M-m; k++ {
		lr := groupMBR(n.entries[:k], t.cfg.Dim)
		rr := groupMBR(n.entries[k:], t.cfg.Dim)
		overlap := mbr.OverlapArea(lr, rr)
		area := lr.Area() + rr.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}
	left = &node[T]{leaf: n.leaf, level: n.level, entries: append([]entry[T](nil), n.entries[:bestK]...)}
	right = &node[T]{leaf: n.leaf, level: n.level, entries: append([]entry[T](nil), n.entries[bestK:]...)}
	return left, right
}

func sortEntriesByAxis[T any](es []entry[T], axis int, lower bool) {
	sort.SliceStable(es, func(a, b int) bool {
		if lower {
			if es[a].rect.Lo[axis] != es[b].rect.Lo[axis] {
				return es[a].rect.Lo[axis] < es[b].rect.Lo[axis]
			}
			return es[a].rect.Hi[axis] < es[b].rect.Hi[axis]
		}
		if es[a].rect.Hi[axis] != es[b].rect.Hi[axis] {
			return es[a].rect.Hi[axis] < es[b].rect.Hi[axis]
		}
		return es[a].rect.Lo[axis] < es[b].rect.Lo[axis]
	})
}

func groupMBR[T any](es []entry[T], dim int) mbr.Rect {
	r := mbr.Empty(dim)
	for i := range es {
		r.Extend(es[i].rect)
	}
	return r
}

// Search appends to out all items whose rectangles intersect query and
// returns the result.
func (t *Tree[T]) Search(query mbr.Rect, out []Item[T]) []Item[T] {
	return t.search(t.root, query, out)
}

func (t *Tree[T]) search(n *node[T], query mbr.Rect, out []Item[T]) []Item[T] {
	for i := range n.entries {
		if !n.entries[i].rect.Intersects(query) {
			continue
		}
		if n.leaf {
			out = append(out, n.entries[i].item)
		} else {
			out = t.search(n.entries[i].child, query, out)
		}
	}
	return out
}

// Delete removes one item whose rectangle equals rect and for which match
// returns true. It reports whether an item was removed. Underfull nodes
// are condensed by reinserting their remaining entries, as in Guttman's
// original algorithm.
func (t *Tree[T]) Delete(rect mbr.Rect, match func(T) bool) bool {
	var orphans []struct {
		level   int
		entries []entry[T]
	}
	removed := t.deleteRec(t.root, rect, match, &orphans)
	if !removed {
		return false
	}
	t.size--
	reinserted := make(map[int]bool)
	for _, o := range orphans {
		for _, e := range o.entries {
			t.insertEntry(e, o.level, reinserted)
		}
	}
	// Shrink the root if it has a single child and is not a leaf.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node[T]{leaf: true, level: 0}
	}
	return true
}

func (t *Tree[T]) deleteRec(n *node[T], rect mbr.Rect, match func(T) bool, orphans *[]struct {
	level   int
	entries []entry[T]
}) bool {
	if n.leaf {
		for i := range n.entries {
			e := n.entries[i]
			if rectEqual(e.rect, rect) && match(e.item.Value) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range n.entries {
		if !n.entries[i].rect.Contains(rect) {
			continue
		}
		child := n.entries[i].child
		if t.deleteRec(child, rect, match, orphans) {
			if len(child.entries) < t.cfg.MinEntries {
				*orphans = append(*orphans, struct {
					level   int
					entries []entry[T]
				}{level: child.level, entries: append([]entry[T](nil), child.entries...)})
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				n.entries[i].rect = child.computeMBR(t.cfg.Dim)
			}
			return true
		}
	}
	return false
}

func rectEqual(a, b mbr.Rect) bool {
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}

// nnItem is a heap element for best-first kNN search.
type nnItem[T any] struct {
	dist  float64
	node  *node[T]
	item  *Item[T]
	isObj bool
}

type nnHeap[T any] []nnItem[T]

func (h nnHeap[T]) Len() int            { return len(h) }
func (h nnHeap[T]) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap[T]) Push(x interface{}) { *h = append(*h, x.(nnItem[T])) }
func (h *nnHeap[T]) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Nearest returns the k items nearest to the query point in increasing
// distance order (fewer if the tree holds fewer items), using best-first
// search over MINDIST.
func (t *Tree[T]) Nearest(query []float64, k int) []Item[T] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &nnHeap[T]{}
	heap.Push(h, nnItem[T]{dist: 0, node: t.root})
	out := make([]Item[T], 0, k)
	for h.Len() > 0 && len(out) < k {
		top := heap.Pop(h).(nnItem[T])
		if top.isObj {
			out = append(out, *top.item)
			continue
		}
		n := top.node
		for i := range n.entries {
			e := &n.entries[i]
			d := e.rect.MinDist2(query)
			if n.leaf {
				heap.Push(h, nnItem[T]{dist: d, item: &e.item, isObj: true})
			} else {
				heap.Push(h, nnItem[T]{dist: d, node: e.child})
			}
		}
	}
	return out
}

// Stats summarises the tree shape for diagnostics and tests.
type Stats struct {
	Items      int
	Nodes      int
	Leaves     int
	Height     int
	AvgFanout  float64
	MinFanout  int
	MaxFanout  int
	LeafMinOcc int
	LeafMaxOcc int
}

// Stats walks the tree and returns shape statistics.
func (t *Tree[T]) Stats() Stats {
	s := Stats{Height: t.Height(), MinFanout: math.MaxInt32, LeafMinOcc: math.MaxInt32}
	var total, count int
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		s.Nodes++
		if n.leaf {
			s.Leaves++
			if len(n.entries) < s.LeafMinOcc {
				s.LeafMinOcc = len(n.entries)
			}
			if len(n.entries) > s.LeafMaxOcc {
				s.LeafMaxOcc = len(n.entries)
			}
			return
		}
		total += len(n.entries)
		count++
		if len(n.entries) < s.MinFanout {
			s.MinFanout = len(n.entries)
		}
		if len(n.entries) > s.MaxFanout {
			s.MaxFanout = len(n.entries)
		}
		for i := range n.entries {
			walk(n.entries[i].child)
		}
	}
	walk(t.root)
	s.Items = t.size
	if count > 0 {
		s.AvgFanout = float64(total) / float64(count)
	}
	if s.MinFanout == math.MaxInt32 {
		s.MinFanout = 0
	}
	if s.LeafMinOcc == math.MaxInt32 {
		s.LeafMinOcc = 0
	}
	return s
}

// Validate checks the structural invariants: balanced depth, fanout within
// [m, M] (except the root), parent MBRs exactly covering children, and the
// item count. It returns the first violation found.
func (t *Tree[T]) Validate() error {
	leafLevel := -1
	items := 0
	var walk func(n *node[T], depth int, isRoot bool) error
	walk = func(n *node[T], depth int, isRoot bool) error {
		if n.leaf != (n.level == 0) {
			return fmt.Errorf("rstar: node level %d leaf flag mismatch", n.level)
		}
		if !isRoot {
			min := t.cfg.MinEntries
			if len(n.entries) < min || len(n.entries) > t.cfg.MaxEntries {
				return fmt.Errorf("rstar: node at level %d has %d entries, want [%d,%d]",
					n.level, len(n.entries), min, t.cfg.MaxEntries)
			}
		}
		if n.leaf {
			if leafLevel == -1 {
				leafLevel = depth
			} else if leafLevel != depth {
				return fmt.Errorf("rstar: unbalanced leaves at depths %d and %d", leafLevel, depth)
			}
			items += len(n.entries)
			return nil
		}
		for i := range n.entries {
			child := n.entries[i].child
			if child == nil {
				return fmt.Errorf("rstar: inner entry without child at level %d", n.level)
			}
			if child.level != n.level-1 {
				return fmt.Errorf("rstar: child level %d under parent level %d", child.level, n.level)
			}
			want := child.computeMBR(t.cfg.Dim)
			if !rectEqual(n.entries[i].rect, want) {
				return fmt.Errorf("rstar: stale parent MBR at level %d", n.level)
			}
			if err := walk(child, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if items != t.size {
		return fmt.Errorf("rstar: counted %d items, size says %d", items, t.size)
	}
	return nil
}
