package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"bayestree/internal/mbr"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad[int](DefaultConfig(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty bulk tree invalid: %v", err)
	}
}

func TestBulkLoadValidatesInput(t *testing.T) {
	cfg := DefaultConfig(2)
	if _, err := BulkLoad(cfg, []Item[int]{{Rect: mbr.Point([]float64{1})}}); err == nil {
		t.Errorf("wrong-dim item accepted")
	}
	bad := Config{Dim: 0}
	if _, err := BulkLoad[int](bad, nil); err == nil {
		t.Errorf("invalid config accepted")
	}
	if _, err := FromPoints(cfg, [][]float64{{1, 2}}, []int{1, 2}); err == nil {
		t.Errorf("length mismatch accepted")
	}
}

func TestBulkLoadInvariantsAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 16, 17, 100, 1000} {
		points := make([][]float64, n)
		values := make([]int, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			values[i] = i
		}
		tr, err := FromPoints(DefaultConfig(2), points, values)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Search matches brute force.
		for q := 0; q < 10; q++ {
			lo := []float64{rng.Float64() * 10, rng.Float64() * 10}
			hi := []float64{lo[0] + 2, lo[1] + 2}
			query, _ := mbr.New(lo, hi)
			got := tr.Search(query, nil)
			gotIDs := make([]int, 0, len(got))
			for _, it := range got {
				gotIDs = append(gotIDs, it.Value)
			}
			var wantIDs []int
			for i, p := range points {
				if query.ContainsPoint(p) {
					wantIDs = append(wantIDs, i)
				}
			}
			sort.Ints(gotIDs)
			sort.Ints(wantIDs)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("n=%d query %d: %d results, want %d", n, q, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("n=%d query %d: result mismatch", n, q)
				}
			}
		}
	}
}

// Bulk-loaded trees should be shallower (better packed) than the same
// data inserted one by one.
func TestBulkLoadPacksTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	points := make([][]float64, n)
	values := make([]int, n)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
		values[i] = i
	}
	bulk, err := FromPoints(DefaultConfig(2), points, values)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := New[int](DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if err := incr.Insert(mbr.Point(p), values[i]); err != nil {
			t.Fatal(err)
		}
	}
	sb, si := bulk.Stats(), incr.Stats()
	if sb.Nodes > si.Nodes {
		t.Errorf("bulk tree has %d nodes, incremental %d — packing failed", sb.Nodes, si.Nodes)
	}
	if float64(sb.LeafMinOcc) < 0.4*16 {
		t.Errorf("bulk leaf min occupancy %d too low", sb.LeafMinOcc)
	}
}

// Mutations after bulk loading keep the tree valid.
func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([][]float64, 300)
	values := make([]int, 300)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
		values[i] = i
	}
	tr, err := FromPoints(DefaultConfig(2), points, values)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(mbr.Point([]float64{rng.Float64(), rng.Float64()}), 1000+i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		want := i
		if !tr.Delete(mbr.Point(points[i]), func(v int) bool { return v == want }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("post-mutation: %v", err)
	}
	if tr.Len() != 350 {
		t.Fatalf("Len = %d, want 350", tr.Len())
	}
}
