package rstar

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"bayestree/internal/mbr"
)

func newTestTree(t *testing.T, cfg Config) *Tree[int] {
	t.Helper()
	tr, err := New[int](cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Dim: 0, MaxEntries: 8, MinEntries: 3},
		{Dim: 2, MaxEntries: 3, MinEntries: 1},
		{Dim: 2, MaxEntries: 8, MinEntries: 5},
		{Dim: 2, MaxEntries: 8, MinEntries: 0},
		{Dim: 2, MaxEntries: 8, MinEntries: 3, ReinsertFraction: 0.9},
	}
	for i, cfg := range cases {
		if _, err := New[int](cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := New[int](DefaultConfig(3)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestInsertValidateSmall(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(2))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64() * 100, rng.Float64() * 100}
		if err := tr.Insert(mbr.Point(p), i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%17 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("invariants broken after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("final validation: %v", err)
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertRejectsBadRect(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(2))
	if err := tr.Insert(mbr.Point([]float64{1}), 0); err == nil {
		t.Errorf("wrong dimension accepted")
	}
	bad := mbr.Rect{Lo: []float64{math.NaN(), 0}, Hi: []float64{1, 1}}
	if err := tr.Insert(bad, 0); err == nil {
		t.Errorf("NaN rect accepted")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, withReinsert := range []bool{true, false} {
		cfg := DefaultConfig(2)
		if !withReinsert {
			cfg.ReinsertFraction = 0
		}
		tr := newTestTree(t, cfg)
		rng := rand.New(rand.NewSource(2))
		type rec struct {
			r mbr.Rect
			v int
		}
		var all []rec
		for i := 0; i < 400; i++ {
			lo := []float64{rng.Float64() * 10, rng.Float64() * 10}
			hi := []float64{lo[0] + rng.Float64(), lo[1] + rng.Float64()}
			r, err := mbr.New(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, rec{r: r, v: i})
			if err := tr.Insert(r, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("validate (reinsert=%v): %v", withReinsert, err)
		}
		for q := 0; q < 50; q++ {
			qlo := []float64{rng.Float64() * 10, rng.Float64() * 10}
			qhi := []float64{qlo[0] + rng.Float64()*3, qlo[1] + rng.Float64()*3}
			query, _ := mbr.New(qlo, qhi)
			got := tr.Search(query, nil)
			gotIDs := make([]int, 0, len(got))
			for _, it := range got {
				gotIDs = append(gotIDs, it.Value)
			}
			var wantIDs []int
			for _, rc := range all {
				if rc.r.Intersects(query) {
					wantIDs = append(wantIDs, rc.v)
				}
			}
			sort.Ints(gotIDs)
			sort.Ints(wantIDs)
			if !equalInts(gotIDs, wantIDs) {
				t.Fatalf("query %d (reinsert=%v): got %d results, want %d", q, withReinsert, len(gotIDs), len(wantIDs))
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(3))
	rng := rand.New(rand.NewSource(3))
	var points [][]float64
	for i := 0; i < 300; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		points = append(points, p)
		if err := tr.Insert(mbr.Point(p), i); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 30; q++ {
		query := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		k := 1 + rng.Intn(10)
		got := tr.Nearest(query, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		// Brute force.
		type dv struct {
			d float64
			i int
		}
		ds := make([]dv, len(points))
		for i, p := range points {
			ds[i] = dv{d: sq(p, query), i: i}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		for i := 0; i < k; i++ {
			gd := sq(got[i].Rect.Lo, query)
			if math.Abs(gd-ds[i].d) > 1e-9 {
				t.Fatalf("kNN rank %d: got dist %v, want %v", i, gd, ds[i].d)
			}
		}
	}
	if got := tr.Nearest([]float64{0, 0, 0}, 0); got != nil {
		t.Errorf("k=0 should return nil")
	}
}

func TestNearestOrdering(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(1))
	for i := 0; i < 50; i++ {
		if err := tr.Insert(mbr.Point([]float64{float64(i)}), i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Nearest([]float64{20.2}, 5)
	want := []int{20, 21, 19, 22, 18}
	for i, it := range got {
		if it.Value != want[i] {
			t.Fatalf("rank %d: got %d, want %d", i, it.Value, want[i])
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(2))
	rng := rand.New(rand.NewSource(4))
	var points [][]float64
	for i := 0; i < 300; i++ {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10}
		points = append(points, p)
		if err := tr.Insert(mbr.Point(p), i); err != nil {
			t.Fatal(err)
		}
	}
	// Delete half, validating periodically.
	for i := 0; i < 150; i++ {
		want := i
		ok := tr.Delete(mbr.Point(points[i]), func(v int) bool { return v == want })
		if !ok {
			t.Fatalf("delete %d failed", i)
		}
		if i%25 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate after delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	// Deleted items are gone; remaining items are found.
	for i := 0; i < 300; i++ {
		res := tr.Search(mbr.Point(points[i]), nil)
		found := false
		for _, it := range res {
			if it.Value == i {
				found = true
			}
		}
		if i < 150 && found {
			t.Fatalf("deleted item %d still found", i)
		}
		if i >= 150 && !found {
			t.Fatalf("item %d lost", i)
		}
	}
	// Deleting a non-existent item reports false.
	if tr.Delete(mbr.Point([]float64{-99, -99}), func(int) bool { return true }) {
		t.Errorf("phantom delete succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(2))
	var pts [][]float64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		pts = append(pts, p)
		if err := tr.Insert(mbr.Point(p), i); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pts {
		want := i
		if !tr.Delete(mbr.Point(p), func(v int) bool { return v == want }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty tree invalid: %v", err)
	}
}

func TestStats(t *testing.T) {
	tr := newTestTree(t, DefaultConfig(2))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		if err := tr.Insert(mbr.Point([]float64{rng.Float64(), rng.Float64()}), i); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Stats()
	if s.Items != 500 {
		t.Errorf("Items = %d", s.Items)
	}
	if s.Height < 2 {
		t.Errorf("Height = %d, want ≥ 2 for 500 items", s.Height)
	}
	if s.MaxFanout > 16 {
		t.Errorf("MaxFanout = %d exceeds M", s.MaxFanout)
	}
	if s.Leaves == 0 || s.Nodes <= s.Leaves {
		t.Errorf("odd shape: %+v", s)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many identical rectangles must still produce a valid tree.
	tr := newTestTree(t, DefaultConfig(2))
	p := []float64{1, 1}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(mbr.Point(p), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate with duplicates: %v", err)
	}
	if got := len(tr.Search(mbr.Point(p), nil)); got != 100 {
		t.Fatalf("found %d duplicates, want 100", got)
	}
}

func sq(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
