package rstar

import (
	"fmt"
	"math"
	"sort"

	"bayestree/internal/mbr"
)

// BulkLoad builds a tree from items using sort-tile-recursive packing on
// the rectangle centres (Leutenegger et al. [14]) — the same family of
// algorithms Section 3.1 adapts for the Bayes tree, provided here for the
// plain spatial index. The resulting tree is fully packed (≈100 % node
// occupancy except the tail) and balanced.
func BulkLoad[T any](cfg Config, items []Item[T]) (*Tree[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return New[T](cfg)
	}
	for i := range items {
		if items[i].Rect.Dim() != cfg.Dim {
			return nil, fmt.Errorf("rstar: item %d has dim %d, want %d", i, items[i].Rect.Dim(), cfg.Dim)
		}
		if err := items[i].Rect.Validate(); err != nil {
			return nil, fmt.Errorf("rstar: item %d: %w", i, err)
		}
	}

	// Leaf level: STR order, packed into leaves.
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{rect: it.Rect.Clone(), item: Item[T]{Rect: it.Rect.Clone(), Value: it.Value}}
	}
	strSort(entries, cfg.Dim, cfg.MaxEntries)
	nodes := packEntries(entries, cfg, 0, true)

	// Upper levels.
	level := 1
	for len(nodes) > 1 {
		parentEntries := make([]entry[T], len(nodes))
		for i, n := range nodes {
			parentEntries[i] = entry[T]{rect: n.computeMBR(cfg.Dim), child: n}
		}
		strSort(parentEntries, cfg.Dim, cfg.MaxEntries)
		nodes = packEntries(parentEntries, cfg, level, false)
		level++
	}
	t := &Tree[T]{cfg: cfg, root: nodes[0], size: len(items)}
	return t, nil
}

// strSort orders entries by sort-tile-recursive tiling of their centres.
func strSort[T any](es []entry[T], dim, capacity int) {
	var tile func(part []entry[T], axis int)
	tile = func(part []entry[T], axis int) {
		if len(part) <= capacity || axis >= dim {
			return
		}
		sort.SliceStable(part, func(a, b int) bool {
			return part[a].rect.Center()[axis] < part[b].rect.Center()[axis]
		})
		remaining := dim - axis
		pages := int(math.Ceil(float64(len(part)) / float64(capacity)))
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(remaining))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(part) + slabs - 1) / slabs
		for start := 0; start < len(part); start += per {
			end := start + per
			if end > len(part) {
				end = len(part)
			}
			tile(part[start:end], axis+1)
		}
	}
	tile(es, 0)
}

// packEntries cuts an ordered entry sequence into nodes of the given
// level, keeping the tail above the minimum fill by borrowing from the
// previous group.
func packEntries[T any](es []entry[T], cfg Config, level int, leaf bool) []*node[T] {
	var sizes []int
	n := len(es)
	if n <= cfg.MaxEntries {
		sizes = []int{n}
	} else {
		full := n / cfg.MaxEntries
		rem := n % cfg.MaxEntries
		for i := 0; i < full; i++ {
			sizes = append(sizes, cfg.MaxEntries)
		}
		if rem > 0 {
			if rem < cfg.MinEntries {
				// Borrow from the last full node.
				sizes[len(sizes)-1] -= cfg.MinEntries - rem
				rem = cfg.MinEntries
			}
			sizes = append(sizes, rem)
		}
	}
	out := make([]*node[T], 0, len(sizes))
	pos := 0
	for _, s := range sizes {
		nd := &node[T]{leaf: leaf, level: level, entries: append([]entry[T](nil), es[pos:pos+s]...)}
		out = append(out, nd)
		pos += s
	}
	return out
}

// FromPoints is a convenience that bulk loads point data.
func FromPoints[T any](cfg Config, points [][]float64, values []T) (*Tree[T], error) {
	if len(points) != len(values) {
		return nil, fmt.Errorf("rstar: %d points for %d values", len(points), len(values))
	}
	items := make([]Item[T], len(points))
	for i, p := range points {
		items[i] = Item[T]{Rect: mbr.Point(p), Value: values[i]}
	}
	return BulkLoad(cfg, items)
}
