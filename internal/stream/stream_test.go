package stream

import (
	"math"
	"math/rand"
	"testing"

	"bayestree/internal/core"
	"bayestree/internal/kernels"
)

func testConfig(dim int) core.Config {
	return core.Config{
		Dim:       dim,
		MinFanout: 2, MaxFanout: 5,
		MinLeaf: 2, MaxLeaf: 8,
		Kernel: kernels.Gaussian{},
	}
}

func buildClassifier(t *testing.T, seed int64) (*core.Classifier, []Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var trees []*core.Tree
	labels := []int{0, 1}
	centers := [][]float64{{0.2, 0.2}, {0.8, 0.8}}
	for _, y := range labels {
		tree, err := core.NewTree(testConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			p := []float64{
				centers[y][0] + rng.NormFloat64()*0.08,
				centers[y][1] + rng.NormFloat64()*0.08,
			}
			if err := tree.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		trees = append(trees, tree)
	}
	clf, err := core.NewClassifier(labels, trees, core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	for i := 0; i < 300; i++ {
		y := i % 2
		items = append(items, Item{
			X: []float64{
				centers[y][0] + rng.NormFloat64()*0.08,
				centers[y][1] + rng.NormFloat64()*0.08,
			},
			Label:   y,
			Labeled: true,
		})
	}
	return clf, items
}

func TestBudgeter(t *testing.T) {
	b := Budgeter{NodesPerSecond: 100, MaxNodes: 50, MinNodes: 2}
	if got := b.Budget(0.1); got != 10 {
		t.Errorf("Budget(0.1) = %d, want 10", got)
	}
	if got := b.Budget(10); got != 50 {
		t.Errorf("cap not applied: %d", got)
	}
	if got := b.Budget(0); got != 2 {
		t.Errorf("floor not applied: %d", got)
	}
	if got := b.Budget(math.Inf(1)); got != 50 {
		t.Errorf("Inf gap = %d", got)
	}
	uncapped := Budgeter{NodesPerSecond: 1}
	if got := uncapped.Budget(math.Inf(1)); got <= 0 {
		t.Errorf("uncapped Inf gap = %d", got)
	}
}

func TestConstantArrivals(t *testing.T) {
	c := Constant{Interval: 0.25}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if got := c.Next(rng); got != 0.25 {
			t.Fatalf("constant gap %v", got)
		}
	}
	if c.Name() != "constant" {
		t.Errorf("name %q", c.Name())
	}
}

func TestPoissonArrivals(t *testing.T) {
	p := Poisson{Rate: 100}
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		g := p.Next(rng)
		if g < 0 {
			t.Fatalf("negative gap")
		}
		sum += g
	}
	mean := sum / n
	if math.Abs(mean-0.01) > 0.001 {
		t.Errorf("mean gap %v, want ≈ 0.01", mean)
	}
	if g := (Poisson{Rate: 0}).Next(rng); !math.IsInf(g, 1) {
		t.Errorf("zero-rate gap = %v", g)
	}
}

func TestBurstyArrivals(t *testing.T) {
	b := Bursty{FastInterval: 0.001, SlowInterval: 0.1, SwitchProb: 0.1}
	rng := rand.New(rand.NewSource(3))
	fast, slow := 0, 0
	for i := 0; i < 1000; i++ {
		switch b.Next(rng) {
		case 0.001:
			fast++
		case 0.1:
			slow++
		default:
			t.Fatalf("unexpected gap")
		}
	}
	if fast == 0 || slow == 0 {
		t.Errorf("bursty produced only one phase: %d/%d", fast, slow)
	}
}

func TestRunBasics(t *testing.T) {
	clf, items := buildClassifier(t, 1)
	res, err := Run(clf, items, Constant{Interval: 0.01}, Budgeter{NodesPerSecond: 1000, MaxNodes: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != len(items) {
		t.Fatalf("processed %d", res.Processed)
	}
	if res.Learned != len(items) {
		t.Fatalf("learned %d", res.Learned)
	}
	// Constant 0.01s gaps × 1000 nodes/s → budget 10 for everyone.
	if res.MinBudget != 10 || res.MaxBudget != 10 {
		t.Fatalf("budgets [%d,%d], want exactly 10", res.MinBudget, res.MaxBudget)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("accuracy %v on separable stream", res.Accuracy)
	}
	if len(res.Predictions) != len(items) {
		t.Errorf("predictions %d", len(res.Predictions))
	}
}

func TestRunOnlineLearningGrowsTrees(t *testing.T) {
	clf, items := buildClassifier(t, 2)
	before := clf.Tree(0).Len() + clf.Tree(1).Len()
	if _, err := Run(clf, items, Poisson{Rate: 100}, Budgeter{NodesPerSecond: 1000, MaxNodes: 50}, 2); err != nil {
		t.Fatal(err)
	}
	after := clf.Tree(0).Len() + clf.Tree(1).Len()
	if after != before+len(items) {
		t.Errorf("trees grew by %d, want %d", after-before, len(items))
	}
	for _, y := range clf.Labels() {
		if err := clf.Tree(y).Validate(); err != nil {
			t.Fatalf("tree %d invalid after stream: %v", y, err)
		}
	}
}

func TestRunUnlabeledItemsNotLearned(t *testing.T) {
	clf, items := buildClassifier(t, 3)
	for i := range items {
		items[i].Labeled = i%3 == 0
	}
	res, err := Run(clf, items, Constant{Interval: 0.01}, Budgeter{NodesPerSecond: 1000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, it := range items {
		if it.Labeled {
			want++
		}
	}
	if res.Learned != want {
		t.Errorf("learned %d, want %d", res.Learned, want)
	}
}

func TestRunFasterStreamsGetSmallerBudgets(t *testing.T) {
	clf, items := buildClassifier(t, 4)
	slow, err := Run(clf, items, Poisson{Rate: 10}, Budgeter{NodesPerSecond: 1000, MaxNodes: 1000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	clf2, items2 := buildClassifier(t, 4)
	fast, err := Run(clf2, items2, Poisson{Rate: 1000}, Budgeter{NodesPerSecond: 1000, MaxNodes: 1000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanBudget >= slow.MeanBudget {
		t.Errorf("fast stream mean budget %v ≥ slow %v", fast.MeanBudget, slow.MeanBudget)
	}
}

func TestRunNilClassifier(t *testing.T) {
	if _, err := Run(nil, nil, Constant{Interval: 1}, Budgeter{}, 1); err == nil {
		t.Errorf("nil classifier accepted")
	}
}

func TestRunUnknownLabelErrors(t *testing.T) {
	clf, _ := buildClassifier(t, 5)
	items := []Item{{X: []float64{0.5, 0.5}, Label: 42, Labeled: true}}
	if _, err := Run(clf, items, Constant{Interval: 1}, Budgeter{NodesPerSecond: 10}, 1); err == nil {
		t.Errorf("unknown stream label accepted")
	}
}

func TestBucketing(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 5, 5: 5, 7: 10, 15: 20, 33: 50, 99: 100, 500: 1000}
	for in, want := range cases {
		if got := bucket(in); got != want {
			t.Errorf("bucket(%d) = %d, want %d", in, got, want)
		}
	}
}
