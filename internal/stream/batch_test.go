package stream

import (
	"math/rand"
	"testing"

	"bayestree/internal/core"
)

func batchTestClassifier(t *testing.T, n int, seed int64) (*core.Classifier, []Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := core.DefaultConfig(2)
	trees := make([]*core.Tree, 2)
	for c := range trees {
		tree, err := core.NewTree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			x := []float64{rng.NormFloat64() + float64(c)*3, rng.NormFloat64()}
			if err := tree.Insert(x); err != nil {
				t.Fatal(err)
			}
		}
		trees[c] = tree
	}
	clf, err := core.NewClassifier([]int{0, 1}, trees, core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, n)
	for i := range items {
		c := i % 2
		items[i] = Item{
			X:       []float64{rng.NormFloat64() + float64(c)*3, rng.NormFloat64()},
			Label:   c,
			Labeled: i%3 == 0,
		}
	}
	return clf, items
}

// window ≤ 1 must delegate to Run and reproduce it exactly (same rng
// consumption, same learning order, same predictions).
func TestRunBatchWindowOneEqualsRun(t *testing.T) {
	clfA, items := batchTestClassifier(t, 120, 31)
	clfB, _ := batchTestClassifier(t, 0, 31)
	arr := Poisson{Rate: 100}
	budg := Budgeter{NodesPerSecond: 2000, MaxNodes: 60}
	a, err := Run(clfA, items, arr, budg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(clfB, items, arr, budg, 7, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Processed != b.Processed || a.Correct != b.Correct || a.Learned != b.Learned || a.TotalNodes != b.TotalNodes {
		t.Fatalf("window=1 diverged from Run: %+v vs %+v", a, b)
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatalf("prediction %d: %d vs %d", i, a.Predictions[i], b.Predictions[i])
		}
	}
}

// Windowed parallel runs draw identical budgets and keep the accounting
// invariants; accuracy may differ slightly (labels learned per window)
// but must stay in a sane range for well separated classes.
func TestRunBatchWindowed(t *testing.T) {
	clf, items := batchTestClassifier(t, 240, 32)
	seq, err := RunBatch(nil, nil, Poisson{Rate: 1}, Budgeter{}, 0, 8, 2)
	if err == nil {
		t.Fatal("nil classifier must error")
	}
	_ = seq
	res, err := RunBatch(clf, items, Poisson{Rate: 100}, Budgeter{NodesPerSecond: 2000, MaxNodes: 60}, 7, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != len(items) || len(res.Predictions) != len(items) {
		t.Fatalf("processed %d/%d", res.Processed, len(items))
	}
	if res.Learned == 0 || res.Accuracy < 0.7 {
		t.Fatalf("windowed accuracy %v (learned %d) suspiciously low", res.Accuracy, res.Learned)
	}
	var hist int
	for _, c := range res.BudgetHist {
		hist += c
	}
	if hist != res.Processed {
		t.Fatalf("budget histogram sums %d, want %d", hist, res.Processed)
	}
}

// TestRunBatchNilClassifier: both a bare nil Engine and a typed-nil
// *core.Classifier must error cleanly at any window size — a typed nil
// slips past interface nil checks and used to be a panic risk.
func TestRunBatchNilClassifier(t *testing.T) {
	items := []Item{{X: []float64{0}, Label: 0, Labeled: true}}
	for _, window := range []int{1, 4} {
		if _, err := RunBatch(nil, items, Constant{Interval: 1}, Budgeter{NodesPerSecond: 1}, 1, window, 2); err == nil {
			t.Fatalf("window %d: nil engine did not error", window)
		}
		if _, err := RunBatch((*core.Classifier)(nil), items, Constant{Interval: 1}, Budgeter{NodesPerSecond: 1}, 1, window, 2); err == nil {
			t.Fatalf("window %d: typed-nil classifier did not error", window)
		}
	}
}
