// Package stream simulates the data-stream environments that motivate
// anytime classification (Section 1): constant streams with fixed
// inter-arrival times and varying streams (Poisson or bursty arrivals)
// where the time available per object — and hence the node budget of the
// anytime classifier — fluctuates. It also provides an online runner that
// interleaves classification with incremental learning from labelled
// objects, the "learn incrementally and online" requirement of the paper.
package stream

import (
	"fmt"
	"math"
	"math/rand"

	"bayestree/internal/core"
)

// Arrivals generates inter-arrival gaps in abstract time units (seconds).
type Arrivals interface {
	// Next returns the gap before the next object arrives.
	Next(rng *rand.Rand) float64
	// Name identifies the process in reports.
	Name() string
}

// Constant models a constant stream: every object arrives Interval apart.
type Constant struct{ Interval float64 }

// Next implements Arrivals.
func (c Constant) Next(*rand.Rand) float64 { return c.Interval }

// Name implements Arrivals.
func (Constant) Name() string { return "constant" }

// Poisson models a varying stream with exponential gaps of the given mean
// rate (objects per second).
type Poisson struct{ Rate float64 }

// Next implements Arrivals.
func (p Poisson) Next(rng *rand.Rand) float64 {
	if p.Rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / p.Rate
}

// Name implements Arrivals.
func (Poisson) Name() string { return "poisson" }

// Bursty alternates between a fast phase and a slow phase, each of
// geometric length — a crude model of the varying load produced by the
// multi-step health-monitoring setup of [13], where mobile devices send
// more or less data depending on pre-classification.
type Bursty struct {
	FastInterval, SlowInterval float64
	// SwitchProb is the per-object probability of toggling phases.
	SwitchProb float64
}

// Name implements Arrivals.
func (Bursty) Name() string { return "bursty" }

// Next implements Arrivals. Bursty keeps no state; the runner tracks the
// phase via the returned closure from NewBurstySource instead.
func (b Bursty) Next(rng *rand.Rand) float64 {
	// Stateless fallback: pick a phase at random.
	if rng.Float64() < 0.5 {
		return b.FastInterval
	}
	return b.SlowInterval
}

// Budgeter converts the time available for an object into a node budget.
type Budgeter struct {
	// NodesPerSecond is the emulated node processing rate.
	NodesPerSecond float64
	// MaxNodes caps the budget (0 = no cap).
	MaxNodes int
	// MinNodes floors the budget (an object always gets at least this
	// many reads; 0 is allowed and means the level-0 model may be all
	// that is used).
	MinNodes int
}

// Budget returns the node budget for a gap of the given length.
func (b Budgeter) Budget(gap float64) int {
	if math.IsInf(gap, 1) {
		if b.MaxNodes > 0 {
			return b.MaxNodes
		}
		return 1 << 20
	}
	n := int(gap * b.NodesPerSecond)
	if n < b.MinNodes {
		n = b.MinNodes
	}
	if b.MaxNodes > 0 && n > b.MaxNodes {
		n = b.MaxNodes
	}
	return n
}

// Item is one stream element: an observation, optionally labelled (in
// monitoring applications an expert sporadically labels the current
// status, providing online training data).
type Item struct {
	X       []float64
	Label   int
	Labeled bool
}

// Result summarises a stream run.
type Result struct {
	Processed   int
	Classified  int
	Correct     int
	Learned     int
	TotalNodes  int
	MinBudget   int
	MaxBudget   int
	MeanBudget  float64
	Accuracy    float64
	BudgetHist  map[int]int
	Predictions []int
}

// Run feeds the items through the anytime classifier under the arrival
// process: each object is classified with the node budget implied by the
// gap to the next arrival; labelled objects are additionally learned
// online. The classifier must already cover every label that occurs.
func Run(clf *core.Classifier, items []Item, arrivals Arrivals, budgeter Budgeter, seed int64) (*Result, error) {
	if clf == nil {
		return nil, fmt.Errorf("stream: nil classifier")
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{BudgetHist: make(map[int]int), MinBudget: math.MaxInt32}
	var budgetSum float64
	for _, it := range items {
		gap := arrivals.Next(rng)
		budget := budgeter.Budget(gap)
		pred := clf.Classify(it.X, budget)
		res.Predictions = append(res.Predictions, pred)
		res.Processed++
		res.Classified++
		res.TotalNodes += budget
		budgetSum += float64(budget)
		res.BudgetHist[bucket(budget)]++
		if budget < res.MinBudget {
			res.MinBudget = budget
		}
		if budget > res.MaxBudget {
			res.MaxBudget = budget
		}
		if it.Labeled {
			if pred == it.Label {
				res.Correct++
			}
			if err := clf.Learn(it.X, it.Label); err != nil {
				return nil, fmt.Errorf("stream: online learning: %w", err)
			}
			res.Learned++
		}
	}
	if res.Learned > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Learned)
	}
	if res.MinBudget == math.MaxInt32 {
		res.MinBudget = 0
	}
	if res.Processed > 0 {
		res.MeanBudget = budgetSum / float64(res.Processed)
	}
	return res, nil
}

// Engine is the classification-and-learning surface RunBatch drives: a
// batch anytime classifier with per-object budgets plus online learning.
// *core.Classifier implements it directly; the serving subsystem's
// sharded server implements it too, so the same stream runner can feed
// a live server for ingest-while-serving. Durability is the engine's
// concern, not the stream's: when the serving engine runs with a
// write-ahead log, every Learn/ingest this runner drives is logged and
// crash-recoverable with no change here — the WAL is transparent to
// the streaming layer.
type Engine interface {
	// ClassifyBatchBudgets classifies xs[i] with budgets[i] node reads
	// using a pool of workers, returning predictions in input order.
	ClassifyBatchBudgets(xs [][]float64, budgets []int, workers int) ([]int, error)
	// Learn absorbs one labelled observation online.
	Learn(x []float64, label int) error
}

// DecayAdvancer is the optional maintenance surface of an engine that
// forgets: one call advances the model's logical decay clock by one
// epoch and sweeps faded mass. *core.Classifier and the serving
// subsystem's server both implement it.
type DecayAdvancer interface {
	AdvanceDecay() core.SweepStats
}

// WithDecayEvery adapts stream position to logical decay time: the
// returned engine advances the underlying engine's decay epoch once
// per n learned (labelled) observations, so a drifting stream fed
// through RunBatch fades old concepts at a rate proportional to the
// stream itself. Engines without decay maintenance, or n ≤ 0, pass
// through unchanged. The wrapper is not safe for concurrent Learn
// calls — the RunBatch contract already learns sequentially.
func WithDecayEvery(e Engine, n int) Engine {
	da, ok := e.(DecayAdvancer)
	if !ok || n <= 0 {
		return e
	}
	return &decayEvery{engine: e, da: da, n: n}
}

type decayEvery struct {
	engine Engine
	da     DecayAdvancer
	n      int
	count  int
}

// ClassifyBatchBudgets implements Engine by delegation.
func (d *decayEvery) ClassifyBatchBudgets(xs [][]float64, budgets []int, workers int) ([]int, error) {
	return d.engine.ClassifyBatchBudgets(xs, budgets, workers)
}

// Learn implements Engine, ticking the decay clock every n
// observations.
func (d *decayEvery) Learn(x []float64, label int) error {
	if err := d.engine.Learn(x, label); err != nil {
		return err
	}
	d.count++
	if d.count >= d.n {
		d.count = 0
		d.da.AdvanceDecay()
	}
	return nil
}

// RunBatch is the parallel window variant of Run for high-rate serving:
// arrival gaps and node budgets are drawn exactly as in Run, but objects
// are processed in windows of the given size — each window is classified
// in parallel by the engine's batch path with per-object budgets, then
// the window's labelled objects are learned sequentially in arrival
// order. For a *core.Classifier, window ≤ 1 reproduces Run exactly (and
// is delegated to it); larger windows trade label freshness within one
// window for parallel throughput, since predictions inside a window do
// not yet see that window's labels.
func RunBatch(clf Engine, items []Item, arrivals Arrivals, budgeter Budgeter, seed int64, window, workers int) (*Result, error) {
	// A typed-nil *core.Classifier would slip past the interface nil
	// check below; routing it into Run yields its clean nil error.
	if c, ok := clf.(*core.Classifier); ok && (c == nil || window <= 1) {
		return Run(c, items, arrivals, budgeter, seed)
	}
	if clf == nil {
		return nil, fmt.Errorf("stream: nil classifier")
	}
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{BudgetHist: make(map[int]int), MinBudget: math.MaxInt32}
	var budgetSum float64
	xs := make([][]float64, 0, window)
	budgets := make([]int, 0, window)
	for start := 0; start < len(items); start += window {
		end := start + window
		if end > len(items) {
			end = len(items)
		}
		xs = xs[:0]
		budgets = budgets[:0]
		for _, it := range items[start:end] {
			xs = append(xs, it.X)
			budgets = append(budgets, budgeter.Budget(arrivals.Next(rng)))
		}
		preds, err := clf.ClassifyBatchBudgets(xs, budgets, workers)
		if err != nil {
			return nil, fmt.Errorf("stream: batch classification: %w", err)
		}
		for j, it := range items[start:end] {
			budget := budgets[j]
			res.Predictions = append(res.Predictions, preds[j])
			res.Processed++
			res.Classified++
			res.TotalNodes += budget
			budgetSum += float64(budget)
			res.BudgetHist[bucket(budget)]++
			if budget < res.MinBudget {
				res.MinBudget = budget
			}
			if budget > res.MaxBudget {
				res.MaxBudget = budget
			}
			if it.Labeled {
				if preds[j] == it.Label {
					res.Correct++
				}
				if err := clf.Learn(it.X, it.Label); err != nil {
					return nil, fmt.Errorf("stream: online learning: %w", err)
				}
				res.Learned++
			}
		}
	}
	if res.Learned > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Learned)
	}
	if res.MinBudget == math.MaxInt32 {
		res.MinBudget = 0
	}
	if res.Processed > 0 {
		res.MeanBudget = budgetSum / float64(res.Processed)
	}
	return res, nil
}

// bucket rounds budgets into coarse histogram bins (0,1,2,5,10,20,50,...).
func bucket(b int) int {
	switch {
	case b <= 2:
		return b
	case b <= 5:
		return 5
	case b <= 10:
		return 10
	case b <= 20:
		return 20
	case b <= 50:
		return 50
	case b <= 100:
		return 100
	default:
		return 1000
	}
}
