package stream

import (
	"testing"

	"bayestree/internal/core"
	"bayestree/internal/dataset"
)

// Online learning must track concept drift: a classifier that keeps
// learning from the stream stays accurate on the drifted concept, while a
// frozen classifier degrades — the incremental-learning motivation of
// Section 1 ("especially in the light of evolving data the model of a
// classifier has to be updated using new training data").
func TestOnlineLearningTracksDrift(t *testing.T) {
	ds, err := dataset.DriftStream(dataset.DriftSpec{
		Name: "drift", Size: 6000, Classes: 2, Features: 3,
		DriftDistance: 0.5, Abrupt: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Train both classifiers on the pre-drift head.
	const head = 1500
	build := func() *core.Classifier {
		byClass := map[int][][]float64{}
		for i := 0; i < head; i++ {
			byClass[ds.Y[i]] = append(byClass[ds.Y[i]], ds.X[i])
		}
		var labels []int
		var trees []*core.Tree
		for y := 0; y <= 1; y++ {
			tree, err := core.NewTree(testConfig(3))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range byClass[y] {
				if err := tree.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			labels = append(labels, y)
			trees = append(trees, tree)
		}
		clf, err := core.NewClassifier(labels, trees, core.ClassifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return clf
	}
	adaptive := build()
	frozen := build()

	// Stream the rest; score only the post-drift tail (last quarter).
	const tailStart = 4500
	var adaptCorrect, frozenCorrect, scored int
	for i := head; i < ds.Len(); i++ {
		predA := adaptive.Classify(ds.X[i], 30)
		predF := frozen.Classify(ds.X[i], 30)
		if i >= tailStart {
			scored++
			if predA == ds.Y[i] {
				adaptCorrect++
			}
			if predF == ds.Y[i] {
				frozenCorrect++
			}
		}
		// Only the adaptive classifier learns.
		if err := adaptive.Learn(ds.X[i], ds.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	accA := float64(adaptCorrect) / float64(scored)
	accF := float64(frozenCorrect) / float64(scored)
	if accA < accF+0.03 {
		t.Errorf("online learning did not track drift: adaptive %.3f vs frozen %.3f", accA, accF)
	}
	if accA < 0.75 {
		t.Errorf("adaptive post-drift accuracy %.3f too low", accA)
	}
}

// WithDecayEvery must turn stream position into decay time: running a
// decay-enabled classifier through RunBatch advances its epochs, keeps
// the model bounded and tracks the drifted concept at least as well as
// the same classifier without forgetting.
func TestWithDecayEveryAdvancesEpochsOnStream(t *testing.T) {
	ds, err := dataset.DriftStream(dataset.DriftSpec{
		Name: "drift", Size: 6000, Classes: 2, Features: 3,
		DriftDistance: 0.5, Abrupt: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const head = 1500
	build := func(decay bool) *core.Classifier {
		byClass := map[int][][]float64{}
		for i := 0; i < head; i++ {
			byClass[ds.Y[i]] = append(byClass[ds.Y[i]], ds.X[i])
		}
		var labels []int
		var trees []*core.Tree
		for y := 0; y <= 1; y++ {
			tree, err := core.NewTree(testConfig(3))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range byClass[y] {
				if err := tree.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			labels = append(labels, y)
			trees = append(trees, tree)
		}
		clf, err := core.NewClassifier(labels, trees, core.ClassifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if decay {
			if err := clf.EnableDecay(core.DecayOptions{Lambda: 1, MinWeight: 0.05}); err != nil {
				t.Fatal(err)
			}
		}
		return clf
	}
	items := make([]Item, 0, ds.Len()-head)
	for i := head; i < ds.Len(); i++ {
		items = append(items, Item{X: ds.X[i], Label: ds.Y[i], Labeled: true})
	}
	budgeter := Budgeter{NodesPerSecond: 3000, MaxNodes: 30, MinNodes: 30}
	tailAcc := func(res *Result) float64 {
		correct, scored := 0, 0
		tail := len(items) * 3 / 4
		for i := tail; i < len(items); i++ {
			scored++
			if res.Predictions[i] == items[i].Label {
				correct++
			}
		}
		return float64(correct) / float64(scored)
	}

	const epochEvery = 250
	decayClf := build(true)
	resD, err := RunBatch(WithDecayEvery(decayClf, epochEvery), items, Constant{Interval: 0.01}, budgeter, 9, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	plainClf := build(false)
	resP, err := RunBatch(plainClf, items, Constant{Interval: 0.01}, budgeter, 9, 32, 2)
	if err != nil {
		t.Fatal(err)
	}

	wantEpochs := int64(len(items) / epochEvery)
	if e := decayClf.Tree(0).Epoch(); e != wantEpochs {
		t.Errorf("decay epoch %d after %d learned objects, want %d", e, len(items), wantEpochs)
	}
	accD, accP := tailAcc(resD), tailAcc(resP)
	if accD < 0.75 {
		t.Errorf("decayed post-drift accuracy %.3f too low", accD)
	}
	if accD < accP-0.01 {
		t.Errorf("forgetting hurt drift tracking: decayed %.3f vs append-only %.3f", accD, accP)
	}
	// Bounded memory: the decayed forest holds roughly the last few
	// epochs, the append-only forest the full history.
	sizeD := decayClf.Tree(0).Len() + decayClf.Tree(1).Len()
	sizeP := plainClf.Tree(0).Len() + plainClf.Tree(1).Len()
	if sizeD >= sizeP/2 {
		t.Errorf("decayed forest size %d not bounded vs append-only %d", sizeD, sizeP)
	}
	t.Logf("post-drift tail accuracy: decayed %.3f (size %d) vs append-only %.3f (size %d)", accD, sizeD, accP, sizeP)
}
