package stream

import (
	"testing"

	"bayestree/internal/core"
	"bayestree/internal/dataset"
)

// Online learning must track concept drift: a classifier that keeps
// learning from the stream stays accurate on the drifted concept, while a
// frozen classifier degrades — the incremental-learning motivation of
// Section 1 ("especially in the light of evolving data the model of a
// classifier has to be updated using new training data").
func TestOnlineLearningTracksDrift(t *testing.T) {
	ds, err := dataset.DriftStream(dataset.DriftSpec{
		Name: "drift", Size: 6000, Classes: 2, Features: 3,
		DriftDistance: 0.5, Abrupt: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Train both classifiers on the pre-drift head.
	const head = 1500
	build := func() *core.Classifier {
		byClass := map[int][][]float64{}
		for i := 0; i < head; i++ {
			byClass[ds.Y[i]] = append(byClass[ds.Y[i]], ds.X[i])
		}
		var labels []int
		var trees []*core.Tree
		for y := 0; y <= 1; y++ {
			tree, err := core.NewTree(testConfig(3))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range byClass[y] {
				if err := tree.Insert(p); err != nil {
					t.Fatal(err)
				}
			}
			labels = append(labels, y)
			trees = append(trees, tree)
		}
		clf, err := core.NewClassifier(labels, trees, core.ClassifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return clf
	}
	adaptive := build()
	frozen := build()

	// Stream the rest; score only the post-drift tail (last quarter).
	const tailStart = 4500
	var adaptCorrect, frozenCorrect, scored int
	for i := head; i < ds.Len(); i++ {
		predA := adaptive.Classify(ds.X[i], 30)
		predF := frozen.Classify(ds.X[i], 30)
		if i >= tailStart {
			scored++
			if predA == ds.Y[i] {
				adaptCorrect++
			}
			if predF == ds.Y[i] {
				frozenCorrect++
			}
		}
		// Only the adaptive classifier learns.
		if err := adaptive.Learn(ds.X[i], ds.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	accA := float64(adaptCorrect) / float64(scored)
	accF := float64(frozenCorrect) / float64(scored)
	if accA < accF+0.03 {
		t.Errorf("online learning did not track drift: adaptive %.3f vs frozen %.3f", accA, accF)
	}
	if accA < 0.75 {
		t.Errorf("adaptive post-drift accuracy %.3f too low", accA)
	}
}
