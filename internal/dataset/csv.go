package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSVOptions control parsing of labelled CSV data.
type CSVOptions struct {
	// LabelColumn is the zero-based column holding the class label; -1
	// means the last column (the UCI convention).
	LabelColumn int
	// HasHeader skips the first row.
	HasHeader bool
	// Comma is the field separator (default ',').
	Comma rune
}

// ReadCSV parses a labelled data set from r. Feature columns must be
// numeric; labels may be numeric or strings (strings are mapped to dense
// integer codes in first-appearance order). Errors carry the offending
// line number.
func ReadCSV(r io.Reader, name string, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1

	ds := &Dataset{Name: name}
	labelCodes := make(map[string]int)
	line := 0
	wantFields := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: %w", name, line+1, err)
		}
		line++
		if line == 1 && opts.HasHeader {
			continue
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("dataset: %s line %d: need ≥ 2 columns, got %d", name, line, len(rec))
		}
		if wantFields == -1 {
			wantFields = len(rec)
		} else if len(rec) != wantFields {
			return nil, fmt.Errorf("dataset: %s line %d: %d columns, want %d", name, line, len(rec), wantFields)
		}
		labelCol := opts.LabelColumn
		if labelCol < 0 {
			labelCol = len(rec) - 1
		}
		if labelCol >= len(rec) {
			return nil, fmt.Errorf("dataset: %s line %d: label column %d out of range", name, line, labelCol)
		}
		x := make([]float64, 0, len(rec)-1)
		for i, f := range rec {
			if i == labelCol {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s line %d column %d: %q is not numeric", name, line, i, f)
			}
			x = append(x, v)
		}
		labelStr := strings.TrimSpace(rec[labelCol])
		var y int
		if v, err := strconv.Atoi(labelStr); err == nil {
			y = v
		} else {
			code, ok := labelCodes[labelStr]
			if !ok {
				code = len(labelCodes)
				labelCodes[labelStr] = code
			}
			y = code
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadCSV reads a labelled CSV file from disk.
func LoadCSV(path string, opts CSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return ReadCSV(f, strings.TrimSuffix(name, ".csv"), opts)
}

// WriteCSV writes the data set as CSV with the label in the last column.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, d.Dim()+1)
	for i, x := range d.X {
		for k, v := range x {
			rec[k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[d.Dim()] = strconv.Itoa(d.Y[i])
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the data set to a file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return d.WriteCSV(f)
}
