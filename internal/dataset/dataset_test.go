package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustSynthetic(t *testing.T, spec SyntheticSpec) *Dataset {
	t.Helper()
	ds, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func demoSpec() SyntheticSpec {
	return SyntheticSpec{Name: "demo", Size: 500, Classes: 4, Features: 5, Seed: 1}
}

func TestSyntheticValidationErrors(t *testing.T) {
	bad := []SyntheticSpec{
		{Name: "x", Size: 0, Classes: 2, Features: 2},
		{Name: "x", Size: 10, Classes: 0, Features: 2},
		{Name: "x", Size: 10, Classes: 2, Features: 2, NoiseDims: 2},
		{Name: "x", Size: 10, Classes: 2, Features: 2, Overlap: 1.5},
	}
	for i, spec := range bad {
		if _, err := Synthetic(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSyntheticBasicShape(t *testing.T) {
	ds := mustSynthetic(t, demoSpec())
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 || ds.Dim() != 5 {
		t.Fatalf("shape %d×%d", ds.Len(), ds.Dim())
	}
	if got := len(ds.Classes()); got != 4 {
		t.Fatalf("classes = %d", got)
	}
	// All values inside [0,1].
	for _, x := range ds.X {
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("value %v outside unit cube", v)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := mustSynthetic(t, demoSpec())
	b := mustSynthetic(t, demoSpec())
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("labels differ at %d", i)
		}
		for k := range a.X[i] {
			if a.X[i][k] != b.X[i][k] {
				t.Fatalf("values differ at %d/%d", i, k)
			}
		}
	}
	spec := demoSpec()
	spec.Seed = 2
	c := mustSynthetic(t, spec)
	same := true
	for i := range a.X {
		if a.Y[i] != c.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical labels")
	}
}

func TestSyntheticSkew(t *testing.T) {
	spec := demoSpec()
	spec.Size = 5000
	spec.Skew = 1.5
	ds := mustSynthetic(t, spec)
	counts := ds.ClassCounts()
	if counts[0] <= counts[3] {
		t.Errorf("skew not applied: %v", counts)
	}
}

func TestSyntheticClassesAreLearnable(t *testing.T) {
	// Nearest-centroid on informative dims must beat chance by a wide
	// margin — the generator must actually encode the labels.
	ds := mustSynthetic(t, demoSpec())
	byClass := ds.ByClass()
	centroids := map[int][]float64{}
	for y, pts := range byClass {
		c := make([]float64, ds.Dim())
		for _, p := range pts {
			for k, v := range p {
				c[k] += v
			}
		}
		for k := range c {
			c[k] /= float64(len(pts))
		}
		centroids[y] = c
	}
	correct := 0
	for i, x := range ds.X {
		best, bestD := -1, math.Inf(1)
		for y, c := range centroids {
			var d float64
			for k := range x {
				dd := x[k] - c[k]
				d += dd * dd
			}
			if d < bestD {
				best, bestD = y, d
			}
		}
		if best == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.5 {
		t.Errorf("centroid accuracy %v — labels look random", acc)
	}
}

func TestNamedDatasetsMatchTable1(t *testing.T) {
	for _, row := range Table1() {
		name := strings.ToLower(row.Name)
		ds, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() != row.Size {
			t.Errorf("%s: size %d, want %d", name, ds.Len(), row.Size)
		}
		if ds.Dim() != row.Features {
			t.Errorf("%s: features %d, want %d", name, ds.Dim(), row.Features)
		}
		if got := len(ds.Classes()); got != row.Classes {
			t.Errorf("%s: classes %d, want %d", name, got, row.Classes)
		}
	}
	if _, err := ByName("mnist", 1); err == nil {
		t.Errorf("unknown data set accepted")
	}
}

func TestScaledSizes(t *testing.T) {
	ds, err := Pendigits(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1099 {
		t.Errorf("scaled size = %d, want 1099", ds.Len())
	}
	ds, err = Pendigits(0.000001)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 100 {
		t.Errorf("minimum scale clamp failed: %d", ds.Len())
	}
}

// Property: stratified k-fold partitions every index into exactly one
// test fold, and train/test are disjoint and complete.
func TestStratifiedKFoldPartitionProperty(t *testing.T) {
	ds := mustSynthetic(t, demoSpec())
	f := func(kRaw uint8, seed int64) bool {
		k := int(kRaw%6) + 2
		folds, err := ds.StratifiedKFold(k, seed)
		if err != nil {
			return false
		}
		seen := make([]int, ds.Len())
		for _, fold := range folds {
			inTest := map[int]bool{}
			for _, i := range fold.Test {
				seen[i]++
				inTest[i] = true
			}
			if len(fold.Train)+len(fold.Test) != ds.Len() {
				return false
			}
			for _, i := range fold.Train {
				if inTest[i] {
					return false
				}
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedKFoldPreservesProportions(t *testing.T) {
	spec := demoSpec()
	spec.Size = 4000
	ds := mustSynthetic(t, spec)
	folds, err := ds.StratifiedKFold(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	global := ds.ClassCounts()
	for fi, fold := range folds {
		test := ds.Subset(fold.Test, "t")
		counts := test.ClassCounts()
		for y, n := range global {
			frac := float64(counts[y]) / float64(test.Len())
			want := float64(n) / float64(ds.Len())
			if math.Abs(frac-want) > 0.05 {
				t.Errorf("fold %d class %d proportion %v, want ≈ %v", fi, y, frac, want)
			}
		}
	}
	if _, err := ds.StratifiedKFold(1, 1); err == nil {
		t.Errorf("k=1 accepted")
	}
	if _, err := ds.StratifiedKFold(ds.Len()+1, 1); err == nil {
		t.Errorf("k>n accepted")
	}
}

func TestNormalize(t *testing.T) {
	ds := &Dataset{Name: "n", X: [][]float64{{0, 5}, {10, 5}, {5, 5}}, Y: []int{0, 1, 0}}
	lo, hi := ds.Normalize()
	if lo[0] != 0 || hi[0] != 10 {
		t.Errorf("bounds = %v %v", lo, hi)
	}
	if ds.X[1][0] != 1 || ds.X[2][0] != 0.5 {
		t.Errorf("normalised X = %v", ds.X)
	}
	// Constant dimension maps to zero.
	if ds.X[0][1] != 0 || ds.X[1][1] != 0 {
		t.Errorf("constant dim = %v", ds.X)
	}
}

func TestSample(t *testing.T) {
	spec := demoSpec()
	spec.Size = 2000
	ds := mustSynthetic(t, spec)
	s := ds.Sample(200, 1)
	if s.Len() < 150 || s.Len() > 250 {
		t.Errorf("sample size %d, want ≈ 200", s.Len())
	}
	if got := len(s.Classes()); got != 4 {
		t.Errorf("sample lost classes: %d", got)
	}
	if ds.Sample(99999, 1) != ds {
		t.Errorf("oversample should return the original")
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	ds := mustSynthetic(t, demoSpec())
	type pair struct {
		x0 float64
		y  int
	}
	want := map[pair]int{}
	for i := range ds.X {
		want[pair{ds.X[i][0], ds.Y[i]}]++
	}
	ds.Shuffle(3)
	got := map[pair]int{}
	for i := range ds.X {
		got[pair{ds.X[i][0], ds.Y[i]}]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("shuffle broke x/y pairing")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := mustSynthetic(t, demoSpec())
	ds.X[3] = []float64{1} // wrong dim
	if err := ds.Validate(); err == nil {
		t.Errorf("dim corruption accepted")
	}
	ds = mustSynthetic(t, demoSpec())
	ds.X[3][0] = math.NaN()
	if err := ds.Validate(); err == nil {
		t.Errorf("NaN accepted")
	}
	ds = mustSynthetic(t, demoSpec())
	ds.Y = ds.Y[:10]
	if err := ds.Validate(); err == nil {
		t.Errorf("length mismatch accepted")
	}
}
