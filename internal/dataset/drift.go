package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// DriftSpec parameterises an evolving-stream generator: class-conditional
// mixtures whose component means migrate over the course of the stream —
// the "evolving data" setting that motivates the paper's incremental
// learning (Section 1) and the clustering extension (Section 4.2).
type DriftSpec struct {
	Name     string
	Size     int
	Classes  int
	Features int
	// ModesPerClass as in SyntheticSpec (default 3).
	ModesPerClass int
	// Spread is the per-mode standard deviation (default 0.06).
	Spread float64
	// DriftDistance is how far each mode centre travels (in unit-cube
	// units) from the start to the end of the stream (default 0.3).
	DriftDistance float64
	// Abrupt, when set, moves all modes at once halfway through the
	// stream instead of gradually (sudden vs incremental concept drift).
	Abrupt bool
	// Seed fixes the generator.
	Seed int64
}

func (s *DriftSpec) defaults() error {
	if s.Size <= 0 || s.Classes <= 0 || s.Features <= 0 {
		return fmt.Errorf("dataset: drift spec needs positive size/classes/features")
	}
	if s.ModesPerClass <= 0 {
		s.ModesPerClass = 3
	}
	if s.Spread <= 0 {
		s.Spread = 0.06
	}
	if s.DriftDistance < 0 {
		return fmt.Errorf("dataset: negative drift distance")
	}
	if s.DriftDistance == 0 {
		s.DriftDistance = 0.3
	}
	return nil
}

// DriftStream generates an ordered stream (order matters — item i is
// drawn from the concept at stream position i/Size). The returned Dataset
// preserves that order; do not shuffle it if drift is the point.
func DriftStream(spec DriftSpec) (*Dataset, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	type mode struct {
		start, end []float64
		sigma      float64
	}
	modes := make([][]mode, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		ms := make([]mode, spec.ModesPerClass)
		for m := range ms {
			start := make([]float64, spec.Features)
			end := make([]float64, spec.Features)
			// Random start; end displaced by DriftDistance along a random
			// direction.
			dir := make([]float64, spec.Features)
			var norm float64
			for k := 0; k < spec.Features; k++ {
				start[k] = 0.15 + 0.7*rng.Float64()
				dir[k] = rng.NormFloat64()
				norm += dir[k] * dir[k]
			}
			norm = math.Sqrt(norm)
			for k := 0; k < spec.Features; k++ {
				end[k] = clamp01(start[k] + spec.DriftDistance*dir[k]/norm)
			}
			ms[m] = mode{start: start, end: end, sigma: spec.Spread * (0.5 + rng.Float64())}
		}
		modes[c] = ms
	}
	ds := &Dataset{Name: spec.Name, X: make([][]float64, spec.Size), Y: make([]int, spec.Size)}
	for i := 0; i < spec.Size; i++ {
		progress := float64(i) / float64(spec.Size)
		if spec.Abrupt {
			if progress < 0.5 {
				progress = 0
			} else {
				progress = 1
			}
		}
		c := rng.Intn(spec.Classes)
		m := modes[c][rng.Intn(len(modes[c]))]
		x := make([]float64, spec.Features)
		for k := 0; k < spec.Features; k++ {
			center := (1-progress)*m.start[k] + progress*m.end[k]
			x[k] = clamp01(center + rng.NormFloat64()*m.sigma)
		}
		ds.X[i] = x
		ds.Y[i] = c
	}
	return ds, nil
}

// OneHot encodes categorical attribute values (given as integer codes per
// column) into a dense feature block, the standard bridge for running the
// Bayes tree on data sets "containing (or consisting of) categorical
// data" (Section 4.1 names native categorical support as future work;
// one-hot encoding makes such data usable today). cardinalities[j] is the
// number of distinct values of column j; values outside [0, cardinality)
// are rejected.
func OneHot(rows [][]int, cardinalities []int) ([][]float64, error) {
	if len(cardinalities) == 0 {
		return nil, fmt.Errorf("dataset: no cardinalities")
	}
	width := 0
	for j, c := range cardinalities {
		if c < 2 {
			return nil, fmt.Errorf("dataset: column %d has cardinality %d (< 2)", j, c)
		}
		width += c
	}
	out := make([][]float64, len(rows))
	for i, row := range rows {
		if len(row) != len(cardinalities) {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want %d", i, len(row), len(cardinalities))
		}
		x := make([]float64, width)
		off := 0
		for j, v := range row {
			if v < 0 || v >= cardinalities[j] {
				return nil, fmt.Errorf("dataset: row %d column %d value %d outside [0,%d)", i, j, v, cardinalities[j])
			}
			x[off+v] = 1
			off += cardinalities[j]
		}
		out[i] = x
	}
	return out, nil
}

// AppendOneHot concatenates numeric features with a one-hot block, for
// mixed numeric/categorical data sets (covertype's real schema is of this
// kind).
func AppendOneHot(numeric [][]float64, rows [][]int, cardinalities []int) ([][]float64, error) {
	if len(numeric) != len(rows) {
		return nil, fmt.Errorf("dataset: %d numeric rows vs %d categorical rows", len(numeric), len(rows))
	}
	oh, err := OneHot(rows, cardinalities)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(numeric))
	for i := range numeric {
		x := make([]float64, 0, len(numeric[i])+len(oh[i]))
		x = append(x, numeric[i]...)
		x = append(x, oh[i]...)
		out[i] = x
	}
	return out, nil
}
