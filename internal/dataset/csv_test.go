package dataset

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1.5,2.5,0\n3.5,4.5,1\n5.0,6.0,0\n"
	ds, err := ReadCSV(strings.NewReader(in), "test", CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Dim() != 2 {
		t.Fatalf("shape %d×%d", ds.Len(), ds.Dim())
	}
	if ds.X[1][0] != 3.5 || ds.Y[1] != 1 {
		t.Fatalf("row 1 = %v/%d", ds.X[1], ds.Y[1])
	}
}

func TestReadCSVHeaderAndLabelColumn(t *testing.T) {
	in := "label,a,b\n7,1,2\n8,3,4\n"
	ds, err := ReadCSV(strings.NewReader(in), "test", CSVOptions{LabelColumn: 0, HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.Y[0] != 7 || ds.X[0][0] != 1 || ds.X[0][1] != 2 {
		t.Fatalf("parse wrong: %v %v", ds.X[0], ds.Y[0])
	}
}

func TestReadCSVStringLabels(t *testing.T) {
	in := "1,2,cat\n3,4,dog\n5,6,cat\n"
	ds, err := ReadCSV(strings.NewReader(in), "test", CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Y[0] != 0 || ds.Y[1] != 1 || ds.Y[2] != 0 {
		t.Fatalf("string label coding wrong: %v", ds.Y)
	}
}

func TestReadCSVCustomSeparator(t *testing.T) {
	in := "1;2;0\n3;4;1\n"
	ds, err := ReadCSV(strings.NewReader(in), "test", CSVOptions{LabelColumn: -1, Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("Len = %d", ds.Len())
	}
}

// Failure injection: malformed inputs must produce errors naming the line.
func TestReadCSVFailures(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"non-numeric feature", "1,abc,0\n", CSVOptions{LabelColumn: -1}},
		{"ragged rows", "1,2,0\n1,2,3,0\n", CSVOptions{LabelColumn: -1}},
		{"too few columns", "5\n", CSVOptions{LabelColumn: -1}},
		{"label column out of range", "1,2\n", CSVOptions{LabelColumn: 5}},
		{"empty input", "", CSVOptions{LabelColumn: -1}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "bad", c.opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if c.name == "non-numeric feature" && !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: error does not name the line: %v", c.name, err)
		}
	}
}

// Failure injection: a reader that fails mid-stream must surface the error.
type flakyReader struct {
	data []byte
	pos  int
}

func (r *flakyReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, errors.New("disk on fire")
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func TestReadCSVReaderError(t *testing.T) {
	r := &flakyReader{data: []byte("1,2,0\n3,4,")}
	if _, err := ReadCSV(r, "flaky", CSVOptions{LabelColumn: -1}); err == nil {
		t.Errorf("mid-stream failure swallowed")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := mustSynthetic(t, demoSpec())
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "back", CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() || back.Dim() != ds.Dim() {
		t.Fatalf("round trip shape %d×%d", back.Len(), back.Dim())
	}
	for i := range ds.X {
		if back.Y[i] != ds.Y[i] {
			t.Fatalf("label %d changed", i)
		}
		for k := range ds.X[i] {
			if back.X[i][k] != ds.X[i][k] {
				t.Fatalf("value [%d][%d] changed: %v → %v", i, k, ds.X[i][k], back.X[i][k])
			}
		}
	}
}

func TestSaveLoadCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.csv")
	ds := mustSynthetic(t, demoSpec())
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
	if back.Name != "ds" {
		t.Errorf("name = %q, want ds", back.Name)
	}
	if _, err := LoadCSV(filepath.Join(dir, "missing.csv"), CSVOptions{}); err == nil {
		t.Errorf("missing file accepted")
	}
}

// Failure injection: writing to a failing writer must error, not panic.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 64 {
		return 0, errors.New("quota exceeded")
	}
	return len(p), nil
}

func TestWriteCSVWriterError(t *testing.T) {
	ds := mustSynthetic(t, demoSpec())
	var w failWriter
	if err := ds.WriteCSV(&w); err == nil {
		t.Errorf("write failure swallowed")
	}
}
