package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// SyntheticSpec parameterises a synthetic multi-class data set whose
// class-conditional densities are random Gaussian mixtures — the structure
// the Bayes tree models, so bulk-loading comparisons on these data sets
// exercise the same mechanisms as the UCI data of Table 1 (see DESIGN.md
// for the substitution rationale).
type SyntheticSpec struct {
	Name     string
	Size     int
	Classes  int
	Features int
	// ModesPerClass is the number of Gaussian components per class
	// (default 4), making class densities genuinely multimodal.
	ModesPerClass int
	// Spread is the base component standard deviation in the unit cube
	// (default 0.08). Larger spreads overlap classes more.
	Spread float64
	// ModeSpread is the standard deviation of mode centres around their
	// class centre (default 2×Spread). Small values make classes nearly
	// unimodal (high accuracy with the coarsest model); larger values
	// reward deeper refinement — the knob that shapes how much anytime
	// refinement can still gain.
	ModeSpread float64
	// Overlap in [0,1) pulls all class centres toward the cube centre,
	// increasing class confusion (default 0).
	Overlap float64
	// DominantWeight in [0,1) is the probability mass of the class's
	// primary mode at its class centre; the remaining mass is spread over
	// satellite modes scattered independently across the cube. A high
	// dominant weight gives the coarsest (unimodal) model decent accuracy
	// while the interleaved satellites reward refinement — the regime
	// where bulk-loading quality matters (default 0: all modes scattered,
	// fully flat multimodality).
	DominantWeight float64
	// Skew > 0 makes class priors non-uniform following a power law
	// (class c gets weight (c+1)^-Skew); 0 means uniform.
	Skew float64
	// NoiseDims is the number of trailing features that carry no class
	// information (uniform noise), as in real sensor data.
	NoiseDims int
	// Seed fixes the generator.
	Seed int64
}

func (s *SyntheticSpec) defaults() error {
	if s.Size <= 0 || s.Classes <= 0 || s.Features <= 0 {
		return fmt.Errorf("dataset: synthetic spec needs positive size/classes/features, got %d/%d/%d",
			s.Size, s.Classes, s.Features)
	}
	if s.NoiseDims >= s.Features {
		return fmt.Errorf("dataset: %d noise dims leave no informative features (of %d)", s.NoiseDims, s.Features)
	}
	if s.ModesPerClass <= 0 {
		s.ModesPerClass = 4
	}
	if s.Spread <= 0 {
		s.Spread = 0.08
	}
	if s.ModeSpread <= 0 {
		s.ModeSpread = 2 * s.Spread
	}
	if s.Overlap < 0 || s.Overlap >= 1 {
		return fmt.Errorf("dataset: overlap must be in [0,1), got %v", s.Overlap)
	}
	return nil
}

// Synthetic generates a data set per the spec. All feature values lie in
// [0, 1]; the generator is fully deterministic in the seed.
func Synthetic(spec SyntheticSpec) (*Dataset, error) {
	if err := spec.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	inf := spec.Features - spec.NoiseDims

	// Class priors.
	priors := make([]float64, spec.Classes)
	var z float64
	for c := range priors {
		if spec.Skew > 0 {
			priors[c] = math.Pow(float64(c+1), -spec.Skew)
		} else {
			priors[c] = 1
		}
		z += priors[c]
	}
	for c := range priors {
		priors[c] /= z
	}

	// Per-class mixtures over the informative dims.
	type mode struct {
		mean  []float64
		sigma []float64
	}
	classModes := make([][]mode, spec.Classes)
	modeWeights := make([][]float64, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		// Class centre, pulled toward the cube centre by Overlap.
		center := make([]float64, inf)
		for k := 0; k < inf; k++ {
			center[k] = 0.15 + 0.7*rng.Float64()
			center[k] = center[k]*(1-spec.Overlap) + 0.5*spec.Overlap
		}
		modes := make([]mode, spec.ModesPerClass)
		weights := make([]float64, spec.ModesPerClass)
		for m := range modes {
			mean := make([]float64, inf)
			sigma := make([]float64, inf)
			for k := 0; k < inf; k++ {
				if spec.DominantWeight > 0 && m == 0 {
					// Primary mode sits at the class centre.
					mean[k] = clamp01(center[k] + rng.NormFloat64()*0.02)
				} else if spec.DominantWeight > 0 {
					// Satellites scatter across the cube, interleaving
					// with other classes' satellites.
					v := 0.1 + 0.8*rng.Float64()
					mean[k] = v*(1-spec.Overlap) + 0.5*spec.Overlap
				} else {
					mean[k] = clamp01(center[k] + rng.NormFloat64()*spec.ModeSpread)
				}
				sigma[k] = spec.Spread * (0.5 + rng.Float64())
			}
			modes[m] = mode{mean: mean, sigma: sigma}
			if spec.DominantWeight > 0 {
				if m == 0 {
					weights[m] = spec.DominantWeight
				} else {
					weights[m] = (1 - spec.DominantWeight) / float64(spec.ModesPerClass-1)
				}
			} else {
				weights[m] = 1 / float64(spec.ModesPerClass)
			}
		}
		classModes[c] = modes
		modeWeights[c] = weights
	}

	ds := &Dataset{Name: spec.Name, X: make([][]float64, spec.Size), Y: make([]int, spec.Size)}
	for i := 0; i < spec.Size; i++ {
		c := sampleDiscrete(priors, rng)
		m := classModes[c][sampleDiscrete(modeWeights[c], rng)]
		x := make([]float64, spec.Features)
		for k := 0; k < inf; k++ {
			v := m.mean[k] + rng.NormFloat64()*m.sigma[k]
			x[k] = clamp01(v)
		}
		for k := inf; k < spec.Features; k++ {
			x[k] = rng.Float64()
		}
		ds.X[i] = x
		ds.Y[i] = c
	}
	return ds, nil
}

func sampleDiscrete(w []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, v := range w {
		acc += v
		if u <= acc {
			return i
		}
	}
	return len(w) - 1
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// The four named generators mirror Table 1 of the paper (size, classes,
// features); the multimodality/overlap/skew settings are chosen so that
// the anytime accuracy regimes resemble the paper's figures: Pendigits
// fairly easy (≈0.95 plateau), Letter many-class and harder, Gender a
// heavily overlapping 2-class problem, Covertype skewed with moderate
// overlap. scale in (0, 1] shrinks the data set proportionally for quick
// runs; scale = 1 reproduces the Table 1 sizes.

// Pendigits returns the synthetic stand-in for the UCI Pendigits data set
// (10 992 × 16 features × 10 classes): moderately hard, a steep anytime
// rise to a high plateau as in Figure 2.
func Pendigits(scale float64) (*Dataset, error) {
	return Synthetic(SyntheticSpec{
		Name: "pendigits", Size: scaled(10992, scale), Classes: 10, Features: 16,
		ModesPerClass: 5, Spread: 0.10, Overlap: 0.40, DominantWeight: 0.45, Seed: 420001,
	})
}

// Letter returns the synthetic stand-in for UCI Letter (20 000 × 16 × 26):
// many confusable classes, the regime where the paper reports the largest
// bulk-loading gains (Figure 3).
func Letter(scale float64) (*Dataset, error) {
	return Synthetic(SyntheticSpec{
		Name: "letter", Size: scaled(20000, scale), Classes: 26, Features: 16,
		ModesPerClass: 4, Spread: 0.10, Overlap: 0.42, DominantWeight: 0.40, Seed: 420002,
	})
}

// Gender returns the synthetic stand-in for the physiological-data-modeling
// Gender task (189 961 × 9 × 2) — a heavily overlapping two-class problem
// with noise dimensions and a flat, oscillation-prone anytime curve
// (Figure 4 top).
func Gender(scale float64) (*Dataset, error) {
	return Synthetic(SyntheticSpec{
		Name: "gender", Size: scaled(189961, scale), Classes: 2, Features: 9,
		ModesPerClass: 8, Spread: 0.13, Overlap: 0.50, DominantWeight: 0.30,
		NoiseDims: 2, Seed: 420003,
	})
}

// Covertype returns the synthetic stand-in for UCI Covertype
// (581 012 × 10 × 7) — skewed class priors and moderate overlap
// (Figure 4 bottom).
func Covertype(scale float64) (*Dataset, error) {
	return Synthetic(SyntheticSpec{
		Name: "covertype", Size: scaled(581012, scale), Classes: 7, Features: 10,
		ModesPerClass: 6, Spread: 0.10, Overlap: 0.40, DominantWeight: 0.40,
		Skew: 0.8, NoiseDims: 1, Seed: 420004,
	})
}

func scaled(full int, scale float64) int {
	if scale <= 0 || scale >= 1 {
		return full
	}
	n := int(math.Round(scale * float64(full)))
	if n < 100 {
		n = 100
	}
	return n
}

// ByName returns the Table 1 stand-in with the given name at the given
// scale.
func ByName(name string, scale float64) (*Dataset, error) {
	switch name {
	case "pendigits":
		return Pendigits(scale)
	case "letter":
		return Letter(scale)
	case "gender":
		return Gender(scale)
	case "covertype":
		return Covertype(scale)
	}
	return nil, fmt.Errorf("dataset: unknown data set %q (want pendigits|letter|gender|covertype)", name)
}

// TableInfo describes one Table 1 row.
type TableInfo struct {
	Name     string
	Size     int
	Classes  int
	Features int
	Ref      string
}

// Table1 returns the paper's data set inventory (Table 1).
func Table1() []TableInfo {
	return []TableInfo{
		{Name: "Pendigits", Size: 10992, Classes: 10, Features: 16, Ref: "[12]"},
		{Name: "Letter", Size: 20000, Classes: 26, Features: 16, Ref: "[12]"},
		{Name: "Gender", Size: 189961, Classes: 2, Features: 9, Ref: "[19]"},
		{Name: "Covertype", Size: 581012, Classes: 7, Features: 10, Ref: "[12]"},
	}
}
