// Package dataset provides the training data substrate for the
// experiments: labelled vector data sets, min-max normalisation,
// stratified k-fold cross validation (the paper uses 4-fold), CSV
// loading for real UCI data when available, and seeded synthetic
// generators matched to the four data sets of Table 1 (Pendigits, Letter,
// Gender, Covertype) for fully offline reproduction.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dataset is a labelled collection of d-dimensional observations.
type Dataset struct {
	Name string
	X    [][]float64
	Y    []int
}

// Len returns the number of observations.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the dimensionality (0 for an empty data set).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural consistency: equal lengths, uniform
// dimensions, finite values.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset %s: %d observations but %d labels", d.Name, len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("dataset %s: empty", d.Name)
	}
	dim := len(d.X[0])
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("dataset %s: observation %d has dim %d, want %d", d.Name, i, len(x), dim)
		}
		for k, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset %s: non-finite value at [%d][%d]", d.Name, i, k)
			}
		}
	}
	return nil
}

// Classes returns the distinct labels in ascending order.
func (d *Dataset) Classes() []int {
	seen := make(map[int]bool)
	for _, y := range d.Y {
		seen[y] = true
	}
	out := make([]int, 0, len(seen))
	for y := range seen {
		out = append(out, y)
	}
	sort.Ints(out)
	return out
}

// ClassCounts returns the number of observations per label.
func (d *Dataset) ClassCounts() map[int]int {
	out := make(map[int]int)
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// ByClass groups the observations by label (views into X, not copies).
func (d *Dataset) ByClass() map[int][][]float64 {
	out := make(map[int][][]float64)
	for i, y := range d.Y {
		out[y] = append(out[y], d.X[i])
	}
	return out
}

// Subset returns the data set restricted to the given indices (views into
// the original observation vectors).
func (d *Dataset) Subset(idx []int, name string) *Dataset {
	out := &Dataset{Name: name, X: make([][]float64, len(idx)), Y: make([]int, len(idx))}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Shuffle permutes the data set in place with the given seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Normalize rescales every dimension to [0, 1] in place (min-max).
// Constant dimensions map to 0. It returns the per-dimension (lo, hi)
// used, so streams can apply the same scaling later.
func (d *Dataset) Normalize() (lo, hi []float64) {
	dim := d.Dim()
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	for k := 0; k < dim; k++ {
		lo[k], hi[k] = math.Inf(1), math.Inf(-1)
	}
	for _, x := range d.X {
		for k, v := range x {
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	for _, x := range d.X {
		for k := range x {
			if hi[k] > lo[k] {
				x[k] = (x[k] - lo[k]) / (hi[k] - lo[k])
			} else {
				x[k] = 0
			}
		}
	}
	return lo, hi
}

// Fold is one train/test split of a cross validation.
type Fold struct {
	Train []int
	Test  []int
}

// StratifiedKFold partitions the data set into k folds preserving class
// proportions, seeded for reproducibility. Every observation appears in
// exactly one test fold.
func (d *Dataset) StratifiedKFold(k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k must be ≥ 2, got %d", k)
	}
	if k > d.Len() {
		return nil, fmt.Errorf("dataset: k=%d exceeds %d observations", k, d.Len())
	}
	rng := rand.New(rand.NewSource(seed))
	perClass := make(map[int][]int)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	labels := d.Classes()
	testSets := make([][]int, k)
	for _, y := range labels {
		idxs := perClass[y]
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for i, idx := range idxs {
			testSets[i%k] = append(testSets[i%k], idx)
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		test := testSets[f]
		sort.Ints(test)
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		train := make([]int, 0, d.Len()-len(test))
		for i := 0; i < d.Len(); i++ {
			if !inTest[i] {
				train = append(train, i)
			}
		}
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds, nil
}

// Sample returns a stratified random sample of approximately n
// observations (at least one per class), used to scale experiments down.
func (d *Dataset) Sample(n int, seed int64) *Dataset {
	if n >= d.Len() {
		return d
	}
	rng := rand.New(rand.NewSource(seed))
	frac := float64(n) / float64(d.Len())
	perClass := make(map[int][]int)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	var pick []int
	labels := d.Classes()
	for _, y := range labels {
		idxs := perClass[y]
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		take := int(math.Round(frac * float64(len(idxs))))
		if take < 1 {
			take = 1
		}
		if take > len(idxs) {
			take = len(idxs)
		}
		pick = append(pick, idxs[:take]...)
	}
	sort.Ints(pick)
	return d.Subset(pick, fmt.Sprintf("%s[n=%d]", d.Name, len(pick)))
}
