package dataset

import (
	"math"
	"testing"
)

func TestDriftStreamValidation(t *testing.T) {
	if _, err := DriftStream(DriftSpec{}); err == nil {
		t.Errorf("empty spec accepted")
	}
	if _, err := DriftStream(DriftSpec{Size: 10, Classes: 2, Features: 2, DriftDistance: -1}); err == nil {
		t.Errorf("negative drift accepted")
	}
}

// The defining property: class-conditional means move between the first
// and last stream segments.
func TestDriftStreamMeansMove(t *testing.T) {
	ds, err := DriftStream(DriftSpec{
		Name: "drift", Size: 8000, Classes: 2, Features: 3,
		DriftDistance: 0.4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	head := segmentClassMean(ds, 0, 2000, 0)
	tail := segmentClassMean(ds, 6000, 8000, 0)
	var moved float64
	for k := range head {
		d := head[k] - tail[k]
		moved += d * d
	}
	if math.Sqrt(moved) < 0.1 {
		t.Errorf("class mean moved only %v over the stream", math.Sqrt(moved))
	}
}

// Abrupt drift: the concept is stationary within each half but jumps at
// the midpoint.
func TestAbruptDrift(t *testing.T) {
	ds, err := DriftStream(DriftSpec{
		Name: "abrupt", Size: 8000, Classes: 2, Features: 3,
		DriftDistance: 0.4, Abrupt: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q1 := segmentClassMean(ds, 0, 2000, 0)
	q2 := segmentClassMean(ds, 2000, 4000, 0)
	q3 := segmentClassMean(ds, 4000, 6000, 0)
	within := dist(q1, q2)
	across := dist(q2, q3)
	if across < within*3 {
		t.Errorf("abrupt jump %v not much larger than within-half wobble %v", across, within)
	}
}

func segmentClassMean(ds *Dataset, lo, hi, label int) []float64 {
	mean := make([]float64, ds.Dim())
	n := 0
	for i := lo; i < hi; i++ {
		if ds.Y[i] != label {
			continue
		}
		for k, v := range ds.X[i] {
			mean[k] += v
		}
		n++
	}
	for k := range mean {
		mean[k] /= float64(n)
	}
	return mean
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestOneHot(t *testing.T) {
	rows := [][]int{{0, 2}, {1, 0}}
	out, err := OneHot(rows, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 0, 0, 0, 1}, {0, 1, 1, 0, 0}}
	for i := range want {
		for k := range want[i] {
			if out[i][k] != want[i][k] {
				t.Fatalf("OneHot[%d] = %v, want %v", i, out[i], want[i])
			}
		}
	}
	if _, err := OneHot(rows, []int{2}); err == nil {
		t.Errorf("column count mismatch accepted")
	}
	if _, err := OneHot([][]int{{5, 0}}, []int{2, 3}); err == nil {
		t.Errorf("out-of-range value accepted")
	}
	if _, err := OneHot(rows, []int{2, 1}); err == nil {
		t.Errorf("cardinality 1 accepted")
	}
	if _, err := OneHot(rows, nil); err == nil {
		t.Errorf("empty cardinalities accepted")
	}
}

func TestAppendOneHot(t *testing.T) {
	numeric := [][]float64{{0.5}, {0.7}}
	rows := [][]int{{1}, {0}}
	out, err := AppendOneHot(numeric, rows, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 3 || out[0][0] != 0.5 || out[0][2] != 1 {
		t.Fatalf("AppendOneHot = %v", out)
	}
	if _, err := AppendOneHot(numeric[:1], rows, []int{2}); err == nil {
		t.Errorf("row count mismatch accepted")
	}
}
