// Package eval implements the paper's evaluation protocol: anytime
// classification accuracy measured after every node read, averaged over
// stratified 4-fold cross validation (Section 3.2), plus confusion
// matrices, result tables and ASCII curve plots. The canned experiments in
// experiments.go regenerate Table 1 and Figures 2–4.
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
)

// CurveOptions parameterise one anytime-accuracy measurement.
type CurveOptions struct {
	// Folds is the cross-validation fold count (default 4, as in the
	// paper).
	Folds int
	// MaxNodes is the x-axis extent: accuracy is recorded after each of
	// 0..MaxNodes node reads (default 100, as in the figures).
	MaxNodes int
	// Seed fixes the fold assignment.
	Seed int64
	// Classifier are the descent/qbk options (zero value = glo descent,
	// probabilistic priority, default k — the paper's best setting).
	Classifier core.ClassifierOptions
	// Config overrides the tree configuration; nil means
	// core.DefaultConfig(dim).
	Config func(dim int) core.Config
	// Workers bounds classification parallelism (default GOMAXPROCS).
	Workers int
	// SoA publishes the structure-of-arrays mirror after building, so
	// classification descends through the flat vectorized layout instead
	// of the pointer tree (digit-identical scores, see internal/core).
	SoA bool
}

func (o *CurveOptions) defaults() {
	if o.Folds <= 0 {
		o.Folds = 4
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 100
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Curve is an anytime accuracy curve: Acc[t] is the fraction of test
// objects classified correctly with a budget of t node reads, averaged
// over all folds.
type Curve struct {
	Name      string
	Acc       []float64
	BuildTime time.Duration
	TestN     int
}

// Final returns the accuracy at the full budget.
func (c *Curve) Final() float64 { return c.Acc[len(c.Acc)-1] }

// At returns the accuracy after t node reads (clamped to the budget).
func (c *Curve) At(t int) float64 {
	if t < 0 {
		t = 0
	}
	if t >= len(c.Acc) {
		t = len(c.Acc) - 1
	}
	return c.Acc[t]
}

// Mean returns the average accuracy over the whole curve — a scalar
// summary of anytime quality (area under the anytime curve).
func (c *Curve) Mean() float64 {
	var s float64
	for _, a := range c.Acc {
		s += a
	}
	return s / float64(len(c.Acc))
}

// AnytimeCurve measures the anytime accuracy of the classifier obtained by
// bulk loading one Bayes tree per class with the given strategy —
// the measurement behind every curve in Figures 2–4.
func AnytimeCurve(ds *dataset.Dataset, loader bulkload.Loader, opts CurveOptions) (*Curve, error) {
	opts.defaults()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	folds, err := ds.StratifiedKFold(opts.Folds, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfgFn := opts.Config
	if cfgFn == nil {
		cfgFn = core.DefaultConfig
	}
	correct := make([]int64, opts.MaxNodes+1)
	total := 0
	var buildTime time.Duration
	for _, fold := range folds {
		train := ds.Subset(fold.Train, ds.Name+"-train")
		test := ds.Subset(fold.Test, ds.Name+"-test")
		start := time.Now()
		clf, err := TrainForest(train, loader, cfgFn, opts.Classifier)
		if err != nil {
			return nil, err
		}
		buildTime += time.Since(start)
		if opts.SoA {
			clf.RefreshSoA()
		}
		foldCorrect, err := traceCorrect(clf, test, opts.MaxNodes, opts.Workers)
		if err != nil {
			return nil, err
		}
		for t := range correct {
			correct[t] += foldCorrect[t]
		}
		total += test.Len()
	}
	acc := make([]float64, opts.MaxNodes+1)
	for t := range acc {
		acc[t] = float64(correct[t]) / float64(total)
	}
	return &Curve{Name: loader.Name(), Acc: acc, BuildTime: buildTime, TestN: total}, nil
}

// TrainForest bulk loads one Bayes tree per class and assembles the
// anytime classifier (the paper's per-class architecture, Section 2.2).
func TrainForest(train *dataset.Dataset, loader bulkload.Loader, cfgFn func(int) core.Config, copts core.ClassifierOptions) (*core.Classifier, error) {
	byClass := train.ByClass()
	labels := train.Classes()
	trees := make([]*core.Tree, len(labels))
	cfg := cfgFn(train.Dim())
	for i, y := range labels {
		pts := byClass[y]
		if len(pts) == 0 {
			return nil, fmt.Errorf("eval: class %d has no training data", y)
		}
		t, err := loader.Build(pts, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: building tree for class %d with %s: %w", y, loader.Name(), err)
		}
		trees[i] = t
	}
	return core.NewClassifier(labels, trees, copts)
}

// traceCorrect classifies every test object with a full trace and counts
// correct predictions per node budget. Classification is read-only, so
// test objects are processed in parallel.
func traceCorrect(clf *core.Classifier, test *dataset.Dataset, maxNodes, workers int) ([]int64, error) {
	if workers > test.Len() {
		workers = test.Len()
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		partials[w] = make([]int64, maxNodes+1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One trace buffer per worker: the pooled query path plus
			// ClassifyTraceInto keep the per-object cost allocation-free.
			var trace []int
			for i := w; i < test.Len(); i += workers {
				trace = clf.ClassifyTraceInto(test.X[i], maxNodes, trace)
				y := test.Y[i]
				for t, pred := range trace {
					if pred == y {
						partials[w][t]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	out := make([]int64, maxNodes+1)
	for _, p := range partials {
		for t, v := range p {
			out[t] += v
		}
	}
	return out, nil
}

// MultiCurve measures the anytime accuracy of the Section 4.1 single
// multi-class tree (built by incremental insertion) for comparison with
// the per-class forest.
func MultiCurve(ds *dataset.Dataset, mopts core.MultiOptions, opts CurveOptions) (*Curve, error) {
	opts.defaults()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	folds, err := ds.StratifiedKFold(opts.Folds, opts.Seed)
	if err != nil {
		return nil, err
	}
	cfgFn := opts.Config
	if cfgFn == nil {
		cfgFn = core.DefaultConfig
	}
	correct := make([]int64, opts.MaxNodes+1)
	total := 0
	var buildTime time.Duration
	for _, fold := range folds {
		train := ds.Subset(fold.Train, ds.Name+"-train")
		test := ds.Subset(fold.Test, ds.Name+"-test")
		start := time.Now()
		mt, err := core.NewMultiTree(cfgFn(train.Dim()), train.Classes(), mopts)
		if err != nil {
			return nil, err
		}
		for i := range train.X {
			if err := mt.Insert(train.X[i], train.Y[i]); err != nil {
				return nil, err
			}
		}
		buildTime += time.Since(start)
		if opts.SoA {
			mt.RefreshSoA()
		}
		workers := opts.Workers
		if workers > test.Len() {
			workers = test.Len()
		}
		partials := make([][]int64, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			partials[w] = make([]int64, opts.MaxNodes+1)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var trace []int
				for i := w; i < test.Len(); i += workers {
					var err error
					trace, err = mt.ClassifyTraceInto(test.X[i], opts.Classifier, opts.MaxNodes, trace)
					if err != nil {
						errs[w] = err
						return
					}
					for t, pred := range trace {
						if pred == test.Y[i] {
							partials[w][t]++
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, p := range partials {
			for t, v := range p {
				correct[t] += v
			}
		}
		total += test.Len()
	}
	acc := make([]float64, opts.MaxNodes+1)
	for t := range acc {
		acc[t] = float64(correct[t]) / float64(total)
	}
	return &Curve{Name: "multitree", Acc: acc, BuildTime: buildTime, TestN: total}, nil
}

// ConfusionMatrix counts test predictions at a fixed node budget: the
// entry [i][j] is the number of objects of the i-th label predicted as the
// j-th label (labels in ascending order).
func ConfusionMatrix(clf *core.Classifier, test *dataset.Dataset, budget int) ([][]int, []int) {
	labels := test.Classes()
	index := make(map[int]int, len(labels))
	for i, l := range labels {
		index[l] = i
	}
	m := make([][]int, len(labels))
	for i := range m {
		m[i] = make([]int, len(labels))
	}
	for i := range test.X {
		pred := clf.Classify(test.X[i], budget)
		pi, ok := index[pred]
		if !ok {
			// Prediction for a label absent from the test fold: count it
			// in the nearest existing slot to keep the matrix square.
			pi = sort.SearchInts(labels, pred)
			if pi >= len(labels) {
				pi = len(labels) - 1
			}
		}
		m[index[test.Y[i]]][pi]++
	}
	return m, labels
}

// Accuracy computes the fraction of correct predictions at a fixed budget.
func Accuracy(clf *core.Classifier, test *dataset.Dataset, budget int) float64 {
	correct := 0
	for i := range test.X {
		if clf.Classify(test.X[i], budget) == test.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(test.Len())
}
