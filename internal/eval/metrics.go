package eval

import (
	"fmt"
	"math"
)

// Metrics are aggregate classification quality measures derived from a
// confusion matrix, complementing the plain accuracy the paper plots:
// Cohen's kappa corrects for chance agreement (important on skewed data
// like covertype) and macro precision/recall/F1 weight classes equally
// (important on letter's 26 classes).
type Metrics struct {
	Accuracy       float64
	Kappa          float64
	MacroPrecision float64
	MacroRecall    float64
	MacroF1        float64
	PerClass       []ClassMetrics
}

// ClassMetrics are one class's precision/recall/F1 and support.
type ClassMetrics struct {
	Label     int
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// ComputeMetrics derives Metrics from a confusion matrix m (rows = true
// labels, columns = predictions, label order as given).
func ComputeMetrics(m [][]int, labels []int) (*Metrics, error) {
	k := len(labels)
	if len(m) != k {
		return nil, fmt.Errorf("eval: matrix has %d rows for %d labels", len(m), k)
	}
	var total, diag float64
	rowSum := make([]float64, k)
	colSum := make([]float64, k)
	for i := range m {
		if len(m[i]) != k {
			return nil, fmt.Errorf("eval: matrix row %d has %d columns, want %d", i, len(m[i]), k)
		}
		for j, v := range m[i] {
			if v < 0 {
				return nil, fmt.Errorf("eval: negative count at [%d][%d]", i, j)
			}
			total += float64(v)
			rowSum[i] += float64(v)
			colSum[j] += float64(v)
			if i == j {
				diag += float64(v)
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("eval: empty confusion matrix")
	}
	out := &Metrics{Accuracy: diag / total}

	// Cohen's kappa: (p_o − p_e) / (1 − p_e) with chance agreement p_e
	// from the marginals.
	var pe float64
	for i := 0; i < k; i++ {
		pe += (rowSum[i] / total) * (colSum[i] / total)
	}
	if pe < 1 {
		out.Kappa = (out.Accuracy - pe) / (1 - pe)
	} else {
		out.Kappa = 0
	}

	var sumP, sumR, sumF float64
	counted := 0
	for i := 0; i < k; i++ {
		tp := float64(m[i][i])
		var p, r float64
		if colSum[i] > 0 {
			p = tp / colSum[i]
		}
		if rowSum[i] > 0 {
			r = tp / rowSum[i]
		}
		var f float64
		if p+r > 0 {
			f = 2 * p * r / (p + r)
		}
		out.PerClass = append(out.PerClass, ClassMetrics{
			Label: labels[i], Precision: p, Recall: r, F1: f, Support: int(rowSum[i]),
		})
		if rowSum[i] > 0 { // macro-average over classes that occur
			sumP += p
			sumR += r
			sumF += f
			counted++
		}
	}
	if counted > 0 {
		out.MacroPrecision = sumP / float64(counted)
		out.MacroRecall = sumR / float64(counted)
		out.MacroF1 = sumF / float64(counted)
	}
	return out, nil
}

// CurveArea returns the normalised area between two anytime curves —
// positive when a dominates b — a single number for "who wins and by how
// much" across the whole budget range (used when summarising figure
// reproductions).
func CurveArea(a, b *Curve) (float64, error) {
	if len(a.Acc) != len(b.Acc) {
		return 0, fmt.Errorf("eval: curves have %d and %d points", len(a.Acc), len(b.Acc))
	}
	var s float64
	for i := range a.Acc {
		s += a.Acc[i] - b.Acc[i]
	}
	return s / float64(len(a.Acc)), nil
}

// Crossover returns the first budget at which curve a falls behind curve
// b after having been ahead, or -1 if no such crossover exists — the
// "where crossovers fall" question for figure comparisons.
func Crossover(a, b *Curve) int {
	if len(a.Acc) != len(b.Acc) {
		return -1
	}
	wasAhead := false
	for t := range a.Acc {
		diff := a.Acc[t] - b.Acc[t]
		if diff > 1e-12 {
			wasAhead = true
		}
		if wasAhead && diff < -1e-12 {
			return t
		}
	}
	return -1
}

// Oscillation quantifies the non-monotonicity of an anytime curve: the
// summed magnitude of accuracy *drops* between consecutive budgets. The
// paper observed oscillating glo curves on gender/covertype; this makes
// that observation measurable.
func Oscillation(c *Curve) float64 {
	var s float64
	for i := 1; i < len(c.Acc); i++ {
		if d := c.Acc[i-1] - c.Acc[i]; d > 0 {
			s += d
		}
	}
	return s
}

// MeanSquaredSlope measures curve smoothness (lower = smoother).
func MeanSquaredSlope(c *Curve) float64 {
	if len(c.Acc) < 2 {
		return 0
	}
	var s float64
	for i := 1; i < len(c.Acc); i++ {
		d := c.Acc[i] - c.Acc[i-1]
		s += d * d
	}
	return s / float64(len(c.Acc)-1)
}

// NormalizedAUC rescales the curve mean into [0,1] relative to the given
// floor (e.g. chance accuracy) — useful to compare anytime quality across
// data sets with different class counts.
func NormalizedAUC(c *Curve, chance float64) float64 {
	if chance >= 1 {
		return 0
	}
	v := (c.Mean() - chance) / (1 - chance)
	return math.Max(0, math.Min(1, v))
}
