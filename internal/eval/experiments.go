package eval

import (
	"fmt"
	"io"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
)

// Experiment is one table or figure of the paper's evaluation, with
// everything needed to regenerate it.
type Experiment struct {
	// ID is the paper artefact ("table1", "fig2", "fig3", "fig4a",
	// "fig4b").
	ID string
	// Title describes the artefact.
	Title string
	// Dataset names the Table 1 data set (empty for table1 itself).
	Dataset string
	// Scale shrinks the data set for tractable runs; 1 = paper size.
	Scale float64
	// Loaders are the bulk-loading strategies compared.
	Loaders []string
	// Strategies are the descent strategies plotted (fig4 compares glo
	// and bft).
	Strategies []core.Strategy
	// MaxNodes and Folds follow the paper (100 and 4).
	MaxNodes, Folds int
	// Expect summarises the paper's qualitative result, recorded in the
	// run output so EXPERIMENTS.md can quote both sides.
	Expect string
}

// Experiments returns all paper artefacts in order. The default scales
// keep full runs of the two large data sets tractable on a laptop; pass
// scale = 1 to Run for paper-size populations.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID: "table1", Title: "Table 1: data sets used in the experiments",
			Expect: "inventory only",
		},
		{
			ID: "fig2", Title: "Figure 2: anytime accuracy on pendigits per bulk loading",
			Dataset: "pendigits", Scale: 1,
			Loaders:    []string{"emtopdown", "hilbert", "goldberger", "iterative"},
			Strategies: []core.Strategy{core.DescentGlobal},
			MaxNodes:   100, Folds: 4,
			Expect: "EMTopDown best (≈ +3% over Iterativ), Hilbert ≥ Iterativ, Goldberger ≤ Iterativ early",
		},
		{
			ID: "fig3", Title: "Figure 3: anytime accuracy on letter per bulk loading",
			Dataset: "letter", Scale: 1,
			Loaders:    []string{"emtopdown", "hilbert", "goldberger", "iterative"},
			Strategies: []core.Strategy{core.DescentGlobal},
			MaxNodes:   100, Folds: 4,
			Expect: "EMTopDown best (up to +13%), Hilbert ≈ Iterativ, Goldberger ≥ Iterativ for large budgets",
		},
		{
			ID: "fig4a", Title: "Figure 4 (top): anytime accuracy on gender, glo vs bft",
			Dataset: "gender", Scale: 0.1,
			Loaders:    []string{"emtopdown", "hilbert", "iterative"},
			Strategies: []core.Strategy{core.DescentGlobal, core.DescentBFT},
			MaxNodes:   100, Folds: 4,
			Expect: "bulk loading beats Iterativ; glo ≥ bft but may oscillate",
		},
		{
			ID: "fig4b", Title: "Figure 4 (bottom): anytime accuracy on covertype, glo vs bft",
			Dataset: "covertype", Scale: 0.04,
			Loaders:    []string{"emtopdown", "hilbert", "iterative"},
			Strategies: []core.Strategy{core.DescentGlobal, core.DescentBFT},
			MaxNodes:   100, Folds: 4,
			Expect: "bulk loading beats Iterativ; glo ≥ bft but may oscillate",
		},
	}
}

// ExperimentByID returns the experiment with the given ID.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiment and writes its table/plot to w. scale
// overrides the experiment's default data set scale when > 0. It returns
// the measured curves (nil for table1).
func (e Experiment) Run(w io.Writer, scale float64, seed int64) ([]*Curve, error) {
	fmt.Fprintf(w, "== %s ==\n", e.Title)
	if e.ID == "table1" {
		fmt.Fprintf(w, "%-12s %10s %8s %9s %6s\n", "name", "size", "classes", "features", "ref")
		for _, row := range dataset.Table1() {
			fmt.Fprintf(w, "%-12s %10d %8d %9d %6s\n", row.Name, row.Size, row.Classes, row.Features, row.Ref)
		}
		return nil, nil
	}
	if scale <= 0 {
		scale = e.Scale
	}
	ds, err := dataset.ByName(e.Dataset, scale)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "dataset %s: %d observations, %d classes, %d features (scale %.3g)\n",
		ds.Name, ds.Len(), len(ds.Classes()), ds.Dim(), scale)
	fmt.Fprintf(w, "paper expectation: %s\n", e.Expect)

	var curves []*Curve
	for _, strat := range e.Strategies {
		for _, name := range e.Loaders {
			loader, ok := bulkload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("eval: unknown loader %q", name)
			}
			opts := CurveOptions{
				Folds:    e.Folds,
				MaxNodes: e.MaxNodes,
				Seed:     seed,
				Classifier: core.ClassifierOptions{
					Strategy: strat,
					Priority: core.PriorityProbabilistic,
				},
			}
			c, err := AnytimeCurve(ds, loader, opts)
			if err != nil {
				return nil, fmt.Errorf("eval: %s/%s: %w", name, strat, err)
			}
			if len(e.Strategies) > 1 {
				c.Name = fmt.Sprintf("%s %s", c.Name, strat)
			}
			curves = append(curves, c)
			fmt.Fprintf(w, "  %-18s final=%.4f mean=%.4f build=%s\n", c.Name, c.Final(), c.Mean(), c.BuildTime.Round(1e6))
		}
	}
	if err := PlotCurves(w, e.Title, curves); err != nil {
		return nil, err
	}
	CurveTable(w, curves, []int{0, 5, 10, 20, 50, 100})
	return curves, nil
}
