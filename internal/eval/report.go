package eval

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotCurves renders anytime accuracy curves as an ASCII chart, the
// terminal analogue of the paper's figures: x-axis nodes read, y-axis
// accuracy, one glyph per curve.
func PlotCurves(w io.Writer, title string, curves []*Curve) error {
	if len(curves) == 0 {
		return fmt.Errorf("eval: no curves to plot")
	}
	const height = 20
	width := len(curves[0].Acc)
	for _, c := range curves {
		if len(c.Acc) != width {
			return fmt.Errorf("eval: curve %s has %d points, want %d", c.Name, len(c.Acc), width)
		}
	}
	// Plot at most ~100 columns, subsampling longer curves.
	cols := width
	step := 1
	for cols > 110 {
		step *= 2
		cols = (width + step - 1) / step
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		for _, a := range c.Acc {
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
	}
	if hi-lo < 1e-9 {
		hi = lo + 1e-9
	}
	pad := 0.05 * (hi - lo)
	lo -= pad
	hi += pad
	glyphs := []byte{'E', 'H', 'G', 'I', 'Z', 'S', 'V', 'M', '*', '+'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for ci, c := range curves {
		g := glyphs[ci%len(glyphs)]
		for col := 0; col < cols; col++ {
			t := col * step
			if t >= width {
				t = width - 1
			}
			row := int((hi - c.Acc[t]) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for r := 0; r < height; r++ {
		y := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%6.3f |%s\n", y, string(grid[r]))
	}
	fmt.Fprintf(w, "       +%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(w, "        0%snodes=%d\n", strings.Repeat(" ", maxInt(1, cols-12)), width-1)
	legend := make([]string, len(curves))
	for i, c := range curves {
		legend[i] = fmt.Sprintf("%c=%s(final %.3f, mean %.3f)", glyphs[i%len(glyphs)], c.Name, c.Final(), c.Mean())
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(legend, "  "))
	return nil
}

// CurveTable prints accuracy at selected budgets for each curve, the
// numeric companion to the plot.
func CurveTable(w io.Writer, curves []*Curve, budgets []int) {
	fmt.Fprintf(w, "%-12s", "loader")
	for _, b := range budgets {
		fmt.Fprintf(w, "  acc@%-4d", b)
	}
	fmt.Fprintf(w, "  %-8s  %s\n", "mean", "build")
	for _, c := range curves {
		fmt.Fprintf(w, "%-12s", c.Name)
		for _, b := range budgets {
			fmt.Fprintf(w, "  %-8.4f", c.At(b))
		}
		fmt.Fprintf(w, "  %-8.4f  %s\n", c.Mean(), c.BuildTime.Round(1e6))
	}
}

// PrintConfusion renders a confusion matrix with its labels.
func PrintConfusion(w io.Writer, m [][]int, labels []int) {
	fmt.Fprintf(w, "%6s", "t\\p")
	for _, l := range labels {
		fmt.Fprintf(w, "%6d", l)
	}
	fmt.Fprintln(w)
	for i, row := range m {
		fmt.Fprintf(w, "%6d", labels[i])
		for _, v := range row {
			fmt.Fprintf(w, "%6d", v)
		}
		fmt.Fprintln(w)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
