package eval

import (
	"bytes"
	"strings"
	"testing"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
)

func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Synthetic(dataset.SyntheticSpec{
		Name: "tiny", Size: 600, Classes: 3, Features: 4,
		ModesPerClass: 3, Spread: 0.08, Overlap: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAnytimeCurveBasics(t *testing.T) {
	ds := tinyDataset(t)
	loader, _ := bulkload.ByName("hilbert")
	c, err := AnytimeCurve(ds, loader, CurveOptions{Folds: 3, MaxNodes: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Acc) != 31 {
		t.Fatalf("curve length %d", len(c.Acc))
	}
	for i, a := range c.Acc {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy[%d] = %v out of range", i, a)
		}
	}
	// Every test object of every fold is counted exactly once.
	if c.TestN != ds.Len() {
		t.Errorf("TestN = %d, want %d", c.TestN, ds.Len())
	}
	// Anytime behaviour: accuracy at the full budget must not be worse
	// than the level-0 model by a large margin (on this easy data it
	// should be clearly better).
	if c.Final() < c.At(0) {
		t.Errorf("refinement hurt: %v → %v", c.At(0), c.Final())
	}
	if c.Mean() <= 0 {
		t.Errorf("Mean = %v", c.Mean())
	}
	if c.At(-5) != c.At(0) || c.At(10000) != c.Final() {
		t.Errorf("At clamping broken")
	}
}

func TestAnytimeCurveDeterministic(t *testing.T) {
	ds := tinyDataset(t)
	loader, _ := bulkload.ByName("zcurve")
	opts := CurveOptions{Folds: 2, MaxNodes: 15, Seed: 9}
	a, err := AnytimeCurve(ds, loader, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnytimeCurve(ds, loader, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Acc {
		if a.Acc[i] != b.Acc[i] {
			t.Fatalf("nondeterministic curve at %d", i)
		}
	}
}

func TestTrainForestCoversClasses(t *testing.T) {
	ds := tinyDataset(t)
	loader, _ := bulkload.ByName("str")
	clf, err := TrainForest(ds, loader, core.DefaultConfig, core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clf.NumClasses() != 3 {
		t.Fatalf("classes = %d", clf.NumClasses())
	}
	for _, y := range clf.Labels() {
		if clf.Tree(y) == nil || clf.Tree(y).Len() == 0 {
			t.Fatalf("class %d tree missing", y)
		}
	}
}

func TestAccuracyAndConfusion(t *testing.T) {
	ds := tinyDataset(t)
	loader, _ := bulkload.ByName("emtopdown")
	folds, err := ds.StratifiedKFold(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	train := ds.Subset(folds[0].Train, "train")
	test := ds.Subset(folds[0].Test, "test")
	clf, err := TrainForest(train, loader, core.DefaultConfig, core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(clf, test, 20)
	m, labels := ConfusionMatrix(clf, test, 20)
	if len(labels) != 3 || len(m) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m), len(labels))
	}
	total, diag := 0, 0
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
			if i == j {
				diag += m[i][j]
			}
		}
	}
	if total != test.Len() {
		t.Errorf("matrix total %d, want %d", total, test.Len())
	}
	if got := float64(diag) / float64(total); got != acc {
		t.Errorf("diagonal accuracy %v != Accuracy %v", got, acc)
	}
}

func TestMultiCurve(t *testing.T) {
	ds := tinyDataset(t)
	c, err := MultiCurve(ds, core.MultiOptions{}, CurveOptions{Folds: 2, MaxNodes: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Acc) != 16 {
		t.Fatalf("curve length %d", len(c.Acc))
	}
	if c.Final() < 0.5 {
		t.Errorf("multi-tree final accuracy %v too low", c.Final())
	}
}

func TestPlotAndTableRender(t *testing.T) {
	ds := tinyDataset(t)
	loader, _ := bulkload.ByName("hilbert")
	c, err := AnytimeCurve(ds, loader, CurveOptions{Folds: 2, MaxNodes: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PlotCurves(&buf, "test plot", []*Curve{c}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test plot") || !strings.Contains(out, "hilbert") {
		t.Errorf("plot missing title/legend:\n%s", out)
	}
	buf.Reset()
	CurveTable(&buf, []*Curve{c}, []int{0, 10, 20})
	if !strings.Contains(buf.String(), "acc@10") {
		t.Errorf("table missing budget column")
	}
	if err := PlotCurves(&buf, "empty", nil); err == nil {
		t.Errorf("empty plot accepted")
	}
	// Mismatched curve lengths rejected.
	short := &Curve{Name: "short", Acc: []float64{1}}
	if err := PlotCurves(&buf, "bad", []*Curve{c, short}); err == nil {
		t.Errorf("mismatched curves accepted")
	}
	buf.Reset()
	m, labels := [][]int{{5, 1}, {0, 4}}, []int{0, 1}
	PrintConfusion(&buf, m, labels)
	if !strings.Contains(buf.String(), "5") {
		t.Errorf("confusion print empty")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 5 {
		t.Fatalf("%d experiments, want 5 (table1 + 4 figure panels)", len(exps))
	}
	for _, id := range []string{"table1", "fig2", "fig3", "fig4a", "fig4b"} {
		if _, ok := ExperimentByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, ok := ExperimentByID("fig9"); ok {
		t.Errorf("phantom experiment found")
	}
}

func TestTable1Experiment(t *testing.T) {
	e, _ := ExperimentByID("table1")
	var buf bytes.Buffer
	curves, err := e.Run(&buf, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if curves != nil {
		t.Errorf("table1 returned curves")
	}
	out := buf.String()
	for _, name := range []string{"Pendigits", "Letter", "Gender", "Covertype", "581012"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 output missing %q", name)
		}
	}
}

// A miniature figure run: exercises the full experiment path end to end
// at a tiny scale.
func TestFigureExperimentSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure experiment in -short mode")
	}
	e, _ := ExperimentByID("fig2")
	e.MaxNodes = 20
	e.Folds = 2
	e.Loaders = []string{"hilbert", "iterative"}
	var buf bytes.Buffer
	curves, err := e.Run(&buf, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("%d curves", len(curves))
	}
	if !strings.Contains(buf.String(), "paper expectation") {
		t.Errorf("run output missing expectation line")
	}
}
