package eval

import (
	"math"
	"testing"
)

func TestComputeMetricsPerfect(t *testing.T) {
	m := [][]int{{10, 0}, {0, 20}}
	got, err := ComputeMetrics(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Accuracy != 1 || got.Kappa != 1 || got.MacroF1 != 1 {
		t.Errorf("perfect matrix: %+v", got)
	}
}

func TestComputeMetricsKnownValues(t *testing.T) {
	// Classic worked example: acc = 0.7, marginals give pe = 0.5,
	// kappa = 0.4.
	m := [][]int{{25, 25}, {5, 45}}
	got, err := ComputeMetrics(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Accuracy-0.7) > 1e-12 {
		t.Errorf("accuracy %v", got.Accuracy)
	}
	// pe = (50/100)(30/100) + (50/100)(70/100) = 0.15 + 0.35 = 0.5
	if math.Abs(got.Kappa-0.4) > 1e-12 {
		t.Errorf("kappa %v, want 0.4", got.Kappa)
	}
	// Class 0: precision 25/30, recall 25/50.
	c0 := got.PerClass[0]
	if math.Abs(c0.Precision-25.0/30) > 1e-12 || math.Abs(c0.Recall-0.5) > 1e-12 {
		t.Errorf("class 0 metrics %+v", c0)
	}
	if c0.Support != 50 {
		t.Errorf("support %d", c0.Support)
	}
}

func TestComputeMetricsChanceLevel(t *testing.T) {
	// Predictions independent of truth → kappa ≈ 0.
	m := [][]int{{25, 25}, {25, 25}}
	got, err := ComputeMetrics(m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Kappa) > 1e-12 {
		t.Errorf("chance kappa %v", got.Kappa)
	}
}

func TestComputeMetricsValidation(t *testing.T) {
	if _, err := ComputeMetrics([][]int{{1}}, []int{0, 1}); err == nil {
		t.Errorf("row mismatch accepted")
	}
	if _, err := ComputeMetrics([][]int{{1, 2}, {3}}, []int{0, 1}); err == nil {
		t.Errorf("ragged matrix accepted")
	}
	if _, err := ComputeMetrics([][]int{{0, 0}, {0, 0}}, []int{0, 1}); err == nil {
		t.Errorf("empty matrix accepted")
	}
	if _, err := ComputeMetrics([][]int{{-1, 0}, {0, 1}}, []int{0, 1}); err == nil {
		t.Errorf("negative count accepted")
	}
}

func TestCurveComparators(t *testing.T) {
	a := &Curve{Name: "a", Acc: []float64{0.5, 0.7, 0.9, 0.8}}
	b := &Curve{Name: "b", Acc: []float64{0.5, 0.6, 0.7, 0.9}}
	area, err := CurveArea(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.0 + 0.1 + 0.2 - 0.1) / 4
	if math.Abs(area-want) > 1e-12 {
		t.Errorf("area %v, want %v", area, want)
	}
	if got := Crossover(a, b); got != 3 {
		t.Errorf("crossover at %d, want 3", got)
	}
	if got := Crossover(b, a); got != -1 {
		// b is never ahead before falling behind at t=1? b ahead never → -1.
		t.Errorf("reverse crossover %d, want -1", got)
	}
	if _, err := CurveArea(a, &Curve{Acc: []float64{1}}); err == nil {
		t.Errorf("length mismatch accepted")
	}
}

func TestOscillationAndSmoothness(t *testing.T) {
	smooth := &Curve{Acc: []float64{0.5, 0.6, 0.7, 0.8}}
	rough := &Curve{Acc: []float64{0.5, 0.8, 0.6, 0.9}}
	if Oscillation(smooth) != 0 {
		t.Errorf("monotone curve oscillates")
	}
	if got := Oscillation(rough); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("oscillation %v, want 0.2", got)
	}
	if MeanSquaredSlope(rough) <= MeanSquaredSlope(smooth) {
		t.Errorf("smoothness ordering wrong")
	}
	if MeanSquaredSlope(&Curve{Acc: []float64{1}}) != 0 {
		t.Errorf("single-point slope nonzero")
	}
}

func TestNormalizedAUC(t *testing.T) {
	c := &Curve{Acc: []float64{0.55, 0.55, 0.55, 0.55}}
	if got := NormalizedAUC(c, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("normalised AUC %v, want 0.5", got)
	}
	if NormalizedAUC(c, 1) != 0 {
		t.Errorf("degenerate chance should give 0")
	}
	if NormalizedAUC(&Curve{Acc: []float64{0.05}}, 0.1) != 0 {
		t.Errorf("below-chance should clamp to 0")
	}
}
