// Package serve is the shared lifecycle runner of the serving
// commands: it owns the boilerplate that serveclass and servecluster
// previously each carried a copy of — start the HTTP server, run WAL
// recovery in the background while /healthz reports 503, wait for
// SIGTERM/SIGINT, drain gracefully (fail health checks, let in-flight
// requests finish, stop maintenance) and persist the model on the way
// out.
package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// App describes one serving process. Only Addr and Handler are
// required; nil hooks are skipped.
type App struct {
	// Name prefixes log lines and error messages (the command name).
	Name string
	// Addr is the HTTP listen address.
	Addr string
	// Handler serves the workload's endpoints.
	Handler http.Handler
	// DrainTimeout bounds the graceful drain on SIGTERM/SIGINT.
	DrainTimeout time.Duration
	// Recover, when set, runs after the listener starts — WAL replay
	// happens while /healthz already answers (503), so load balancers
	// see the instance come up without routing traffic to it early. A
	// recovery error shuts the process down.
	Recover func() error
	// SetDraining flips the workload's draining state so health checks
	// fail before in-flight requests are cut off.
	SetDraining func(bool)
	// Close stops background maintenance once the listener has drained.
	Close func()
	// Persist writes the model back out after the drain — the final
	// checkpoint (WAL truncation) and/or the legacy snapshot file.
	Persist func() error
}

// Run drives the app's lifecycle and returns when the process should
// exit: nil after a clean signal-triggered drain, an error when the
// listener, recovery, or the final persist failed.
func Run(a App) error {
	httpSrv := &http.Server{Addr: a.Addr, Handler: a.Handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	recc := make(chan error, 1)
	recovered := a.Recover == nil
	if !recovered {
		go func() { recc <- a.Recover() }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	draining := false
	for !draining {
		select {
		case err := <-errc:
			return fmt.Errorf("%s: %w", a.Name, err)
		case err := <-recc:
			if err != nil {
				return fmt.Errorf("%s: recovery: %w", a.Name, err)
			}
			recovered = true
		case sig := <-sigc:
			log.Printf("received %v: draining (timeout %v)", sig, a.DrainTimeout)
			draining = true
		}
	}

	// Graceful drain: fail health checks first so load balancers stop
	// routing here, then let in-flight requests finish, stop background
	// maintenance, then persist.
	if a.SetDraining != nil {
		a.SetDraining(true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.DrainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("%s: drain: %v", a.Name, err)
	}
	// A signal that landed mid-recovery waits for replay to settle —
	// persisting a half-replayed model would lose the unreplayed tail's
	// WAL coverage on the next checkpoint.
	if !recovered {
		if err := <-recc; err != nil {
			return fmt.Errorf("%s: recovery: %w", a.Name, err)
		}
	}
	if a.Close != nil {
		a.Close()
	}
	if a.Persist != nil {
		if err := a.Persist(); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return nil
}
