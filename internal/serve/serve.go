// Package serve is the shared lifecycle runner of the serving
// commands: it owns the boilerplate that serveclass and servecluster
// previously each carried a copy of — start the HTTP server(s), run
// WAL recovery in the background while /readyz reports 503, wait for
// SIGTERM/SIGINT, drain gracefully (fail readiness, let in-flight
// requests finish, stop maintenance) and persist the model on the way
// out. It also owns the promote triggers of a replica: SIGHUP and the
// promote-file poller both invoke the app's Promote hook in place, so
// a follower can be flipped to primary without restarting.
package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// promoteFilePoll is how often the promote-file path is checked.
const promoteFilePoll = 300 * time.Millisecond

// App describes one serving process. Only Addr and Handler are
// required; nil hooks are skipped.
type App struct {
	// Name prefixes log lines and error messages (the command name).
	Name string
	// Addr is the HTTP listen address.
	Addr string
	// Handler serves the workload's endpoints.
	Handler http.Handler
	// DrainTimeout bounds the graceful drain on SIGTERM/SIGINT.
	DrainTimeout time.Duration
	// Recover, when set, runs after the listener starts — WAL replay
	// happens while /healthz already answers and /readyz reports 503,
	// so load balancers see the instance come up without routing
	// traffic to it early. A recovery error shuts the process down.
	Recover func() error
	// SetDraining flips the workload's draining state so readiness
	// checks fail before in-flight requests are cut off.
	SetDraining func(bool)
	// Close stops background maintenance once the listener has drained.
	Close func()
	// Persist writes the model back out after the drain — the final
	// checkpoint (WAL truncation) and/or the legacy snapshot file.
	Persist func() error
	// Promote, when set, is invoked on SIGHUP or when PromoteFile
	// appears — the replica-to-primary flip. Errors are logged, not
	// fatal: a failed promote leaves the process serving as before.
	Promote func() error
	// PromoteFile, when non-empty, is polled for existence; when the
	// file appears it is removed and Promote is invoked. This is the
	// trigger for environments where delivering SIGHUP is awkward.
	PromoteFile string
	// ReplicateAddr, when non-empty, serves ReplicateHandler on a
	// second listener — the replication stream on its own port, so
	// follower traffic does not share the public one.
	ReplicateAddr string
	// ReplicateHandler is the handler for ReplicateAddr.
	ReplicateHandler http.Handler
}

// newHTTPServer builds a hardened http.Server: header-read and idle
// timeouts plus a header-size cap, so a slowloris client or an idle
// connection pile-up cannot exhaust the listener. No overall write
// timeout — the NDJSON streaming endpoints and /replicate are
// legitimately unbounded.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// Run drives the app's lifecycle and returns when the process should
// exit: nil after a clean signal-triggered drain, an error when a
// listener, recovery, or the final persist failed.
func Run(a App) error {
	httpSrv := newHTTPServer(a.Addr, a.Handler)
	errc := make(chan error, 2)
	go func() { errc <- fmt.Errorf("%s: %w", a.Name, listenAndServe(httpSrv)) }()

	var replSrv *http.Server
	if a.ReplicateAddr != "" && a.ReplicateHandler != nil {
		replSrv = newHTTPServer(a.ReplicateAddr, a.ReplicateHandler)
		go func() { errc <- fmt.Errorf("%s: replicate listener: %w", a.Name, listenAndServe(replSrv)) }()
	}

	recc := make(chan error, 1)
	recovered := a.Recover == nil
	if !recovered {
		go func() { recc <- a.Recover() }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	// SIGHUP promotes — but only when a Promote hook exists: without
	// the handler registered, SIGHUP keeps its default disposition
	// (terminate), which is what a non-replica process should do.
	promc := make(chan struct{}, 1)
	if a.Promote != nil {
		hupc := make(chan os.Signal, 1)
		signal.Notify(hupc, syscall.SIGHUP)
		defer signal.Stop(hupc)
		go func() {
			for range hupc {
				select {
				case promc <- struct{}{}:
				default:
				}
			}
		}()
		if a.PromoteFile != "" {
			stopPoll := make(chan struct{})
			defer close(stopPoll)
			go pollPromoteFile(a.PromoteFile, promc, stopPoll)
		}
	}

	draining := false
	for !draining {
		select {
		case err := <-errc:
			return err
		case err := <-recc:
			if err != nil {
				return fmt.Errorf("%s: recovery: %w", a.Name, err)
			}
			recovered = true
		case <-promc:
			log.Printf("%s: promote requested", a.Name)
			if err := a.Promote(); err != nil {
				log.Printf("%s: promote: %v", a.Name, err)
			} else {
				log.Printf("%s: promoted to primary", a.Name)
			}
		case sig := <-sigc:
			log.Printf("received %v: draining (timeout %v)", sig, a.DrainTimeout)
			draining = true
		}
	}

	// Graceful drain: fail readiness checks first so load balancers
	// stop routing here, then let in-flight requests finish, stop
	// background maintenance, then persist.
	if a.SetDraining != nil {
		a.SetDraining(true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.DrainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("%s: drain: %v", a.Name, err)
	}
	if replSrv != nil {
		// Replication streams never finish on their own; Close cuts them
		// and the followers reconnect elsewhere.
		replSrv.Close()
	}
	// A signal that landed mid-recovery waits for replay to settle —
	// persisting a half-replayed model would lose the unreplayed tail's
	// WAL coverage on the next checkpoint.
	if !recovered {
		if err := <-recc; err != nil {
			return fmt.Errorf("%s: recovery: %w", a.Name, err)
		}
	}
	if a.Close != nil {
		a.Close()
	}
	if a.Persist != nil {
		if err := a.Persist(); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return nil
}

// listenAndServe runs a server to completion, mapping the nil a closed
// server returns into an error the select loop can report.
func listenAndServe(s *http.Server) error {
	err := s.ListenAndServe()
	if err == nil {
		err = fmt.Errorf("listener closed")
	}
	return err
}

// pollPromoteFile watches for path to appear; when it does, the file is
// removed (so the trigger is one-shot) and a promote is requested.
func pollPromoteFile(path string, promc chan<- struct{}, stop <-chan struct{}) {
	tick := time.NewTicker(promoteFilePoll)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			if _, err := os.Stat(path); err != nil {
				continue
			}
			os.Remove(path)
			select {
			case promc <- struct{}{}:
			default:
			}
		}
	}
}
