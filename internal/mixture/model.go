// Package mixture implements Gaussian mixture models with diagonal
// covariances and the two statistical model-reduction algorithms the paper
// adapts for bulk loading (Section 3.1): the Goldberger/Roweis hierarchical
// clustering of a mixture model [10] and the Vasconcelos/Lippman virtual
// sampling approach [21].
package mixture

import (
	"fmt"
	"math"
	"math/rand"

	"bayestree/internal/stats"
)

// Model is a finite mixture Σ w_j · N(μ_j, σ_j²) with diagonal Gaussian
// components. Weights are kept normalised (summing to one) by the
// constructors; Normalize restores the invariant after manual edits.
type Model struct {
	Weights []float64
	Comps   []stats.Gaussian
}

// New builds a model from weights and components, normalising the weights.
// It returns an error on dimension mismatches or non-positive total weight.
func New(weights []float64, comps []stats.Gaussian) (*Model, error) {
	if len(weights) != len(comps) {
		return nil, fmt.Errorf("mixture: %d weights for %d components", len(weights), len(comps))
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("mixture: empty model")
	}
	d := comps[0].Dim()
	for i, c := range comps {
		if c.Dim() != d {
			return nil, fmt.Errorf("mixture: component %d has dim %d, want %d", i, c.Dim(), d)
		}
	}
	m := &Model{Weights: append([]float64(nil), weights...), Comps: append([]stats.Gaussian(nil), comps...)}
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// Dim returns the dimensionality of the mixture.
func (m *Model) Dim() int {
	if len(m.Comps) == 0 {
		return 0
	}
	return m.Comps[0].Dim()
}

// Len returns the number of components.
func (m *Model) Len() int { return len(m.Comps) }

// Normalize rescales the weights to sum to one.
func (m *Model) Normalize() error {
	var s float64
	for _, w := range m.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("mixture: invalid weight %v", w)
		}
		s += w
	}
	if s <= 0 {
		return fmt.Errorf("mixture: weights sum to %v", s)
	}
	for i := range m.Weights {
		m.Weights[i] /= s
	}
	return nil
}

// LogPDF returns the log mixture density at x, computed stably.
func (m *Model) LogPDF(x []float64) float64 {
	logs := make([]float64, 0, len(m.Comps))
	for i, c := range m.Comps {
		if m.Weights[i] <= 0 {
			continue
		}
		logs = append(logs, math.Log(m.Weights[i])+c.LogPDF(x))
	}
	return stats.LogSumExp(logs)
}

// PDF returns the mixture density at x.
func (m *Model) PDF(x []float64) float64 { return math.Exp(m.LogPDF(x)) }

// Sample draws n points from the mixture using the given source.
func (m *Model) Sample(n int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	d := m.Dim()
	for i := 0; i < n; i++ {
		j := sampleIndex(m.Weights, rng)
		c := m.Comps[j]
		x := make([]float64, d)
		for k := 0; k < d; k++ {
			x[k] = c.Mean[k] + rng.NormFloat64()*math.Sqrt(c.Var[k])
		}
		out[i] = x
	}
	return out
}

func sampleIndex(weights []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for i, w := range weights {
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}

// Distance is the mixture distance of Definition 4:
//
//	d(f, g) = Σ_i α_i · min_j KL(f_i, g_j)
//
// measuring how well the coarser model g approximates the finer model f.
func Distance(f, g *Model) float64 {
	var d float64
	for i, fc := range f.Comps {
		best := math.Inf(1)
		for _, gc := range g.Comps {
			if kl := stats.KL(fc, gc); kl < best {
				best = kl
			}
		}
		d += f.Weights[i] * best
	}
	return d
}

// FromCFs builds a mixture whose components are the Gaussians of the given
// cluster features, weighted by their counts — the "model at one tree
// level" view used throughout the paper.
func FromCFs(cfs []stats.CF) (*Model, error) {
	if len(cfs) == 0 {
		return nil, fmt.Errorf("mixture: no cluster features")
	}
	weights := make([]float64, len(cfs))
	comps := make([]stats.Gaussian, len(cfs))
	for i := range cfs {
		weights[i] = cfs[i].N
		comps[i] = cfs[i].Gaussian()
	}
	return New(weights, comps)
}
