package mixture

import (
	"math"
	"math/rand"
	"testing"

	"bayestree/internal/stats"
)

func twoComponent(t *testing.T) *Model {
	t.Helper()
	m, err := New(
		[]float64{0.3, 0.7},
		[]stats.Gaussian{
			{Mean: []float64{0, 0}, Var: []float64{1, 1}},
			{Mean: []float64{5, 5}, Var: []float64{2, 0.5}},
		})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	g := stats.Gaussian{Mean: []float64{0}, Var: []float64{1}}
	if _, err := New([]float64{1, 1}, []stats.Gaussian{g}); err == nil {
		t.Errorf("weight/component mismatch accepted")
	}
	if _, err := New(nil, nil); err == nil {
		t.Errorf("empty model accepted")
	}
	if _, err := New([]float64{-1}, []stats.Gaussian{g}); err == nil {
		t.Errorf("negative weight accepted")
	}
	g2 := stats.Gaussian{Mean: []float64{0, 0}, Var: []float64{1, 1}}
	if _, err := New([]float64{1, 1}, []stats.Gaussian{g, g2}); err == nil {
		t.Errorf("mixed dimensions accepted")
	}
	m, err := New([]float64{2, 6}, []stats.Gaussian{g, g})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-0.25) > 1e-12 {
		t.Errorf("weights not normalised: %v", m.Weights)
	}
}

func TestPDFMatchesManualSum(t *testing.T) {
	m := twoComponent(t)
	x := []float64{1, 2}
	want := 0.3*m.Comps[0].PDF(x) + 0.7*m.Comps[1].PDF(x)
	if got := m.PDF(x); math.Abs(got-want) > 1e-12*want {
		t.Errorf("PDF = %v, want %v", got, want)
	}
}

func TestSampleMoments(t *testing.T) {
	m := twoComponent(t)
	rng := rand.New(rand.NewSource(1))
	xs := m.Sample(20000, rng)
	cf := stats.CFOfAll(xs, 2)
	mean := cf.Mean()
	// E[x] = 0.3·0 + 0.7·5 = 3.5 per dimension.
	if math.Abs(mean[0]-3.5) > 0.1 || math.Abs(mean[1]-3.5) > 0.1 {
		t.Errorf("sample mean = %v, want ≈ (3.5, 3.5)", mean)
	}
}

func TestDistanceProperties(t *testing.T) {
	m := twoComponent(t)
	if d := Distance(m, m); math.Abs(d) > 1e-9 {
		t.Errorf("d(f,f) = %v, want 0", d)
	}
	// Distance to a worse model is positive.
	coarse, err := New([]float64{1}, []stats.Gaussian{{Mean: []float64{2.5, 2.5}, Var: []float64{5, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if d := Distance(m, coarse); d <= 0 {
		t.Errorf("d(f,coarse) = %v, want > 0", d)
	}
}

func TestFromCFs(t *testing.T) {
	cfA := stats.CFOfAll([][]float64{{0}, {2}}, 1)
	cfB := stats.CFOfAll([][]float64{{10}, {12}, {14}}, 1)
	m, err := FromCFs([]stats.CF{cfA, cfB})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-0.4) > 1e-12 || math.Abs(m.Weights[1]-0.6) > 1e-12 {
		t.Errorf("weights = %v, want (0.4, 0.6)", m.Weights)
	}
	if m.Comps[1].Mean[0] != 12 {
		t.Errorf("mean = %v", m.Comps[1].Mean)
	}
	if _, err := FromCFs(nil); err == nil {
		t.Errorf("empty CFs accepted")
	}
}

// buildFine builds a fine mixture of k well-separated groups of small
// components; reduction to k components should land near group centres.
func buildFine(t *testing.T, groups, perGroup int, seed int64) (*Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var weights []float64
	var comps []stats.Gaussian
	var centers [][]float64
	for g := 0; g < groups; g++ {
		cx, cy := float64(g*10), float64((g%2)*10)
		centers = append(centers, []float64{cx, cy})
		for i := 0; i < perGroup; i++ {
			comps = append(comps, stats.Gaussian{
				Mean: []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3},
				Var:  []float64{0.1, 0.1},
			})
			weights = append(weights, 1)
		}
	}
	m, err := New(weights, comps)
	if err != nil {
		t.Fatal(err)
	}
	return m, centers
}

func TestReduceBasics(t *testing.T) {
	fine, centers := buildFine(t, 3, 20, 1)
	res, err := Reduce(fine, 3, ReduceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Len() != 3 {
		t.Fatalf("reduced to %d components, want 3", res.Model.Len())
	}
	if len(res.Pi) != fine.Len() {
		t.Fatalf("pi length %d", len(res.Pi))
	}
	// Every coarse component sits near one true centre.
	for _, c := range res.Model.Comps {
		best := math.Inf(1)
		for _, ctr := range centers {
			d := math.Hypot(c.Mean[0]-ctr[0], c.Mean[1]-ctr[1])
			best = math.Min(best, d)
		}
		if best > 1.5 {
			t.Errorf("coarse component at %v far from all centres", c.Mean)
		}
	}
	// Weights normalised.
	var sum float64
	for _, w := range res.Model.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum %v", sum)
	}
}

func TestReducePiConsistent(t *testing.T) {
	fine, _ := buildFine(t, 4, 10, 2)
	res, err := Reduce(fine, 4, ReduceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Pi {
		if j < 0 || j >= res.Model.Len() {
			t.Fatalf("pi[%d] = %d out of range", i, j)
		}
	}
	// Components of one tight group map to the same coarse component.
	for g := 0; g < 4; g++ {
		first := res.Pi[g*10]
		for i := 1; i < 10; i++ {
			if res.Pi[g*10+i] != first {
				t.Fatalf("group %d split across coarse components", g)
			}
		}
	}
}

func TestReduceDistanceImproves(t *testing.T) {
	fine, _ := buildFine(t, 5, 12, 3)
	// One iteration vs several: more iterations must not be worse.
	r1, err := Reduce(fine, 5, ReduceOptions{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Reduce(fine, 5, ReduceOptions{MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r10.Distance > r1.Distance+1e-9 {
		t.Errorf("more iterations worsened distance: %v → %v", r1.Distance, r10.Distance)
	}
}

func TestReduceNoOpWhenTargetLarge(t *testing.T) {
	fine, _ := buildFine(t, 2, 5, 4)
	res, err := Reduce(fine, 100, ReduceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Len() != fine.Len() {
		t.Fatalf("expected identity reduction, got %d", res.Model.Len())
	}
	if res.Distance != 0 {
		t.Fatalf("identity distance = %v", res.Distance)
	}
	if _, err := Reduce(fine, 0, ReduceOptions{}); err == nil {
		t.Errorf("s=0 accepted")
	}
}

func TestMergeGaussiansMoments(t *testing.T) {
	a := stats.Gaussian{Mean: []float64{0}, Var: []float64{1}}
	b := stats.Gaussian{Mean: []float64{4}, Var: []float64{1}}
	w, g := MergeGaussians(1, a, 1, b)
	if w != 2 {
		t.Fatalf("merged weight %v", w)
	}
	if math.Abs(g.Mean[0]-2) > 1e-12 {
		t.Errorf("merged mean %v, want 2", g.Mean[0])
	}
	// Var = E[var] + Var[means] = 1 + 4.
	if math.Abs(g.Var[0]-5) > 1e-12 {
		t.Errorf("merged variance %v, want 5", g.Var[0])
	}
}

func TestVirtualSampleReduces(t *testing.T) {
	fine, centers := buildFine(t, 3, 15, 5)
	res, err := VirtualSample(fine, 3, VirtualSampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Len() != 3 {
		t.Fatalf("got %d components", res.Model.Len())
	}
	live := 0
	for j, w := range res.Model.Weights {
		if w > 0.05 {
			live++
			c := res.Model.Comps[j]
			best := math.Inf(1)
			for _, ctr := range centers {
				best = math.Min(best, math.Hypot(c.Mean[0]-ctr[0], c.Mean[1]-ctr[1]))
			}
			if best > 1.5 {
				t.Errorf("component %d at %v far from all centres", j, c.Mean)
			}
		}
	}
	if live < 3 {
		t.Errorf("only %d live components", live)
	}
	if _, err := VirtualSample(fine, 0, VirtualSampleOptions{}); err == nil {
		t.Errorf("s=0 accepted")
	}
	// Identity case.
	res, err = VirtualSample(fine, fine.Len()+5, VirtualSampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Len() != fine.Len() {
		t.Errorf("identity reduction failed")
	}
}

func TestGoldbergerVsVirtualSampleDiffer(t *testing.T) {
	// The two reducers are different algorithms; on an asymmetric input
	// they should generally produce different coarse models. This guards
	// against one accidentally delegating to the other.
	rng := rand.New(rand.NewSource(9))
	var weights []float64
	var comps []stats.Gaussian
	for i := 0; i < 40; i++ {
		comps = append(comps, stats.Gaussian{
			Mean: []float64{rng.Float64() * 10, rng.Float64() * 10},
			Var:  []float64{0.05 + rng.Float64(), 0.05 + rng.Float64()},
		})
		weights = append(weights, 0.5+rng.Float64())
	}
	fine, err := New(weights, comps)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Reduce(fine, 5, ReduceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := VirtualSample(fine, 5, VirtualSampleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range g.Model.Comps {
		for k := range g.Model.Comps[j].Mean {
			if math.Abs(g.Model.Comps[j].Mean[k]-v.Model.Comps[j].Mean[k]) > 1e-6 {
				same = false
			}
		}
	}
	if same {
		t.Errorf("Goldberger and VirtualSample produced identical models on asymmetric input")
	}
}
