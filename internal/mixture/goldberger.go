package mixture

import (
	"fmt"
	"math"

	"bayestree/internal/sfc"
	"bayestree/internal/stats"
)

// ReduceResult carries the outcome of a Goldberger reduction: the coarser
// model g, the final assignment π of fine components to coarse components,
// and the final distance d(f, g).
type ReduceResult struct {
	Model    *Model
	Pi       []int
	Distance float64
	Iters    int
}

// ReduceOptions tunes the Goldberger regroup/refit iteration.
type ReduceOptions struct {
	// MaxIters bounds the regroup/refit loop (the loop also stops as soon
	// as the distance no longer decreases). Zero means the default of 50.
	MaxIters int
	// Tol is the minimum relative distance improvement to continue.
	Tol float64
	// GroupSize is the number of fine components initially mapped to each
	// coarse component in z-curve order (the paper uses ⌈0.75·M⌉ where M
	// is the fanout). Zero derives it from the component counts.
	GroupSize int
	// SFCBits is the quantisation precision for the z-curve initial
	// mapping; zero means 10 bits per dimension.
	SFCBits int
}

func (o *ReduceOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.SFCBits <= 0 {
		o.SFCBits = 10
	}
}

// Reduce approximates the fine mixture f (r components) by a coarser
// mixture with s components following Goldberger & Roweis [10], as adapted
// by the paper for bulk loading:
//
//  1. initial mapping π₀ groups fine components in z-curve order of their
//     means, GroupSize per coarse component;
//  2. regroup: π(i) = argmin_j KL(f_i, g_j);
//  3. refit: β_j = Σ α_i, μ_j = weighted mean, σ_j² = weighted second
//     moment around μ_j (the moment-preserving merge);
//
// repeated until d(f, g) stops decreasing. Empty coarse components are
// reseeded from the worst-approximated fine component, so the result always
// has exactly s non-empty components (unless s ≥ r, in which case f is
// returned unchanged).
func Reduce(f *Model, s int, opts ReduceOptions) (*ReduceResult, error) {
	if s <= 0 {
		return nil, fmt.Errorf("mixture: target size %d", s)
	}
	r := f.Len()
	if s >= r {
		pi := make([]int, r)
		for i := range pi {
			pi[i] = i
		}
		cp, err := New(f.Weights, f.Comps)
		if err != nil {
			return nil, err
		}
		return &ReduceResult{Model: cp, Pi: pi, Distance: 0}, nil
	}
	opts.defaults()

	pi, err := initialMapping(f, s, opts)
	if err != nil {
		return nil, err
	}
	g, err := refit(f, pi, s)
	if err != nil {
		return nil, err
	}
	prev := Distance(f, g)
	iters := 0
	for iters < opts.MaxIters {
		iters++
		changed := regroup(f, g, pi)
		reseedEmpty(f, g, pi, s)
		g, err = refit(f, pi, s)
		if err != nil {
			return nil, err
		}
		d := Distance(f, g)
		if !changed || d >= prev-opts.Tol*math.Max(1, math.Abs(prev)) {
			prev = math.Min(prev, d)
			break
		}
		prev = d
	}
	return &ReduceResult{Model: g, Pi: pi, Distance: prev, Iters: iters}, nil
}

// initialMapping computes π₀ by sorting component means along the z-curve
// and cutting the order into s contiguous groups of roughly GroupSize.
func initialMapping(f *Model, s int, opts ReduceOptions) ([]int, error) {
	r := f.Len()
	means := make([][]float64, r)
	for i, c := range f.Comps {
		means[i] = c.Mean
	}
	order, err := sfc.SortByCurve(means, f.Dim(), opts.SFCBits, sfc.ZOrder)
	if err != nil {
		return nil, err
	}
	group := opts.GroupSize
	if group <= 0 {
		group = (r + s - 1) / s
	}
	pi := make([]int, r)
	for rank, idx := range order {
		j := rank / group
		if j >= s {
			j = s - 1
		}
		pi[idx] = j
	}
	return pi, nil
}

// regroup reassigns each fine component to its KL-closest coarse component
// and reports whether any assignment changed.
func regroup(f, g *Model, pi []int) bool {
	changed := false
	for i, fc := range f.Comps {
		best, bestKL := pi[i], math.Inf(1)
		for j, gc := range g.Comps {
			if g.Weights[j] <= 0 {
				continue
			}
			if kl := stats.KL(fc, gc); kl < bestKL {
				best, bestKL = j, kl
			}
		}
		if best != pi[i] {
			pi[i] = best
			changed = true
		}
	}
	return changed
}

// reseedEmpty keeps all s coarse slots alive: any slot that lost all its
// fine components is reseeded with the fine component worst approximated by
// its current coarse assignment.
func reseedEmpty(f, g *Model, pi []int, s int) {
	count := make([]int, s)
	for _, j := range pi {
		count[j]++
	}
	for j := 0; j < s; j++ {
		if count[j] > 0 {
			continue
		}
		worst, worstKL := -1, -1.0
		for i, fc := range f.Comps {
			if count[pi[i]] <= 1 {
				continue // do not orphan another slot
			}
			kl := stats.KL(fc, g.Comps[pi[i]])
			if kl > worstKL {
				worst, worstKL = i, kl
			}
		}
		if worst >= 0 {
			count[pi[worst]]--
			pi[worst] = j
			count[j] = 1
		}
	}
}

// refit recomputes the coarse model from the assignment π with the
// moment-preserving updates of the paper:
//
//	β_j = Σ_{π(i)=j} α_i
//	μ_j = (1/β_j) Σ α_i μ_i
//	σ_j² = (1/β_j) Σ α_i (σ_i² + (μ_i − μ_j)²)
func refit(f *Model, pi []int, s int) (*Model, error) {
	d := f.Dim()
	beta := make([]float64, s)
	mu := make([][]float64, s)
	for j := range mu {
		mu[j] = make([]float64, d)
	}
	for i, c := range f.Comps {
		j := pi[i]
		a := f.Weights[i]
		beta[j] += a
		for k := 0; k < d; k++ {
			mu[j][k] += a * c.Mean[k]
		}
	}
	for j := 0; j < s; j++ {
		if beta[j] <= 0 {
			continue
		}
		for k := 0; k < d; k++ {
			mu[j][k] /= beta[j]
		}
	}
	va := make([][]float64, s)
	for j := range va {
		va[j] = make([]float64, d)
	}
	for i, c := range f.Comps {
		j := pi[i]
		a := f.Weights[i]
		for k := 0; k < d; k++ {
			dm := c.Mean[k] - mu[j][k]
			va[j][k] += a * (c.Var[k] + dm*dm)
		}
	}
	weights := make([]float64, 0, s)
	comps := make([]stats.Gaussian, 0, s)
	for j := 0; j < s; j++ {
		if beta[j] <= 0 {
			// Placeholder to keep indexing stable; weight 0 excludes it
			// from densities and regroup.
			weights = append(weights, 0)
			comps = append(comps, stats.Gaussian{Mean: make([]float64, d), Var: onesVar(d)})
			continue
		}
		v := make([]float64, d)
		for k := 0; k < d; k++ {
			v[k] = va[j][k] / beta[j]
			if v[k] < stats.VarianceFloor {
				v[k] = stats.VarianceFloor
			}
		}
		weights = append(weights, beta[j])
		comps = append(comps, stats.Gaussian{Mean: mu[j], Var: v})
	}
	m := &Model{Weights: weights, Comps: comps}
	var sum float64
	for _, w := range m.Weights {
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mixture: refit produced empty model")
	}
	for i := range m.Weights {
		m.Weights[i] /= sum
	}
	return m, nil
}

func onesVar(d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = 1
	}
	return v
}

// MergeGaussians returns the moment-preserving merge of two weighted
// Gaussians — the refit formulas specialised to two components. Exposed
// because the bulk loader's undersize-node post-processing merges nodes
// pairwise.
func MergeGaussians(wa float64, a stats.Gaussian, wb float64, b stats.Gaussian) (float64, stats.Gaussian) {
	w := wa + wb
	d := a.Dim()
	mean := make([]float64, d)
	for k := 0; k < d; k++ {
		mean[k] = (wa*a.Mean[k] + wb*b.Mean[k]) / w
	}
	variance := make([]float64, d)
	for k := 0; k < d; k++ {
		da := a.Mean[k] - mean[k]
		db := b.Mean[k] - mean[k]
		variance[k] = (wa*(a.Var[k]+da*da) + wb*(b.Var[k]+db*db)) / w
		if variance[k] < stats.VarianceFloor {
			variance[k] = stats.VarianceFloor
		}
	}
	return w, stats.Gaussian{Mean: mean, Var: variance}
}
