package mixture

import (
	"fmt"
	"math"

	"bayestree/internal/stats"
)

// VirtualSampleOptions tunes the Vasconcelos/Lippman mixture-hierarchy
// learner [21], the second statistical bulk-loading approach the paper
// adapted (and found inferior to Goldberger, which our experiments let you
// verify).
type VirtualSampleOptions struct {
	// VirtualN is the total number of virtual samples the fine model is
	// assumed to have generated. Zero means 1000.
	VirtualN float64
	// MaxIters bounds the EM loop; zero means 50.
	MaxIters int
	// Tol is the relative improvement threshold; zero means 1e-6.
	Tol float64
	// SFCBits controls the z-curve initial grouping; zero means 10.
	SFCBits int
}

func (o *VirtualSampleOptions) defaults() {
	if o.VirtualN <= 0 {
		o.VirtualN = 1000
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.SFCBits <= 0 {
		o.SFCBits = 10
	}
}

// VirtualSample reduces the fine mixture f to s components using the
// virtual-sampling EM of Vasconcelos & Lippman: each fine component i is
// treated as a block of N_i = VirtualN·α_i virtual points at its sufficient
// statistics, giving closed-form E and M steps on components instead of
// data. Responsibilities are computed in the log domain; the M step is the
// same moment-preserving refit as Goldberger's, weighted by soft
// responsibilities instead of a hard mapping.
func VirtualSample(f *Model, s int, opts VirtualSampleOptions) (*ReduceResult, error) {
	if s <= 0 {
		return nil, fmt.Errorf("mixture: target size %d", s)
	}
	r := f.Len()
	if s >= r {
		pi := make([]int, r)
		for i := range pi {
			pi[i] = i
		}
		cp, err := New(f.Weights, f.Comps)
		if err != nil {
			return nil, err
		}
		return &ReduceResult{Model: cp, Pi: pi, Distance: 0}, nil
	}
	opts.defaults()

	pi, err := initialMapping(f, s, ReduceOptions{SFCBits: opts.SFCBits})
	if err != nil {
		return nil, err
	}
	g, err := refit(f, pi, s)
	if err != nil {
		return nil, err
	}

	d := f.Dim()
	resp := make([][]float64, r) // responsibilities h_ij
	for i := range resp {
		resp[i] = make([]float64, s)
	}
	prevObj := math.Inf(-1)
	iters := 0
	for iters < opts.MaxIters {
		iters++
		// E step: log h_ij = log β_j + N_i [ log G(μ_i; μ_j, Σ_j)
		//                                    − ½ Σ_k σ²_{i,k}/σ²_{j,k} ].
		obj := 0.0
		for i, fc := range f.Comps {
			ni := opts.VirtualN * f.Weights[i]
			if ni < 1 {
				ni = 1
			}
			logs := make([]float64, s)
			for j := 0; j < s; j++ {
				if g.Weights[j] <= 0 {
					logs[j] = math.Inf(-1)
					continue
				}
				gc := g.Comps[j]
				var trace float64
				for k := 0; k < d; k++ {
					vj := gc.Var[k]
					if vj < stats.VarianceFloor {
						vj = stats.VarianceFloor
					}
					trace += fc.Var[k] / vj
				}
				logs[j] = math.Log(g.Weights[j]) + ni*(gc.LogPDF(fc.Mean)-0.5*trace)
			}
			lse := stats.LogSumExp(logs)
			obj += lse
			for j := 0; j < s; j++ {
				if math.IsInf(logs[j], -1) {
					resp[i][j] = 0
				} else {
					resp[i][j] = math.Exp(logs[j] - lse)
				}
			}
		}
		// M step: soft moment-preserving refit.
		g, err = softRefit(f, resp, s)
		if err != nil {
			return nil, err
		}
		if obj <= prevObj+opts.Tol*math.Max(1, math.Abs(prevObj)) {
			break
		}
		prevObj = obj
	}
	// Harden the assignment for callers that need a mapping (bulk loading
	// turns groups into nodes).
	for i := range resp {
		best, bestV := 0, -1.0
		for j := 0; j < s; j++ {
			if resp[i][j] > bestV {
				best, bestV = j, resp[i][j]
			}
		}
		pi[i] = best
	}
	return &ReduceResult{Model: g, Pi: pi, Distance: Distance(f, g), Iters: iters}, nil
}

// softRefit is the responsibility-weighted analogue of refit.
func softRefit(f *Model, resp [][]float64, s int) (*Model, error) {
	d := f.Dim()
	beta := make([]float64, s)
	mu := make([][]float64, s)
	for j := range mu {
		mu[j] = make([]float64, d)
	}
	for i, c := range f.Comps {
		a := f.Weights[i]
		for j := 0; j < s; j++ {
			w := a * resp[i][j]
			if w == 0 {
				continue
			}
			beta[j] += w
			for k := 0; k < d; k++ {
				mu[j][k] += w * c.Mean[k]
			}
		}
	}
	for j := 0; j < s; j++ {
		if beta[j] <= 0 {
			continue
		}
		for k := 0; k < d; k++ {
			mu[j][k] /= beta[j]
		}
	}
	va := make([][]float64, s)
	for j := range va {
		va[j] = make([]float64, d)
	}
	for i, c := range f.Comps {
		a := f.Weights[i]
		for j := 0; j < s; j++ {
			w := a * resp[i][j]
			if w == 0 {
				continue
			}
			for k := 0; k < d; k++ {
				dm := c.Mean[k] - mu[j][k]
				va[j][k] += w * (c.Var[k] + dm*dm)
			}
		}
	}
	weights := make([]float64, s)
	comps := make([]stats.Gaussian, s)
	var sum float64
	for j := 0; j < s; j++ {
		if beta[j] <= 0 {
			weights[j] = 0
			comps[j] = stats.Gaussian{Mean: make([]float64, d), Var: onesVar(d)}
			continue
		}
		v := make([]float64, d)
		for k := 0; k < d; k++ {
			v[k] = va[j][k] / beta[j]
			if v[k] < stats.VarianceFloor {
				v[k] = stats.VarianceFloor
			}
		}
		weights[j] = beta[j]
		comps[j] = stats.Gaussian{Mean: mu[j], Var: v}
		sum += beta[j]
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mixture: soft refit produced empty model")
	}
	for j := range weights {
		weights[j] /= sum
	}
	return &Model{Weights: weights, Comps: comps}, nil
}
