// Package sfc implements the space-filling curves used by the traditional
// bulk-loading strategies of Section 3.1 (Hilbert curve and z-curve) and by
// the Goldberger bulk loader's initial mapping π₀, which groups mixture
// components "according to the z-curve order of their mean values".
//
// Both curves operate on a quantised integer grid: continuous vectors are
// first mapped into [0, 2^bits)^d relative to a bounding box, then encoded
// into a bit-interleaved key. Keys are variable-length byte strings compared
// lexicographically, so any dimensionality and precision work without
// overflowing a machine word.
//
// The d-dimensional Hilbert encoding follows John Skilling, "Programming
// the Hilbert curve" (AIP 2004): coordinates are converted to and from the
// "transposed" Hilbert index representation in place.
package sfc

import (
	"bytes"
	"fmt"
	"sort"
)

// Quantizer maps continuous vectors into an integer grid.
type Quantizer struct {
	lo    []float64
	scale []float64 // grid cells per unit length, per dimension
	bits  int
	max   uint32
}

// NewQuantizer builds a quantizer for the axis-aligned box [lo, hi] with
// the given number of bits per dimension (1..31). Degenerate dimensions
// (hi == lo) map everything to cell 0.
func NewQuantizer(lo, hi []float64, bits int) (*Quantizer, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("sfc: lo dim %d != hi dim %d", len(lo), len(hi))
	}
	if bits < 1 || bits > 31 {
		return nil, fmt.Errorf("sfc: bits must be in [1,31], got %d", bits)
	}
	q := &Quantizer{
		lo:    append([]float64(nil), lo...),
		scale: make([]float64, len(lo)),
		bits:  bits,
		max:   (uint32(1) << bits) - 1,
	}
	cells := float64(uint64(1) << bits)
	for i := range lo {
		if hi[i] > lo[i] {
			q.scale[i] = cells / (hi[i] - lo[i])
		}
	}
	return q, nil
}

// BoundsOf returns the component-wise bounding box of the given points; a
// convenience for constructing quantizers over data sets.
func BoundsOf(points [][]float64, d int) (lo, hi []float64) {
	lo = make([]float64, d)
	hi = make([]float64, d)
	for i := 0; i < d; i++ {
		lo[i] = 0
		hi[i] = 0
	}
	if len(points) == 0 {
		return lo, hi
	}
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points[1:] {
		for i := 0; i < d; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return lo, hi
}

// Bits returns the number of bits per dimension.
func (q *Quantizer) Bits() int { return q.bits }

// Cell quantises x into grid coordinates, clamping to the grid.
func (q *Quantizer) Cell(x []float64) []uint32 {
	out := make([]uint32, len(q.lo))
	for i := range q.lo {
		v := (x[i] - q.lo[i]) * q.scale[i]
		switch {
		case v <= 0:
			out[i] = 0
		case v >= float64(q.max):
			out[i] = q.max
		default:
			out[i] = uint32(v)
		}
	}
	return out
}

// Key is a bit-interleaved curve key; compare with Key.Cmp (lexicographic).
type Key []byte

// Cmp compares two keys lexicographically.
func (k Key) Cmp(other Key) int { return bytes.Compare(k, other) }

// interleave packs the top `bits` bits of each coordinate, most significant
// bit-plane first, axis order within each plane, into a byte string.
func interleave(coords []uint32, bits int) Key {
	n := len(coords) * bits
	out := make(Key, (n+7)/8)
	pos := 0
	for b := bits - 1; b >= 0; b-- {
		for _, c := range coords {
			if c>>(uint(b))&1 == 1 {
				out[pos/8] |= 1 << (7 - uint(pos%8))
			}
			pos++
		}
	}
	return out
}

// ZKey returns the z-order (Morton) key of quantised coordinates.
func ZKey(coords []uint32, bits int) Key { return interleave(coords, bits) }

// HilbertKey returns the Hilbert-curve key of quantised coordinates. The
// input slice is not modified.
func HilbertKey(coords []uint32, bits int) Key {
	x := append([]uint32(nil), coords...)
	axesToTranspose(x, bits)
	return interleave(x, bits)
}

// axesToTranspose converts grid coordinates into the transposed Hilbert
// index in place (Skilling 2004).
func axesToTranspose(x []uint32, bits int) {
	if len(x) == 0 {
		return
	}
	m := uint32(1) << uint(bits-1)
	// Inverse undo of the excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < len(x); i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < len(x); i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[len(x)-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := range x {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose (Skilling 2004).
func transposeToAxes(x []uint32, bits int) {
	if len(x) == 0 {
		return
	}
	n := uint32(2) << uint(bits-1)
	// Gray decode by H ^ (H/2).
	t := x[len(x)-1] >> 1
	for i := len(x) - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := len(x) - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// HilbertAxes inverts a transposed-form round trip: it converts coordinates
// to the transposed Hilbert form and back, primarily exposed for property
// tests of bijectivity. It returns the reconstructed coordinates.
func HilbertAxes(coords []uint32, bits int) []uint32 {
	x := append([]uint32(nil), coords...)
	axesToTranspose(x, bits)
	transposeToAxes(x, bits)
	return x
}

// HilbertIndexUint64 returns the Hilbert index as a uint64 when the total
// key width d·bits fits in 64 bits; it reports an error otherwise. Useful
// for tests against known small-curve sequences.
func HilbertIndexUint64(coords []uint32, bits int) (uint64, error) {
	if len(coords)*bits > 64 {
		return 0, fmt.Errorf("sfc: %d dims × %d bits exceeds 64-bit index", len(coords), bits)
	}
	x := append([]uint32(nil), coords...)
	axesToTranspose(x, bits)
	var idx uint64
	for b := bits - 1; b >= 0; b-- {
		for _, c := range x {
			idx = idx<<1 | uint64(c>>uint(b)&1)
		}
	}
	return idx, nil
}

// ZIndexUint64 returns the z-order index as a uint64 when it fits.
func ZIndexUint64(coords []uint32, bits int) (uint64, error) {
	if len(coords)*bits > 64 {
		return 0, fmt.Errorf("sfc: %d dims × %d bits exceeds 64-bit index", len(coords), bits)
	}
	var idx uint64
	for b := bits - 1; b >= 0; b-- {
		for _, c := range coords {
			idx = idx<<1 | uint64(c>>uint(b)&1)
		}
	}
	return idx, nil
}

// Curve names the supported space-filling curves.
type Curve int

// Supported curves.
const (
	ZOrder Curve = iota
	Hilbert
)

// String implements fmt.Stringer.
func (c Curve) String() string {
	switch c {
	case ZOrder:
		return "zcurve"
	case Hilbert:
		return "hilbert"
	}
	return fmt.Sprintf("Curve(%d)", int(c))
}

// SortByCurve returns the indices 0..len(points)-1 ordered by the chosen
// curve key of each point. Ties keep their original relative order, making
// the ordering deterministic.
func SortByCurve(points [][]float64, d int, bits int, curve Curve) ([]int, error) {
	lo, hi := BoundsOf(points, d)
	q, err := NewQuantizer(lo, hi, bits)
	if err != nil {
		return nil, err
	}
	keys := make([]Key, len(points))
	for i, p := range points {
		cell := q.Cell(p)
		switch curve {
		case Hilbert:
			keys[i] = HilbertKey(cell, bits)
		case ZOrder:
			keys[i] = ZKey(cell, bits)
		default:
			return nil, fmt.Errorf("sfc: unknown curve %v", curve)
		}
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return keys[idx[a]].Cmp(keys[idx[b]]) < 0
	})
	return idx, nil
}
