package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer([]float64{0}, []float64{1, 2}, 8); err == nil {
		t.Errorf("dim mismatch accepted")
	}
	if _, err := NewQuantizer([]float64{0}, []float64{1}, 0); err == nil {
		t.Errorf("zero bits accepted")
	}
	if _, err := NewQuantizer([]float64{0}, []float64{1}, 32); err == nil {
		t.Errorf("32 bits accepted")
	}
}

func TestQuantizerCells(t *testing.T) {
	q, err := NewQuantizer([]float64{0, 0}, []float64{1, 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Cell([]float64{0, 0})
	if c[0] != 0 || c[1] != 0 {
		t.Errorf("low corner = %v", c)
	}
	c = q.Cell([]float64{1, 10})
	if c[0] != 15 || c[1] != 15 {
		t.Errorf("high corner = %v (clamped to max)", c)
	}
	c = q.Cell([]float64{0.5, 5})
	if c[0] != 8 || c[1] != 8 {
		t.Errorf("midpoint = %v, want cell 8", c)
	}
	// Out-of-box points clamp.
	c = q.Cell([]float64{-3, 99})
	if c[0] != 0 || c[1] != 15 {
		t.Errorf("clamping failed: %v", c)
	}
	// Degenerate dimension maps to 0.
	q2, _ := NewQuantizer([]float64{5}, []float64{5}, 4)
	if q2.Cell([]float64{5})[0] != 0 {
		t.Errorf("degenerate dim not zero")
	}
}

// Known sequence: the 2D Hilbert curve of order 2 visits the four
// quadrant cells in the classic U-shape. Verify the first-order pattern:
// (0,0) → (0,1) → (1,1) → (1,0).
func TestHilbert2DOrder1(t *testing.T) {
	want := [][]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for idx, cell := range want {
		got, err := HilbertIndexUint64(cell, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(idx) {
			t.Errorf("cell %v → index %d, want %d", cell, got, idx)
		}
	}
}

// Property: the Hilbert transposed transform round-trips (bijectivity).
func TestHilbertBijectiveProperty(t *testing.T) {
	f := func(a, b, c uint16, bitsRaw uint8) bool {
		bits := int(bitsRaw%14) + 2
		mask := uint32(1)<<bits - 1
		coords := []uint32{uint32(a) & mask, uint32(b) & mask, uint32(c) & mask}
		back := HilbertAxes(coords, bits)
		for i := range coords {
			if coords[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: all Hilbert indices over a small grid are distinct and cover
// the full range (the curve is a bijection cell ↔ index).
func TestHilbertCoversGrid(t *testing.T) {
	const bits = 3 // 8×8 grid
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			idx, err := HilbertIndexUint64([]uint32{x, y}, bits)
			if err != nil {
				t.Fatal(err)
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
			if idx >= 64 {
				t.Fatalf("index %d out of range", idx)
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d of 64 cells", len(seen))
	}
}

// The Hilbert curve's defining property: consecutive indices are adjacent
// cells (Manhattan distance exactly 1).
func TestHilbertLocality(t *testing.T) {
	const bits = 4 // 16×16
	cells := make([][]uint32, 256)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			idx, err := HilbertIndexUint64([]uint32{x, y}, bits)
			if err != nil {
				t.Fatal(err)
			}
			cells[idx] = []uint32{x, y}
		}
	}
	for i := 1; i < len(cells); i++ {
		d := manhattan(cells[i-1], cells[i])
		if d != 1 {
			t.Fatalf("consecutive Hilbert cells %v → %v at distance %d", cells[i-1], cells[i], d)
		}
	}
}

// Z-order known values: Morton interleave of (x=1, y=0) with 2 bits each.
func TestZOrderKnown(t *testing.T) {
	// bits are interleaved x-first (axis order), msb first:
	// x=01, y=00 → x1 y1 x0 y0 = 0 0 1 0 = 2.
	got, err := ZIndexUint64([]uint32{1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("z(1,0) = %d, want 2", got)
	}
	got, _ = ZIndexUint64([]uint32{3, 3}, 2)
	if got != 15 {
		t.Errorf("z(3,3) = %d, want 15", got)
	}
}

// Property: z-order keys compare identically to z-order uint64 indices.
func TestZKeyMatchesIndexProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		bits := 8
		ca := []uint32{uint32(a1), uint32(a2)}
		cb := []uint32{uint32(b1), uint32(b2)}
		ia, _ := ZIndexUint64(ca, bits)
		ib, _ := ZIndexUint64(cb, bits)
		ka, kb := ZKey(ca, bits), ZKey(cb, bits)
		cmp := ka.Cmp(kb)
		switch {
		case ia < ib:
			return cmp < 0
		case ia > ib:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Hilbert keys compare identically to Hilbert uint64 indices.
func TestHilbertKeyMatchesIndexProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		bits := 8
		ca := []uint32{uint32(a1), uint32(a2)}
		cb := []uint32{uint32(b1), uint32(b2)}
		ia, _ := HilbertIndexUint64(ca, bits)
		ib, _ := HilbertIndexUint64(cb, bits)
		cmp := HilbertKey(ca, bits).Cmp(HilbertKey(cb, bits))
		switch {
		case ia < ib:
			return cmp < 0
		case ia > ib:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexOverflowGuard(t *testing.T) {
	coords := make([]uint32, 9)
	if _, err := HilbertIndexUint64(coords, 8); err == nil {
		t.Errorf("9 dims × 8 bits should not fit uint64")
	}
	if _, err := ZIndexUint64(coords, 8); err == nil {
		t.Errorf("9 dims × 8 bits should not fit uint64")
	}
	// Keys handle it fine.
	k := HilbertKey(coords, 8)
	if len(k) != 9 {
		t.Errorf("key length = %d bytes, want 9", len(k))
	}
}

func TestSortByCurveDeterministicAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := make([][]float64, 200)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for _, curve := range []Curve{Hilbert, ZOrder} {
		o1, err := SortByCurve(points, 3, 8, curve)
		if err != nil {
			t.Fatal(err)
		}
		o2, _ := SortByCurve(points, 3, 8, curve)
		seen := make([]bool, len(points))
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("%v ordering not deterministic", curve)
			}
			if seen[o1[i]] {
				t.Fatalf("%v ordering repeats index %d", curve, o1[i])
			}
			seen[o1[i]] = true
		}
	}
	if _, err := SortByCurve(points, 3, 8, Curve(99)); err == nil {
		t.Errorf("unknown curve accepted")
	}
}

// Sorting by Hilbert order should improve locality over random order:
// the summed distance between consecutive points must shrink.
func TestHilbertSortImprovesLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	points := make([][]float64, 500)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	order, err := SortByCurve(points, 2, 10, Hilbert)
	if err != nil {
		t.Fatal(err)
	}
	randomPath := pathLength(points, identity(len(points)))
	hilbertPath := pathLength(points, order)
	if hilbertPath > randomPath*0.5 {
		t.Errorf("Hilbert path %v not much shorter than random %v", hilbertPath, randomPath)
	}
}

func TestCurveString(t *testing.T) {
	if ZOrder.String() != "zcurve" || Hilbert.String() != "hilbert" {
		t.Errorf("curve names wrong")
	}
	if Curve(9).String() == "" {
		t.Errorf("unknown curve name empty")
	}
}

func TestBoundsOf(t *testing.T) {
	lo, hi := BoundsOf([][]float64{{1, 5}, {-2, 7}}, 2)
	if lo[0] != -2 || hi[0] != 1 || lo[1] != 5 || hi[1] != 7 {
		t.Errorf("bounds = %v %v", lo, hi)
	}
	lo, hi = BoundsOf(nil, 2)
	if lo[0] != 0 || hi[0] != 0 {
		t.Errorf("empty bounds = %v %v", lo, hi)
	}
}

func manhattan(a, b []uint32) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += int(a[i] - b[i])
		} else {
			d += int(b[i] - a[i])
		}
	}
	return d
}

func pathLength(points [][]float64, order []int) float64 {
	var total float64
	for i := 1; i < len(order); i++ {
		a, b := points[order[i-1]], points[order[i]]
		var s float64
		for k := range a {
			d := a[k] - b[k]
			s += d * d
		}
		total += s
	}
	return total
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
