package persist

import (
	"fmt"
	"io"

	"bayestree/internal/clustree"
)

// This file extends the snapshot format to the clustering workload:
// the Section-4.2 ClusTree (tree topology, entry cluster features,
// parked buffer CFs, decay timestamps, lifetime counters) and the
// pyramidal snapshot store of micro-cluster history. As with the
// classifier kinds, only the structural source of truth is stored —
// float64 values bit-exact — so a reloaded tree reports MicroClusters
// and Weight digit-identically to the tree that was saved, including
// outstanding lazy decay (timestamps round-trip, so fading resumes at
// the exact point it stopped).

// Clustering snapshot kinds, continuing the kind namespace of
// persist.go.
const (
	kindClusTree   byte = 4 // single clustering tree
	kindClusterSet byte = 5 // sharded clustering server state
)

// ClusterSet is the whole state of a sharded clustering server: the
// per-shard trees, the pyramidal micro-cluster history (nil when the
// store is disabled) and the global logical clock.
type ClusterSet struct {
	// Trees holds one clustering tree per shard.
	Trees []*clustree.Tree
	// Store is the pyramidal snapshot store, nil when disabled.
	Store *clustree.SnapshotStore
	// Clock is the global logical time (objects ingested so far).
	Clock int64
}

// EncodeClusTree writes a snapshot of a single clustering tree.
func EncodeClusTree(w io.Writer, t *clustree.Tree) error {
	if t == nil {
		return fmt.Errorf("persist: nil clustree")
	}
	e := newEncoder(kindClusTree)
	e.clusTree(t)
	return e.flush(w)
}

// DecodeClusTree reads a clustering-tree snapshot written by
// EncodeClusTree.
func DecodeClusTree(r io.Reader) (*clustree.Tree, error) {
	d, err := newDecoder(r, kindClusTree)
	if err != nil {
		return nil, err
	}
	t := d.clusTree()
	if d.err != nil {
		return nil, d.err
	}
	return t, nil
}

// EncodeClusterSet writes a snapshot of a sharded clustering server's
// whole model state — trees, pyramidal store and clock — in one file.
func EncodeClusterSet(w io.Writer, set ClusterSet) error {
	if len(set.Trees) == 0 {
		return fmt.Errorf("persist: empty clustree set")
	}
	e := newEncoder(kindClusterSet)
	e.u64(uint64(len(set.Trees)))
	for _, t := range set.Trees {
		if t == nil {
			return fmt.Errorf("persist: nil clustree in set")
		}
		e.clusTree(t)
	}
	e.boolv(set.Store != nil)
	if set.Store != nil {
		e.clusStore(set.Store)
	}
	e.i64(set.Clock)
	return e.flush(w)
}

// DecodeClusterSet reads a sharded clustering snapshot written by
// EncodeClusterSet.
func DecodeClusterSet(r io.Reader) (ClusterSet, error) {
	var set ClusterSet
	d, err := newDecoder(r, kindClusterSet)
	if err != nil {
		return set, err
	}
	n := d.count(1)
	if n == 0 {
		return ClusterSet{}, fmt.Errorf("persist: empty clustree set")
	}
	for i := 0; i < n; i++ {
		t := d.clusTree()
		if d.err != nil {
			return ClusterSet{}, d.err
		}
		set.Trees = append(set.Trees, t)
	}
	if d.boolv() {
		set.Store = d.clusStore(set.Trees[0].Config().Dim)
	}
	set.Clock = d.i64()
	if d.err != nil {
		return ClusterSet{}, d.err
	}
	return set, nil
}

// ---------------------------------------------------------------------
// encoder

func (e *encoder) clusConfig(c clustree.Config) {
	e.i64(int64(c.Dim))
	e.i64(int64(c.MaxFanout))
	e.i64(int64(c.MinFanout))
	e.i64(int64(c.MaxLeafEntries))
	e.f64(c.Lambda)
	e.f64(c.MergeThreshold)
	e.f64(c.AbsorbDistance)
}

func (e *encoder) clusTree(t *clustree.Tree) {
	e.clusConfig(t.Config())
	e.f64(t.Now())
	inserts, parked, merges, splits := t.Counters()
	e.i64(int64(inserts))
	e.i64(int64(parked))
	e.i64(int64(merges))
	e.i64(int64(splits))
	e.clusNode(t.Dump())
}

func (e *encoder) clusNode(n *clustree.DumpNode) {
	if n.Leaf {
		e.u8(0)
	} else {
		e.u8(1)
	}
	e.u64(uint64(len(n.Entries)))
	for i := range n.Entries {
		ent := &n.Entries[i]
		e.cf(&ent.CF)
		e.cf(&ent.Buffer)
		e.f64(ent.TS)
		if !n.Leaf {
			e.clusNode(ent.Child)
		}
	}
}

func (e *encoder) clusStore(s *clustree.SnapshotStore) {
	e.i64(int64(s.Alpha()))
	e.i64(int64(s.Capacity()))
	snaps := s.All()
	e.u64(uint64(len(snaps)))
	for _, sn := range snaps {
		e.f64(sn.Time)
		e.u64(uint64(len(sn.MicroClusters)))
		for i := range sn.MicroClusters {
			e.cf(&sn.MicroClusters[i].CF)
		}
	}
}

// ---------------------------------------------------------------------
// decoder

func (d *decoder) clusConfig() clustree.Config {
	var c clustree.Config
	c.Dim = int(d.i64())
	c.MaxFanout = int(d.i64())
	c.MinFanout = int(d.i64())
	c.MaxLeafEntries = int(d.i64())
	c.Lambda = d.f64()
	c.MergeThreshold = d.f64()
	c.AbsorbDistance = d.f64()
	return c
}

func (d *decoder) clusTree() *clustree.Tree {
	cfg := d.clusConfig()
	now := d.f64()
	inserts := int(d.i64())
	parked := int(d.i64())
	merges := int(d.i64())
	splits := int(d.i64())
	if d.err != nil {
		return nil
	}
	if cfg.Dim < 1 {
		d.fail("clustree dim %d", cfg.Dim)
		return nil
	}
	root := d.clusNode(cfg.Dim)
	if d.err != nil {
		return nil
	}
	t, err := clustree.Rebuild(cfg, root, now, inserts, parked, merges, splits)
	if err != nil {
		d.fail("rebuild clustree: %v", err)
		return nil
	}
	return t
}

func (d *decoder) clusNode(dim int) *clustree.DumpNode {
	tag := d.u8()
	if d.err != nil {
		return nil
	}
	if tag > 1 {
		d.fail("unknown node tag %d", tag)
		return nil
	}
	n := &clustree.DumpNode{Leaf: tag == 0}
	count := d.count(8 * (2 + 4*dim))
	for i := 0; i < count; i++ {
		ent := clustree.DumpEntry{CF: d.cf(dim), Buffer: d.cf(dim), TS: d.f64()}
		if !n.Leaf {
			ent.Child = d.clusNode(dim)
			if d.err != nil {
				return nil
			}
		}
		n.Entries = append(n.Entries, ent)
	}
	if d.err != nil {
		return nil
	}
	return n
}

// clusStore rebuilds the pyramidal store by re-Recording the retained
// snapshots in time order: no order bucket can exceed its capacity
// (they were within capacity when saved), so no eviction fires and the
// rebuilt store is identical.
func (d *decoder) clusStore(dim int) *clustree.SnapshotStore {
	alpha := int(d.i64())
	capacity := int(d.i64())
	count := d.count(8)
	if d.err != nil {
		return nil
	}
	store, err := clustree.NewSnapshotStore(alpha, capacity)
	if err != nil {
		d.fail("rebuild snapshot store: %v", err)
		return nil
	}
	for i := 0; i < count; i++ {
		time := d.f64()
		mcCount := d.count(8 * (1 + 2*dim))
		mcs := make([]clustree.MicroCluster, 0, mcCount)
		for j := 0; j < mcCount; j++ {
			cf := d.cf(dim)
			if d.err != nil {
				return nil
			}
			mcs = append(mcs, clustree.MicroCluster{
				CF: cf, Weight: cf.N, Mean: cf.Mean(), Radius: cf.Radius(),
			})
		}
		if d.err != nil {
			return nil
		}
		if err := store.Record(time, mcs); err != nil {
			d.fail("rebuild snapshot store: %v", err)
			return nil
		}
	}
	return store
}
