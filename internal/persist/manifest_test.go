package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := Manifest{Generation: 7, Snapshot: "snapshot-00000007.btsn", Shards: 3, ShardStart: []uint64{4, 9, 2}}
	if err := SaveManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("LoadManifest = %v, ok=%v", err, ok)
	}
	if got.Generation != want.Generation || got.Snapshot != want.Snapshot || got.Shards != want.Shards {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.ShardStart {
		if got.ShardStart[i] != want.ShardStart[i] {
			t.Fatalf("shard start %d = %d, want %d", i, got.ShardStart[i], want.ShardStart[i])
		}
	}
}

func TestManifestAbsent(t *testing.T) {
	_, ok, err := LoadManifest(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("empty dir reported a manifest")
	}
}

func TestManifestCorruptAndInvalid(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest loaded")
	}
	for name, m := range map[string]Manifest{
		"gen_without_snapshot": {Generation: 2, Shards: 1, ShardStart: []uint64{1}},
		"path_snapshot":        {Generation: 1, Snapshot: "../evil.btsn", Shards: 1, ShardStart: []uint64{1}},
		"zero_shards":          {Generation: 1, Snapshot: "s.btsn"},
		"start_mismatch":       {Generation: 1, Snapshot: "s.btsn", Shards: 2, ShardStart: []uint64{1}},
	} {
		if err := SaveManifest(dir, m); err == nil {
			t.Errorf("%s: invalid manifest saved", name)
		}
	}
}

// TestWriteFileAtomicErrorPathsCleanup is the temp-file audit: no error
// path of an atomic write may strand a temporary file, and a failed
// write must leave existing content untouched.
func TestWriteFileAtomicErrorPathsCleanup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("original"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return fmt.Errorf("encode exploded")
	}); err == nil {
		t.Fatal("failed write reported success")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".bayestree-snap-") {
			t.Fatalf("stranded temp file %s after failed write", e.Name())
		}
	}
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "original" {
		t.Fatalf("failed write clobbered content: %q", content)
	}
}

// TestRemoveStaleTemps sweeps the one case in-process cleanup cannot
// reach: a crash between temp creation and rename.
func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	// Simulate the crash leftovers.
	for i := 0; i < 3; i++ {
		f, err := os.CreateTemp(dir, tempPattern)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	// An unrelated file must survive the sweep.
	keep := filepath.Join(dir, "snapshot-00000001.btsn")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RemoveStaleTemps(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != filepath.Base(keep) {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("after sweep dir holds %v, want only %s", names, filepath.Base(keep))
	}
	// Missing dir is a no-op.
	if err := RemoveStaleTemps(filepath.Join(dir, "nope")); err != nil {
		t.Fatal(err)
	}
}
