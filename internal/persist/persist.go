// Package persist implements versioned binary snapshots of trained
// Bayes tree models, so a serving process can warm-start from disk
// instead of re-running bulk loading (minutes of EM for large sets).
//
// The format stores the structural source of truth — configuration,
// node topology, leaf observations and every entry's cluster feature —
// with float64 values preserved bit-exactly, and omits all derived
// state. On decode the frozen-Gaussian caches are rebuilt from the
// stored cluster features through the same stats.Freeze path the tree
// builder uses (see core.RebuildEntry / core.RebuildMultiTree), so a
// reloaded model answers every query digit-identically to the model
// that was saved; the round-trip property tests assert this.
//
// Layout: a 4-byte magic "BTSN", a uint32 format version, a uint64
// payload length, the payload, and a CRC32 (IEEE) of the payload.
// Truncation, bit rot and future-version files are all rejected with
// distinguishable errors before any model state is built.
package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"bayestree/internal/core"
	"bayestree/internal/kernels"
	"bayestree/internal/mbr"
	"bayestree/internal/stats"
)

// Version is the current snapshot format version. Version 2 added the
// decay state (λ, pruning floor, epoch, reference epoch) per tree and
// optional per-observation leaf weight vectors. Decoders accept any
// version in [MinVersion, Version] — older snapshots load as undecayed
// models — and refuse newer ones loudly.
const Version = 2

// MinVersion is the oldest snapshot format this build still decodes.
const MinVersion = 1

var magic = [4]byte{'B', 'T', 'S', 'N'}

// Snapshot kinds, the first payload byte.
const (
	kindClassifier byte = 1 // per-class forest (core.Classifier)
	kindMultiTree  byte = 2 // single multi-class tree
	kindMultiSet   byte = 3 // sharded set of multi-class trees
)

// Sentinel errors for the distinguishable failure modes of Decode*.
// Wrapped errors carry detail; test with errors.Is.
var (
	// ErrBadMagic means the input is not a Bayes tree snapshot at all.
	ErrBadMagic = errors.New("persist: not a bayestree snapshot")
	// ErrVersion means the snapshot was written by an incompatible
	// (usually newer) format version.
	ErrVersion = errors.New("persist: unsupported snapshot version")
	// ErrChecksum means the payload failed its integrity check.
	ErrChecksum = errors.New("persist: snapshot checksum mismatch")
	// ErrTruncated means the input ended before the declared payload.
	ErrTruncated = errors.New("persist: truncated snapshot")
)

// EncodeClassifier writes a snapshot of the per-class forest classifier.
func EncodeClassifier(w io.Writer, c *core.Classifier) error {
	if c == nil {
		return fmt.Errorf("persist: nil classifier")
	}
	e := newEncoder(kindClassifier)
	e.u8(uint8(c.Options().Strategy))
	e.u8(uint8(c.Options().Priority))
	e.i64(int64(c.Options().K))
	labels := c.Labels()
	e.u64(uint64(len(labels)))
	for _, l := range labels {
		e.i64(int64(l))
		e.tree(c.Tree(l))
	}
	return e.flush(w)
}

// DecodeClassifier reads a classifier snapshot written by
// EncodeClassifier, rebuilding the per-entry frozen caches and the class
// priors so the result classifies digit-identically to the saved model.
func DecodeClassifier(r io.Reader) (*core.Classifier, error) {
	d, err := newDecoder(r, kindClassifier)
	if err != nil {
		return nil, err
	}
	var opts core.ClassifierOptions
	opts.Strategy = core.Strategy(d.u8())
	opts.Priority = core.Priority(d.u8())
	opts.K = int(d.i64())
	n := d.count(1)
	labels := make([]int, n)
	trees := make([]*core.Tree, n)
	for i := 0; i < n; i++ {
		labels[i] = int(d.i64())
		trees[i] = d.tree()
	}
	if d.err != nil {
		return nil, d.err
	}
	return core.NewClassifier(labels, trees, opts)
}

// EncodeMultiTree writes a snapshot of a single multi-class tree.
func EncodeMultiTree(w io.Writer, t *core.MultiTree) error {
	if t == nil {
		return fmt.Errorf("persist: nil multi tree")
	}
	e := newEncoder(kindMultiTree)
	e.multiTree(t)
	return e.flush(w)
}

// DecodeMultiTree reads a multi-class tree snapshot written by
// EncodeMultiTree.
func DecodeMultiTree(r io.Reader) (*core.MultiTree, error) {
	d, err := newDecoder(r, kindMultiTree)
	if err != nil {
		return nil, err
	}
	t := d.multiTree()
	if d.err != nil {
		return nil, d.err
	}
	return t, nil
}

// EncodeMultiTrees writes a snapshot of a sharded set of multi-class
// trees — the serving subsystem's whole model state in one file.
func EncodeMultiTrees(w io.Writer, ts []*core.MultiTree) error {
	if len(ts) == 0 {
		return fmt.Errorf("persist: empty multi tree set")
	}
	e := newEncoder(kindMultiSet)
	e.u64(uint64(len(ts)))
	for _, t := range ts {
		if t == nil {
			return fmt.Errorf("persist: nil multi tree in set")
		}
		e.multiTree(t)
	}
	return e.flush(w)
}

// DecodeMultiTrees reads a sharded-set snapshot written by
// EncodeMultiTrees.
func DecodeMultiTrees(r io.Reader) ([]*core.MultiTree, error) {
	d, err := newDecoder(r, kindMultiSet)
	if err != nil {
		return nil, err
	}
	n := d.count(1)
	ts := make([]*core.MultiTree, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, d.multiTree())
		if d.err != nil {
			return nil, d.err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return ts, nil
}

// tempPattern names the temporary files WriteFileAtomic stages renames
// through; RemoveStaleTemps sweeps strays matching it.
const tempPattern = ".bayestree-snap-*"

// WriteFileAtomic writes a snapshot to path durably and atomically:
// write is run against a temporary file in path's directory, the file
// is fsynced and renamed into place, and the directory is fsynced so
// the rename itself survives a crash. Either the old content or the
// complete new content is at path afterwards — never a torn snapshot.
// Every error path removes the temporary file (the deferred remove is a
// no-op only after the successful rename); temp files stranded by a
// crash mid-write are swept by RemoveStaleTemps on the next startup.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tempPattern)
	if err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	// The directory fsync is what makes the rename itself durable: a
	// snapshot reported durable when this fails could vanish on crash,
	// so errors propagate. Filesystems that categorically refuse to
	// fsync directories (EINVAL/ENOTSUP) are the one excuse — there is
	// nothing further a caller could do.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil && !unsupportedSyncError(err) {
		d.Close()
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	return nil
}

// unsupportedSyncError reports whether a directory fsync failed only
// because the filesystem does not support the operation.
func unsupportedSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// RemoveStaleTemps deletes temporary files a crashed WriteFileAtomic
// left behind in dir (a crash between create and rename strands one —
// the in-process error paths clean up after themselves). Call it on
// startup before writing new state; a missing dir is a no-op.
func RemoveStaleTemps(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, tempPattern))
	if err != nil {
		return fmt.Errorf("persist: sweep temps %s: %w", dir, err)
	}
	var first error
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) && first == nil {
			first = fmt.Errorf("persist: sweep temps: %w", err)
		}
	}
	return first
}

// ---------------------------------------------------------------------
// encoder

type encoder struct {
	buf     bytes.Buffer
	err     error
	version uint32
}

func newEncoder(kind byte) *encoder {
	return newEncoderVersion(kind, Version)
}

// newEncoderVersion writes an older format version — kept for the
// compatibility tests that prove current decoders still read v1 files.
func newEncoderVersion(kind byte, version uint32) *encoder {
	e := &encoder{version: version}
	e.u8(kind)
	return e
}

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) boolv(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) floats(v []float64) {
	for _, f := range v {
		e.f64(f)
	}
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) config(c core.Config) {
	e.i64(int64(c.Dim))
	e.i64(int64(c.MinFanout))
	e.i64(int64(c.MaxFanout))
	e.i64(int64(c.MinLeaf))
	e.i64(int64(c.MaxLeaf))
	e.str(c.Kernel.Name())
	e.boolv(c.ForcedReinsert)
	e.f64(c.ReinsertFraction)
}

func (e *encoder) cf(cf *stats.CF) {
	e.f64(cf.N)
	e.floats(cf.LS)
	e.floats(cf.SS)
}

func (e *encoder) rect(r mbr.Rect) {
	e.floats(r.Lo)
	e.floats(r.Hi)
}

// decayState writes the v2 decay block: options, current epoch and the
// reference epoch the stored weights are valued at.
func (e *encoder) decayState(opts core.DecayOptions, epoch, ref int64) {
	if e.version < 2 {
		return
	}
	e.f64(opts.Lambda)
	e.f64(opts.MinWeight)
	e.i64(epoch)
	e.i64(ref)
}

// leafWeights writes the optional per-observation weight vector of a
// decayed leaf (nil = unit weights, stored as a single absence flag).
func (e *encoder) leafWeights(ws []float64) {
	if e.version < 2 {
		return
	}
	e.boolv(ws != nil)
	e.floats(ws)
}

func (e *encoder) tree(t *core.Tree) {
	e.config(t.Config())
	e.decayState(t.DecayState())
	e.u64(uint64(t.Len()))
	e.boolv(t.Balanced())
	e.node(t.Root())
}

func (e *encoder) node(n *core.Node) {
	if n.IsLeaf() {
		e.u8(0)
		pts := n.Points()
		e.u64(uint64(len(pts)))
		for _, p := range pts {
			e.floats(p)
		}
		e.leafWeights(n.Weights())
		return
	}
	e.u8(1)
	ents := n.Entries()
	e.u64(uint64(len(ents)))
	for i := range ents {
		e.rect(ents[i].Rect)
		e.cf(&ents[i].CF)
		e.node(ents[i].Child)
	}
}

func (e *encoder) multiTree(t *core.MultiTree) {
	e.config(t.Config())
	e.decayState(t.DecayState())
	mopts := t.Options()
	e.boolv(mopts.PooledVariance)
	e.boolv(mopts.EntropyPriority)
	labels := t.Labels()
	e.u64(uint64(len(labels)))
	for _, l := range labels {
		e.i64(int64(l))
	}
	e.floats(t.Counts())
	e.multiNode(t.Root(), len(labels))
}

func (e *encoder) multiNode(n *core.MultiNode, numClasses int) {
	if n.IsLeaf() {
		e.u8(0)
		pts := n.Points()
		e.u64(uint64(len(pts)))
		for i := range pts {
			e.i64(int64(pts[i].Label))
			e.floats(pts[i].X)
		}
		e.leafWeights(n.Weights())
		return
	}
	e.u8(1)
	ents := n.Entries()
	e.u64(uint64(len(ents)))
	for i := range ents {
		e.rect(ents[i].Rect)
		for c := 0; c < numClasses; c++ {
			e.cf(&ents[i].CFs[c])
		}
		e.cf(&ents[i].Total)
		e.multiNode(ents[i].Child, numClasses)
	}
}

// flush frames the payload (magic, version, length, payload, CRC32) and
// writes it out.
func (e *encoder) flush(w io.Writer) error {
	if e.err != nil {
		return e.err
	}
	payload := e.buf.Bytes()
	var head [16]byte
	copy(head[:4], magic[:])
	binary.LittleEndian.PutUint32(head[4:8], e.version)
	binary.LittleEndian.PutUint64(head[8:16], uint64(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("persist: write payload: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("persist: write checksum: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------
// decoder

type decoder struct {
	b       *bytes.Reader
	err     error
	version uint32
}

// newDecoder reads and verifies the frame (magic, version, length,
// checksum) and the kind byte, returning a decoder positioned at the
// kind-specific payload.
func newDecoder(r io.Reader, wantKind byte) (*decoder, error) {
	var head [16]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if !bytes.Equal(head[:4], magic[:]) {
		return nil, ErrBadMagic
	}
	v := binary.LittleEndian.Uint32(head[4:8])
	if v < MinVersion || v > Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d..%d", ErrVersion, v, MinVersion, Version)
	}
	n := binary.LittleEndian.Uint64(head[8:16])
	const maxPayload = 1 << 36 // 64 GiB: reject absurd declared lengths before allocating
	if n > maxPayload {
		return nil, fmt.Errorf("%w: declared payload %d bytes", ErrChecksum, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrTruncated, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sum[:]) {
		return nil, ErrChecksum
	}
	d := &decoder{b: bytes.NewReader(payload), version: v}
	if kind := d.u8(); d.err == nil && kind != wantKind {
		return nil, fmt.Errorf("persist: snapshot kind %d, want %d", kind, wantKind)
	}
	return d, d.err
}

func (d *decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: "+format, args...)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	v, err := d.b.ReadByte()
	if err != nil {
		d.fail("unexpected end of payload")
	}
	return v
}

func (d *decoder) boolv() bool { return d.u8() != 0 }

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.b, b[:]); err != nil {
		d.fail("unexpected end of payload")
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a collection length and bounds it by what the remaining
// payload could possibly hold (elemBytes per element), so a corrupt
// length cannot force a huge allocation.
func (d *decoder) count(elemBytes int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if max := uint64(d.b.Len()/elemBytes) + 1; n > max {
		d.fail("declared count %d exceeds payload", n)
		return 0
	}
	return int(n)
}

func (d *decoder) floats(n int) []float64 {
	if d.err != nil || n < 0 || n > d.b.Len()/8+1 {
		d.fail("bad vector length %d", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.b, b); err != nil {
		d.fail("unexpected end of payload")
		return ""
	}
	return string(b)
}

func (d *decoder) config() core.Config {
	var c core.Config
	c.Dim = int(d.i64())
	c.MinFanout = int(d.i64())
	c.MaxFanout = int(d.i64())
	c.MinLeaf = int(d.i64())
	c.MaxLeaf = int(d.i64())
	name := d.str()
	c.ForcedReinsert = d.boolv()
	c.ReinsertFraction = d.f64()
	if d.err != nil {
		return c
	}
	k, ok := kernels.ByName(name)
	if !ok {
		d.fail("unknown kernel %q", name)
		return c
	}
	c.Kernel = k
	return c
}

func (d *decoder) cf(dim int) stats.CF {
	return stats.CF{N: d.f64(), LS: d.floats(dim), SS: d.floats(dim)}
}

func (d *decoder) rect(dim int) mbr.Rect {
	return mbr.Rect{Lo: d.floats(dim), Hi: d.floats(dim)}
}

// decayState reads the v2 decay block; v1 snapshots yield the zero
// (disabled) state.
func (d *decoder) decayState() (opts core.DecayOptions, epoch, ref int64) {
	if d.version < 2 {
		return
	}
	opts.Lambda = d.f64()
	opts.MinWeight = d.f64()
	epoch = d.i64()
	ref = d.i64()
	return
}

// leafWeights reads the optional weight vector of a decayed leaf.
func (d *decoder) leafWeights(points int) []float64 {
	if d.version < 2 || !d.boolv() {
		return nil
	}
	return d.floats(points)
}

func (d *decoder) tree() *core.Tree {
	cfg := d.config()
	dopts, epoch, ref := d.decayState()
	size := int(d.u64())
	balanced := d.boolv()
	if d.err != nil {
		return nil
	}
	root := d.node(cfg.Dim)
	if d.err != nil {
		return nil
	}
	t, err := core.RebuildTree(cfg, root, size, balanced)
	if err != nil {
		d.fail("rebuild tree: %v", err)
		return nil
	}
	if err := t.RestoreDecayState(dopts, epoch, ref); err != nil {
		d.fail("rebuild tree: %v", err)
		return nil
	}
	return t
}

func (d *decoder) node(dim int) *core.Node {
	tag := d.u8()
	if d.err != nil {
		return nil
	}
	switch tag {
	case 0:
		n := d.count(8 * dim)
		pts := make([][]float64, 0, n)
		for i := 0; i < n; i++ {
			pts = append(pts, d.floats(dim))
		}
		ws := d.leafWeights(n)
		if d.err != nil {
			return nil
		}
		leaf, err := core.RebuildLeafWeighted(pts, ws)
		if err != nil {
			d.fail("rebuild leaf: %v", err)
			return nil
		}
		return leaf
	case 1:
		n := d.count(8)
		ents := make([]core.Entry, 0, n)
		for i := 0; i < n; i++ {
			rect := d.rect(dim)
			cf := d.cf(dim)
			child := d.node(dim)
			if d.err != nil {
				return nil
			}
			ents = append(ents, core.RebuildEntry(rect, cf, child))
		}
		return core.RebuildInner(ents)
	default:
		d.fail("unknown node tag %d", tag)
		return nil
	}
}

func (d *decoder) multiTree() *core.MultiTree {
	cfg := d.config()
	dopts, epoch, ref := d.decayState()
	var mopts core.MultiOptions
	mopts.PooledVariance = d.boolv()
	mopts.EntropyPriority = d.boolv()
	nl := d.count(8)
	labels := make([]int, nl)
	for i := range labels {
		labels[i] = int(d.i64())
	}
	counts := d.floats(nl)
	if d.err != nil {
		return nil
	}
	root := d.multiNode(cfg.Dim, nl)
	if d.err != nil {
		return nil
	}
	t, err := core.RebuildMultiTree(cfg, mopts, labels, root, counts)
	if err != nil {
		d.fail("rebuild multi tree: %v", err)
		return nil
	}
	if err := t.RestoreDecayState(dopts, epoch, ref); err != nil {
		d.fail("rebuild multi tree: %v", err)
		return nil
	}
	return t
}

func (d *decoder) multiNode(dim, numClasses int) *core.MultiNode {
	tag := d.u8()
	if d.err != nil {
		return nil
	}
	switch tag {
	case 0:
		n := d.count(8 + 8*dim)
		pts := make([]core.LabeledPoint, 0, n)
		for i := 0; i < n; i++ {
			label := int(d.i64())
			pts = append(pts, core.LabeledPoint{X: d.floats(dim), Label: label})
		}
		ws := d.leafWeights(n)
		if d.err != nil {
			return nil
		}
		leaf, err := core.RebuildMultiLeafWeighted(pts, ws)
		if err != nil {
			d.fail("rebuild leaf: %v", err)
			return nil
		}
		return leaf
	case 1:
		n := d.count(8)
		ents := make([]core.MultiEntry, 0, n)
		for i := 0; i < n; i++ {
			e := core.MultiEntry{Rect: d.rect(dim), CFs: make([]stats.CF, numClasses)}
			for c := 0; c < numClasses; c++ {
				e.CFs[c] = d.cf(dim)
			}
			e.Total = d.cf(dim)
			e.Child = d.multiNode(dim, numClasses)
			if d.err != nil {
				return nil
			}
			ents = append(ents, e)
		}
		return core.RebuildMultiInner(ents)
	default:
		d.fail("unknown node tag %d", tag)
		return nil
	}
}
