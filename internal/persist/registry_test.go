package persist

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRegistryManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, ok, err := LoadRegistryManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("fresh dir reported a manifest: %+v", m)
	}
	want := RegistryManifest{
		Workload: "classify",
		Tenants: []RegistryTenant{
			{Name: "alpha", Generation: 3},
			{Name: "beta", Generation: 0},
		},
	}
	if err := SaveRegistryManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadRegistryManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("saved manifest not found")
	}
	if got.Workload != want.Workload || len(got.Tenants) != len(want.Tenants) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Tenants {
		if got.Tenants[i] != want.Tenants[i] {
			t.Fatalf("tenant %d: got %+v want %+v", i, got.Tenants[i], want.Tenants[i])
		}
	}
}

func TestRegistryManifestRejectsBadTenants(t *testing.T) {
	dir := t.TempDir()
	cases := []RegistryManifest{
		{Workload: ""},
		{Workload: "classify", Tenants: []RegistryTenant{{Name: ""}}},
		{Workload: "classify", Tenants: []RegistryTenant{{Name: "a/b"}}},
		{Workload: "classify", Tenants: []RegistryTenant{{Name: "a"}, {Name: "a"}}},
	}
	for i, m := range cases {
		if err := SaveRegistryManifest(dir, m); err == nil {
			t.Errorf("case %d: bad manifest %+v saved without error", i, m)
		}
	}
}

// TestRemoveStaleTempsTree is the crash-mid-eviction hygiene property:
// temp files stranded inside per-tenant subdirectories — not just the
// registry root — must be swept, because a cold tenant's directory may
// not be opened again for a long time.
func TestRemoveStaleTempsTree(t *testing.T) {
	root := t.TempDir()
	tenantA := filepath.Join(root, "tenants", "alpha")
	tenantAWAL := filepath.Join(tenantA, "shard-000")
	tenantB := filepath.Join(root, "tenants", "beta")
	for _, d := range []string{tenantAWAL, tenantB} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	strand := func(dir string) string {
		f, err := os.CreateTemp(dir, tempPattern)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		return f.Name()
	}
	stranded := []string{strand(root), strand(tenantA), strand(tenantAWAL), strand(tenantB)}
	keep := filepath.Join(tenantA, "MANIFEST")
	if err := os.WriteFile(keep, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := RemoveStaleTempsTree(root); err != nil {
		t.Fatal(err)
	}
	for _, p := range stranded {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stranded temp %s survived the tree sweep", p)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("non-temp file swept: %v", err)
	}

	// A missing root is a no-op, matching RemoveStaleTemps.
	if err := RemoveStaleTempsTree(filepath.Join(root, "missing")); err != nil {
		t.Fatalf("missing dir: %v", err)
	}
}
