package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"bayestree/internal/bulkload"
	"bayestree/internal/core"
	"bayestree/internal/dataset"
	"bayestree/internal/eval"
)

// trainClassifier builds a small forest classifier on a seeded synthetic
// data set.
func trainClassifier(t *testing.T, seed int64, opts core.ClassifierOptions) (*core.Classifier, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Synthetic(dataset.SyntheticSpec{
		Name: "persist", Size: 500, Classes: 3, Features: 4,
		ModesPerClass: 2, Spread: 0.08, Overlap: 0.15, Seed: seed,
	})
	if err != nil {
		t.Fatalf("synthetic: %v", err)
	}
	loader, _ := bulkload.ByName("emtopdown")
	clf, err := eval.TrainForest(ds, loader, core.DefaultConfig, opts)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return clf, ds
}

// buildMultiTree inserts a seeded labelled sample into a MultiTree.
func buildMultiTree(t *testing.T, seed int64, mopts core.MultiOptions) (*core.MultiTree, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := core.DefaultConfig(3)
	mt, err := core.NewMultiTree(cfg, []int{0, 1, 2}, mopts)
	if err != nil {
		t.Fatalf("new multi tree: %v", err)
	}
	xs := make([][]float64, 0, 400)
	for i := 0; i < 400; i++ {
		label := rng.Intn(3)
		x := []float64{
			float64(label) + 0.3*rng.NormFloat64(),
			-float64(label) + 0.3*rng.NormFloat64(),
			rng.NormFloat64(),
		}
		if err := mt.Insert(x, label); err != nil {
			t.Fatalf("insert: %v", err)
		}
		xs = append(xs, x)
	}
	return mt, xs
}

// roundTripClassifier encodes and decodes a classifier, failing the test
// on any error.
func roundTripClassifier(t *testing.T, clf *core.Classifier) *core.Classifier {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeClassifier(&buf, clf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeClassifier(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestClassifierRoundTripDigitIdentical is the snapshot property test:
// for random models across descent strategies, encode→decode→Classify
// must agree with the original digit for digit — predictions at every
// budget and the full float64 anytime density (OutlierScore), which is
// only possible if the rebuilt frozen caches are bit-identical.
func TestClassifierRoundTripDigitIdentical(t *testing.T) {
	strategies := []core.Strategy{core.DescentGlobal, core.DescentBFT, core.DescentDFT}
	budgets := []int{0, 3, 10, 40, -1}
	for seed := int64(1); seed <= 3; seed++ {
		for _, strat := range strategies {
			clf, ds := trainClassifier(t, seed, core.ClassifierOptions{Strategy: strat})
			got := roundTripClassifier(t, clf)
			if want, have := clf.Labels(), got.Labels(); len(want) != len(have) {
				t.Fatalf("seed %d %v: labels %v != %v", seed, strat, have, want)
			}
			for i := 0; i < 60; i++ {
				x := ds.X[i*7%ds.Len()]
				for _, b := range budgets {
					if w, h := clf.Classify(x, b), got.Classify(x, b); w != h {
						t.Fatalf("seed %d %v budget %d: prediction %d != %d", seed, strat, b, h, w)
					}
				}
				if w, h := clf.OutlierScore(x, 25), got.OutlierScore(x, 25); w != h {
					t.Fatalf("seed %d %v: outlier score %v != %v (frozen caches differ)", seed, strat, h, w)
				}
			}
		}
	}
}

// TestClassifierRoundTripThenLearn checks the decoded model is live, not
// a read-only replica: online learning must keep working and both copies
// must stay in lockstep when fed the same labelled stream.
func TestClassifierRoundTripThenLearn(t *testing.T) {
	clf, ds := trainClassifier(t, 7, core.ClassifierOptions{})
	got := roundTripClassifier(t, clf)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		j := rng.Intn(ds.Len())
		if err := clf.Learn(ds.X[j], ds.Y[j]); err != nil {
			t.Fatalf("learn original: %v", err)
		}
		if err := got.Learn(ds.X[j], ds.Y[j]); err != nil {
			t.Fatalf("learn decoded: %v", err)
		}
	}
	for i := 0; i < 40; i++ {
		x := ds.X[rng.Intn(ds.Len())]
		if w, h := clf.Classify(x, 20), got.Classify(x, 20); w != h {
			t.Fatalf("after learning: prediction %d != %d", h, w)
		}
	}
}

// TestMultiTreeRoundTripDigitIdentical is the same property for the
// single-tree multi-class variant, across both variance-pooling modes.
func TestMultiTreeRoundTripDigitIdentical(t *testing.T) {
	for _, mopts := range []core.MultiOptions{
		{},
		{PooledVariance: true, EntropyPriority: true},
	} {
		mt, xs := buildMultiTree(t, 5, mopts)
		var buf bytes.Buffer
		if err := EncodeMultiTree(&buf, mt); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeMultiTree(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		opts := core.ClassifierOptions{}
		for i := 0; i < 80; i++ {
			x := xs[i*5%len(xs)]
			for _, b := range []int{0, 5, 20, -1} {
				w, err1 := mt.Classify(x, opts, b)
				h, err2 := got.Classify(x, opts, b)
				if err1 != nil || err2 != nil {
					t.Fatalf("classify: %v / %v", err1, err2)
				}
				if w != h {
					t.Fatalf("mopts %+v budget %d: prediction %d != %d", mopts, b, h, w)
				}
			}
			qw, _ := mt.NewQuery(x, opts)
			qh, _ := got.NewQuery(x, opts)
			for s := 0; s < 10; s++ {
				qw.Step()
				qh.Step()
			}
			sw, sh := qw.Scores(), qh.Scores()
			for c := range sw {
				if sw[c] != sh[c] {
					t.Fatalf("mopts %+v: score[%d] %v != %v", mopts, c, sh[c], sw[c])
				}
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded tree invalid: %v", err)
		}
	}
}

// TestMultiTreesSetRoundTrip covers the sharded-set snapshot used by the
// serving subsystem.
func TestMultiTreesSetRoundTrip(t *testing.T) {
	var set []*core.MultiTree
	for seed := int64(1); seed <= 3; seed++ {
		mt, _ := buildMultiTree(t, seed, core.MultiOptions{})
		set = append(set, mt)
	}
	var buf bytes.Buffer
	if err := EncodeMultiTrees(&buf, set); err != nil {
		t.Fatalf("encode set: %v", err)
	}
	got, err := DecodeMultiTrees(&buf)
	if err != nil {
		t.Fatalf("decode set: %v", err)
	}
	if len(got) != len(set) {
		t.Fatalf("decoded %d shards, want %d", len(got), len(set))
	}
	for i := range set {
		if set[i].Len() != got[i].Len() {
			t.Fatalf("shard %d: size %d != %d", i, got[i].Len(), set[i].Len())
		}
		x := []float64{1, -1, 0}
		w, _ := set[i].Classify(x, core.ClassifierOptions{}, 15)
		h, _ := got[i].Classify(x, core.ClassifierOptions{}, 15)
		if w != h {
			t.Fatalf("shard %d: prediction %d != %d", i, h, w)
		}
	}
}

// TestDecodeRejectsCorruption exercises the error paths: bit rot in the
// payload, truncation, a foreign file and a future format version must
// all be rejected with their sentinel errors before any model state is
// built.
func TestDecodeRejectsCorruption(t *testing.T) {
	clf, _ := trainClassifier(t, 9, core.ClassifierOptions{})
	var buf bytes.Buffer
	if err := EncodeClassifier(&buf, clf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	good := buf.Bytes()

	t.Run("bit rot", func(t *testing.T) {
		for _, off := range []int{16, 100, len(good) - 5} {
			bad := append([]byte(nil), good...)
			bad[off] ^= 0x40
			if _, err := DecodeClassifier(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
				t.Fatalf("flip at %d: got %v, want ErrChecksum", off, err)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 15, 40, len(good) - 1} {
			if _, err := DecodeClassifier(bytes.NewReader(good[:n])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("truncate to %d: got %v, want ErrTruncated", n, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		copy(bad, "NOPE")
		if _, err := DecodeClassifier(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = Version + 1
		if _, err := DecodeClassifier(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		if _, err := DecodeMultiTree(bytes.NewReader(good)); err == nil {
			t.Fatal("decoding a classifier snapshot as a multi tree succeeded")
		}
	})
}
