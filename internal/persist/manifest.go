package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file is the durability manifest: the small record that ties a
// snapshot generation to the WAL segments that continue it. Recovery
// reads it to learn which snapshot to load and, per shard, the first
// WAL segment to replay on top; a checkpoint writes a new one only
// after its snapshot is durably in place, so at every instant the
// manifest on disk names a complete, consistent (snapshot, WAL-start)
// pair — segments below the start are garbage to collect, never state.

// ManifestName is the manifest's filename inside a durability
// directory.
const ManifestName = "MANIFEST"

// Manifest ties one snapshot generation to the WAL segments that must
// be replayed on top of it. It is written atomically (WriteFileAtomic)
// and stored as JSON so operators can inspect durability state with
// cat.
type Manifest struct {
	// Generation counts checkpoints, starting at 1; the zero value means
	// no checkpoint has completed yet and recovery starts from an empty
	// (or bootstrapped) model.
	Generation uint64 `json:"generation"`
	// Epoch is the replication fencing token: it starts at 0 and is
	// bumped only when a replica is promoted to primary, so a higher
	// epoch always names a newer line of succession. A resurrected
	// stale primary that learns of a higher epoch must refuse writes
	// (it fences itself). Manifests written before replication existed
	// decode as epoch 0.
	Epoch uint64 `json:"epoch,omitempty"`
	// Snapshot is the snapshot filename relative to the durability
	// directory, "" when Generation is 0.
	Snapshot string `json:"snapshot"`
	// Shards is the shard count the WAL layout was written with; a
	// recovery into a different shard count would mis-route replayed
	// records and must refuse.
	Shards int `json:"shards"`
	// ShardStart is, per shard, the first WAL segment to replay —
	// segments below it were already folded into the snapshot.
	ShardStart []uint64 `json:"shard_start"`
}

// validate rejects internally inconsistent manifests before any model
// state is built from them.
func (m Manifest) validate() error {
	if m.Generation > 0 && m.Snapshot == "" {
		return fmt.Errorf("persist: manifest generation %d without snapshot", m.Generation)
	}
	if m.Snapshot != "" && filepath.Base(m.Snapshot) != m.Snapshot {
		return fmt.Errorf("persist: manifest snapshot %q is not a bare filename", m.Snapshot)
	}
	if m.Shards <= 0 {
		return fmt.Errorf("persist: manifest shard count %d", m.Shards)
	}
	if len(m.ShardStart) != m.Shards {
		return fmt.Errorf("persist: manifest has %d shard starts for %d shards", len(m.ShardStart), m.Shards)
	}
	return nil
}

// SaveManifest atomically writes the manifest into dir.
func SaveManifest(dir string, m Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadManifest reads the manifest from dir. ok is false when none
// exists yet — a fresh durability directory, not an error.
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("persist: manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("persist: manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}
