package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"bayestree/internal/clustree"
)

// buildClusTree grows a decayed clustering tree under budget pressure:
// parked objects, hitchhikers, splits and lazy decay all present, so a
// round trip exercises every record field.
func buildClusTree(t *testing.T, seed int64, lambda float64) *clustree.Tree {
	t.Helper()
	cfg := clustree.DefaultConfig(3)
	cfg.Lambda = lambda
	tree, err := clustree.New(cfg)
	if err != nil {
		t.Fatalf("new clustree: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 1200; i++ {
		src := float64(i % 3)
		x := []float64{
			src/3 + 0.05*rng.NormFloat64(),
			1 - src/3 + 0.05*rng.NormFloat64(),
			0.5 + 0.05*rng.NormFloat64(),
		}
		budget := -1
		if i%4 != 0 {
			budget = 1 + i%2
		}
		if err := tree.Insert(x, float64(i+1), budget); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tree.Parked() == 0 || tree.Splits() == 0 {
		t.Fatalf("tree did not exercise pressure paths: parked=%d splits=%d", tree.Parked(), tree.Splits())
	}
	return tree
}

// mustEqualMicro asserts two micro-cluster sets are digit-identical.
func mustEqualMicro(t *testing.T, want, got []clustree.MicroCluster) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("micro-cluster count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].CF.N != got[i].CF.N {
			t.Fatalf("micro %d: N %v != %v", i, got[i].CF.N, want[i].CF.N)
		}
		for k := range want[i].CF.LS {
			if want[i].CF.LS[k] != got[i].CF.LS[k] || want[i].CF.SS[k] != got[i].CF.SS[k] {
				t.Fatalf("micro %d dim %d: CF floats diverged", i, k)
			}
		}
	}
}

// TestClusTreeRoundTripDigitIdentical is the clustering snapshot
// property test: encode→decode must reproduce micro-clusters, weight,
// counters and configuration bit for bit, for both decayed and
// undecayed trees — including outstanding lazy decay, which resumes at
// the exact stored timestamps.
func TestClusTreeRoundTripDigitIdentical(t *testing.T) {
	for _, lambda := range []float64{0, 0.003} {
		tree := buildClusTree(t, 31, lambda)
		var buf bytes.Buffer
		if err := EncodeClusTree(&buf, tree); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeClusTree(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Config() != tree.Config() {
			t.Fatalf("config %+v != %+v", got.Config(), tree.Config())
		}
		if got.Now() != tree.Now() {
			t.Fatalf("now %v != %v", got.Now(), tree.Now())
		}
		i1, p1, m1, s1 := tree.Counters()
		i2, p2, m2, s2 := got.Counters()
		if i1 != i2 || p1 != p2 || m1 != m2 || s1 != s2 {
			t.Fatalf("counters (%d,%d,%d,%d) != (%d,%d,%d,%d)", i2, p2, m2, s2, i1, p1, m1, s1)
		}
		mustEqualMicro(t, tree.MicroClusters(0), got.MicroClusters(0))
		if tree.Weight() != got.Weight() {
			t.Fatalf("weight %v != %v", got.Weight(), tree.Weight())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded tree invalid: %v", err)
		}
		// The decoded tree is live: decay resumes from the stored
		// timestamps and both copies stay in lockstep.
		x := []float64{0.2, 0.8, 0.5}
		ts := tree.Now() + 50
		if err := tree.Insert(x, ts, -1); err != nil {
			t.Fatalf("insert original: %v", err)
		}
		if err := got.Insert(x, ts, -1); err != nil {
			t.Fatalf("insert decoded: %v", err)
		}
		mustEqualMicro(t, tree.MicroClusters(0), got.MicroClusters(0))
	}
}

// TestClusterSetRoundTrip covers the sharded clustering snapshot: trees
// plus the pyramidal store plus the logical clock.
func TestClusterSetRoundTrip(t *testing.T) {
	var trees []*clustree.Tree
	for seed := int64(1); seed <= 3; seed++ {
		trees = append(trees, buildClusTree(t, seed, 0.002))
	}
	store, err := clustree.NewSnapshotStore(2, 3)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	for ts := int64(64); ts <= 1024; ts += 64 {
		if err := store.Record(float64(ts), trees[0].MicroClusters(0.5)); err != nil {
			t.Fatalf("record: %v", err)
		}
	}
	set := ClusterSet{Trees: trees, Store: store, Clock: 3600}
	var buf bytes.Buffer
	if err := EncodeClusterSet(&buf, set); err != nil {
		t.Fatalf("encode set: %v", err)
	}
	got, err := DecodeClusterSet(&buf)
	if err != nil {
		t.Fatalf("decode set: %v", err)
	}
	if len(got.Trees) != 3 || got.Clock != 3600 || got.Store == nil {
		t.Fatalf("decoded %d trees clock %d store %v", len(got.Trees), got.Clock, got.Store != nil)
	}
	for i := range trees {
		mustEqualMicro(t, trees[i].MicroClusters(0), got.Trees[i].MicroClusters(0))
	}
	if store.Len() != got.Store.Len() {
		t.Fatalf("store retained %d != %d", got.Store.Len(), store.Len())
	}
	a, _ := store.Closest(512)
	b, ok := got.Store.Closest(512)
	if !ok || a.Time != b.Time {
		t.Fatalf("store closest(512) %v vs %v (ok=%v)", b.Time, a.Time, ok)
	}
	mustEqualMicro(t, a.MicroClusters, b.MicroClusters)

	// A store-less set round-trips too (SnapshotEvery < 0 servers).
	var buf2 bytes.Buffer
	if err := EncodeClusterSet(&buf2, ClusterSet{Trees: trees[:1], Clock: 7}); err != nil {
		t.Fatalf("encode storeless: %v", err)
	}
	got2, err := DecodeClusterSet(&buf2)
	if err != nil {
		t.Fatalf("decode storeless: %v", err)
	}
	if got2.Store != nil || got2.Clock != 7 {
		t.Fatalf("storeless set decoded store=%v clock=%d", got2.Store != nil, got2.Clock)
	}
}

// TestClusTreeDecodeRejectsCorruption exercises the error paths of the
// clustering record types with the same table the classifier snapshots
// get: bit rot, truncation, foreign files, future versions and kind
// confusion must all fail loudly before any tree state is built.
func TestClusTreeDecodeRejectsCorruption(t *testing.T) {
	tree := buildClusTree(t, 77, 0.001)
	var single, set bytes.Buffer
	if err := EncodeClusTree(&single, tree); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := EncodeClusterSet(&set, ClusterSet{Trees: []*clustree.Tree{tree}, Clock: 5}); err != nil {
		t.Fatalf("encode set: %v", err)
	}

	for _, tc := range []struct {
		name   string
		decode func(r *bytes.Reader) error
		good   []byte
	}{
		{"tree", func(r *bytes.Reader) error { _, err := DecodeClusTree(r); return err }, single.Bytes()},
		{"set", func(r *bytes.Reader) error { _, err := DecodeClusterSet(r); return err }, set.Bytes()},
	} {
		t.Run(tc.name+"/bit rot", func(t *testing.T) {
			for _, off := range []int{17, 60, len(tc.good) - 6} {
				bad := append([]byte(nil), tc.good...)
				bad[off] ^= 0x20
				if err := tc.decode(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
					t.Fatalf("flip at %d: got %v, want ErrChecksum", off, err)
				}
			}
		})
		t.Run(tc.name+"/truncated", func(t *testing.T) {
			for _, n := range []int{0, 3, 15, 60, len(tc.good) - 1} {
				if err := tc.decode(bytes.NewReader(tc.good[:n])); !errors.Is(err, ErrTruncated) {
					t.Fatalf("truncate to %d: got %v, want ErrTruncated", n, err)
				}
			}
		})
		t.Run(tc.name+"/bad magic", func(t *testing.T) {
			bad := append([]byte(nil), tc.good...)
			copy(bad, "NOPE")
			if err := tc.decode(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
				t.Fatalf("got %v, want ErrBadMagic", err)
			}
		})
		t.Run(tc.name+"/future version", func(t *testing.T) {
			bad := append([]byte(nil), tc.good...)
			bad[4] = Version + 1
			if err := tc.decode(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
				t.Fatalf("got %v, want ErrVersion", err)
			}
		})
	}

	t.Run("wrong kind", func(t *testing.T) {
		if _, err := DecodeClusterSet(bytes.NewReader(single.Bytes())); err == nil {
			t.Fatal("decoding a tree snapshot as a set succeeded")
		}
		if _, err := DecodeClusTree(bytes.NewReader(set.Bytes())); err == nil {
			t.Fatal("decoding a set snapshot as a tree succeeded")
		}
		if _, err := DecodeMultiTrees(bytes.NewReader(set.Bytes())); err == nil {
			t.Fatal("decoding a cluster set as a multi-tree set succeeded")
		}
	})
	t.Run("encode validation", func(t *testing.T) {
		var buf bytes.Buffer
		if err := EncodeClusTree(&buf, nil); err == nil {
			t.Fatal("encoding a nil tree succeeded")
		}
		if err := EncodeClusterSet(&buf, ClusterSet{}); err == nil {
			t.Fatal("encoding an empty set succeeded")
		}
		if err := EncodeClusterSet(&buf, ClusterSet{Trees: []*clustree.Tree{nil}}); err == nil {
			t.Fatal("encoding a set with a nil tree succeeded")
		}
	})
}
