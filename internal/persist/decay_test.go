package persist

import (
	"bytes"
	"math/rand"
	"testing"

	"bayestree/internal/core"
)

// buildDecayedMultiTree constructs a multi-class tree that has lived
// through the full decay lifecycle: old mass inserted, epochs advanced,
// amplified new mass inserted, a pruning sweep, and one more epoch
// advanced but not yet swept — so the snapshot must carry non-trivial
// weights AND a non-zero outstanding epoch delta.
func buildDecayedMultiTree(t *testing.T) *core.MultiTree {
	t.Helper()
	cfg := core.Config{Dim: 3, MinFanout: 2, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6,
		Kernel: core.DefaultConfig(3).Kernel}
	mt, err := core.NewMultiTree(cfg, []int{0, 1, 2}, core.MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.EnableDecay(core.DecayOptions{Lambda: 0.5, MinWeight: 0.05}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	insert := func(n int, shift float64) {
		for i := 0; i < n; i++ {
			x := []float64{shift + 0.2*rng.Float64(), rng.Float64(), rng.Float64()}
			if err := mt.Insert(x, i%3); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(80, 0.0)
	mt.AdvanceEpoch(3)
	insert(60, 0.6)
	mt.DecaySweep()
	mt.AdvanceEpoch(1) // outstanding, un-swept decay
	insert(20, 0.8)
	return mt
}

// probeScores fully refines a query per probe and returns the raw
// per-class scores — the digit-identity oracle.
func probeScores(t *testing.T, mt *core.MultiTree, probes [][]float64) [][]float64 {
	t.Helper()
	out := make([][]float64, len(probes))
	for i, x := range probes {
		q, err := mt.NewQuery(x, core.ClassifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for q.Step() {
		}
		out[i] = q.Scores()
	}
	return out
}

// A decayed model must reload digit-identically: same decay state, same
// effective weight, and bit-equal query scores.
func TestDecayedMultiTreeRoundTripDigitIdentical(t *testing.T) {
	mt := buildDecayedMultiTree(t)
	var buf bytes.Buffer
	if err := EncodeMultiTree(&buf, mt); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMultiTree(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	wantOpts, wantEpoch, wantRef := mt.DecayState()
	gotOpts, gotEpoch, gotRef := got.DecayState()
	if gotOpts != wantOpts || gotEpoch != wantEpoch || gotRef != wantRef {
		t.Fatalf("decay state %+v e%d r%d, want %+v e%d r%d",
			gotOpts, gotEpoch, gotRef, wantOpts, wantEpoch, wantRef)
	}
	if got.Weight() != mt.Weight() {
		t.Fatalf("weight %v, want %v", got.Weight(), mt.Weight())
	}
	if got.Len() != mt.Len() {
		t.Fatalf("size %d, want %d", got.Len(), mt.Len())
	}

	rng := rand.New(rand.NewSource(12))
	probes := make([][]float64, 40)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	want := probeScores(t, mt, probes)
	have := probeScores(t, got, probes)
	for i := range probes {
		for c := range want[i] {
			if want[i][c] != have[i][c] {
				t.Fatalf("probe %d class %d: score %v != %v (not digit-identical)",
					i, c, have[i][c], want[i][c])
			}
		}
	}

	// The reloaded model keeps decaying: another epoch + sweep must
	// agree with the original put through the same motions.
	mt.AdvanceEpoch(2)
	mt.DecaySweep()
	got.AdvanceEpoch(2)
	got.DecaySweep()
	if got.Weight() != mt.Weight() || got.Len() != mt.Len() {
		t.Fatalf("post-reload sweep diverged: weight %v/%v size %d/%d",
			got.Weight(), mt.Weight(), got.Len(), mt.Len())
	}
}

// A decayed per-class forest snapshot round-trips digit-identically
// through the classifier encoder, including priors from decayed masses.
func TestDecayedClassifierRoundTripDigitIdentical(t *testing.T) {
	cfg := core.Config{Dim: 2, MinFanout: 2, MaxFanout: 4, MinLeaf: 2, MaxLeaf: 5,
		Kernel: core.DefaultConfig(2).Kernel}
	trees := make([]*core.Tree, 2)
	rng := rand.New(rand.NewSource(13))
	for c := range trees {
		tr, err := core.NewTree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.EnableDecay(core.DecayOptions{Lambda: 1, MinWeight: 0.1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := tr.Insert([]float64{float64(c)*0.5 + 0.3*rng.Float64(), rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		tr.AdvanceEpoch(2)
		for i := 0; i < 20+10*c; i++ {
			if err := tr.Insert([]float64{float64(c)*0.5 + 0.3*rng.Float64(), rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		tr.DecaySweep()
		tr.AdvanceEpoch(1)
		trees[c] = tr
	}
	clf, err := core.NewClassifier([]int{0, 1}, trees, core.ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeClassifier(&buf, clf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		qa, qb := clf.NewQuery(x), got.NewQuery(x)
		for qa.Step() && qb.Step() {
		}
		pa, pb := qa.Posteriors(), qb.Posteriors()
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("probe %d class %d: posterior %v != %v", i, c, pb[c], pa[c])
			}
		}
		qa.Close()
		qb.Close()
	}
}

// Version-1 snapshots (written before the decay format) must keep
// decoding: same bytes a v1 build produced, loaded as an undecayed
// model answering digit-identically.
func TestVersion1SnapshotStillDecodes(t *testing.T) {
	cfg := core.Config{Dim: 2, MinFanout: 2, MaxFanout: 4, MinLeaf: 2, MaxLeaf: 5,
		Kernel: core.DefaultConfig(2).Kernel}
	mt, err := core.NewMultiTree(cfg, []int{0, 1}, core.MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 70; i++ {
		if err := mt.Insert([]float64{rng.Float64(), rng.Float64()}, i%2); err != nil {
			t.Fatal(err)
		}
	}

	// Write the exact v1 byte layout (no decay block, no weight flags).
	e := newEncoderVersion(kindMultiTree, 1)
	e.multiTree(mt)
	var buf bytes.Buffer
	if err := e.flush(&buf); err != nil {
		t.Fatal(err)
	}

	got, err := DecodeMultiTree(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot no longer decodes: %v", err)
	}
	if opts, epoch, ref := got.DecayState(); opts.Enabled() || epoch != 0 || ref != 0 {
		t.Fatalf("v1 snapshot decoded with decay state %+v e%d r%d", opts, epoch, ref)
	}
	probes := make([][]float64, 25)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64()}
	}
	want := probeScores(t, mt, probes)
	have := probeScores(t, got, probes)
	for i := range probes {
		for c := range want[i] {
			if want[i][c] != have[i][c] {
				t.Fatalf("probe %d class %d: v1 reload not digit-identical (%v != %v)",
					i, c, have[i][c], want[i][c])
			}
		}
	}

	// The v1 set form decodes too (what a pre-decay serveclass wrote).
	es := newEncoderVersion(kindMultiSet, 1)
	es.u64(1)
	es.multiTree(mt)
	var setBuf bytes.Buffer
	if err := es.flush(&setBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMultiTrees(bytes.NewReader(setBuf.Bytes())); err != nil {
		t.Fatalf("v1 sharded-set snapshot no longer decodes: %v", err)
	}
}

// Corrupt leaf weights (non-positive) must be rejected at rebuild, not
// silently loaded.
func TestCorruptLeafWeightRejected(t *testing.T) {
	if _, err := core.RebuildLeafWeighted([][]float64{{1, 2}}, []float64{-0.5}); err == nil {
		t.Fatal("negative leaf weight accepted")
	}
	if _, err := core.RebuildLeafWeighted([][]float64{{1, 2}}, []float64{1, 1}); err == nil {
		t.Fatal("mismatched weight vector length accepted")
	}
	if _, err := core.RebuildMultiLeafWeighted([]core.LabeledPoint{{X: []float64{1}, Label: 0}}, []float64{0}); err == nil {
		t.Fatal("zero multi leaf weight accepted")
	}
}
