package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file is the multi-tenant registry's durable index: one small
// JSON record at the registry root that enumerates every tenant the
// registry has ever created, with the checkpoint generation each was
// last paged out at. The per-tenant durability state (MANIFEST,
// snapshot, WAL segments, LOCK) lives in a subdirectory per tenant;
// the registry manifest only names them, so a restarted registry knows
// the full tenant population without loading a single model — cold
// tenants stay on disk until their first request.
//
// It also owns the crash-hygiene sweep for that layout: a crash
// mid-eviction can strand an atomic-write temp file inside a tenant
// subdirectory that may not be loaded again for days, so the
// startup sweep must walk the whole tree, not just the root.

// RegistryManifestName is the registry manifest's filename inside a
// registry root directory.
const RegistryManifestName = "REGISTRY"

// RegistryTenant is one tenant's entry in the registry manifest.
type RegistryTenant struct {
	// Name is the tenant's registry name, also its subdirectory name
	// under the registry's tenants directory.
	Name string `json:"name"`
	// Generation is the tenant's checkpoint generation when the manifest
	// was last written for it (0 before its first checkpoint). It is
	// informational — the tenant's own MANIFEST is authoritative at
	// load — but lets operators see paging state with cat.
	Generation uint64 `json:"generation"`
}

// RegistryManifest enumerates the tenants of a multi-tenant registry
// root. Written atomically on tenant creation and eviction, so a
// restarted registry always knows its full tenant population.
type RegistryManifest struct {
	// Workload names the served workload ("classify" or "cluster"); a
	// registry refuses to open a root written by the other workload.
	Workload string `json:"workload"`
	// Tenants lists every tenant ever created, sorted by name.
	Tenants []RegistryTenant `json:"tenants"`
}

// validate rejects internally inconsistent registry manifests.
func (m RegistryManifest) validate() error {
	if m.Workload == "" {
		return fmt.Errorf("persist: registry manifest without workload")
	}
	seen := make(map[string]bool, len(m.Tenants))
	for _, t := range m.Tenants {
		if t.Name == "" {
			return fmt.Errorf("persist: registry manifest with unnamed tenant")
		}
		if filepath.Base(t.Name) != t.Name {
			return fmt.Errorf("persist: registry tenant %q is not a bare directory name", t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("persist: registry manifest lists tenant %q twice", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// SaveRegistryManifest atomically writes the registry manifest into
// dir (the registry root).
func SaveRegistryManifest(dir string, m RegistryManifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(dir, RegistryManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadRegistryManifest reads the registry manifest from dir. ok is
// false when none exists yet — a fresh registry root, not an error.
func LoadRegistryManifest(dir string) (m RegistryManifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, RegistryManifestName))
	if os.IsNotExist(err) {
		return RegistryManifest{}, false, nil
	}
	if err != nil {
		return RegistryManifest{}, false, fmt.Errorf("persist: registry manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return RegistryManifest{}, false, fmt.Errorf("persist: registry manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return RegistryManifest{}, false, err
	}
	return m, true, nil
}

// RemoveStaleTempsTree sweeps stranded atomic-write temp files from
// dir and every directory below it. RemoveStaleTemps cleans one
// directory — enough for a single-tenant durability dir, where startup
// always visits the root — but a registry root holds one subdirectory
// per tenant and a crash mid-eviction strands the temp inside the
// victim tenant's directory, which a cold tenant might not open again
// for days. Walking the tree at registry open bounds that exposure to
// one restart. A missing dir is a no-op; unreadable subdirectories are
// reported, not skipped silently.
func RemoveStaleTempsTree(dir string) error {
	var first error
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			if first == nil {
				first = fmt.Errorf("persist: sweep temps %s: %w", path, err)
			}
			return nil
		}
		if !d.IsDir() {
			return nil
		}
		if err := RemoveStaleTemps(path); err != nil && first == nil {
			first = err
		}
		return nil
	})
	if err != nil && first == nil {
		first = fmt.Errorf("persist: sweep temps %s: %w", dir, err)
	}
	return first
}
