package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/persist"
	"bayestree/internal/replica"
)

// This file is the primary side of WAL-shipping replication plus the
// role/fencing state both sides share. The design rides the durability
// layer end to end:
//
//   - Shipping: every durable append publishes its (shard, payload) to
//     a hub under the owning shard's write lock, so per-shard shipping
//     order is exactly apply order and the hub's shipped counter is a
//     global LSN. A /replicate subscriber attaches inside a
//     checkpoint's withAllRead — all shard locks held, no append can
//     race — so the snapshot it streams and the LSN it attaches at are
//     the same consistent cut.
//   - Fencing: the manifest carries an epoch, bumped only by Promote.
//     A follower sends its epoch with every /replicate connect; a
//     primary probed with a newer epoch persists a FENCED marker and
//     refuses writes from then on — including across restarts — until
//     a manifest at or above the fencing epoch clears it.
//   - Roles: a follower serves reads but answers writes with a 307 to
//     its primary; Promote flips it to primary by bumping the epoch
//     and cutting a checkpoint under the new one.

// replSubBuffer is a subscriber's frame buffer. A subscriber that falls
// this far behind the append stream is dropped (its channel closed);
// the follower reconnects and re-bootstraps from a fresh checkpoint,
// which is strictly cheaper than stalling every insert on a slow link.
const replSubBuffer = 8192

// replHeartbeatEvery paces the heartbeat frames that carry the shipped
// LSN to idle followers — the staleness clock's tick.
const replHeartbeatEvery = 500 * time.Millisecond

// replFrame is one shipped WAL record.
type replFrame struct {
	shard   int
	payload []byte
}

// replSub is one /replicate subscriber: a buffered frame channel plus
// the dead flag set when the publisher overflows and closes it.
type replSub struct {
	ch   chan replFrame
	dead bool
}

// replHub fans durable appends out to /replicate subscribers and owns
// the shipped-LSN counter.
type replHub struct {
	mu      sync.Mutex
	shipped uint64
	subs    map[*replSub]struct{}
	// cuts counts subscribers dropped for overflowing their buffer —
	// with bufferDepths, the back-pressure surface /stats exposes.
	cuts int64
}

func newReplHub() *replHub { return &replHub{subs: make(map[*replSub]struct{})} }

// publish ships one appended record: bumps the LSN and offers the frame
// to every live subscriber without blocking — a full subscriber is
// declared dead and its channel closed, which ends its stream.
func (h *replHub) publish(shard int, payload []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.shipped++
	if len(h.subs) == 0 {
		return
	}
	f := replFrame{shard: shard, payload: payload}
	for sub := range h.subs {
		select {
		case sub.ch <- f:
		default:
			sub.dead = true
			close(sub.ch)
			delete(h.subs, sub)
			h.cuts++
		}
	}
}

// attach registers a subscriber and returns the shipped LSN at the
// instant of attachment. Called with all shard locks held (inside a
// checkpoint's consistent cut), so every record with LSN ≤ the returned
// base is in the snapshot and every later one will arrive on ch.
func (h *replHub) attach(sub *replSub) (base uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs[sub] = struct{}{}
	return h.shipped
}

// detach removes a subscriber; safe after an overflow already did.
func (h *replHub) detach(sub *replSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok && !sub.dead {
		delete(h.subs, sub)
	}
}

// shippedLSN returns the current shipped-record count.
func (h *replHub) shippedLSN() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shipped
}

// followerCount reports the number of attached subscribers.
func (h *replHub) followerCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(len(h.subs))
}

// bufferDepths snapshots each attached subscriber's buffered frame
// count, sorted ascending (subscriber iteration order is random). A
// depth climbing toward replSubBuffer is a follower about to be cut.
func (h *replHub) bufferDepths() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.subs))
	for sub := range h.subs {
		out = append(out, len(sub.ch))
	}
	sort.Ints(out)
	return out
}

// overflowCuts reports the lifetime overflow-cut count.
func (h *replHub) overflowCuts() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cuts
}

// replState is the engine's replication role and staleness accounting.
type replState struct {
	// follower is set on a replica serving follower reads; primary
	// holds the primary's base URL for write redirects.
	follower atomic.Bool
	primary  atomic.Value // string
	// fenced is set on a primary that learned of a newer epoch; fencedBy
	// records that epoch.
	fenced   atomic.Bool
	fencedBy atomic.Uint64
	// applied is the follower's applied LSN: BaseLSN at bootstrap, +1
	// per replicated apply. lastCaughtUp is the unixnano instant the
	// follower last knew it matched the primary's shipped LSN — the
	// staleness clock's zero.
	applied      atomic.Uint64
	lastCaughtUp atomic.Int64
	// connected reports tail connectivity; followers gauges attached
	// /replicate subscribers on a primary.
	connected atomic.Bool
}

// setFollower marks the engine as a follower of the primary at url.
func (e *engine[M]) setFollower(url string) {
	e.repl.primary.Store(url)
	e.repl.follower.Store(true)
}

// followerRedirect returns the primary base URL writes should be
// redirected to, "" when not a follower.
func (e *engine[M]) followerRedirect() string {
	if !e.repl.follower.Load() {
		return ""
	}
	url, _ := e.repl.primary.Load().(string)
	return url
}

// replFenced reports whether this primary has fenced itself against a
// newer epoch.
func (e *engine[M]) replFenced() bool { return e.repl.fenced.Load() }

// fenceSelf persists the FENCED marker for epoch and flips the engine
// into the fenced state: every write from here on is refused loudly,
// including after a restart, until a manifest at or above epoch clears
// the marker.
func (e *engine[M]) fenceSelf(epoch uint64) {
	if e.dur != nil {
		// Best-effort persistence: even if the write fails the in-memory
		// fence holds for this process's lifetime.
		writeFenced(e.dur.opts.Dir, epoch)
	}
	e.repl.fencedBy.Store(epoch)
	e.repl.fenced.Store(true)
}

// setAppliedBase resets the follower's applied-LSN counter to the
// bootstrap checkpoint's base.
func (e *engine[M]) setAppliedBase(lsn uint64) { e.repl.applied.Store(lsn) }

// markCaughtUp records a primary heartbeat at shipped LSN lsn: if we
// have applied at least that much, we are provably current as of now.
func (e *engine[M]) markCaughtUp(lsn uint64) {
	if e.repl.applied.Load() >= lsn {
		e.repl.lastCaughtUp.Store(time.Now().UnixNano())
	}
}

// markCaughtUpNow unconditionally resets the staleness clock — used at
// bootstrap, when the follower state equals the shipped checkpoint by
// construction.
func (e *engine[M]) markCaughtUpNow() {
	e.repl.lastCaughtUp.Store(time.Now().UnixNano())
}

// setReplConnected records tail connectivity for /stats.
func (e *engine[M]) setReplConnected(ok bool) { e.repl.connected.Store(ok) }

// writeAllowed gates every write path by replication role: followers
// point the client at the primary, a fenced primary refuses loudly.
func (e *engine[M]) writeAllowed() error {
	if url := e.followerRedirect(); url != "" {
		return fmt.Errorf("server: read-only follower: writes go to the primary at %s", url)
	}
	if e.replFenced() {
		return fmt.Errorf("server: fenced: a newer primary (epoch %d) exists, refusing writes", e.repl.fencedBy.Load())
	}
	return nil
}

// Epoch returns the replication fencing epoch (0 before any promote, or
// when durability is off).
func (e *engine[M]) Epoch() uint64 {
	if e.dur == nil {
		return 0
	}
	d := e.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.epoch
}

// promote turns this engine into the primary of a new line of
// succession: bump the fencing epoch and cut a checkpoint under it (the
// manifest write is the durable commit of the new epoch), then drop any
// follower/fenced role state. checkpoint is the workload's Checkpoint.
func (e *engine[M]) promote(checkpoint func() error) error {
	d := e.dur
	if d == nil {
		return fmt.Errorf("server: promote requires durability (-wal-dir)")
	}
	if d.recovering.Load() {
		return errRecovering
	}
	d.ckptMu.Lock()
	d.epoch++
	d.ckptMu.Unlock()
	if err := checkpoint(); err != nil {
		d.ckptMu.Lock()
		d.epoch--
		d.ckptMu.Unlock()
		return fmt.Errorf("server: promote checkpoint: %w", err)
	}
	e.repl.follower.Store(false)
	e.repl.fenced.Store(false)
	clearFenced(d.opts.Dir)
	return nil
}

// replStats folds the replication fields into a Stats summary.
func (e *engine[M]) replStats(st *Stats) {
	if e.repl.follower.Load() {
		st.Role = "follower"
		st.AppliedLSN = e.repl.applied.Load()
		if at := e.repl.lastCaughtUp.Load(); at > 0 {
			st.StalenessMs = time.Since(time.Unix(0, at)).Milliseconds()
		} else {
			st.StalenessMs = -1
		}
		st.ReplConnected = e.repl.connected.Load()
	} else {
		st.Role = "primary"
	}
	st.Epoch = e.Epoch()
	st.Fenced = e.repl.fenced.Load()
	st.FencedBy = e.repl.fencedBy.Load()
	if e.dur != nil && e.dur.hub != nil {
		st.ReplFollowers = e.dur.hub.followerCount()
		st.ReplShippedLSN = e.dur.hub.shippedLSN()
		st.ReplSubBuffered = e.dur.hub.bufferDepths()
		st.ReplOverflowCuts = e.dur.hub.overflowCuts()
	}
}

// ---------------------------------------------------------------------
// FENCED marker

// fencedName is the persistent fencing marker's filename inside a
// durability directory: JSON {"epoch": N} meaning "a primary with epoch
// N exists; do not serve writes below it".
const fencedName = "FENCED"

// fencedMarker is the FENCED file's JSON shape.
type fencedMarker struct {
	Epoch uint64 `json:"epoch"`
}

// readFenced loads the FENCED marker, ok=false when none exists.
func readFenced(dir string) (epoch uint64, ok bool) {
	raw, err := os.ReadFile(filepath.Join(dir, fencedName))
	if err != nil {
		return 0, false
	}
	var m fencedMarker
	if json.Unmarshal(raw, &m) != nil {
		return 0, false
	}
	return m.Epoch, true
}

// writeFenced persists the FENCED marker atomically, best-effort.
func writeFenced(dir string, epoch uint64) error {
	return persist.WriteFileAtomic(filepath.Join(dir, fencedName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(fencedMarker{Epoch: epoch})
	})
}

// clearFenced removes the FENCED marker, best-effort.
func clearFenced(dir string) { os.Remove(filepath.Join(dir, fencedName)) }

// ---------------------------------------------------------------------
// /replicate endpoint

// serveReplicate streams a checkpoint plus the live WAL tail to one
// follower: the JSON header line, the snapshot bytes, then record and
// heartbeat frames until the client goes away or falls too far behind.
// ckpt is checkpointSubscribe bound to the workload's snapshot encoder.
func serveReplicate[M Model](
	e *engine[M],
	ckpt func(*replSub) (persist.Manifest, *os.File, uint64, error),
	workload string,
	w http.ResponseWriter,
	r *http.Request,
) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if e.dur == nil {
		writeError(w, http.StatusServiceUnavailable, "replication requires durability (-wal-dir)")
		return
	}
	// A caller announcing a newer epoch is a promoted replica probing
	// its old primary: fence ourselves before answering.
	if raw := r.Header.Get(replica.EpochHeader); raw != "" {
		if callerEpoch, err := strconv.ParseUint(raw, 10, 64); err == nil && callerEpoch > e.Epoch() {
			e.fenceSelf(callerEpoch)
			writeError(w, http.StatusConflict, "stale primary: fenced by epoch %d", callerEpoch)
			return
		}
	}
	if e.Recovering() {
		writeUnavailable(w, "recovering")
		return
	}
	if e.replFenced() {
		writeError(w, http.StatusServiceUnavailable, "fenced: a newer primary (epoch %d) exists", e.repl.fencedBy.Load())
		return
	}
	if e.Draining() {
		writeUnavailable(w, "draining")
		return
	}

	sub := &replSub{ch: make(chan replFrame, replSubBuffer)}
	m, snap, baseLSN, err := ckpt(sub)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	defer snap.Close()
	defer e.dur.hub.detach(sub)

	info, err := snap.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	h := replica.Header{
		Proto:         replica.Proto,
		Workload:      workload,
		Generation:    m.Generation,
		Epoch:         m.Epoch,
		Shards:        len(e.shards),
		SnapshotBytes: info.Size(),
		BaseLSN:       baseLSN,
	}
	rc := http.NewResponseController(w)
	if err := replica.WriteHeader(w, h); err != nil {
		return
	}
	if _, err := io.Copy(w, snap); err != nil {
		return
	}
	// An immediate heartbeat lets the follower mark itself caught up the
	// instant the bootstrap lands instead of waiting a tick.
	if err := replica.WriteHeartbeat(w, baseLSN); err != nil {
		return
	}
	rc.Flush()

	tick := time.NewTicker(replHeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case f, ok := <-sub.ch:
			if !ok {
				// Overflowed: end the stream; the follower re-bootstraps.
				return
			}
			rc.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := replica.WriteRecord(w, f.shard, f.payload); err != nil {
				return
			}
			// Drain whatever else is queued before flushing once.
			for drained := false; !drained; {
				select {
				case f, ok := <-sub.ch:
					if !ok {
						return
					}
					if err := replica.WriteRecord(w, f.shard, f.payload); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			rc.Flush()
		case <-tick.C:
			rc.SetWriteDeadline(time.Now().Add(10 * time.Second))
			if err := replica.WriteHeartbeat(w, e.dur.hub.shippedLSN()); err != nil {
				return
			}
			rc.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleReplicate serves GET /replicate for the classification workload.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	serveReplicate(&s.engine, func(sub *replSub) (persist.Manifest, *os.File, uint64, error) {
		return s.checkpointSubscribe(func(w io.Writer, trees []*core.MultiTree) error {
			return persist.EncodeMultiTrees(w, trees)
		}, sub)
	}, replica.WorkloadClassify, w, r)
}

// handleReplicate serves GET /replicate for the clustering workload.
func (s *ClusterServer) handleReplicate(w http.ResponseWriter, r *http.Request) {
	serveReplicate(&s.engine, func(sub *replSub) (persist.Manifest, *os.File, uint64, error) {
		return s.checkpointSubscribe(s.encodeSet, sub)
	}, replica.WorkloadCluster, w, r)
}

// ReplicateHandler returns an http.Handler exposing only /replicate —
// for serving the replication stream on a separate listener
// (-replicate-addr) so follower traffic does not share the public port.
func (s *Server) ReplicateHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/replicate", s.handleReplicate)
	return mux
}

// ReplicateHandler is the clustering form of Server.ReplicateHandler.
func (s *ClusterServer) ReplicateHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/replicate", s.handleReplicate)
	return mux
}

// Promote turns this server into the primary of a new line of
// succession: the fencing epoch is bumped and durably committed via a
// fresh checkpoint, and any follower/fenced role state is dropped.
// Callers should stop their replication tailer first.
func (s *Server) Promote() error { return s.promote(s.Checkpoint) }

// Promote is the clustering form of Server.Promote.
func (s *ClusterServer) Promote() error { return s.promote(s.Checkpoint) }
