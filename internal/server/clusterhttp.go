package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"bayestree/internal/clustree"
)

// HTTP surface of the clustering server:
//
//	POST /cluster        {"x":[...],"budget":3}           → ClusterResult JSON
//	POST /cluster        (NDJSON body, one object/line)   → NDJSON results
//	GET  /microclusters?minw=0.5                          → micro-cluster JSON
//	GET  /macroclusters?eps=0.12&minw=5                   → macro-cluster JSON
//	GET  /window?t1=100&t2=400&eps=0.12&minw=2&radius=0.1 → windowed macro clusters
//	GET  /stats                                           → ClusterStats JSON
//	GET  /healthz                                         → liveness: 200 once listening
//	GET  /readyz                                          → readiness: 503 + Retry-After until replay done / while draining
//	GET  /replicate                                       → replication stream (checkpoint + live WAL tail)
//
// On a follower, /cluster answers 307 with a Location on the primary;
// a fenced ex-primary answers 503.
//
// The NDJSON bulk form shares the classifier's windowed streaming
// machinery (see ndjsonStream): a client pipes an unbounded object
// stream through one connection and reads ingest acks while sending.

// clusterRequest is the JSON body of one ingest. Budget semantics
// match ClusterServer.Insert: 0 means the server default, negative
// means "as deep as the cap and admission allow".
type clusterRequest struct {
	X      []float64 `json:"x"`
	Budget int       `json:"budget"`
}

// clusterLineResponse is one NDJSON ingest ack: a ClusterResult on
// success, an Error on per-line failure (the stream keeps going).
type clusterLineResponse struct {
	ClusterResult
	Error string `json:"error,omitempty"`
}

// microClusterJSON is the wire form of one micro-cluster.
type microClusterJSON struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean"`
	Radius float64   `json:"radius"`
}

// macroClusterJSON is the wire form of one macro cluster.
type macroClusterJSON struct {
	Weight float64   `json:"weight"`
	Mean   []float64 `json:"mean"`
	Size   int       `json:"size"`
}

// Handler returns the HTTP handler serving the clustering endpoints.
func (s *ClusterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/microclusters", s.handleMicroClusters)
	mux.HandleFunc("/macroclusters", s.handleMacroClusters)
	mux.HandleFunc("/window", s.handleWindow)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/replicate", s.handleReplicate)
	return mux
}

func (s *ClusterServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if primary := s.followerRedirect(); primary != "" {
		redirectToPrimary(w, r, primary)
		return
	}
	if s.replFenced() {
		writeError(w, http.StatusServiceUnavailable, "fenced: a newer primary (epoch %d) exists", s.repl.fencedBy.Load())
		return
	}
	if s.Recovering() {
		writeUnavailable(w, "recovering: WAL replay in progress")
		return
	}
	if s.Draining() {
		writeUnavailable(w, "draining")
		return
	}
	if isStream(r) {
		s.streamCluster(w, r)
		return
	}
	var req clusterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, err := s.Insert(req.X, req.Budget)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// streamCluster serves the NDJSON bulk ingest form: one ack line per
// object line, in order, flushed per window. Objects in one window are
// ingested by a small worker pool — inserts to distinct shards proceed
// in parallel, each admitted individually.
func (s *ClusterServer) streamCluster(w http.ResponseWriter, r *http.Request) {
	ndjsonStream(w, r, func(lines []string) []interface{} {
		responses := make([]interface{}, len(lines))
		runPool(len(lines), 8, func(i int) {
			var req clusterRequest
			if err := json.Unmarshal([]byte(lines[i]), &req); err != nil {
				responses[i] = clusterLineResponse{Error: fmt.Sprintf("bad request line: %v", err)}
				return
			}
			res, err := s.Insert(req.X, req.Budget)
			if err != nil {
				responses[i] = clusterLineResponse{Error: err.Error()}
				return
			}
			responses[i] = clusterLineResponse{ClusterResult: res}
		})
		return responses
	}, func(msg string) interface{} {
		return clusterLineResponse{Error: msg}
	})
}

// queryFloat parses a float query parameter, using def when absent.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

func (s *ClusterServer) handleMicroClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	minw, err := queryFloat(r, "minw", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mcs := s.MicroClusters(minw)
	out := make([]microClusterJSON, len(mcs))
	for i, m := range mcs {
		out[i] = microClusterJSON{Weight: m.Weight, Mean: m.Mean, Radius: m.Radius}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"micro_clusters": out, "count": len(out),
	})
}

func (s *ClusterServer) handleMacroClusters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	eps, err1 := queryFloat(r, "eps", 0.1)
	minw, err2 := queryFloat(r, "minw", 1)
	for _, err := range []error{err1, err2} {
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	out, noise := macroJSON(s.MicroClusters(0), eps, minw)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"macro_clusters": out, "noise": noise, "eps": eps, "min_weight": minw,
	})
}

// handleWindow serves the pyramidal-store view: the macro clusters of
// the data that arrived between the retained snapshots closest to t1
// and t2 (CF subtractivity).
func (s *ClusterServer) handleWindow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	t1, err1 := queryFloat(r, "t1", 0)
	t2, err2 := queryFloat(r, "t2", 0)
	eps, err3 := queryFloat(r, "eps", 0.1)
	minw, err4 := queryFloat(r, "minw", 1)
	radius, err5 := queryFloat(r, "radius", 0.1)
	for _, err := range []error{err1, err2, err3, err4, err5} {
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	mcs, err := s.Window(t1, t2, radius)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	macros, noise := macroJSON(mcs, eps, minw)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"macro_clusters": macros, "noise": noise,
		"t1": t1, "t2": t2, "micro_clusters": len(mcs),
	})
}

// macroJSON runs the offline macro step over a micro-cluster set and
// shapes the one wire form /macroclusters and /window share.
func macroJSON(mcs []clustree.MicroCluster, eps, minw float64) ([]macroClusterJSON, int) {
	macros, noise := clustree.MacroClusters(mcs, clustree.MacroOptions{Eps: eps, MinWeight: minw})
	out := make([]macroClusterJSON, len(macros))
	for i, m := range macros {
		out[i] = macroClusterJSON{Weight: m.Weight, Mean: m.Mean, Size: len(m.Members)}
	}
	return out, len(noise)
}

func (s *ClusterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is pure liveness: 200 as long as the process is up and
// listening, even mid-recovery. Routability is /readyz's job.
func (s *ClusterServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 + Retry-After while WAL replay is
// rebuilding the model or the process is draining, 200 otherwise.
func (s *ClusterServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	writeReady(w, s.Recovering(), s.Draining())
}
