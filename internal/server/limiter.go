package server

import (
	"sync"
	"time"
)

// tokenBucket is the global admission controller: a bucket of node-read
// tokens refilled at a fixed rate. Every request asks for its desired
// refinement budget and is granted whatever whole number of tokens is
// available, down to zero — never an error. Zero is always a valid
// anytime budget (the level-0 root model answers without reading any
// node), so under overload the server degrades every answer's model
// granularity instead of queueing or shedding requests: aggregate
// refinement work tracks the configured node-read capacity, not the
// request count. This is the serving-time form of the paper's premise
// that classification quality should scale with the time the stream
// allows.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (node reads) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	// now is stubbed in tests; time.Now otherwise.
	now func() time.Time
}

// newTokenBucket returns a bucket refilled at rate node reads per second
// with the given capacity, starting full.
func newTokenBucket(rate, burst float64) *tokenBucket {
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// take grants up to want whole tokens, returning how many were granted.
// A nil bucket grants everything (admission disabled).
func (b *tokenBucket) take(want int) int {
	if b == nil || want <= 0 {
		return want
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	// Whole tokens are granted against the balance and only the grant
	// is subtracted: the balance never goes negative, so int() is the
	// floor and the fractional remainder stays in the bucket to
	// complete the next whole token. Long-run granted throughput
	// therefore tracks rate·T (pinned by the property test) — no
	// fraction is ever stranded per request.
	granted := want
	if float64(granted) > b.tokens {
		granted = int(b.tokens)
	}
	b.tokens -= float64(granted)
	return granted
}

// refund returns unspent tokens to the bucket (capped at burst) —
// granted budget the models could not absorb must not count against
// the configured capacity.
func (b *tokenBucket) refund(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens += float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}
