package server

import (
	"math/rand"
	"testing"
	"time"
)

// Long-run granted throughput must track the configured rate: many
// small concurrent-style requests with fractional refills per request
// must not strand the fractional remainder, or granted work falls
// below rate·T. Property: over simulated time T starting from an empty
// bucket, total grants lie within one burst of rate·T.
func TestTokenBucketLongRunGrantsMatchRate(t *testing.T) {
	const (
		rate  = 7.3 // deliberately non-integral
		burst = 10.0
	)
	for seed := int64(0); seed < 3; seed++ {
		b := newTokenBucket(rate, burst)
		cur := time.Unix(0, 0)
		b.now = func() time.Time { return cur }
		b.last = cur
		b.tokens = 0 // start empty so the bound is tight

		rng := rand.New(rand.NewSource(seed))
		granted := 0
		var elapsed time.Duration
		for i := 0; i < 200000; i++ {
			// 1–20 ms between small requests: each refill is a fraction
			// of a token (7.3/s · ≤20ms ≤ 0.146 tokens), the regime
			// where integer truncation would strand everything.
			step := time.Duration(1+rng.Intn(20)) * time.Millisecond
			cur = cur.Add(step)
			elapsed += step
			granted += b.take(1 + rng.Intn(4))
		}
		want := rate * elapsed.Seconds()
		if float64(granted) > want+burst+1 {
			t.Fatalf("seed %d: granted %d over %.1fs exceeds rate·T=%.1f+burst", seed, granted, elapsed.Seconds(), want)
		}
		if float64(granted) < want-burst-1 {
			t.Fatalf("seed %d: granted %d over %.1fs, want ≈ rate·T = %.1f — fractional tokens are being stranded",
				seed, granted, elapsed.Seconds(), want)
		}
	}
}

// Grants must stay whole-token while the fractional balance carries
// over exactly: granting from a bucket of 1.9 tokens leaves 0.9 for
// the next request rather than rounding it away.
func TestTokenBucketKeepsFractionalBalance(t *testing.T) {
	b := newTokenBucket(1, 100)
	cur := time.Unix(0, 0)
	b.now = func() time.Time { return cur }
	b.last = cur
	b.tokens = 1.9

	if got := b.take(5); got != 1 {
		t.Fatalf("take(5) from 1.9 tokens granted %d, want 1", got)
	}
	if b.tokens < 0.9-1e-12 || b.tokens > 0.9+1e-12 {
		t.Fatalf("fractional balance %v after grant, want 0.9", b.tokens)
	}
	// ~0.1 tokens of refill completes the next whole token (a hair over
	// 100ms absorbs binary rounding of 1.9 − 1 + 0.1).
	cur = cur.Add(101 * time.Millisecond)
	if got := b.take(1); got != 1 {
		t.Fatalf("take(1) after refill granted %d, want 1", got)
	}
}
