package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// startHTTP spins up an httptest server over a pre-filled Server.
func startHTTP(t *testing.T, shards, n int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, _ := newTestServer(t, shards, n, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHTTPSingleClassify(t *testing.T) {
	_, ts := startHTTP(t, 2, 300, Config{})
	body := `{"x":[3.0,-3.0,0.0],"budget":25}`
	resp, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Label != 1 {
		t.Fatalf("label %d, want 1 (blob at (3,-3))", res.Label)
	}
	if res.Granted != 25 || res.Requested != 25 {
		t.Fatalf("budgets %+v, want requested=granted=25", res)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := startHTTP(t, 1, 100, Config{})
	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/classify", `{"x":[1.0]}`, http.StatusBadRequest},           // wrong dim
		{"/classify", `not json`, http.StatusBadRequest},              // malformed
		{"/insert", `{"x":[1,2,3],"label":9}`, http.StatusBadRequest}, // unknown label
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %q: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatalf("get classify: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /classify: status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPNDJSONBatch is the acceptance-criterion test: several clients
// concurrently stream NDJSON batches with per-request anytime budgets
// and must each get one in-order response line per request line.
func TestHTTPNDJSONBatch(t *testing.T) {
	_, ts := startHTTP(t, 4, 600, Config{})
	const clients, lines = 6, 150
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var in bytes.Buffer
			labels := make([]int, lines)
			budgets := make([]int, lines)
			for i := 0; i < lines; i++ {
				x, label := genPoint(rng)
				labels[i] = label
				budgets[i] = 1 + rng.Intn(60) // per-request anytime budget
				fmt.Fprintf(&in, `{"x":[%g,%g,%g],"budget":%d}`+"\n", x[0], x[1], x[2], budgets[i])
			}
			resp, err := http.Post(ts.URL+"/classify", "application/x-ndjson", &in)
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			got, correct := 0, 0
			for sc.Scan() {
				var line lineResponse
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					errc <- fmt.Errorf("line %d: %v", got, err)
					return
				}
				if line.Error != "" {
					errc <- fmt.Errorf("line %d: server error %q", got, line.Error)
					return
				}
				if line.Granted != budgets[got] {
					errc <- fmt.Errorf("line %d: granted %d, want %d (admission disabled)", got, line.Granted, budgets[got])
					return
				}
				if line.Label == labels[got] {
					correct++
				}
				got++
			}
			if got != lines {
				errc <- fmt.Errorf("got %d response lines, want %d", got, lines)
				return
			}
			if float64(correct)/lines < 0.9 {
				errc <- fmt.Errorf("accuracy %.2f < 0.9", float64(correct)/lines)
			}
		}(int64(cl + 100))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestHTTPNDJSONBadLines: malformed lines get per-line errors, the
// stream keeps going.
func TestHTTPNDJSONBadLines(t *testing.T) {
	_, ts := startHTTP(t, 1, 100, Config{})
	in := `{"x":[3.0,-3.0,0.0],"budget":5}
garbage
{"x":[0.0,0.0,0.0],"budget":5}
`
	resp, err := http.Post(ts.URL+"/classify?stream=1", "text/plain", strings.NewReader(in))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var lines []lineResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l lineResponse
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("decode: %v", err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("%d response lines, want 3", len(lines))
	}
	if lines[0].Error != "" || lines[2].Error != "" {
		t.Fatalf("good lines errored: %+v", lines)
	}
	if lines[1].Error == "" {
		t.Fatal("garbage line did not error")
	}
}

func TestHTTPInsertAndStats(t *testing.T) {
	s, ts := startHTTP(t, 2, 50, Config{})
	resp, err := http.Post(ts.URL+"/insert", "application/json",
		strings.NewReader(`{"x":[3.0,-3.0,0.2],"label":1}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	// NDJSON bulk insert.
	bulk := `{"x":[0.1,0.1,0.0],"label":0}
{"x":[6.1,-6.0,0.0],"label":2}
{"x":[1,2],"label":0}
`
	resp, err = http.Post(ts.URL+"/insert", "application/x-ndjson", strings.NewReader(bulk))
	if err != nil {
		t.Fatalf("bulk insert: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	acks := 0
	errLines := 0
	for sc.Scan() {
		var ack map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &ack); err != nil {
			t.Fatalf("ack decode: %v", err)
		}
		if ack["error"] != nil {
			errLines++
		}
		acks++
	}
	resp.Body.Close()
	if acks != 3 || errLines != 1 {
		t.Fatalf("bulk: %d acks (%d errors), want 3 acks 1 error", acks, errLines)
	}
	if s.Len() != 53 {
		t.Fatalf("server size %d, want 53", s.Len())
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Observations != 53 || st.Shards != 2 || st.Inserts != 53 {
		t.Fatalf("stats %+v, want 53 observations (all via Insert) over 2 shards", st)
	}

	// The SoA counters' JSON field names are API: serve one query, then
	// pin the wire names and check a refreshed server reports mirror
	// activity and a mirror-served classification.
	resp, err = http.Post(ts.URL+"/classify", "application/json",
		strings.NewReader(`{"x":[3.0,-3.0,0.2],"budget":10}`))
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	for _, key := range []string{"soa_hits", "soa_misses", "soa_rebuilds", "soa_patches", "soa_invalidations"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats JSON missing wire name %q", key)
		}
	}
	if hits, _ := raw["soa_hits"].(float64); hits < 1 {
		t.Errorf("soa_hits = %v after a classify on a refreshed server, want >= 1", raw["soa_hits"])
	}
	if r, _ := raw["soa_rebuilds"].(float64); r < 1 {
		t.Errorf("soa_rebuilds = %v after inserts, want >= 1", raw["soa_rebuilds"])
	}
}

func TestHTTPDraining(t *testing.T) {
	s, ts := startHTTP(t, 1, 100, Config{})
	resp, _ := http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d before drain", resp.StatusCode)
	}
	s.SetDraining(true)
	// Liveness is unaffected by draining; readiness fails with a
	// Retry-After hint.
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d during drain, want 200", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d during drain, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("readyz 503 during drain has no Retry-After")
	}
	resp, _ = http.Post(ts.URL+"/classify", "application/json",
		strings.NewReader(`{"x":[0.0,0.0,0.0],"budget":5}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify %d during drain, want 503", resp.StatusCode)
	}
}

// TestHTTPStatsReplicationHubWireNames pins the replication-hub
// back-pressure wire names: a durable primary with one attached
// subscriber must report per-subscriber buffer occupancy and the
// lifetime overflow-cut count under stable JSON keys — the surface the
// scatter-gather proxy's prober (and operators) watch.
func TestHTTPStatsReplicationHubWireNames(t *testing.T) {
	s := newDurableClass(t, t.TempDir(), 2)
	defer s.CloseDurability()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub := &replSub{ch: make(chan replFrame, 8)}
	s.dur.hub.attach(sub)
	defer s.dur.hub.detach(sub)
	if err := s.Insert([]float64{3.0, -3.0, 0.2}, 1); err != nil {
		t.Fatalf("insert: %v", err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	for _, key := range []string{"repl_sub_buffered", "repl_overflow_cuts"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats JSON missing wire name %q", key)
		}
	}
	depths, _ := raw["repl_sub_buffered"].([]interface{})
	if len(depths) != 1 {
		t.Fatalf("repl_sub_buffered = %v, want one entry for the attached subscriber", raw["repl_sub_buffered"])
	}
	if d, _ := depths[0].(float64); d != 1 {
		t.Errorf("repl_sub_buffered[0] = %v after one undrained insert, want 1", depths[0])
	}
	if cuts, ok := raw["repl_overflow_cuts"].(float64); !ok || cuts != 0 {
		t.Errorf("repl_overflow_cuts = %v, want 0", raw["repl_overflow_cuts"])
	}
}

// TestHTTPFollowerReadyzBootstrapping pins the follower's pre-bootstrap
// readiness shape: /readyz answers the uniform plain-text 503 with
// Retry-After (as primaries do during recovery), so probers back off
// the same way whatever the reason.
func TestHTTPFollowerReadyzBootstrapping(t *testing.T) {
	f, err := NewFollowerServer(DurabilityOptions{Dir: t.TempDir()}, Config{}, "http://unreachable:1")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-bootstrap readyz %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pre-bootstrap readyz has no Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "json") {
		t.Fatalf("pre-bootstrap readyz Content-Type %q, want the plain-text shape primaries use", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if got := strings.TrimSpace(string(body)); got != "bootstrapping" {
		t.Fatalf("pre-bootstrap readyz body %q, want \"bootstrapping\"", got)
	}
	// Liveness stays up while readiness is down.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pre-bootstrap healthz %d, want 200", resp2.StatusCode)
	}
}
