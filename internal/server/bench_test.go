package server

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"bayestree/internal/core"
)

// benchServer builds a pre-filled server outside the timed region.
func benchServer(b *testing.B, shards int, cfg Config) *Server {
	b.Helper()
	s, err := NewEmpty(shards, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, cfg)
	if err != nil {
		b.Fatalf("new server: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x, label := genPoint(rng)
		if err := s.Insert(x, label); err != nil {
			b.Fatalf("insert: %v", err)
		}
	}
	return s
}

// BenchmarkServerClassify measures served classifications per second as
// a function of shard count and per-request budget (admission disabled,
// so the numbers isolate the fan-out and locking overhead). Run with
// -benchtime and -cpu to sweep; EXPERIMENTS.md records the results.
func BenchmarkServerClassify(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, budget := range []int{10, 50, 200} {
			b.Run(fmt.Sprintf("shards=%d/budget=%d", shards, budget), func(b *testing.B) {
				s := benchServer(b, shards, Config{})
				var seed atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seed.Add(1)))
					for pb.Next() {
						x, _ := genPoint(rng)
						if _, err := s.Classify(x, budget); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkServerClassifyExact is the pointer-layout baseline of
// BenchmarkServerClassify: ExactDescent disables the structure-of-arrays
// mirror, so diffing the two benchmarks prices the vectorized descent.
func BenchmarkServerClassifyExact(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, budget := range []int{10, 50, 200} {
			b.Run(fmt.Sprintf("shards=%d/budget=%d", shards, budget), func(b *testing.B) {
				s := benchServer(b, shards, Config{Query: core.ClassifierOptions{ExactDescent: true}})
				var seed atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seed.Add(1)))
					for pb.Next() {
						x, _ := genPoint(rng)
						if _, err := s.Classify(x, budget); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkServerClassifyBatch measures the fused batch path: same-shard
// queries advance in lockstep rounds sorted by node, so concurrent
// descents share cache lines of the flat mirror.
func BenchmarkServerClassifyBatch(b *testing.B) {
	for _, batch := range []int{16, 128} {
		b.Run(fmt.Sprintf("batch=%d/budget=50", batch), func(b *testing.B) {
			s := benchServer(b, 4, Config{})
			rng := rand.New(rand.NewSource(7))
			xs := make([][]float64, batch)
			budgets := make([]int, batch)
			for i := range xs {
				xs[i], _ = genPoint(rng)
				budgets[i] = 50
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ClassifyBatchBudgets(xs, budgets, 4); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "objects/s")
		})
	}
}

// BenchmarkServerMixed measures classification throughput with a
// concurrent 5% insert write load — the serving-while-learning regime
// the per-shard RW locks exist for.
func BenchmarkServerMixed(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := benchServer(b, shards, Config{})
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				i := 0
				for pb.Next() {
					x, label := genPoint(rng)
					if i%20 == 19 {
						if err := s.Insert(x, label); err != nil {
							b.Error(err)
							return
						}
					} else if _, err := s.Classify(x, 50); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}
