package server

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/stream"
	"bayestree/internal/wal"
)

// The durability acceptance property: killing a durable server
// mid-stream (simulated by abandoning it without Close or Checkpoint —
// exactly what a crashed process leaves on disk, since every append is
// a single write syscall) and recovering from snapshot + WAL replay
// must reproduce the exact model bytes of an uninterrupted run.

// classPoints draws a deterministic labelled stream.
func classPoints(n int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(7))
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		label := rng.Intn(3)
		xs[i] = []float64{
			float64(label)*3 + 0.4*rng.NormFloat64(),
			-float64(label)*3 + 0.4*rng.NormFloat64(),
			rng.NormFloat64(),
		}
		ys[i] = label
	}
	return xs, ys
}

// newDurableClass opens a durable classification server over empty
// shards and finishes recovery.
func newDurableClass(t *testing.T, dir string, shards int) *Server {
	t.Helper()
	s, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, func() (*Server, error) {
		return NewEmpty(shards, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	return s
}

// crash simulates a process kill for a durable server: the kernel
// would close every descriptor — releasing the durability directory's
// flock — while leaving user-space state unsynced, so only the lock is
// released here. WAL contents stay exactly as the "dead" process left
// them.
func crash(t *testing.T, dur *durState) {
	t.Helper()
	if dur == nil || dur.lock == nil {
		t.Fatal("crash: no durability lock held")
	}
	if err := dur.lock.Close(); err != nil {
		t.Fatal(err)
	}
}

// snapshotBytes is a server's full model state, the digit-identity
// comparand.
func snapshotBytes(t *testing.T, w interface{ WriteSnapshot(io.Writer) error }) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := w.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDurableClassKillRestartDigitIdentical(t *testing.T) {
	const n, kill = 400, 137
	xs, ys := classPoints(n)
	dir := t.TempDir()

	// Interrupted run: insert the first kill points, then "crash".
	a := newDurableClass(t, dir, 3)
	for i := 0; i < kill; i++ {
		if err := a.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	// No Close, no Checkpoint: the process is gone.
	crash(t, a.dur)

	// Recover and finish the stream.
	a2 := newDurableClass(t, dir, 3)
	if got := a2.Stats().WALReplayed; got != kill {
		t.Fatalf("replayed %d records, want %d", got, kill)
	}
	for i := kill; i < n; i++ {
		if err := a2.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Uninterrupted reference run, no WAL at all.
	b, err := NewEmpty(3, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}

	if sa, sb := snapshotBytes(t, a2), snapshotBytes(t, b); !bytes.Equal(sa, sb) {
		t.Fatalf("recovered model bytes differ from uninterrupted run: %d vs %d bytes", len(sa), len(sb))
	}
	sta, stb := a2.Stats(), b.Stats()
	if sta.Observations != stb.Observations || sta.Nodes != stb.Nodes || sta.Weight != stb.Weight {
		t.Fatalf("stats diverge: recovered obs=%d nodes=%d weight=%v, uninterrupted obs=%d nodes=%d weight=%v",
			sta.Observations, sta.Nodes, sta.Weight, stb.Observations, stb.Nodes, stb.Weight)
	}
	// And the recovered server answers queries identically.
	for i := 0; i < 25; i++ {
		ra, err := a2.Classify(xs[i], 20)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Classify(xs[i], 20)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Label != rb.Label {
			t.Fatalf("point %d: recovered label %d != uninterrupted %d", i, ra.Label, rb.Label)
		}
	}
	a2.CloseDurability()
}

// newDurableCluster opens a durable clustering server (pyramidal store
// on, so recording boundaries are part of the replayed state) and
// finishes recovery.
func newDurableCluster(t *testing.T, dir string, shards int) *ClusterServer {
	t.Helper()
	copts := ClusterOptions{SnapshotEvery: 64}
	s, err := OpenDurableCluster(DurabilityOptions{Dir: dir}, Config{}, copts, func() (*ClusterServer, error) {
		return NewCluster(clustree.DefaultConfig(2), shards, Config{}, copts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableClusterKillRestartDigitIdentical(t *testing.T) {
	const n, kill = 400, 137
	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, n)
	budgets := make([]int, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		budgets[i] = 1 + i%7 // budget 1 exercises the parked path
	}
	dir := t.TempDir()

	a := newDurableCluster(t, dir, 3)
	for i := 0; i < kill; i++ {
		if _, err := a.Insert(xs[i], budgets[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Crash.
	crash(t, a.dur)

	a2 := newDurableCluster(t, dir, 3)
	// No reads before the stream finishes: a ClusTree decays lazily, so
	// reading weights fades them in place — an extra observation on one
	// run would perturb float rounding versus the other. Stats are
	// compared at the symmetric end-of-stream position below.
	if a2.Clock() != kill {
		t.Fatalf("recovered clock %d, want %d", a2.Clock(), kill)
	}
	for i := kill; i < n; i++ {
		if _, err := a2.Insert(xs[i], budgets[i]); err != nil {
			t.Fatal(err)
		}
	}

	b, err := NewCluster(clustree.DefaultConfig(2), 3, Config{}, ClusterOptions{SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := b.Insert(xs[i], budgets[i]); err != nil {
			t.Fatal(err)
		}
	}

	if sa, sb := snapshotBytes(t, a2), snapshotBytes(t, b); !bytes.Equal(sa, sb) {
		t.Fatalf("recovered cluster state differs from uninterrupted run: %d vs %d bytes", len(sa), len(sb))
	}
	sta, stb := a2.Stats(), b.Stats()
	if sta.Clock != stb.Clock || sta.MicroClusters != stb.MicroClusters ||
		sta.Parked != stb.Parked || sta.SnapshotsRetained != stb.SnapshotsRetained ||
		sta.Weight != stb.Weight {
		t.Fatalf("cluster stats diverge: %+v vs %+v", sta, stb)
	}
	if sta.WALReplayed != kill {
		t.Fatalf("replayed %d records, want %d", sta.WALReplayed, kill)
	}
	a2.CloseDurability()
}

// TestDurableDrainCheckpointTruncates: a drain-style Checkpoint folds
// the WAL into the snapshot, so the next start replays nothing.
func TestDurableDrainCheckpointTruncates(t *testing.T) {
	xs, ys := classPoints(100)
	dir := t.TempDir()
	a := newDurableClass(t, dir, 2)
	for i := range xs {
		if err := a.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	gen := a.Generation()
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != gen+1 {
		t.Fatalf("generation %d after checkpoint, want %d", a.Generation(), gen+1)
	}
	if err := a.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	a2 := newDurableClass(t, dir, 2)
	st := a2.Stats()
	if st.WALReplayed != 0 {
		t.Fatalf("clean restart replayed %d records, want 0", st.WALReplayed)
	}
	if st.Observations != 100 {
		t.Fatalf("clean restart lost data: %d observations, want 100", st.Observations)
	}
	a2.CloseDurability()
}

// TestDurableRecoveringGate: until Recover completes the server fails
// readiness checks (liveness stays 200), rejects writes over HTTP with
// 503 and programmatic writes with an error — and serves normally
// afterwards.
func TestDurableRecoveringGate(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, func() (*Server, error) {
		return NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Recovering() {
		t.Fatal("durable server not recovering before Recover")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("/readyz 503 during recovery has no Retry-After")
	}
	// Liveness stays green the whole time: a recovering process is
	// healthy, just not ready.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during recovery = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/insert", "application/json", strings.NewReader(`{"x":[1,2,3],"label":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/insert during recovery = %d, want 503", resp.StatusCode)
	}
	if err := s.Insert([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("programmatic insert during recovery succeeded")
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats during recovery = %d, want 200", resp.StatusCode)
	}

	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatalf("second Recover not idempotent: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", resp.StatusCode)
	}
	if err := s.Insert([]float64{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
	s.CloseDurability()
}

// TestDurableTornTailDropped: a crash mid-append leaves a torn final
// record; recovery drops exactly it and reports the drop in stats.
func TestDurableTornTailDropped(t *testing.T) {
	xs, ys := classPoints(60)
	dir := t.TempDir()
	a := newDurableClass(t, dir, 1)
	for i := range xs {
		if err := a.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Crash, then tear the last few bytes off the shard's active segment.
	crash(t, a.dur)
	tearLastSegment(t, filepath.Join(dir, "shard-000"), 5)

	a2 := newDurableClass(t, dir, 1)
	st := a2.Stats()
	if st.WALDroppedRecords != 1 {
		t.Fatalf("dropped %d records, want 1", st.WALDroppedRecords)
	}
	if st.Observations != 59 {
		t.Fatalf("observations %d after torn-tail recovery, want 59", st.Observations)
	}
	a2.CloseDurability()
}

// tearLastSegment truncates n bytes off the largest-index non-empty
// segment in a shard WAL directory.
func tearLastSegment(t *testing.T, shardDir string, n int64) {
	t.Helper()
	ents, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 && (target == "" || e.Name() > filepath.Base(target)) {
			target = filepath.Join(shardDir, e.Name())
		}
	}
	if target == "" {
		t.Fatal("no non-empty segment to tear")
	}
	fi, err := os.Stat(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(target, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCorruptSegmentFatal: mid-log corruption must fail recovery
// loudly rather than silently serving a partial model.
func TestDurableCorruptSegmentFatal(t *testing.T) {
	xs, ys := classPoints(60)
	dir := t.TempDir()
	a := newDurableClass(t, dir, 1)
	for i := range xs {
		if err := a.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	crash(t, a.dur)
	// Flip a byte in the middle of the segment: bit rot, not a torn tail.
	shardDir := filepath.Join(dir, "shard-000")
	ents, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		path := filepath.Join(shardDir, e.Name())
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 {
			continue
		}
		buf[len(buf)/2] ^= 0xFF
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		break
	}
	s, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, func() (*Server, error) {
		return NewEmpty(1, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Recover over corrupt segment = %v, want ErrCorrupt", err)
	}
}

// TestDurableLegacySnapshotBootstrap: a pre-WAL snapshot file (the PR 4
// deployment) migrates into a fresh durability directory via bootstrap,
// and the old file keeps loading unchanged without -wal-dir.
func TestDurableLegacySnapshotBootstrap(t *testing.T) {
	xs, ys := classPoints(80)
	legacy, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := legacy.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(t.TempDir(), "legacy.btsn")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// WAL-less startup from the legacy file is unchanged.
	f, err = os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := FromSnapshot(f, Config{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 80 {
		t.Fatalf("legacy WAL-less load: %d observations, want 80", plain.Len())
	}
	if st := plain.Stats(); st.WALEnabled || st.Recovering {
		t.Fatalf("WAL-less server reports durability state: %+v", st)
	}

	// Migration: the legacy file seeds a fresh durability directory.
	dir := t.TempDir()
	s, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, func() (*Server, error) {
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return FromSnapshot(f, Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 80 {
		t.Fatalf("migrated server: %d observations, want 80", s.Len())
	}
	if err := s.Insert([]float64{0.5, -0.5, 0}, 1); err != nil {
		t.Fatal(err)
	}
	s.CloseDurability()

	// A crash right after migration recovers snapshot + the one insert.
	s2 := newDurableClass(t, dir, 2)
	if s2.Len() != 81 {
		t.Fatalf("recovered migrated server: %d observations, want 81", s2.Len())
	}
	s2.CloseDurability()
}

// TestDurableStreamEngineTransparent: ingest driven through the
// stream.Engine batch path is logged like any other insert — the WAL
// is transparent to the streaming layer.
func TestDurableStreamEngineTransparent(t *testing.T) {
	xs, ys := classPoints(240)
	dir := t.TempDir()
	s := newDurableClass(t, dir, 2)
	// Seed so the classification half of the stream run has mass.
	for i := 0; i < 40; i++ {
		if err := s.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	items := make([]stream.Item, 0, 200)
	for i := 40; i < 240; i++ {
		items = append(items, stream.Item{X: xs[i], Label: ys[i], Labeled: true})
	}
	_, err := stream.RunBatch(s, items, stream.Constant{Interval: 0.01},
		stream.Budgeter{NodesPerSecond: 1000, MaxNodes: 16}, 1, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 240 {
		t.Fatalf("engine holds %d observations, want 240", s.Len())
	}
	// Crash + recover: every stream-learned observation survives.
	crash(t, s.dur)
	s2 := newDurableClass(t, dir, 2)
	if s2.Len() != 240 {
		t.Fatalf("recovered %d observations, want 240", s2.Len())
	}
	if st := s2.Stats(); st.WALReplayed != 240 {
		t.Fatalf("replayed %d, want 240", st.WALReplayed)
	}
	s2.CloseDurability()
}

// TestDurableWALStats: the serving stats surface the durability
// counters.
func TestDurableWALStats(t *testing.T) {
	xs, ys := classPoints(30)
	dir := t.TempDir()
	s := newDurableClass(t, dir, 2)
	for i := range xs {
		if err := s.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if !st.WALEnabled || st.Recovering {
		t.Fatalf("unexpected durability state: %+v", st)
	}
	if st.WALAppends != 30 || st.WALBytes == 0 || st.WALSyncs == 0 {
		t.Fatalf("WAL counters: appends=%d bytes=%d syncs=%d", st.WALAppends, st.WALBytes, st.WALSyncs)
	}
	if st.SnapshotGeneration == 0 {
		t.Fatal("no checkpoint generation after recovery")
	}
	s.CloseDurability()
	// Closed WAL: inserts must fail rather than silently go unlogged.
	if err := s.Insert(xs[0], ys[0]); err == nil {
		t.Fatal("insert after CloseDurability succeeded")
	}
}

// TestDurableUnknownLabelRejectedBeforeLogging: pre-validation keeps
// impossible records out of the log, so replay can never fail on apply.
func TestDurableUnknownLabelRejectedBeforeLogging(t *testing.T) {
	dir := t.TempDir()
	s := newDurableClass(t, dir, 1)
	if err := s.Insert([]float64{1, 2, 3}, 99); err == nil {
		t.Fatal("unknown label accepted")
	}
	if err := s.Insert([]float64{1, math.NaN(), 3}, 1); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if st := s.Stats(); st.WALAppends != 0 {
		t.Fatalf("rejected inserts reached the WAL: %d appends", st.WALAppends)
	}
	s.CloseDurability()
	// The next recovery replays an empty log cleanly.
	s2 := newDurableClass(t, dir, 1)
	if s2.Len() != 0 {
		t.Fatalf("recovered %d observations, want 0", s2.Len())
	}
	s2.CloseDurability()
}
