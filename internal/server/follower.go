package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bayestree/internal/persist"
	"bayestree/internal/replica"
	"bayestree/internal/wal"
)

// This file is the replica's model layer: a Follower wraps a durable
// workload server, rebuilds it from each checkpoint a primary ships
// (replica.Sink's Bootstrap), applies the live WAL tail through the
// server's own log-before-apply path, and serves follower reads the
// whole time. Because a bootstrap writes the shipped snapshot and a
// matching manifest into the follower's own durability directory and
// then reopens through the standard recovery path, a follower's
// on-disk state is the same shape as a primary's — which is exactly
// what makes Promote a local operation: bump the epoch, checkpoint,
// start taking writes.

// errNoLocalState is the sentinel a follower's bootstrap callback
// returns when the durability directory has no checkpoint yet: not an
// error, just "wait for the primary to ship one".
var errNoLocalState = errors.New("server: follower has no local state yet")

// replicaModel is the workload-server surface a Follower drives. Both
// *Server and *ClusterServer satisfy it (the lower-case methods are
// promoted from the embedded engine).
type replicaModel interface {
	comparable
	NumShards() int
	Handler() http.Handler
	Recover() error
	Checkpoint() error
	Promote() error
	Epoch() uint64
	ApplyReplicated(shard int, payload []byte) error
	SetDraining(v bool)
	Close()
	CloseDurability() error
	setFollower(url string)
	setAppliedBase(lsn uint64)
	markCaughtUp(lsn uint64)
	markCaughtUpNow()
	setReplConnected(ok bool)
}

// Follower is a replica of a primary serving process: it implements
// replica.Sink over a durable workload server, serving follower reads
// (writes answer 307 to the primary) and staying byte-identical to the
// primary's logged state. S is *Server or *ClusterServer.
type Follower[S replicaModel] struct {
	dopts      DurabilityOptions
	workload   string
	primaryURL string
	open       func() (S, error)

	mu       sync.RWMutex
	cur      S // zero until the first bootstrap (or warm start) lands
	promoted atomic.Bool
}

// NewFollowerServer opens a classification follower over the durability
// directory at dopts.Dir, replicating from the primary at primaryURL.
// Existing local state (a previous bootstrap's checkpoint + WAL tail)
// is recovered and served immediately; otherwise reads answer 503 until
// the first bootstrap arrives. Drive it with a replica.Tailer.
func NewFollowerServer(dopts DurabilityOptions, cfg Config, primaryURL string) (*Follower[*Server], error) {
	f := &Follower[*Server]{
		dopts:      dopts,
		workload:   replica.WorkloadClassify,
		primaryURL: primaryURL,
	}
	f.open = func() (*Server, error) {
		return OpenDurableServer(dopts, cfg, func() (*Server, error) { return nil, errNoLocalState })
	}
	return f, f.warmStart()
}

// NewFollowerCluster is NewFollowerServer for the clustering workload.
func NewFollowerCluster(dopts DurabilityOptions, cfg Config, copts ClusterOptions, primaryURL string) (*Follower[*ClusterServer], error) {
	f := &Follower[*ClusterServer]{
		dopts:      dopts,
		workload:   replica.WorkloadCluster,
		primaryURL: primaryURL,
	}
	f.open = func() (*ClusterServer, error) {
		return OpenDurableCluster(dopts, cfg, copts, func() (*ClusterServer, error) { return nil, errNoLocalState })
	}
	return f, f.warmStart()
}

// warmStart recovers existing local state so a restarted follower
// serves reads before its tail reconnects. No local state is fine —
// the first bootstrap supplies it.
func (f *Follower[S]) warmStart() error {
	s, err := f.open()
	if err != nil {
		if errors.Is(err, errNoLocalState) {
			return nil
		}
		return err
	}
	if err := s.Recover(); err != nil {
		s.CloseDurability()
		return err
	}
	s.setFollower(f.primaryURL)
	f.mu.Lock()
	f.cur = s
	f.mu.Unlock()
	return nil
}

// current returns the follower's live server (zero before the first
// bootstrap).
func (f *Follower[S]) current() S {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cur
}

// Current returns the follower's live workload server, or the zero
// value before the first bootstrap lands. Promotion does not change the
// returned server — after Promote it simply serves writes too.
func (f *Follower[S]) Current() S { return f.current() }

// Bootstrap implements replica.Sink: it replaces the follower's state
// with the shipped checkpoint. The snapshot is written into the
// durability directory with a manifest whose ShardStart points at
// not-yet-existing WAL segments, then reopened through the standard
// recovery path — so the on-disk layout is indistinguishable from a
// primary that just checkpointed, and every subsequent Apply is logged
// before it lands.
func (f *Follower[S]) Bootstrap(h replica.Header, snapshot io.Reader) error {
	var zero S
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted.Load() {
		return fmt.Errorf("server: promoted: refusing bootstrap from %s", f.primaryURL)
	}
	if h.Workload != f.workload {
		return fmt.Errorf("server: primary ships workload %q, this follower serves %q", h.Workload, f.workload)
	}
	if h.Generation == 0 {
		return fmt.Errorf("server: primary shipped generation 0")
	}
	// Retire the old incarnation first: its WAL and flock must be
	// released before the reopen below can take them. Reads hitting the
	// old handler mid-swap still answer from its in-memory trees.
	if f.cur != zero {
		f.cur.Close()
		if err := f.cur.CloseDurability(); err != nil {
			return fmt.Errorf("server: retire previous state: %w", err)
		}
		f.cur = zero
	}
	name := snapshotName(h.Generation)
	var copied int64
	if err := persist.WriteFileAtomic(filepath.Join(f.dopts.Dir, name), func(w io.Writer) error {
		n, err := io.Copy(w, snapshot)
		copied = n
		return err
	}); err != nil {
		return fmt.Errorf("server: bootstrap snapshot: %w", err)
	}
	if copied != h.SnapshotBytes {
		os.Remove(filepath.Join(f.dopts.Dir, name))
		return fmt.Errorf("server: bootstrap snapshot: %d bytes, header promised %d", copied, h.SnapshotBytes)
	}
	starts := make([]uint64, h.Shards)
	for i := range starts {
		seg, err := wal.NextSegment(shardWALDir(f.dopts.Dir, i))
		if err != nil {
			return err
		}
		starts[i] = seg
	}
	m := persist.Manifest{
		Generation: h.Generation,
		Epoch:      h.Epoch,
		Snapshot:   name,
		Shards:     h.Shards,
		ShardStart: starts,
	}
	if err := persist.SaveManifest(f.dopts.Dir, m); err != nil {
		return err
	}
	// Following the shipped epoch supersedes any fencing this directory
	// carried from an older line of succession.
	clearFenced(f.dopts.Dir)
	// Other snapshot generations are now garbage, best-effort removal.
	if others, err := filepath.Glob(filepath.Join(f.dopts.Dir, "snapshot-*.btsn")); err == nil {
		for _, p := range others {
			if filepath.Base(p) != name {
				os.Remove(p)
			}
		}
	}
	s, err := f.open()
	if err != nil {
		return err
	}
	// The manifest's ShardStart names fresh segments, so this replays
	// nothing; it opens the logs and flips the server into serving mode.
	if err := s.Recover(); err != nil {
		s.CloseDurability()
		return err
	}
	if s.NumShards() != h.Shards {
		s.Close()
		s.CloseDurability()
		return fmt.Errorf("server: bootstrapped model has %d shards, header promised %d", s.NumShards(), h.Shards)
	}
	s.setFollower(f.primaryURL)
	s.setAppliedBase(h.BaseLSN)
	s.markCaughtUpNow()
	f.cur = s
	return nil
}

// Apply implements replica.Sink: one shipped WAL record, logged then
// applied on the owning shard.
func (f *Follower[S]) Apply(shard int, payload []byte) error {
	var zero S
	s := f.current()
	if s == zero {
		return fmt.Errorf("server: apply before bootstrap")
	}
	return s.ApplyReplicated(shard, payload)
}

// CaughtUp implements replica.Sink: a primary heartbeat at shipped LSN
// lsn resets the staleness clock if we have applied that far.
func (f *Follower[S]) CaughtUp(lsn uint64) {
	var zero S
	if s := f.current(); s != zero {
		s.markCaughtUp(lsn)
	}
}

// Connected implements replica.Sink, recording tail connectivity for
// /stats.
func (f *Follower[S]) Connected(ok bool) {
	var zero S
	if s := f.current(); s != zero {
		s.setReplConnected(ok)
	}
}

// Epoch returns the follower's current fencing epoch — what its tailer
// announces on every connect. Before the first bootstrap it falls back
// to the on-disk manifest (0 when none).
func (f *Follower[S]) Epoch() uint64 {
	var zero S
	if s := f.current(); s != zero {
		return s.Epoch()
	}
	if m, ok, err := persist.LoadManifest(f.dopts.Dir); err == nil && ok {
		return m.Epoch
	}
	return 0
}

// Handler serves the follower's read surface: the wrapped server's full
// handler once state exists (its write endpoints answer 307 to the
// primary), and 503 + Retry-After (with a live /healthz) before the
// first bootstrap.
func (f *Follower[S]) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var zero S
		if s := f.current(); s != zero {
			s.Handler().ServeHTTP(w, r)
			return
		}
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		if r.URL.Path == "/readyz" {
			// The uniform not-ready shape (plain text, Retry-After) that
			// primaries use during recovery, so probers back off the same
			// way whatever the reason.
			writeNotReady(w, "bootstrapping")
			return
		}
		writeUnavailable(w, "replica: awaiting first bootstrap from primary %s", f.primaryURL)
	})
}

// Promote turns this follower into the primary of a new line of
// succession: the wrapped server bumps its fencing epoch, durably
// commits it with a checkpoint and starts accepting writes. Stop the
// replication tailer before calling. A best-effort probe tells the old
// primary about the new epoch so it fences itself immediately if it is
// still (or again) alive; a dead primary learns the same the moment
// anything probes it with the new epoch.
func (f *Follower[S]) Promote() error {
	var zero S
	s := f.current()
	if s == zero {
		return fmt.Errorf("server: nothing to promote: no bootstrap received yet")
	}
	if !f.promoted.CompareAndSwap(false, true) {
		return nil
	}
	if err := s.Promote(); err != nil {
		f.promoted.Store(false)
		return err
	}
	go fenceProbe(f.primaryURL, s.Epoch())
	return nil
}

// fenceProbe sends one best-effort /replicate probe carrying epoch so a
// still-running old primary fences itself without waiting to be probed
// by something else. Failures are expected (the primary is usually
// dead — that is why we promoted) and ignored.
func fenceProbe(primaryURL string, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primaryURL+"/replicate", nil)
	if err != nil {
		return
	}
	req.Header.Set(replica.EpochHeader, replica.FormatEpoch(epoch))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// SetDraining forwards draining state to the wrapped server (no-op
// before the first bootstrap).
func (f *Follower[S]) SetDraining(v bool) {
	var zero S
	if s := f.current(); s != zero {
		s.SetDraining(v)
	}
}

// Close stops the wrapped server's background maintenance (no-op before
// the first bootstrap).
func (f *Follower[S]) Close() {
	var zero S
	if s := f.current(); s != zero {
		s.Close()
	}
}

// Persist cuts a final checkpoint and closes the durability layer — the
// follower's shutdown path. Stop the tailer first.
func (f *Follower[S]) Persist() error {
	var zero S
	s := f.current()
	if s == zero {
		return nil
	}
	if err := s.Checkpoint(); err != nil {
		s.CloseDurability()
		return err
	}
	return s.CloseDurability()
}
