package server

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/stream"
)

// genPoint draws a labelled observation from one of three well-separated
// class blobs.
func genPoint(rng *rand.Rand) ([]float64, int) {
	label := rng.Intn(3)
	x := []float64{
		float64(label)*3 + 0.4*rng.NormFloat64(),
		-float64(label)*3 + 0.4*rng.NormFloat64(),
		rng.NormFloat64(),
	}
	return x, label
}

// newTestServer builds a server with the given shard count and config,
// pre-filled with n points through Insert.
func newTestServer(t *testing.T, shards, n int, cfg Config) (*Server, *rand.Rand) {
	t.Helper()
	s, err := NewEmpty(shards, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, cfg)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		x, label := genPoint(rng)
		if err := s.Insert(x, label); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return s, rng
}

// TestSingleShardMatchesMultiTree: with one shard and admission
// disabled, the served prediction must be exactly the underlying
// MultiTree's — the fan-out/combine machinery degenerates to a no-op.
func TestSingleShardMatchesMultiTree(t *testing.T) {
	s, rng := newTestServer(t, 1, 300, Config{})
	mt := s.shards[0].tree
	for i := 0; i < 50; i++ {
		x, _ := genPoint(rng)
		for _, b := range []int{1, 5, 25, 100} {
			res, err := s.Classify(x, b)
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			want, err := mt.Classify(x, core.ClassifierOptions{}, b)
			if err != nil {
				t.Fatalf("tree classify: %v", err)
			}
			if res.Label != want {
				t.Fatalf("budget %d: served %d, tree says %d", b, res.Label, want)
			}
			if res.Granted != b {
				t.Fatalf("budget %d: granted %d with admission disabled", b, res.Granted)
			}
		}
	}
}

// TestShardedAccuracy: hash-partitioned shards must still classify the
// separable blobs correctly, and the shards must share the data.
func TestShardedAccuracy(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		s, rng := newTestServer(t, shards, 600, Config{})
		st := s.Stats()
		if st.Observations != 600 {
			t.Fatalf("%d shards: %d observations, want 600", shards, st.Observations)
		}
		nonEmpty := 0
		for _, n := range st.ShardSizes {
			if n > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Fatalf("%d shards: hash routing left only %d non-empty", shards, nonEmpty)
		}
		correct := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			x, label := genPoint(rng)
			res, err := s.Classify(x, 40)
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			if res.Label == label {
				correct++
			}
		}
		if acc := float64(correct) / trials; acc < 0.95 {
			t.Fatalf("%d shards: accuracy %.3f < 0.95", shards, acc)
		}
	}
}

// TestTokenBucket pins the admission semantics on a stubbed clock.
func TestTokenBucket(t *testing.T) {
	cur := time.Unix(0, 0)
	b := newTokenBucket(100, 50)
	b.now = func() time.Time { return cur }
	b.last = cur
	b.tokens = 50

	if got := b.take(30); got != 30 {
		t.Fatalf("first take: %d, want 30", got)
	}
	if got := b.take(30); got != 20 {
		t.Fatalf("drained take: %d, want the 20 remaining", got)
	}
	if got := b.take(10); got != 0 {
		t.Fatalf("empty take: %d, want 0 (degrade, never error)", got)
	}
	cur = cur.Add(100 * time.Millisecond) // refills 10 tokens at 100/s
	if got := b.take(30); got != 10 {
		t.Fatalf("refilled take: %d, want 10", got)
	}
	cur = cur.Add(time.Hour) // refill saturates at burst
	if got := b.take(1000); got != 50 {
		t.Fatalf("saturated take: %d, want burst 50", got)
	}
	var nb *tokenBucket
	if got := nb.take(7); got != 7 {
		t.Fatalf("nil bucket: %d, want everything", got)
	}
	nb.refund(5) // must not panic

	b.refund(20)
	if got := b.take(100); got != 20 {
		t.Fatalf("post-refund take: %d, want the 20 refunded", got)
	}
	b.refund(1000) // refund saturates at burst
	if got := b.take(100); got != 50 {
		t.Fatalf("saturated refund take: %d, want burst 50", got)
	}
}

// TestBatchBudgetsAreLiteral: the stream.Engine path must honour budget
// 0 as zero node reads (the level-0 answer) rather than substituting
// the server default — each object's budget is exactly what its
// arrival gap allowed.
func TestBatchBudgetsAreLiteral(t *testing.T) {
	s, rng := newTestServer(t, 2, 300, Config{DefaultBudget: 50})
	xs := make([][]float64, 10)
	budgets := make([]int, 10)
	for i := range xs {
		xs[i], _ = genPoint(rng)
	}
	before := s.Stats().NodesGranted
	if _, err := s.ClassifyBatchBudgets(xs, budgets, 2); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if granted := s.Stats().NodesGranted - before; granted != 0 {
		t.Fatalf("zero budgets granted %d node reads; Engine budgets must be literal", granted)
	}
	// The HTTP-facing path keeps 0 = server default.
	res, err := s.Classify(xs[0], 0)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if res.Requested != 50 {
		t.Fatalf("single classify with budget 0 requested %d, want default 50", res.Requested)
	}
}

// TestAdmissionRefund: budget granted beyond model exhaustion flows
// back into the bucket instead of consuming capacity.
func TestAdmissionRefund(t *testing.T) {
	// 60 observations exhaust after well under 500 reads; burst 1000.
	s, rng := newTestServer(t, 1, 60, Config{NodesPerSecond: 0.001, Burst: 1000, MaxBudget: 500})
	s.admit = newTokenBucket(0.001, 1000) // effectively no refill during the test
	for i := 0; i < 20; i++ {
		x, _ := genPoint(rng)
		res, err := s.Classify(x, 500)
		if err != nil {
			t.Fatalf("classify: %v", err)
		}
		if res.NodesRead >= res.Granted {
			t.Fatalf("model did not exhaust (read %d of %d); test premise broken", res.NodesRead, res.Granted)
		}
		// With refunds, every request should keep getting the full read
		// work the model can absorb; without them the bucket would be
		// empty after two requests (2 × 500 ≥ 1000).
		if i > 2 && res.NodesRead == 0 {
			t.Fatalf("request %d starved: unspent grants were not refunded", i)
		}
	}
}

// TestAdmissionDegradesUnderLoad: with a tiny node-read capacity, a
// burst of requests must still all be answered, with grants summing to
// at most the bucket capacity plus refill — not requests × budget.
func TestAdmissionDegradesUnderLoad(t *testing.T) {
	s, rng := newTestServer(t, 2, 300, Config{NodesPerSecond: 1000, Burst: 200, DefaultBudget: 50})
	var granted int64
	for i := 0; i < 100; i++ {
		x, _ := genPoint(rng)
		res, err := s.Classify(x, 50)
		if err != nil {
			t.Fatalf("classify under load: %v", err)
		}
		granted += int64(res.Granted)
	}
	st := s.Stats()
	if st.NodesRequested != 100*50 {
		t.Fatalf("requested %d, want %d", st.NodesRequested, 100*50)
	}
	// 100 sequential requests take well under a second; the bucket can
	// have granted at most burst + ~1s of refill.
	if granted > 200+1000 {
		t.Fatalf("granted %d node reads, admission not limiting", granted)
	}
	if granted == 100*50 {
		t.Fatal("granted everything; admission had no effect")
	}
}

// TestConcurrentClassifyInsert hammers reads and writes together; run
// under -race this is the shard-locking proof.
func TestConcurrentClassifyInsert(t *testing.T) {
	s, _ := newTestServer(t, 4, 300, Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				x, _ := genPoint(rng)
				if _, err := s.Classify(x, 20); err != nil {
					t.Errorf("classify: %v", err)
					return
				}
			}
		}(int64(w + 10))
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		x, label := genPoint(rng)
		if err := s.Insert(x, label); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Len(); got != 800 {
		t.Fatalf("size %d after concurrent inserts, want 800", got)
	}
}

// TestSnapshotRoundTrip: a server saved and reloaded must classify
// digit-identically shard by shard.
func TestSnapshotRoundTrip(t *testing.T) {
	s, rng := newTestServer(t, 3, 400, Config{})
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	s2, err := FromSnapshot(&buf, Config{})
	if err != nil {
		t.Fatalf("from snapshot: %v", err)
	}
	if s2.NumShards() != 3 || s2.Len() != s.Len() {
		t.Fatalf("reloaded %d shards / %d observations, want 3 / %d", s2.NumShards(), s2.Len(), s.Len())
	}
	for i := 0; i < 100; i++ {
		x, _ := genPoint(rng)
		a, err1 := s.Classify(x, 30)
		b, err2 := s2.Classify(x, 30)
		if err1 != nil || err2 != nil {
			t.Fatalf("classify: %v / %v", err1, err2)
		}
		if a.Label != b.Label || a.NodesRead != b.NodesRead {
			t.Fatalf("snapshot diverged: %+v vs %+v", a, b)
		}
	}
}

// TestStreamEngine drives the live server with stream.RunBatch — the
// ingest-while-serving path: windows are classified in parallel against
// the shards, labelled items are inserted between windows.
func TestStreamEngine(t *testing.T) {
	s, rng := newTestServer(t, 2, 300, Config{})
	var _ stream.Engine = s // compile-time interface check
	items := make([]stream.Item, 400)
	for i := range items {
		x, label := genPoint(rng)
		items[i] = stream.Item{X: x, Label: label, Labeled: true}
	}
	res, err := stream.RunBatch(s, items, stream.Constant{Interval: 0.01},
		stream.Budgeter{NodesPerSecond: 4000, MaxNodes: 100}, 5, 32, 4)
	if err != nil {
		t.Fatalf("run batch: %v", err)
	}
	if res.Learned != 400 {
		t.Fatalf("learned %d, want 400", res.Learned)
	}
	if s.Len() != 700 {
		t.Fatalf("server size %d after ingest, want 700", s.Len())
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("ingest-while-serving accuracy %.3f < 0.95", res.Accuracy)
	}
}

// TestEmptyAndValidation covers constructor and routing edge cases.
func TestEmptyAndValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New with no shards succeeded")
	}
	if _, err := NewEmpty(0, core.DefaultConfig(2), []int{0, 1}, core.MultiOptions{}, Config{}); err == nil {
		t.Fatal("NewEmpty with 0 shards succeeded")
	}
	s, err := NewEmpty(2, core.DefaultConfig(2), []int{0, 1}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if _, err := s.Classify([]float64{0, 0}, 5); err == nil {
		t.Fatal("classify against empty server succeeded")
	}
	if _, err := s.Classify([]float64{0}, 5); err == nil {
		t.Fatal("classify with wrong dim succeeded")
	}
	if err := s.Insert([]float64{0}, 0); err == nil {
		t.Fatal("insert with wrong dim succeeded")
	}
	if err := s.Insert([]float64{0, 0}, 9); err == nil {
		t.Fatal("insert with unknown label succeeded")
	}
	// One insert is enough to start serving (the other shard stays empty).
	if err := s.Insert([]float64{1, 1}, 0); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if err := s.Insert([]float64{-1, -1}, 1); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if _, err := s.Classify([]float64{1, 1}, 5); err != nil {
		t.Fatalf("classify after first inserts: %v", err)
	}
}
