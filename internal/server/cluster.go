package server

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/persist"
)

// This file instantiates the engine for the paper's second anytime
// workload: the Section-4.2 clustering extension (the ClusTree). The
// anytime operation of a clustering tree is insertion — an object's
// node budget decides how deep its descent gets before it is parked —
// so here the admission controller governs ingest depth rather than
// query refinement: under overload objects park higher up and the tree
// coarsens, exactly the self-adaptation the paper describes, instead of
// the stream backing up.
//
// Sharding: objects are hash-partitioned exactly like classification
// observations, each shard holding an independent clustering tree over
// its partition with timestamps drawn from one global logical clock
// (one tick per ingested object). Because cluster features are
// additive, the union micro-cluster set is simply the concatenation of
// the shard sets — every shard micro-cluster summarises a disjoint
// subset of the stream — so reads fan out and concatenate with no loss,
// mirroring the classifier's exact log-sum-exp score merge.

// ctree adapts one shard's clustering tree to the engine's Model
// contract. Decay in a ClusTree is lazy — reading a weight fades it to
// the current time in place — so the cluster engine runs in exclusive-
// read mode and every access happens under the shard write lock.
type ctree struct {
	t *clustree.Tree
	// epoch counts maintenance ticks; the ClusTree's real decay clock
	// is the logical insert timestamp, so this is reporting only.
	epoch int64
	// floor is the maintenance sweep's pruning threshold (0 = keep
	// everything; weights still fade).
	floor float64
}

// Len implements Model: the lifetime insert count (a ClusTree
// aggregates objects into cluster features rather than storing them).
func (c *ctree) Len() int { return c.t.Inserts() }

// Weight implements Model with the tree's decayed total mass.
func (c *ctree) Weight() float64 { return c.t.Weight() }

// CountNodes implements Model.
func (c *ctree) CountNodes() int { return c.t.CountNodes() }

// Epoch implements Model.
func (c *ctree) Epoch() int64 { return c.epoch }

// AdvanceEpoch implements Model. The ClusTree fades against its logical
// insert clock, so advancing the epoch only moves the maintenance
// counter; the sweep that follows does the forgetting.
func (c *ctree) AdvanceEpoch(n int64) { c.epoch += n }

// DecaySweep implements Model: prune micro-clusters whose faded weight
// fell below the floor and drop emptied subtrees.
func (c *ctree) DecaySweep() core.SweepStats {
	points, subtrees := c.t.Prune(c.floor)
	return core.SweepStats{PointsPruned: points, SubtreesPruned: subtrees}
}

// DecayConfig implements Model. Lambda is per logical time unit — one
// ingested object advances the clock by one.
func (c *ctree) DecayConfig() core.DecayOptions {
	return core.DecayOptions{Lambda: c.t.Config().Lambda, MinWeight: c.floor}
}

// EnableDecay implements Model, overriding the tree's decay rate and
// the sweep floor. Unlike the classifier's decay options, MinWeight is
// not bounded by 1: micro-cluster weights are decayed object counts,
// so floors well above 1 ("forget clusters that faded below ~5
// objects") are the useful range.
func (c *ctree) EnableDecay(opts core.DecayOptions) error {
	if math.IsNaN(opts.Lambda) || math.IsInf(opts.Lambda, 0) || opts.Lambda < 0 {
		return fmt.Errorf("server: cluster decay Lambda must be a finite value ≥ 0, got %v", opts.Lambda)
	}
	if math.IsNaN(opts.MinWeight) || math.IsInf(opts.MinWeight, 0) || opts.MinWeight < 0 {
		return fmt.Errorf("server: cluster pruning floor must be a finite value ≥ 0, got %v", opts.MinWeight)
	}
	if err := c.t.SetLambda(opts.Lambda); err != nil {
		return err
	}
	c.floor = opts.MinWeight
	return nil
}

// ClusterOptions parameterise the parts of a ClusterServer beyond the
// shared engine Config: the pyramidal snapshot store that retains
// micro-cluster history at exponentially coarsening granularity.
type ClusterOptions struct {
	// SnapshotAlpha is the pyramidal base (0 means 2, minimum 2).
	SnapshotAlpha int
	// SnapshotCapacity is the per-order snapshot capacity (0 means
	// alpha + 1, the classical choice).
	SnapshotCapacity int
	// SnapshotEvery records a union micro-cluster snapshot into the
	// store every N ingested objects (0 means 1024; < 0 disables the
	// store and the /window endpoint).
	SnapshotEvery int
	// SnapshotMinWeight drops micro-clusters lighter than this from
	// recorded snapshots (0 keeps everything).
	SnapshotMinWeight float64
}

// withDefaults resolves zero values.
func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.SnapshotAlpha == 0 {
		o.SnapshotAlpha = 2
	}
	if o.SnapshotCapacity == 0 {
		o.SnapshotCapacity = o.SnapshotAlpha + 1
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	return o
}

// ClusterServer is the sharded anytime clustering instantiation of the
// engine. All methods are safe for concurrent use.
type ClusterServer struct {
	engine[*ctree]
	ccfg  clustree.Config
	copts ClusterOptions
	// clock is the global logical time: one tick per ingested object,
	// assigned under the owning shard's write lock so per-shard
	// timestamps are strictly increasing.
	clock atomic.Int64

	snapMu sync.Mutex
	store  *clustree.SnapshotStore
}

// NewCluster builds a clustering server of empty shards over the given
// tree configuration. The engine Config supplies budgets, admission and
// (via Config.Decay) an override of the tree's decay rate and the
// maintenance sweep's pruning floor; Config.Query is ignored.
func NewCluster(ccfg clustree.Config, shards int, cfg Config, copts ClusterOptions) (*ClusterServer, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("server: shard count %d", shards)
	}
	trees := make([]*clustree.Tree, shards)
	for i := range trees {
		t, err := clustree.New(ccfg)
		if err != nil {
			return nil, err
		}
		trees[i] = t
	}
	return newClusterOver(trees, 0, nil, cfg, copts)
}

// newClusterOver wires a ClusterServer over existing trees (empty or
// warm-started), a restored clock and an optional restored store.
func newClusterOver(trees []*clustree.Tree, clock int64, store *clustree.SnapshotStore, cfg Config, copts ClusterOptions) (*ClusterServer, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("server: no shards")
	}
	ccfg := trees[0].Config()
	models := make([]*ctree, len(trees))
	for i, t := range trees {
		if t == nil {
			return nil, fmt.Errorf("server: nil shard %d", i)
		}
		if t.Config().Dim != ccfg.Dim {
			return nil, fmt.Errorf("server: shard %d dim %d != shard 0 dim %d", i, t.Config().Dim, ccfg.Dim)
		}
		models[i] = &ctree{t: t, floor: cfg.Decay.MinWeight}
	}
	copts = copts.withDefaults()
	s := &ClusterServer{ccfg: ccfg, copts: copts}
	s.clock.Store(clock)
	if copts.SnapshotEvery > 0 {
		if store == nil {
			var err error
			store, err = clustree.NewSnapshotStore(copts.SnapshotAlpha, copts.SnapshotCapacity)
			if err != nil {
				return nil, err
			}
		}
		s.store = store
	}
	if err := s.init(models, cfg, true); err != nil {
		return nil, err
	}
	return s, nil
}

// ClusterFromSnapshot builds a clustering server from a snapshot
// written by WriteSnapshot, warm-starting the shard trees, the
// pyramidal store and the logical clock.
func ClusterFromSnapshot(r io.Reader, cfg Config, copts ClusterOptions) (*ClusterServer, error) {
	set, err := persist.DecodeClusterSet(r)
	if err != nil {
		return nil, err
	}
	return newClusterOver(set.Trees, set.Clock, set.Store, cfg, copts)
}

// WriteSnapshot encodes every shard's tree, the pyramidal store and the
// logical clock into one versioned snapshot. It holds all shard locks
// for the duration, so the snapshot is a consistent cut.
func (s *ClusterServer) WriteSnapshot(w io.Writer) error {
	return s.withAllRead(func(models []*ctree) error {
		return s.encodeSet(w, models)
	})
}

// encodeSet encodes the full server state; callers hold all shard
// locks (WriteSnapshot's cut, or the checkpoint path's).
func (s *ClusterServer) encodeSet(w io.Writer, models []*ctree) error {
	trees := make([]*clustree.Tree, len(models))
	for i, m := range models {
		trees[i] = m.t
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return persist.EncodeClusterSet(w, persist.ClusterSet{
		Trees: trees, Store: s.store, Clock: s.clock.Load(),
	})
}

// Dim returns the dimensionality of served observations.
func (s *ClusterServer) Dim() int { return s.ccfg.Dim }

// Clock returns the global logical time (objects ingested so far).
func (s *ClusterServer) Clock() int64 { return s.clock.Load() }

// ClusterResult is the outcome of one served ingest.
type ClusterResult struct {
	// Shard is the shard the object was routed to.
	Shard int `json:"shard"`
	// Requested is the descent budget the request asked for (after
	// capping).
	Requested int `json:"requested"`
	// Granted is what the admission controller allowed — under load
	// this drops toward zero and objects park higher up instead of the
	// stream backing up.
	Granted int `json:"granted"`
	// NodesRead is the descent work actually spent: inner nodes stepped
	// through plus the terminal node (leaf or parking buffer) read at
	// the end. It falls short of Granted when the leaf was reached
	// early, and can exceed it by one for that terminal read — the
	// overage is debited from the admission bucket.
	NodesRead int `json:"nodes_read"`
	// Parked reports whether the object was buffered in an inner node
	// (to hitchhike leafward later) rather than reaching leaf level.
	Parked bool `json:"parked"`
	// Degraded reports that admission clipped this ingest's descent
	// budget (Granted < Requested) — the per-response overload signal.
	Degraded bool `json:"degraded"`
}

// Insert serves one anytime ingest: the requested descent budget is
// capped, passed through admission, and spent descending the owning
// shard's tree — running out parks the object in an inner-node buffer,
// to hitchhike toward leaf level on a later descent. budget 0 means the
// server default, negative means "as much as the cap and admission
// allow".
func (s *ClusterServer) Insert(x []float64, budget int) (ClusterResult, error) {
	return s.insertResolved(x, s.clampBudget(budget))
}

// insertResolved is Insert after budget resolution; unspent grant is
// refunded so early leaf arrival does not eat configured capacity. On
// a durable server the record — timestamp, granted budget, point: the
// inputs that make the descent deterministic — is appended to the
// shard's write-ahead log under the same lock before the apply.
func (s *ClusterServer) insertResolved(x []float64, requested int) (ClusterResult, error) {
	if len(x) != s.ccfg.Dim {
		return ClusterResult{}, fmt.Errorf("server: point dim %d != model dim %d", len(x), s.ccfg.Dim)
	}
	if s.Recovering() {
		return ClusterResult{}, errRecovering
	}
	if err := s.writeAllowed(); err != nil {
		return ClusterResult{}, err
	}
	granted, finish := s.grant(requested)
	idx := shardIndex(x, len(s.shards))
	sh := s.shards[idx]
	sh.mu.Lock()
	ts := s.clock.Add(1)
	if s.durableOn() {
		if err := s.logAppend(idx, encodeClusterRecord(ts, granted, x)); err != nil {
			// The clock tick is not rolled back: per-shard timestamps stay
			// strictly increasing, a skipped tick is harmless.
			sh.mu.Unlock()
			finish(0)
			return ClusterResult{}, fmt.Errorf("server: wal: %w", err)
		}
	}
	parkedBefore := sh.tree.t.Parked()
	visited, err := sh.tree.t.InsertCounted(x, float64(ts), granted)
	parked := sh.tree.t.Parked() > parkedBefore
	sh.mu.Unlock()
	finish(visited)
	if err != nil {
		return ClusterResult{}, err
	}
	s.inserts.Add(1)
	s.maybeRecord(ts)
	return ClusterResult{
		Shard: idx, Requested: requested, Granted: granted,
		NodesRead: visited, Parked: parked, Degraded: granted < requested,
	}, nil
}

// ApplyReplicated applies one WAL record shipped from a primary to the
// given shard, through the follower's own log-before-apply path. The
// record carries the primary's timestamp and granted budget — the
// inputs that make the descent deterministic — so the follower's tree
// is digit-identical to the primary's at the same applied LSN. Used by
// the replication tailer; not a client API.
func (s *ClusterServer) ApplyReplicated(shard int, payload []byte) error {
	if s.Recovering() {
		return errRecovering
	}
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("server: replicated record for shard %d of %d", shard, len(s.shards))
	}
	ts, granted, x, err := decodeClusterRecord(s.ccfg.Dim, payload)
	if err != nil {
		return err
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	// The follower's clock mirrors the primary's: advance to the shipped
	// timestamp (per-shard order is apply order, so this is monotone per
	// shard; across shards the max keeps the global clock consistent).
	if ts > s.clock.Load() {
		s.clock.Store(ts)
	}
	if s.durableOn() {
		if err := s.logAppend(shard, payload); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("server: wal: %w", err)
		}
	}
	_, err = sh.tree.t.InsertCounted(x, float64(ts), granted)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.inserts.Add(1)
	s.repl.applied.Add(1)
	s.maybeRecord(ts)
	return nil
}

// maybeRecord stores a pyramidal snapshot of the union micro-clusters
// when the logical clock crosses a recording boundary. The capture
// holds all shard locks so it is one consistent cut, and it is
// labelled with the clock value read under those locks — not the
// boundary tick that triggered it — because concurrent ingest may have
// advanced the stream between the tick and the capture, and a /window
// subtraction against a mislabelled snapshot would leak those objects
// out of their window.
func (s *ClusterServer) maybeRecord(ts int64) {
	if s.store == nil || ts%int64(s.copts.SnapshotEvery) != 0 {
		return
	}
	var mcs []clustree.MicroCluster
	var at int64
	s.withAllRead(func(models []*ctree) error {
		at = s.clock.Load()
		for _, m := range models {
			mcs = append(mcs, m.t.MicroClusters(s.copts.SnapshotMinWeight)...)
		}
		return nil
	})
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Record rejects non-positive times only; at ≥ ts ≥ SnapshotEvery.
	s.store.Record(float64(at), mcs)
}

// MicroClusters returns the union micro-cluster set across all shards,
// decayed to each shard's current time and dropping clusters below
// minWeight. CF additivity makes the concatenation exact: each shard
// summarises a disjoint hash partition of the stream.
func (s *ClusterServer) MicroClusters(minWeight float64) []clustree.MicroCluster {
	var out []clustree.MicroCluster
	for _, sh := range s.shards {
		s.rlock(sh)
		out = append(out, sh.tree.t.MicroClusters(minWeight)...)
		s.runlock(sh)
	}
	return out
}

// MacroClusters runs the density-based offline step over the union
// micro-clusters: cores (weight ≥ minWeight) within eps connect,
// lighter micro-clusters join the nearest core, the rest are noise.
// It returns the macro clusters, the noise indices and the
// micro-cluster set they index into.
func (s *ClusterServer) MacroClusters(eps, minWeight float64) ([]clustree.MacroCluster, []int, []clustree.MicroCluster) {
	mcs := s.MicroClusters(0)
	macros, noise := clustree.MacroClusters(mcs, clustree.MacroOptions{Eps: eps, MinWeight: minWeight})
	return macros, noise, mcs
}

// Window returns the micro-clusters of the data that arrived between
// the retained pyramidal snapshots closest to t1 and t2 (CF
// subtractivity), or an error when the store is disabled or empty.
func (s *ClusterServer) Window(t1, t2, matchRadius float64) ([]clustree.MicroCluster, error) {
	if s.store == nil {
		return nil, fmt.Errorf("server: snapshot store disabled")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.store.Window(t1, t2, matchRadius)
}

// SnapshotsRetained returns how many pyramidal snapshots the store
// currently holds (0 when disabled).
func (s *ClusterServer) SnapshotsRetained() int {
	if s.store == nil {
		return 0
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.store.Len()
}

// ClassifyBatchBudgets implements stream.Engine for the clustering
// workload. The anytime operation of a ClusTree is insertion, so the
// batch path ingests: xs[i] descends with budget budgets[i] (literal,
// as the Engine contract requires — 0 parks at the root), each object
// passing the admission controller individually. The returned
// "prediction" is the shard each object was routed to. Together with
// Learn this lets stream.RunBatch drive clustering ingest with budgets
// drawn from the arrival process, exactly as it drives classification.
func (s *ClusterServer) ClassifyBatchBudgets(xs [][]float64, budgets []int, workers int) ([]int, error) {
	if len(budgets) != len(xs) {
		return nil, fmt.Errorf("server: %d budgets for %d objects", len(budgets), len(xs))
	}
	shards := make([]int, len(xs))
	errs := make([]error, len(xs))
	if workers <= 0 {
		workers = 1
	}
	runPool(len(xs), workers, func(i int) {
		res, err := s.insertResolved(xs[i], s.capBudget(budgets[i]))
		if err != nil {
			errs[i] = err
			return
		}
		shards[i] = res.Shard
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// Learn implements stream.Engine as a no-op: clustering is unsupervised
// and the object was already ingested by the batch pass above. It
// exists so stream.WithDecayEvery can tick the maintenance sweep once
// per n labelled objects, adapting decay pruning to stream position.
func (s *ClusterServer) Learn(x []float64, label int) error { return nil }

// ClusterStats extends the shared engine Stats with the clustering
// workload's own observables.
type ClusterStats struct {
	Stats
	// Clock is the global logical time (objects ingested).
	Clock int64 `json:"clock"`
	// Parked counts insertions that ended in an inner-node buffer — the
	// overload signal of an anytime clustering tree.
	Parked int64 `json:"parked"`
	// Merges counts absorptions into existing micro-clusters.
	Merges int64 `json:"merges"`
	// Splits counts leaf splits.
	Splits int64 `json:"splits"`
	// MicroClusters is the current union micro-cluster count.
	MicroClusters int `json:"micro_clusters"`
	// Depth is the deepest shard tree's level count — under sustained
	// budget pressure objects park high and no splits occur, so this is
	// the self-adaptation observable (it stays small on fast streams).
	Depth int `json:"depth"`
	// SnapshotsRetained is the pyramidal store's current size.
	SnapshotsRetained int `json:"snapshots_retained"`
}

// Stats returns a point-in-time summary: the shared engine counters
// plus parked/merge/split totals and the micro-cluster population.
func (s *ClusterServer) Stats() ClusterStats {
	st := ClusterStats{Stats: s.baseStats(), Clock: s.clock.Load()}
	for _, sh := range s.shards {
		s.rlock(sh)
		_, parked, merges, splits := sh.tree.t.Counters()
		st.MicroClusters += sh.tree.t.MicroClusterCount(0)
		if d := sh.tree.t.Depth(); d > st.Depth {
			st.Depth = d
		}
		s.runlock(sh)
		st.Parked += int64(parked)
		st.Merges += int64(merges)
		st.Splits += int64(splits)
	}
	st.SnapshotsRetained = s.SnapshotsRetained()
	return st
}
