package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// HTTP surface of the server:
//
//	POST /classify  {"x":[...],"budget":25}            → Result JSON
//	POST /classify  (NDJSON body, one request/line)    → NDJSON Results
//	POST /insert    {"x":[...],"label":2}              → {"ok":true,...}
//	POST /insert    (NDJSON body, one insert/line)     → NDJSON acks
//	GET  /stats                                        → Stats JSON
//	GET  /healthz                                      → liveness: 200 once listening
//	GET  /readyz                                       → readiness: 503 + Retry-After until replay done / while draining
//	GET  /replicate                                    → replication stream (checkpoint + live WAL tail)
//
// On a follower, write endpoints answer 307 with a Location on the
// primary; a fenced ex-primary answers 503.
//
// A body whose Content-Type mentions "ndjson" (or a ?stream=1 query) is
// treated as a streamed batch: requests are read line by line, windows
// of lines are classified in parallel, and one response line is written
// per request line in order, flushed per window — so a client can pipe
// an unbounded stream through a single connection and read predictions
// while it is still sending.

// streamWindow is how many NDJSON lines are classified per parallel
// window; it bounds both latency-to-first-byte and per-window memory.
const streamWindow = 64

// classifyRequest is the JSON body of a classification request. Budget
// semantics match Server.Classify: 0 means the server default, negative
// means "as much as the cap and admission allow".
type classifyRequest struct {
	X      []float64 `json:"x"`
	Budget int       `json:"budget"`
	// Scores asks for the merged per-class log scores, their label order
	// and the total weight in the response — the merge surface a
	// scatter-gather tier combines across groups.
	Scores bool `json:"scores"`
	// Literal makes Budget literal: 0 means zero refinement steps (the
	// coarsest answer) instead of the server default. The proxy sets it
	// so size-proportional splits that legitimately assign a group 0
	// nodes keep meaning 0.
	Literal bool `json:"literal_budget"`
}

// insertRequest is the JSON body of an insert request.
type insertRequest struct {
	X     []float64 `json:"x"`
	Label int       `json:"label"`
}

// lineResponse is one NDJSON response line: a Result on success, an
// Error on per-line failure (the stream keeps going either way).
type lineResponse struct {
	Result
	Error string `json:"error,omitempty"`
}

// Handler returns the HTTP handler serving the four endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/replicate", s.handleReplicate)
	return mux
}

// isStream reports whether the request carries an NDJSON batch body.
func isStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Content-Type"), "ndjson") ||
		r.URL.Query().Get("stream") == "1"
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeUnavailable is the 503 every transient condition (recovery,
// draining) shares: Retry-After tells well-behaved clients and load
// balancers to come back instead of giving up or killing the process.
func writeUnavailable(w http.ResponseWriter, format string, args ...interface{}) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// writeNotReady is the uniform not-ready /readyz answer: plain-text 503
// with Retry-After, the same shape whatever the reason (recovering,
// draining, a follower awaiting bootstrap) — so probers and load
// balancers back off uniformly.
func writeNotReady(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, reason, http.StatusServiceUnavailable)
}

// writeReady is the shared /readyz body: 503 + Retry-After while the
// process cannot serve (recovering or draining), 200 otherwise.
func writeReady(w http.ResponseWriter, recovering, draining bool) {
	if recovering || draining {
		reason := "draining"
		if recovering {
			reason = "recovering"
		}
		writeNotReady(w, reason)
		return
	}
	fmt.Fprintln(w, "ok")
}

// redirectToPrimary answers a write sent to a follower with a 307 to
// the same path on the primary — the method and body are preserved by
// conforming clients, so a retried insert lands where it belongs.
func redirectToPrimary(w http.ResponseWriter, r *http.Request, primary string) {
	w.Header().Set("Location", primary+r.URL.Path)
	writeError(w, http.StatusTemporaryRedirect, "read-only follower: writes go to the primary at %s", primary)
}

// classifyWire resolves one HTTP classify request: budget semantics per
// the Literal flag (literal budgets take 0 at face value, the plain
// form maps 0 to the server default), with the merge surface (scores,
// weight, label order) attached only when the request asked for it.
func (s *Server) classifyWire(req classifyRequest) (Result, error) {
	budget := s.clampBudget(req.Budget)
	if req.Literal {
		budget = s.capBudget(req.Budget)
	}
	res, err := s.classifyResolved(req.X, budget)
	if err != nil {
		return res, err
	}
	if req.Scores {
		res.Labels = s.Labels()
	} else {
		res.Scores, res.Weight = nil, 0
	}
	return res, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.Draining() {
		writeUnavailable(w, "draining")
		return
	}
	if isStream(r) {
		s.streamClassify(w, r)
		return
	}
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, err := s.classifyWire(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// enableFullDuplex opts the connection out of the HTTP/1 server's
// default of consuming (closing) the unread request body as soon as
// the handler writes response bytes. The NDJSON endpoints interleave
// reading request lines with writing response lines on one connection;
// without full duplex, any body larger than the server's first read
// would be cut off mid-stream with "invalid Read on closed Body".
// HTTP/2 is always full duplex; the controller errors there and the
// error is safely ignored.
func enableFullDuplex(w http.ResponseWriter) {
	if rc := http.NewResponseController(w); rc != nil {
		rc.EnableFullDuplex()
	}
}

// ndjsonStream drives the windowed NDJSON form every bulk endpoint
// shares: request lines are read and batched into windows of up to
// streamWindow lines, each window is handed to process (which returns
// exactly one JSON-encodable response per line, in order), and the
// responses are written and flushed per window — so a client can pipe
// an unbounded stream through a single connection and read answers
// while it is still sending. A scanner error (oversized line, broken
// body) would otherwise end the stream silently with fewer response
// lines than request lines; errLine builds the terminal error line that
// lets the client tell truncation from completion.
func ndjsonStream(w http.ResponseWriter, r *http.Request,
	process func(lines []string) []interface{}, errLine func(msg string) interface{}) {
	enableFullDuplex(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	window := make([]string, 0, streamWindow)

	emit := func() bool {
		if len(window) == 0 {
			return true
		}
		responses := process(window)
		for i := range responses {
			if err := enc.Encode(responses[i]); err != nil {
				return false // client went away
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		window = window[:0]
		return true
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		window = append(window, line)
		if len(window) >= streamWindow {
			if !emit() {
				return
			}
		}
	}
	if !emit() {
		return
	}
	if err := sc.Err(); err != nil {
		enc.Encode(errLine(fmt.Sprintf("request stream: %v", err)))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamClassify serves the NDJSON batch form: windows of request lines
// are classified by a worker pool (each item admitted individually),
// and response lines are written in input order and flushed per window.
func (s *Server) streamClassify(w http.ResponseWriter, r *http.Request) {
	ndjsonStream(w, r, func(lines []string) []interface{} {
		responses := make([]interface{}, len(lines))
		runPool(len(lines), 8, func(i int) {
			var req classifyRequest
			if err := json.Unmarshal([]byte(lines[i]), &req); err != nil {
				responses[i] = lineResponse{Error: fmt.Sprintf("bad request line: %v", err)}
				return
			}
			res, err := s.classifyWire(req)
			if err != nil {
				responses[i] = lineResponse{Error: err.Error()}
				return
			}
			responses[i] = lineResponse{Result: res}
		})
		return responses
	}, func(msg string) interface{} {
		return lineResponse{Error: msg}
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if primary := s.followerRedirect(); primary != "" {
		redirectToPrimary(w, r, primary)
		return
	}
	if s.replFenced() {
		writeError(w, http.StatusServiceUnavailable, "fenced: a newer primary (epoch %d) exists", s.repl.fencedBy.Load())
		return
	}
	if s.Recovering() {
		writeUnavailable(w, "recovering: WAL replay in progress")
		return
	}
	if s.Draining() {
		writeUnavailable(w, "draining")
		return
	}
	if isStream(r) {
		s.streamInsert(w, r)
		return
	}
	var req insertRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.Insert(req.X, req.Label); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "observations": s.Len()})
}

// streamInsert serves the NDJSON batch insert form: one ack line per
// input line, in order. Inserts stay sequential — each takes its
// shard's write lock — but the single connection amortises transport
// overhead for bulk ingest while classifications keep flowing on other
// connections.
func (s *Server) streamInsert(w http.ResponseWriter, r *http.Request) {
	ndjsonStream(w, r, func(lines []string) []interface{} {
		acks := make([]interface{}, len(lines))
		for i, line := range lines {
			var req insertRequest
			if err := json.Unmarshal([]byte(line), &req); err != nil {
				acks[i] = map[string]interface{}{"error": fmt.Sprintf("bad insert line: %v", err)}
			} else if err := s.Insert(req.X, req.Label); err != nil {
				acks[i] = map[string]interface{}{"error": err.Error()}
			} else {
				acks[i] = map[string]interface{}{"ok": true}
			}
		}
		return acks
	}, func(msg string) interface{} {
		return map[string]interface{}{"error": msg}
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is pure liveness: 200 as long as the process is up and
// listening, even mid-recovery — so orchestrators do not kill a process
// that is busy replaying its WAL. Routability is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 + Retry-After while WAL replay is
// rebuilding the model or the process is draining, 200 otherwise — the
// endpoint load balancers should route on.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	writeReady(w, s.Recovering(), s.Draining())
}
