package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/replica"
)

// The failover acceptance property (both workloads): kill the primary
// mid-ingest, promote the follower, and (a) no acknowledged insert is
// lost, (b) the promoted replica is digit-identical to an uninterrupted
// run at the same applied LSN, and (c) a restarted stale primary is
// fenced — it refuses writes against the newer epoch, durably.

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// appliedLSN reads a follower's applied LSN without touching tree
// state — a ClusTree decays lazily on reads, so polling Stats() mid
// stream would perturb the digit-identity comparison.
func appliedLSN[S replicaModel](f *Follower[S]) uint64 {
	var zero S
	s := f.Current()
	if s == zero {
		return 0
	}
	switch v := any(s).(type) {
	case *Server:
		return v.repl.applied.Load()
	case *ClusterServer:
		return v.repl.applied.Load()
	}
	return 0
}

// tailOpts builds fast-reconnect tailer options for tests.
func tailOpts(url, workload string, epoch func() uint64) replica.Options {
	return replica.Options{
		PrimaryURL: url,
		Workload:   workload,
		Epoch:      epoch,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	}
}

// killServer severs an httptest primary the way SIGKILL would: client
// connections (the replication stream among them) are cut mid-flight,
// then the listener goes away.
func killServer(ts *httptest.Server) {
	ts.CloseClientConnections()
	ts.Close()
}

func TestFailoverClassKillPrimary(t *testing.T) {
	const n, kill = 300, 117
	xs, ys := classPoints(n)
	primDir, follDir := t.TempDir(), t.TempDir()

	prim := newDurableClass(t, primDir, 3)
	ts := httptest.NewServer(prim.Handler())

	foll, err := NewFollowerServer(DurabilityOptions{Dir: follDir}, Config{}, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tail := replica.New(foll, tailOpts(ts.URL, replica.WorkloadClassify, foll.Epoch))
	tail.Start()

	// Every Insert that returns nil is an acknowledged write.
	for i := 0; i < kill; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "follower to apply all acknowledged inserts", func() bool {
		return appliedLSN(foll) == uint64(kill)
	})
	if st := prim.Stats(); st.ReplShippedLSN != uint64(kill) || st.ReplFollowers != 1 {
		t.Fatalf("primary shipped LSN %d with %d followers, want %d and 1",
			st.ReplShippedLSN, st.ReplFollowers, kill)
	}

	// SIGKILL the primary: stream cut, flock released, WAL left as-is.
	tail.Stop()
	crash(t, prim.dur)
	killServer(ts)

	if err := foll.Promote(); err != nil {
		t.Fatal(err)
	}
	promoted := foll.Current()

	// (b) digit-identity at the same applied LSN: an uninterrupted
	// reference run of exactly the acknowledged prefix.
	ref, err := NewEmpty(3, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < kill; i++ {
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sa, sb := snapshotBytes(t, promoted), snapshotBytes(t, ref); !bytes.Equal(sa, sb) {
		t.Fatalf("promoted replica differs from uninterrupted run at LSN %d: %d vs %d bytes",
			kill, len(sa), len(sb))
	}

	// Promotion bumped the fencing epoch and durably committed it.
	if got := promoted.Epoch(); got != 1 {
		t.Fatalf("promoted epoch = %d, want 1", got)
	}
	if st := promoted.Stats(); st.Role != "primary" || st.Fenced {
		t.Fatalf("promoted stats = role %q fenced %v, want primary/false", st.Role, st.Fenced)
	}

	// (a) no acknowledged insert lost, and the promoted node takes
	// writes: drive the rest of the stream and stay digit-identical.
	for i := kill; i < n; i++ {
		if err := promoted.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sa, sb := snapshotBytes(t, promoted), snapshotBytes(t, ref); !bytes.Equal(sa, sb) {
		t.Fatal("promoted replica diverged from reference after taking over the stream")
	}
	if err := foll.Persist(); err != nil {
		t.Fatal(err)
	}

	// (c) the stale primary restarts with all its acknowledged state —
	// nothing lost there either — but is fenced the moment anything
	// probes it with the newer epoch, and the fence survives restarts.
	old := newDurableClass(t, primDir, 3)
	// The tailer's connect cut a checkpoint on the primary, so the
	// acknowledged prefix is split between snapshot and WAL tail — the
	// total observation count is the nothing-lost assertion.
	if got := old.Stats().Observations; got != kill {
		t.Fatalf("stale primary recovered %d observations, want %d", got, kill)
	}
	ts2 := httptest.NewServer(old.Handler())
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/replicate", nil)
	req.Header.Set(replica.EpochHeader, replica.FormatEpoch(promoted.Epoch()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale primary probed with epoch %d answered %d, want 409",
			promoted.Epoch(), resp.StatusCode)
	}
	if err := old.Insert(xs[0], ys[0]); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("fenced primary accepted a write (err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(primDir, fencedName)); err != nil {
		t.Fatalf("no durable FENCED marker after fencing: %v", err)
	}
	crash(t, old.dur)
	killServer(ts2)

	// Restarted again: the on-disk fence re-arms (its manifest epoch is
	// still behind), so it keeps refusing writes.
	old2 := newDurableClass(t, primDir, 3)
	if err := old2.Insert(xs[0], ys[0]); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("restarted stale primary accepted a write (err = %v)", err)
	}
	if st := old2.Stats(); !st.Fenced || st.FencedBy != 1 {
		t.Fatalf("restarted stale primary stats = fenced %v by %d, want true by 1", st.Fenced, st.FencedBy)
	}
	old2.CloseDurability()
}

func TestFailoverClusterKillPrimary(t *testing.T) {
	const n, kill = 300, 117
	rng := rand.New(rand.NewSource(11))
	xs := make([][]float64, n)
	budgets := make([]int, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		budgets[i] = 1 + i%7
	}
	primDir, follDir := t.TempDir(), t.TempDir()
	copts := ClusterOptions{SnapshotEvery: 64}

	prim := newDurableCluster(t, primDir, 3)
	ts := httptest.NewServer(prim.Handler())

	foll, err := NewFollowerCluster(DurabilityOptions{Dir: follDir}, Config{}, copts, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tail := replica.New(foll, tailOpts(ts.URL, replica.WorkloadCluster, foll.Epoch))
	tail.Start()

	// Sequential ingest: global timestamp order equals stream order, the
	// precondition for pyramidal-store digit-identity.
	for i := 0; i < kill; i++ {
		if _, err := prim.Insert(xs[i], budgets[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "cluster follower to apply all acknowledged inserts", func() bool {
		return appliedLSN(foll) == uint64(kill)
	})

	tail.Stop()
	crash(t, prim.dur)
	killServer(ts)

	if err := foll.Promote(); err != nil {
		t.Fatal(err)
	}
	promoted := foll.Current()
	if promoted.Clock() != kill {
		t.Fatalf("promoted clock = %d, want %d", promoted.Clock(), kill)
	}
	if got := promoted.Epoch(); got != 1 {
		t.Fatalf("promoted epoch = %d, want 1", got)
	}

	// Reference run of the full stream; the promoted replica finishes it.
	ref, err := NewCluster(clustree.DefaultConfig(2), 3, Config{}, copts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := ref.Insert(xs[i], budgets[i]); err != nil {
			t.Fatal(err)
		}
		if i >= kill {
			if _, err := promoted.Insert(xs[i], budgets[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sa, sb := snapshotBytes(t, promoted), snapshotBytes(t, ref); !bytes.Equal(sa, sb) {
		t.Fatalf("promoted cluster replica diverged from uninterrupted run: %d vs %d bytes", len(sa), len(sb))
	}
	sta, stb := promoted.Stats(), ref.Stats()
	if sta.Clock != stb.Clock || sta.MicroClusters != stb.MicroClusters ||
		sta.Parked != stb.Parked || sta.SnapshotsRetained != stb.SnapshotsRetained {
		t.Fatalf("cluster stats diverge: %+v vs %+v", sta, stb)
	}
	if err := foll.Persist(); err != nil {
		t.Fatal(err)
	}

	// Stale primary: fenced on probe, refuses ingest, fence is durable.
	old := newDurableCluster(t, primDir, 3)
	ts2 := httptest.NewServer(old.Handler())
	req, _ := http.NewRequest(http.MethodGet, ts2.URL+"/replicate", nil)
	req.Header.Set(replica.EpochHeader, replica.FormatEpoch(1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale cluster primary probed with epoch 1 answered %d, want 409", resp.StatusCode)
	}
	if _, err := old.Insert(xs[0], 1); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("fenced cluster primary accepted an insert (err = %v)", err)
	}
	crash(t, old.dur)
	killServer(ts2)
	old2 := newDurableCluster(t, primDir, 3)
	if _, err := old2.Insert(xs[0], 1); err == nil || !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("restarted stale cluster primary accepted an insert (err = %v)", err)
	}
	old2.CloseDurability()
}

// statsOver fetches and decodes /stats from a follower's HTTP surface.
func statsOver(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats = %d, want 200", resp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFollowerStalenessAndRedirect: a follower serves reads and /stats
// (reporting role, applied LSN, and a staleness bound that grows when
// the tail pauses), while writes answer 307 with the primary's address.
func TestFollowerStalenessAndRedirect(t *testing.T) {
	const n = 40
	xs, ys := classPoints(n)
	prim := newDurableClass(t, t.TempDir(), 2)
	ts := httptest.NewServer(prim.Handler())

	foll, err := NewFollowerServer(DurabilityOptions{Dir: t.TempDir()}, Config{}, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(foll.Handler())
	defer killServer(fts)

	// Before the first bootstrap: live but not ready.
	resp, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /healthz before bootstrap = %d, want 200", resp.StatusCode)
	}
	resp, _ = http.Get(fts.URL + "/stats")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /stats before bootstrap = %d, want 503", resp.StatusCode)
	}

	tail := replica.New(foll, tailOpts(ts.URL, replica.WorkloadClassify, foll.Epoch))
	tail.Start()
	for i := 0; i < n; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "follower to catch up", func() bool {
		return appliedLSN(foll) == uint64(n)
	})

	st := statsOver(t, fts.URL)
	if st.Role != "follower" || st.AppliedLSN != n || !st.ReplConnected {
		t.Fatalf("follower stats = role %q applied %d connected %v, want follower/%d/true",
			st.Role, st.AppliedLSN, st.ReplConnected, n)
	}
	if st.StalenessMs < 0 {
		t.Fatalf("staleness = %d ms on a caught-up follower, want >= 0", st.StalenessMs)
	}

	// Follower reads work: classify against the replicated model.
	body, _ := json.Marshal(classifyRequest{X: xs[0]})
	resp, err = http.Post(fts.URL+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /classify = %d, want 200", resp.StatusCode)
	}

	// Writes redirect to the primary with the path preserved.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	body, _ = json.Marshal(insertRequest{X: xs[0], Label: ys[0]})
	resp, err = noFollow.Post(fts.URL+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower /insert = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != ts.URL+"/insert" {
		t.Fatalf("redirect Location = %q, want %q", loc, ts.URL+"/insert")
	}

	// Pause the tail: the applied LSN freezes and the reported staleness
	// bound grows past anything heartbeats would allow.
	tail.Stop()
	killServer(ts)
	st1 := statsOver(t, fts.URL)
	waitFor(t, 10*time.Second, "staleness bound to grow", func() bool {
		st2 := statsOver(t, fts.URL)
		return st2.AppliedLSN == uint64(n) && st2.StalenessMs > st1.StalenessMs && st2.StalenessMs >= 100
	})

	if err := foll.Persist(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerRebootstrapAfterOverflow: when the primary's per-follower
// buffer overflows (a stalled reader), the stream is cut and the tailer
// re-bootstraps from a fresh checkpoint, converging again. Simulated
// directly: restart the tail after the stream was dropped mid-way.
func TestFollowerResumeAfterDisconnect(t *testing.T) {
	const n = 120
	xs, ys := classPoints(n)
	prim := newDurableClass(t, t.TempDir(), 2)
	ts := httptest.NewServer(prim.Handler())
	defer killServer(ts)

	foll, err := NewFollowerServer(DurabilityOptions{Dir: t.TempDir()}, Config{}, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	tail := replica.New(foll, tailOpts(ts.URL, replica.WorkloadClassify, foll.Epoch))
	tail.Start()
	for i := 0; i < n/2; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "first half applied", func() bool {
		return appliedLSN(foll) == uint64(n/2)
	})

	// Drop the stream (primary keeps running), insert the second half
	// while the follower is dark, then let it reconnect.
	tail.Stop()
	ts.CloseClientConnections()
	for i := n / 2; i < n; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	tail2 := replica.New(foll, tailOpts(ts.URL, replica.WorkloadClassify, foll.Epoch))
	tail2.Start()
	defer tail2.Stop()

	// The reconnect bootstraps from a fresh checkpoint that already
	// contains everything, so the model converges to the full stream.
	ref, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotBytes(t, ref)
	waitFor(t, 10*time.Second, "follower to converge after reconnect", func() bool {
		s := foll.Current()
		return s != nil && bytes.Equal(snapshotBytes(t, s), want)
	})
	tail2.Stop()
	if err := foll.Persist(); err != nil {
		t.Fatal(err)
	}
	prim.CloseDurability()
}
