package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/persist"
	"bayestree/internal/wal"
)

// This file is the durability layer threaded through the generic
// engine: every logged workload gets crash-safe ingest from the same
// machinery. The write path appends a workload-encoded record to the
// owning shard's write-ahead log under the shard write lock (log
// before apply, pre-validated so the apply cannot fail), recovery is
// load-latest-snapshot + replay-WAL-tail, and a checkpoint is
// rotate-all-logs + snapshot + manifest + truncate — each step ordered
// so that a crash at any instant leaves the manifest naming a complete
// (snapshot, WAL-start) pair:
//
//	rotate (under all shard locks)   — new segments begin
//	snapshot (same consistent cut)   — atomic via WriteFileAtomic
//	manifest                         — atomic; the commit point
//	truncate + old-snapshot removal  — pure garbage collection
//
// A crash before the manifest write replays from the previous pair
// (the rotated segments are still listed); after it, from the new one.
//
// Records are replayed digit-identically: the classification record
// carries (label, x) — shard routing is content-hashed, so per-shard
// replay reproduces the exact insert sequence — and the clustering
// record carries (timestamp, granted budget, x), because a ClusTree
// descent is deterministic given those; cluster replay merges the
// per-shard logs by timestamp to reproduce the global logical clock.

// DurabilityOptions configure the write-ahead log + checkpoint layer a
// served workload can run over.
type DurabilityOptions struct {
	// Dir is the durability root: the MANIFEST, snapshot-<generation>
	// files and per-shard WAL segment directories live here.
	Dir string
	// FsyncEvery is the WAL group-commit interval: 0 fsyncs inline on
	// every append, > 0 commits every append of the interval with one
	// background fsync (the interval bounds power-loss exposure; a
	// process crash loses nothing either way).
	FsyncEvery time.Duration
	// SegmentBytes rotates WAL segments at this size (0 = wal default).
	SegmentBytes int64
}

// errRecovering rejects writes while WAL replay is rebuilding the
// model; the HTTP layer maps it to 503.
var errRecovering = fmt.Errorf("server: recovering (WAL replay in progress)")

// durState is the engine's durability state: the logs, the manifest
// they continue, and the recovery/replay accounting.
type durState struct {
	opts     DurabilityOptions
	manifest persist.Manifest
	hadState bool
	// lock is the flock-held LOCK file that makes the durability
	// directory single-writer; the kernel releases it on any process
	// death.
	lock *os.File
	// logs is nil until recovery completes; writes are rejected before
	// that (replay applies records directly).
	logs []*wal.Log
	// ckptMu serializes checkpoints (each bumps the generation) and
	// guards manifest and epoch.
	ckptMu     sync.Mutex
	recovering atomic.Bool
	replayed   atomic.Int64
	dropped    atomic.Int64
	// epoch is the replication fencing token carried by the manifest;
	// Promote bumps it. Guarded by ckptMu.
	epoch uint64
	// hub fans durable appends out to /replicate subscribers; see
	// replication.go.
	hub *replHub
}

// shardWALDir names shard i's segment directory under the durability
// root.
func shardWALDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// snapshotName names the checkpoint snapshot for a generation.
func snapshotName(gen uint64) string {
	return fmt.Sprintf("snapshot-%08d.btsn", gen)
}

// durOpen is what opening a durability directory yields: the manifest
// (if any), the held directory lock and any persisted fencing state.
type durOpen struct {
	manifest    persist.Manifest
	hadState    bool
	lock        *os.File
	fencedEpoch uint64
	hadFenced   bool
}

// attachDurability arms the engine's durability state: the server is
// "recovering" (writes rejected, /readyz 503) until Recover replays
// the WAL tail and opens the logs. A FENCED marker left by a previous
// incarnation re-fences the process unless the manifest has since
// caught up to the fencing epoch (i.e. this directory was itself
// promoted).
func (e *engine[M]) attachDurability(opts DurabilityOptions, do durOpen) {
	e.dur = &durState{opts: opts, manifest: do.manifest, hadState: do.hadState, lock: do.lock}
	e.dur.epoch = do.manifest.Epoch
	e.dur.hub = newReplHub()
	e.dur.recovering.Store(true)
	if do.hadFenced {
		if do.manifest.Epoch >= do.fencedEpoch {
			clearFenced(opts.Dir)
		} else {
			e.repl.fencedBy.Store(do.fencedEpoch)
			e.repl.fenced.Store(true)
		}
	}
}

// Recovering reports whether the engine is still replaying its WAL —
// writes are rejected and /healthz fails until it completes.
func (e *engine[M]) Recovering() bool {
	return e.dur != nil && e.dur.recovering.Load()
}

// durableOn reports whether inserts must be logged: durability is
// configured and recovery has opened the logs.
func (e *engine[M]) durableOn() bool {
	return e.dur != nil && e.dur.logs != nil
}

// logAppend appends a record to shard idx's WAL and ships it to any
// attached /replicate subscribers. Callers hold the shard write lock,
// so the per-shard log order is exactly the apply order — and because
// the publish happens under the same lock, the hub's shipped counter
// is a consistent global LSN: a checkpoint's withAllRead (all shard
// locks held) excludes every append, so a subscriber attached inside
// it sees precisely the records after its snapshot.
func (e *engine[M]) logAppend(idx int, payload []byte) error {
	if err := e.dur.logs[idx].Append(payload); err != nil {
		return err
	}
	e.dur.hub.publish(idx, payload)
	return nil
}

// shardLogStart is the first WAL segment shard i's replay must read.
func (e *engine[M]) shardLogStart(i int) uint64 {
	d := e.dur
	if d.hadState && i < len(d.manifest.ShardStart) {
		return d.manifest.ShardStart[i]
	}
	return 1
}

// openLogs opens every shard's WAL for appending (repairing torn tails,
// starting fresh segments) — the hand-off from replay to serving.
func (e *engine[M]) openLogs() error {
	d := e.dur
	logs := make([]*wal.Log, len(e.shards))
	for i := range e.shards {
		lg, err := wal.Open(shardWALDir(d.opts.Dir, i), wal.Options{
			SegmentBytes: d.opts.SegmentBytes, FsyncEvery: d.opts.FsyncEvery,
		})
		if err != nil {
			for _, open := range logs[:i] {
				open.Close()
			}
			return fmt.Errorf("server: wal shard %d: %w", i, err)
		}
		logs[i] = lg
	}
	d.logs = logs
	return nil
}

// finishRecovery flips the engine into serving mode; openLogs must have
// succeeded first.
func (e *engine[M]) finishRecovery() { e.dur.recovering.Store(false) }

// checkpoint writes a new snapshot generation and truncates the WAL
// behind it: rotate every shard's log under all shard locks (the same
// consistent cut the snapshot sees), write the snapshot atomically,
// commit the new manifest, then garbage-collect the old segments and
// snapshot. Crash-safe at every step — the manifest write is the commit
// point.
func (e *engine[M]) checkpoint(encode func(io.Writer, []M) error) error {
	_, _, _, err := e.checkpointSubscribe(encode, nil)
	return err
}

// checkpointSubscribe is checkpoint with an optional replication
// subscriber: when sub is non-nil it is attached to the hub inside the
// withAllRead cut — all shard locks held, so no append can land between
// the snapshot and the attachment — and the new snapshot is returned as
// an open *os.File along with the base LSN (the hub's shipped count at
// the cut). The open fd survives the snapshot's later garbage
// collection (unlink keeps the inode readable), so /replicate can
// stream it without racing the next checkpoint. With sub nil both
// returns are zero and no file is opened.
func (e *engine[M]) checkpointSubscribe(encode func(io.Writer, []M) error, sub *replSub) (persist.Manifest, *os.File, uint64, error) {
	d := e.dur
	if d == nil {
		return persist.Manifest{}, nil, 0, fmt.Errorf("server: durability not configured")
	}
	if d.logs == nil {
		return persist.Manifest{}, nil, 0, errRecovering
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	gen := d.manifest.Generation + 1
	name := snapshotName(gen)
	starts := make([]uint64, len(d.logs))
	var baseLSN uint64
	err := e.withAllRead(func(models []M) error {
		for i, lg := range d.logs {
			seg, err := lg.Rotate()
			if err != nil {
				return fmt.Errorf("server: wal rotate shard %d: %w", i, err)
			}
			starts[i] = seg
		}
		if sub != nil {
			baseLSN = d.hub.attach(sub)
		}
		return persist.WriteFileAtomic(filepath.Join(d.opts.Dir, name), func(w io.Writer) error {
			return encode(w, models)
		})
	})
	if err != nil {
		if sub != nil {
			d.hub.detach(sub)
		}
		return persist.Manifest{}, nil, 0, err
	}
	prev := d.manifest
	m := persist.Manifest{Generation: gen, Epoch: d.epoch, Snapshot: name, Shards: len(d.logs), ShardStart: starts}
	if err := persist.SaveManifest(d.opts.Dir, m); err != nil {
		if sub != nil {
			d.hub.detach(sub)
		}
		return persist.Manifest{}, nil, 0, err
	}
	d.manifest = m
	d.hadState = true
	var snap *os.File
	if sub != nil {
		f, err := os.Open(filepath.Join(d.opts.Dir, name))
		if err != nil {
			d.hub.detach(sub)
			return persist.Manifest{}, nil, 0, fmt.Errorf("server: reopen snapshot: %w", err)
		}
		snap = f
	}
	// Everything below the new starts is folded into the snapshot;
	// removal is garbage collection, best-effort by design.
	for i, lg := range d.logs {
		lg.RemoveBefore(starts[i])
	}
	if prev.Snapshot != "" && prev.Snapshot != name {
		os.Remove(filepath.Join(d.opts.Dir, prev.Snapshot))
	}
	return m, snap, baseLSN, nil
}

// Generation returns the current snapshot generation (0 before the
// first checkpoint, or when durability is off).
func (e *engine[M]) Generation() uint64 {
	if e.dur == nil {
		return 0
	}
	d := e.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.manifest.Generation
}

// CloseDurability syncs and closes every shard's WAL and releases the
// directory lock. Inserts after it fail; call it after the final drain
// checkpoint.
func (e *engine[M]) CloseDurability() error {
	if e.dur == nil {
		return nil
	}
	var first error
	for _, lg := range e.dur.logs {
		if err := lg.Close(); err != nil && first == nil {
			first = err
		}
	}
	if e.dur.lock != nil {
		if err := e.dur.lock.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// durStats folds the durability counters into a Stats summary.
func (e *engine[M]) durStats(st *Stats) {
	d := e.dur
	if d == nil {
		return
	}
	st.WALEnabled = true
	st.Recovering = d.recovering.Load()
	st.WALReplayed = d.replayed.Load()
	st.WALDroppedRecords = d.dropped.Load()
	// d.logs is assigned once, before recovering flips false; reading it
	// only after observing !recovering rides that atomic's
	// happens-before edge, so /stats during background replay cannot
	// race the assignment.
	if !st.Recovering && d.logs != nil {
		for _, lg := range d.logs {
			ls := lg.Stats()
			st.WALAppends += ls.Appends
			st.WALSyncs += ls.Syncs
			st.WALBytes += ls.Bytes
		}
	}
	st.SnapshotGeneration = e.Generation()
}

// ---------------------------------------------------------------------
// record codecs

// encodeClassRecord frames one classification insert: label then the
// point, all little-endian 64-bit.
func encodeClassRecord(label int, x []float64) []byte {
	b := make([]byte, 8+8*len(x))
	binary.LittleEndian.PutUint64(b[0:8], uint64(int64(label)))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8+8*i:], math.Float64bits(v))
	}
	return b
}

// decodeClassRecord is the inverse of encodeClassRecord.
func decodeClassRecord(dim int, p []byte) (label int, x []float64, err error) {
	if len(p) != 8+8*dim {
		return 0, nil, fmt.Errorf("server: class record %d bytes, want %d", len(p), 8+8*dim)
	}
	label = int(int64(binary.LittleEndian.Uint64(p[0:8])))
	x = make([]float64, dim)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8+8*i:]))
	}
	return label, x, nil
}

// encodeClusterRecord frames one clustering ingest: the logical
// timestamp and granted descent budget — the two inputs besides the
// point that make a ClusTree descent deterministic — then the point.
func encodeClusterRecord(ts int64, granted int, x []float64) []byte {
	b := make([]byte, 16+8*len(x))
	binary.LittleEndian.PutUint64(b[0:8], uint64(ts))
	binary.LittleEndian.PutUint64(b[8:16], uint64(int64(granted)))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[16+8*i:], math.Float64bits(v))
	}
	return b
}

// decodeClusterRecord is the inverse of encodeClusterRecord.
func decodeClusterRecord(dim int, p []byte) (ts int64, granted int, x []float64, err error) {
	if len(p) != 16+8*dim {
		return 0, 0, nil, fmt.Errorf("server: cluster record %d bytes, want %d", len(p), 16+8*dim)
	}
	ts = int64(binary.LittleEndian.Uint64(p[0:8]))
	granted = int(int64(binary.LittleEndian.Uint64(p[8:16])))
	x = make([]float64, dim)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[16+8*i:]))
	}
	return ts, granted, x, nil
}

// ---------------------------------------------------------------------
// classification workload

// OpenDurableServer opens (or creates) the durable classification state
// at dopts.Dir: when a manifest exists its snapshot generation is
// loaded and bootstrap is not called; otherwise bootstrap supplies the
// initial server (empty shards, a data set, or a legacy snapshot file).
// The returned server is recovering — /healthz fails and writes are
// rejected — until Recover replays the WAL tail. The directory is
// locked (flock) for the life of the server, so a second process
// pointed at the same -wal-dir fails here instead of truncating live
// segments out from under the first.
func OpenDurableServer(dopts DurabilityOptions, cfg Config, bootstrap func() (*Server, error)) (*Server, error) {
	s, do, err := openDurable(dopts, func(r io.Reader) (*Server, error) {
		return FromSnapshot(r, cfg)
	}, bootstrap)
	if err != nil {
		return nil, err
	}
	s.attachDurability(dopts, do)
	return s, nil
}

// openDurable is the open sequence both workloads share: lock + sweep
// the directory, load the manifest, decode its checkpoint snapshot (or
// bootstrap a fresh model), and check the shard layout. On error the
// directory lock is released.
func openDurable[S interface {
	comparable
	NumShards() int
}](dopts DurabilityOptions, decode func(io.Reader) (S, error), bootstrap func() (S, error)) (S, durOpen, error) {
	var zero S
	do, err := openDurableDir(dopts)
	if err != nil {
		return zero, do, err
	}
	fail := func(err error) (S, durOpen, error) {
		do.lock.Close()
		return zero, durOpen{}, err
	}
	var s S
	if do.hadState && do.manifest.Snapshot != "" {
		f, err := os.Open(filepath.Join(dopts.Dir, do.manifest.Snapshot))
		if err != nil {
			return fail(fmt.Errorf("server: checkpoint snapshot: %w", err))
		}
		s, err = decode(f)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("server: checkpoint snapshot %s: %w", do.manifest.Snapshot, err))
		}
	} else {
		if s, err = bootstrap(); err != nil {
			return fail(err)
		}
		if s == zero {
			return fail(fmt.Errorf("server: nil bootstrap server"))
		}
	}
	if do.hadState && do.manifest.Shards != s.NumShards() {
		return fail(fmt.Errorf("server: manifest has %d shards, model has %d", do.manifest.Shards, s.NumShards()))
	}
	return s, do, nil
}

// openDurableDir validates the options, creates and exclusively locks
// the root directory, sweeps stale temp files and loads the manifest.
func openDurableDir(dopts DurabilityOptions) (durOpen, error) {
	if dopts.Dir == "" {
		return durOpen{}, fmt.Errorf("server: durability dir required")
	}
	if err := os.MkdirAll(dopts.Dir, 0o755); err != nil {
		return durOpen{}, fmt.Errorf("server: %w", err)
	}
	lock, err := lockDir(dopts.Dir)
	if err != nil {
		return durOpen{}, err
	}
	// Sweep temp files a crash mid-checkpoint stranded before staging
	// new ones through the same directory.
	if err := persist.RemoveStaleTemps(dopts.Dir); err != nil {
		lock.Close()
		return durOpen{}, err
	}
	m, had, err := persist.LoadManifest(dopts.Dir)
	if err != nil {
		lock.Close()
		return durOpen{}, err
	}
	fe, hadFenced := readFenced(dopts.Dir)
	return durOpen{manifest: m, hadState: had, lock: lock, fencedEpoch: fe, hadFenced: hadFenced}, nil
}

// lockDir takes a non-blocking exclusive flock on dir/LOCK — the
// single-writer guarantee of a durability directory. The kernel drops
// the lock whenever the holding process dies, so a crashed server
// never wedges its own restart.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: lock %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: durability dir %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

// Recover replays the WAL tail into the shard trees, opens the logs for
// appending and — when anything was replayed or this is a fresh
// directory — folds the result into a new checkpoint, so the next
// restart replays from a short log. Idempotent once recovered.
func (s *Server) Recover() error {
	d := s.dur
	if d == nil {
		return fmt.Errorf("server: durability not configured")
	}
	if !d.recovering.Load() {
		return nil
	}
	for i, sh := range s.shards {
		r, err := wal.OpenReader(shardWALDir(d.opts.Dir, i), s.shardLogStart(i))
		if err != nil {
			return fmt.Errorf("server: wal shard %d: %w", i, err)
		}
		err = func() error {
			defer r.Close()
			for {
				payload, err := r.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				label, x, err := decodeClassRecord(s.dim, payload)
				if err != nil {
					return err
				}
				// The shard lock keeps replay exclusive against a running
				// decay-maintenance loop.
				sh.mu.Lock()
				err = sh.tree.Insert(x, label)
				sh.mu.Unlock()
				if err != nil {
					return fmt.Errorf("replay: %w", err)
				}
				d.replayed.Add(1)
			}
		}()
		if err != nil {
			return fmt.Errorf("server: wal shard %d: %w", i, err)
		}
		d.dropped.Add(int64(r.Dropped()))
	}
	if err := s.openLogs(); err != nil {
		return err
	}
	// Replay leaves the descent mirrors unpublished (every Insert
	// invalidates); one refresh per shard restores the fast path before
	// the server starts answering.
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.refreshShardSoA(sh)
		sh.mu.Unlock()
	}
	s.finishRecovery()
	if !d.hadState || d.replayed.Load() > 0 || d.dropped.Load() > 0 {
		return s.Checkpoint()
	}
	return nil
}

// Checkpoint writes a new snapshot generation and truncates the WAL
// behind it — the durable form of WriteSnapshot. The serving commands
// run it on drain; long-lived deployments can also call it
// periodically to bound replay time.
func (s *Server) Checkpoint() error {
	return s.checkpoint(func(w io.Writer, trees []*core.MultiTree) error {
		return persist.EncodeMultiTrees(w, trees)
	})
}

// knownLabel reports whether the server predicts this class — the
// pre-validation that keeps the WAL free of records whose apply would
// fail.
func (s *Server) knownLabel(label int) bool {
	for _, l := range s.labels {
		if l == label {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// clustering workload

// OpenDurableCluster is OpenDurableServer for the clustering workload:
// manifest + checkpoint snapshot win, otherwise bootstrap supplies the
// initial server. The result is recovering until Recover completes.
func OpenDurableCluster(dopts DurabilityOptions, cfg Config, copts ClusterOptions, bootstrap func() (*ClusterServer, error)) (*ClusterServer, error) {
	s, do, err := openDurable(dopts, func(r io.Reader) (*ClusterServer, error) {
		return ClusterFromSnapshot(r, cfg, copts)
	}, bootstrap)
	if err != nil {
		return nil, err
	}
	s.attachDurability(dopts, do)
	return s, nil
}

// clusterReplayHead is one shard's next pending record during the
// timestamp merge.
type clusterReplayHead struct {
	ts      int64
	granted int
	x       []float64
}

// Recover replays the WAL tail into the shard trees. The per-shard logs
// are merged by logical timestamp so the global clock — and the
// pyramidal store's recording boundaries — advance exactly as they did
// in the original run, then the logs open for appending and the result
// is folded into a new checkpoint. Idempotent once recovered.
func (s *ClusterServer) Recover() error {
	d := s.dur
	if d == nil {
		return fmt.Errorf("server: durability not configured")
	}
	if !d.recovering.Load() {
		return nil
	}
	readers := make([]*wal.Reader, len(s.shards))
	heads := make([]*clusterReplayHead, len(s.shards))
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
	}()
	advance := func(i int) error {
		heads[i] = nil
		payload, err := readers[i].Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("server: wal shard %d: %w", i, err)
		}
		ts, granted, x, err := decodeClusterRecord(s.ccfg.Dim, payload)
		if err != nil {
			return fmt.Errorf("server: wal shard %d: %w", i, err)
		}
		heads[i] = &clusterReplayHead{ts: ts, granted: granted, x: x}
		return nil
	}
	for i := range s.shards {
		r, err := wal.OpenReader(shardWALDir(d.opts.Dir, i), s.shardLogStart(i))
		if err != nil {
			return fmt.Errorf("server: wal shard %d: %w", i, err)
		}
		readers[i] = r
		if err := advance(i); err != nil {
			return err
		}
	}
	for {
		best := -1
		for i, h := range heads {
			if h != nil && (best < 0 || h.ts < heads[best].ts) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		h := heads[best]
		sh := s.shards[best]
		// The shard lock keeps replay exclusive against a running decay-
		// maintenance loop.
		sh.mu.Lock()
		if h.ts > s.clock.Load() {
			s.clock.Store(h.ts)
		}
		_, err := sh.tree.t.InsertCounted(h.x, float64(h.ts), h.granted)
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("server: replay shard %d: %w", best, err)
		}
		d.replayed.Add(1)
		s.maybeRecord(h.ts)
		if err := advance(best); err != nil {
			return err
		}
	}
	for i, r := range readers {
		d.dropped.Add(int64(r.Dropped()))
		readers[i] = nil
		r.Close()
	}
	if err := s.openLogs(); err != nil {
		return err
	}
	s.finishRecovery()
	if !d.hadState || d.replayed.Load() > 0 || d.dropped.Load() > 0 {
		return s.Checkpoint()
	}
	return nil
}

// Checkpoint writes a new snapshot generation (trees, pyramidal store,
// clock) and truncates the WAL behind it — the durable form of
// WriteSnapshot.
func (s *ClusterServer) Checkpoint() error {
	return s.checkpoint(s.encodeSet)
}
