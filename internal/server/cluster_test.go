package server

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/stream"
)

// clusterPoint draws an observation from one of two well-separated
// unit-cube sources.
func clusterPoint(rng *rand.Rand, src int) []float64 {
	centers := [][2]float64{{0.2, 0.25}, {0.8, 0.7}}
	return []float64{
		centers[src][0] + 0.04*rng.NormFloat64(),
		centers[src][1] + 0.04*rng.NormFloat64(),
	}
}

// newTestCluster builds a clustering server with no decay and the
// given shard count.
func newTestCluster(t *testing.T, shards int, lambda float64, cfg Config) *ClusterServer {
	t.Helper()
	ccfg := clustree.DefaultConfig(2)
	ccfg.Lambda = lambda
	cs, err := NewCluster(ccfg, shards, cfg, ClusterOptions{SnapshotEvery: 256})
	if err != nil {
		t.Fatalf("new cluster server: %v", err)
	}
	return cs
}

// TestClusterIngestAndMacro: bulk ingest from two sources must come
// back out of the offline step as two macro clusters near the sources.
func TestClusterIngestAndMacro(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cs := newTestCluster(t, shards, 0.001, Config{})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 2000; i++ {
			if _, err := cs.Insert(clusterPoint(rng, i%2), -1); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		macros, _, mcs := cs.MacroClusters(0.15, 5)
		if len(mcs) == 0 {
			t.Fatalf("%d shards: no micro-clusters after 2000 inserts", shards)
		}
		if len(macros) != 2 {
			t.Fatalf("%d shards: %d macro clusters, want 2", shards, len(macros))
		}
		found := 0
		for _, want := range [][2]float64{{0.2, 0.25}, {0.8, 0.7}} {
			for _, m := range macros {
				if math.Hypot(m.Mean[0]-want[0], m.Mean[1]-want[1]) < 0.08 {
					found++
					break
				}
			}
		}
		if found != 2 {
			t.Fatalf("%d shards: macro means %v do not match the two sources", shards, macros)
		}
		st := cs.Stats()
		if st.Observations != 2000 || st.Clock != 2000 {
			t.Fatalf("%d shards: observations %d clock %d, want 2000/2000", shards, st.Observations, st.Clock)
		}
		if shards > 1 {
			nonEmpty := 0
			for _, n := range st.ShardSizes {
				if n > 0 {
					nonEmpty++
				}
			}
			if nonEmpty < 2 {
				t.Fatalf("hash routing left only %d non-empty shards", nonEmpty)
			}
		}
		if st.SnapshotsRetained == 0 {
			t.Fatal("pyramidal store retained no snapshots")
		}
	}
}

// TestClusterBudgetStarvation: zero-budget ingest must park objects in
// inner buffers instead of failing, and total weight must be conserved
// (λ = 0, so nothing fades).
func TestClusterBudgetStarvation(t *testing.T) {
	cs := newTestCluster(t, 2, 0, Config{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1500; i++ {
		budget := -1
		if i%3 != 0 {
			budget = 1 // starved: parks once the trees grow past one level
		}
		res, err := cs.Insert(clusterPoint(rng, i%2), budget)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if res.Granted != res.Requested {
			t.Fatalf("insert %d: granted %d != requested %d with admission off", i, res.Granted, res.Requested)
		}
	}
	st := cs.Stats()
	if st.Parked == 0 {
		t.Fatal("no parked insertions under budget starvation")
	}
	if math.Abs(st.Weight-1500) > 1e-6 {
		t.Fatalf("weight %v after 1500 undecayed inserts, want 1500", st.Weight)
	}
	for _, sh := range cs.shards {
		if err := sh.tree.t.Validate(); err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
	}
}

// TestClusterAdmissionDegrades: a tiny node capacity must shallow the
// descents (parking objects) rather than erroring or blocking.
func TestClusterAdmissionDegrades(t *testing.T) {
	cs := newTestCluster(t, 2, 0, Config{NodesPerSecond: 100, Burst: 50, DefaultBudget: 8})
	rng := rand.New(rand.NewSource(11))
	granted := 0
	for i := 0; i < 800; i++ {
		res, err := cs.Insert(clusterPoint(rng, i%2), 8)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		granted += res.Granted
	}
	if granted >= 800*8 {
		t.Fatalf("granted %d node visits, admission had no effect", granted)
	}
	st := cs.Stats()
	if st.Observations != 800 {
		t.Fatalf("observations %d, want 800 — overload must not drop objects", st.Observations)
	}
}

// TestClusterSnapshotRoundTrip: a decayed, budget-starved clustering
// server saved and reloaded must report micro-clusters digit-identical
// to the original — CF floats bit for bit — and keep the clock and the
// pyramidal store.
func TestClusterSnapshotRoundTrip(t *testing.T) {
	cs := newTestCluster(t, 3, 0.002, Config{})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1800; i++ {
		budget := -1
		if i%4 == 0 {
			budget = 1
		}
		if _, err := cs.Insert(clusterPoint(rng, i%2), budget); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := cs.WriteSnapshot(&buf); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	re, err := ClusterFromSnapshot(bytes.NewReader(buf.Bytes()), Config{}, ClusterOptions{SnapshotEvery: 256})
	if err != nil {
		t.Fatalf("from snapshot: %v", err)
	}
	if re.NumShards() != 3 || re.Clock() != cs.Clock() {
		t.Fatalf("reloaded %d shards clock %d, want 3 / %d", re.NumShards(), re.Clock(), cs.Clock())
	}
	a, b := cs.MicroClusters(0), re.MicroClusters(0)
	if len(a) != len(b) {
		t.Fatalf("micro-cluster count %d != %d", len(b), len(a))
	}
	for i := range a {
		if a[i].CF.N != b[i].CF.N {
			t.Fatalf("micro %d: N %v != %v", i, b[i].CF.N, a[i].CF.N)
		}
		for k := range a[i].CF.LS {
			if a[i].CF.LS[k] != b[i].CF.LS[k] || a[i].CF.SS[k] != b[i].CF.SS[k] {
				t.Fatalf("micro %d dim %d: CF diverged", i, k)
			}
		}
	}
	if w1, w2 := cs.Stats().Weight, re.Stats().Weight; w1 != w2 {
		t.Fatalf("weight %v != %v after round trip", w2, w1)
	}
	if s1, s2 := cs.SnapshotsRetained(), re.SnapshotsRetained(); s1 != s2 {
		t.Fatalf("store retained %d != %d after round trip", s2, s1)
	}
	// The reloaded server must be live: further ingest works.
	if _, err := re.Insert([]float64{0.5, 0.5}, -1); err != nil {
		t.Fatalf("insert after reload: %v", err)
	}
}

// TestClusterStreamEngine drives clustering ingest through
// stream.RunBatch with budgets drawn from a bursty arrival process, and
// WithDecayEvery ticking the maintenance sweep — the drifting-stream
// regime: after the source moves, the decayed model must follow it.
func TestClusterStreamEngine(t *testing.T) {
	ccfg := clustree.DefaultConfig(2)
	ccfg.Lambda = 0.004
	cs, err := NewCluster(ccfg, 2, Config{
		DefaultBudget: 8,
		Decay:         core.DecayOptions{Lambda: 0.004, MinWeight: 0.2},
	}, ClusterOptions{SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("new cluster server: %v", err)
	}
	var _ stream.Engine = cs        // compile-time interface checks
	var _ stream.DecayAdvancer = cs //

	rng := rand.New(rand.NewSource(9))
	items := make([]stream.Item, 3000)
	for i := range items {
		src := 0
		if i >= 1500 {
			src = 1 // the concept moves half-way through
		}
		items[i] = stream.Item{X: clusterPoint(rng, src), Labeled: true}
	}
	eng := stream.WithDecayEvery(cs, 200)
	res, err := stream.RunBatch(eng, items, stream.Poisson{Rate: 100},
		stream.Budgeter{NodesPerSecond: 400, MaxNodes: 16}, 13, 64, 4)
	if err != nil {
		t.Fatalf("run batch: %v", err)
	}
	if res.Processed != 3000 || cs.Len() != 3000 {
		t.Fatalf("processed %d, server ingested %d, want 3000", res.Processed, cs.Len())
	}
	if cs.Stats().DecayEpoch == 0 {
		t.Fatal("WithDecayEvery never ticked the maintenance sweep")
	}
	// After drift + decay the dominant mass must sit at the new source.
	macros, _, _ := cs.MacroClusters(0.15, 3)
	if len(macros) == 0 {
		t.Fatal("no macro clusters after drift run")
	}
	best := macros[0]
	for _, m := range macros {
		if m.Weight > best.Weight {
			best = m
		}
	}
	if math.Hypot(best.Mean[0]-0.8, best.Mean[1]-0.7) > 0.1 {
		t.Fatalf("dominant macro cluster at %v; decayed model did not follow the drift to (0.8, 0.7)", best.Mean)
	}
}

// TestClusterConcurrent hammers ingest against micro-cluster reads and
// stats; under -race this is the exclusive-lock proof for the lazily
// decaying workload.
func TestClusterConcurrent(t *testing.T) {
	cs := newTestCluster(t, 4, 0.001, Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs.MicroClusters(0.5)
				cs.Stats()
			}
		}()
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1200; i++ {
		if _, err := cs.Insert(clusterPoint(rng, i%2), 4); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if cs.Len() != 1200 {
		t.Fatalf("len %d after concurrent ingest, want 1200", cs.Len())
	}
}

// TestClusterValidation covers constructor and routing edge cases.
func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(clustree.DefaultConfig(2), 0, Config{}, ClusterOptions{}); err == nil {
		t.Fatal("NewCluster with 0 shards succeeded")
	}
	cs := newTestCluster(t, 2, 0, Config{})
	if _, err := cs.Insert([]float64{1}, -1); err == nil {
		t.Fatal("insert with wrong dim succeeded")
	}
	if d := cs.Dim(); d != 2 {
		t.Fatalf("dim %d, want 2", d)
	}
	if _, err := cs.Window(10, 20, 0.1); err == nil {
		t.Fatal("window on empty store succeeded")
	}
}
