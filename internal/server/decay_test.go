package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bayestree/internal/core"
)

// conceptPoint draws a labelled observation from one of two mirrored
// concepts: under concept A class 0 lives bottom-left and class 1
// top-right; concept B swaps them — maximally contradictory drift.
func conceptPoint(rng *rand.Rand, label int, swapped bool) []float64 {
	c := label
	if swapped {
		c = 1 - label
	}
	base := 0.25 + 0.5*float64(c)
	return []float64{base + 0.05*rng.NormFloat64(), base + 0.05*rng.NormFloat64()}
}

func decayServerConfig(decay bool) Config {
	cfg := Config{DefaultBudget: 40}
	if decay {
		cfg.Decay = core.DecayOptions{Lambda: 1, MinWeight: 0.05}
	}
	return cfg
}

func newDecayTestServer(t *testing.T, decay bool) *Server {
	t.Helper()
	treeCfg := core.Config{Dim: 2, MinFanout: 2, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6,
		Kernel: core.DefaultConfig(2).Kernel}
	s, err := NewEmpty(2, treeCfg, []int{0, 1}, core.MultiOptions{}, decayServerConfig(decay))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// httpInsertBatch bulk-inserts labelled points through the NDJSON
// /insert endpoint.
func httpInsertBatch(t *testing.T, url string, xs [][]float64, labels []int) {
	t.Helper()
	var body bytes.Buffer
	for i, x := range xs {
		line, err := json.Marshal(insertRequest{X: x, Label: labels[i]})
		if err != nil {
			t.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(url+"/insert", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk insert status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ack map[string]interface{}
		if err := dec.Decode(&ack); err != nil {
			t.Fatal(err)
		}
		if e, ok := ack["error"]; ok {
			t.Fatalf("insert error: %v", e)
		}
	}
}

// httpClassify classifies one point through /classify.
func httpClassify(t *testing.T, url string, x []float64, budget int) Result {
	t.Helper()
	body, err := json.Marshal(classifyRequest{X: x, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func httpStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The acceptance test of the drift tentpole, at the HTTP level: insert
// from concept A, advance decay epochs while concept B streams in, and
// the decay-enabled server's post-drift accuracy must beat the
// append-only baseline while its node count stays bounded.
func TestServerTracksDriftOverHTTP(t *testing.T) {
	decaySrv := newDecayTestServer(t, true)
	baseSrv := newDecayTestServer(t, false)
	decayHTTP := httptest.NewServer(decaySrv.Handler())
	defer decayHTTP.Close()
	baseHTTP := httptest.NewServer(baseSrv.Handler())
	defer baseHTTP.Close()

	makeBatch := func(rng *rand.Rand, n int, swapped bool) ([][]float64, []int) {
		xs := make([][]float64, n)
		ys := make([]int, n)
		for i := range xs {
			ys[i] = i % 2
			xs[i] = conceptPoint(rng, ys[i], swapped)
		}
		return xs, ys
	}
	accuracy := func(url string, rng *rand.Rand, swapped bool) float64 {
		const probes = 200
		correct := 0
		for i := 0; i < probes; i++ {
			label := i % 2
			res := httpClassify(t, url, conceptPoint(rng, label, swapped), 40)
			if res.Label == label {
				correct++
			}
		}
		return float64(correct) / probes
	}

	// Phase 1: both servers learn concept A.
	rng := rand.New(rand.NewSource(21))
	xs, ys := makeBatch(rng, 400, false)
	httpInsertBatch(t, decayHTTP.URL, xs, ys)
	httpInsertBatch(t, baseHTTP.URL, xs, ys)
	if acc := accuracy(decayHTTP.URL, rand.New(rand.NewSource(22)), false); acc < 0.9 {
		t.Fatalf("pre-drift accuracy %.3f, want ≥ 0.9", acc)
	}

	// Phase 2: the concept swaps; epochs advance as B streams in. The
	// baseline gets the same data but never forgets.
	for round := 0; round < 8; round++ {
		xs, ys := makeBatch(rng, 100, true)
		httpInsertBatch(t, decayHTTP.URL, xs, ys)
		httpInsertBatch(t, baseHTTP.URL, xs, ys)
		decaySrv.AdvanceDecay()
	}

	probeRng := rand.New(rand.NewSource(23))
	accDecay := accuracy(decayHTTP.URL, probeRng, true)
	accBase := accuracy(baseHTTP.URL, rand.New(rand.NewSource(23)), true)
	if accDecay < 0.95 {
		t.Errorf("decay server post-drift accuracy %.3f, want ≥ 0.95", accDecay)
	}
	if accDecay <= accBase {
		t.Errorf("decay server (%.3f) did not beat append-only baseline (%.3f) after drift", accDecay, accBase)
	}

	decStats := httpStats(t, decayHTTP.URL)
	baseStats := httpStats(t, baseHTTP.URL)
	if !decStats.DecayEnabled || decStats.DecayEpoch != 8 {
		t.Errorf("decay stats: enabled=%v epoch=%d, want enabled at epoch 8", decStats.DecayEnabled, decStats.DecayEpoch)
	}
	if decStats.PointsPruned == 0 {
		t.Error("decay server pruned nothing across 8 epochs of drift")
	}
	// Bounded memory: the decaying server holds a bounded working set
	// (~the mass of the last few epochs), while the baseline holds the
	// full 1200-observation history.
	if decStats.Observations >= baseStats.Observations {
		t.Errorf("decay server observations %d not below baseline %d", decStats.Observations, baseStats.Observations)
	}
	if decStats.Nodes >= baseStats.Nodes {
		t.Errorf("decay server nodes %d not below baseline %d", decStats.Nodes, baseStats.Nodes)
	}
	if decStats.Observations > 500 {
		t.Errorf("decay server observations %d not bounded (inserted 1200)", decStats.Observations)
	}
	t.Logf("post-drift accuracy: decay %.3f vs append-only %.3f; decay obs=%d nodes=%d pruned=%d vs baseline obs=%d nodes=%d",
		accDecay, accBase, decStats.Observations, decStats.Nodes, decStats.PointsPruned,
		baseStats.Observations, baseStats.Nodes)
}

// The background maintenance loop must coexist with concurrent HTTP
// classify and insert traffic (run under -race in CI) and stop cleanly
// on Close.
func TestServerMaintenanceLoopConcurrentTraffic(t *testing.T) {
	treeCfg := core.Config{Dim: 2, MinFanout: 2, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6,
		Kernel: core.DefaultConfig(2).Kernel}
	cfg := decayServerConfig(true)
	cfg.DecayEvery = 2 * time.Millisecond
	s, err := NewEmpty(2, treeCfg, []int{0, 1}, core.MultiOptions{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seedRng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		if err := s.Insert(conceptPoint(seedRng, i%2, false), i%2); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func(seed int64) { // writer
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var body bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				body.Reset()
				label := rng.Intn(2)
				fmt.Fprintf(&body, `{"x":[%f,%f],"label":%d}`+"\n",
					0.25+0.5*float64(label)+0.05*rng.NormFloat64(),
					0.25+0.5*float64(label)+0.05*rng.NormFloat64(), label)
				resp, err := http.Post(ts.URL+"/insert", "application/json", strings.NewReader(body.String()))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}(int64(40 + w))
		go func(seed int64) { // reader
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"x":[%f,%f],"budget":20}`, rng.Float64(), rng.Float64())
				resp, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}(int64(50 + w))
	}
	time.Sleep(80 * time.Millisecond)
	close(stop)
	wg.Wait()

	if e := s.Stats().DecayEpoch; e == 0 {
		t.Error("maintenance loop never advanced the decay epoch")
	}
	s.Close()
	s.Close() // idempotent
	// The server still serves after maintenance stops.
	if _, err := s.Classify([]float64{0.3, 0.3}, 10); err != nil {
		t.Fatalf("classify after Close: %v", err)
	}
}

// A decayed server's model must survive the snapshot round trip: decay
// state and weights reload, answers match, and maintenance keeps
// working on the reloaded server.
func TestServerDecaySnapshotRoundTrip(t *testing.T) {
	s := newDecayTestServer(t, true)
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 200; i++ {
		if err := s.Insert(conceptPoint(rng, i%2, false), i%2); err != nil {
			t.Fatal(err)
		}
	}
	s.AdvanceDecay()
	for i := 0; i < 100; i++ {
		if err := s.Insert(conceptPoint(rng, i%2, true), i%2); err != nil {
			t.Fatal(err)
		}
	}
	s.AdvanceDecay()
	s.AdvanceDecay() // outstanding decay at snapshot time

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Reload with no decay override: the trees' own persisted decay
	// state must re-arm forgetting.
	re, err := FromSnapshot(bytes.NewReader(buf.Bytes()), Config{DefaultBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Stats().DecayEnabled {
		t.Fatal("reloaded server lost its decay state")
	}
	probeRng := rand.New(rand.NewSource(62))
	for i := 0; i < 50; i++ {
		x := conceptPoint(probeRng, i%2, true)
		a, err := s.Classify(x, -1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.Classify(x, -1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Label != b.Label {
			t.Fatalf("probe %d: reloaded server predicts %d, original %d", i, b.Label, a.Label)
		}
	}
	beforeObs := re.Stats().Observations
	re.AdvanceDecay()
	st := re.Stats()
	if st.DecayEpoch == 0 {
		t.Error("reloaded server's epoch did not advance")
	}
	if st.Observations > beforeObs {
		t.Errorf("reloaded server grew during sweep: %d -> %d", beforeObs, st.Observations)
	}
}
