package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newClusterHTTP spins up a test HTTP server over a fresh clustering
// server.
func newClusterHTTP(t *testing.T, cs *ClusterServer) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(cs.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterHTTPEndToEnd is the serving acceptance path: NDJSON bulk
// ingest of a drifting two-source stream through one connection, then
// /macroclusters must report sensible clusters, /microclusters and
// /stats must be consistent, and /window must serve the pyramidal view.
func TestClusterHTTPEndToEnd(t *testing.T) {
	cs := newTestCluster(t, 2, 0.001, Config{})
	ts := newClusterHTTP(t, cs)

	rng := rand.New(rand.NewSource(17))
	var in bytes.Buffer
	const n = 1536
	for i := 0; i < n; i++ {
		x := clusterPoint(rng, i%2)
		budget := 8
		if i%5 == 0 {
			budget = 1 // starved lines park
		}
		fmt.Fprintf(&in, `{"x":[%v,%v],"budget":%d}`+"\n", x[0], x[1], budget)
	}
	resp, err := http.Post(ts.URL+"/cluster", "application/x-ndjson", &in)
	if err != nil {
		t.Fatalf("bulk ingest: %v", err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ack clusterLineResponse
		if err := json.Unmarshal(sc.Bytes(), &ack); err != nil {
			t.Fatalf("ack line %d: %v", lines, err)
		}
		if ack.Error != "" {
			t.Fatalf("ack line %d: %s", lines, ack.Error)
		}
		lines++
	}
	if lines != n {
		t.Fatalf("%d ack lines for %d request lines", lines, n)
	}

	var stats ClusterStats
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Observations != n || stats.Clock != int64(n) {
		t.Fatalf("stats observations %d clock %d, want %d", stats.Observations, stats.Clock, n)
	}
	if stats.Parked == 0 {
		t.Fatal("no parked insertions despite starved lines")
	}

	var micro struct {
		Count int                `json:"count"`
		MCs   []microClusterJSON `json:"micro_clusters"`
	}
	getJSON(t, ts.URL+"/microclusters?minw=0.5", &micro)
	if micro.Count == 0 || len(micro.MCs) != micro.Count {
		t.Fatalf("microclusters count %d with %d entries", micro.Count, len(micro.MCs))
	}

	var macro struct {
		Macros []macroClusterJSON `json:"macro_clusters"`
		Noise  int                `json:"noise"`
	}
	getJSON(t, ts.URL+"/macroclusters?eps=0.15&minw=5", &macro)
	if len(macro.Macros) != 2 {
		t.Fatalf("%d macro clusters, want the 2 sources", len(macro.Macros))
	}
	found := 0
	for _, want := range [][2]float64{{0.2, 0.25}, {0.8, 0.7}} {
		for _, m := range macro.Macros {
			if math.Hypot(m.Mean[0]-want[0], m.Mean[1]-want[1]) < 0.08 {
				found++
				break
			}
		}
	}
	if found != 2 {
		t.Fatalf("macro means %v do not match the sources", macro.Macros)
	}

	var window struct {
		Micro int `json:"micro_clusters"`
	}
	getJSON(t, fmt.Sprintf("%s/window?t1=%d&t2=%d&eps=0.15&minw=1", ts.URL, n/2, n), &window)
	if window.Micro == 0 {
		t.Fatal("windowed view returned no micro-clusters")
	}
}

// getJSON GETs a URL and decodes the JSON body, failing on non-200.
func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestClusterHTTPSingleAndErrors covers the single-object form and the
// endpoint error paths.
func TestClusterHTTPSingleAndErrors(t *testing.T) {
	cs := newTestCluster(t, 2, 0, Config{})
	ts := newClusterHTTP(t, cs)

	resp, err := http.Post(ts.URL+"/cluster", "application/json",
		strings.NewReader(`{"x":[0.4,0.4],"budget":5}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var res ClusterResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if res.Requested != 5 || res.Granted != 5 {
		t.Fatalf("requested/granted %d/%d, want 5/5", res.Requested, res.Granted)
	}

	for _, tc := range []struct {
		method, path, body string
		status             int
	}{
		{"POST", "/cluster", `{"x":[1],"budget":5}`, http.StatusBadRequest},
		{"POST", "/cluster", `{garbage`, http.StatusBadRequest},
		{"GET", "/cluster", "", http.StatusMethodNotAllowed},
		{"POST", "/microclusters", "", http.StatusMethodNotAllowed},
		{"POST", "/macroclusters", "", http.StatusMethodNotAllowed},
		{"GET", "/macroclusters?eps=bogus", "", http.StatusBadRequest},
		{"GET", "/window?t1=9&t2=3", "", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}

	// Draining: readiness fails (liveness stays 200), ingest rejected.
	cs.SetDraining(true)
	resp, _ = http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/cluster", "application/json",
		strings.NewReader(`{"x":[0.4,0.4],"budget":5}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cluster while draining: %d", resp.StatusCode)
	}
	resp.Body.Close()
}
