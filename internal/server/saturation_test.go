package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
)

// Admission saturation, as a property test on a stubbed clock: under
// sustained overload the server's answers degrade — granted budgets
// fall to zero — but classification never errors, and total consumed
// node reads stay within the token bucket's rate·T + burst envelope
// even with refunds recycling unspent grants.

// TestAdmissionSaturationDegradesNeverErrors freezes the bucket's
// clock, drains it with a hammer of classify calls, and checks the
// degrade-never-error contract plus the hard capacity bound.
func TestAdmissionSaturationDegradesNeverErrors(t *testing.T) {
	const (
		rate   = 50.0
		burst  = 100.0
		budget = 8
	)
	s, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{},
		Config{NodesPerSecond: rate, Burst: burst})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	xs, ys := classPoints(90)
	for i := range xs {
		if err := s.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Stub the admission clock: time moves only when the test says so.
	now := time.Unix(1_000_000, 0)
	s.admit.now = func() time.Time { return now }

	// Phase 1 — frozen clock: no refill ever. The bucket starts full at
	// burst; once consumed node reads reach it, every answer must be
	// granted 0, marked degraded, and still carry a valid label.
	readBefore := s.Stats().NodesRead
	zeroRun := 0
	for i := 0; i < 5000 && zeroRun < 50; i++ {
		res, err := s.Classify(xs[i%len(xs)], budget)
		if err != nil {
			t.Fatalf("classify %d errored under overload: %v", i, err)
		}
		if res.Requested != budget {
			t.Fatalf("requested = %d, want %d", res.Requested, budget)
		}
		if res.Granted == 0 {
			zeroRun++
			if !res.Degraded {
				t.Fatalf("granted 0 of %d not marked degraded", budget)
			}
		} else {
			zeroRun = 0
		}
	}
	if zeroRun < 50 {
		t.Fatalf("bucket never drained to sustained zero grants (run = %d)", zeroRun)
	}
	consumed := s.Stats().NodesRead - readBefore
	if float64(consumed) > burst {
		t.Fatalf("frozen clock: consumed %d node reads > burst %g", consumed, burst)
	}

	// Phase 2 — advance the clock in fixed steps under saturating demand:
	// consumed reads over T seconds stay within rate·T plus whatever
	// balance phase 1 left (< burst), with refunds recycling rather than
	// multiplying capacity. The lower bound checks refunds do not strand
	// capacity either: the bucket's fractional carry means sustained
	// demand consumes nearly everything refilled.
	const (
		steps   = 400
		stepDur = 10 * time.Millisecond
	)
	readBefore = s.Stats().NodesRead
	for i := 0; i < steps; i++ {
		now = now.Add(stepDur)
		res, err := s.Classify(xs[i%len(xs)], budget)
		if err != nil {
			t.Fatalf("classify errored while clock advanced: %v", err)
		}
		if res.Granted > res.Requested {
			t.Fatalf("granted %d exceeds requested %d", res.Granted, res.Requested)
		}
	}
	T := (time.Duration(steps) * stepDur).Seconds()
	consumed = s.Stats().NodesRead - readBefore
	if float64(consumed) > rate*T+burst {
		t.Fatalf("consumed %d node reads over %.1fs > rate·T+burst = %g", consumed, T, rate*T+burst)
	}
	if float64(consumed) < rate*T/2 {
		t.Fatalf("consumed %d node reads over %.1fs < half of rate·T = %g — refunds stranding capacity",
			consumed, T, rate*T)
	}
	if st := s.Stats(); st.Degraded == 0 {
		t.Fatal("stats carry no degraded_requests after sustained overload")
	}
}

// TestHTTPClassifyCarriesBudgetFields pins the wire names of the
// per-response load signals on /classify: "requested", "granted" and
// "degraded" — what loadgen and any external monitor key on — in both
// the uncontended (granted == requested) and the saturated
// (granted < requested, degraded true) regimes.
func TestHTTPClassifyCarriesBudgetFields(t *testing.T) {
	xs, ys := classPoints(60)

	// Uncontended: no admission control, granted equals requested.
	free, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	for i := range xs {
		if err := free.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	raw := postJSON(t, httptest.NewServer(free.Handler()), "/classify",
		`{"x":[0,0,0],"budget":8}`)
	requireField(t, raw, "requested", float64(8))
	requireField(t, raw, "granted", float64(8))
	requireField(t, raw, "degraded", false)

	// Saturated: a one-token bucket that never visibly refills, so the
	// second request is clipped and must say so on the wire.
	tight, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{},
		Config{NodesPerSecond: 0.001, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tight.Close()
	for i := range xs {
		if err := tight.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(tight.Handler())
	postJSON(t, ts, "/classify", `{"x":[0,0,0],"budget":8}`) // drains the single token
	raw = postJSON(t, ts, "/classify", `{"x":[0,0,0],"budget":8}`)
	requireField(t, raw, "requested", float64(8))
	requireField(t, raw, "granted", float64(0))
	requireField(t, raw, "degraded", true)
	if _, ok := raw["label"]; !ok {
		t.Fatal("degraded answer carries no label — degrade must still answer")
	}
}

// TestHTTPClusterCarriesBudgetFields is the clustering-side pin:
// /cluster ingest answers carry "requested", "granted", "degraded" and
// "parked".
func TestHTTPClusterCarriesBudgetFields(t *testing.T) {
	free, err := NewCluster(clustree.DefaultConfig(2), 2, Config{}, ClusterOptions{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer free.Close()
	raw := postJSON(t, httptest.NewServer(free.Handler()), "/cluster",
		`{"x":[0.3,0.7],"budget":4}`)
	requireField(t, raw, "requested", float64(4))
	requireField(t, raw, "granted", float64(4))
	requireField(t, raw, "degraded", false)
	if _, ok := raw["parked"]; !ok {
		t.Fatalf("cluster answer carries no \"parked\" field: %v", raw)
	}

	tight, err := NewCluster(clustree.DefaultConfig(2), 2,
		Config{NodesPerSecond: 0.001, Burst: 1}, ClusterOptions{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tight.Close()
	ts := httptest.NewServer(tight.Handler())
	postJSON(t, ts, "/cluster", `{"x":[0.3,0.7],"budget":4}`) // drains the single token
	raw = postJSON(t, ts, "/cluster", `{"x":[0.4,0.6],"budget":4}`)
	requireField(t, raw, "granted", float64(0))
	requireField(t, raw, "degraded", true)
}

// postJSON POSTs body to path and decodes the 200 answer into a raw
// map, so assertions see the wire field names rather than Go structs.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) map[string]any {
	t.Helper()
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	return raw
}

// requireField asserts a decoded wire answer carries key with value.
func requireField(t *testing.T, raw map[string]any, key string, want any) {
	t.Helper()
	got, ok := raw[key]
	if !ok {
		t.Fatalf("answer carries no %q field: %v", key, raw)
	}
	if got != want {
		t.Fatalf("%q = %v, want %v", key, got, want)
	}
}
