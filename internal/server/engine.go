package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bayestree/internal/core"
)

// This file is the workload-agnostic engine layer: everything the
// serving subsystem does that does not depend on what the shards hold.
// The paper's anytime contract — budgeted refinement, CF additivity,
// exponential decay — is one machine instantiated by several workloads
// (the multi-class Bayes tree classifier, the Section-4.2 ClusTree),
// and this layer serves any of them behind the same machinery:
//
//   - per-shard reader/writer locks, so reads fan out concurrently
//     while writes touch one shard;
//   - a global token-bucket admission controller with refunds, so the
//     aggregate refinement work tracks a configured node capacity and
//     overload coarsens answers instead of queueing them;
//   - size-proportional budget splitting across shards;
//   - a background decay-maintenance loop that advances the epoch and
//     sweeps faded mass one short write-lock slice at a time;
//   - draining state for graceful shutdown behind a load balancer.
//
// A workload plugs in by implementing Model for its per-shard type and
// embedding engine[M]; Server (classification) and ClusterServer
// (clustering) are the two instantiations.

// Model is the per-shard contract a workload implements to be served by
// the engine: size and mass accounting for budget splitting and stats,
// plus the decay-maintenance surface. *core.MultiTree implements it
// directly; the clustering workload wraps *clustree.Tree.
type Model interface {
	// Len is the number of observations the model holds (for models
	// that aggregate rather than store, the lifetime insert count).
	Len() int
	// Weight is the effective (decayed) total mass — exactly
	// float64(Len()) for undecayed models.
	Weight() float64
	// CountNodes is the tree node count, the bounded-memory observable
	// of a decaying model.
	CountNodes() int
	// Epoch returns the model's current decay epoch.
	Epoch() int64
	// AdvanceEpoch advances the model's logical decay clock by n epochs.
	AdvanceEpoch(n int64)
	// DecaySweep prunes mass that faded below the configured floor,
	// reporting what was removed.
	DecaySweep() core.SweepStats
	// DecayConfig reports the decay options in effect.
	DecayConfig() core.DecayOptions
	// EnableDecay turns on (or overrides) exponential forgetting.
	EnableDecay(core.DecayOptions) error
}

// soaShard is the optional model surface for the structure-of-arrays
// descent mirror: models that implement it get their mirror refreshed
// under the shard write lock after every mutation and report its
// maintenance counters into /stats. *core.MultiTree implements it; the
// clustering workload does not, so the engine hooks no-op there.
type soaShard interface {
	RefreshSoA()
	SoACounters() (rebuilds, patches, invalidations int64)
}

// shard is one partition of a served model behind a reader/writer lock.
type shard[M Model] struct {
	mu   sync.RWMutex
	tree M
}

// engine is the generic serving core a workload embeds. All methods are
// safe for concurrent use.
type engine[M Model] struct {
	cfg      Config
	shards   []*shard[M]
	admit    *tokenBucket
	start    time.Time
	draining atomic.Bool

	// exclusive marks workloads whose reads mutate the model (lazily
	// applied decay): their "read" paths take the shard write lock.
	exclusive bool

	// dur is the durability layer (write-ahead log + checkpoints), nil
	// when the workload runs memory-only. See durable.go.
	dur *durState

	// repl is the replication role and staleness state: follower vs
	// primary, epoch fencing, applied LSN. See replication.go.
	repl replState

	// decayOn is set when any shard forgets (via Config.Decay or a
	// warm-started snapshot's own decay state); maintStop/maintDone
	// bracket the background maintenance loop.
	decayOn   bool
	maintStop chan struct{}
	maintDone chan struct{}
	closeOnce sync.Once

	// soaRefresh gates the SoA mirror hooks (off under
	// Config.Query.ExactDescent); soaHits/soaMisses count shard queries
	// that did / did not descend through a published mirror.
	soaRefresh bool
	soaHits    atomic.Int64
	soaMisses  atomic.Int64

	requests       atomic.Int64
	inserts        atomic.Int64
	nodesRequested atomic.Int64
	nodesGranted   atomic.Int64
	nodesRead      atomic.Int64
	degraded       atomic.Int64
	decayEpoch     atomic.Int64
	pointsPruned   atomic.Int64
	subtreesPruned atomic.Int64
}

// init wires the engine over pre-built per-shard models: admission,
// decay override and the background maintenance loop. exclusive marks
// workloads whose reads mutate the model.
func (e *engine[M]) init(models []M, cfg Config, exclusive bool) error {
	if len(models) == 0 {
		return fmt.Errorf("server: no shards")
	}
	cfg = cfg.withDefaults()
	e.cfg = cfg
	e.exclusive = exclusive
	e.start = time.Now()
	for _, m := range models {
		e.shards = append(e.shards, &shard[M]{tree: m})
	}
	if cfg.NodesPerSecond > 0 {
		e.admit = newTokenBucket(cfg.NodesPerSecond, cfg.Burst)
	}
	if cfg.Decay.Enabled() {
		for _, sh := range e.shards {
			if err := sh.tree.EnableDecay(cfg.Decay); err != nil {
				return fmt.Errorf("server: %w", err)
			}
		}
	}
	for _, sh := range e.shards {
		if sh.tree.DecayConfig().Enabled() {
			e.decayOn = true
		}
		if ep := sh.tree.Epoch(); ep > e.decayEpoch.Load() {
			e.decayEpoch.Store(ep)
		}
	}
	// Publish the structure-of-arrays descent mirror on every shard that
	// supports it (unless exact descent is forced), so serving starts on
	// the fast path; the per-mutation hooks keep it fresh from here.
	e.soaRefresh = !cfg.Query.ExactDescent
	for _, sh := range e.shards {
		e.refreshShardSoA(sh)
	}
	if e.decayOn && cfg.DecayEvery > 0 {
		e.maintStop = make(chan struct{})
		e.maintDone = make(chan struct{})
		go e.maintain(cfg.DecayEvery)
	}
	return nil
}

// refreshShardSoA refreshes a shard model's structure-of-arrays mirror
// if the workload has one. The caller must hold the shard's write lock
// (or otherwise have exclusive access, as init and recovery do).
func (e *engine[M]) refreshShardSoA(sh *shard[M]) {
	if !e.soaRefresh {
		return
	}
	if m, ok := any(sh.tree).(soaShard); ok {
		m.RefreshSoA()
	}
}

// rlock takes the read side of a shard's lock — the write side instead
// for exclusive workloads, whose reads apply decay in place.
func (e *engine[M]) rlock(sh *shard[M]) {
	if e.exclusive {
		sh.mu.Lock()
	} else {
		sh.mu.RLock()
	}
}

// runlock releases what rlock took.
func (e *engine[M]) runlock(sh *shard[M]) {
	if e.exclusive {
		sh.mu.Unlock()
	} else {
		sh.mu.RUnlock()
	}
}

// maintain is the background maintenance loop: one decay epoch per
// tick. Each tick takes the per-shard write locks one at a time in
// short slices, so reads on the other shards keep flowing and reads on
// the swept shard wait only for that shard's sweep.
func (e *engine[M]) maintain(every time.Duration) {
	defer close(e.maintDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-e.maintStop:
			return
		case <-tick.C:
			e.AdvanceDecay()
		}
	}
}

// AdvanceDecay advances the decay epoch by one on every shard and runs
// the maintenance sweep — rescale, prune below the weight floor,
// collapse underfull subtrees. It locks one shard at a time so reads
// never wait on more than one shard's sweep. A no-op (zero stats) when
// no shard decays.
func (e *engine[M]) AdvanceDecay() core.SweepStats {
	var agg core.SweepStats
	if !e.decayOn {
		return agg
	}
	e.decayEpoch.Add(1)
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.tree.AdvanceEpoch(1)
		st := sh.tree.DecaySweep()
		// Epoch advance and sweep are the structural invalidation
		// triggers; rebuild the descent mirror while we still hold the
		// write lock so reads never see a stale one.
		e.refreshShardSoA(sh)
		sh.mu.Unlock()
		agg.PointsPruned += st.PointsPruned
		agg.SubtreesPruned += st.SubtreesPruned
		agg.SubtreesCollapsed += st.SubtreesCollapsed
		agg.Reinserted += st.Reinserted
	}
	e.pointsPruned.Add(int64(agg.PointsPruned))
	e.subtreesPruned.Add(int64(agg.SubtreesPruned))
	return agg
}

// Close stops the background maintenance loop, if one is running. Safe
// to call multiple times; the engine still serves afterwards (only
// maintenance stops).
func (e *engine[M]) Close() {
	e.closeOnce.Do(func() {
		if e.maintStop != nil {
			close(e.maintStop)
			<-e.maintDone
		}
	})
}

// NumShards returns the number of shards.
func (e *engine[M]) NumShards() int { return len(e.shards) }

// Rough per-node and per-observation resident-memory costs behind
// ApproxBytes: a tree node carries entries with rects, CF vectors and
// frozen caches; an observation is its float64 coordinates plus slice
// headers. The constants are deliberately coarse — the estimate feeds
// the registry's resident-bytes paging cap, where being within 2× is
// enough to bound a process, and recomputing true sizes would walk
// every allocation.
const (
	approxNodeBytes = 384
	approxObsBytes  = 96
)

// ApproxBytes estimates the model's resident memory from its node and
// observation counts — the observable the multi-tenant registry's
// resident-bytes cap pages against. It takes each shard's read lock
// briefly; the result is an estimate, not an accounting.
func (e *engine[M]) ApproxBytes() int64 {
	var nodes, obs int
	for _, sh := range e.shards {
		e.rlock(sh)
		nodes += sh.tree.CountNodes()
		obs += sh.tree.Len()
		e.runlock(sh)
	}
	return int64(nodes)*approxNodeBytes + int64(obs)*approxObsBytes
}

// Len returns the total number of observations across all shards.
func (e *engine[M]) Len() int {
	total := 0
	for _, sh := range e.shards {
		e.rlock(sh)
		total += sh.tree.Len()
		e.runlock(sh)
	}
	return total
}

// SetDraining marks the engine as draining (or not): /healthz starts
// failing so load balancers stop routing here and newly arriving
// requests are rejected with 503. Requests already being processed are
// unaffected — the serving commands pair this with http.Server.Shutdown,
// which waits for them to finish.
func (e *engine[M]) SetDraining(v bool) { e.draining.Store(v) }

// Draining reports whether the engine is draining.
func (e *engine[M]) Draining() bool { return e.draining.Load() }

// clampBudget resolves a request-level budget against the configured
// default and cap: 0 means the server default, negative means "as much
// as allowed". This is the HTTP-facing convention; the stream.Engine
// path uses capBudget instead, where 0 is a literal zero.
func (e *engine[M]) clampBudget(budget int) int {
	if budget == 0 {
		budget = e.cfg.DefaultBudget
	}
	return e.capBudget(budget)
}

// capBudget applies only the hard cap: negative and over-cap budgets
// become MaxBudget, everything else — including 0 — is taken literally.
func (e *engine[M]) capBudget(budget int) int {
	if budget < 0 || budget > e.cfg.MaxBudget {
		budget = e.cfg.MaxBudget
	}
	return budget
}

// grant passes a resolved budget through admission and the request
// counters, returning what was granted and a finish func the caller
// must invoke with the node reads actually spent — unspent grant flows
// back into the bucket so exhaustion does not eat configured capacity,
// and reads beyond the grant (the clustering workload's terminal-node
// visit) are debited best-effort so the long-run node-read rate still
// tracks the configured capacity.
func (e *engine[M]) grant(requested int) (granted int, finish func(read int)) {
	granted = e.admit.take(requested)
	e.requests.Add(1)
	e.nodesRequested.Add(int64(requested))
	e.nodesGranted.Add(int64(granted))
	if granted < requested {
		e.degraded.Add(1)
	}
	return granted, func(read int) {
		if granted > read {
			e.admit.refund(granted - read)
		} else if read > granted {
			e.admit.take(read - granted)
		}
		e.nodesRead.Add(int64(read))
	}
}

// sizesAndWeights snapshots every shard's observation count and
// effective mass — the inputs to proportional budget splitting and
// size-weighted score merging.
func (e *engine[M]) sizesAndWeights() (sizes []int, weights []float64, total int, totalW float64) {
	sizes = make([]int, len(e.shards))
	weights = make([]float64, len(e.shards))
	for i, sh := range e.shards {
		e.rlock(sh)
		sizes[i] = sh.tree.Len()
		// Effective decayed mass; exactly float64(Len) for undecayed
		// shards, so the λ = 0 mixture weights are digit-identical to
		// the count-based ones.
		weights[i] = sh.tree.Weight()
		e.runlock(sh)
		total += sizes[i]
		totalW += weights[i]
	}
	return sizes, weights, total, totalW
}

// splitBudget divides a granted budget across shards in proportion to
// their sizes, remainder to the earliest non-empty shards — the exact
// split the union model would spend on each partition.
func splitBudget(granted int, sizes []int, total int) []int {
	budgets := make([]int, len(sizes))
	if total == 0 {
		return budgets
	}
	spent := 0
	for i, n := range sizes {
		budgets[i] = granted * n / total
		spent += budgets[i]
	}
	for i := 0; spent < granted && i < len(budgets); i++ {
		if sizes[i] > 0 {
			budgets[i]++
			spent++
		}
	}
	return budgets
}

// withAllRead runs fn over every shard's model while holding all shard
// read locks (write locks for exclusive workloads), so fn sees one
// consistent cut across the whole sharded model — the snapshot path.
func (e *engine[M]) withAllRead(fn func(models []M) error) error {
	models := make([]M, len(e.shards))
	for i, sh := range e.shards {
		e.rlock(sh)
		defer e.runlock(sh)
		models[i] = sh.tree
	}
	return fn(models)
}

// baseStats fills the workload-agnostic part of a Stats summary.
func (e *engine[M]) baseStats() Stats {
	st := Stats{
		UptimeSeconds:  time.Since(e.start).Seconds(),
		Shards:         len(e.shards),
		Requests:       e.requests.Load(),
		Inserts:        e.inserts.Load(),
		NodesRequested: e.nodesRequested.Load(),
		NodesGranted:   e.nodesGranted.Load(),
		NodesRead:      e.nodesRead.Load(),
		Degraded:       e.degraded.Load(),
		Draining:       e.draining.Load(),
		DecayEnabled:   e.decayOn,
		DecayEpoch:     e.decayEpoch.Load(),
		PointsPruned:   e.pointsPruned.Load(),
		SubtreesPruned: e.subtreesPruned.Load(),
	}
	st.SoAHits = e.soaHits.Load()
	st.SoAMisses = e.soaMisses.Load()
	for _, sh := range e.shards {
		e.rlock(sh)
		n := sh.tree.Len()
		st.Nodes += sh.tree.CountNodes()
		st.Weight += sh.tree.Weight()
		if m, ok := any(sh.tree).(soaShard); ok {
			r, p, inv := m.SoACounters()
			st.SoARebuilds += r
			st.SoAPatches += p
			st.SoAInvalidations += inv
		}
		e.runlock(sh)
		st.ShardSizes = append(st.ShardSizes, n)
		st.Observations += n
	}
	e.durStats(&st)
	e.replStats(&st)
	return st
}
