// Package server is the anytime serving subsystem: a workload-agnostic
// engine (per-shard reader/writer locks, a global token-bucket
// admission controller that makes aggregate refinement work track a
// configured node-read capacity, size-proportional budget splitting,
// background decay maintenance and graceful draining — see engine.go)
// instantiated for the paper's two anytime workloads. Server serves
// multi-class Bayes tree classification over HTTP (/classify with
// single and NDJSON streaming forms, /insert, /stats, /healthz);
// ClusterServer serves the Section-4.2 anytime clustering extension
// (/cluster, /microclusters, /macroclusters, /window, /stats,
// /healthz). Both support snapshot save/load for warm starts.
//
// With decay configured (Config.Decay) the engine also forgets: a
// background maintenance loop advances the decay epoch and sweeps the
// shards — fading old mass by 2^(−λ·Δe), pruning what falls below the
// weight floor — one short per-shard write-lock slice at a time, so a
// long-running server stays bounded and tracks concept drift instead
// of serving yesterday's distribution forever.
//
// Sharding model: observations are hash-partitioned across shards, each
// shard holding an independent model over its partition. Because
// cluster features are additive, the union model is exactly the
// combination of the shard models — for classification a classification
// fans out over all shards, splitting its granted node budget in
// proportion to shard sizes, and combines the per-shard class scores
// with a size-weighted log-sum-exp; for clustering the union
// micro-cluster set is the concatenation of the shard sets. Reads take
// the shard RLock, so any number of reads proceed concurrently; an
// insert write-locks only the one shard that owns the point, leaving
// the other shards' read capacity untouched.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/persist"
	"bayestree/internal/stats"
)

// DefaultMaxBudget caps per-request refinement budgets when Config
// leaves MaxBudget zero, bounding the work one request can demand.
const DefaultMaxBudget = 1024

// Config parameterises a served workload — classification and
// clustering share it (the clustering engine ignores Query).
type Config struct {
	// DefaultBudget is the node-read budget used when a request does not
	// specify one (zero means 32).
	DefaultBudget int
	// MaxBudget caps any single request's budget, including "full
	// refinement" requests (≤ 0 means DefaultMaxBudget).
	MaxBudget int
	// NodesPerSecond is the global admission capacity in node reads per
	// second across all requests; 0 disables admission control.
	NodesPerSecond float64
	// Burst is the admission bucket capacity in node reads (≤ 0 means
	// max(NodesPerSecond, MaxBudget)).
	Burst float64
	// Query selects the descent strategy and priority used for every
	// classification query (zero value = the paper's best: global
	// probabilistic). The clustering workload ignores it.
	Query core.ClassifierOptions
	// Decay configures exponential forgetting on every shard: Lambda is
	// the per-epoch fade exponent (weights decay as 2^(−λ·Δe)) and
	// MinWeight the maintenance sweep's pruning floor. The zero value
	// keeps today's append-only behaviour. When set it overrides
	// whatever decay options warm-started trees carried.
	Decay core.DecayOptions
	// DecayEvery is the wall-clock length of one decay epoch. With
	// Decay enabled and DecayEvery > 0, New starts a background
	// maintenance loop that advances the epoch and sweeps the shards
	// one write lock at a time; stop it with Close. Zero leaves
	// maintenance to explicit AdvanceDecay calls (tests or external
	// schedulers).
	DecayEvery time.Duration
}

// withDefaults returns the configuration with zero values resolved.
func (c Config) withDefaults() Config {
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 32
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = DefaultMaxBudget
	}
	if c.Burst <= 0 {
		c.Burst = c.NodesPerSecond
		if float64(c.MaxBudget) > c.Burst {
			c.Burst = float64(c.MaxBudget)
		}
	}
	return c
}

// Server is the sharded anytime classification instantiation of the
// engine. All methods are safe for concurrent use.
type Server struct {
	engine[*core.MultiTree]
	labels []int
	dim    int
}

// New builds a server over pre-built per-shard trees. All shards must
// share one dimensionality and one class-label ordering (score
// combination relies on positional alignment); shards may be empty and
// fill up through Insert.
func New(trees []*core.MultiTree, cfg Config) (*Server, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("server: no shards")
	}
	labels := trees[0].Labels()
	dim := trees[0].Config().Dim
	for i, t := range trees {
		if t == nil {
			return nil, fmt.Errorf("server: nil shard %d", i)
		}
		if t.Config().Dim != dim {
			return nil, fmt.Errorf("server: shard %d dim %d != shard 0 dim %d", i, t.Config().Dim, dim)
		}
		tl := t.Labels()
		if len(tl) != len(labels) {
			return nil, fmt.Errorf("server: shard %d has %d classes, shard 0 has %d", i, len(tl), len(labels))
		}
		for c := range tl {
			if tl[c] != labels[c] {
				return nil, fmt.Errorf("server: shard %d label order %v != shard 0 %v", i, tl, labels)
			}
		}
	}
	s := &Server{labels: labels, dim: dim}
	if err := s.init(trees, cfg, false); err != nil {
		return nil, err
	}
	return s, nil
}

// NewEmpty builds a server of empty shards that learns purely online:
// every shard starts with an empty multi-class tree over the given
// labels and fills up through Insert.
func NewEmpty(shards int, treeCfg core.Config, labels []int, mopts core.MultiOptions, cfg Config) (*Server, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("server: shard count %d", shards)
	}
	trees := make([]*core.MultiTree, shards)
	for i := range trees {
		t, err := core.NewMultiTree(treeCfg, labels, mopts)
		if err != nil {
			return nil, err
		}
		trees[i] = t
	}
	return New(trees, cfg)
}

// FromSnapshot builds a server from a sharded-set snapshot written by
// WriteSnapshot (or persist.EncodeMultiTrees), warm-starting with the
// saved trees' frozen caches rebuilt.
func FromSnapshot(r io.Reader, cfg Config) (*Server, error) {
	trees, err := persist.DecodeMultiTrees(r)
	if err != nil {
		return nil, err
	}
	return New(trees, cfg)
}

// WriteSnapshot encodes every shard's tree into one versioned snapshot.
// It holds all shard read locks for the duration, so the snapshot is a
// consistent cut: concurrent classifications proceed, inserts wait.
func (s *Server) WriteSnapshot(w io.Writer) error {
	return s.withAllRead(func(trees []*core.MultiTree) error {
		return persist.EncodeMultiTrees(w, trees)
	})
}

// Labels returns the class labels the server predicts.
func (s *Server) Labels() []int { return append([]int(nil), s.labels...) }

// Dim returns the dimensionality of served observations.
func (s *Server) Dim() int { return s.dim }

// Result is the outcome of one served classification.
type Result struct {
	// Label is the predicted class.
	Label int `json:"label"`
	// Requested is the node budget the request asked for (after capping).
	Requested int `json:"requested"`
	// Granted is what the admission controller allowed — under load this
	// drops toward zero and answers coarsen instead of queueing.
	Granted int `json:"granted"`
	// NodesRead is the refinement work actually spent; it can fall short
	// of Granted when the models exhaust early.
	NodesRead int `json:"nodes_read"`
	// Degraded reports that admission clipped this answer: Granted fell
	// short of Requested, so the answer came from a coarser model level
	// than asked for. This is the per-response load signal a client (or
	// the load harness) reads without touching /stats.
	Degraded bool `json:"degraded"`
	// Scores, Weight and Labels are the merge surface a scatter-gather
	// tier needs: Scores carries the combined per-class log scores
	// aligned with Labels, and Weight the total effective mass they were
	// mixed under. A size-weighted log-sum-exp over per-group (Scores,
	// Weight) pairs reproduces the in-process shard merge digit for
	// digit, because log-sum-exp of a single element is exact. Over HTTP
	// they are attached only when the request asks (`"scores":true`), so
	// existing wire responses are unchanged.
	Scores ScoreList `json:"scores,omitempty"`
	Weight float64   `json:"weight,omitempty"`
	Labels []int     `json:"labels,omitempty"`
}

// ScoreList is a []float64 whose JSON form maps non-finite values to
// null: class log scores are legitimately -Inf for classes a partition
// holds no mass for, and JSON numbers cannot carry infinities.
type ScoreList []float64

// MarshalJSON implements json.Marshaler, encoding non-finite scores as
// null.
func (s ScoreList) MarshalJSON() ([]byte, error) {
	out := make([]*float64, len(s))
	for i := range s {
		if v := s[i]; !math.IsInf(v, 0) && !math.IsNaN(v) {
			out[i] = &s[i]
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, decoding null back to
// -Inf (the only non-finite value the score merge produces).
func (s *ScoreList) UnmarshalJSON(b []byte) error {
	var raw []*float64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*s = make(ScoreList, len(raw))
	for i, p := range raw {
		if p == nil {
			(*s)[i] = math.Inf(-1)
		} else {
			(*s)[i] = *p
		}
	}
	return nil
}

// Classify serves one anytime classification: the requested budget is
// capped, passed through admission, split across shards in proportion
// to their sizes, spent on per-shard anytime queries under shard read
// locks, and the per-shard class scores are combined with a
// size-weighted log-sum-exp — exactly the mixture the union tree would
// have produced. budget 0 means the server default, negative means "as
// much as the cap and admission allow".
func (s *Server) Classify(x []float64, budget int) (Result, error) {
	return s.classifyResolved(x, s.clampBudget(budget))
}

// classifyResolved is Classify after budget resolution: requested is
// the final capped request, admission decides what of it is granted,
// and whatever granted work the models could not absorb (exhaustion,
// errors) is refunded to the bucket so unspent grants do not eat the
// configured node-read capacity.
func (s *Server) classifyResolved(x []float64, requested int) (Result, error) {
	if len(x) != s.dim {
		return Result{}, fmt.Errorf("server: point dim %d != model dim %d", len(x), s.dim)
	}
	granted, finish := s.grant(requested)
	read := 0
	defer func() { finish(read) }()

	sizes, weights, total, totalW := s.sizesAndWeights()
	if total == 0 || totalW <= 0 {
		return Result{}, fmt.Errorf("server: no observations yet")
	}
	budgets := splitBudget(granted, sizes, total)

	combined := make([]float64, len(s.labels))
	perClass := make([][]float64, len(s.labels))
	for c := range perClass {
		perClass[c] = make([]float64, 0, len(s.shards))
	}
	for i, sh := range s.shards {
		if sizes[i] == 0 {
			continue
		}
		sh.mu.RLock()
		q, err := sh.tree.NewQuery(x, s.cfg.Query)
		if err != nil {
			sh.mu.RUnlock()
			return Result{}, fmt.Errorf("server: shard %d: %w", i, err)
		}
		for b := 0; b < budgets[i]; b++ {
			if !q.Step() {
				break
			}
		}
		read += q.NodesRead()
		scores := q.Scores()
		if q.UsedSoA() {
			s.soaHits.Add(1)
		} else {
			s.soaMisses.Add(1)
		}
		q.Close()
		sh.mu.RUnlock()
		logW := math.Log(weights[i] / totalW)
		for c, sc := range scores {
			if !math.IsInf(sc, -1) {
				perClass[c] = append(perClass[c], logW+sc)
			}
		}
	}
	best := 0
	for c := range combined {
		if len(perClass[c]) == 0 {
			combined[c] = math.Inf(-1)
		} else {
			combined[c] = stats.LogSumExp(perClass[c])
		}
		if combined[c] > combined[best] {
			best = c
		}
	}
	return Result{
		Label: s.labels[best], Requested: requested, Granted: granted,
		NodesRead: read, Degraded: granted < requested,
		Scores: combined, Weight: totalW,
	}, nil
}

// Insert routes a labelled observation to its shard by content hash and
// inserts it under the shard write lock; the remaining shards keep
// serving reads untouched. This is the serving form of the paper's
// online learning requirement. On a durable server the insert is
// appended to the shard's write-ahead log first (pre-validated so the
// apply cannot fail), under the same lock, so a crash after the ack
// replays it.
func (s *Server) Insert(x []float64, label int) error {
	if len(x) != s.dim {
		return fmt.Errorf("server: point dim %d != model dim %d", len(x), s.dim)
	}
	if s.Recovering() {
		return errRecovering
	}
	if err := s.writeAllowed(); err != nil {
		return err
	}
	idx := shardIndex(x, len(s.shards))
	sh := s.shards[idx]
	var rec []byte
	if s.durableOn() {
		// Log-before-apply requires the apply to be total: reject here
		// exactly what core.MultiTree.Insert would reject, so no logged
		// record can fail replay.
		if !s.knownLabel(label) {
			return fmt.Errorf("server: unknown class label %d", label)
		}
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("server: non-finite coordinate %d", i)
			}
		}
		rec = encodeClassRecord(label, x)
	}
	sh.mu.Lock()
	if rec != nil {
		if err := s.logAppend(idx, rec); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("server: wal: %w", err)
		}
	}
	err := sh.tree.Insert(x, label)
	if err == nil {
		// Re-publish the descent mirror while the write lock still
		// fences readers: split-free inserts patch in place, splits
		// rebuild.
		s.refreshShardSoA(sh)
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.inserts.Add(1)
	return nil
}

// Learn is Insert under the name stream.Engine expects, so
// stream.RunBatch can drive a live server for ingest-while-serving.
func (s *Server) Learn(x []float64, label int) error { return s.Insert(x, label) }

// ApplyReplicated applies one WAL record shipped from a primary to the
// given shard, through the follower's own log-before-apply path — the
// replica's on-disk state is itself durable and byte-identical to what
// the primary logged. Used by the replication tailer; not a client API.
func (s *Server) ApplyReplicated(shard int, payload []byte) error {
	if s.Recovering() {
		return errRecovering
	}
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("server: replicated record for shard %d of %d", shard, len(s.shards))
	}
	label, x, err := decodeClassRecord(s.dim, payload)
	if err != nil {
		return err
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	if s.durableOn() {
		if err := s.logAppend(shard, payload); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("server: wal: %w", err)
		}
	}
	err = sh.tree.Insert(x, label)
	if err == nil {
		s.refreshShardSoA(sh)
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.inserts.Add(1)
	s.repl.applied.Add(1)
	return nil
}

// ClassifyBatchBudgets classifies xs[i] with budget budgets[i],
// returning predictions in input order (workers ≤ 0 = GOMAXPROCS,
// matching the core.Classifier implementation of the same contract).
// Budgets are literal here — 0 means zero node reads, the level-0
// answer — matching the stream.Engine contract, where each object's
// budget is exactly what its inter-arrival gap allowed; only the hard
// MaxBudget cap applies. Each item still passes the admission
// controller individually, so a batch cannot starve single requests.
// Together with Learn this implements stream.Engine.
//
// Unlike the solo path, which fans each request out over the shards on
// its own, the batch runs one fused MultiTree.ScoreBatch per shard:
// same-shard queries advance in lockstep and group their visits to the
// same SoA node block, so the block's memory traffic is paid once per
// round instead of once per query. Every item's scores stay bitwise
// equal to its solo classification. (Fused queries are not counted in
// the soa_hits/soa_misses stats — those track the solo path.)
func (s *Server) ClassifyBatchBudgets(xs [][]float64, budgets []int, workers int) ([]int, error) {
	if len(budgets) != len(xs) {
		return nil, fmt.Errorf("server: %d budgets for %d objects", len(budgets), len(xs))
	}
	if len(xs) == 0 {
		return []int{}, nil
	}
	for i, x := range xs {
		if len(x) != s.dim {
			return nil, fmt.Errorf("server: object %d dim %d != model dim %d", i, len(x), s.dim)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reads := make([]int, len(xs))
	finishers := make([]func(int), len(xs))
	defer func() {
		for i, fin := range finishers {
			if fin != nil {
				fin(reads[i])
			}
		}
	}()
	itemBudgets := make([][]int, len(xs))
	sizes, weights, total, totalW := s.sizesAndWeights()
	if total == 0 || totalW <= 0 {
		return nil, fmt.Errorf("server: no observations yet")
	}
	for i := range xs {
		granted, fin := s.grant(s.capBudget(budgets[i]))
		finishers[i] = fin
		itemBudgets[i] = splitBudget(granted, sizes, total)
	}
	// One fused batch per shard, every shard's results kept per item.
	shardScores := make([][][]float64, len(s.shards))
	shardBudgets := make([]int, len(xs))
	for si, sh := range s.shards {
		if sizes[si] == 0 {
			continue
		}
		for i := range xs {
			shardBudgets[i] = itemBudgets[i][si]
		}
		sh.mu.RLock()
		scores, shardReads, err := sh.tree.ScoreBatch(xs, s.cfg.Query, shardBudgets, workers)
		sh.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", si, err)
		}
		shardScores[si] = scores
		for i, r := range shardReads {
			reads[i] += r
		}
	}
	// Size-weighted log-sum-exp merge per item — the same combination,
	// in the same shard order, as the solo path.
	preds := make([]int, len(xs))
	buf := make([]float64, 0, len(s.shards))
	for i := range xs {
		best := 0
		bestScore := math.Inf(-1)
		for c := range s.labels {
			buf = buf[:0]
			for si := range s.shards {
				if shardScores[si] == nil {
					continue
				}
				if sc := shardScores[si][i][c]; !math.IsInf(sc, -1) {
					buf = append(buf, math.Log(weights[si]/totalW)+sc)
				}
			}
			combined := math.Inf(-1)
			if len(buf) > 0 {
				combined = stats.LogSumExp(buf)
			}
			if combined > bestScore {
				best, bestScore = c, combined
			}
		}
		preds[i] = s.labels[best]
	}
	return preds, nil
}

// runPool runs fn(i) for i in [0, n) on up to workers goroutines fed by
// an atomic counter — the one worker-pool shape every batch path here
// shares.
func runPool(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// shardIndex hashes an observation's float bits to a shard index — the
// content-hash routing every workload shares, so a snapshot reloaded
// into the same shard count routes identically.
func shardIndex(x []float64, shards int) int {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range x {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return int(h.Sum64() % uint64(shards))
}

// RouteShard is shardIndex exported for the scatter-gather proxy: it
// consistent-hash-routes an observation across n partitions with the
// same function the engine uses across shards, so a proxy over n
// single-shard groups partitions the stream exactly as an n-shard
// single process would.
func RouteShard(x []float64, n int) int { return shardIndex(x, n) }

// SplitBudget is splitBudget exported for the scatter-gather proxy: it
// divides a granted node-read budget across partitions in proportion to
// their sizes under exactly the in-process contract (floor of the
// proportional share, remainder to the earliest non-empty partitions).
func SplitBudget(granted int, sizes []int, total int) []int {
	return splitBudget(granted, sizes, total)
}

// Stats is a point-in-time summary of a served workload, served by
// /stats.
type Stats struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Shards         int     `json:"shards"`
	Observations   int     `json:"observations"`
	ShardSizes     []int   `json:"shard_sizes"`
	Labels         []int   `json:"labels"`
	Requests       int64   `json:"requests"`
	Inserts        int64   `json:"inserts"`
	NodesRequested int64   `json:"nodes_requested"`
	NodesGranted   int64   `json:"nodes_granted"`
	NodesRead      int64   `json:"nodes_read"`
	// Degraded counts requests whose granted budget fell short of what
	// they asked for — with Requests, the load signal as a rate.
	Degraded int64 `json:"degraded_requests"`
	Draining bool  `json:"draining"`
	// Nodes is the total tree node count across shards — the bounded-
	// memory observable of a decaying server.
	Nodes int `json:"nodes"`
	// Decay reports the forgetting state: whether any shard decays, the
	// current epoch, the effective (decayed) total mass and the
	// lifetime pruning counters of the maintenance sweeps.
	DecayEnabled   bool    `json:"decay_enabled"`
	DecayEpoch     int64   `json:"decay_epoch"`
	Weight         float64 `json:"weight"`
	PointsPruned   int64   `json:"points_pruned"`
	SubtreesPruned int64   `json:"subtrees_pruned"`
	// SoA reports the vectorized-descent mirror's effectiveness: hits and
	// misses count solo classifications' shard queries that did / did not
	// descend through a published structure-of-arrays mirror, and the
	// rebuild/patch/invalidation counters aggregate the shards' mirror
	// maintenance (the third trigger of the frozen-cache invalidation
	// contract). All zero for workloads without a mirror.
	SoAHits          int64 `json:"soa_hits"`
	SoAMisses        int64 `json:"soa_misses"`
	SoARebuilds      int64 `json:"soa_rebuilds"`
	SoAPatches       int64 `json:"soa_patches"`
	SoAInvalidations int64 `json:"soa_invalidations"`
	// Durability reports the write-ahead-log state: whether inserts are
	// logged, whether WAL replay is still rebuilding the model (writes
	// rejected, /healthz failing), the replay and group-commit counters
	// and the current checkpoint generation. All zero when the server
	// runs memory-only.
	WALEnabled         bool   `json:"wal_enabled"`
	Recovering         bool   `json:"recovering"`
	WALAppends         int64  `json:"wal_appends"`
	WALSyncs           int64  `json:"wal_syncs"`
	WALBytes           int64  `json:"wal_bytes"`
	WALReplayed        int64  `json:"wal_replayed"`
	WALDroppedRecords  int64  `json:"wal_dropped_records"`
	SnapshotGeneration uint64 `json:"snapshot_generation"`
	// Replication reports the primary/replica state: this process's role
	// and fencing epoch, the shipped-LSN fan-out counters on a primary,
	// and the applied-LSN / staleness bound on a follower. StalenessMs is
	// the milliseconds since the follower last knew it matched the
	// primary's shipped LSN (−1 before the first bootstrap completes); a
	// caught-up follower's bound stays near the heartbeat interval, and a
	// paused or disconnected tail makes it grow without limit.
	Role           string `json:"role,omitempty"`
	Epoch          uint64 `json:"epoch"`
	Fenced         bool   `json:"fenced"`
	FencedBy       uint64 `json:"fenced_by,omitempty"`
	ReplFollowers  int64  `json:"repl_followers"`
	ReplShippedLSN uint64 `json:"repl_shipped_lsn"`
	// ReplSubBuffered is the per-attached-follower hub buffer occupancy
	// in frames (sorted ascending; capacity replSubBuffer each), and
	// ReplOverflowCuts the lifetime count of subscribers cut for
	// overflowing theirs — the back-pressure observables a proxy prober
	// or operator watches to see a slow follower before it is dropped.
	ReplSubBuffered  []int  `json:"repl_sub_buffered,omitempty"`
	ReplOverflowCuts int64  `json:"repl_overflow_cuts"`
	AppliedLSN       uint64 `json:"applied_lsn"`
	StalenessMs      int64  `json:"staleness_ms"`
	ReplConnected    bool   `json:"repl_connected"`
}

// Stats returns a point-in-time summary of shard sizes and the
// admission counters. The ratio NodesGranted/NodesRequested is the
// load signal: it falls below 1 exactly when the admission controller
// is coarsening answers to hold the node-read rate at capacity.
func (s *Server) Stats() Stats {
	st := s.baseStats()
	st.Labels = s.Labels()
	return st
}
