package server

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"bayestree/internal/core"
	"bayestree/internal/replica"
)

// Multi-follower fan-out: one primary ships its WAL to several
// concurrent followers at once. The properties: every follower
// converges digit-identical to an uninterrupted reference run, a
// follower that detaches mid-stream costs the others nothing, and a
// subscriber that stops draining is cut alone — backpressure from one
// slow link never stalls the primary or its healthy peers.

// TestReplicationFanOutThreeFollowers runs three concurrent followers
// against one primary and requires all of them to catch up
// digit-identical; dropping one mid-stream leaves the other two
// converging on the longer prefix.
func TestReplicationFanOutThreeFollowers(t *testing.T) {
	const n, half, nf = 240, 120, 3
	xs, ys := classPoints(n)
	prim := newDurableClass(t, t.TempDir(), 2)
	ts := httptest.NewServer(prim.Handler())
	defer killServer(ts)

	folls := make([]*Follower[*Server], nf)
	tails := make([]*replica.Tailer, nf)
	for i := range folls {
		f, err := NewFollowerServer(DurabilityOptions{Dir: t.TempDir()}, Config{}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		folls[i] = f
		tails[i] = replica.New(f, tailOpts(ts.URL, replica.WorkloadClassify, f.Epoch))
		tails[i].Start()
	}

	for i := 0; i < half; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range folls {
		waitFor(t, 10*time.Second, "follower to apply the first half", func() bool {
			return appliedLSN(f) == uint64(half)
		})
	}
	if st := prim.Stats(); st.ReplFollowers != nf || st.ReplShippedLSN != uint64(half) {
		t.Fatalf("primary sees %d followers at shipped LSN %d, want %d at %d",
			st.ReplFollowers, st.ReplShippedLSN, nf, half)
	}

	// Digit-identity: every follower matches an uninterrupted run of the
	// same prefix — and therefore each other.
	ref, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotBytes(t, ref)
	for i, f := range folls {
		if got := snapshotBytes(t, f.Current()); !bytes.Equal(got, want) {
			t.Fatalf("follower %d differs from the uninterrupted run at LSN %d (%d vs %d bytes)",
				i, half, len(got), len(want))
		}
	}

	// One follower leaves mid-stream; the rest of the stream flows to the
	// survivors undisturbed.
	tails[0].Stop()
	for i := half; i < n; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < nf; i++ {
		f := folls[i]
		waitFor(t, 10*time.Second, "surviving follower to apply the full stream", func() bool {
			return appliedLSN(f) == uint64(n)
		})
	}
	want = snapshotBytes(t, ref)
	for i := 1; i < nf; i++ {
		if got := snapshotBytes(t, folls[i].Current()); !bytes.Equal(got, want) {
			t.Fatalf("surviving follower %d diverged after peer detach", i)
		}
	}
	// The detached follower froze at the prefix it applied; it did not
	// tear the others down with it.
	if got := appliedLSN(folls[0]); got < uint64(half) || got > uint64(n) {
		t.Fatalf("detached follower applied LSN %d, want within [%d, %d]", got, half, n)
	}

	for i := 1; i < nf; i++ {
		tails[i].Stop()
	}
	for _, f := range folls {
		if err := f.Persist(); err != nil {
			t.Fatal(err)
		}
	}
	prim.CloseDurability()
}

// TestReplHubOverflowCutsOnlySlowSubscriber pins the hub's backpressure
// policy at the unit level: a subscriber that stops draining is closed
// and removed the moment its buffer would overflow, while every healthy
// subscriber keeps receiving frames and the shipped LSN keeps
// advancing. (End-to-end, the cut follower reconnects and
// re-bootstraps — TestFollowerResumeAfterDisconnect.)
func TestReplHubOverflowCutsOnlySlowSubscriber(t *testing.T) {
	h := newReplHub()
	// The buffer capacity is the overflow threshold, so a tiny channel
	// stands in for a follower that is replSubBuffer frames behind.
	slow := &replSub{ch: make(chan replFrame, 2)}
	fastA := &replSub{ch: make(chan replFrame, 16)}
	fastB := &replSub{ch: make(chan replFrame, 16)}
	h.attach(slow)
	h.attach(fastA)
	h.attach(fastB)
	if got := h.followerCount(); got != 3 {
		t.Fatalf("follower count = %d, want 3", got)
	}

	// Nobody drains slow: the third publish finds its buffer full.
	for i := 0; i < 5; i++ {
		h.publish(i%2, []byte{byte(i)})
	}
	if !slow.dead {
		t.Fatal("slow subscriber not marked dead after overflow")
	}
	if _, ok := <-drainAll(slow.ch); ok {
		t.Fatal("slow subscriber's channel not closed after overflow")
	}
	if got := h.followerCount(); got != 2 {
		t.Fatalf("follower count = %d after overflow, want 2 (only the slow one cut)", got)
	}
	if got := h.shippedLSN(); got != 5 {
		t.Fatalf("shipped LSN = %d, want 5 — overflow must not stall shipping", got)
	}

	// The healthy subscribers saw every frame, in order.
	for name, sub := range map[string]*replSub{"A": fastA, "B": fastB} {
		if sub.dead {
			t.Fatalf("healthy subscriber %s was cut", name)
		}
		for i := 0; i < 5; i++ {
			select {
			case f := <-sub.ch:
				if len(f.payload) != 1 || f.payload[0] != byte(i) {
					t.Fatalf("subscriber %s frame %d carries payload %v", name, i, f.payload)
				}
			default:
				t.Fatalf("subscriber %s missing frame %d", name, i)
			}
		}
	}

	// detach after an overflow-cut is a no-op, not a double free.
	h.detach(slow)
	h.detach(fastA)
	if got := h.followerCount(); got != 1 {
		t.Fatalf("follower count = %d after detach, want 1", got)
	}
}

// drainAll empties ch of buffered frames and returns it so a receive
// can probe for closedness.
func drainAll(ch chan replFrame) chan replFrame {
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				// Closed and empty: re-reading keeps reporting closed.
				return ch
			}
		default:
			return ch
		}
	}
}

// TestReplicationFanOutEightFollowers is the fan-out stress property:
// eight concurrent followers tail one primary under the race detector
// and all converge digit-identical to an uninterrupted reference run —
// while a ninth subscriber that never drains (a wedged link, emulated
// by a raw hub subscriber with a tiny buffer) is overflow-cut alone,
// without stalling the primary or any of the eight. The cut and the
// per-subscriber buffer depths must be visible in /stats
// (repl_overflow_cuts, repl_sub_buffered).
func TestReplicationFanOutEightFollowers(t *testing.T) {
	const n, nf = 320, 8
	xs, ys := classPoints(n)
	prim := newDurableClass(t, t.TempDir(), 2)
	ts := httptest.NewServer(prim.Handler())
	defer killServer(ts)

	folls := make([]*Follower[*Server], nf)
	tails := make([]*replica.Tailer, nf)
	for i := range folls {
		f, err := NewFollowerServer(DurabilityOptions{Dir: t.TempDir()}, Config{}, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		folls[i] = f
		tails[i] = replica.New(f, tailOpts(ts.URL, replica.WorkloadClassify, f.Epoch))
		tails[i].Start()
	}
	for i := range folls {
		f := folls[i]
		waitFor(t, 10*time.Second, "follower to attach", func() bool {
			return f.Current() != nil
		})
	}

	// The wedged ninth subscriber: attached straight to the hub with a
	// buffer far below the stream length, drained by nobody.
	slow := &replSub{ch: make(chan replFrame, 4)}
	prim.dur.hub.attach(slow)

	for i := 0; i < n; i++ {
		if err := prim.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range folls {
		f := folls[i]
		waitFor(t, 15*time.Second, "all eight followers to apply the full stream", func() bool {
			return appliedLSN(f) == uint64(n)
		})
	}

	// The wedged subscriber was cut alone, visibly.
	if !slow.dead {
		t.Fatal("wedged subscriber not cut after overflow")
	}
	st := prim.Stats()
	if st.ReplOverflowCuts != 1 {
		t.Fatalf("repl_overflow_cuts = %d, want 1", st.ReplOverflowCuts)
	}
	if st.ReplFollowers != nf {
		t.Fatalf("primary sees %d followers after the cut, want %d", st.ReplFollowers, nf)
	}
	if len(st.ReplSubBuffered) != nf {
		t.Fatalf("repl_sub_buffered has %d entries, want %d", len(st.ReplSubBuffered), nf)
	}
	if st.ReplShippedLSN != uint64(n) {
		t.Fatalf("shipped LSN %d, want %d — the cut must not stall shipping", st.ReplShippedLSN, n)
	}

	// Digit-identity across all eight.
	ref, err := NewEmpty(2, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ref.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotBytes(t, ref)
	for i, f := range folls {
		if got := snapshotBytes(t, f.Current()); !bytes.Equal(got, want) {
			t.Fatalf("follower %d differs from the uninterrupted run (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}

	for i := range tails {
		tails[i].Stop()
	}
	for _, f := range folls {
		if err := f.Persist(); err != nil {
			t.Fatal(err)
		}
	}
	prim.CloseDurability()
}
