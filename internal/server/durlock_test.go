package server

import (
	"strings"
	"testing"

	"bayestree/internal/core"
)

// TestDurableDirSingleWriter: the durability directory is flock-held
// for the life of the server, so a second open of the same -wal-dir
// fails loudly instead of repairing (truncating) live segments out
// from under the first process. The lock dies with the process, so a
// crash never wedges the restart — crash() in the recovery tests
// releases it exactly as the kernel would.
func TestDurableDirSingleWriter(t *testing.T) {
	dir := t.TempDir()
	bootstrap := func() (*Server, error) {
		return NewEmpty(1, core.DefaultConfig(3), []int{0, 1, 2}, core.MultiOptions{}, Config{})
	}
	a, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, bootstrap); err == nil {
		t.Fatal("second open of a held durability dir succeeded")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second open failed with %v, want an in-use error", err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	// Released on close: the directory opens again.
	b, err := OpenDurableServer(DurabilityOptions{Dir: dir}, Config{}, bootstrap)
	if err != nil {
		t.Fatalf("reopen after CloseDurability: %v", err)
	}
	if err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	b.CloseDurability()
}
