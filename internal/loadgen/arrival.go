package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file defines the open-loop arrival processes: each answers "how
// long until the next request enters the system", independent of how
// long the server takes to answer — the property that makes open-loop
// load honest about queueing (a slow server does not slow the offered
// stream down, it just accumulates in-flight work). The closed-loop
// mode has no arrival process at all: a fixed worker count issues
// requests back to back, so offered load tracks service rate by
// construction.

// Process is an open-loop arrival process: Gap returns the interval
// between one request and the next, given the elapsed time since the
// scenario started (so rate-modulated processes can look up where in
// their cycle they are). Implementations must be deterministic
// functions of (rng, elapsed).
type Process interface {
	// Name identifies the process in reports and flags.
	Name() string
	// Gap draws the next interarrival interval.
	Gap(rng *rand.Rand, elapsed time.Duration) time.Duration
}

// expGap draws an exponential interarrival gap for a Poisson process of
// the given rate (requests per second). Rates ≤ 0 stall forever-ish
// (an hour), which a scenario deadline always cuts short.
func expGap(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Hour
	}
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// Poisson is the memoryless baseline: exponential interarrival gaps at
// a constant rate — the workload-independent "steady traffic" model.
type Poisson struct {
	// Rate is the offered load in requests per second.
	Rate float64
}

// Name implements Process.
func (p Poisson) Name() string { return "poisson" }

// Gap implements Process.
func (p Poisson) Gap(rng *rand.Rand, _ time.Duration) time.Duration {
	return expGap(rng, p.Rate)
}

// Bursty is an on/off modulated Poisson process: within each Period the
// first Duty fraction arrives at OnRate, the rest at OffRate — the
// square-wave traffic that stresses the admission controller's burst
// capacity and recovery.
type Bursty struct {
	// OnRate and OffRate are the two phase rates in requests per second.
	OnRate, OffRate float64
	// Period is the on+off cycle length.
	Period time.Duration
	// Duty is the fraction of each period spent in the on phase, in
	// (0, 1).
	Duty float64
}

// Name implements Process.
func (b Bursty) Name() string { return "bursty" }

// Gap implements Process.
func (b Bursty) Gap(rng *rand.Rand, elapsed time.Duration) time.Duration {
	phase := math.Mod(elapsed.Seconds(), b.Period.Seconds())
	rate := b.OffRate
	if phase < b.Duty*b.Period.Seconds() {
		rate = b.OnRate
	}
	return expGap(rng, rate)
}

// Diurnal ramps the rate along a raised cosine from Base up to Peak and
// back over each Period — a compressed day/night cycle, so one scenario
// sweeps the whole load range and the quality-vs-load curve comes from
// a single run.
type Diurnal struct {
	// Base and Peak are the trough and crest rates in requests per
	// second.
	Base, Peak float64
	// Period is one full cycle.
	Period time.Duration
}

// Name implements Process.
func (d Diurnal) Name() string { return "diurnal" }

// rate is the instantaneous offered rate at elapsed time t.
func (d Diurnal) rate(t time.Duration) float64 {
	frac := math.Mod(t.Seconds(), d.Period.Seconds()) / d.Period.Seconds()
	return d.Base + (d.Peak-d.Base)*0.5*(1-math.Cos(2*math.Pi*frac))
}

// Gap implements Process.
func (d Diurnal) Gap(rng *rand.Rand, elapsed time.Duration) time.Duration {
	return expGap(rng, d.rate(elapsed))
}

// HotKey is the adversarial skew process: Poisson timing at Rate, but a
// HotFraction of requests carry one fixed "hot" observation — on a
// sharded server they all hash to the same shard, so that shard's
// write lock and that subtree's refinement become the bottleneck while
// aggregate load looks moderate.
type HotKey struct {
	// Rate is the offered load in requests per second.
	Rate float64
	// HotFraction is the fraction of requests aimed at the hot key, in
	// [0, 1].
	HotFraction float64
}

// Name implements Process.
func (h HotKey) Name() string { return "hotkey" }

// Gap implements Process.
func (h HotKey) Gap(rng *rand.Rand, _ time.Duration) time.Duration {
	return expGap(rng, h.Rate)
}

// Hot reports whether the next request should target the hot key; the
// workload generator consults this per request.
func (h HotKey) Hot(rng *rand.Rand) bool {
	return rng.Float64() < h.HotFraction
}

// hotMarker is implemented by processes that skew the key distribution;
// the workload generator type-asserts for it.
type hotMarker interface {
	Hot(rng *rand.Rand) bool
}

// ProcessNames lists the selectable open-loop processes plus the
// closed-loop mode, in flag-help order.
var ProcessNames = []string{"poisson", "bursty", "diurnal", "hotkey", "closed"}

// NewProcess builds the named open-loop process at the given base rate
// (requests per second). Bursty runs 4× base in a 20% duty cycle over
// 2s (same average as base); diurnal ramps 0.1×–2× base over 10s;
// hotkey sends half the stream to one key. "closed" returns nil — the
// runner treats a nil process as closed-loop.
func NewProcess(name string, rate float64) (Process, error) {
	switch name {
	case "poisson":
		return Poisson{Rate: rate}, nil
	case "bursty":
		return Bursty{OnRate: 4 * rate, OffRate: rate / 4, Period: 2 * time.Second, Duty: 0.2}, nil
	case "diurnal":
		return Diurnal{Base: rate / 10, Peak: 2 * rate, Period: 10 * time.Second}, nil
	case "hotkey":
		return HotKey{Rate: rate, HotFraction: 0.5}, nil
	case "closed":
		return nil, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want one of %v)", name, ProcessNames)
	}
}
