package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// This file is the latency recorder: an HDR-style log-linear histogram
// whose buckets are atomic counters striped across cache lines, so any
// number of in-flight requests record concurrently without a lock and
// without sharing hot cache lines. Value resolution is bounded
// relative error (one part in histSubBuckets, ~3%), which is what a
// percentile report needs — the absolute error of p999 grows with
// p999, never with the recording rate.

const (
	// histSubBits is the per-power-of-two resolution: 2^histSubBits
	// linear sub-buckets per binary magnitude, so recorded values are
	// accurate to within 1/2^histSubBits relative error.
	histSubBits = 5
	// histSubBuckets is the sub-bucket count per magnitude.
	histSubBuckets = 1 << histSubBits
	// histMaxExp caps the recordable magnitude: values at or above
	// 2^histMaxExp ns (~18 minutes) clamp into the top bucket.
	histMaxExp = 40
	// histBuckets is the total bucket count: the first magnitude is
	// linear (values < histSubBuckets land in their own bucket exactly),
	// then histSubBuckets per magnitude up to histMaxExp.
	histBuckets = (histMaxExp - histSubBits + 1) * histSubBuckets
	// histStripes is how many independent copies of the bucket array
	// recorders are spread over; percentile reads fold them together.
	histStripes = 8
)

// histStripe is one cache-padded copy of the bucket counters plus its
// share of the count/sum totals, so recording touches no cross-stripe
// cache line.
type histStripe struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total ns, for Mean
	// pad keeps adjacent stripes off one another's cache lines.
	_ [6]uint64
}

// Histogram is a lock-free latency histogram with bounded relative
// error. The zero value is ready to use; Record and the read side
// (Percentile, Count, Max) are all safe to call concurrently.
type Histogram struct {
	stripes [histStripes]histStripe
	max     atomic.Int64 // largest recorded ns (exact, not bucketed)
}

// bucketIndex maps a nanosecond value to its bucket. Values below
// histSubBuckets are exact; above, the top histSubBits bits after the
// leading one select a linear sub-bucket within the binary magnitude.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // position of leading one, ≥ histSubBits
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int(v>>(uint(exp)-histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits+1)*histSubBuckets + sub
}

// bucketValue is the representative (upper-edge) nanosecond value of a
// bucket — the value Percentile reports for samples that landed there.
func bucketValue(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	exp := idx/histSubBuckets + histSubBits - 1
	sub := idx % histSubBuckets
	return (int64(histSubBuckets+sub) + 1) << (uint(exp) - histSubBits)
}

// Record adds one latency observation. Safe for any number of
// concurrent callers; each lands on a stripe derived from the caller's
// stack address, so goroutines recording concurrently spread across
// stripes instead of sharing one hot cache line.
func (h *Histogram) Record(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	var probe byte
	s := &h.stripes[(uintptr(unsafe.Pointer(&probe))>>6)%histStripes]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for s := range h.stripes {
		n += h.stripes[s].count.Load()
	}
	return n
}

// Max returns the largest recorded latency, exact (not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of recorded latencies.
func (h *Histogram) Mean() time.Duration {
	var n, sum uint64
	for s := range h.stripes {
		n += h.stripes[s].count.Load()
		sum += h.stripes[s].sum.Load()
	}
	if n == 0 {
		return 0
	}
	return time.Duration(sum / n)
}

// fold sums the stripes into one bucket array plus the total count.
func (h *Histogram) fold() (counts [histBuckets]uint64, total uint64) {
	for s := range h.stripes {
		for i := range counts {
			c := h.stripes[s].counts[i].Load()
			counts[i] += c
			total += c
		}
	}
	return counts, total
}

// Percentile returns the latency at quantile q in [0, 1]: the smallest
// bucket upper edge such that at least q of the recorded observations
// are at or below it (within the histogram's ~3% relative resolution).
// The top quantile is clamped to the exact recorded Max. Zero
// observations yield zero.
func (h *Histogram) Percentile(q float64) time.Duration {
	counts, total := h.fold()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based ceil so q=0.5 of 10
	// observations is the 5th.
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := range counts {
		seen += counts[i]
		if seen >= rank {
			v := bucketValue(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// Snapshot captures the standard percentile report in one fold.
type Snapshot struct {
	// Count is the number of observations summarised.
	Count uint64 `json:"count"`
	// MeanMs through MaxMs are latencies in milliseconds.
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// millis converts a duration to float milliseconds.
func millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Snapshot returns the standard report of the current contents.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		MeanMs: millis(h.Mean()),
		P50Ms:  millis(h.Percentile(0.50)),
		P90Ms:  millis(h.Percentile(0.90)),
		P99Ms:  millis(h.Percentile(0.99)),
		P999Ms: millis(h.Percentile(0.999)),
		MaxMs:  millis(h.Max()),
	}
}
