package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file shapes what a run measured: per-kind latency percentiles,
// achieved vs offered throughput, and the quality-under-load block —
// the granted-budget fraction, the degraded-answer fraction and the
// holdout accuracy that together are the paper's "degrade, never
// error" story as numbers. SLO turns a report into a pass/fail, the
// regression gate CI runs.

// Quality is the answer-quality-under-load block of a report.
type Quality struct {
	// RequestedBudget and GrantedBudget are summed per-request budgets;
	// GrantedFraction is their ratio — 1.0 when admission never clipped,
	// falling toward 0 as overload coarsens answers.
	RequestedBudget int64   `json:"requested_budget"`
	GrantedBudget   int64   `json:"granted_budget"`
	GrantedFraction float64 `json:"granted_fraction"`
	// Degraded counts answers whose granted budget fell short of the
	// request; DegradedFraction is per answered request.
	Degraded         int64   `json:"degraded"`
	DegradedFraction float64 `json:"degraded_fraction"`
	// Parked counts clustering ingests buffered short of leaf level —
	// the clustering workload's degradation observable.
	Parked         int64   `json:"parked"`
	ParkedFraction float64 `json:"parked_fraction"`
	// Evaluated and Correct score holdout classifies against ground
	// truth; Accuracy is their ratio (0 when nothing was evaluated).
	Evaluated int64   `json:"evaluated"`
	Correct   int64   `json:"correct"`
	Accuracy  float64 `json:"accuracy"`
}

// Report is the result of one scenario run.
type Report struct {
	// Workload and Process identify what ran.
	Workload string `json:"workload"`
	Process  string `json:"process"`
	// Closed marks the fixed-concurrency mode.
	Closed bool `json:"closed"`
	// Concurrency is the worker count (closed) or in-flight cap (open).
	Concurrency int `json:"concurrency"`
	// Seed reproduces the traffic.
	Seed int64 `json:"seed"`
	// DurationSeconds is the measured wall time.
	DurationSeconds float64 `json:"duration_seconds"`
	// Offered is the arrival process's scheduled request rate (open loop
	// only; equals Achieved in closed loop).
	OfferedRPS float64 `json:"offered_rps"`
	// AchievedRPS is completed requests per second of wall time.
	AchievedRPS float64 `json:"achieved_rps"`
	// Requests and Errors count completed requests and failures
	// (transport errors plus non-200 answers) among them.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// ErrorRate is Errors / Requests.
	ErrorRate float64 `json:"error_rate"`
	// Latency holds one percentile snapshot per request kind that
	// occurred, plus "all" across kinds.
	Latency map[string]Snapshot `json:"latency"`
	// Quality is the answer-quality block.
	Quality Quality `json:"quality"`
	// Backends maps backend URL to requests served, when the target is a
	// scatter-gather proxy (read from its /stats after the measured
	// phase) — how the load actually spread across the replica set.
	Backends map[string]int64 `json:"backend_requests,omitempty"`
	// Breaches lists violated SLO clauses (filled by SLO.Evaluate).
	Breaches []string `json:"breaches,omitempty"`
}

// ratio divides guarding zero denominators.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// report folds the run state into a Report.
func (rs *runState) report(elapsed time.Duration) *Report {
	done := rs.ctr.done.Load()
	errs := rs.ctr.errors.Load()
	rep := &Report{
		Workload:        string(rs.sc.Workload),
		Process:         rs.sc.ProcessName(),
		Closed:          rs.sc.Proc == nil,
		Concurrency:     rs.sc.Concurrency,
		Seed:            rs.sc.Seed,
		DurationSeconds: elapsed.Seconds(),
		Requests:        done,
		Errors:          errs,
		ErrorRate:       ratio(errs, done),
		Latency:         map[string]Snapshot{"all": rs.all.Snapshot()},
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(done) / elapsed.Seconds()
		if sched := rs.ctr.scheduled.Load(); sched > 0 {
			rep.OfferedRPS = float64(sched) / elapsed.Seconds()
		} else {
			rep.OfferedRPS = rep.AchievedRPS
		}
	}
	for kind, h := range rs.hists {
		if h.Count() > 0 {
			rep.Latency[kind] = h.Snapshot()
		}
	}
	q := &rep.Quality
	q.RequestedBudget = rs.ctr.requested.Load()
	q.GrantedBudget = rs.ctr.granted.Load()
	q.GrantedFraction = ratio(q.GrantedBudget, q.RequestedBudget)
	q.Degraded = rs.ctr.degraded.Load()
	q.Parked = rs.ctr.parked.Load()
	answered := done - errs
	q.DegradedFraction = ratio(q.Degraded, answered)
	q.ParkedFraction = ratio(q.Parked, answered)
	q.Evaluated = rs.ctr.evaluated.Load()
	q.Correct = rs.ctr.correct.Load()
	q.Accuracy = ratio(q.Correct, q.Evaluated)
	return rep
}

// WriteJSON writes the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteNDJSON writes the report as newline-delimited cells — one
// compact line per (kind, snapshot) plus one quality/summary line —
// the append-friendly form for trend files that accumulate across
// runs.
func (r *Report) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	kinds := make([]string, 0, len(r.Latency))
	for kind := range r.Latency {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		snap := r.Latency[kind]
		if err := enc.Encode(struct {
			Row      string `json:"row"`
			Workload string `json:"workload"`
			Process  string `json:"process"`
			Kind     string `json:"kind"`
			Snapshot
		}{"latency", r.Workload, r.Process, kind, snap}); err != nil {
			return err
		}
	}
	return enc.Encode(struct {
		Row string `json:"row"`
		*Report
	}{"summary", r})
}

// SLO is a set of latency/quality objectives evaluated against a
// report. Zero-valued clauses are not checked, so a caller states only
// what it gates on.
type SLO struct {
	// P50, P99, P999 and Max bound the "all" latency percentiles.
	P50, P99, P999, Max time.Duration
	// MaxErrorRate bounds Report.ErrorRate ("degrade, never error" is
	// MaxErrorRate 0 — but note a zero value means unchecked, so use a
	// tiny epsilon to assert zero errors).
	MaxErrorRate float64
	// MinAccuracy bounds holdout accuracy from below.
	MinAccuracy float64
	// MinGrantedFraction bounds the granted-budget fraction from below.
	MinGrantedFraction float64
	// MinRequests guards against vacuous passes: a run that completed
	// fewer requests breaches.
	MinRequests int64
}

// Evaluate checks every stated clause, returning the violated ones in
// human-readable form (empty = pass) and recording them on the report.
func (s SLO) Evaluate(r *Report) []string {
	var breaches []string
	all := r.Latency["all"]
	check := func(name string, bound time.Duration, gotMs float64) {
		if bound > 0 && gotMs > millis(bound) {
			breaches = append(breaches, fmt.Sprintf("%s %.2fms > %.2fms", name, gotMs, millis(bound)))
		}
	}
	check("p50", s.P50, all.P50Ms)
	check("p99", s.P99, all.P99Ms)
	check("p999", s.P999, all.P999Ms)
	check("max", s.Max, all.MaxMs)
	if s.MaxErrorRate > 0 && r.ErrorRate > s.MaxErrorRate {
		breaches = append(breaches, fmt.Sprintf("error_rate %.4f > %.4f", r.ErrorRate, s.MaxErrorRate))
	}
	if s.MinAccuracy > 0 && r.Quality.Accuracy < s.MinAccuracy {
		breaches = append(breaches, fmt.Sprintf("accuracy %.4f < %.4f", r.Quality.Accuracy, s.MinAccuracy))
	}
	if s.MinGrantedFraction > 0 && r.Quality.GrantedFraction < s.MinGrantedFraction {
		breaches = append(breaches, fmt.Sprintf("granted_fraction %.4f < %.4f", r.Quality.GrantedFraction, s.MinGrantedFraction))
	}
	if s.MinRequests > 0 && r.Requests < s.MinRequests {
		breaches = append(breaches, fmt.Sprintf("requests %d < %d", r.Requests, s.MinRequests))
	}
	r.Breaches = breaches
	return breaches
}
