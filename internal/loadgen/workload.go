package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// This file generates the request mix. The classification workload
// interleaves labelled inserts with classify queries drawn from a
// held-out labelled set — so the harness can score every answer against
// ground truth and report accuracy as a function of load, not just
// latency. The clustering workload is pure budgeted ingest. Both draw
// from the same three-blob synthetic distribution the repo's benchmarks
// and serving tests use, so loadgen numbers sit on the same data as the
// existing accuracy records.

// Request kinds, used as histogram/report keys.
const (
	// KindClassify is a POST /classify drawn from the labelled holdout.
	KindClassify = "classify"
	// KindInsert is a labelled POST /insert.
	KindInsert = "insert"
	// KindIngest is a clustering POST /cluster.
	KindIngest = "ingest"
)

// Workload selects which server the scenario drives.
type Workload string

// The two served workloads.
const (
	// WorkloadClassify drives a classification server (serveclass).
	WorkloadClassify Workload = "classify"
	// WorkloadCluster drives a clustering server (servecluster).
	WorkloadCluster Workload = "cluster"
)

// classDim is the dimensionality of the synthetic classification
// distribution (three separated blobs, matching the serving tests).
const classDim = 3

// clusterDim is the dimensionality of the synthetic clustering stream.
const clusterDim = 2

// classPoint draws one labelled observation from the three-blob
// distribution.
func classPoint(rng *rand.Rand) ([]float64, int) {
	label := rng.Intn(3)
	return []float64{
		float64(label)*3 + 0.4*rng.NormFloat64(),
		-float64(label)*3 + 0.4*rng.NormFloat64(),
		rng.NormFloat64(),
	}, label
}

// clusterPoint draws one unlabelled clustering observation.
func clusterPoint(rng *rand.Rand) []float64 {
	return []float64{rng.Float64(), rng.Float64()}
}

// TenantName names loadgen's i-th synthetic tenant. Exported so the
// benchmark harness can pre-create or inspect the same population the
// generator addresses.
func TenantName(i int) string {
	return fmt.Sprintf("lg%04d", i)
}

// DefaultTenantSkew is the Zipf skew exponent for multi-tenant traffic
// when the scenario does not say: a heavy-tailed popularity curve —
// a hot head of tenants plus a long cold tail — which is exactly the
// access pattern LRU paging is designed for.
const DefaultTenantSkew = 1.2

// Holdout is a fixed labelled evaluation set replayed through
// /classify: every classify request carries a known true label, so the
// report's accuracy is measured, not assumed.
type Holdout struct {
	// X and Y are the held-out points and their true labels.
	X [][]float64
	Y []int
}

// NewHoldout draws n labelled points deterministically from seed.
func NewHoldout(n int, seed int64) *Holdout {
	rng := rand.New(rand.NewSource(seed))
	h := &Holdout{X: make([][]float64, n), Y: make([]int, n)}
	for i := range h.X {
		h.X[i], h.Y[i] = classPoint(rng)
	}
	return h
}

// Mix parameterises the request mix of one scenario.
type Mix struct {
	// InsertFraction is the fraction of classification-workload requests
	// that are inserts (the rest are classify queries); ignored by the
	// clustering workload, which is all ingest.
	InsertFraction float64
	// Budget is the per-request anytime budget (0 = server default,
	// negative = as much as the cap and admission allow).
	Budget int
}

// request is one generated request, ready to send.
type request struct {
	kind string
	path string
	body []byte
	// wantLabel is the true label of a holdout classify point, -1
	// otherwise.
	wantLabel int
}

// reqBody is the one JSON shape all three endpoints accept: /classify
// and /cluster read x+budget, /insert reads x+label.
type reqBody struct {
	X      []float64 `json:"x"`
	Budget int       `json:"budget,omitempty"`
	Label  int       `json:"label"`
}

// generator produces the request stream for one scenario. Not safe for
// concurrent use; the runner gives each worker its own.
type generator struct {
	workload Workload
	mix      Mix
	holdout  *Holdout
	hot      hotMarker
	hotClass []float64 // fixed hot observation, classification dim
	hotClust []float64 // fixed hot observation, clustering dim
	rng      *rand.Rand
	cursor   int
	tenants  int        // > 0 routes requests across /t/{tenant} paths
	zipf     *rand.Zipf // tenant popularity, heavy-tailed
}

// newGenerator builds a per-worker generator. proc supplies key skew
// when it is a hotMarker (the adversarial hot-key process); holdout may
// be nil for the clustering workload. tenants > 0 spreads the traffic
// across that many named tenants with Zipf(skew) popularity — tenant 0
// hottest, the tail touched rarely, so a paging registry sees a
// realistic hot-set/cold-tail access pattern.
func newGenerator(workload Workload, mix Mix, holdout *Holdout, proc Process, seed int64, tenants int, skew float64) *generator {
	g := &generator{
		workload: workload,
		mix:      mix,
		holdout:  holdout,
		rng:      rand.New(rand.NewSource(seed)),
		// The hot key is one fixed in-distribution point: every hot
		// request hashes to the same shard and descends the same subtree.
		hotClass: []float64{3.0, -3.0, 0.0},
		hotClust: []float64{0.5, 0.5},
		tenants:  tenants,
	}
	if tenants > 0 {
		if skew <= 1 {
			skew = DefaultTenantSkew
		}
		g.zipf = rand.NewZipf(g.rng, skew, 1, uint64(tenants-1))
	}
	if hm, ok := proc.(hotMarker); ok {
		g.hot = hm
	}
	return g
}

// tenantPrefix draws the request's tenant path prefix ("" in
// single-tenant mode).
func (g *generator) tenantPrefix() string {
	if g.tenants <= 0 {
		return ""
	}
	return "/t/" + TenantName(int(g.zipf.Uint64()))
}

// next generates one request.
func (g *generator) next() request {
	pre := g.tenantPrefix()
	hot := g.hot != nil && g.hot.Hot(g.rng)
	if g.workload == WorkloadCluster {
		x := clusterPoint(g.rng)
		if hot {
			x = g.hotClust
		}
		body, _ := json.Marshal(reqBody{X: x, Budget: g.mix.Budget})
		return request{kind: KindIngest, path: pre + "/cluster", body: body, wantLabel: -1}
	}
	if g.rng.Float64() < g.mix.InsertFraction {
		x, label := classPoint(g.rng)
		if hot {
			x, label = g.hotClass, 1
		}
		body, _ := json.Marshal(reqBody{X: x, Label: label})
		return request{kind: KindInsert, path: pre + "/insert", body: body, wantLabel: -1}
	}
	want := -1
	var x []float64
	if hot {
		x = g.hotClass
	} else {
		i := g.cursor % len(g.holdout.X)
		g.cursor++
		x, want = g.holdout.X[i], g.holdout.Y[i]
	}
	body, _ := json.Marshal(reqBody{X: x, Budget: g.mix.Budget})
	return request{kind: KindClassify, path: pre + "/classify", body: body, wantLabel: want}
}
