package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Deterministic-seed tests pinning each arrival process's interarrival
// distribution: sample a fixed-seed gap stream and check its moments
// against the analytic values. Tolerances are wide enough to be
// seed-stable (the streams are deterministic, so these never flake —
// the bounds just document how close the sample gets).

// sampleGaps draws n gaps from p with a fixed seed, advancing elapsed
// time as a real scheduler would.
func sampleGaps(p Process, seed int64, n int) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	gaps := make([]time.Duration, n)
	var elapsed time.Duration
	for i := range gaps {
		g := p.Gap(rng, elapsed)
		gaps[i] = g
		elapsed += g
	}
	return gaps
}

// meanCV returns the sample mean (seconds) and coefficient of
// variation of a gap stream.
func meanCV(gaps []time.Duration) (mean, cv float64) {
	var sum float64
	for _, g := range gaps {
		sum += g.Seconds()
	}
	mean = sum / float64(len(gaps))
	var ss float64
	for _, g := range gaps {
		d := g.Seconds() - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(gaps))) / mean
}

// TestPoissonGaps: exponential gaps have mean 1/rate and CV 1.
func TestPoissonGaps(t *testing.T) {
	const rate = 1000.0
	gaps := sampleGaps(Poisson{Rate: rate}, 42, 20000)
	mean, cv := meanCV(gaps)
	if math.Abs(mean-1/rate) > 0.02/rate {
		t.Fatalf("poisson mean gap = %.6fs, want ≈ %.6fs", mean, 1/rate)
	}
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("poisson CV = %.3f, want ≈ 1 (exponential)", cv)
	}
}

// TestPoissonDeterminism: the same seed yields the same gap stream —
// the property that makes every scenario reproducible.
func TestPoissonDeterminism(t *testing.T) {
	a := sampleGaps(Poisson{Rate: 500}, 7, 1000)
	b := sampleGaps(Poisson{Rate: 500}, 7, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := sampleGaps(Poisson{Rate: 500}, 8, 1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical gap stream")
	}
}

// TestPoissonZeroRate: a non-positive rate must stall, not spin.
func TestPoissonZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := (Poisson{Rate: 0}).Gap(rng, 0); g < time.Minute {
		t.Fatalf("zero-rate gap = %v, want a long stall", g)
	}
}

// TestBurstyGaps pins the two phases: inside the duty window gaps are
// exponential at OnRate, outside at OffRate.
func TestBurstyGaps(t *testing.T) {
	b := Bursty{OnRate: 2000, OffRate: 100, Period: 2 * time.Second, Duty: 0.25}
	rng := rand.New(rand.NewSource(11))
	var onSum, offSum float64
	const n = 20000
	for i := 0; i < n; i++ {
		// Fixed elapsed stamps in the middle of each phase.
		onSum += b.Gap(rng, 100*time.Millisecond).Seconds()
		offSum += b.Gap(rng, 1500*time.Millisecond).Seconds()
	}
	onMean, offMean := onSum/n, offSum/n
	if math.Abs(onMean-1/b.OnRate) > 0.03/b.OnRate {
		t.Fatalf("bursty on-phase mean gap = %.6fs, want ≈ %.6fs", onMean, 1/b.OnRate)
	}
	if math.Abs(offMean-1/b.OffRate) > 0.03/b.OffRate {
		t.Fatalf("bursty off-phase mean gap = %.6fs, want ≈ %.6fs", offMean, 1/b.OffRate)
	}
	// The phase boundary sits exactly at Duty*Period, and wraps.
	if r := phaseRate(b, 499*time.Millisecond); r != b.OnRate {
		t.Fatalf("rate just before duty edge = %g, want OnRate", r)
	}
	if r := phaseRate(b, 501*time.Millisecond); r != b.OffRate {
		t.Fatalf("rate just after duty edge = %g, want OffRate", r)
	}
	if r := phaseRate(b, 2*time.Second+100*time.Millisecond); r != b.OnRate {
		t.Fatalf("rate after wrap = %g, want OnRate", r)
	}
}

// phaseRate recovers the effective rate Bursty uses at elapsed t by
// averaging many gaps at that frozen instant.
func phaseRate(b Bursty, t time.Duration) float64 {
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += b.Gap(rng, t).Seconds()
	}
	mean := sum / n
	// Snap to whichever configured rate is closer: the draw is random
	// but 20k samples put the mean within a few percent.
	if math.Abs(mean-1/b.OnRate) < math.Abs(mean-1/b.OffRate) {
		return b.OnRate
	}
	return b.OffRate
}

// TestDiurnalRate pins the raised-cosine ramp analytically: trough at
// phase 0, crest at half period, midpoint at quarter period, and
// periodic wraparound.
func TestDiurnalRate(t *testing.T) {
	d := Diurnal{Base: 100, Peak: 900, Period: 10 * time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{5 * time.Second, 900},
		{2500 * time.Millisecond, 500}, // midpoint of the ramp
		{10 * time.Second, 100},        // wraps back to the trough
		{15 * time.Second, 900},        // second cycle's crest
	}
	for _, c := range cases {
		if got := d.rate(c.at); math.Abs(got-c.want) > 1e-6 {
			t.Fatalf("diurnal rate at %v = %g, want %g", c.at, got, c.want)
		}
	}
	// Gaps at the crest must be drawn at the crest rate.
	rng := rand.New(rand.NewSource(13))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += d.Gap(rng, 5*time.Second).Seconds()
	}
	if mean := sum / n; math.Abs(mean-1/d.Peak) > 0.03/d.Peak {
		t.Fatalf("diurnal crest mean gap = %.6fs, want ≈ %.6fs", mean, 1/d.Peak)
	}
}

// TestHotKeyGaps: timing is plain Poisson; the skew lives in Hot(),
// which must hit its configured fraction and implement hotMarker.
func TestHotKeyGaps(t *testing.T) {
	h := HotKey{Rate: 1000, HotFraction: 0.3}
	gaps := sampleGaps(h, 17, 20000)
	mean, cv := meanCV(gaps)
	if math.Abs(mean-1/h.Rate) > 0.02/h.Rate {
		t.Fatalf("hotkey mean gap = %.6fs, want ≈ %.6fs", mean, 1/h.Rate)
	}
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("hotkey CV = %.3f, want ≈ 1", cv)
	}
	var marker hotMarker = h // compile-time: HotKey feeds the generator's skew
	rng := rand.New(rand.NewSource(19))
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if marker.Hot(rng) {
			hot++
		}
	}
	if frac := float64(hot) / n; math.Abs(frac-h.HotFraction) > 0.02 {
		t.Fatalf("hot fraction = %.3f, want ≈ %.2f", frac, h.HotFraction)
	}
}

// TestNewProcess pins the flag-name mapping, the closed-loop nil, and
// the derived parameterisations (bursty keeps the requested average
// rate; diurnal spans it).
func TestNewProcess(t *testing.T) {
	for _, name := range []string{"poisson", "bursty", "diurnal", "hotkey"} {
		p, err := NewProcess(name, 100)
		if err != nil || p == nil {
			t.Fatalf("NewProcess(%q) = %v, %v", name, p, err)
		}
		if p.Name() != name {
			t.Fatalf("NewProcess(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := NewProcess("closed", 100); err != nil || p != nil {
		t.Fatalf("NewProcess(closed) = %v, %v, want nil, nil", p, err)
	}
	if _, err := NewProcess("sawtooth", 100); err == nil {
		t.Fatal("NewProcess(sawtooth) did not error")
	}
	// Bursty's duty cycle preserves the requested average rate:
	// duty*on + (1-duty)*off = rate.
	b := mustProcess(t, "bursty", 100).(Bursty)
	avg := b.Duty*b.OnRate + (1-b.Duty)*b.OffRate
	if math.Abs(avg-100) > 1e-9 {
		t.Fatalf("bursty average rate = %g, want 100", avg)
	}
	d := mustProcess(t, "diurnal", 100).(Diurnal)
	if d.Base >= 100 || d.Peak <= 100 {
		t.Fatalf("diurnal [%g, %g] does not span the base rate 100", d.Base, d.Peak)
	}
}

// mustProcess builds a process or fails the test.
func mustProcess(t *testing.T, name string, rate float64) Process {
	t.Helper()
	p, err := NewProcess(name, rate)
	if err != nil {
		t.Fatalf("NewProcess(%q): %v", name, err)
	}
	return p
}
