package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bayestree/internal/clustree"
	"bayestree/internal/core"
	"bayestree/internal/server"
)

// End-to-end harness tests: every arrival process plus the closed loop
// drives a real in-process classification server and a real clustering
// server over HTTP — the acceptance shape of the harness. Runs are
// short (a few hundred ms each) but complete: warmup, measured phase,
// report.

// startClassServer boots a classification server behind httptest and
// returns its base URL.
func startClassServer(t *testing.T) string {
	t.Helper()
	s, err := server.NewEmpty(2, core.DefaultConfig(classDim), []int{0, 1, 2}, core.MultiOptions{}, server.Config{})
	if err != nil {
		t.Fatalf("NewEmpty: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL
}

// startClusterServer boots a clustering server behind httptest and
// returns its base URL.
func startClusterServer(t *testing.T) string {
	t.Helper()
	s, err := server.NewCluster(clustree.DefaultConfig(clusterDim), 2, server.Config{}, server.ClusterOptions{SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL
}

// shortScenario is a fast-but-real scenario against url.
func shortScenario(url string, wl Workload, proc Process) Scenario {
	return Scenario{
		Target:      url,
		Workload:    wl,
		Proc:        proc,
		Duration:    400 * time.Millisecond,
		Mix:         Mix{InsertFraction: 0.2, Budget: 16},
		Seed:        1,
		HoldoutSize: 64,
		Warmup:      200,
	}
}

// TestRunAllProcessesClassify drives the classification server with
// every arrival process and the closed loop: requests complete, nothing
// errors, and holdout accuracy on the warmed-up three-blob model is
// high.
func TestRunAllProcessesClassify(t *testing.T) {
	url := startClassServer(t)
	for _, name := range ProcessNames {
		t.Run(name, func(t *testing.T) {
			proc, err := NewProcess(name, 400)
			if err != nil {
				t.Fatalf("NewProcess: %v", err)
			}
			rep, err := Run(context.Background(), shortScenario(url, WorkloadClassify, proc))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Process != name {
				t.Fatalf("report process = %q, want %q", rep.Process, name)
			}
			if rep.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if rep.Errors != 0 {
				t.Fatalf("%d errors (rate %.4f) — the server must degrade, never error", rep.Errors, rep.ErrorRate)
			}
			if rep.Latency["all"].Count != uint64(rep.Requests) {
				t.Fatalf("latency count %d != requests %d", rep.Latency["all"].Count, rep.Requests)
			}
			if rep.Quality.Evaluated == 0 {
				t.Fatal("no holdout classifies evaluated")
			}
			if rep.Quality.Accuracy < 0.8 {
				t.Fatalf("holdout accuracy %.3f < 0.8 on the separated three-blob model", rep.Quality.Accuracy)
			}
			if rep.Quality.RequestedBudget == 0 || rep.Quality.GrantedBudget == 0 {
				t.Fatalf("budgets not tracked: requested=%d granted=%d",
					rep.Quality.RequestedBudget, rep.Quality.GrantedBudget)
			}
		})
	}
}

// TestRunAllProcessesCluster drives the clustering server the same way:
// all ingest, budgets tracked, zero errors.
func TestRunAllProcessesCluster(t *testing.T) {
	url := startClusterServer(t)
	for _, name := range ProcessNames {
		t.Run(name, func(t *testing.T) {
			proc, err := NewProcess(name, 400)
			if err != nil {
				t.Fatalf("NewProcess: %v", err)
			}
			rep, err := Run(context.Background(), shortScenario(url, WorkloadCluster, proc))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Requests == 0 {
				t.Fatal("no requests completed")
			}
			if rep.Errors != 0 {
				t.Fatalf("%d errors — the server must degrade, never error", rep.Errors)
			}
			if _, ok := rep.Latency[KindIngest]; !ok {
				t.Fatal("no ingest latency recorded for the clustering workload")
			}
			if rep.Quality.RequestedBudget == 0 {
				t.Fatal("ingest budgets not tracked")
			}
		})
	}
}

// TestRunClosedReportShape pins the closed-loop report fields: closed
// flag, offered == achieved, per-kind latency maps present.
func TestRunClosedReportShape(t *testing.T) {
	url := startClassServer(t)
	rep, err := Run(context.Background(), shortScenario(url, WorkloadClassify, nil))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Closed || rep.Process != "closed" {
		t.Fatalf("closed=%v process=%q, want closed-loop markers", rep.Closed, rep.Process)
	}
	if rep.OfferedRPS != rep.AchievedRPS {
		t.Fatalf("closed loop offered %.1f != achieved %.1f", rep.OfferedRPS, rep.AchievedRPS)
	}
	if _, ok := rep.Latency[KindClassify]; !ok {
		t.Fatal("no classify latency bucket")
	}
	if _, ok := rep.Latency[KindInsert]; !ok {
		t.Fatal("no insert latency bucket (InsertFraction 0.2 over hundreds of requests)")
	}
	if rep.DurationSeconds <= 0 {
		t.Fatal("zero measured duration")
	}
}

// TestRunCancelled: a pre-cancelled context yields an error, not a
// hang or a bogus report.
func TestRunCancelled(t *testing.T) {
	url := startClassServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, shortScenario(url, WorkloadClassify, nil)); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

// TestGeneratorDeterminism: the same seed yields byte-identical request
// streams — what makes a loadgen run reproducible end to end.
func TestGeneratorDeterminism(t *testing.T) {
	h := NewHoldout(32, 9)
	a := newGenerator(WorkloadClassify, Mix{InsertFraction: 0.3, Budget: 8}, h, HotKey{Rate: 100, HotFraction: 0.2}, 21, 50, 1.2)
	b := newGenerator(WorkloadClassify, Mix{InsertFraction: 0.3, Budget: 8}, h, HotKey{Rate: 100, HotFraction: 0.2}, 21, 50, 1.2)
	for i := 0; i < 500; i++ {
		ra, rb := a.next(), b.next()
		if ra.kind != rb.kind || ra.path != rb.path || string(ra.body) != string(rb.body) || ra.wantLabel != rb.wantLabel {
			t.Fatalf("request %d differs across same-seed generators", i)
		}
	}
}

// TestSLOEvaluate pins the gate semantics: zero-valued clauses are
// unchecked, stated clauses breach with readable messages, and breaches
// land on the report.
func TestSLOEvaluate(t *testing.T) {
	rep := &Report{
		Requests:  100,
		ErrorRate: 0.02,
		Latency:   map[string]Snapshot{"all": {P50Ms: 5, P99Ms: 40, P999Ms: 80, MaxMs: 120}},
		Quality:   Quality{Accuracy: 0.9, GrantedFraction: 0.5},
	}
	if br := (SLO{}).Evaluate(rep); len(br) != 0 {
		t.Fatalf("empty SLO breached: %v", br)
	}
	pass := SLO{P99: 50 * time.Millisecond, MaxErrorRate: 0.05, MinAccuracy: 0.8, MinRequests: 10}
	if br := pass.Evaluate(rep); len(br) != 0 {
		t.Fatalf("passing SLO breached: %v", br)
	}
	fail := SLO{
		P50: time.Millisecond, P99: 10 * time.Millisecond, P999: 10 * time.Millisecond,
		Max: 10 * time.Millisecond, MaxErrorRate: 0.01, MinAccuracy: 0.95,
		MinGrantedFraction: 0.9, MinRequests: 1000,
	}
	br := fail.Evaluate(rep)
	if len(br) != 8 {
		t.Fatalf("got %d breaches, want all 8: %v", len(br), br)
	}
	if len(rep.Breaches) != 8 {
		t.Fatalf("breaches not recorded on the report: %v", rep.Breaches)
	}
	for _, want := range []string{"p50", "p99", "p999", "max", "error_rate", "accuracy", "granted_fraction", "requests"} {
		found := false
		for _, b := range br {
			if strings.HasPrefix(b, want+" ") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no breach message for %q in %v", want, br)
		}
	}
}

// TestWriteFormats: the JSON document round-trips, and NDJSON emits one
// latency row per kind plus a summary row.
func TestWriteFormats(t *testing.T) {
	rep := &Report{
		Workload: "classify", Process: "poisson", Requests: 10,
		Latency: map[string]Snapshot{"all": {Count: 10}, KindClassify: {Count: 7}, KindInsert: {Count: 3}},
	}
	var doc strings.Builder
	if err := rep.WriteJSON(&doc); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal([]byte(doc.String()), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Requests != 10 || back.Latency["all"].Count != 10 {
		t.Fatalf("round-tripped report lost fields: %+v", back)
	}

	var nd strings.Builder
	if err := rep.WriteNDJSON(&nd); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	if len(lines) != 4 { // 3 latency kinds + 1 summary
		t.Fatalf("NDJSON emitted %d lines, want 4:\n%s", len(lines), nd.String())
	}
	var rows []struct {
		Row string `json:"row"`
	}
	for _, l := range lines {
		var r struct {
			Row string `json:"row"`
		}
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", l, err)
		}
		rows = append(rows, r)
	}
	for _, r := range rows[:3] {
		if r.Row != "latency" {
			t.Fatalf("row = %q, want latency", r.Row)
		}
	}
	if rows[3].Row != "summary" {
		t.Fatalf("last row = %q, want summary", rows[3].Row)
	}
}
