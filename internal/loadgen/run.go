// Package loadgen is the closed-loop/open-loop load harness: it drives
// mixed insert/classify/ingest HTTP traffic against a live serveclass
// or servecluster instance under a chosen arrival process (Poisson,
// bursty on/off, diurnal ramp, adversarial hot-key, or fixed-
// concurrency closed loop), records per-request latency in a lock-free
// sharded HDR-style histogram (p50/p90/p99/p999, max), and scores
// answer quality against load: the granted-budget fraction, the
// degraded-answer fraction, and classification accuracy on a labelled
// holdout replayed through /classify. SLO objectives turn a run into a
// pass/fail — the regression gate behind every future perf claim.
//
// The paper's premise is that an anytime system under overload keeps
// latency bounded and degrades answer granularity instead; this
// package is how that claim is measured rather than asserted.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the driver: it turns a Scenario into HTTP traffic
// against a live server and folds every response into latency
// histograms and quality counters. Two modes:
//
//   - Open loop (Scenario.Proc set): a single scheduler thread draws
//     interarrival gaps from the process and stamps each request with
//     its scheduled arrival time; latency is measured from that stamp,
//     not from when a goroutine got around to sending — so queueing
//     delay (including the in-flight cap) is charged to the server,
//     the coordinated-omission-resistant convention.
//   - Closed loop (Proc nil): Concurrency workers issue requests back
//     to back; latency is the plain request round trip.
//
// Either way the server is expected to degrade, never error: every
// non-2xx answer and transport failure counts into ErrorRate, which an
// SLO can gate to zero.

// DefaultMaxInFlight caps concurrent open-loop requests when the
// scenario does not say: enough to expose real queueing, bounded so an
// overloaded target cannot eat the harness's file descriptors.
const DefaultMaxInFlight = 256

// DefaultHoldout is the labelled holdout size when the scenario does
// not say.
const DefaultHoldout = 512

// DefaultWarmup is how many observations seed the model before the
// measured phase when the scenario does not say. A classification
// server cannot answer over zero observations, and quality-vs-load on
// a three-point model would measure noise.
const DefaultWarmup = 600

// Scenario is one load-harness run.
type Scenario struct {
	// Target is the base URL of the server under load.
	Target string
	// Workload selects classification or clustering traffic.
	Workload Workload
	// Proc is the open-loop arrival process; nil runs closed-loop.
	Proc Process
	// Concurrency is the closed-loop worker count, and in open loop the
	// in-flight cap (0 = 8 workers / DefaultMaxInFlight).
	Concurrency int
	// Duration is the measured phase length.
	Duration time.Duration
	// Mix is the request mix.
	Mix Mix
	// Seed makes the generated traffic reproducible.
	Seed int64
	// HoldoutSize is the labelled holdout size (0 = DefaultHoldout).
	HoldoutSize int
	// Warmup is how many labelled observations to insert before
	// measuring (0 = DefaultWarmup; < 0 skips seeding). In multi-tenant
	// mode it is the total across tenants, floored at 2 per tenant.
	Warmup int
	// Tenants spreads the traffic across that many named tenants via
	// /t/{tenant} paths — the target must be a multi-tenant registry.
	// 0 keeps the legacy single-tenant paths.
	Tenants int
	// TenantSkew is the Zipf exponent of tenant popularity (values <= 1
	// mean DefaultTenantSkew). Higher = hotter head, colder tail.
	TenantSkew float64
	// Client overrides the HTTP client (nil = a tuned default).
	Client *http.Client
}

// withDefaults resolves zero values.
func (sc Scenario) withDefaults() Scenario {
	if sc.Workload == "" {
		sc.Workload = WorkloadClassify
	}
	if sc.Concurrency <= 0 {
		if sc.Proc == nil {
			sc.Concurrency = 8
		} else {
			sc.Concurrency = DefaultMaxInFlight
		}
	}
	if sc.Duration <= 0 {
		sc.Duration = 10 * time.Second
	}
	if sc.HoldoutSize <= 0 {
		sc.HoldoutSize = DefaultHoldout
	}
	if sc.Warmup == 0 {
		sc.Warmup = DefaultWarmup
	}
	if sc.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = sc.Concurrency + 16
		tr.MaxIdleConnsPerHost = sc.Concurrency + 16
		sc.Client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	return sc
}

// ProcessName names the scenario's arrival mode for reports.
func (sc Scenario) ProcessName() string {
	if sc.Proc == nil {
		return "closed"
	}
	return sc.Proc.Name()
}

// counters is the shared quality/throughput accounting of one run.
type counters struct {
	scheduled atomic.Int64 // open loop: requests the process offered
	done      atomic.Int64
	errors    atomic.Int64
	requested atomic.Int64 // sum of requested budgets
	granted   atomic.Int64 // sum of granted budgets
	degraded  atomic.Int64 // answers with granted < requested
	parked    atomic.Int64 // clustering ingests parked short of a leaf
	evaluated atomic.Int64 // holdout classifies answered
	correct   atomic.Int64 // ... with the true label
}

// wireResult is the subset of a Result / ClusterResult answer the
// harness reads back.
type wireResult struct {
	Label     int    `json:"label"`
	Requested int    `json:"requested"`
	Granted   int    `json:"granted"`
	Degraded  bool   `json:"degraded"`
	Parked    bool   `json:"parked"`
	Error     string `json:"error"`
}

// runState is everything one in-flight run shares.
type runState struct {
	sc    Scenario
	hists map[string]*Histogram
	all   *Histogram
	ctr   counters
}

// hist returns the histogram for a request kind.
func (rs *runState) hist(kind string) *Histogram { return rs.hists[kind] }

// send issues one request and folds the answer into the counters; it
// returns only after the response body is fully read, so latency
// covers the complete answer.
func (rs *runState) send(req request) error {
	resp, err := rs.sc.Client.Post(rs.sc.Target+req.path, "application/json", bytes.NewReader(req.body))
	if err != nil {
		rs.ctr.errors.Add(1)
		return err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		rs.ctr.errors.Add(1)
		return fmt.Errorf("loadgen: %s: status %d", req.path, resp.StatusCode)
	}
	if req.kind == KindInsert {
		return nil
	}
	var res wireResult
	if err := json.Unmarshal(body, &res); err != nil || res.Error != "" {
		rs.ctr.errors.Add(1)
		return fmt.Errorf("loadgen: %s: bad answer", req.path)
	}
	rs.ctr.requested.Add(int64(res.Requested))
	rs.ctr.granted.Add(int64(res.Granted))
	if res.Degraded {
		rs.ctr.degraded.Add(1)
	}
	if res.Parked {
		rs.ctr.parked.Add(1)
	}
	if req.wantLabel >= 0 {
		rs.ctr.evaluated.Add(1)
		if res.Label == req.wantLabel {
			rs.ctr.correct.Add(1)
		}
	}
	return nil
}

// seed inserts sc.Warmup labelled observations (classification) or
// ingests as many objects (clustering) so the measured phase starts on
// a real model. In multi-tenant mode every tenant is seeded round-robin
// with its share of the warmup (at least two observations each), so
// the measured phase never classifies against a tenant that does not
// exist yet — creation stays on the write path.
func (rs *runState) seed(ctx context.Context) error {
	n := rs.sc.Warmup
	if n < 0 {
		return nil
	}
	gen := newGenerator(rs.sc.Workload, Mix{InsertFraction: 1, Budget: rs.sc.Mix.Budget}, nil, nil, rs.sc.Seed^0x5eed, 0, 0)
	if rs.sc.Tenants > 0 {
		per := n / rs.sc.Tenants
		if per < 2 {
			per = 2
		}
		for t := 0; t < rs.sc.Tenants; t++ {
			pre := "/t/" + TenantName(t)
			for i := 0; i < per; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				req := gen.next()
				req.path = pre + req.path
				if err := rs.send(req); err != nil {
					return fmt.Errorf("loadgen: warmup tenant %s insert %d: %w", TenantName(t), i, err)
				}
			}
		}
		rs.ctr = counters{}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		req := gen.next()
		if err := rs.send(req); err != nil {
			return fmt.Errorf("loadgen: warmup insert %d: %w", i, err)
		}
	}
	// Warmup traffic must not bleed into the measured counters.
	rs.ctr = counters{}
	return nil
}

// Run drives one scenario to completion and returns its report. The
// context cancels early (the partial report is still returned with an
// error only if nothing completed).
func Run(ctx context.Context, sc Scenario) (*Report, error) {
	sc = sc.withDefaults()
	rs := &runState{
		sc:  sc,
		all: &Histogram{},
		hists: map[string]*Histogram{
			KindClassify: {}, KindInsert: {}, KindIngest: {},
		},
	}
	var holdout *Holdout
	if sc.Workload == WorkloadClassify {
		holdout = NewHoldout(sc.HoldoutSize, sc.Seed)
	}
	if err := rs.seed(ctx); err != nil {
		return nil, err
	}

	var elapsed time.Duration
	if sc.Proc == nil {
		elapsed = rs.runClosed(ctx, holdout)
	} else {
		elapsed = rs.runOpen(ctx, holdout)
	}
	rep := rs.report(elapsed)
	rep.Backends = fetchBackendRequests(sc)
	if rep.Requests == 0 && ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// fetchBackendRequests asks the target's /stats whether it is a
// scatter-gather proxy and, if so, returns requests served per backend.
// Any failure (plain server, no /stats, decode error) returns nil — the
// field is informational, never a run error.
func fetchBackendRequests(sc Scenario) map[string]int64 {
	resp, err := sc.Client.Get(sc.Target + "/stats")
	if err != nil {
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var st struct {
		Proxy    bool `json:"proxy"`
		Backends []struct {
			URL      string `json:"url"`
			Requests int64  `json:"requests"`
		} `json:"backends"`
	}
	if json.Unmarshal(body, &st) != nil || !st.Proxy || len(st.Backends) == 0 {
		return nil
	}
	out := make(map[string]int64, len(st.Backends))
	for _, b := range st.Backends {
		out[b.URL] = b.Requests
	}
	return out
}

// runClosed is the fixed-concurrency mode: each worker issues requests
// back to back until the deadline.
func (rs *runState) runClosed(ctx context.Context, holdout *Holdout) time.Duration {
	start := time.Now()
	deadline := start.Add(rs.sc.Duration)
	var wg sync.WaitGroup
	for w := 0; w < rs.sc.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := newGenerator(rs.sc.Workload, rs.sc.Mix, holdout, rs.sc.Proc, rs.sc.Seed+int64(w)*7919, rs.sc.Tenants, rs.sc.TenantSkew)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				req := gen.next()
				t0 := time.Now()
				// Errors are already folded into the counters by send.
				rs.send(req)
				rs.record(req.kind, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// runOpen is the open-loop mode: one scheduler draws gaps from the
// arrival process and stamps scheduled arrival times; workers send and
// measure latency from the stamp. The in-flight cap back-pressures the
// scheduler, but the wait for a slot happens after the stamp — so a
// server slow enough to exhaust the cap sees that delay charged as
// latency, exactly as a queue in front of it would be.
func (rs *runState) runOpen(ctx context.Context, holdout *Holdout) time.Duration {
	start := time.Now()
	deadline := start.Add(rs.sc.Duration)
	gen := newGenerator(rs.sc.Workload, rs.sc.Mix, holdout, rs.sc.Proc, rs.sc.Seed, rs.sc.Tenants, rs.sc.TenantSkew)
	sem := make(chan struct{}, rs.sc.Concurrency)
	var wg sync.WaitGroup
	scheduled := start
	for ctx.Err() == nil {
		gap := rs.sc.Proc.Gap(gen.rng, time.Since(start))
		scheduled = scheduled.Add(gap)
		if scheduled.After(deadline) {
			break
		}
		req := gen.next()
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		rs.ctr.scheduled.Add(1)
		sched := scheduled
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rs.send(req)
			rs.record(req.kind, time.Since(sched))
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// record folds one completed request into the histograms. Failed
// requests (already counted into errors by send) still count toward
// throughput and latency — an error under overload is precisely what
// the harness is here to catch, and hiding its latency would flatter
// the tail.
func (rs *runState) record(kind string, lat time.Duration) {
	rs.ctr.done.Add(1)
	rs.all.Record(lat)
	if h := rs.hist(kind); h != nil {
		h.Record(lat)
	}
}
