package loadgen

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The histogram's contract: percentiles within 1/histSubBuckets
// relative error, an exact max, and totals that survive any number of
// concurrent recorders. All deterministic — no clocks involved.

// TestHistogramBucketRoundTrip pins the bucket math: every value's
// representative is within the documented relative error, and the small
// linear range is exact.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for v := int64(0); v < histSubBuckets; v++ {
		idx := bucketIndex(v)
		if got := bucketValue(idx); got != v {
			t.Fatalf("linear range: value %d maps to bucket %d with representative %d", v, idx, got)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		v := int64(rng.Intn(1 << 40))
		rep := bucketValue(bucketIndex(v))
		// The representative is the bucket's upper edge: never below the
		// value, and at most one sub-bucket width above it.
		if rep < v {
			t.Fatalf("value %d got representative %d below it", v, rep)
		}
		if float64(rep-v) > float64(v)/histSubBuckets+1 {
			t.Fatalf("value %d got representative %d, relative error %.4f > 1/%d",
				v, rep, float64(rep-v)/float64(v), histSubBuckets)
		}
	}
}

// TestHistogramPercentiles pins the percentile math on a known
// distribution: 1..1000 µs recorded once each, so pX must be X% of a
// millisecond within bucket resolution, and max is exact.
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got := h.Max(); got != 1000*time.Microsecond {
		t.Fatalf("max = %v, want 1ms", got)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	}
	for _, c := range cases {
		got := h.Percentile(c.q)
		// Within one sub-bucket of relative error, and never below the
		// true quantile (representatives are upper edges).
		lo := c.want
		hi := c.want + c.want/histSubBuckets + time.Microsecond
		if got < lo || got > hi {
			t.Fatalf("p%g = %v, want in [%v, %v]", c.q*100, got, lo, hi)
		}
	}
	// Degenerate inputs.
	var empty Histogram
	if got := empty.Percentile(0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
}

// TestHistogramSingleValue: every percentile of a one-point histogram
// is that point (clamped to the exact max).
func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(123456 * time.Nanosecond)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := h.Percentile(q); got != 123456*time.Nanosecond {
			t.Fatalf("p%g = %v, want 123456ns", q*100, got)
		}
	}
	if got := h.Mean(); got != 123456*time.Nanosecond {
		t.Fatalf("mean = %v, want 123456ns", got)
	}
}

// TestHistogramConcurrentRecord: hammering Record from many goroutines
// loses nothing (the lock-free striping claim, run under -race in CI).
func TestHistogramConcurrentRecord(t *testing.T) {
	const workers, per = 16, 5000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(1e6)) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d after concurrent records, want %d", got, workers*per)
	}
	if h.Percentile(0.5) <= 0 || h.Percentile(0.5) > time.Millisecond {
		t.Fatalf("p50 = %v, want in (0, 1ms]", h.Percentile(0.5))
	}
}

// TestSnapshotShape: the snapshot carries the same numbers the
// accessors report, in milliseconds.
func TestSnapshotShape(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("snapshot count = %d, want 100", s.Count)
	}
	if s.MaxMs != 100 {
		t.Fatalf("snapshot max = %vms, want 100", s.MaxMs)
	}
	if s.P50Ms < 50 || s.P50Ms > 52.5 {
		t.Fatalf("snapshot p50 = %vms, want ≈50", s.P50Ms)
	}
	if s.MeanMs < 50 || s.MeanMs > 51 {
		t.Fatalf("snapshot mean = %vms, want ≈50.5", s.MeanMs)
	}
}
