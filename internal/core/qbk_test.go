package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any insertion order of the same observations, the tree
// stores exactly the input multiset and satisfies its invariants — the
// structure may differ, the content may not.
func TestInsertionOrderPreservesContent(t *testing.T) {
	base := func(seed int64) [][]float64 {
		rng := rand.New(rand.NewSource(seed))
		return randPoints(rng, 120, 2)
	}
	f := func(seed int64, permSeed int64) bool {
		points := base(seed)
		perm := rand.New(rand.NewSource(permSeed)).Perm(len(points))
		tree, err := NewTree(smallConfig(2))
		if err != nil {
			return false
		}
		for _, i := range perm {
			if err := tree.Insert(points[i]); err != nil {
				return false
			}
		}
		if err := tree.Validate(); err != nil {
			return false
		}
		// Multiset equality via coordinate sums (exact for permutations
		// of identical values summed in different orders? No — float sums
		// reorder. Compare sorted first coordinates instead).
		var stored []float64
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.leaf {
				for _, p := range n.points {
					stored = append(stored, p[0])
				}
				return
			}
			for i := range n.entries {
				walk(n.entries[i].Child)
			}
		}
		walk(tree.root)
		if len(stored) != len(points) {
			return false
		}
		want := make(map[float64]int)
		for _, p := range points {
			want[p[0]]++
		}
		for _, v := range stored {
			want[v]--
		}
		for _, c := range want {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: for any query point and budget, ClassifyTrace entries are
// valid labels and the trace is consistent with repeated Classify calls
// at each budget prefix (determinism of the full anytime pipeline).
func TestTraceConsistentWithPrefixClassify(t *testing.T) {
	xs, ys := twoClassData(300, 31)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		trace := clf.ClassifyTrace(x, 30)
		for _, b := range []int{0, 3, 11, 30} {
			if got := clf.Classify(x, b); got != trace[b] {
				t.Fatalf("Classify(%d) = %d, trace[%d] = %d", b, got, b, trace[b])
			}
		}
	}
}

// k = 1 degenerates qbk to always refining the current best class; the
// classifier must still terminate and classify sensibly.
func TestQBKOne(t *testing.T) {
	xs, ys := twoClassData(400, 33)
	clf := buildClassifier(t, xs[:300], ys[:300], ClassifierOptions{K: 1})
	correct := 0
	for i := 300; i < 400; i++ {
		if clf.Classify(xs[i], 40) == ys[i] {
			correct++
		}
	}
	if correct < 80 {
		t.Errorf("k=1 accuracy %d/100", correct)
	}
}

// With k = numClasses every class gets refined in round-robin; exhausting
// all trees must read every node of every tree exactly once.
func TestQBKAllClassesExhaustsEverything(t *testing.T) {
	xs, ys := twoClassData(300, 34)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{K: 2})
	q := clf.NewQuery([]float64{0.5, 0.5})
	reads := 0
	for q.Step() {
		reads++
	}
	want := 0
	for _, y := range clf.Labels() {
		want += clf.Tree(y).Stats().Nodes
	}
	if reads != want {
		t.Fatalf("read %d nodes, forest has %d", reads, want)
	}
}

// dft descent must behave sensibly end to end (the paper evaluated it as
// the weakest strategy but it must be correct).
func TestDFTDescentCorrect(t *testing.T) {
	xs, ys := twoClassData(400, 35)
	clf := buildClassifier(t, xs[:300], ys[:300], ClassifierOptions{Strategy: DescentDFT})
	correct := 0
	for i := 300; i < 400; i++ {
		if clf.Classify(xs[i], -1) == ys[i] {
			correct++
		}
	}
	if correct < 90 {
		t.Errorf("dft full-model accuracy %d/100", correct)
	}
}
