package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// A pooled (reused) cursor must produce bit-identical densities to a fresh
// one at every refinement step: pooling is a pure memory optimisation.
func TestPooledCursorBitIdentical(t *testing.T) {
	tree := buildTree(t, 400, 3, 11)
	rng := rand.New(rand.NewSource(12))
	for _, strat := range []Strategy{DescentGlobal, DescentBFT, DescentDFT} {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		// Record the reference trajectory with a cursor that is never
		// recycled (left unclosed).
		ref := tree.NewCursor(x, strat, PriorityProbabilistic)
		var want []float64
		for {
			want = append(want, ref.LogDensity())
			if !ref.Refine() {
				break
			}
		}
		// Now run several generations of pooled cursors over the same
		// query; each Close feeds the next NewCursor's reuse.
		for gen := 0; gen < 3; gen++ {
			cur := tree.NewCursor(x, strat, PriorityProbabilistic)
			for step := 0; ; step++ {
				if got := cur.LogDensity(); got != want[step] {
					t.Fatalf("%v gen %d step %d: pooled %v != fresh %v", strat, gen, step, got, want[step])
				}
				if !cur.Refine() {
					break
				}
			}
			cur.Close()
		}
	}
}

// Inserting into a tree must invalidate the cached query state: a cursor
// created afterwards sees the new observations exactly (full refinement
// equals the direct kernel density over the grown population).
func TestInsertInvalidatesCursorCache(t *testing.T) {
	tree := buildTree(t, 150, 2, 13)
	x := []float64{0.4, 0.6}
	// Prime the cache (and the cursor pool).
	warm := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	warm.RefineAll()
	before := warm.LogDensity()
	warm.Close()
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 60; i++ {
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	got := cur.LogDensity()
	cur.Close()
	want := directKernelLogDensity(tree, x)
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("post-insert density %v, want %v (stale cache?)", got, want)
	}
	if got == before {
		t.Fatalf("density unchanged by 60 inserts — cache not invalidated")
	}
	// The level-0 model must also reflect the new root summary.
	lvl0 := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	e, _ := tree.RootEntry()
	if want0 := e.Gaussian().LogPDF(x); math.Abs(lvl0.LogDensity()-want0) > 1e-9 {
		t.Fatalf("level-0 density %v, want %v", lvl0.LogDensity(), want0)
	}
	lvl0.Close()
}

// The eagerly frozen entry cache must agree with the Gaussians derived
// from the cluster features everywhere in the tree.
func TestFrozenEntriesMatchCF(t *testing.T) {
	tree := buildTree(t, 500, 3, 15)
	rng := rand.New(rand.NewSource(16))
	x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.frozen == nil {
				t.Fatalf("entry without eager frozen cache")
			}
			want := e.CF.Gaussian().LogPDF(x)
			got := e.Frozen().LogPDF(x)
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("frozen %v vs CF %v", got, want)
			}
			walk(e.Child)
		}
	}
	walk(tree.Root())
}

// ClassifyBatch must reproduce sequential classification exactly, at any
// worker count (run under -race this also exercises the shared read-only
// classifier from many goroutines).
func TestClassifyBatchMatchesSequential(t *testing.T) {
	xs, ys := twoClassData(600, 21)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	want := make([]int, len(xs))
	for i, x := range xs {
		want[i] = clf.Classify(x, 15)
	}
	for _, workers := range []int{1, 2, 4, runtime.NumCPU(), 0} {
		got := clf.ClassifyBatch(xs, 15, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d object %d: batch %d != sequential %d", workers, i, got[i], want[i])
			}
		}
	}
}

// Per-object budgets: the batch form must match per-object Classify calls.
func TestClassifyBatchBudgets(t *testing.T) {
	xs, ys := twoClassData(200, 22)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	rng := rand.New(rand.NewSource(23))
	budgets := make([]int, len(xs))
	for i := range budgets {
		budgets[i] = rng.Intn(30)
	}
	got, err := clf.ClassifyBatchBudgets(xs, budgets, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if want := clf.Classify(x, budgets[i]); got[i] != want {
			t.Fatalf("object %d: batch %d != sequential %d", i, got[i], want)
		}
	}
	if _, err := clf.ClassifyBatchBudgets(xs, budgets[:1], 4); err == nil {
		t.Fatal("mismatched budgets length must error")
	}
}

// The multi-class tree batch API must match its sequential Classify.
func TestMultiTreeClassifyBatch(t *testing.T) {
	xs, ys := twoClassData(300, 24)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	opts := ClassifierOptions{}
	got, err := mt.ClassifyBatch(xs, opts, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := mt.Classify(x, opts, 12)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("object %d: batch %d != sequential %d", i, got[i], want)
		}
	}
}

// Pooled queries must not leak state between classifications: a query
// closed mid-refinement followed by a different object must classify the
// new object as a never-pooled classifier would.
func TestQueryPoolNoStateLeak(t *testing.T) {
	xs, ys := twoClassData(400, 25)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	// Interleave: classify a, then b, then a again, with varying budgets.
	a, b := xs[0], xs[len(xs)-1]
	wantA := clf.Classify(a, 40)
	for i := 0; i < 10; i++ {
		clf.Classify(b, i)
		if got := clf.Classify(a, 40); got != wantA {
			t.Fatalf("iteration %d: pooled classify drifted: %d != %d", i, got, wantA)
		}
	}
}
