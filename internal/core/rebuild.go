package core

import (
	"fmt"
	"math"

	"bayestree/internal/mbr"
	"bayestree/internal/stats"
)

// This file provides the constructors a snapshot decoder needs to
// reassemble trees whose node and entry internals are unexported. The
// contract is digit-identity: a rebuilt entry carries the exact cluster
// feature that was stored, and its frozen cache is derived from that
// feature by stats.Freeze — the same call summarize uses — so a decoded
// tree answers every query with bit-identical log densities. See
// internal/persist for the on-disk format and ARCHITECTURE.md for the
// frozen-cache invalidation contract.

// RebuildLeaf returns a leaf node owning the given observations. The
// slice is retained, not copied; callers hand over ownership.
func RebuildLeaf(points [][]float64) *Node {
	return &Node{leaf: true, points: points}
}

// RebuildLeafWeighted is RebuildLeaf for decayed leaves: weights are
// the per-observation decayed masses, parallel to points (nil means
// unit weights). Both slices are retained, not copied.
func RebuildLeafWeighted(points [][]float64, weights []float64) (*Node, error) {
	if err := validateWeights(weights, len(points)); err != nil {
		return nil, err
	}
	return &Node{leaf: true, points: points, weights: weights}, nil
}

// validateWeights checks a decoded leaf weight vector: parallel to the
// points and strictly positive finite masses.
func validateWeights(weights []float64, points int) error {
	if weights == nil {
		return nil
	}
	if len(weights) != points {
		return fmt.Errorf("core: %d weights for %d observations", len(weights), points)
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return fmt.Errorf("core: invalid observation weight %v at %d", w, i)
		}
	}
	return nil
}

// RebuildInner returns an inner node owning the given entries. The slice
// is retained, not copied; callers hand over ownership.
func RebuildInner(entries []Entry) *Node {
	return &Node{entries: entries}
}

// RebuildEntry returns an entry over child carrying exactly the given
// MBR and cluster feature, with the frozen-Gaussian cache derived from
// cf — the same derivation summarize performs, so a rebuilt entry is
// indistinguishable from the original.
func RebuildEntry(rect mbr.Rect, cf stats.CF, child *Node) Entry {
	f := stats.Freeze(&cf)
	return Entry{Rect: rect, CF: cf, Child: child, frozen: &f}
}

// RebuildTree reassembles a Tree from decoded parts. It validates the
// configuration and checks that the node structure actually holds size
// observations, guarding against logically corrupt snapshots that pass
// the transport checksum.
func RebuildTree(cfg Config, root *Node, size int, balanced bool) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("core: rebuild with nil root")
	}
	var points [][]float64
	collectPoints(root, &points)
	if len(points) != size {
		return nil, fmt.Errorf("core: rebuild size %d but tree holds %d observations", size, len(points))
	}
	for _, p := range points {
		if len(p) != cfg.Dim {
			return nil, fmt.Errorf("core: rebuild point dim %d != tree dim %d", len(p), cfg.Dim)
		}
	}
	return &Tree{cfg: cfg, root: root, size: size, balanced: balanced}, nil
}

// RebuildMultiLeaf returns a multi-class leaf owning the given labelled
// observations. The slice is retained, not copied.
func RebuildMultiLeaf(points []LabeledPoint) *MultiNode {
	return &MultiNode{leaf: true, points: points}
}

// RebuildMultiLeafWeighted is RebuildMultiLeaf for decayed leaves (see
// RebuildLeafWeighted).
func RebuildMultiLeafWeighted(points []LabeledPoint, weights []float64) (*MultiNode, error) {
	if err := validateWeights(weights, len(points)); err != nil {
		return nil, err
	}
	return &MultiNode{leaf: true, points: points, weights: weights}, nil
}

// RebuildMultiInner returns a multi-class inner node owning the given
// entries. The entries' frozen caches are populated by RebuildMultiTree
// (freezing needs the tree's variance-pooling option).
func RebuildMultiInner(entries []MultiEntry) *MultiNode {
	return &MultiNode{entries: entries}
}

// RebuildMultiTree reassembles a MultiTree from decoded parts: the
// structural configuration, the multi-class options (which govern how
// entry caches are frozen), the class labels in tree order, the root
// node and the per-class observation counts. Every inner entry's frozen
// per-class Gaussians are recomputed from its stored cluster features —
// the same derivation summarize performs — and the leaf population is
// checked against the counts.
func RebuildMultiTree(cfg Config, mopts MultiOptions, labels []int, root *MultiNode, counts []float64) (*MultiTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("core: rebuild with nil root")
	}
	if len(labels) < 2 {
		return nil, fmt.Errorf("core: multi tree needs ≥ 2 classes, got %d", len(labels))
	}
	if len(counts) != len(labels) {
		return nil, fmt.Errorf("core: %d counts for %d labels", len(counts), len(labels))
	}
	index := make(map[int]int, len(labels))
	for i, l := range labels {
		if _, dup := index[l]; dup {
			return nil, fmt.Errorf("core: duplicate class label %d", l)
		}
		index[l] = i
	}
	t := &MultiTree{
		cfg:    cfg,
		mopts:  mopts,
		labels: append([]int(nil), labels...),
		index:  index,
		root:   root,
		counts: append([]float64(nil), counts...),
	}
	var total float64
	for _, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("core: invalid class count %v", c)
		}
		total += c
	}
	seen := 0
	weighted := false
	var walk func(n *MultiNode) error
	walk = func(n *MultiNode) error {
		if n.leaf {
			if n.weights != nil {
				weighted = true
			}
			for _, p := range n.points {
				if len(p.X) != cfg.Dim {
					return fmt.Errorf("core: rebuild point dim %d != tree dim %d", len(p.X), cfg.Dim)
				}
				if _, ok := index[p.Label]; !ok {
					return fmt.Errorf("core: rebuild point with unknown label %d", p.Label)
				}
				seen++
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if len(e.CFs) != len(labels) {
				return fmt.Errorf("core: rebuild entry with %d class CFs, want %d", len(e.CFs), len(labels))
			}
			if e.Child == nil {
				return fmt.Errorf("core: rebuild inner entry with nil child")
			}
			t.freeze(e)
			if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	t.size = seen
	if !weighted {
		// Undecayed trees: class counts are integral and must equal the
		// stored population exactly.
		if int(total) != seen {
			return nil, fmt.Errorf("core: rebuild counts sum %v but tree holds %d observations", total, seen)
		}
		return t, nil
	}
	// Decayed trees: the stored per-class masses must agree with the
	// bottom-up sum of the leaf weights (the counts stay as stored, so
	// a reloaded model scores digit-identically).
	sum := t.summarize(root)
	for c := range counts {
		if math.Abs(counts[c]-sum.CFs[c].N) > 1e-6*(1+math.Abs(sum.CFs[c].N)) {
			return nil, fmt.Errorf("core: rebuild class %d mass %v but tree holds %v", labels[c], counts[c], sum.CFs[c].N)
		}
	}
	return t, nil
}
