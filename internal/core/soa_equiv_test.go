package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"bayestree/internal/kernels"
)

// These are the digit-identity property tests of the vectorized-descent
// contract (soa.go): a query served through the structure-of-arrays
// mirror must produce bitwise the same scores, at every step, as the
// exact pointer path — across strategies, priorities, kernels,
// missing-value queries, randomized insert/decay/classify
// interleavings (including the epoch-advance invalidation trigger) and
// the fused batch path. Run them under -race to also check the
// published mirror is safe for concurrent readers.

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// compareMultiQuery runs x through the exact pointer path and the SoA
// mirror in lockstep and fails on the first step whose scores differ in
// any bit. budget < 0 means until exhaustion.
func compareMultiQuery(t *testing.T, ctx string, mt *MultiTree, x []float64, opts ClassifierOptions, budget int) {
	t.Helper()
	exact := opts
	exact.ExactDescent = true
	qe, err := mt.NewQuery(x, exact)
	if err != nil {
		t.Fatalf("%s: exact query: %v", ctx, err)
	}
	defer qe.Close()
	qs, err := mt.NewQuery(x, opts)
	if err != nil {
		t.Fatalf("%s: soa query: %v", ctx, err)
	}
	defer qs.Close()
	if qe.UsedSoA() {
		t.Fatalf("%s: ExactDescent query took the SoA path", ctx)
	}
	if !qs.UsedSoA() {
		t.Fatalf("%s: SoA query fell back to the pointer path", ctx)
	}
	for step := 0; budget < 0 || step <= budget; step++ {
		se, ss := qe.Scores(), qs.Scores()
		if !bitsEqual(se, ss) {
			t.Fatalf("%s: step %d: soa scores %v != exact %v", ctx, step, ss, se)
		}
		oke, oks := qe.Step(), qs.Step()
		if oke != oks {
			t.Fatalf("%s: step %d: exact Step=%v, soa Step=%v", ctx, step, oke, oks)
		}
		if qe.NodesRead() != qs.NodesRead() {
			t.Fatalf("%s: step %d: exact reads %d, soa reads %d", ctx, step, qe.NodesRead(), qs.NodesRead())
		}
		if !oke {
			break
		}
	}
	if qe.Predict() != qs.Predict() {
		t.Fatalf("%s: predictions differ: exact %d, soa %d", ctx, qe.Predict(), qs.Predict())
	}
}

func soaVariants() (strategies []Strategy, priorities []Priority) {
	return []Strategy{DescentGlobal, DescentBFT, DescentDFT},
		[]Priority{PriorityProbabilistic, PriorityGeometric}
}

func TestSoAEquivalenceMultiTree(t *testing.T) {
	strategies, priorities := soaVariants()
	for _, mo := range []MultiOptions{{}, {PooledVariance: true}, {EntropyPriority: true}} {
		xs, ys := twoClassData(400, 7)
		mt := buildMultiTree(t, xs, ys, mo)
		mt.RefreshSoA()
		queries, _ := twoClassData(12, 8)
		// Missing-value queries exercise the marginal (obs) sweeps.
		queries = append(queries, []float64{math.NaN(), 0.5}, []float64{0.3, math.NaN()})
		for _, strat := range strategies {
			for _, prio := range priorities {
				opts := ClassifierOptions{Strategy: strat, Priority: prio}
				for qi, x := range queries {
					budget := []int{0, 1, 7, 64, -1}[qi%5]
					ctx := "mo=" + map[bool]string{true: "pooled", false: "plain"}[mo.PooledVariance] +
						"/strat=" + strat.String() + "/prio=" + prio.String()
					compareMultiQuery(t, ctx, mt, x, opts, budget)
				}
			}
		}
	}
}

func TestSoAEquivalenceEpanechnikov(t *testing.T) {
	cfg := smallConfig(2)
	cfg.Kernel = kernels.Epanechnikov{}
	xs, ys := twoClassData(300, 11)
	mt, err := NewMultiTree(cfg, []int{0, 1}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := mt.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	mt.RefreshSoA()
	queries, _ := twoClassData(8, 12)
	// Far-away queries land outside the Epanechnikov support, driving the
	// sweep's −Inf early-out.
	queries = append(queries, []float64{25, 25}, []float64{math.NaN(), 0.4})
	for _, x := range queries {
		compareMultiQuery(t, "epanechnikov", mt, x, ClassifierOptions{}, -1)
	}
}

// TestSoAEquivalenceUnderMutation is the randomized interleaving
// property: inserts (patch trigger), epoch advances and decay sweeps
// (structural triggers) interleaved with classifications, asserting at
// every point that (a) a stale mirror is never served — post-mutation
// queries fall back until RefreshSoA — and (b) a refreshed mirror is
// digit-identical to the pointer path.
func TestSoAEquivalenceUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mt, err := NewMultiTree(smallConfig(3), []int{0, 1, 2}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	insert := func(k int) {
		for j := 0; j < k; j++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			if err := mt.Insert(x, rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(120)
	mt.RefreshSoA()
	if err := mt.EnableDecay(DecayOptions{Lambda: 0.1, MinWeight: 1e-4}); err != nil {
		t.Fatal(err)
	}
	check := func(ctx string) {
		t.Helper()
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		compareMultiQuery(t, ctx, mt, x, ClassifierOptions{}, 1+rng.Intn(40))
	}
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0:
			insert(1 + rng.Intn(5))
		case 1:
			mt.AdvanceEpoch(1)
		default:
			mt.AdvanceEpoch(1)
			mt.DecaySweep()
		}
		// A mutated tree must unpublish the mirror: queries fall back to
		// the pointer path rather than read stale flat state.
		q, err := mt.NewQuery([]float64{0, 0, 0}, ClassifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if q.UsedSoA() {
			t.Fatalf("round %d: query used a mirror that a mutation should have unpublished", round)
		}
		q.Close()
		mt.RefreshSoA()
		check("after refresh")
		if err := mt.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	rebuilds, patches, invalidations := mt.SoACounters()
	if rebuilds == 0 || invalidations == 0 {
		t.Fatalf("counters did not move: rebuilds=%d patches=%d invalidations=%d", rebuilds, patches, invalidations)
	}
	if patches == 0 {
		t.Logf("note: no in-place patches this seed (every refresh rebuilt)")
	}
}

// TestSoAPatchPath pins the in-place patch: split-free inserts into a
// stable structure must refresh via patch, not rebuild.
func TestSoAPatchPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mt, err := NewMultiTree(smallConfig(2), []int{0, 1}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 200; j++ {
		if err := mt.Insert([]float64{rng.Float64(), rng.Float64()}, j%2); err != nil {
			t.Fatal(err)
		}
	}
	mt.RefreshSoA()
	var patched bool
	for j := 0; j < 50; j++ {
		_, p0, _ := mt.SoACounters()
		if err := mt.Insert([]float64{rng.Float64(), rng.Float64()}, j%2); err != nil {
			t.Fatal(err)
		}
		mt.RefreshSoA()
		if _, p1, _ := mt.SoACounters(); p1 > p0 {
			patched = true
		}
		compareMultiQuery(t, "patched", mt, []float64{rng.Float64(), rng.Float64()}, ClassifierOptions{}, -1)
	}
	if !patched {
		t.Fatalf("no insert took the patch path in 50 split-prone rounds")
	}
}

func TestScoreBatchMatchesSolo(t *testing.T) {
	xs, ys := twoClassData(500, 5)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	mt.RefreshSoA()
	queries, _ := twoClassData(40, 6)
	budgets := make([]int, len(queries))
	for i := range budgets {
		budgets[i] = []int{0, 3, 17, 80, -1}[i%5]
	}
	for _, exact := range []bool{false, true} {
		opts := ClassifierOptions{ExactDescent: exact}
		scores, reads, err := mt.ScoreBatch(queries, opts, budgets, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range queries {
			q, err := mt.NewQuery(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; budgets[i] < 0 || s < budgets[i]; s++ {
				if !q.Step() {
					break
				}
			}
			if !bitsEqual(scores[i], q.Scores()) {
				t.Fatalf("exact=%v: item %d: batch scores %v != solo %v", exact, i, scores[i], q.Scores())
			}
			if reads[i] != q.NodesRead() {
				t.Fatalf("exact=%v: item %d: batch reads %d != solo %d", exact, i, reads[i], q.NodesRead())
			}
			q.Close()
		}
	}
}

func TestSoAEquivalenceTreeCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr, err := NewTree(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 300; j++ {
		if err := tr.Insert([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	tr.RefreshSoA()
	strategies, priorities := soaVariants()
	for _, strat := range strategies {
		for _, prio := range priorities {
			for qi := 0; qi < 8; qi++ {
				x := []float64{rng.NormFloat64(), rng.NormFloat64()}
				if qi == 7 {
					x[0] = math.NaN()
				}
				ce := tr.newCursorExact(x, strat, prio, true)
				cs := tr.newCursorExact(x, strat, prio, false)
				if cs.soa == nil {
					t.Fatalf("cursor did not pick up the mirror")
				}
				for step := 0; ; step++ {
					le, ls := ce.LogDensity(), cs.LogDensity()
					if math.Float64bits(le) != math.Float64bits(ls) {
						t.Fatalf("%v/%v step %d: soa density %v != exact %v", strat, prio, step, ls, le)
					}
					oke, oks := ce.Refine(), cs.Refine()
					if oke != oks {
						t.Fatalf("%v/%v step %d: refine %v vs %v", strat, prio, step, oke, oks)
					}
					if !oke {
						break
					}
				}
				ce.Close()
				cs.Close()
			}
		}
	}
	// Insert must unpublish; refresh must republish.
	if err := tr.Insert([]float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if c := tr.newCursorExact([]float64{0, 0}, DescentGlobal, PriorityProbabilistic, false); c.soa != nil {
		t.Fatalf("cursor used a mirror a mutation should have unpublished")
	} else {
		c.Close()
	}
	tr.RefreshSoA()
	if c := tr.newCursorExact([]float64{0, 0}, DescentGlobal, PriorityProbabilistic, false); c.soa == nil {
		t.Fatalf("refresh did not republish the mirror")
	} else {
		c.Close()
	}
}

func TestSoAEquivalenceClassifier(t *testing.T) {
	xs, ys := twoClassData(400, 13)
	ce := buildClassifier(t, xs, ys, ClassifierOptions{ExactDescent: true})
	cs := buildClassifier(t, xs, ys, ClassifierOptions{})
	cs.RefreshSoA()
	queries, _ := twoClassData(20, 14)
	for _, x := range queries {
		te := ce.ClassifyTrace(x, 60)
		ts := cs.ClassifyTrace(x, 60)
		for i := range te {
			if te[i] != ts[i] {
				t.Fatalf("trace diverges at node %d: exact %d, soa %d", i, te[i], ts[i])
			}
		}
	}
}

// TestSoAConcurrentQueries exercises the published mirror from many
// goroutines at once; run with -race to verify queries share it without
// writes.
func TestSoAConcurrentQueries(t *testing.T) {
	xs, ys := twoClassData(400, 17)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	mt.RefreshSoA()
	queries, _ := twoClassData(32, 18)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, x := range queries {
				opts := ClassifierOptions{ExactDescent: (g+i)%2 == 0}
				pred, err := mt.Classify(x, opts, 40)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				want, err := mt.Classify(x, ClassifierOptions{ExactDescent: true}, 40)
				if err != nil || pred != want {
					t.Errorf("goroutine %d: pred %d want %d err %v", g, pred, want, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
