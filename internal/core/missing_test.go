package core

import (
	"math"
	"math/rand"
	"testing"
)

// Marginalisation correctness: the fully refined density of a query with
// a missing dimension must equal the fully refined density computed on a
// tree built from the data with that dimension dropped (diagonal models
// marginalise by dropping dimensions; only the bandwidth differs slightly
// because Silverman's factor depends on d — so we compare against a
// direct masked kernel sum instead).
func TestMissingValueDensityIsMarginal(t *testing.T) {
	tree := buildTree(t, 250, 3, 21)
	h := tree.Bandwidth()
	x := []float64{0.4, math.NaN(), 0.7}
	obs := []int{0, 2}

	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	if cur == nil {
		t.Fatal("no cursor")
	}
	cur.RefineAll()
	got := cur.LogDensity()

	// Direct masked kernel sum.
	var logs []float64
	var collect func(n *Node)
	collect = func(n *Node) {
		if n.IsLeaf() {
			for _, p := range n.Points() {
				logs = append(logs, tree.Config().Kernel.LogDensityObs(x, p, h, obs))
			}
			return
		}
		for _, e := range n.Entries() {
			collect(e.Child)
		}
	}
	collect(tree.Root())
	m := math.Inf(-1)
	for _, l := range logs {
		if l > m {
			m = l
		}
	}
	var s float64
	for _, l := range logs {
		s += math.Exp(l - m)
	}
	want := m + math.Log(s) - math.Log(float64(len(logs)))
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("masked density %v, want %v", got, want)
	}
}

// Classification with missing values: on data where one dimension is
// uninformative, dropping it must not destroy accuracy.
func TestClassifyWithMissingValues(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var xs [][]float64
	var ys []int
	for i := 0; i < 600; i++ {
		y := i % 2
		xs = append(xs, []float64{
			float64(y) + rng.NormFloat64()*0.2, // informative
			rng.Float64(),                      // noise
			float64(y) + rng.NormFloat64()*0.2, // informative
		})
		ys = append(ys, y)
	}
	clf := buildClassifier(t, xs[:400], ys[:400], ClassifierOptions{})
	correctFull, correctMissing := 0, 0
	for i := 400; i < 600; i++ {
		if clf.Classify(xs[i], 25) == ys[i] {
			correctFull++
		}
		masked := []float64{xs[i][0], math.NaN(), xs[i][2]}
		if clf.Classify(masked, 25) == ys[i] {
			correctMissing++
		}
	}
	if correctMissing < 180 {
		t.Errorf("missing-noise-dim accuracy %d/200 too low (full: %d)", correctMissing, correctFull)
	}
	// Dropping an informative dimension should hurt but not collapse.
	collapsed := 0
	for i := 400; i < 600; i++ {
		masked := []float64{math.NaN(), xs[i][1], math.NaN()}
		if clf.Classify(masked, 25) == ys[i] {
			collapsed++
		}
	}
	if collapsed > 130 {
		t.Logf("note: noise-only accuracy %d/200 (expected near chance)", collapsed)
	}
}

// Geometric priority with missing values must also work (MINDIST over
// observed dims only).
func TestMissingValueGeometricDescent(t *testing.T) {
	tree := buildTree(t, 200, 3, 23)
	x := []float64{math.NaN(), 0.5, math.NaN()}
	cur := tree.NewCursor(x, DescentGlobal, PriorityGeometric)
	for i := 0; i < 10; i++ {
		if !cur.Refine() {
			break
		}
	}
	if ld := cur.LogDensity(); math.IsNaN(ld) {
		t.Fatalf("NaN density under geometric descent with missing dims")
	}
}

// Multi-class tree handles missing values too.
func TestMultiTreeMissingValues(t *testing.T) {
	xs, ys := twoClassData(400, 24)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	x := []float64{xs[0][0], math.NaN()}
	pred, err := mt.Classify(x, ClassifierOptions{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pred != 0 && pred != 1 {
		t.Fatalf("prediction %d not a known label", pred)
	}
}

// All-missing queries degrade to the prior (every class explains the
// empty observation equally).
func TestAllMissingFallsBackToPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	var xs [][]float64
	var ys []int
	// Class 1 has 4× the data of class 0.
	for i := 0; i < 500; i++ {
		y := 0
		if i%5 != 0 {
			y = 1
		}
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, y)
	}
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	x := []float64{math.NaN(), math.NaN()}
	if got := clf.Classify(x, 10); got != 1 {
		t.Errorf("all-missing query predicted %d, want majority class 1", got)
	}
}

func TestOutlierScore(t *testing.T) {
	xs, ys := twoClassData(400, 26)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	inlier := clf.OutlierScore(xs[0], 30)
	outlier := clf.OutlierScore([]float64{50, -50}, 30)
	if !(outlier > inlier) {
		t.Fatalf("outlier score %v not above inlier score %v", outlier, inlier)
	}
	// Anytime property: scores remain finite and ordered at tiny budgets.
	inlier0 := clf.OutlierScore(xs[0], 0)
	outlier0 := clf.OutlierScore([]float64{50, -50}, 0)
	if math.IsNaN(inlier0) || !(outlier0 > inlier0) {
		t.Fatalf("budget-0 outlier ordering broken: %v vs %v", outlier0, inlier0)
	}
}
