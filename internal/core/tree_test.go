package core

import (
	"math"
	"math/rand"
	"testing"

	"bayestree/internal/kernels"
)

func smallConfig(dim int) Config {
	return Config{
		Dim:       dim,
		MinFanout: 2, MaxFanout: 5,
		MinLeaf: 2, MaxLeaf: 6,
		Kernel:         kernels.Gaussian{},
		ForcedReinsert: true,
	}
}

func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for k := range p {
			p[k] = rng.Float64()
		}
		out[i] = p
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(8).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Dim: 0, MinFanout: 2, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6, Kernel: kernels.Gaussian{}},
		{Dim: 2, MinFanout: 3, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6, Kernel: kernels.Gaussian{}},
		{Dim: 2, MinFanout: 2, MaxFanout: 5, MinLeaf: 4, MaxLeaf: 6, Kernel: kernels.Gaussian{}},
		{Dim: 2, MinFanout: 2, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6},
		{Dim: 2, MinFanout: 2, MaxFanout: 5, MinLeaf: 2, MaxLeaf: 6, Kernel: kernels.Gaussian{}, ReinsertFraction: 0.8},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigPageDerivation(t *testing.T) {
	// For d=16 an entry is (4·16+2)·8 = 528 bytes → M = 3, clamped to 4.
	cfg := DefaultConfig(16)
	if cfg.MaxFanout != 4 {
		t.Errorf("MaxFanout(16) = %d, want 4", cfg.MaxFanout)
	}
	if cfg.MaxLeaf != 16 {
		t.Errorf("MaxLeaf(16) = %d, want 16", cfg.MaxLeaf)
	}
	// Low dimensions hit the clamp at 32/64.
	cfg = DefaultConfig(1)
	if cfg.MaxFanout != 32 || cfg.MaxLeaf != 64 {
		t.Errorf("clamps wrong: %+v", cfg)
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	for _, reinsert := range []bool{true, false} {
		cfg := smallConfig(3)
		cfg.ForcedReinsert = reinsert
		tree, err := NewTree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		for i, p := range randPoints(rng, 500, 3) {
			if err := tree.Insert(p); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
			if i%37 == 0 {
				if err := tree.Validate(); err != nil {
					t.Fatalf("reinsert=%v, invariants after %d inserts: %v", reinsert, i+1, err)
				}
			}
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("reinsert=%v, final: %v", reinsert, err)
		}
		if tree.Len() != 500 {
			t.Fatalf("Len = %d", tree.Len())
		}
		if !tree.Balanced() {
			t.Fatalf("iterative tree must be balanced")
		}
	}
}

func TestInsertRejectsBadInput(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	if err := tree.Insert([]float64{1}); err == nil {
		t.Errorf("wrong dim accepted")
	}
	if err := tree.Insert([]float64{1, math.NaN()}); err == nil {
		t.Errorf("NaN accepted")
	}
	if err := tree.Insert([]float64{1, math.Inf(1)}); err == nil {
		t.Errorf("Inf accepted")
	}
}

func TestInsertCopiesInput(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	p := []float64{0.5, 0.5}
	if err := tree.Insert(p); err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	e, ok := tree.RootEntry()
	if !ok {
		t.Fatal("no root entry")
	}
	if e.CF.Mean()[0] == 99 {
		t.Errorf("tree aliases caller's slice")
	}
}

func TestRootEntrySummarisesEverything(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	if _, ok := tree.RootEntry(); ok {
		t.Errorf("empty tree has a root entry")
	}
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 300, 2)
	var sum0 float64
	for _, p := range pts {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
		sum0 += p[0]
	}
	e, ok := tree.RootEntry()
	if !ok {
		t.Fatal("no root entry")
	}
	if e.CF.N != 300 {
		t.Errorf("root CF.N = %v", e.CF.N)
	}
	if math.Abs(e.CF.LS[0]-sum0) > 1e-6 {
		t.Errorf("root LS[0] = %v, want %v", e.CF.LS[0], sum0)
	}
	// MBR covers all points.
	for _, p := range pts {
		if !e.Rect.ContainsPoint(p) {
			t.Fatalf("root MBR misses point %v", p)
		}
	}
}

func TestBandwidthShrinksWithN(t *testing.T) {
	mk := func(n int) *Tree {
		tree, _ := NewTree(smallConfig(2))
		rng := rand.New(rand.NewSource(3))
		for _, p := range randPoints(rng, n, 2) {
			if err := tree.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		return tree
	}
	small := mk(50).Bandwidth()
	large := mk(5000).Bandwidth()
	if large[0] >= small[0] {
		t.Errorf("bandwidth did not shrink: %v vs %v", small[0], large[0])
	}
}

func TestStatsShape(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	rng := rand.New(rand.NewSource(4))
	for _, p := range randPoints(rng, 400, 2) {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	s := tree.Stats()
	if s.Observations != 400 {
		t.Errorf("Observations = %d", s.Observations)
	}
	if s.Height < 3 {
		t.Errorf("height %d suspiciously small for 400 points with L=6", s.Height)
	}
	if s.Leaves == 0 || s.AvgLeafOcc < 2 || s.AvgLeafOcc > 6 {
		t.Errorf("leaf occupancy out of bounds: %+v", s)
	}
	if s.AvgFanout < 2 || s.AvgFanout > 5 {
		t.Errorf("fanout out of bounds: %+v", s)
	}
}

func TestDuplicatePointsTree(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	for i := 0; i < 100; i++ {
		if err := tree.Insert([]float64{0.3, 0.3}); err != nil {
			t.Fatalf("duplicate insert %d: %v", i, err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	e, _ := tree.RootEntry()
	g := e.Gaussian()
	if math.IsNaN(g.Var[0]) || g.Var[0] <= 0 {
		t.Errorf("degenerate variance: %v", g.Var)
	}
}

// Entries hold exact subtree summaries even after heavy mutation — the
// foundation of Definition 1 (checked densely here, beyond Validate's
// spot use elsewhere).
func TestCFExactnessUnderChurn(t *testing.T) {
	cfg := smallConfig(4)
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := make([]float64, 4)
		for k := range p {
			// Clustered inserts to force deep, uneven structure.
			p[k] = math.Mod(rng.NormFloat64()*0.1+float64(i%7)*0.15, 1)
			if p[k] < 0 {
				p[k] += 1
			}
		}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
