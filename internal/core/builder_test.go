package core

import (
	"math"
	"testing"
)

func TestBuilderLeafValidation(t *testing.T) {
	b, err := NewBuilder(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Leaf(nil); err == nil {
		t.Errorf("empty leaf accepted")
	}
	tooMany := make([][]float64, 7) // MaxLeaf = 6
	for i := range tooMany {
		tooMany[i] = []float64{0, 0}
	}
	if _, err := b.Leaf(tooMany); err == nil {
		t.Errorf("oversize leaf accepted")
	}
	if _, err := b.Leaf([][]float64{{1}}); err == nil {
		t.Errorf("wrong-dim observation accepted")
	}
	if _, err := b.Leaf([][]float64{{math.NaN(), 0}}); err == nil {
		t.Errorf("NaN observation accepted")
	}
}

func TestBuilderLeafCopies(t *testing.T) {
	b, _ := NewBuilder(smallConfig(2))
	p := []float64{1, 2}
	leaf, err := b.Leaf([][]float64{p})
	if err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	if leaf.Points()[0][0] != 1 {
		t.Errorf("builder aliases caller's data")
	}
}

func TestBuilderInnerValidation(t *testing.T) {
	b, _ := NewBuilder(smallConfig(2))
	if _, err := b.Inner(nil); err == nil {
		t.Errorf("inner without children accepted")
	}
	leaves := make([]*Node, 6) // MaxFanout = 5
	for i := range leaves {
		l, err := b.Leaf([][]float64{{float64(i), 0}, {float64(i), 1}})
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = l
	}
	if _, err := b.Inner(leaves); err == nil {
		t.Errorf("oversize inner accepted")
	}
	inner, err := b.Inner(leaves[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.Entries()) != 3 {
		t.Fatalf("inner entries = %d", len(inner.Entries()))
	}
	// Entries summarise the children exactly.
	e := inner.Entries()[0]
	if e.CF.N != 2 {
		t.Errorf("entry CF.N = %v", e.CF.N)
	}
	if !e.Rect.ContainsPoint([]float64{0, 0}) || !e.Rect.ContainsPoint([]float64{0, 1}) {
		t.Errorf("entry MBR misses child points")
	}
}

func TestBuilderFinishBalanceCheck(t *testing.T) {
	b, _ := NewBuilder(smallConfig(2))
	l1, _ := b.Leaf([][]float64{{0, 0}, {0, 1}})
	l2, _ := b.Leaf([][]float64{{1, 0}, {1, 1}})
	inner, _ := b.Inner([]*Node{l1, l2})
	l3, _ := b.Leaf([][]float64{{2, 0}, {2, 1}})
	// root over an inner and a leaf → unbalanced.
	root, err := b.Inner([]*Node{inner, l3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(root, true); err == nil {
		t.Errorf("unbalanced tree declared balanced was accepted")
	}
	tree, err := b.Finish(root, false)
	if err != nil {
		t.Fatalf("unbalanced finish: %v", err)
	}
	if tree.Len() != 6 {
		t.Errorf("Len = %d", tree.Len())
	}
	if tree.Balanced() {
		t.Errorf("tree should report unbalanced")
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("unbalanced tree invalid: %v", err)
	}
	if _, err := b.Finish(nil, false); err == nil {
		t.Errorf("nil root accepted")
	}
}

func TestBuiltTreeQueriesWork(t *testing.T) {
	b, _ := NewBuilder(smallConfig(2))
	var leaves []*Node
	for i := 0; i < 4; i++ {
		l, err := b.Leaf([][]float64{
			{float64(i) * 0.2, 0.1}, {float64(i) * 0.2, 0.2}, {float64(i) * 0.2, 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, l)
	}
	root, err := b.Inner(leaves)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := b.Finish(root, true)
	if err != nil {
		t.Fatal(err)
	}
	cur := tree.NewCursor([]float64{0.2, 0.2}, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	if got := cur.LogDensity(); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("density %v", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
