package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"bayestree/internal/kernels"
	"bayestree/internal/mbr"
	"bayestree/internal/stats"
)

// Node is a Bayes tree node. Leaves store the observations themselves
// (d-dimensional kernel centres); inner nodes store entries, each
// summarising one child subtree per Definition 1.
type Node struct {
	leaf    bool
	entries []Entry     // inner nodes
	points  [][]float64 // leaf nodes
	// weights are the per-observation decayed weights of a leaf, parallel
	// to points. nil means every observation has weight 1 exactly — the
	// only state an undecayed tree ever has, keeping the λ = 0 paths
	// digit-identical. The vector is materialised lazily by the first
	// non-unit insert weight or maintenance sweep (see decay.go).
	weights []float64
}

// Entry is a Bayes tree node entry (Definition 1): the minimum bounding
// rectangle of the subtree's objects, a pointer to the subtree and the
// cluster feature (n, LS, SS) from which the subtree's Gaussian N(μ, σ²)
// is derived via μ = LS/n, σ² = SS/n − (LS/n)².
type Entry struct {
	Rect  mbr.Rect
	CF    stats.CF
	Child *Node

	// frozen caches the precomputed form of CF's Gaussian. summarize
	// populates it eagerly whenever an entry is (re)built, so concurrent
	// queries only ever read it; it moves with the entry value and stays
	// valid as long as CF is unchanged (entries whose CF changes are
	// always rebuilt through summarize).
	frozen *stats.FrozenGaussian
}

// Gaussian returns the mixture component this entry contributes to a
// probability density query.
func (e *Entry) Gaussian() stats.Gaussian { return e.CF.Gaussian() }

// Frozen returns the cached precomputed Gaussian of the entry's cluster
// feature. Entries built by the tree always carry the cache; for
// hand-built entries it is derived on the fly (without storing, so
// concurrent readers stay race-free).
func (e *Entry) Frozen() *stats.FrozenGaussian {
	if e.frozen != nil {
		return e.frozen
	}
	f := stats.Freeze(&e.CF)
	return &f
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf }

// Entries returns the entries of an inner node (nil for leaves). The
// returned slice must not be modified.
func (n *Node) Entries() []Entry { return n.entries }

// Points returns the observations of a leaf node (nil for inner nodes).
// The returned slice must not be modified.
func (n *Node) Points() [][]float64 { return n.points }

// Weights returns the per-observation decayed weights of a leaf,
// parallel to Points; nil means every observation weighs 1. The
// returned slice must not be modified.
func (n *Node) Weights() []float64 { return n.weights }

// Tree is a Bayes tree over one data population (the classifier builds one
// per class, Section 2.2; MultiTree is the single-tree variant). It is not
// safe for concurrent mutation.
type Tree struct {
	cfg  Config
	root *Node
	size int
	// balanced is false for trees built by loaders that give up balance
	// (the paper's EMTopDown "may result in an unbalanced tree").
	balanced bool
	// queryState caches the per-tree constants every cursor needs (root
	// summary, total count, bandwidths). It is built on first use, shared
	// by concurrent read-only queries and invalidated by Insert,
	// AdvanceEpoch and DecaySweep.
	queryState atomic.Pointer[Cursorable]
	// decay configures exponential forgetting (zero value = off); epoch
	// is the current logical time and refEpoch the epoch the stored
	// weights are valued at. See decay.go.
	decay    DecayOptions
	epoch    int64
	refEpoch int64
	// soa publishes the structure-of-arrays mirror for vectorized
	// descent (nil = unpublished; cursors fall back to the pointer
	// path); soaTrack/soaStale are the refresh bookkeeping. See soa.go.
	soa      atomic.Pointer[treeSoA]
	soaTrack bool
	soaStale bool
}

// NewTree returns an empty Bayes tree.
func NewTree(cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tree{cfg: cfg, root: &Node{leaf: true}, balanced: true}, nil
}

// Config returns the tree's structural parameters.
func (t *Tree) Config() Config { return t.cfg }

// Len returns the number of stored observations.
func (t *Tree) Len() int { return t.size }

// Root returns the root node for read-only traversal.
func (t *Tree) Root() *Node { return t.root }

// Balanced reports whether the construction guaranteed equal leaf depths.
func (t *Tree) Balanced() bool { return t.balanced }

// RootEntry returns a synthetic entry summarising the entire tree — the
// starting frontier of every anytime query (the level-0 model with one
// Gaussian). It returns false for an empty tree.
func (t *Tree) RootEntry() (Entry, bool) {
	if t.size == 0 {
		return Entry{}, false
	}
	return t.summarize(t.root), true
}

// Bandwidth returns the per-dimension Silverman bandwidths for the leaf
// kernels, derived from the whole tree's cluster feature (the paper's
// data-independent bandwidth, Section 2.1).
func (t *Tree) Bandwidth() []float64 {
	e, ok := t.RootEntry()
	if !ok {
		return make([]float64, t.cfg.Dim)
	}
	return t.bandwidthFrom(e)
}

// bandwidthFrom derives the Silverman bandwidths from an already computed
// root summary, sparing a second tree walk.
func (t *Tree) bandwidthFrom(e Entry) []float64 {
	variance := e.CF.Variance()
	sigma := make([]float64, len(variance))
	for i, v := range variance {
		sigma[i] = math.Sqrt(v)
	}
	return stats.SilvermanBandwidth(sigma, t.size, t.cfg.Dim)
}

// cursorable returns the cached query-time constants, building them on
// first use after a mutation. A benign publication race (two goroutines
// building the same state) is possible but both build identical values
// from the same immutable tree.
func (t *Tree) cursorable() *Cursorable {
	if ct := t.queryState.Load(); ct != nil {
		return ct
	}
	root, ok := t.RootEntry()
	if !ok {
		return nil
	}
	bw := t.bandwidthFrom(root)
	ct := &Cursorable{
		cfg:  t.cfg,
		root: root,
		n:    root.CF.N,
		bw:   bw,
		kern: kernels.FreezeKernel(t.cfg.Kernel, bw),
	}
	ct.sweep, _ = ct.kern.(kernels.Sweeper)
	t.queryState.Store(ct)
	return ct
}

// summarize computes the entry describing node n (rect + CF) from its
// contents.
func (t *Tree) summarize(n *Node) Entry {
	rect := mbr.Empty(t.cfg.Dim)
	cf := stats.NewCF(t.cfg.Dim)
	if n.leaf {
		if n.weights == nil {
			for _, p := range n.points {
				rect.ExtendPoint(p)
				cf.Add(p)
			}
		} else {
			for i, p := range n.points {
				rect.ExtendPoint(p)
				cf.AddWeighted(p, n.weights[i])
			}
		}
	} else {
		for i := range n.entries {
			rect.Extend(n.entries[i].Rect)
			cf.Merge(n.entries[i].CF)
		}
	}
	f := stats.Freeze(&cf)
	return Entry{Rect: rect, CF: cf, Child: n, frozen: &f}
}

// Insert adds one observation using the R*-style incremental insertion —
// the paper's "Iterativ" baseline. The descent chooses subtrees by overlap
// and area enlargement of the MBRs; cluster features along the path absorb
// the new observation; overflows trigger forced reinsertion (once per
// level, if configured) and topological splits.
func (t *Tree) Insert(x []float64) error {
	if len(x) != t.cfg.Dim {
		return fmt.Errorf("core: point dim %d != tree dim %d", len(x), t.cfg.Dim)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: non-finite coordinate %d", i)
		}
	}
	p := make([]float64, len(x))
	copy(p, x)
	reinserted := make(map[int]bool)
	t.insertPointW(p, t.insertWeight(), reinserted)
	t.size++
	t.queryState.Store(nil) // cached root summary and bandwidths are stale
	t.soaInvalidate()
	return nil
}

// height returns the number of levels below (and including) n.
func height(n *Node) int {
	if n.leaf {
		return 1
	}
	best := 0
	for i := range n.entries {
		if h := height(n.entries[i].Child); h > best {
			best = h
		}
	}
	return best + 1
}

// insertPointW inserts p at leaf level with the given weight (1 for
// undecayed trees; the amplified insert weight or a reinserted
// observation's decayed weight otherwise).
func (t *Tree) insertPointW(p []float64, w float64, reinserted map[int]bool) {
	path := t.choosePath(p)
	leaf := path[len(path)-1]
	leaf.appendPoint(p, w)
	t.fixOverflow(path, reinserted)
}

// appendPoint adds one observation with the given weight, materialising
// the per-point weight vector only when a non-unit weight first appears
// so undecayed leaves stay weight-free.
func (n *Node) appendPoint(p []float64, w float64) {
	n.points = append(n.points, p)
	if n.weights != nil {
		n.weights = append(n.weights, w)
		return
	}
	if w != 1 {
		n.weights = make([]float64, len(n.points))
		for i := range n.weights {
			n.weights[i] = 1
		}
		n.weights[len(n.points)-1] = w
	}
}

// insertSubtree reinserts a whole subtree entry at the level where nodes
// have the given height (forced reinsertion of inner entries). If the
// chosen branch is too short to host the subtree — possible in unbalanced
// trees — the subtree's observations are reinserted individually instead,
// so no data is ever lost.
func (t *Tree) insertSubtree(e Entry, childHeight int, reinserted map[int]bool) {
	rootHeight := height(t.root)
	if childHeight+1 > rootHeight {
		// Cannot happen during normal reinsertion; guard anyway.
		childHeight = rootHeight - 1
	}
	path := []*Node{t.root}
	n := t.root
	for !n.leaf && height(n) > childHeight+1 {
		idx := t.chooseSubtreeRect(n, e.Rect)
		n = n.entries[idx].Child
		path = append(path, n)
	}
	if n.leaf {
		// Branch too short for the subtree: dissolve it into points.
		var points [][]float64
		var ws []float64
		collectWeightedPoints(e.Child, &points, &ws)
		for k, p := range points {
			t.insertPointW(p, ws[k], reinserted)
		}
		return
	}
	n.entries = append(n.entries, e)
	t.fixOverflow(path, reinserted)
}

func collectPoints(n *Node, out *[][]float64) {
	if n.leaf {
		*out = append(*out, n.points...)
		return
	}
	for i := range n.entries {
		collectPoints(n.entries[i].Child, out)
	}
}

// choosePath descends to the leaf best suited for p, returning the path
// from root to leaf.
func (t *Tree) choosePath(p []float64) []*Node {
	rect := mbr.Point(p)
	path := []*Node{t.root}
	n := t.root
	for !n.leaf {
		idx := t.chooseSubtreeRect(n, rect)
		n = n.entries[idx].Child
		path = append(path, n)
	}
	return path
}

// chooseSubtreeRect applies the R* subtree choice: minimal overlap
// enlargement when the children are leaves, minimal area enlargement
// otherwise.
func (t *Tree) chooseSubtreeRect(n *Node, r mbr.Rect) int {
	best := 0
	childrenAreLeaves := len(n.entries) > 0 && n.entries[0].Child.leaf
	if childrenAreLeaves {
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for i := range n.entries {
			u := mbr.Union(n.entries[i].Rect, r)
			var overlap float64
			for j := range n.entries {
				if j == i {
					continue
				}
				overlap += mbr.OverlapArea(u, n.entries[j].Rect) -
					mbr.OverlapArea(n.entries[i].Rect, n.entries[j].Rect)
			}
			enl := u.Area() - n.entries[i].Rect.Area()
			area := n.entries[i].Rect.Area()
			if overlap < bestOverlap ||
				(overlap == bestOverlap && enl < bestEnl) ||
				(overlap == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, overlap, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i := range n.entries {
		enl := mbr.Enlargement(n.entries[i].Rect, r)
		area := n.entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// fixOverflow repairs the path bottom-up after an insertion: refreshes the
// summaries of all ancestors and resolves overflows by forced reinsertion
// or splitting.
func (t *Tree) fixOverflow(path []*Node, reinserted map[int]bool) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		over := false
		if n.leaf {
			over = len(n.points) > t.cfg.MaxLeaf
		} else {
			over = len(n.entries) > t.cfg.MaxFanout
		}
		if !over {
			// Refresh every ancestor entry along this prefix and stop:
			// levels above gained no entries, so they cannot overflow, and
			// refreshPath already rebuilt (and refroze) their summaries.
			// Continuing would re-summarize the same entries once per
			// remaining level — O(depth²) wasted work per insert.
			t.refreshPath(path[:i+1])
			return
		}
		level := len(path) - 1 - i // 0 = leaf level counted from bottom of this path
		// Forced reinsertion of inner entries assumes one height per
		// level; in unbalanced trees (EMTopDown) only leaf-level point
		// reinsertion is well defined, so inner overflows there split.
		canReinsert := n.leaf || t.balanced
		if i > 0 && t.cfg.ForcedReinsert && canReinsert && !reinserted[level] {
			reinserted[level] = true
			if n.leaf {
				removed, removedW := t.pickReinsertPoints(n)
				t.refreshPath(path[:i+1])
				for k, p := range removed {
					w := 1.0
					if removedW != nil {
						w = removedW[k]
					}
					t.insertPointW(p, w, reinserted)
				}
			} else {
				removed := t.pickReinsertEntries(n)
				t.refreshPath(path[:i+1])
				h := height(n) - 1
				for _, e := range removed {
					t.insertSubtree(e, h, reinserted)
				}
			}
			return
		}
		left, right := t.splitNode(n)
		if i == 0 {
			newRoot := &Node{entries: []Entry{t.summarize(left), t.summarize(right)}}
			t.root = newRoot
			return
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].Child == n {
				parent.entries[j] = t.summarize(left)
				break
			}
		}
		parent.entries = append(parent.entries, t.summarize(right))
	}
}

// refreshPath recomputes the parent entries along the path (root first).
func (t *Tree) refreshPath(path []*Node) {
	for i := len(path) - 1; i >= 1; i-- {
		child := path[i]
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].Child == child {
				parent.entries[j] = t.summarize(child)
				break
			}
		}
	}
}

// pickReinsertPoints removes the points farthest from the leaf
// centroid, returning them with their weights (nil weights when the
// leaf is unweighted).
func (t *Tree) pickReinsertPoints(n *Node) ([][]float64, []float64) {
	p := int(0.3 * float64(t.cfg.MaxLeaf))
	if t.cfg.ReinsertFraction > 0 {
		p = int(t.cfg.ReinsertFraction * float64(t.cfg.MaxLeaf))
	}
	if p < 1 {
		p = 1
	}
	sum := t.summarize(n)
	center := sum.CF.Mean()
	idx := sortedByDistDesc(len(n.points), func(i int) []float64 { return n.points[i] }, center)
	removed := make([][]float64, 0, p)
	keep := make([][]float64, 0, len(n.points)-p)
	var removedW, keepW []float64
	if n.weights != nil {
		removedW = make([]float64, 0, p)
		keepW = make([]float64, 0, len(n.points)-p)
	}
	for rank, i := range idx {
		if rank < p {
			removed = append(removed, n.points[i])
			if n.weights != nil {
				removedW = append(removedW, n.weights[i])
			}
		} else {
			keep = append(keep, n.points[i])
			if n.weights != nil {
				keepW = append(keepW, n.weights[i])
			}
		}
	}
	n.points = keep
	n.weights = keepW
	return removed, removedW
}

// pickReinsertEntries removes the entries whose centres are farthest from
// the node centre.
func (t *Tree) pickReinsertEntries(n *Node) []Entry {
	p := t.cfg.reinsertCount()
	center := t.summarize(n).Rect.Center()
	idx := sortedByDistDesc(len(n.entries), func(i int) []float64 { return n.entries[i].Rect.Center() }, center)
	removed := make([]Entry, 0, p)
	keep := make([]Entry, 0, len(n.entries)-p)
	for rank, i := range idx {
		if rank < p {
			removed = append(removed, n.entries[i])
		} else {
			keep = append(keep, n.entries[i])
		}
	}
	n.entries = keep
	return removed
}

// sortedByDistDesc returns indices 0..n-1 sorted by decreasing squared
// distance of at(i) from center.
func sortedByDistDesc(n int, at func(int) []float64, center []float64) []int {
	type de struct {
		d float64
		i int
	}
	ds := make([]de, n)
	for i := 0; i < n; i++ {
		x := at(i)
		var s float64
		for k := range center {
			dd := x[k] - center[k]
			s += dd * dd
		}
		ds[i] = de{d: s, i: i}
	}
	// insertion-free sort via sort.Slice equivalent without importing sort
	// twice; keep it simple:
	for a := 1; a < len(ds); a++ {
		for b := a; b > 0 && ds[b].d > ds[b-1].d; b-- {
			ds[b], ds[b-1] = ds[b-1], ds[b]
		}
	}
	out := make([]int, n)
	for i, e := range ds {
		out[i] = e.i
	}
	return out
}

// splitNode performs the R* topological split on either node kind.
// Weighted leaves split by index so the weight vector follows its
// points; unweighted leaves keep the direct (λ = 0 digit-identical)
// path.
func (t *Tree) splitNode(n *Node) (left, right *Node) {
	if n.leaf {
		if n.weights == nil {
			l, r := splitPoints(n.points, t.cfg.Dim, t.cfg.MinLeaf)
			return &Node{leaf: true, points: l}, &Node{leaf: true, points: r}
		}
		li, ri := splitIndices(len(n.points), func(i int) mbr.Rect { return mbr.Point(n.points[i]) }, t.cfg.Dim, t.cfg.MinLeaf)
		return weightedLeaf(n.points, n.weights, li), weightedLeaf(n.points, n.weights, ri)
	}
	l, r := splitEntries(n.entries, t.cfg.Dim, t.cfg.MinFanout)
	return &Node{entries: l}, &Node{entries: r}
}
