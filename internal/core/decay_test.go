package core

import (
	"math"
	"math/rand"
	"testing"
)

func decayTestConfig(dim int) Config {
	return Config{
		Dim: dim, MinFanout: 2, MaxFanout: 4, MinLeaf: 2, MaxLeaf: 4,
		Kernel: DefaultConfig(dim).Kernel,
	}
}

func TestDecayOptionsValidate(t *testing.T) {
	bad := []DecayOptions{
		{Lambda: -1},
		{Lambda: math.NaN()},
		{Lambda: math.Inf(1)},
		{Lambda: 1, MinWeight: -0.1},
		{Lambda: 1, MinWeight: 1},
		{Lambda: 1, MinWeight: math.NaN()},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("DecayOptions %+v: want error", o)
		}
	}
	good := []DecayOptions{{}, {Lambda: 0.5}, {Lambda: 2, MinWeight: 0.25}}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("DecayOptions %+v: unexpected error %v", o, err)
		}
	}
}

// With λ = 0 the decay surface must be inert: epochs do not advance,
// sweeps do nothing, weights stay nil and queries are untouched.
func TestDecayDisabledIsInert(t *testing.T) {
	tree, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	x := []float64{0.4, 0.6}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	before := cur.LogDensity()
	cur.Close()

	tree.AdvanceEpoch(3)
	if tree.Epoch() != 0 {
		t.Fatalf("epoch advanced with decay disabled: %d", tree.Epoch())
	}
	st := tree.DecaySweep()
	if st != (SweepStats{}) {
		t.Fatalf("sweep did work with decay disabled: %+v", st)
	}
	if w := tree.Weight(); w != float64(tree.Len()) {
		t.Fatalf("Weight %v != Len %d with decay disabled", w, tree.Len())
	}
	cur = tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	after := cur.LogDensity()
	cur.Close()
	if before != after {
		t.Fatalf("λ=0 density changed: %v -> %v", before, after)
	}
}

// Advancing epochs halves the effective mass per epoch at λ = 1, both
// before the sweep (folded factor) and after it (rescaled storage), and
// the sweep itself must not change any query answer — renormalisation
// is invisible to densities.
func TestDecayWeightAndSweepInvariance(t *testing.T) {
	tree, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDecay(DecayOptions{Lambda: 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	w0 := tree.Weight()
	if math.Abs(w0-60) > 1e-9 {
		t.Fatalf("fresh weight %v, want 60", w0)
	}
	tree.AdvanceEpoch(1)
	if w := tree.Weight(); math.Abs(w-30) > 1e-9 {
		t.Fatalf("weight after one epoch %v, want 30", w)
	}

	x := []float64{0.3, 0.7}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	before := cur.LogDensity()
	cur.Close()

	tree.DecaySweep()
	if w := tree.Weight(); math.Abs(w-30) > 1e-9 {
		t.Fatalf("weight after sweep %v, want 30", w)
	}
	cur = tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	after := cur.LogDensity()
	cur.Close()
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("sweep changed density: %v -> %v", before, after)
	}

	// An insert after two more epochs weighs 4x the swept mass scale.
	tree.AdvanceEpoch(2)
	if err := tree.Insert([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	// Effective: 60 points at 30/4 total plus the new point at 1.
	want := 30.0/4 + 1
	if w := tree.Weight(); math.Abs(w-want) > 1e-9 {
		t.Fatalf("weight after amplified insert %v, want %v", w, want)
	}
}

// A full anytime refinement of a decayed tree must equal the weighted
// kernel density computed directly from the stored points and weights.
func TestDecayedDensityMatchesDirectComputation(t *testing.T) {
	tree, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDecay(DecayOptions{Lambda: 1}); err != nil {
		t.Fatal(err)
	}
	old := [][]float64{{0.1, 0.2}, {0.15, 0.25}, {0.2, 0.1}}
	for _, p := range old {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	tree.AdvanceEpoch(2) // old points now weigh 1/4 of new ones
	fresh := [][]float64{{0.8, 0.9}, {0.85, 0.8}}
	for _, p := range fresh {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	x := []float64{0.5, 0.5}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	got := cur.LogDensity()
	cur.Close()

	// Direct: weights 1,1,1,4,4 on the stored scale; density is
	// Σ w_i K(x, p_i) / Σ w_i with the tree's own frozen kernel.
	ct := tree.cursorable()
	var num, den float64
	add := func(p []float64, w float64) {
		num += w * math.Exp(ct.kern.LogDensityObs(x, p, nil))
		den += w
	}
	for _, p := range old {
		add(p, 1)
	}
	for _, p := range fresh {
		add(p, 4)
	}
	want := math.Log(num / den)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("decayed density %v, want %v", got, want)
	}
}

// Sweeping with a pruning floor forgets faded observations: old mass is
// dropped, fresh mass survives, and the tree stays structurally sound
// for further inserts and queries.
func TestDecaySweepPrunesOldMass(t *testing.T) {
	tree, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDecay(DecayOptions{Lambda: 1, MinWeight: 0.1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if err := tree.Insert([]float64{0.2 + 0.1*rng.Float64(), 0.2 + 0.1*rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	tree.AdvanceEpoch(5) // factor 1/32 < 0.1: everything old must go
	for i := 0; i < 30; i++ {
		if err := tree.Insert([]float64{0.7 + 0.1*rng.Float64(), 0.7 + 0.1*rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	st := tree.DecaySweep()
	if st.PointsPruned != 50 {
		t.Fatalf("pruned %d points, want 50 (stats %+v)", st.PointsPruned, st)
	}
	if tree.Len() != 30 {
		t.Fatalf("size after sweep %d, want 30", tree.Len())
	}
	if w := tree.Weight(); math.Abs(w-30) > 1e-9 {
		t.Fatalf("weight after sweep %v, want 30", w)
	}
	// The tree still inserts and answers queries.
	if err := tree.Insert([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	cur := tree.NewCursor([]float64{0.75, 0.75}, DescentGlobal, PriorityProbabilistic)
	if cur == nil {
		t.Fatal("nil cursor on live tree")
	}
	cur.RefineAll()
	if d := cur.LogDensity(); math.IsInf(d, -1) || math.IsNaN(d) {
		t.Fatalf("degenerate density %v after pruning sweep", d)
	}
	cur.Close()
}

// A decayed tree can fade away entirely; the empty tree must keep
// working (no cursor, zero weight) and accept new observations.
func TestDecaySweepToEmptyAndRecover(t *testing.T) {
	tree, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDecay(DecayOptions{Lambda: 1, MinWeight: 0.2}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		if err := tree.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	tree.AdvanceEpoch(10)
	tree.DecaySweep()
	if tree.Len() != 0 {
		t.Fatalf("size %d after total decay, want 0", tree.Len())
	}
	if w := tree.Weight(); w != 0 {
		t.Fatalf("weight %v after total decay, want 0", w)
	}
	if cur := tree.NewCursor([]float64{0.5, 0.5}, DescentGlobal, PriorityProbabilistic); cur != nil {
		t.Fatal("cursor on empty tree should be nil")
	}
	if err := tree.Insert([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1 {
		t.Fatalf("size %d after recovery insert, want 1", tree.Len())
	}
}

// Under a continuous drifting load with periodic maintenance the tree's
// size (and so its node count) must stay bounded instead of growing
// with the stream.
func TestDecayBoundsTreeSize(t *testing.T) {
	tree, err := NewMultiTree(decayTestConfig(2), []int{0, 1}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.EnableDecay(DecayOptions{Lambda: 1, MinWeight: 0.05}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	maxSize, maxNodes := 0, 0
	const rounds, perRound = 25, 200
	for r := 0; r < rounds; r++ {
		cx := 0.1 + 0.8*float64(r)/rounds
		for i := 0; i < perRound; i++ {
			x := []float64{cx + 0.05*rng.NormFloat64(), 0.5 + 0.05*rng.NormFloat64()}
			if err := tree.Insert(x, i%2); err != nil {
				t.Fatal(err)
			}
		}
		tree.AdvanceEpoch(1)
		tree.DecaySweep()
		if err := tree.Validate(); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if tree.Len() > maxSize {
			maxSize = tree.Len()
		}
		if n := tree.CountNodes(); n > maxNodes {
			maxNodes = n
		}
	}
	// 2^(-λ) geometric fading with per-round inserts converges to
	// roughly 2x one round's volume; allow generous slack but far less
	// than the 5000 inserted.
	if maxSize > 4*perRound {
		t.Fatalf("tree size not bounded: peak %d for %d inserts/round", maxSize, perRound)
	}
	if tree.Len() == 0 {
		t.Fatal("tree decayed to empty under steady load")
	}
	t.Logf("peak size %d, peak nodes %d over %d rounds of %d inserts", maxSize, maxNodes, rounds, perRound)
}

// A decaying classifier must track an abrupt concept swap that leaves a
// non-decaying (but still learning) classifier split between the two
// contradictory concepts.
func TestClassifierDecayTracksConceptSwap(t *testing.T) {
	build := func(decay bool) *Classifier {
		trees := make([]*Tree, 2)
		for c := range trees {
			tr, err := NewTree(decayTestConfig(2))
			if err != nil {
				t.Fatal(err)
			}
			if decay {
				if err := tr.EnableDecay(DecayOptions{Lambda: 1, MinWeight: 0.05}); err != nil {
					t.Fatal(err)
				}
			}
			trees[c] = tr
		}
		rng := rand.New(rand.NewSource(6))
		// Concept A: class 0 lives bottom-left, class 1 top-right.
		centers := [][]float64{{0.25, 0.25}, {0.75, 0.75}}
		for i := 0; i < 200; i++ {
			c := i % 2
			x := []float64{centers[c][0] + 0.05*rng.NormFloat64(), centers[c][1] + 0.05*rng.NormFloat64()}
			if err := trees[c].Insert(x); err != nil {
				t.Fatal(err)
			}
		}
		clf, err := NewClassifier([]int{0, 1}, trees, ClassifierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return clf
	}
	run := func(clf *Classifier, decay bool) float64 {
		rng := rand.New(rand.NewSource(7))
		// Concept B swaps the regions: class 0 now lives top-right.
		centers := [][]float64{{0.75, 0.75}, {0.25, 0.25}}
		for step := 0; step < 8; step++ {
			for i := 0; i < 50; i++ {
				c := i % 2
				x := []float64{centers[c][0] + 0.05*rng.NormFloat64(), centers[c][1] + 0.05*rng.NormFloat64()}
				if err := clf.Learn(x, c); err != nil {
					t.Fatal(err)
				}
			}
			if decay {
				clf.AdvanceDecay()
			}
		}
		correct := 0
		const probes = 200
		for i := 0; i < probes; i++ {
			c := i % 2
			x := []float64{centers[c][0] + 0.05*rng.NormFloat64(), centers[c][1] + 0.05*rng.NormFloat64()}
			if clf.Classify(x, 40) == c {
				correct++
			}
		}
		return float64(correct) / probes
	}
	accDecay := run(build(true), true)
	accNone := run(build(false), false)
	if accDecay < 0.95 {
		t.Errorf("decaying classifier accuracy %.3f after concept swap, want ≥ 0.95", accDecay)
	}
	if accDecay <= accNone {
		t.Errorf("decay did not help: decayed %.3f vs append-only %.3f", accDecay, accNone)
	}
	t.Logf("post-swap accuracy: decay %.3f, append-only %.3f", accDecay, accNone)
}

// Close must be idempotent: a second Close (for example by a caller
// whose helper already closed the query) must not return the same
// object to the pool twice — two later queries would then share one
// instance.
func TestQueryCloseIdempotent(t *testing.T) {
	tr, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		if err := tr.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
		if err := tr2.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	clf, err := NewClassifier([]int{0, 1}, []*Tree{tr, tr2}, ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, 0.5}
	q := clf.NewQuery(x)
	q.Step()
	q.Close()
	q.Close() // must be a no-op, not a second pool Put
	a := clf.NewQuery(x)
	b := clf.NewQuery(x)
	if a == b {
		t.Fatal("double Close returned one query to the pool twice")
	}
	a.Close()
	b.Close()

	var nilQ *Query
	nilQ.Close() // nil receiver must not panic
}

// Cursor.Close has the same idempotency contract against the package
// cursor pool.
func TestCursorCloseIdempotent(t *testing.T) {
	tr, err := NewTree(decayTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		if err := tr.Insert([]float64{rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	x := []float64{0.5, 0.5}
	cur := tr.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.Refine()
	cur.Close()
	cur.Close()
	a := tr.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	b := tr.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	if a == b {
		t.Fatal("double Close returned one cursor to the pool twice")
	}
	a.Close()
	b.Close()

	var nilC *Cursor
	nilC.Close() // nil receiver must not panic
}
