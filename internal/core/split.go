package core

import (
	"math"
	"sort"

	"bayestree/internal/mbr"
)

// splitItems performs the R* topological split on any slice of items with
// rectangles: the split axis minimises the summed margins over all legal
// distributions, the split index minimises overlap (area breaks ties).
// Both the per-class MultiTree and the per-class forest reuse it, as do
// leaf splits (whose rectangles are degenerate points).
func splitItems[T any](items []T, rectOf func(T) mbr.Rect, dim, minFill int) (left, right []T) {
	xs := append([]T(nil), items...)
	m := minFill
	total := len(xs)

	bestAxis, bestLower := 0, true
	bestMargin := math.Inf(1)
	for axis := 0; axis < dim; axis++ {
		for _, lower := range []bool{true, false} {
			sortByAxis(xs, rectOf, axis, lower)
			var margin float64
			for k := m; k <= total-m; k++ {
				margin += groupRect(xs[:k], rectOf, dim).Margin() + groupRect(xs[k:], rectOf, dim).Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis, bestLower = margin, axis, lower
			}
		}
	}
	sortByAxis(xs, rectOf, bestAxis, bestLower)
	bestK := m
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for k := m; k <= total-m; k++ {
		lr := groupRect(xs[:k], rectOf, dim)
		rr := groupRect(xs[k:], rectOf, dim)
		overlap := mbr.OverlapArea(lr, rr)
		area := lr.Area() + rr.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}
	left = append([]T(nil), xs[:bestK]...)
	right = append([]T(nil), xs[bestK:]...)
	return left, right
}

func sortByAxis[T any](xs []T, rectOf func(T) mbr.Rect, axis int, lower bool) {
	sort.SliceStable(xs, func(a, b int) bool {
		ra, rb := rectOf(xs[a]), rectOf(xs[b])
		if lower {
			if ra.Lo[axis] != rb.Lo[axis] {
				return ra.Lo[axis] < rb.Lo[axis]
			}
			return ra.Hi[axis] < rb.Hi[axis]
		}
		if ra.Hi[axis] != rb.Hi[axis] {
			return ra.Hi[axis] < rb.Hi[axis]
		}
		return ra.Lo[axis] < rb.Lo[axis]
	})
}

func groupRect[T any](xs []T, rectOf func(T) mbr.Rect, dim int) mbr.Rect {
	r := mbr.Empty(dim)
	for _, x := range xs {
		r.Extend(rectOf(x))
	}
	return r
}

// splitEntries splits inner-node entries.
func splitEntries(entries []Entry, dim, minFill int) (left, right []Entry) {
	return splitItems(entries, func(e Entry) mbr.Rect { return e.Rect }, dim, minFill)
}

// splitPoints splits leaf observations.
func splitPoints(points [][]float64, dim, minFill int) (left, right [][]float64) {
	return splitItems(points, mbr.Point, dim, minFill)
}

func entriesMBR(es []Entry, dim int) mbr.Rect {
	return groupRect(es, func(e Entry) mbr.Rect { return e.Rect }, dim)
}

func pointsMBR(ps [][]float64, dim int) mbr.Rect {
	r := mbr.Empty(dim)
	for _, p := range ps {
		r.ExtendPoint(p)
	}
	return r
}
