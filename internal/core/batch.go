package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements parallel batch classification. Anytime
// classification is read-only against the per-class trees, so a batch of
// objects can be classified by a pool of workers sharing one classifier;
// each worker reuses pooled queries and cursors, so steady-state batch
// serving allocates only the result slice.

// ClassifyBatch classifies every object of xs with the given node budget
// (negative = until fully refined) using a worker pool and returns the
// predictions in input order. workers ≤ 0 uses GOMAXPROCS. The classifier
// must not be mutated (Learn) while a batch is in flight.
func (c *Classifier) ClassifyBatch(xs [][]float64, budget, workers int) []int {
	preds := make([]int, len(xs))
	c.classifyInto(xs, func(int) int { return budget }, workers, preds)
	return preds
}

// ClassifyBatchBudgets classifies xs[i] with budgets[i] node reads — the
// batch form a stream server needs, where every object's budget is set by
// its own inter-arrival gap.
func (c *Classifier) ClassifyBatchBudgets(xs [][]float64, budgets []int, workers int) ([]int, error) {
	if len(budgets) != len(xs) {
		return nil, fmt.Errorf("core: %d budgets for %d objects", len(budgets), len(xs))
	}
	preds := make([]int, len(xs))
	c.classifyInto(xs, func(i int) int { return budgets[i] }, workers, preds)
	return preds, nil
}

// classifyInto distributes the batch over workers via an atomic work
// counter (cheap dynamic balancing: anytime queries with equal budgets
// still vary in cost with tree shape).
func (c *Classifier) classifyInto(xs [][]float64, budget func(int) int, workers int, preds []int) {
	workers = clampWorkers(workers, len(xs))
	if workers <= 1 {
		for i, x := range xs {
			preds[i] = c.Classify(x, budget(i))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(xs) {
					return
				}
				preds[i] = c.Classify(xs[i], budget(i))
			}
		}()
	}
	wg.Wait()
}

// ClassifyBatch classifies every object of xs against the multi-class tree
// with the given node budget using a worker pool, in input order. The tree
// must not be mutated while the batch is in flight.
func (t *MultiTree) ClassifyBatch(xs [][]float64, opts ClassifierOptions, budget, workers int) ([]int, error) {
	if t.size == 0 {
		return nil, fmt.Errorf("core: batch against empty multi tree")
	}
	preds := make([]int, len(xs))
	workers = clampWorkers(workers, len(xs))
	if workers <= 1 {
		for i, x := range xs {
			pred, err := t.Classify(x, opts, budget)
			if err != nil {
				return nil, err
			}
			preds[i] = pred
		}
		return preds, nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(xs) {
					return
				}
				pred, err := t.Classify(xs[i], opts, budget)
				if err != nil {
					errs[w] = err
					return
				}
				preds[i] = pred
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return preds, nil
}

func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
