package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements parallel batch classification. Anytime
// classification is read-only against the per-class trees, so a batch of
// objects can be classified by a pool of workers sharing one classifier;
// each worker reuses pooled queries and cursors, so steady-state batch
// serving allocates only the result slice.

// ClassifyBatch classifies every object of xs with the given node budget
// (negative = until fully refined) using a worker pool and returns the
// predictions in input order. workers ≤ 0 uses GOMAXPROCS. The classifier
// must not be mutated (Learn) while a batch is in flight.
func (c *Classifier) ClassifyBatch(xs [][]float64, budget, workers int) []int {
	preds := make([]int, len(xs))
	c.classifyInto(xs, func(int) int { return budget }, workers, preds)
	return preds
}

// ClassifyBatchBudgets classifies xs[i] with budgets[i] node reads — the
// batch form a stream server needs, where every object's budget is set by
// its own inter-arrival gap.
func (c *Classifier) ClassifyBatchBudgets(xs [][]float64, budgets []int, workers int) ([]int, error) {
	if len(budgets) != len(xs) {
		return nil, fmt.Errorf("core: %d budgets for %d objects", len(budgets), len(xs))
	}
	preds := make([]int, len(xs))
	c.classifyInto(xs, func(i int) int { return budgets[i] }, workers, preds)
	return preds, nil
}

// classifyInto distributes the batch over workers via an atomic work
// counter (cheap dynamic balancing: anytime queries with equal budgets
// still vary in cost with tree shape).
func (c *Classifier) classifyInto(xs [][]float64, budget func(int) int, workers int, preds []int) {
	workers = clampWorkers(workers, len(xs))
	if workers <= 1 {
		for i, x := range xs {
			preds[i] = c.Classify(x, budget(i))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(xs) {
					return
				}
				preds[i] = c.Classify(xs[i], budget(i))
			}
		}()
	}
	wg.Wait()
}

// ClassifyBatch classifies every object of xs against the multi-class tree
// with the given node budget using a worker pool, in input order. The tree
// must not be mutated while the batch is in flight. Built on ScoreBatch,
// so same-chunk queries share node visits through the SoA mirror when one
// is published.
func (t *MultiTree) ClassifyBatch(xs [][]float64, opts ClassifierOptions, budget, workers int) ([]int, error) {
	budgets := make([]int, len(xs))
	for i := range budgets {
		budgets[i] = budget
	}
	scores, _, err := t.ScoreBatch(xs, opts, budgets, workers)
	if err != nil {
		return nil, err
	}
	preds := make([]int, len(xs))
	for i, s := range scores {
		best := 0
		for c := 1; c < len(s); c++ {
			if s[c] > s[best] {
				best = c
			}
		}
		preds[i] = t.labels[best]
	}
	return preds, nil
}

// ScoreBatch runs one anytime classification per object and returns the
// per-class log posterior scores (Scores order) and nodes read for each,
// with budgets[i] node reads for xs[i] (negative = until exhausted).
//
// The batch is cut into contiguous chunks, one per worker, and each
// chunk's queries advance in lockstep rounds: every live query pops its
// own next frontier element (so its pop sequence — and therefore its
// scores — is bitwise identical to running it alone), and when the SoA
// mirror is active the round's visits are sorted by mirror node index
// before consumption, so queries landing on the same node block hit it
// back-to-back while it is cache-hot — the fused-sweep amortisation of
// the memory traffic that dominates solo descent. The tree must not be
// mutated while the batch is in flight.
func (t *MultiTree) ScoreBatch(xs [][]float64, opts ClassifierOptions, budgets []int, workers int) ([][]float64, []int, error) {
	if t.size == 0 {
		return nil, nil, fmt.Errorf("core: batch against empty multi tree")
	}
	if len(budgets) != len(xs) {
		return nil, nil, fmt.Errorf("core: %d budgets for %d objects", len(budgets), len(xs))
	}
	scores := make([][]float64, len(xs))
	reads := make([]int, len(xs))
	workers = clampWorkers(workers, len(xs))
	if workers <= 1 {
		if err := t.scoreChunk(xs, opts, budgets, scores, reads); err != nil {
			return nil, nil, err
		}
		return scores, reads, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = t.scoreChunk(xs[lo:hi], opts, budgets[lo:hi], scores[lo:hi], reads[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return scores, reads, nil
}

// batchVisit pairs a live query with the frontier element it popped this
// round.
type batchVisit struct {
	q  *MultiQuery
	el mElem
}

// scoreChunk advances one worker's chunk of queries in fused lockstep
// rounds (see ScoreBatch).
func (t *MultiTree) scoreChunk(xs [][]float64, opts ClassifierOptions, budgets []int, scores [][]float64, reads []int) error {
	live := make([]*MultiQuery, len(xs))
	for i, x := range xs {
		q, err := t.NewQuery(x, opts)
		if err != nil {
			for _, p := range live[:i] {
				p.Close()
			}
			return err
		}
		live[i] = q
	}
	finish := func(i int) {
		q := live[i]
		scores[i] = q.Scores()
		reads[i] = q.NodesRead()
		q.Close()
		live[i] = nil
	}
	round := make([]batchVisit, 0, len(xs))
	fused := false
	for {
		round = round[:0]
		remaining := false
		for i, q := range live {
			if q == nil {
				continue
			}
			if budgets[i] >= 0 && q.reads >= budgets[i] {
				finish(i)
				continue
			}
			el, ok := q.pop()
			if !ok {
				finish(i)
				continue
			}
			remaining = true
			if q.soa != nil {
				fused = true
			}
			round = append(round, batchVisit{q: q, el: el})
		}
		if !remaining {
			return nil
		}
		// Group same-node visits so a mirror block scored for one query is
		// still cache-hot for the next. Each query's own pop order is
		// untouched — only the interleaving across queries changes, which
		// cannot affect any single query's arithmetic.
		if fused && len(round) > 1 {
			sort.Slice(round, func(a, b int) bool { return round[a].el.node < round[b].el.node })
		}
		for _, v := range round {
			v.q.consume(v.el)
		}
	}
}

func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
