package core

import (
	"fmt"
	"math"
)

// Builder assembles Bayes trees bottom-up for the bulk-loading strategies
// of Section 3. Loaders create leaves from observation groups and stack
// inner nodes on top; Finish wraps the final node level into a Tree and
// verifies the structural invariants that the loader promised.
type Builder struct {
	cfg Config
}

// NewBuilder returns a builder for the given configuration.
func NewBuilder(cfg Config) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Builder{cfg: cfg}, nil
}

// Config returns the builder's tree configuration.
func (b *Builder) Config() Config { return b.cfg }

// Leaf creates a leaf node holding the given observations (copied).
func (b *Builder) Leaf(points [][]float64) (*Node, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("core: empty leaf")
	}
	if len(points) > b.cfg.MaxLeaf {
		return nil, fmt.Errorf("core: leaf with %d observations exceeds L=%d", len(points), b.cfg.MaxLeaf)
	}
	n := &Node{leaf: true, points: make([][]float64, len(points))}
	for i, p := range points {
		if len(p) != b.cfg.Dim {
			return nil, fmt.Errorf("core: observation dim %d != %d", len(p), b.cfg.Dim)
		}
		for k, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: non-finite coordinate %d", k)
			}
		}
		cp := make([]float64, len(p))
		copy(cp, p)
		n.points[i] = cp
	}
	return n, nil
}

// Inner creates an inner node over the given children, computing each
// child's entry (MBR + cluster feature).
func (b *Builder) Inner(children []*Node) (*Node, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("core: inner node without children")
	}
	if len(children) > b.cfg.MaxFanout {
		return nil, fmt.Errorf("core: inner node with %d children exceeds M=%d", len(children), b.cfg.MaxFanout)
	}
	t := &Tree{cfg: b.cfg} // for summarize
	n := &Node{entries: make([]Entry, len(children))}
	for i, c := range children {
		n.entries[i] = t.summarize(c)
	}
	return n, nil
}

// Finish wraps root into a Tree. balanced declares whether the loader
// guaranteed equal leaf depths; when true this is verified.
func (b *Builder) Finish(root *Node, balanced bool) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("core: nil root")
	}
	t := &Tree{cfg: b.cfg, root: root, balanced: balanced}
	t.size = countPoints(root)
	if balanced {
		if err := checkBalanced(root); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func countPoints(n *Node) int {
	if n.leaf {
		return len(n.points)
	}
	total := 0
	for i := range n.entries {
		total += countPoints(n.entries[i].Child)
	}
	return total
}

func checkBalanced(root *Node) error {
	depth := -1
	var walk func(n *Node, d int) error
	walk = func(n *Node, d int) error {
		if n.leaf {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("core: leaves at depths %d and %d in a tree declared balanced", depth, d)
			}
			return nil
		}
		for i := range n.entries {
			if err := walk(n.entries[i].Child, d+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0)
}

// Stats summarises a tree's shape.
type Stats struct {
	Observations int
	Nodes        int
	InnerNodes   int
	Leaves       int
	Height       int
	MinLeafDepth int
	AvgFanout    float64
	AvgLeafOcc   float64
}

// Stats walks the tree and reports shape statistics.
func (t *Tree) Stats() Stats {
	s := Stats{Observations: t.size, MinLeafDepth: math.MaxInt32}
	var fanoutSum, leafOccSum int
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		if depth+1 > s.Height {
			s.Height = depth + 1
		}
		if n.leaf {
			s.Leaves++
			leafOccSum += len(n.points)
			if depth < s.MinLeafDepth {
				s.MinLeafDepth = depth
			}
			return
		}
		s.InnerNodes++
		fanoutSum += len(n.entries)
		for i := range n.entries {
			walk(n.entries[i].Child, depth+1)
		}
	}
	walk(t.root, 0)
	if s.InnerNodes > 0 {
		s.AvgFanout = float64(fanoutSum) / float64(s.InnerNodes)
	}
	if s.Leaves > 0 {
		s.AvgLeafOcc = float64(leafOccSum) / float64(s.Leaves)
	}
	if s.MinLeafDepth == math.MaxInt32 {
		s.MinLeafDepth = 0
	}
	return s
}

// Validate checks the Bayes tree invariants: every inner entry's MBR
// exactly bounds and its cluster feature exactly sums its subtree (within
// floating-point tolerance), capacities are respected (root excepted), and
// — for trees built balanced — all leaves share one depth. It returns the
// first violation.
func (t *Tree) Validate() error {
	if t.size == 0 {
		return nil
	}
	const tol = 1e-6
	// Minimum-fill invariants are only promised by balanced construction;
	// the paper's EMTopDown loader explicitly trades them (and balance)
	// for better-shaped clusters.
	checkMin := t.balanced
	var walk func(n *Node, isRoot bool) error
	walk = func(n *Node, isRoot bool) error {
		if n.leaf {
			if checkMin && !isRoot && (len(n.points) < t.cfg.MinLeaf || len(n.points) > t.cfg.MaxLeaf) {
				return fmt.Errorf("core: leaf occupancy %d outside [%d,%d]", len(n.points), t.cfg.MinLeaf, t.cfg.MaxLeaf)
			}
			if len(n.points) > t.cfg.MaxLeaf {
				return fmt.Errorf("core: leaf occupancy %d exceeds %d", len(n.points), t.cfg.MaxLeaf)
			}
			return nil
		}
		if checkMin && !isRoot && (len(n.entries) < t.cfg.MinFanout || len(n.entries) > t.cfg.MaxFanout) {
			return fmt.Errorf("core: fanout %d outside [%d,%d]", len(n.entries), t.cfg.MinFanout, t.cfg.MaxFanout)
		}
		if len(n.entries) > t.cfg.MaxFanout {
			return fmt.Errorf("core: fanout %d exceeds %d", len(n.entries), t.cfg.MaxFanout)
		}
		if isRoot && !n.leaf && len(n.entries) < 1 {
			return fmt.Errorf("core: inner root without entries")
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.Child == nil {
				return fmt.Errorf("core: entry %d has no child", i)
			}
			want := t.summarize(e.Child)
			if err := e.Rect.Validate(); err != nil {
				return fmt.Errorf("core: invalid entry rect: %w", err)
			}
			for k := 0; k < t.cfg.Dim; k++ {
				if math.Abs(e.Rect.Lo[k]-want.Rect.Lo[k]) > tol || math.Abs(e.Rect.Hi[k]-want.Rect.Hi[k]) > tol {
					return fmt.Errorf("core: stale MBR in dim %d: have [%v,%v], want [%v,%v]",
						k, e.Rect.Lo[k], e.Rect.Hi[k], want.Rect.Lo[k], want.Rect.Hi[k])
				}
			}
			if math.Abs(e.CF.N-want.CF.N) > tol {
				return fmt.Errorf("core: stale CF count: have %v, want %v", e.CF.N, want.CF.N)
			}
			scale := math.Max(1, math.Abs(want.CF.N))
			for k := 0; k < t.cfg.Dim; k++ {
				if math.Abs(e.CF.LS[k]-want.CF.LS[k]) > tol*scale*10 {
					return fmt.Errorf("core: stale CF LS[%d]: have %v, want %v", k, e.CF.LS[k], want.CF.LS[k])
				}
				if math.Abs(e.CF.SS[k]-want.CF.SS[k]) > tol*scale*100 {
					return fmt.Errorf("core: stale CF SS[%d]: have %v, want %v", k, e.CF.SS[k], want.CF.SS[k])
				}
			}
			if err := walk(e.Child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if got := countPoints(t.root); got != t.size {
		return fmt.Errorf("core: counted %d observations, size says %d", got, t.size)
	}
	if t.balanced {
		return checkBalanced(t.root)
	}
	return nil
}
