package core

import (
	"math"
	"sync"

	"bayestree/internal/kernels"
	"bayestree/internal/stats"
)

// Strategy selects the tree traversal order of Section 2.2.
type Strategy int

// Traversal strategies evaluated in the paper.
const (
	// DescentGlobal ("glo") refines the globally best entry by priority.
	DescentGlobal Strategy = iota
	// DescentBFT refines in breadth-first order.
	DescentBFT
	// DescentDFT refines in depth-first order.
	DescentDFT
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case DescentGlobal:
		return "glo"
	case DescentBFT:
		return "bft"
	case DescentDFT:
		return "dft"
	}
	return "unknown"
}

// Priority selects the ordering measure for global best-first descent.
type Priority int

// Priority measures evaluated in the paper.
const (
	// PriorityProbabilistic orders by the weighted probability density of
	// the entry's Gaussian at the query (higher first).
	PriorityProbabilistic Priority = iota
	// PriorityGeometric orders by the distance from the query to the
	// entry's MBR (closer first).
	PriorityGeometric
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityProbabilistic:
		return "prob"
	case PriorityGeometric:
		return "geom"
	}
	return "unknown"
}

// refElem is a refinable frontier element: an entry whose subtree can be
// expanded by one node read. child addresses the node on the pointer
// path; node is its index in the SoA mirror when the cursor runs the
// vectorized fast path.
type refElem struct {
	logTerm float64 // log contribution to the mixture density at x
	prio    float64 // refinement priority, higher first
	child   *Node
	node    int32
	seq     int // FIFO tie-break for determinism
}

// before orders the max-heap: highest prio first, FIFO seq as tie-break.
func (e refElem) before(other refElem) bool {
	if e.prio != other.prio {
		return e.prio > other.prio
	}
	return e.seq < other.seq
}

type refHeap = pheap[refElem]

// Cursor is an in-progress anytime probability density query against one
// Bayes tree (Definition 3 plus the time-step refinement of Section 2.2).
// It starts from the frontier {root entry} — the coarsest complete model —
// and each Refine call reads one node, replacing a frontier entry by its
// children (or, at leaf level, by the kernel estimators of its
// observations) and updating the mixture density incrementally.
type Cursor struct {
	tree     *Cursorable
	x        []float64
	strategy Strategy
	priority Priority

	heap refHeap
	fifo []refElem
	head int
	seq  int

	acc    float64 // Σ exp(logTerm − shift) over the current frontier
	shift  float64
	reads  int
	logN   float64
	obs    []int // observed dims for missing-value queries (nil = all)
	obsBuf []int // retained backing array for obs across pooled reuses

	// soa is the structure-of-arrays mirror this cursor descends through
	// (nil = pointer path); outBuf is its sweep output scratch.
	soa    *treeSoA
	outBuf []float64
}

// cursorPool recycles cursors — and, crucially, their heap/FIFO backing
// arrays and observed-dimension scratch — across queries. A stream serving
// one query per arrival would otherwise regrow these for every object.
var cursorPool = sync.Pool{New: func() interface{} { return new(Cursor) }}

// Cursorable carries what a cursor needs from a tree; it decouples the
// cursor from Tree so MultiTree can reuse the machinery.
type Cursorable struct {
	cfg  Config
	root Entry
	n    float64
	bw   []float64
	// kern is the leaf kernel frozen at the tree's bandwidths, so leaf
	// refinement performs no bandwidth-derived recomputation per point.
	kern kernels.FrozenKernel
	// sweep is kern viewed through its flat sweep interface; nil when
	// the kernel cannot sweep (the SoA fast path then stays off).
	sweep kernels.Sweeper
}

// NewCursor starts an anytime density query for x against the tree.
// NaN coordinates in x mark missing values; the density is then the
// marginal over the observed dimensions (Section 4.2 extension). It
// returns nil for an empty tree.
func (t *Tree) NewCursor(x []float64, strategy Strategy, priority Priority) *Cursor {
	return t.newCursorExact(x, strategy, priority, false)
}

// newCursorExact is NewCursor with an explicit exact-mode switch: when
// exact is true the cursor takes the pointer path even if a SoA mirror
// is published (both paths score bitwise identically; exact mode is the
// documented fallback).
func (t *Tree) newCursorExact(x []float64, strategy Strategy, priority Priority, exact bool) *Cursor {
	ct := t.cursorable()
	if ct == nil {
		return nil
	}
	c := newCursor(ct, x, strategy, priority)
	if !exact && ct.sweep != nil {
		if m := t.soa.Load(); m != nil {
			c.soa = m
		}
	}
	return c
}

func newCursor(ct *Cursorable, x []float64, strategy Strategy, priority Priority) *Cursor {
	c := cursorPool.Get().(*Cursor)
	c.tree = ct
	c.x = x
	c.strategy = strategy
	c.priority = priority
	c.soa = nil
	c.heap = c.heap[:0]
	c.fifo = c.fifo[:0]
	c.head = 0
	c.seq = 0
	c.acc = 0
	c.shift = math.Inf(-1)
	c.reads = 0
	c.logN = math.Log(ct.n)
	c.obs, c.obsBuf = stats.ObservedDimsInto(x, c.obsBuf)
	// The level-0 model: a single Gaussian over the entire population,
	// available without reading any node.
	logTerm := ct.root.Frozen().LogPDFObs(x, c.obs) // weight n/n = 1
	c.push(refElem{logTerm: logTerm, prio: c.prioFor(&ct.root, logTerm), child: ct.root.Child})
	c.addTerm(logTerm)
	return c
}

// Close returns the cursor to the package pool so later queries can reuse
// its backing arrays. The cursor must not be used afterwards. Calling
// Close is optional — an unclosed cursor is simply garbage collected — but
// closing is what makes the steady-state query path allocation-free.
func (c *Cursor) Close() {
	if c == nil || c.tree == nil {
		// Nil or already closed: a double Close must not double-Put the
		// cursor, or two later queries would share one pooled instance.
		return
	}
	// Clear both queues through their full capacity: consumed FIFO
	// prefixes and popped DFT suffixes linger in the backing arrays and
	// would otherwise pin tree nodes from the pool.
	h := c.heap[:cap(c.heap)]
	clear(h)
	c.heap = h[:0]
	f := c.fifo[:cap(c.fifo)]
	clear(f)
	c.fifo = f[:0]
	c.tree = nil
	c.x = nil
	c.obs = nil
	c.soa = nil
	cursorPool.Put(c)
}

// prioFor computes the refinement priority of an entry.
func (c *Cursor) prioFor(e *Entry, logTerm float64) float64 {
	if c.priority == PriorityGeometric {
		return -e.Rect.MinDist2Obs(c.x, c.obs)
	}
	return logTerm
}

func (c *Cursor) push(e refElem) {
	e.seq = c.seq
	c.seq++
	switch c.strategy {
	case DescentGlobal:
		c.heap.push(e)
	default:
		c.fifo = append(c.fifo, e)
	}
}

func (c *Cursor) pop() (refElem, bool) {
	switch c.strategy {
	case DescentGlobal:
		if len(c.heap) == 0 {
			return refElem{}, false
		}
		return c.heap.pop(), true
	case DescentBFT:
		if c.head >= len(c.fifo) {
			return refElem{}, false
		}
		e := c.fifo[c.head]
		c.head++
		// Periodically compact the consumed prefix in place: sliding the
		// live tail down reuses the existing backing array instead of
		// allocating a fresh slice on every compaction.
		if c.head > 1024 && c.head*2 > len(c.fifo) {
			n := copy(c.fifo, c.fifo[c.head:])
			clear(c.fifo[n:]) // drop node pointers in the vacated tail
			c.fifo = c.fifo[:n]
			c.head = 0
		}
		return e, true
	default: // DescentDFT
		if len(c.fifo) <= c.head {
			return refElem{}, false
		}
		e := c.fifo[len(c.fifo)-1]
		c.fifo = c.fifo[:len(c.fifo)-1]
		return e, true
	}
}

// addTerm accumulates exp(l) into the shifted linear accumulator,
// rescaling when a dominant new term arrives.
func (c *Cursor) addTerm(l float64) {
	if math.IsInf(l, -1) {
		return
	}
	if math.IsInf(c.shift, -1) {
		c.shift = l
		c.acc = 1
		return
	}
	if l > c.shift+30 {
		c.acc *= math.Exp(c.shift - l)
		c.shift = l
	}
	c.acc += math.Exp(l - c.shift)
}

// removeTerm removes exp(l) from the accumulator, clamping tiny negative
// residues from floating-point cancellation.
func (c *Cursor) removeTerm(l float64) {
	if math.IsInf(l, -1) || math.IsInf(c.shift, -1) {
		return
	}
	c.acc -= math.Exp(l - c.shift)
	if c.acc < 0 {
		c.acc = 0
	}
}

// Exhausted reports whether the frontier is fully refined to kernels.
func (c *Cursor) Exhausted() bool {
	switch c.strategy {
	case DescentGlobal:
		return len(c.heap) == 0
	case DescentBFT:
		return c.head >= len(c.fifo)
	default:
		return len(c.fifo) <= c.head
	}
}

// NodesRead returns the number of nodes read so far.
func (c *Cursor) NodesRead() int { return c.reads }

// LogDensity returns the current log mixture density pdq(x, E) for the
// frontier E (Definition 3).
func (c *Cursor) LogDensity() float64 {
	if c.acc <= 0 {
		return math.Inf(-1)
	}
	return c.shift + math.Log(c.acc)
}

// Refine reads one more node, replacing the next frontier entry by its
// children per the descent strategy. It reports whether a node was read
// (false when the model is fully refined).
func (c *Cursor) Refine() bool {
	e, ok := c.pop()
	if !ok {
		return false
	}
	c.reads++
	c.removeTerm(e.logTerm)
	if c.soa != nil {
		c.refineSoA(int(e.node))
		return true
	}
	n := e.child
	if n.leaf {
		if n.weights == nil {
			for _, p := range n.points {
				logTerm := -c.logN + c.tree.kern.LogDensityObs(c.x, p, c.obs)
				c.addTerm(logTerm)
			}
		} else {
			// Decayed leaves weight each kernel by its observation's
			// faded mass (weights and logN share the reference-epoch
			// scale, so the outstanding decay factor cancels).
			for i, p := range n.points {
				logTerm := math.Log(n.weights[i]) - c.logN + c.tree.kern.LogDensityObs(c.x, p, c.obs)
				c.addTerm(logTerm)
			}
		}
		return true
	}
	for i := range n.entries {
		en := &n.entries[i]
		f := en.Frozen()
		logTerm := f.LogN - c.logN + f.LogPDFObs(c.x, c.obs)
		c.push(refElem{logTerm: logTerm, prio: c.prioFor(en, logTerm), child: en.Child})
		c.addTerm(logTerm)
	}
	return true
}

// RefineAll fully refines the model (down to the kernel level) and returns
// the number of nodes read. Useful for exact (non-anytime) classification
// and for tests comparing against direct kernel density computation.
func (c *Cursor) RefineAll() int {
	start := c.reads
	for c.Refine() {
	}
	return c.reads - start
}
