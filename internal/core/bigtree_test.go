package core

import (
	"math"
	"math/rand"
	"testing"
)

// A tree large enough that a breadth-first cursor's FIFO exceeds the
// prefix-compaction threshold (1024 consumed elements): exercises the
// queue-release path and re-verifies exactness at scale.
func TestBFTQueueCompactionAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-tree test")
	}
	tree, err := NewTree(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for _, p := range randPoints(rng, 12000, 2) {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	s := tree.Stats()
	if s.Nodes < 2000 {
		t.Fatalf("tree too small for compaction test: %d nodes", s.Nodes)
	}
	x := []float64{0.31, 0.62}
	cur := tree.NewCursor(x, DescentBFT, PriorityProbabilistic)
	reads := cur.RefineAll()
	if reads != s.Nodes {
		t.Fatalf("read %d nodes, tree has %d", reads, s.Nodes)
	}
	want := directKernelLogDensity(tree, x)
	if got := cur.LogDensity(); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("BFT at scale: %v, want %v", got, want)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// The same at scale for the heap-based global strategy, confirming the
// accumulator's shift rescaling stays exact through thousands of terms.
func TestGlobalCursorAccumulatorAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-tree test")
	}
	tree, err := NewTree(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	// Clustered data creates extreme density ratios between terms, the
	// stress case for the shifted accumulator.
	for i := 0; i < 8000; i++ {
		c := float64(i%4) * 0.25
		p := []float64{
			math.Mod(math.Abs(c+rng.NormFloat64()*0.01), 1),
			math.Mod(math.Abs(c+rng.NormFloat64()*0.01), 1),
			rng.Float64(),
		}
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	x := []float64{0.25, 0.25, 0.5}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	cur.RefineAll()
	want := directKernelLogDensity(tree, x)
	if got := cur.LogDensity(); math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
		t.Fatalf("accumulator drift at scale: %v, want %v", got, want)
	}
}
