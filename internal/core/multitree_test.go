package core

import (
	"math"
	"math/rand"
	"testing"
)

func buildMultiTree(t *testing.T, xs [][]float64, ys []int, mopts MultiOptions) *MultiTree {
	t.Helper()
	labels := map[int]bool{}
	for _, y := range ys {
		labels[y] = true
	}
	var ls []int
	for y := 0; y < 10; y++ {
		if labels[y] {
			ls = append(ls, y)
		}
	}
	mt, err := NewMultiTree(smallConfig(len(xs[0])), ls, mopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if err := mt.Insert(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	return mt
}

func TestNewMultiTreeValidation(t *testing.T) {
	if _, err := NewMultiTree(smallConfig(2), []int{1}, MultiOptions{}); err == nil {
		t.Errorf("single class accepted")
	}
	if _, err := NewMultiTree(smallConfig(2), []int{1, 1}, MultiOptions{}); err == nil {
		t.Errorf("duplicate labels accepted")
	}
	bad := smallConfig(2)
	bad.Dim = 0
	if _, err := NewMultiTree(bad, []int{0, 1}, MultiOptions{}); err == nil {
		t.Errorf("bad config accepted")
	}
}

func TestMultiInsertValidate(t *testing.T) {
	xs, ys := twoClassData(500, 1)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	if err := mt.Validate(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if mt.Len() != 500 {
		t.Fatalf("Len = %d", mt.Len())
	}
	if err := mt.Insert([]float64{0, 0}, 42); err == nil {
		t.Errorf("unknown label accepted")
	}
	if err := mt.Insert([]float64{0}, 0); err == nil {
		t.Errorf("wrong dim accepted")
	}
	if err := mt.Insert([]float64{math.NaN(), 0}, 0); err == nil {
		t.Errorf("NaN accepted")
	}
}

func TestMultiClassifyAccuracy(t *testing.T) {
	xs, ys := twoClassData(800, 2)
	mt := buildMultiTree(t, xs[:600], ys[:600], MultiOptions{})
	correct := 0
	for i := 600; i < 800; i++ {
		pred, err := mt.Classify(xs[i], ClassifierOptions{}, -1)
		if err != nil {
			t.Fatal(err)
		}
		if pred == ys[i] {
			correct++
		}
	}
	acc := float64(correct) / 200
	if acc < 0.9 {
		t.Errorf("multi-tree full-model accuracy %v, want ≥ 0.9", acc)
	}
}

// A single multi-class step refines every class model at once, so at tiny
// budgets the multi tree should already move beyond the level-0 model.
func TestMultiParallelRefinement(t *testing.T) {
	xs, ys := twoClassData(400, 3)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	q, err := mt.NewQuery(xs[0], ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), q.scores()...)
	if !q.Step() {
		t.Fatal("first step failed")
	}
	after := q.scores()
	changed := 0
	for c := range after {
		if math.Abs(after[c]-before[c]) > 1e-12 {
			changed++
		}
	}
	if changed < 2 {
		t.Errorf("one step changed only %d class models, want both", changed)
	}
}

func TestMultiTraceSemantics(t *testing.T) {
	xs, ys := twoClassData(300, 4)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	trace, err := mt.ClassifyTrace(xs[0], ClassifierOptions{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 31 {
		t.Fatalf("trace length %d", len(trace))
	}
	pred, err := mt.Classify(xs[0], ClassifierOptions{}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if pred != trace[30] {
		t.Errorf("trace end %d != classify %d", trace[30], pred)
	}
}

func TestMultiQueryOnEmptyTree(t *testing.T) {
	mt, err := NewMultiTree(smallConfig(2), []int{0, 1}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.NewQuery([]float64{0, 0}, ClassifierOptions{}); err == nil {
		t.Errorf("query on empty multi tree accepted")
	}
}

func TestMultiPooledVarianceOption(t *testing.T) {
	xs, ys := twoClassData(600, 5)
	pooled := buildMultiTree(t, xs[:400], ys[:400], MultiOptions{PooledVariance: true})
	perClass := buildMultiTree(t, xs[:400], ys[:400], MultiOptions{})
	// Both variants must classify reasonably; they should differ in at
	// least some early-budget decisions (they use different entry models).
	var accP, accC float64
	diff := 0
	for i := 400; i < 600; i++ {
		p1, err := pooled.Classify(xs[i], ClassifierOptions{}, 5)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := perClass.Classify(xs[i], ClassifierOptions{}, 5)
		if err != nil {
			t.Fatal(err)
		}
		if p1 == ys[i] {
			accP++
		}
		if p2 == ys[i] {
			accC++
		}
		if p1 != p2 {
			diff++
		}
	}
	if accP/200 < 0.55 || accC/200 < 0.55 {
		t.Errorf("pooled %v / per-class %v accuracy too low", accP/200, accC/200)
	}
}

func TestMultiEntropyPriority(t *testing.T) {
	xs, ys := twoClassData(400, 6)
	mt := buildMultiTree(t, xs, ys, MultiOptions{EntropyPriority: true})
	correct := 0
	for i := 0; i < 100; i++ {
		pred, err := mt.Classify(xs[i], ClassifierOptions{}, 15)
		if err != nil {
			t.Fatal(err)
		}
		if pred == ys[i] {
			correct++
		}
	}
	if correct < 70 {
		t.Errorf("entropy-priority accuracy %d/100 too low", correct)
	}
}

func TestMultiGeometricPriorityAndBFT(t *testing.T) {
	xs, ys := twoClassData(400, 7)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	for _, opts := range []ClassifierOptions{
		{Priority: PriorityGeometric},
		{Strategy: DescentBFT},
		{Strategy: DescentDFT},
	} {
		correct := 0
		for i := 0; i < 100; i++ {
			pred, err := mt.Classify(xs[i], opts, 25)
			if err != nil {
				t.Fatal(err)
			}
			if pred == ys[i] {
				correct++
			}
		}
		if correct < 60 {
			t.Errorf("opts %+v accuracy %d/100 too low", opts, correct)
		}
	}
}

// The multi tree's per-class counts must match the inserted labels, and
// exhausting a query must read every node exactly once.
func TestMultiExhaustion(t *testing.T) {
	xs, ys := twoClassData(300, 8)
	mt := buildMultiTree(t, xs, ys, MultiOptions{})
	q, err := mt.NewQuery([]float64{0.5, 0.5}, ClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	for q.Step() {
		reads++
	}
	nodes := countMultiNodes(mt.Root())
	if reads != nodes {
		t.Errorf("read %d nodes, tree has %d", reads, nodes)
	}
	if !q.Exhausted() {
		t.Errorf("not exhausted")
	}
}

func countMultiNodes(n *MultiNode) int {
	if n.IsLeaf() {
		return 1
	}
	total := 1
	for _, e := range n.Entries() {
		total += countMultiNodes(e.Child)
	}
	return total
}

// Fully refined multi-tree classification must agree with the per-class
// forest's fully refined classification on the same training data: both
// compute the same kernel Bayes rule.
func TestMultiAgreesWithForestWhenExhausted(t *testing.T) {
	xs, ys := twoClassData(400, 9)
	mt := buildMultiTree(t, xs[:300], ys[:300], MultiOptions{})
	clf := buildClassifier(t, xs[:300], ys[:300], ClassifierOptions{})
	agree := 0
	for i := 300; i < 400; i++ {
		a, err := mt.Classify(xs[i], ClassifierOptions{}, -1)
		if err != nil {
			t.Fatal(err)
		}
		b := clf.Classify(xs[i], -1)
		if a == b {
			agree++
		}
	}
	// Bandwidths differ slightly (per-class trees use their own CFs, the
	// multi tree uses per-class root CFs — same formula), so demand high
	// but not perfect agreement.
	if agree < 95 {
		t.Errorf("multi tree agrees with forest on %d/100 full-model decisions", agree)
	}
}

func TestMultiLabelsAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	_ = rng
	mt, err := NewMultiTree(smallConfig(2), []int{3, 7}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ls := mt.Labels()
	if len(ls) != 2 || ls[0] != 3 || ls[1] != 7 {
		t.Errorf("Labels = %v", ls)
	}
}
