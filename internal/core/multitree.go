package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bayestree/internal/kernels"
	"bayestree/internal/mbr"
	"bayestree/internal/stats"
)

// This file implements the structural modification of Section 4.1: instead
// of one Bayes tree per class, a single tree stores the complete training
// data and each entry keeps per-class statistical information, so one node
// read refines the models of several classes at once ("parallel refinement
// of several classes in a single descent").

// LabeledPoint is a training observation with its class label.
type LabeledPoint struct {
	X     []float64
	Label int
}

// MultiEntry is the modified entry of Section 4.1: one MBR and pointer as
// before, but a cluster feature per class (plus their pooled sum, used for
// descent decisions and variance pooling).
type MultiEntry struct {
	Rect  mbr.Rect
	CFs   []stats.CF // indexed by class index; CFs[c].N == 0 when absent
	Total stats.CF
	Child *MultiNode

	// frozen caches the precomputed per-class Gaussians (honouring the
	// tree's variance-pooling option). summarize populates it eagerly, so
	// concurrent queries never derive a Gaussian from the cluster features
	// on the hot path. Entries for absent classes are left zero.
	frozen []stats.FrozenGaussian
}

// MultiNode is a node of the multi-class Bayes tree.
type MultiNode struct {
	leaf    bool
	entries []MultiEntry
	points  []LabeledPoint
	// weights are the per-observation decayed weights of a leaf, parallel
	// to points; nil means every observation weighs 1 exactly (the only
	// state of an undecayed tree). See decay.go.
	weights []float64
}

// IsLeaf reports whether the node is a leaf.
func (n *MultiNode) IsLeaf() bool { return n.leaf }

// Entries returns the entries of an inner node (nil for leaves).
func (n *MultiNode) Entries() []MultiEntry { return n.entries }

// Points returns the observations of a leaf (nil for inner nodes).
func (n *MultiNode) Points() []LabeledPoint { return n.points }

// Weights returns the per-observation decayed weights of a leaf,
// parallel to Points; nil means every observation weighs 1. The
// returned slice must not be modified.
func (n *MultiNode) Weights() []float64 { return n.weights }

// MultiOptions configure the multi-class tree variant.
type MultiOptions struct {
	// PooledVariance stores one variance per entry (from the pooled CF)
	// instead of per-class variances — the "variance pooling" trade-off
	// the paper poses as an open question. Class means and counts remain
	// per class.
	PooledVariance bool
	// EntropyPriority weights the descent priority by the class-label
	// entropy of the entry, so descents prefer regions where the class
	// decision is still uncertain (the paper's suggestion to "include the
	// class distribution into the decision").
	EntropyPriority bool
}

// MultiTree is the single-tree multi-class Bayes tree.
type MultiTree struct {
	cfg    Config
	mopts  MultiOptions
	labels []int
	index  map[int]int
	root   *MultiNode
	size   int
	counts []float64
	// queryState caches the per-query constants (root summary, per-class
	// bandwidths and log counts); built on first query, invalidated by
	// Insert, AdvanceEpoch and DecaySweep.
	queryState atomic.Pointer[multiQueryState]
	// decay configures exponential forgetting (zero value = off); epoch
	// is the current logical time and refEpoch the epoch the stored
	// weights are valued at. See decay.go.
	decay    DecayOptions
	epoch    int64
	refEpoch int64
	// soa publishes the structure-of-arrays mirror for vectorized
	// descent (nil = unpublished; queries fall back to the pointer
	// path). The remaining fields are the refresh bookkeeping, guarded
	// by the same exclusive-access contract as mutation. See soa.go.
	soa           atomic.Pointer[multiSoA]
	soaTrack      bool
	soaStructural bool
	soaDirty      map[*MultiNode]struct{}
	soaRetained   *multiSoA
	soaRebuilds   int64
	soaPatches    int64
	soaInvalid    int64
}

// multiQueryState holds what every MultiQuery needs but no query should
// recompute: the root summary (a full tree walk), the per-class Silverman
// bandwidths and the per-class log counts.
type multiQueryState struct {
	root  MultiEntry
	bw    [][]float64
	logNc []float64
	// kern holds the leaf kernel frozen at each class's bandwidths.
	kern []kernels.FrozenKernel
	// sweep holds the same frozen kernels viewed through their flat
	// sweep interface; sweepOK is false when any class's kernel cannot
	// sweep (the SoA fast path then stays off for this tree state).
	sweep   []kernels.Sweeper
	sweepOK bool
}

// NewMultiTree creates an empty multi-class tree over the given class
// labels (which fix the per-entry CF layout).
func NewMultiTree(cfg Config, labels []int, mopts MultiOptions) (*MultiTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(labels) < 2 {
		return nil, fmt.Errorf("core: multi tree needs ≥ 2 classes, got %d", len(labels))
	}
	index := make(map[int]int, len(labels))
	for i, l := range labels {
		if _, dup := index[l]; dup {
			return nil, fmt.Errorf("core: duplicate class label %d", l)
		}
		index[l] = i
	}
	return &MultiTree{
		cfg:    cfg,
		mopts:  mopts,
		labels: append([]int(nil), labels...),
		index:  index,
		root:   &MultiNode{leaf: true},
		counts: make([]float64, len(labels)),
	}, nil
}

// Labels returns the class labels in tree order.
func (t *MultiTree) Labels() []int { return append([]int(nil), t.labels...) }

// Len returns the number of stored observations.
func (t *MultiTree) Len() int { return t.size }

// Config returns the tree's structural parameters.
func (t *MultiTree) Config() Config { return t.cfg }

// Options returns the multi-class options the tree was built with.
func (t *MultiTree) Options() MultiOptions { return t.mopts }

// Counts returns a copy of the per-class observation counts, indexed in
// Labels order. Counts are float64 so decayed-weight extensions keep
// working; for plain trees they are integral.
func (t *MultiTree) Counts() []float64 { return append([]float64(nil), t.counts...) }

// Root returns the root node for read-only traversal.
func (t *MultiTree) Root() *MultiNode { return t.root }

// summarize computes the MultiEntry describing node n.
func (t *MultiTree) summarize(n *MultiNode) MultiEntry {
	d := t.cfg.Dim
	e := MultiEntry{
		Rect:  mbr.Empty(d),
		CFs:   make([]stats.CF, len(t.labels)),
		Total: stats.NewCF(d),
		Child: n,
	}
	for i := range e.CFs {
		e.CFs[i] = stats.NewCF(d)
	}
	if n.leaf {
		if n.weights == nil {
			for _, p := range n.points {
				e.Rect.ExtendPoint(p.X)
				ci := t.index[p.Label]
				e.CFs[ci].Add(p.X)
				e.Total.Add(p.X)
			}
		} else {
			for i, p := range n.points {
				e.Rect.ExtendPoint(p.X)
				ci := t.index[p.Label]
				e.CFs[ci].AddWeighted(p.X, n.weights[i])
				e.Total.AddWeighted(p.X, n.weights[i])
			}
		}
	} else {
		for i := range n.entries {
			e.Rect.Extend(n.entries[i].Rect)
			for c := range e.CFs {
				e.CFs[c].Merge(n.entries[i].CFs[c])
			}
			e.Total.Merge(n.entries[i].Total)
		}
	}
	t.freeze(&e)
	return e
}

// freeze precomputes the per-class Gaussians of an entry, honouring the
// variance-pooling option. With pooled variance all classes share one
// inverse-variance vector (aliased, read-only), so freezing stays cheap
// even for many classes.
func (t *MultiTree) freeze(e *MultiEntry) {
	e.frozen = make([]stats.FrozenGaussian, len(e.CFs))
	if t.mopts.PooledVariance {
		shared := stats.FrozenFromMoments(nil, e.Total.Variance())
		for c := range e.CFs {
			if e.CFs[c].N <= 0 {
				continue
			}
			f := shared
			f.Mean = e.CFs[c].Mean()
			f.LogN = math.Log(e.CFs[c].N)
			e.frozen[c] = f
		}
		return
	}
	for c := range e.CFs {
		if e.CFs[c].N <= 0 {
			continue
		}
		e.frozen[c] = stats.Freeze(&e.CFs[c])
	}
}

// classFrozen returns the cached per-class Gaussian of an entry, deriving
// it on the fly (without storing) for hand-built entries.
func (t *MultiTree) classFrozen(e *MultiEntry, c int) *stats.FrozenGaussian {
	if c < len(e.frozen) && e.frozen[c].Mean != nil {
		return &e.frozen[c]
	}
	g := t.classGaussian(e, c)
	f := g.Freeze()
	if e.CFs[c].N > 0 {
		f.LogN = math.Log(e.CFs[c].N)
	}
	return &f
}

// Insert adds a labeled observation (R*-style, as in Tree.Insert but
// maintaining per-class cluster features).
func (t *MultiTree) Insert(x []float64, label int) error {
	if len(x) != t.cfg.Dim {
		return fmt.Errorf("core: point dim %d != tree dim %d", len(x), t.cfg.Dim)
	}
	ci, ok := t.index[label]
	if !ok {
		return fmt.Errorf("core: unknown class label %d", label)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: non-finite coordinate %d", i)
		}
	}
	cp := make([]float64, len(x))
	copy(cp, x)
	w := t.insertWeight()
	t.insertPointW(LabeledPoint{X: cp, Label: label}, w)
	t.size++
	t.counts[ci] += w
	t.queryState.Store(nil) // cached root summary and bandwidths are stale
	return nil
}

// insertPointW inserts p at leaf level with the given weight (1 for
// undecayed trees).
func (t *MultiTree) insertPointW(p LabeledPoint, w float64) {
	rect := mbr.Point(p.X)
	path := []*MultiNode{t.root}
	n := t.root
	for !n.leaf {
		idx := t.chooseSubtree(n, rect)
		n = n.entries[idx].Child
		path = append(path, n)
	}
	n.appendPoint(p, w)
	split := t.fixOverflow(path)
	t.soaMarkInsert(path, split)
}

// appendPoint adds one observation with the given weight, materialising
// the weight vector only when a non-unit weight first appears.
func (n *MultiNode) appendPoint(p LabeledPoint, w float64) {
	n.points = append(n.points, p)
	if n.weights != nil {
		n.weights = append(n.weights, w)
		return
	}
	if w != 1 {
		n.weights = make([]float64, len(n.points))
		for i := range n.weights {
			n.weights[i] = 1
		}
		n.weights[len(n.points)-1] = w
	}
}

func (t *MultiTree) chooseSubtree(n *MultiNode, r mbr.Rect) int {
	best := 0
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i := range n.entries {
		enl := mbr.Enlargement(n.entries[i].Rect, r)
		area := n.entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// fixOverflow splits overflowing nodes bottom-up and reports whether any
// split happened — the signal the SoA mirror uses to tell patchable
// (path-local) staleness from structural staleness.
func (t *MultiTree) fixOverflow(path []*MultiNode) bool {
	split := false
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		over := (n.leaf && len(n.points) > t.cfg.MaxLeaf) || (!n.leaf && len(n.entries) > t.cfg.MaxFanout)
		if !over {
			// As in Tree.fixOverflow: one full refresh of this prefix
			// covers all remaining levels (they gained no entries), so
			// stop instead of re-summarizing per level.
			t.refreshPath(path[:i+1])
			return split
		}
		split = true
		var left, right *MultiNode
		if n.leaf {
			if n.weights == nil {
				l, r := splitItems(n.points, func(p LabeledPoint) mbr.Rect { return mbr.Point(p.X) }, t.cfg.Dim, t.cfg.MinLeaf)
				left, right = &MultiNode{leaf: true, points: l}, &MultiNode{leaf: true, points: r}
			} else {
				li, ri := splitIndices(len(n.points), func(i int) mbr.Rect { return mbr.Point(n.points[i].X) }, t.cfg.Dim, t.cfg.MinLeaf)
				left, right = weightedMultiLeaf(n.points, n.weights, li), weightedMultiLeaf(n.points, n.weights, ri)
			}
		} else {
			l, r := splitItems(n.entries, func(e MultiEntry) mbr.Rect { return e.Rect }, t.cfg.Dim, t.cfg.MinFanout)
			left, right = &MultiNode{entries: l}, &MultiNode{entries: r}
		}
		if i == 0 {
			t.root = &MultiNode{entries: []MultiEntry{t.summarize(left), t.summarize(right)}}
			return true
		}
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].Child == n {
				parent.entries[j] = t.summarize(left)
				break
			}
		}
		parent.entries = append(parent.entries, t.summarize(right))
	}
	return split
}

func (t *MultiTree) refreshPath(path []*MultiNode) {
	for i := len(path) - 1; i >= 1; i-- {
		child := path[i]
		parent := path[i-1]
		for j := range parent.entries {
			if parent.entries[j].Child == child {
				parent.entries[j] = t.summarize(child)
				break
			}
		}
	}
}

// bandwidths returns the per-class Silverman bandwidth vectors for an
// already computed root summary.
func (t *MultiTree) bandwidths(root *MultiEntry) [][]float64 {
	out := make([][]float64, len(t.labels))
	for c := range t.labels {
		cf := root.CFs[c]
		variance := cf.Variance()
		sigma := make([]float64, len(variance))
		for i, v := range variance {
			sigma[i] = math.Sqrt(v)
		}
		n := int(cf.N)
		out[c] = stats.SilvermanBandwidth(sigma, n, t.cfg.Dim)
	}
	return out
}

// queryConsts returns the cached query-time constants, rebuilding them on
// first use after a mutation (a benign publication race builds identical
// values).
func (t *MultiTree) queryConsts() *multiQueryState {
	if st := t.queryState.Load(); st != nil {
		return st
	}
	root := t.summarize(t.root)
	st := &multiQueryState{
		root:  root,
		bw:    t.bandwidths(&root),
		logNc: make([]float64, len(t.labels)),
		kern:  make([]kernels.FrozenKernel, len(t.labels)),
	}
	st.sweep = make([]kernels.Sweeper, len(t.labels))
	st.sweepOK = true
	for c := range st.logNc {
		if t.counts[c] > 0 {
			st.logNc[c] = math.Log(t.counts[c])
		} else {
			st.logNc[c] = math.Inf(1) // class absent: densities stay zero
		}
		st.kern[c] = kernels.FreezeKernel(t.cfg.Kernel, st.bw[c])
		if sw, ok := st.kern[c].(kernels.Sweeper); ok {
			st.sweep[c] = sw
		} else {
			st.sweepOK = false
		}
	}
	t.queryState.Store(st)
	return st
}

// classGaussian returns the Gaussian contributed by entry e for class c,
// honouring the variance-pooling option.
func (t *MultiTree) classGaussian(e *MultiEntry, c int) stats.Gaussian {
	if t.mopts.PooledVariance {
		return stats.Gaussian{Mean: e.CFs[c].Mean(), Var: e.Total.Variance()}
	}
	return e.CFs[c].Gaussian()
}

// mElem is a refinable element of the multi-class frontier. Its per-class
// log terms live in the query's shared arena at [termOff, termOff+nc) —
// one contiguous slice per query instead of one heap allocation per
// element. child addresses the node on the pointer path; node is its
// index in the SoA mirror when the fast path is active.
type mElem struct {
	prio    float64
	termOff int32
	node    int32
	child   *MultiNode
	seq     int
}

// before orders the max-heap: highest prio first, FIFO seq as tie-break.
func (e mElem) before(other mElem) bool {
	if e.prio != other.prio {
		return e.prio > other.prio
	}
	return e.seq < other.seq
}

type mHeap = pheap[mElem]

// MultiQuery is an in-progress anytime classification against a
// MultiTree. One Step refines all class models simultaneously. Queries
// are pooled — call Close when done to recycle the buffers.
type MultiQuery struct {
	t      *MultiTree
	x      []float64
	opts   ClassifierOptions
	heap   mHeap
	fifo   []mElem
	head   int
	seq    int
	accs   []float64
	shifts []float64
	kern   []kernels.FrozenKernel
	logNc  []float64
	obs    []int
	obsBuf []int
	reads  int
	// terms is the arena backing every frontier element's per-class log
	// terms (see mElem.termOff).
	terms []float64
	// soa/sweep are non-nil when this query descends through the
	// structure-of-arrays mirror instead of the pointer tree.
	soa       *multiSoA
	sweep     []kernels.Sweeper
	outBuf    []float64
	finiteBuf []float64
	scoreBuf  []float64
	usedSoA   bool
}

var multiQueryPool = sync.Pool{New: func() any { return new(MultiQuery) }}

// NewQuery starts an anytime classification of x. It returns an error for
// an empty tree or one with empty classes. When the tree has a published
// SoA mirror (and opts.ExactDescent is off), the query descends through
// it; otherwise it uses the pointer path. Both paths produce bitwise
// identical scores. Call Close when done with the query.
func (t *MultiTree) NewQuery(x []float64, opts ClassifierOptions) (*MultiQuery, error) {
	if t.size == 0 {
		return nil, fmt.Errorf("core: query against empty multi tree")
	}
	st := t.queryConsts()
	nc := len(t.labels)
	q := multiQueryPool.Get().(*MultiQuery)
	q.t = t
	q.x = x
	q.opts = opts
	q.head, q.seq, q.reads = 0, 0, 0
	if cap(q.accs) < nc {
		q.accs = make([]float64, nc)
		q.shifts = make([]float64, nc)
	}
	q.accs = q.accs[:nc]
	q.shifts = q.shifts[:nc]
	for c := 0; c < nc; c++ {
		q.accs[c] = 0
		q.shifts[c] = math.Inf(-1)
	}
	q.kern = st.kern
	q.logNc = st.logNc
	q.obs, q.obsBuf = stats.ObservedDimsInto(x, q.obsBuf)
	q.soa, q.sweep = nil, nil
	if !opts.ExactDescent && st.sweepOK {
		if m := t.soa.Load(); m != nil {
			q.soa = m
			q.sweep = st.sweep
		}
	}
	q.usedSoA = q.soa != nil
	q.pushEntry(&st.root, 0)
	return q, nil
}

// Close releases the query's buffers back to the pool. The query must
// not be used afterwards; Scores slices returned earlier stay valid.
func (q *MultiQuery) Close() {
	if q == nil || q.t == nil {
		return
	}
	q.heap = q.heap[:cap(q.heap)]
	clear(q.heap)
	q.heap = q.heap[:0]
	q.fifo = q.fifo[:cap(q.fifo)]
	clear(q.fifo)
	q.fifo = q.fifo[:0]
	q.terms = q.terms[:0]
	q.t, q.x, q.obs = nil, nil, nil
	q.kern, q.logNc = nil, nil
	q.soa, q.sweep = nil, nil
	multiQueryPool.Put(q)
}

// UsedSoA reports whether this query descended through the
// structure-of-arrays mirror (false = exact pointer path).
func (q *MultiQuery) UsedSoA() bool { return q.usedSoA }

// pushEntry converts an entry into a frontier element, adds its per-class
// terms and enqueues it for refinement. node is the entry's child index
// in the SoA mirror (meaningful only on the fast path; the root entry's
// child is always mirror node 0).
func (q *MultiQuery) pushEntry(e *MultiEntry, node int32) {
	nc := len(q.t.labels)
	off := len(q.terms)
	for c := 0; c < nc; c++ {
		if e.CFs[c].N <= 0 || math.IsInf(q.logNc[c], 1) {
			q.terms = append(q.terms, math.Inf(-1))
			continue
		}
		f := q.t.classFrozen(e, c)
		term := f.LogN - q.logNc[c] + f.LogPDFObs(q.x, q.obs)
		q.terms = append(q.terms, term)
		q.addTerm(c, term)
	}
	el := mElem{termOff: int32(off), node: node, child: e.Child, seq: q.seq}
	q.seq++
	el.prio = q.prioFor(e, q.terms[off:off+nc])
	switch q.opts.Strategy {
	case DescentGlobal:
		q.heap.push(el)
	default:
		q.fifo = append(q.fifo, el)
	}
}

// prioFor computes the descent priority for an entry: geometric MINDIST,
// or the pooled weighted density, optionally weighted by class entropy.
func (q *MultiQuery) prioFor(e *MultiEntry, terms []float64) float64 {
	if q.opts.Priority == PriorityGeometric {
		return -e.Rect.MinDist2Obs(q.x, q.obs)
	}
	finite := q.finiteBuf[:0]
	for _, tm := range terms {
		if !math.IsInf(tm, -1) {
			finite = append(finite, tm)
		}
	}
	q.finiteBuf = finite
	prio := stats.LogSumExp(finite)
	if q.t.mopts.EntropyPriority {
		prio += math.Log1p(multiEntryEntropy(e))
	}
	return prio
}

func (q *MultiQuery) addTerm(c int, l float64) {
	if math.IsInf(l, -1) {
		return
	}
	if math.IsInf(q.shifts[c], -1) {
		q.shifts[c] = l
		q.accs[c] = 1
		return
	}
	if l > q.shifts[c]+30 {
		q.accs[c] *= math.Exp(q.shifts[c] - l)
		q.shifts[c] = l
	}
	q.accs[c] += math.Exp(l - q.shifts[c])
}

func (q *MultiQuery) removeTerm(c int, l float64) {
	if math.IsInf(l, -1) || math.IsInf(q.shifts[c], -1) {
		return
	}
	q.accs[c] -= math.Exp(l - q.shifts[c])
	if q.accs[c] < 0 {
		q.accs[c] = 0
	}
}

func (q *MultiQuery) pop() (mElem, bool) {
	switch q.opts.Strategy {
	case DescentGlobal:
		if len(q.heap) == 0 {
			return mElem{}, false
		}
		return q.heap.pop(), true
	case DescentBFT:
		if q.head >= len(q.fifo) {
			return mElem{}, false
		}
		e := q.fifo[q.head]
		q.head++
		return e, true
	default:
		if len(q.fifo) <= q.head {
			return mElem{}, false
		}
		e := q.fifo[len(q.fifo)-1]
		q.fifo = q.fifo[:len(q.fifo)-1]
		return e, true
	}
}

// NodesRead returns the nodes read so far.
func (q *MultiQuery) NodesRead() int { return q.reads }

// Exhausted reports whether the model is fully refined.
func (q *MultiQuery) Exhausted() bool {
	if q.opts.Strategy == DescentGlobal {
		return len(q.heap) == 0
	}
	return q.head >= len(q.fifo)
}

// Step refines one node, updating every class model at once. It reports
// whether a node was read.
func (q *MultiQuery) Step() bool {
	e, ok := q.pop()
	if !ok {
		return false
	}
	q.consume(e)
	return true
}

// consume refines one popped frontier element — through the SoA mirror
// when the fast path is active, else through the pointer tree.
func (q *MultiQuery) consume(e mElem) {
	q.reads++
	nc := len(q.t.labels)
	for c := 0; c < nc; c++ {
		q.removeTerm(c, q.terms[int(e.termOff)+c])
	}
	if q.soa != nil {
		q.refineSoA(int(e.node))
		return
	}
	n := e.child
	if n.leaf {
		for i, p := range n.points {
			c := q.t.index[p.Label]
			if math.IsInf(q.logNc[c], 1) {
				continue
			}
			l := -q.logNc[c] + q.kern[c].LogDensityObs(q.x, p.X, q.obs)
			if n.weights != nil {
				// Decayed leaves weight each kernel by its observation's
				// faded mass (same reference-epoch scale as logNc).
				l += math.Log(n.weights[i])
			}
			q.addTerm(c, l)
		}
		return
	}
	for i := range n.entries {
		q.pushEntry(&n.entries[i], 0)
	}
}

// scores returns per-class log posterior scores. Priors normalise by
// the summed class masses, not the point count: for undecayed trees the
// two are the same integral float64 value (digit-identical), while for
// decayed trees only the mass sum keeps shard-combined scores on one
// scale.
func (q *MultiQuery) scores() []float64 { return q.scoresInto(nil) }

func (q *MultiQuery) scoresInto(out []float64) []float64 {
	nc := len(q.t.labels)
	if cap(out) < nc {
		out = make([]float64, nc)
	}
	out = out[:nc]
	var total float64
	for _, c := range q.t.counts {
		total += c
	}
	for c := range out {
		if q.t.counts[c] <= 0 || q.accs[c] <= 0 || total <= 0 {
			out[c] = math.Inf(-1)
			continue
		}
		logPrior := math.Log(q.t.counts[c] / total)
		out[c] = logPrior + q.shifts[c] + math.Log(q.accs[c])
	}
	return out
}

// Scores returns the current per-class log posterior scores (class
// prior times anytime density estimate, up to the shared evidence
// constant), indexed in Labels order; classes with no mass score −Inf.
// Serving layers that shard one population across several trees combine
// shard scores with a size-weighted log-sum-exp — CF additivity makes
// the union model exactly the weighted mixture of the shard models.
func (q *MultiQuery) Scores() []float64 { return q.scoresInto(make([]float64, len(q.t.labels))) }

// Predict returns the currently most probable label.
func (q *MultiQuery) Predict() int {
	s := q.scoresInto(q.scoreBuf)
	q.scoreBuf = s
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i] > s[best] {
			best = i
		}
	}
	return q.t.labels[best]
}

// Classify runs an anytime classification with the given node budget
// (negative = until exhausted) and returns the prediction.
func (t *MultiTree) Classify(x []float64, opts ClassifierOptions, budget int) (int, error) {
	q, err := t.NewQuery(x, opts)
	if err != nil {
		return 0, err
	}
	for i := 0; budget < 0 || i < budget; i++ {
		if !q.Step() {
			break
		}
	}
	label := q.Predict()
	q.Close()
	return label, nil
}

// ClassifyTrace records the prediction after every node read, as
// Classifier.ClassifyTrace does for the per-class forest.
func (t *MultiTree) ClassifyTrace(x []float64, opts ClassifierOptions, budget int) ([]int, error) {
	trace, err := t.ClassifyTraceInto(x, opts, budget, nil)
	return trace, err
}

// ClassifyTraceInto is ClassifyTrace writing into a caller-provided buffer
// (grown when too small).
func (t *MultiTree) ClassifyTraceInto(x []float64, opts ClassifierOptions, budget int, trace []int) ([]int, error) {
	q, err := t.NewQuery(x, opts)
	if err != nil {
		return nil, err
	}
	if cap(trace) < budget+1 {
		trace = make([]int, budget+1)
	}
	trace = trace[:budget+1]
	trace[0] = q.Predict()
	for i := 1; i <= budget; i++ {
		if q.Step() {
			trace[i] = q.Predict()
		} else {
			trace[i] = trace[i-1]
		}
	}
	q.Close()
	return trace, nil
}

// Validate checks structural invariants (MBR and per-class CF consistency,
// capacities). Balanced depth is guaranteed by construction for
// incremental inserts.
func (t *MultiTree) Validate() error {
	if t.size == 0 {
		return nil
	}
	const tol = 1e-6
	var walk func(n *MultiNode, isRoot bool) error
	walk = func(n *MultiNode, isRoot bool) error {
		if n.leaf {
			if !isRoot && (len(n.points) < t.cfg.MinLeaf || len(n.points) > t.cfg.MaxLeaf) {
				return fmt.Errorf("core: multi leaf occupancy %d outside [%d,%d]", len(n.points), t.cfg.MinLeaf, t.cfg.MaxLeaf)
			}
			return nil
		}
		if !isRoot && (len(n.entries) < t.cfg.MinFanout || len(n.entries) > t.cfg.MaxFanout) {
			return fmt.Errorf("core: multi fanout %d outside [%d,%d]", len(n.entries), t.cfg.MinFanout, t.cfg.MaxFanout)
		}
		for i := range n.entries {
			e := &n.entries[i]
			want := t.summarize(e.Child)
			for k := 0; k < t.cfg.Dim; k++ {
				if math.Abs(e.Rect.Lo[k]-want.Rect.Lo[k]) > tol || math.Abs(e.Rect.Hi[k]-want.Rect.Hi[k]) > tol {
					return fmt.Errorf("core: multi stale MBR in dim %d", k)
				}
			}
			for c := range e.CFs {
				if math.Abs(e.CFs[c].N-want.CFs[c].N) > tol {
					return fmt.Errorf("core: multi stale CF count for class %d", t.labels[c])
				}
			}
			if err := walk(e.Child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	var total float64
	for _, c := range t.counts {
		total += c
	}
	if !t.decay.Enabled() {
		if int(total) != t.size {
			return fmt.Errorf("core: class counts sum %v != size %d", total, t.size)
		}
		return nil
	}
	// Decayed masses are fractional: check them against a fresh root
	// summary instead of the point count.
	root := t.summarize(t.root)
	for c := range t.counts {
		if math.Abs(t.counts[c]-root.CFs[c].N) > tol*(1+math.Abs(root.CFs[c].N)) {
			return fmt.Errorf("core: stale decayed count %v for class %d (root has %v)", t.counts[c], t.labels[c], root.CFs[c].N)
		}
	}
	return nil
}
