package core

// pheap is a hand-inlined binary max-heap shared by the single-tree and
// multi-class frontiers. It exists instead of container/heap because the
// interface-based API boxes every pushed and popped element — one
// allocation per frontier entry on the query hot path. The element type
// provides the ordering via its before method (highest priority first,
// FIFO seq tie-break, a total order); generic instantiation keeps the
// comparisons direct calls.
type pheap[T interface{ before(T) bool }] []T

func (h *pheap[T]) push(e T) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *pheap[T]) pop() T {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero T
	s[n] = zero // release node pointers held in the vacated slot
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && s[r].before(s[l]) {
			best = r
		}
		if !s[best].before(s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}
