package core

import (
	"math"
	"math/rand"
	"testing"
)

// twoClassData makes two Gaussian-mixture classes with partial overlap.
func twoClassData(n int, seed int64) (xs [][]float64, ys []int) {
	rng := rand.New(rand.NewSource(seed))
	centersA := [][]float64{{0.2, 0.2}, {0.8, 0.8}}
	centersB := [][]float64{{0.2, 0.8}, {0.8, 0.2}}
	for i := 0; i < n; i++ {
		y := i % 2
		var c []float64
		if y == 0 {
			c = centersA[rng.Intn(2)]
		} else {
			c = centersB[rng.Intn(2)]
		}
		xs = append(xs, []float64{
			c[0] + rng.NormFloat64()*0.08,
			c[1] + rng.NormFloat64()*0.08,
		})
		ys = append(ys, y)
	}
	return xs, ys
}

func buildClassifier(t *testing.T, xs [][]float64, ys []int, opts ClassifierOptions) *Classifier {
	t.Helper()
	byClass := map[int][][]float64{}
	for i := range xs {
		byClass[ys[i]] = append(byClass[ys[i]], xs[i])
	}
	var labels []int
	var trees []*Tree
	for y := 0; y < 10; y++ {
		pts, ok := byClass[y]
		if !ok {
			continue
		}
		tree, err := NewTree(smallConfig(len(xs[0])))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := tree.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		labels = append(labels, y)
		trees = append(trees, tree)
	}
	clf, err := NewClassifier(labels, trees, opts)
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func TestNewClassifierValidation(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	_ = tree.Insert([]float64{0, 0})
	empty, _ := NewTree(smallConfig(2))
	tree3, _ := NewTree(smallConfig(3))
	_ = tree3.Insert([]float64{0, 0, 0})

	if _, err := NewClassifier(nil, nil, ClassifierOptions{}); err == nil {
		t.Errorf("empty classifier accepted")
	}
	if _, err := NewClassifier([]int{0}, []*Tree{empty}, ClassifierOptions{}); err == nil {
		t.Errorf("empty class tree accepted")
	}
	if _, err := NewClassifier([]int{0, 1}, []*Tree{tree, tree3}, ClassifierOptions{}); err == nil {
		t.Errorf("mixed dims accepted")
	}
	if _, err := NewClassifier([]int{0, 0}, []*Tree{tree, tree}, ClassifierOptions{}); err == nil {
		t.Errorf("duplicate labels accepted")
	}
}

func TestDefaultK(t *testing.T) {
	if DefaultK(1) != 1 || DefaultK(2) != 2 || DefaultK(26) != 2 {
		t.Errorf("DefaultK wrong: %d %d %d", DefaultK(1), DefaultK(2), DefaultK(26))
	}
}

func TestClassifierSeparablePerfect(t *testing.T) {
	// Fully separated classes: even tiny budgets should classify
	// perfectly.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []int
	for i := 0; i < 200; i++ {
		y := i % 2
		xs = append(xs, []float64{float64(y)*10 + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
		ys = append(ys, y)
	}
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	for _, budget := range []int{0, 1, 5, -1} {
		for i := 0; i < 50; i++ {
			if got := clf.Classify(xs[i], budget); got != ys[i] {
				t.Fatalf("budget %d: object %d classified %d, want %d", budget, i, got, ys[i])
			}
		}
	}
}

func TestAccuracyImprovesWithBudget(t *testing.T) {
	xs, ys := twoClassData(600, 2)
	clf := buildClassifier(t, xs[:400], ys[:400], ClassifierOptions{})
	acc := func(budget int) float64 {
		correct := 0
		for i := 400; i < 600; i++ {
			if clf.Classify(xs[i], budget) == ys[i] {
				correct++
			}
		}
		return float64(correct) / 200
	}
	a0, aFull := acc(0), acc(-1)
	// The XOR-style layout makes the unimodal level-0 model near-chance
	// while the refined model should be nearly perfect.
	if a0 > 0.8 {
		t.Logf("level-0 accuracy unexpectedly high: %v", a0)
	}
	if aFull < 0.95 {
		t.Errorf("full-model accuracy %v, want ≥ 0.95", aFull)
	}
	if aFull <= a0 {
		t.Errorf("no improvement from refinement: %v → %v", a0, aFull)
	}
}

func TestClassifyTraceSemantics(t *testing.T) {
	xs, ys := twoClassData(300, 3)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	trace := clf.ClassifyTrace(xs[0], 50)
	if len(trace) != 51 {
		t.Fatalf("trace length %d, want 51", len(trace))
	}
	// The final trace entry must equal Classify at the same budget.
	if got := clf.Classify(xs[0], 50); got != trace[50] {
		t.Errorf("Classify(50) = %d, trace[50] = %d", got, trace[50])
	}
	// A huge budget exhausts the models and pads the tail.
	big := clf.ClassifyTrace(xs[0], 100000)
	last := big[len(big)-1]
	if clf.Classify(xs[0], -1) != last {
		t.Errorf("exhausted trace tail disagrees with unlimited Classify")
	}
}

// glo descent should dominate bft in anytime accuracy at small budgets —
// the paper's Section 2.2 finding, asserted end-to-end.
func TestGlobalBeatsBreadthFirstAccuracy(t *testing.T) {
	xs, ys := twoClassData(800, 4)
	train, trainY := xs[:500], ys[:500]
	test, testY := xs[500:], ys[500:]
	meanAcc := func(strategy Strategy) float64 {
		clf := buildClassifier(t, train, trainY, ClassifierOptions{Strategy: strategy})
		var total float64
		for i := range test {
			trace := clf.ClassifyTrace(test[i], 20)
			for _, pred := range trace {
				if pred == testY[i] {
					total++
				}
			}
		}
		return total / float64(len(test)*21)
	}
	glo, bft := meanAcc(DescentGlobal), meanAcc(DescentBFT)
	if glo < bft-0.02 {
		t.Errorf("glo anytime accuracy %v clearly worse than bft %v", glo, bft)
	}
}

func TestQueryStepAccounting(t *testing.T) {
	xs, ys := twoClassData(300, 5)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	q := clf.NewQuery(xs[0])
	if q.NodesRead() != 0 {
		t.Fatalf("fresh query read %d nodes", q.NodesRead())
	}
	for i := 1; i <= 10; i++ {
		if !q.Step() {
			t.Fatalf("step %d failed early", i)
		}
		if q.NodesRead() != i {
			t.Fatalf("after %d steps, NodesRead = %d", i, q.NodesRead())
		}
	}
	// Run to exhaustion; afterwards Step must return false and the node
	// count must stop growing.
	for q.Step() {
	}
	n := q.NodesRead()
	if q.Step() {
		t.Fatalf("step after exhaustion")
	}
	if q.NodesRead() != n {
		t.Fatalf("node count changed after exhaustion")
	}
	if !q.Exhausted() {
		t.Fatalf("not exhausted")
	}
}

func TestPosteriorsNormalised(t *testing.T) {
	xs, ys := twoClassData(300, 6)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	q := clf.NewQuery(xs[1])
	for step := 0; step < 30; step++ {
		post := q.Posteriors()
		var sum float64
		for _, p := range post {
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("invalid posterior %v", post)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posteriors sum to %v", sum)
		}
		q.Step()
	}
}

// qbk with k=2 must alternate between the two most probable classes: with
// 3 classes, the clearly least probable one should receive (almost) no
// refinements at small budgets.
func TestQBKSkipsImprobableClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs [][]float64
	var ys []int
	centers := [][]float64{{0, 0}, {0.5, 0.5}, {10, 10}}
	for i := 0; i < 300; i++ {
		y := i % 3
		xs = append(xs, []float64{
			centers[y][0] + rng.NormFloat64()*0.2,
			centers[y][1] + rng.NormFloat64()*0.2,
		})
		ys = append(ys, y)
	}
	clf := buildClassifier(t, xs, ys, ClassifierOptions{K: 2})
	// Query between class 0 and 1: class 2 is hopeless and must not be
	// refined while 0 and 1 still have refinable structure.
	q := clf.NewQuery([]float64{0.25, 0.25})
	for i := 0; i < 8; i++ {
		q.Step()
	}
	if got := q.cursors[2].NodesRead(); got != 0 {
		t.Errorf("improbable class refined %d times within the first 8 steps", got)
	}
	reads01 := q.cursors[0].NodesRead() + q.cursors[1].NodesRead()
	if reads01 != 8 {
		t.Errorf("top-2 classes read %d nodes, want all 8", reads01)
	}
}

func TestLearnOnline(t *testing.T) {
	xs, ys := twoClassData(200, 8)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	n0 := clf.Tree(0).Len()
	if err := clf.Learn([]float64{0.21, 0.19}, 0); err != nil {
		t.Fatal(err)
	}
	if clf.Tree(0).Len() != n0+1 {
		t.Errorf("Learn did not grow the class tree")
	}
	if err := clf.Learn([]float64{0, 0}, 99); err == nil {
		t.Errorf("unknown label accepted")
	}
	// Heavy online learning keeps invariants intact.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		if err := clf.Learn([]float64{rng.Float64(), rng.Float64()}, i%2); err != nil {
			t.Fatal(err)
		}
	}
	for _, y := range clf.Labels() {
		if err := clf.Tree(y).Validate(); err != nil {
			t.Fatalf("tree %d invalid after online learning: %v", y, err)
		}
	}
}

func TestLearnShiftsPriors(t *testing.T) {
	xs, ys := twoClassData(100, 10)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	// Massively grow class 1; a query at the exact overlap point should
	// then prefer class 1 at budget 0 via the prior.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		x := []float64{0.5 + rng.NormFloat64()*0.3, 0.5 + rng.NormFloat64()*0.3}
		if err := clf.Learn(x, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := clf.Classify([]float64{0.5, 0.5}, 0); got != 1 {
		t.Errorf("prior shift ignored: predicted %d", got)
	}
}

func TestOptionsDefaulting(t *testing.T) {
	xs, ys := twoClassData(100, 12)
	clf := buildClassifier(t, xs, ys, ClassifierOptions{})
	if clf.Options().K != 2 {
		t.Errorf("default K = %d, want 2", clf.Options().K)
	}
	if clf.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", clf.NumClasses())
	}
	clf = buildClassifier(t, xs, ys, ClassifierOptions{K: 50})
	if clf.Options().K != 2 {
		t.Errorf("K should clamp to class count, got %d", clf.Options().K)
	}
	if clf.Tree(99) != nil {
		t.Errorf("Tree(unknown) should be nil")
	}
}
