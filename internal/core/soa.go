package core

import (
	"math"

	"bayestree/internal/kernels"
	"bayestree/internal/stats"
)

// This file implements the structure-of-arrays mirror behind vectorized
// descent. The pointer-based tree scores one child entry at a time
// through scattered heap objects and interface calls; the mirror
// flattens every node's frozen per-class Gaussians (means, inverse
// variances, log variances, log-normalisers, log counts), MBR bounds
// and leaf kernel centres into contiguous float64 slices, so one
// refinement step scores all children of a frontier node in a single
// cache-friendly sweep (kernels.SweepFrozenLogPDFObs for inner entries,
// kernels.Sweeper for leaves). Every sweep replicates the pointer
// path's floating-point operations in the same order, so a query served
// from the mirror is digit-identical to the pointer path — the
// equivalence property tests in soa_equiv_test.go assert it bitwise.
//
// The mirror extends the frozen-cache invalidation contract with its
// THIRD trigger: besides Insert (PR 1) and epoch-advance/decay-sweep
// (PR 3), every mutation now also unpublishes the SoA mirror (the
// atomic pointer goes nil, so in-flight and later queries fall back to
// the exact pointer path) and records what went stale. For the
// MultiTree the bookkeeping is per-subtree: a split-free insert only
// dirties the nodes on its insertion path, and RefreshSoA patches those
// node blocks in place (leaf blocks are padded to MaxLeaf so a leaf can
// grow without moving); splits, decay sweeps and epoch advances are
// structural and force a full rebuild. The per-class Tree mirror is
// rebuilt whole (forced reinsertion makes insert paths non-local).
// RefreshSoA must be called with exclusive access to the tree — the
// serving layer calls it under the shard write lock right after the
// mutation, and piggybacks full rebuilds on recovery replay and the
// decay maintenance sweep.

// ---------------------------------------------------------------------
// MultiTree mirror

// soaMultiNode locates one MultiNode's blocks inside the flat arrays of
// a multiSoA. Inner nodes use entBase/entCount (entry-major arrays) and
// ecBase (class-major entry-class slots); leaves use ptBase (a point
// block of MaxLeaf capacity) and coBase (nc+1 class offsets).
type soaMultiNode struct {
	leaf     bool
	weighted bool
	entBase  int32
	entCount int32
	ecBase   int32
	ptBase   int32
	coBase   int32
}

// multiSoA is the flat mirror of one MultiTree. Entry-class data lives
// in "slots" laid out class-major per node (slot = ecBase + c*entCount
// + e), so one class's entries form a contiguous run a single sweep can
// score; leaf points are stable-partitioned by class so each class's
// kernel centres are contiguous too.
type multiSoA struct {
	dim     int
	nc      int
	maxLeaf int
	nodes   []soaMultiNode
	index   map[*MultiNode]int32

	// Entry-class slot arrays (slot*dim+d for the vectors).
	means   []float64
	invVar  []float64
	logVar  []float64
	logNorm []float64 // per slot
	logN    []float64 // per slot; −Inf marks an absent class

	// Entry-major arrays (ent*dim+d for the bounds).
	child  []int32
	rectLo []float64
	rectHi []float64
	logEnt []float64 // per entry: ln(1 + class entropy), for EntropyPriority

	// Leaf arrays (point-slot*dim+d for the centres).
	pts      []float64
	ptLogW   []float64 // per point slot; ln of the decayed weight, 0 when unweighted
	classOff []int32   // per leaf: nc+1 absolute point-slot offsets

	fillCur []int32 // partition scratch for fillMultiLeaf (exclusive access)
}

// buildMultiSoA flattens the whole tree in BFS order (root = node 0).
func buildMultiSoA(t *MultiTree) *multiSoA {
	dim, nc := t.cfg.Dim, len(t.labels)
	s := &multiSoA{dim: dim, nc: nc, maxLeaf: t.cfg.MaxLeaf, index: make(map[*MultiNode]int32)}
	queue := []*MultiNode{t.root}
	var ents, slots, pts, cos int
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		s.index[n] = int32(qi)
		if n.leaf {
			s.nodes = append(s.nodes, soaMultiNode{leaf: true, ptBase: int32(pts), coBase: int32(cos)})
			pts += s.maxLeaf
			cos += nc + 1
			continue
		}
		k := len(n.entries)
		s.nodes = append(s.nodes, soaMultiNode{entBase: int32(ents), entCount: int32(k), ecBase: int32(slots)})
		ents += k
		slots += k * nc
		for i := range n.entries {
			queue = append(queue, n.entries[i].Child)
		}
	}
	s.means = make([]float64, slots*dim)
	s.invVar = make([]float64, slots*dim)
	s.logVar = make([]float64, slots*dim)
	s.logNorm = make([]float64, slots)
	s.logN = make([]float64, slots)
	s.child = make([]int32, ents)
	s.rectLo = make([]float64, ents*dim)
	s.rectHi = make([]float64, ents*dim)
	s.logEnt = make([]float64, ents)
	s.pts = make([]float64, pts*dim)
	s.ptLogW = make([]float64, pts)
	s.classOff = make([]int32, cos)
	s.fillCur = make([]int32, nc)
	for qi, n := range queue {
		s.fillMultiNode(t, n, int32(qi))
	}
	return s
}

// fillMultiNode (re)fills one node's blocks from the live tree node.
func (s *multiSoA) fillMultiNode(t *MultiTree, n *MultiNode, idx int32) {
	nd := &s.nodes[idx]
	if n.leaf {
		s.fillMultiLeaf(t, n, nd)
		return
	}
	dim, nc := s.dim, s.nc
	k := int(nd.entCount)
	for e := range n.entries {
		en := &n.entries[e]
		ent := int(nd.entBase) + e
		s.child[ent] = s.index[en.Child]
		copy(s.rectLo[ent*dim:ent*dim+dim], en.Rect.Lo)
		copy(s.rectHi[ent*dim:ent*dim+dim], en.Rect.Hi)
		s.logEnt[ent] = math.Log1p(multiEntryEntropy(en))
		for c := 0; c < nc; c++ {
			slot := int(nd.ecBase) + c*k + e
			if en.CFs[c].N <= 0 {
				s.logN[slot] = math.Inf(-1)
				continue
			}
			f := t.classFrozen(en, c)
			copy(s.means[slot*dim:slot*dim+dim], f.Mean)
			copy(s.invVar[slot*dim:slot*dim+dim], f.InvVar)
			copy(s.logVar[slot*dim:slot*dim+dim], f.LogVar)
			s.logNorm[slot] = f.LogNorm()
			s.logN[slot] = f.LogN
		}
	}
}

// fillMultiLeaf stable-partitions a leaf's observations by class into
// its padded point block, so each class's kernel centres are one
// contiguous sweep range. Within a class the tree's point order is
// preserved — the accumulator folds per-class terms in the pointer
// path's order.
func (s *multiSoA) fillMultiLeaf(t *MultiTree, n *MultiNode, nd *soaMultiNode) {
	dim, nc := s.dim, s.nc
	nd.weighted = n.weights != nil
	co := int(nd.coBase)
	for c := 0; c <= nc; c++ {
		s.classOff[co+c] = 0
	}
	for _, p := range n.points {
		s.classOff[co+t.index[p.Label]+1]++
	}
	s.classOff[co] = nd.ptBase
	for c := 0; c < nc; c++ {
		s.classOff[co+c+1] += s.classOff[co+c]
	}
	curs := s.fillCur
	for c := 0; c < nc; c++ {
		curs[c] = s.classOff[co+c]
	}
	for i, p := range n.points {
		c := t.index[p.Label]
		slot := int(curs[c])
		curs[c]++
		copy(s.pts[slot*dim:slot*dim+dim], p.X)
		if nd.weighted {
			s.ptLogW[slot] = math.Log(n.weights[i])
		} else {
			s.ptLogW[slot] = 0
		}
	}
}

// patchMultiNode refills one dirtied node's blocks in place, reporting
// false when the node outgrew its blocks (or is unknown) and a full
// rebuild is needed instead.
func (s *multiSoA) patchMultiNode(t *MultiTree, n *MultiNode) bool {
	idx, ok := s.index[n]
	if !ok {
		return false
	}
	nd := &s.nodes[idx]
	if n.leaf != nd.leaf {
		return false
	}
	if n.leaf {
		if len(n.points) > s.maxLeaf {
			return false
		}
		s.fillMultiLeaf(t, n, nd)
		return true
	}
	if len(n.entries) != int(nd.entCount) {
		return false
	}
	for e := range n.entries {
		if _, ok := s.index[n.entries[e].Child]; !ok {
			return false
		}
	}
	s.fillMultiNode(t, n, idx)
	return true
}

// multiEntryEntropy returns the class-label entropy (nats) of an
// entry's per-class counts — shared by the query path and the SoA
// builder so the precomputed ln(1+H) matches the on-the-fly value
// bitwise.
func multiEntryEntropy(e *MultiEntry) float64 {
	var total float64
	for c := range e.CFs {
		total += e.CFs[c].N
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for c := range e.CFs {
		if e.CFs[c].N <= 0 {
			continue
		}
		p := e.CFs[c].N / total
		h -= p * math.Log(p)
	}
	return h
}

// minDist2Flat is mbr.Rect.MinDist2Obs over flat bound slices — the
// same switch per dimension, so geometric priorities match bitwise.
func minDist2Flat(lo, hi, x []float64, obs []int) float64 {
	var s float64
	if obs == nil {
		for i := range lo {
			switch {
			case x[i] < lo[i]:
				d := lo[i] - x[i]
				s += d * d
			case x[i] > hi[i]:
				d := x[i] - hi[i]
				s += d * d
			}
		}
		return s
	}
	for _, i := range obs {
		switch {
		case x[i] < lo[i]:
			d := lo[i] - x[i]
			s += d * d
		case x[i] > hi[i]:
			d := x[i] - hi[i]
			s += d * d
		}
	}
	return s
}

// ---------------------------------------------------------------------
// MultiTree maintenance

// RefreshSoA brings the structure-of-arrays mirror up to date and
// (re)publishes it, enabling the vectorized descent fast path for
// subsequent queries. The first call turns mirror tracking on. It must
// be called with exclusive access to the tree (the serving layer holds
// the shard write lock); concurrent queries keep whatever mirror they
// loaded at start. Split-free inserts since the last refresh are
// patched into the retained mirror in place; structural changes
// (splits, decay sweeps, epoch advances) rebuild it whole.
func (t *MultiTree) RefreshSoA() {
	t.soaTrack = true
	if t.size == 0 {
		t.soaRetained = nil
		t.soaStructural = false
		clear(t.soaDirty)
		t.soa.Store(nil)
		return
	}
	cur := t.soaRetained
	if cur != nil && !t.soaStructural {
		if len(t.soaDirty) == 0 {
			t.soa.Store(cur)
			return
		}
		ok := true
		for n := range t.soaDirty {
			if !cur.patchMultiNode(t, n) {
				ok = false
				break
			}
		}
		if ok {
			clear(t.soaDirty)
			t.soaPatches++
			t.soa.Store(cur)
			return
		}
	}
	ns := buildMultiSoA(t)
	t.soaRetained = ns
	t.soaStructural = false
	clear(t.soaDirty)
	t.soaRebuilds++
	t.soa.Store(ns)
}

// SoACounters reports the mirror's lifetime maintenance counters: full
// rebuilds, in-place patches and invalidation events (mutations that
// unpublished the mirror). All zero until RefreshSoA first enables
// tracking.
func (t *MultiTree) SoACounters() (rebuilds, patches, invalidations int64) {
	return t.soaRebuilds, t.soaPatches, t.soaInvalid
}

// soaInvalidate is the structural form of the mirror's third
// invalidation trigger: unpublish and force a full rebuild on the next
// RefreshSoA. Inserts use the finer per-subtree marking in
// insertPointW instead.
func (t *MultiTree) soaInvalidate() {
	if !t.soaTrack {
		return
	}
	t.soa.Store(nil)
	t.soaStructural = true
	t.soaInvalid++
}

// soaMarkInsert records one insert's staleness: unpublish, then either
// dirty the nodes along the insertion path (patchable) or mark the
// mirror structural when the insert split nodes.
func (t *MultiTree) soaMarkInsert(path []*MultiNode, split bool) {
	if !t.soaTrack {
		return
	}
	t.soa.Store(nil)
	t.soaInvalid++
	if split {
		t.soaStructural = true
		return
	}
	if t.soaStructural {
		return
	}
	if t.soaDirty == nil {
		t.soaDirty = make(map[*MultiNode]struct{})
	}
	for _, n := range path {
		t.soaDirty[n] = struct{}{}
	}
}

// ---------------------------------------------------------------------
// MultiQuery fast path

// refineSoA expands one frontier node through the mirror: every class's
// entry block is scored in one flat sweep, then per-entry terms are
// folded into the accumulators entry-major/class-inner — the exact
// order (and arithmetic) of the pointer path's pushEntry loop.
func (q *MultiQuery) refineSoA(idx int) {
	s := q.soa
	nd := &s.nodes[idx]
	if nd.leaf {
		q.refineSoALeaf(nd)
		return
	}
	dim, nc := s.dim, s.nc
	k := int(nd.entCount)
	out := q.ensureOut(nc * k)
	for c := 0; c < nc; c++ {
		if math.IsInf(q.logNc[c], 1) {
			continue
		}
		base := int(nd.ecBase) + c*k
		kernels.SweepFrozenLogPDFObs(q.x, s.means[base*dim:], s.invVar[base*dim:], s.logVar[base*dim:],
			s.logNorm[base:], k, dim, q.obs, out[c*k:(c+1)*k])
	}
	for e := 0; e < k; e++ {
		ent := int(nd.entBase) + e
		off := len(q.terms)
		for c := 0; c < nc; c++ {
			slot := int(nd.ecBase) + c*k + e
			if math.IsInf(q.logNc[c], 1) || math.IsInf(s.logN[slot], -1) {
				q.terms = append(q.terms, math.Inf(-1))
				continue
			}
			term := s.logN[slot] - q.logNc[c] + out[c*k+e]
			q.terms = append(q.terms, term)
			q.addTerm(c, term)
		}
		el := mElem{termOff: int32(off), node: s.child[ent], seq: q.seq}
		q.seq++
		el.prio = q.prioSoA(ent, q.terms[off:off+nc])
		switch q.opts.Strategy {
		case DescentGlobal:
			q.heap.push(el)
		default:
			q.fifo = append(q.fifo, el)
		}
	}
}

// prioSoA is prioFor over the mirror's flat bounds and precomputed
// entropy term.
func (q *MultiQuery) prioSoA(ent int, terms []float64) float64 {
	s := q.soa
	if q.opts.Priority == PriorityGeometric {
		d := s.dim
		return -minDist2Flat(s.rectLo[ent*d:ent*d+d], s.rectHi[ent*d:ent*d+d], q.x, q.obs)
	}
	finite := q.finiteBuf[:0]
	for _, tm := range terms {
		if !math.IsInf(tm, -1) {
			finite = append(finite, tm)
		}
	}
	q.finiteBuf = finite
	prio := stats.LogSumExp(finite)
	if q.t.mopts.EntropyPriority {
		prio += s.logEnt[ent]
	}
	return prio
}

// refineSoALeaf scores a leaf's kernel centres one contiguous class
// range at a time through the frozen kernel's sweep.
func (q *MultiQuery) refineSoALeaf(nd *soaMultiNode) {
	s := q.soa
	dim, nc := s.dim, s.nc
	co := int(nd.coBase)
	for c := 0; c < nc; c++ {
		start, end := int(s.classOff[co+c]), int(s.classOff[co+c+1])
		if start == end || math.IsInf(q.logNc[c], 1) {
			continue
		}
		cnt := end - start
		out := q.ensureOut(cnt)
		q.sweep[c].SweepLogDensityObs(q.x, s.pts[start*dim:end*dim], cnt, dim, q.obs, out)
		if nd.weighted {
			for j := 0; j < cnt; j++ {
				q.addTerm(c, -q.logNc[c]+out[j]+s.ptLogW[start+j])
			}
		} else {
			for j := 0; j < cnt; j++ {
				q.addTerm(c, -q.logNc[c]+out[j])
			}
		}
	}
}

// ensureOut returns the query's sweep output scratch grown to n.
func (q *MultiQuery) ensureOut(n int) []float64 {
	if cap(q.outBuf) < n {
		q.outBuf = make([]float64, n)
	}
	return q.outBuf[:n]
}

// ---------------------------------------------------------------------
// Tree mirror

// soaNode locates one Node's blocks inside a treeSoA.
type soaNode struct {
	leaf     bool
	weighted bool
	entBase  int32
	entCount int32
	ptBase   int32
	ptCount  int32
}

// treeSoA is the flat mirror of one per-class Tree: tight arrays, full
// rebuilds only (forced reinsertion makes insert paths non-local, so
// per-subtree patching would not pay).
type treeSoA struct {
	dim     int
	nodes   []soaNode
	means   []float64
	invVar  []float64
	logVar  []float64
	logNorm []float64
	logN    []float64
	child   []int32
	rectLo  []float64
	rectHi  []float64
	pts     []float64
	ptLogW  []float64
}

// buildTreeSoA flattens the tree in BFS order (root = node 0).
func buildTreeSoA(t *Tree) *treeSoA {
	dim := t.cfg.Dim
	s := &treeSoA{dim: dim}
	index := make(map[*Node]int32)
	queue := []*Node{t.root}
	var ents, pts int
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		index[n] = int32(qi)
		if n.leaf {
			s.nodes = append(s.nodes, soaNode{leaf: true, weighted: n.weights != nil,
				ptBase: int32(pts), ptCount: int32(len(n.points))})
			pts += len(n.points)
			continue
		}
		s.nodes = append(s.nodes, soaNode{entBase: int32(ents), entCount: int32(len(n.entries))})
		ents += len(n.entries)
		for i := range n.entries {
			queue = append(queue, n.entries[i].Child)
		}
	}
	s.means = make([]float64, ents*dim)
	s.invVar = make([]float64, ents*dim)
	s.logVar = make([]float64, ents*dim)
	s.logNorm = make([]float64, ents)
	s.logN = make([]float64, ents)
	s.child = make([]int32, ents)
	s.rectLo = make([]float64, ents*dim)
	s.rectHi = make([]float64, ents*dim)
	s.pts = make([]float64, pts*dim)
	s.ptLogW = make([]float64, pts)
	for qi, n := range queue {
		nd := &s.nodes[qi]
		if n.leaf {
			for i, p := range n.points {
				slot := int(nd.ptBase) + i
				copy(s.pts[slot*dim:slot*dim+dim], p)
				if n.weights != nil {
					s.ptLogW[slot] = math.Log(n.weights[i])
				}
			}
			continue
		}
		for e := range n.entries {
			en := &n.entries[e]
			ent := int(nd.entBase) + e
			s.child[ent] = index[en.Child]
			copy(s.rectLo[ent*dim:ent*dim+dim], en.Rect.Lo)
			copy(s.rectHi[ent*dim:ent*dim+dim], en.Rect.Hi)
			f := en.Frozen()
			copy(s.means[ent*dim:ent*dim+dim], f.Mean)
			copy(s.invVar[ent*dim:ent*dim+dim], f.InvVar)
			copy(s.logVar[ent*dim:ent*dim+dim], f.LogVar)
			s.logNorm[ent] = f.LogNorm()
			s.logN[ent] = f.LogN
		}
	}
	return s
}

// RefreshSoA builds (or refreshes) the tree's structure-of-arrays
// mirror and publishes it, enabling vectorized descent for subsequent
// cursors. The first call turns tracking on; any mutation unpublishes
// the mirror until the next call. Must be called with exclusive access
// to the tree.
func (t *Tree) RefreshSoA() {
	t.soaTrack = true
	if t.size == 0 {
		t.soa.Store(nil)
		t.soaStale = false
		return
	}
	if !t.soaStale && t.soa.Load() != nil {
		return
	}
	t.soa.Store(buildTreeSoA(t))
	t.soaStale = false
}

// soaInvalidate unpublishes the mirror after a mutation (the third
// trigger of the invalidation contract, alongside the queryState nil
// stores).
func (t *Tree) soaInvalidate() {
	if !t.soaTrack {
		return
	}
	t.soa.Store(nil)
	t.soaStale = true
}

// RefreshSoA refreshes the structure-of-arrays mirror of every class
// tree (see Tree.RefreshSoA). Call it after training or mutating the
// forest, with no queries in flight.
func (c *Classifier) RefreshSoA() {
	for _, t := range c.trees {
		t.RefreshSoA()
	}
}

// ---------------------------------------------------------------------
// Cursor fast path

// refineSoA expands one frontier node through the per-class tree
// mirror: inner entries via one flat frozen-Gaussian sweep, leaf kernel
// centres via the frozen kernel's sweep — arithmetic and order exactly
// as Cursor.Refine's pointer path.
func (c *Cursor) refineSoA(idx int) {
	s := c.soa
	nd := &s.nodes[idx]
	dim := s.dim
	if nd.leaf {
		cnt := int(nd.ptCount)
		if cnt == 0 {
			return
		}
		out := c.ensureOut(cnt)
		start := int(nd.ptBase)
		c.tree.sweep.SweepLogDensityObs(c.x, s.pts[start*dim:(start+cnt)*dim], cnt, dim, c.obs, out)
		if nd.weighted {
			for j := 0; j < cnt; j++ {
				c.addTerm(s.ptLogW[start+j] - c.logN + out[j])
			}
		} else {
			for j := 0; j < cnt; j++ {
				c.addTerm(-c.logN + out[j])
			}
		}
		return
	}
	k := int(nd.entCount)
	out := c.ensureOut(k)
	base := int(nd.entBase)
	kernels.SweepFrozenLogPDFObs(c.x, s.means[base*dim:], s.invVar[base*dim:], s.logVar[base*dim:],
		s.logNorm[base:], k, dim, c.obs, out)
	for e := 0; e < k; e++ {
		ent := base + e
		logTerm := s.logN[ent] - c.logN + out[e]
		prio := logTerm
		if c.priority == PriorityGeometric {
			prio = -minDist2Flat(s.rectLo[ent*dim:ent*dim+dim], s.rectHi[ent*dim:ent*dim+dim], c.x, c.obs)
		}
		c.push(refElem{logTerm: logTerm, prio: prio, node: s.child[ent]})
		c.addTerm(logTerm)
	}
}

// ensureOut returns the cursor's sweep output scratch grown to n.
func (c *Cursor) ensureOut(n int) []float64 {
	if cap(c.outBuf) < n {
		c.outBuf = make([]float64, n)
	}
	return c.outBuf[:n]
}
