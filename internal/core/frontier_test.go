package core

import (
	"math"
	"math/rand"
	"testing"
)

// buildTree constructs a tree over n random points.
func buildTree(t *testing.T, n, d int, seed int64) *Tree {
	t.Helper()
	tree, err := NewTree(smallConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range randPoints(rng, n, d) {
		if err := tree.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

// directKernelLogDensity computes log p(x) = log( (1/n) Σ K(x; xi, h) )
// directly over all stored points — the ground truth the fully refined
// frontier must reproduce (Definition 3 at kernel level).
func directKernelLogDensity(tree *Tree, x []float64) float64 {
	h := tree.Bandwidth()
	var logs []float64
	var collect func(n *Node)
	collect = func(n *Node) {
		if n.IsLeaf() {
			for _, p := range n.Points() {
				logs = append(logs, tree.Config().Kernel.LogDensity(x, p, h))
			}
			return
		}
		for _, e := range n.Entries() {
			collect(e.Child)
		}
	}
	collect(tree.Root())
	// logsumexp - log n
	m := math.Inf(-1)
	for _, l := range logs {
		if l > m {
			m = l
		}
	}
	var s float64
	for _, l := range logs {
		s += math.Exp(l - m)
	}
	return m + math.Log(s) - math.Log(float64(len(logs)))
}

// The central correctness test: a fully refined anytime cursor computes
// exactly the kernel density estimate, for every descent strategy.
func TestFullRefinementMatchesDirectKDE(t *testing.T) {
	tree := buildTree(t, 300, 3, 1)
	rng := rand.New(rand.NewSource(2))
	for _, strat := range []Strategy{DescentGlobal, DescentBFT, DescentDFT} {
		for _, prio := range []Priority{PriorityProbabilistic, PriorityGeometric} {
			for q := 0; q < 10; q++ {
				x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				cur := tree.NewCursor(x, strat, prio)
				cur.RefineAll()
				got := cur.LogDensity()
				want := directKernelLogDensity(tree, x)
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Fatalf("%v/%v query %d: got %v, want %v", strat, prio, q, got, want)
				}
			}
		}
	}
}

// The incremental accumulator must agree with a from-scratch evaluation of
// the frontier mixture at every intermediate step, not only at the end.
func TestIncrementalDensityConsistentAtEveryStep(t *testing.T) {
	tree := buildTree(t, 200, 2, 3)
	x := []float64{0.4, 0.6}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	ref := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	_ = ref
	for step := 0; ; step++ {
		// Recompute the same frontier state with a fresh cursor replaying
		// the same number of refinements (deterministic strategies make
		// the frontiers identical).
		fresh := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
		for i := 0; i < step; i++ {
			fresh.Refine()
		}
		a, b := cur.LogDensity(), fresh.LogDensity()
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("step %d: incremental %v vs replay %v", step, a, b)
		}
		if !cur.Refine() {
			break
		}
	}
}

// Node accounting: each Refine reads exactly one node, and the total
// number of reads to exhaustion equals the node count of the tree.
func TestNodesReadCount(t *testing.T) {
	tree := buildTree(t, 250, 2, 4)
	s := tree.Stats()
	cur := tree.NewCursor([]float64{0.5, 0.5}, DescentBFT, PriorityProbabilistic)
	reads := cur.RefineAll()
	if reads != s.Nodes {
		t.Fatalf("read %d nodes to exhaustion, tree has %d", reads, s.Nodes)
	}
	if !cur.Exhausted() {
		t.Fatalf("cursor not exhausted after RefineAll")
	}
	if cur.Refine() {
		t.Fatalf("refine after exhaustion succeeded")
	}
}

// The density at step 0 must equal the root entry's single Gaussian — the
// level-0 complete model.
func TestLevelZeroModel(t *testing.T) {
	tree := buildTree(t, 150, 2, 5)
	x := []float64{0.3, 0.3}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	e, _ := tree.RootEntry()
	want := e.Gaussian().LogPDF(x)
	if got := cur.LogDensity(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("level-0 density %v, want %v", got, want)
	}
	if cur.NodesRead() != 0 {
		t.Fatalf("reads at level 0 = %d", cur.NodesRead())
	}
}

// Global descent is greedy: with the probabilistic priority, the first
// refinement after reading the root must expand the child entry whose
// weighted density at the query is highest (the defining property of the
// glo strategy; its accuracy advantage is asserted end-to-end in the
// classifier tests).
func TestGlobalDescentPopsHighestContribution(t *testing.T) {
	tree := buildTree(t, 800, 2, 6)
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 20; q++ {
		x := []float64{rng.Float64(), rng.Float64()}
		cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
		cur.Refine() // read the root: frontier = root's entries
		// Compute the expected winner among root entries.
		root := tree.Root()
		if root.IsLeaf() {
			return
		}
		bestIdx, best := -1, math.Inf(-1)
		for i, e := range root.Entries() {
			g := e.CF.Gaussian()
			term := math.Log(e.CF.N) + g.LogPDF(x)
			if term > best {
				bestIdx, best = i, term
			}
		}
		// Drop the expected winner's contribution by refining once more
		// and verify the density change matches replacing that entry
		// (replay with a fresh cursor bound to a tree whose winner is
		// checked structurally instead: the heap top's child must be the
		// winning entry's child).
		top := cur.heap[0]
		if top.child != root.Entries()[bestIdx].Child {
			t.Fatalf("query %d: glo would refine a non-maximal entry", q)
		}
	}
}

// Empty tree yields no cursor.
func TestCursorOnEmptyTree(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	if cur := tree.NewCursor([]float64{0, 0}, DescentGlobal, PriorityProbabilistic); cur != nil {
		t.Fatalf("cursor on empty tree")
	}
}

// A tree whose root is still a leaf refines in exactly one step.
func TestTinyTreeCursor(t *testing.T) {
	tree, _ := NewTree(smallConfig(2))
	for i := 0; i < 3; i++ {
		if err := tree.Insert([]float64{float64(i) * 0.1, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	cur := tree.NewCursor([]float64{0.1, 0.5}, DescentGlobal, PriorityProbabilistic)
	if !cur.Refine() {
		t.Fatal("first refine failed")
	}
	if cur.Refine() {
		t.Fatal("second refine on leaf-root tree succeeded")
	}
	want := directKernelLogDensity(tree, []float64{0.1, 0.5})
	if got := cur.LogDensity(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tiny tree density %v, want %v", got, want)
	}
}

// Queries far outside the data range must stay numerically sane (the
// shifted accumulator can underflow to zero density but never NaN).
func TestFarQueryNumericallySane(t *testing.T) {
	tree := buildTree(t, 200, 2, 8)
	x := []float64{1e6, -1e6}
	cur := tree.NewCursor(x, DescentGlobal, PriorityProbabilistic)
	for cur.Refine() {
	}
	ld := cur.LogDensity()
	if math.IsNaN(ld) {
		t.Fatalf("far query produced NaN")
	}
	if ld > -100 {
		t.Fatalf("far query density suspiciously high: %v", ld)
	}
}

func TestStrategyPriorityStrings(t *testing.T) {
	if DescentGlobal.String() != "glo" || DescentBFT.String() != "bft" || DescentDFT.String() != "dft" {
		t.Errorf("strategy names wrong")
	}
	if PriorityProbabilistic.String() != "prob" || PriorityGeometric.String() != "geom" {
		t.Errorf("priority names wrong")
	}
	if Strategy(9).String() != "unknown" || Priority(9).String() != "unknown" {
		t.Errorf("unknown names wrong")
	}
}
