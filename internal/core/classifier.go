package core

import (
	"fmt"
	"math"
	"sync"

	"bayestree/internal/stats"
)

// DefaultK returns the paper's default for the qbk strategy. The paper
// reports k = 2 as best "on all tested data sets" (with the formula
// k = min{2, ⌊log m⌋} collapsing to 2 for every evaluated data set), so we
// return 2 clamped to the number of classes.
func DefaultK(numClasses int) int {
	if numClasses < 2 {
		return 1
	}
	return 2
}

// ClassifierOptions configure an anytime Bayes tree classifier.
type ClassifierOptions struct {
	// Strategy is the tree descent order; the paper found DescentGlobal
	// best throughout.
	Strategy Strategy
	// Priority orders global best-first descent; the paper's default is
	// the probabilistic measure.
	Priority Priority
	// K is the qbk parameter: the number of currently most probable
	// classes refined in turns. Zero means DefaultK.
	K int
	// ExactDescent forces the pointer-based descent path even when a
	// structure-of-arrays mirror is published — the exact-mode fallback.
	// Both paths are digit-identical by construction (see soa.go and the
	// equivalence property tests); this switch exists so deployments can
	// opt out of the vectorized path wholesale, and so ablations can
	// measure it.
	ExactDescent bool
}

// Classifier is the paper's anytime Bayesian classifier: one Bayes tree
// per class, a-priori probabilities estimated from class frequencies, and
// the qbk improvement strategy deciding which class may refine its model
// at each time step (Section 2.2). Classification at any interruption
// point returns argmax P(c)·p(x|c) over the classes' current mixed-
// granularity models.
type Classifier struct {
	labels    []int
	trees     []*Tree
	logPriors []float64
	opts      ClassifierOptions
	// queryPool recycles Query objects (and, through them, the per-class
	// cursors) so a stream of classifications allocates nothing per object.
	queryPool sync.Pool
	// priorBuf is reusable scratch for refreshPriors, keeping the
	// per-Learn prior refresh allocation-free.
	priorBuf []float64
}

// NewClassifier builds a classifier from per-class trees. labels[i] is the
// class label served by trees[i]; priors are the trees' relative sizes.
// Every tree must be non-empty and share one dimensionality.
func NewClassifier(labels []int, trees []*Tree, opts ClassifierOptions) (*Classifier, error) {
	if len(labels) == 0 || len(labels) != len(trees) {
		return nil, fmt.Errorf("core: %d labels for %d trees", len(labels), len(trees))
	}
	dim := -1
	seen := make(map[int]bool, len(labels))
	for i, t := range trees {
		if t == nil || t.Len() == 0 {
			return nil, fmt.Errorf("core: empty tree for class %d", labels[i])
		}
		if dim == -1 {
			dim = t.cfg.Dim
		} else if t.cfg.Dim != dim {
			return nil, fmt.Errorf("core: tree for class %d has dim %d, want %d", labels[i], t.cfg.Dim, dim)
		}
		if seen[labels[i]] {
			return nil, fmt.Errorf("core: duplicate class label %d", labels[i])
		}
		seen[labels[i]] = true
	}
	if opts.K <= 0 {
		opts.K = DefaultK(len(labels))
	}
	if opts.K > len(labels) {
		opts.K = len(labels)
	}
	c := &Classifier{
		labels:    append([]int(nil), labels...),
		trees:     append([]*Tree(nil), trees...),
		logPriors: make([]float64, len(trees)),
		opts:      opts,
	}
	// Priors come from the trees' effective masses (Weight), which for
	// undecayed trees is exactly the count-based estimate and for
	// decayed trees (e.g. a reloaded snapshot) folds the outstanding
	// decay factor in.
	c.refreshPriors()
	return c, nil
}

// Labels returns the class labels in classifier order.
func (c *Classifier) Labels() []int { return append([]int(nil), c.labels...) }

// Tree returns the Bayes tree serving the given label, or nil if the
// label is unknown. Exposed for multi-step deployments that use the upper
// levels of the per-class trees for pre-classification (as in the
// HealthNet application [13]).
func (c *Classifier) Tree(label int) *Tree {
	for i, l := range c.labels {
		if l == label {
			return c.trees[i]
		}
	}
	return nil
}

// Learn inserts a labelled observation into its class tree incrementally
// (R*-style insertion) and refreshes the prior estimates — the online
// learning capability of the Bayes tree ([16], Section 1). Learning while
// queries on the same classifier are in flight is not synchronised; in a
// stream loop, learn between classifications.
func (c *Classifier) Learn(x []float64, label int) error {
	idx := -1
	for i, l := range c.labels {
		if l == label {
			idx = i
			break
		}
	}
	if idx == -1 {
		return fmt.Errorf("core: unknown class label %d", label)
	}
	if err := c.trees[idx].Insert(x); err != nil {
		return err
	}
	c.refreshPriors()
	return nil
}

// NumClasses returns the number of classes.
func (c *Classifier) NumClasses() int { return len(c.labels) }

// Options returns the classifier options in effect (after defaulting).
func (c *Classifier) Options() ClassifierOptions { return c.opts }

// Query is an in-progress anytime classification of one object: a cursor
// per class plus the qbk turn state. It lets callers interleave refinement
// with their own deadline checks — the essence of anytime operation on a
// varying stream.
type Query struct {
	c       *Classifier
	cursors []*Cursor
	turn    int
	reads   int
	// scoreBuf and rankBuf are reusable scratch for scores() and Step(),
	// keeping the per-step qbk bookkeeping allocation-free.
	scoreBuf []float64
	rankBuf  []ranked
}

type ranked struct {
	idx   int
	score float64
}

// NewQuery starts an anytime classification of x. Queries are drawn from a
// per-classifier pool; call Close when done to recycle the query and its
// cursors (optional, but it makes steady-state classification
// allocation-free).
func (c *Classifier) NewQuery(x []float64) *Query {
	q, _ := c.queryPool.Get().(*Query)
	if q == nil {
		q = &Query{cursors: make([]*Cursor, len(c.trees))}
	}
	q.c = c
	q.turn = 0
	q.reads = 0
	for i, t := range c.trees {
		q.cursors[i] = t.newCursorExact(x, c.opts.Strategy, c.opts.Priority, c.opts.ExactDescent)
	}
	return q
}

// Close releases the query and its per-class cursors back to their pools.
// The query must not be used afterwards.
func (q *Query) Close() {
	if q == nil || q.c == nil {
		return
	}
	for i, cur := range q.cursors {
		cur.Close()
		q.cursors[i] = nil
	}
	c := q.c
	q.c = nil
	c.queryPool.Put(q)
}

// NodesRead returns the total nodes read across all class trees.
func (q *Query) NodesRead() int { return q.reads }

// scores returns the current log posteriors (up to the shared evidence
// constant). The returned slice is the query's scratch buffer and is
// overwritten by the next call.
func (q *Query) scores() []float64 {
	if cap(q.scoreBuf) < len(q.cursors) {
		q.scoreBuf = make([]float64, len(q.cursors))
	}
	s := q.scoreBuf[:len(q.cursors)]
	for i, cur := range q.cursors {
		if cur == nil {
			// The class tree was empty when the query started (possible
			// after decay pruned it): no model, no mass.
			s[i] = math.Inf(-1)
			continue
		}
		s[i] = q.c.logPriors[i] + cur.LogDensity()
	}
	return s
}

// Posteriors returns the current normalised posterior estimates P(c|x)
// under the mixed-granularity models.
func (q *Query) Posteriors() []float64 {
	s := q.scores()
	m := math.Inf(-1)
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	out := make([]float64, len(s))
	if math.IsInf(m, -1) {
		for i := range out {
			out[i] = 1 / float64(len(s))
		}
		return out
	}
	var z float64
	for i, v := range s {
		out[i] = math.Exp(v - m)
		z += out[i]
	}
	for i := range out {
		out[i] /= z
	}
	return out
}

// Predict returns the label with the highest posterior under the current
// models (ties resolve to the classifier-order first class).
func (q *Query) Predict() int {
	s := q.scores()
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i] > s[best] {
			best = i
		}
	}
	return q.c.labels[best]
}

// Exhausted reports whether every class model is fully refined (an
// empty class tree counts as exhausted).
func (q *Query) Exhausted() bool {
	for _, cur := range q.cursors {
		if cur != nil && !cur.Exhausted() {
			return false
		}
	}
	return true
}

// Step refines one node according to the qbk strategy: rank classes by
// current posterior, then give the next of the top-k (in turns) the right
// to refine. It reports whether a node was read.
func (q *Query) Step() bool {
	if cap(q.rankBuf) < len(q.cursors) {
		q.rankBuf = make([]ranked, 0, len(q.cursors))
	}
	rs := q.rankBuf[:0]
	ss := q.scores()
	for i, cur := range q.cursors {
		if cur != nil && !cur.Exhausted() {
			rs = append(rs, ranked{idx: i, score: ss[i]})
		}
	}
	if len(rs) == 0 {
		return false
	}
	// Stable insertion sort by descending score: class counts are small,
	// and avoiding sort.SliceStable keeps the step allocation-free.
	for a := 1; a < len(rs); a++ {
		for b := a; b > 0 && rs[b].score > rs[b-1].score; b-- {
			rs[b], rs[b-1] = rs[b-1], rs[b]
		}
	}
	k := q.c.opts.K
	if k > len(rs) {
		k = len(rs)
	}
	pick := rs[q.turn%k].idx
	q.turn++
	if !q.cursors[pick].Refine() {
		return false
	}
	q.reads++
	return true
}

// LogEvidence returns the current anytime estimate of the data log
// density log p(x) = log Σ_c P(c)·p(x|c) under the mixed-granularity
// models — the quantity behind density-based outlier detection
// (Section 4.2 names "detection of outliers" as an extension of the
// index-based approach).
func (q *Query) LogEvidence() float64 {
	return stats.LogSumExp(q.scores())
}

// OutlierScore runs an anytime density estimate of x with the given node
// budget and returns −log p(x): higher scores mean more outlying. The
// same index serves classification and outlier detection; only the
// aggregation differs.
func (c *Classifier) OutlierScore(x []float64, budget int) float64 {
	q := c.NewQuery(x)
	for i := 0; budget < 0 || i < budget; i++ {
		if !q.Step() {
			break
		}
	}
	score := -q.LogEvidence()
	q.Close()
	return score
}

// Classify runs an anytime classification of x with a budget of node
// reads. A negative budget means "until fully refined" (the exact kernel
// Bayes classifier). It returns the final prediction.
func (c *Classifier) Classify(x []float64, budget int) int {
	q := c.NewQuery(x)
	for i := 0; budget < 0 || i < budget; i++ {
		if !q.Step() {
			break
		}
	}
	pred := q.Predict()
	q.Close()
	return pred
}

// ClassifyTrace runs an anytime classification and records the prediction
// after every node read: trace[t] is the label predicted with t nodes
// read, t = 0..budget. If the models exhaust early the last prediction is
// repeated — exactly how the paper's "accuracy after each node" curves
// are defined.
func (c *Classifier) ClassifyTrace(x []float64, budget int) []int {
	return c.ClassifyTraceInto(x, budget, nil)
}

// ClassifyTraceInto is ClassifyTrace writing into a caller-provided buffer
// (grown when too small), so curve runners can trace many objects without
// re-allocating.
func (c *Classifier) ClassifyTraceInto(x []float64, budget int, trace []int) []int {
	if cap(trace) < budget+1 {
		trace = make([]int, budget+1)
	}
	trace = trace[:budget+1]
	q := c.NewQuery(x)
	trace[0] = q.Predict()
	for t := 1; t <= budget; t++ {
		if q.Step() {
			trace[t] = q.Predict()
		} else {
			trace[t] = trace[t-1]
		}
	}
	q.Close()
	return trace
}
