// Package core implements the Bayes tree, the paper's primary
// contribution: a balanced R*-tree-like index whose inner entries store
// cluster features (n, LS, SS) so that every tree level — and every
// "frontier" of mixed levels — forms a complete Gaussian mixture model of
// the data (Definitions 1–3). On top of the index the package provides
// anytime Bayesian classification: probability density queries that refine
// one node per time step under interruptible budgets, the three descent
// strategies evaluated in the paper (breadth-first, depth-first, global
// best-first with geometric or probabilistic priorities) and the qbk
// class-refinement strategy for per-class tree ensembles, plus the
// single-tree multi-class variant sketched in Section 4.1.
package core

import (
	"fmt"

	"bayestree/internal/kernels"
)

// Config are the structural parameters of Definition 2: inner nodes hold
// between MinFanout and MaxFanout entries (m, M), leaves hold between
// MinLeaf and MaxLeaf observations (l, L). The original system derived M
// and L from a disk page size; here they are explicit so experiments can
// sweep them. DefaultConfig emulates the paper's 2 KiB pages.
type Config struct {
	// Dim is the dimensionality of the indexed observations.
	Dim int
	// MinFanout (m) and MaxFanout (M) bound inner-node entry counts.
	MinFanout, MaxFanout int
	// MinLeaf (l) and MaxLeaf (L) bound leaf observation counts.
	MinLeaf, MaxLeaf int
	// Kernel is the leaf-level kernel estimator (Gaussian in the paper,
	// Epanechnikov as the Section 4.1 alternative).
	Kernel kernels.Kernel
	// ForcedReinsert enables the R* forced-reinsertion heuristic during
	// incremental (Iterativ) insertion.
	ForcedReinsert bool
	// ReinsertFraction is the share of entries reinserted on the first
	// overflow per level; zero means 0.3 when ForcedReinsert is set.
	ReinsertFraction float64
}

// DefaultConfig returns the parameterisation used by the experiments: an
// emulated 2 KiB page. An inner entry stores an MBR (2d floats), a cluster
// feature (2d+1 floats) and a pointer, so M = ⌊2048 / ((4d+2)·8)⌋ clamped
// to [4, 32]; a leaf observation stores d floats, so L = ⌊2048 / (8d)⌋
// clamped to [8, 64]. Minimums are 40 % of the maxima, as in the R*-tree.
func DefaultConfig(dim int) Config {
	entryBytes := (4*dim + 2) * 8
	m := 2048 / entryBytes
	if m < 4 {
		m = 4
	}
	if m > 32 {
		m = 32
	}
	l := 2048 / (8 * dim)
	if l < 8 {
		l = 8
	}
	if l > 64 {
		l = 64
	}
	return Config{
		Dim:              dim,
		MinFanout:        max(2, (m*2)/5),
		MaxFanout:        m,
		MinLeaf:          max(2, (l*2)/5),
		MaxLeaf:          l,
		Kernel:           kernels.Gaussian{},
		ForcedReinsert:   true,
		ReinsertFraction: 0.3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("core: Dim must be ≥ 1, got %d", c.Dim)
	}
	if c.MaxFanout < 2 {
		return fmt.Errorf("core: MaxFanout must be ≥ 2, got %d", c.MaxFanout)
	}
	if c.MinFanout < 1 || c.MinFanout > c.MaxFanout/2 {
		return fmt.Errorf("core: MinFanout must be in [1, MaxFanout/2], got %d (MaxFanout %d)", c.MinFanout, c.MaxFanout)
	}
	if c.MaxLeaf < 2 {
		return fmt.Errorf("core: MaxLeaf must be ≥ 2, got %d", c.MaxLeaf)
	}
	if c.MinLeaf < 1 || c.MinLeaf > c.MaxLeaf/2 {
		return fmt.Errorf("core: MinLeaf must be in [1, MaxLeaf/2], got %d (MaxLeaf %d)", c.MinLeaf, c.MaxLeaf)
	}
	if c.Kernel == nil {
		return fmt.Errorf("core: Kernel must be set")
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.5 {
		return fmt.Errorf("core: ReinsertFraction must be in [0, 0.5], got %v", c.ReinsertFraction)
	}
	return nil
}

func (c Config) reinsertCount() int {
	frac := c.ReinsertFraction
	if frac == 0 {
		frac = 0.3
	}
	p := int(frac * float64(c.MaxFanout))
	if p < 1 {
		p = 1
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
