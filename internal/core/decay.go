package core

import (
	"fmt"
	"math"

	"bayestree/internal/mbr"
	"bayestree/internal/stats"
)

// This file implements exponential forgetting for the classification
// path — the serving-side form of the clustering extension's decay
// (Section 4.2), where cluster-feature weights fade as 2^(−λ·Δt) so the
// model tracks evolving streams instead of classifying yesterday's
// distribution forever.
//
// Time is logical: a tree carries a current epoch and a reference epoch
// its stored weights are valued at. An observation inserted Δe epochs
// after the reference is stored with weight 2^(λ·Δe) (amplified, see
// stats.GrowthFactor), so relative weights inside the tree are exact at
// every instant without touching any stored cluster feature on insert.
// The maintenance sweep (DecaySweep) then rescales the whole tree to the
// current epoch — decaying every cluster feature and leaf weight by
// 2^(−λ·Δe), pruning what has faded below the configured floor and
// collapsing subtrees the pruning left underfull — and resets the
// reference. Cross-tree comparisons (class priors, shard mixing) use
// Weight(), which folds the outstanding decay factor into the stored
// root mass.
//
// The frozen-cache invalidation contract gains a second trigger here:
// besides Insert, both AdvanceEpoch and DecaySweep store nil into the
// per-tree query-state pointer, so no query ever mixes state from two
// decay epochs. With decay disabled (λ = 0) every path below is
// bypassed and behaviour is digit-identical to an undecayed tree.

// DecayOptions configure exponential forgetting on a tree.
type DecayOptions struct {
	// Lambda is the decay rate: a weight fades by 2^(−Lambda·Δe) over Δe
	// decay epochs. Zero disables decay entirely (the default).
	Lambda float64
	// MinWeight is the pruning floor of the maintenance sweep:
	// observations whose decayed weight falls below it are forgotten
	// (subtrees whose observations all fade empty out bottom-up and
	// are dropped whole). Zero keeps everything (weights still fade).
	// Must be below 1 so fresh unit-weight observations always
	// survive.
	MinWeight float64
}

// Enabled reports whether decay is active.
func (o DecayOptions) Enabled() bool { return o.Lambda > 0 }

// Validate reports configuration errors.
func (o DecayOptions) Validate() error {
	if math.IsNaN(o.Lambda) || math.IsInf(o.Lambda, 0) || o.Lambda < 0 {
		return fmt.Errorf("core: decay Lambda must be a finite value ≥ 0, got %v", o.Lambda)
	}
	if math.IsNaN(o.MinWeight) || o.MinWeight < 0 || o.MinWeight >= 1 {
		return fmt.Errorf("core: decay MinWeight must be in [0, 1), got %v", o.MinWeight)
	}
	return nil
}

// SweepStats summarises one maintenance sweep.
type SweepStats struct {
	// PointsPruned is the number of observations forgotten, either
	// individually (leaf weight below the floor) or inside a pruned
	// subtree.
	PointsPruned int
	// SubtreesPruned is the number of entries dropped whole: children
	// whose every observation decayed below the floor (pruning a
	// subtree's observations empties it bottom-up, so an emptied child
	// is exactly a below-floor subtree).
	SubtreesPruned int
	// SubtreesCollapsed is the number of underfull children dissolved
	// into their surviving observations for reinsertion, keeping node
	// occupancy invariants intact after pruning.
	SubtreesCollapsed int
	// Reinserted is the number of observations reinserted from collapsed
	// subtrees.
	Reinserted int
}

func (s *SweepStats) add(o SweepStats) {
	s.PointsPruned += o.PointsPruned
	s.SubtreesPruned += o.SubtreesPruned
	s.SubtreesCollapsed += o.SubtreesCollapsed
	s.Reinserted += o.Reinserted
}

// ---------------------------------------------------------------------
// Tree

// EnableDecay switches exponential forgetting on (or reconfigures it).
// It affects how future inserts are weighted and what AdvanceEpoch and
// DecaySweep do; already stored weights are untouched until the next
// sweep.
func (t *Tree) EnableDecay(opts DecayOptions) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	t.decay = opts
	t.queryState.Store(nil)
	t.soaInvalidate()
	return nil
}

// DecayConfig returns the decay options in effect (zero value = off).
func (t *Tree) DecayConfig() DecayOptions { return t.decay }

// Epoch returns the tree's current logical decay epoch.
func (t *Tree) Epoch() int64 { return t.epoch }

// DecayState returns the decay options, the current epoch and the
// reference epoch the stored weights are valued at — what a snapshot
// must carry for a decayed tree to reload digit-identically.
func (t *Tree) DecayState() (opts DecayOptions, epoch, ref int64) {
	return t.decay, t.epoch, t.refEpoch
}

// RestoreDecayState reinstates decay state decoded from a snapshot.
func (t *Tree) RestoreDecayState(opts DecayOptions, epoch, ref int64) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	if epoch < ref {
		return fmt.Errorf("core: decay epoch %d before reference %d", epoch, ref)
	}
	t.decay = opts
	t.epoch = epoch
	t.refEpoch = ref
	t.queryState.Store(nil)
	t.soaInvalidate()
	return nil
}

// AdvanceEpoch moves logical time forward by n epochs. Stored state is
// untouched — decay is applied lazily: subsequent inserts carry larger
// amplified weights and Weight() folds the larger outstanding decay
// factor — but the cached query-time constants are invalidated (the
// second trigger of the frozen-cache invalidation contract), so no
// query observes state from two epochs at once. A no-op when decay is
// disabled.
func (t *Tree) AdvanceEpoch(n int64) {
	if n <= 0 || !t.decay.Enabled() {
		return
	}
	t.epoch += n
	t.queryState.Store(nil)
	t.soaInvalidate()
}

// insertWeight is the amplified weight of an observation inserted now:
// 2^(λ·Δe) relative to the reference epoch the tree's weights are
// stored at. 1 exactly when decay is disabled or no epoch has passed.
func (t *Tree) insertWeight() float64 {
	return stats.GrowthFactor(t.decay.Lambda, t.epoch-t.refEpoch)
}

// Weight returns the tree's effective total mass: the stored root mass
// with the decay outstanding since the last sweep folded in. With decay
// disabled it equals float64(Len()) exactly. This — not the raw point
// count — is what priors and shard mixing must weight by. Cost is one
// pass over the root node (whose summaries insert and sweep keep
// fresh), so per-Learn prior refreshes never rebuild query state.
func (t *Tree) Weight() float64 {
	if !t.decay.Enabled() {
		return float64(t.size)
	}
	if t.size == 0 {
		return 0
	}
	var mass float64
	if t.root.leaf {
		if t.root.weights == nil {
			mass = float64(len(t.root.points))
		} else {
			for _, w := range t.root.weights {
				mass += w
			}
		}
	} else {
		for i := range t.root.entries {
			mass += t.root.entries[i].CF.N
		}
	}
	return mass * stats.DecayFactor(t.decay.Lambda, t.epoch-t.refEpoch)
}

// DecaySweep applies the decay accumulated since the last sweep: every
// leaf weight and cluster feature is rescaled to the current epoch,
// observations whose decayed weight falls below the MinWeight floor
// are pruned (children emptied by that pruning are dropped whole),
// children the pruning left underfull are dissolved and their
// surviving observations reinserted, and single-entry root chains are
// collapsed. The reference epoch is reset to the
// current epoch and the cached query state invalidated. Cost is one
// pass over the tree; call it from a maintenance loop, not per insert.
func (t *Tree) DecaySweep() SweepStats {
	var st SweepStats
	if !t.decay.Enabled() {
		return st
	}
	factor := stats.DecayFactor(t.decay.Lambda, t.epoch-t.refEpoch)
	if factor == 1 && t.decay.MinWeight <= 0 {
		t.refEpoch = t.epoch
		return st
	}
	before := t.size
	var orphanP [][]float64
	var orphanW []float64
	t.sweepNode(t.root, factor, t.decay.MinWeight, &st, &orphanP, &orphanW)
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].Child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &Node{leaf: true}
	}
	t.refEpoch = t.epoch
	t.size = countTreePoints(t.root)
	if len(orphanP) > 0 {
		// Orphans carry already-decayed weights and the reference is
		// already current, so reinsertion adds them at face value.
		reinserted := make(map[int]bool)
		for k, p := range orphanP {
			t.insertPointW(p, orphanW[k], reinserted)
		}
		t.size += len(orphanP)
		st.Reinserted = len(orphanP)
	}
	st.PointsPruned = before - t.size
	t.queryState.Store(nil)
	t.soaInvalidate()
	return st
}

// sweepNode decays the subtree under n in place: leaf weights are
// scaled by factor (materialising the weight vector on first need) and
// sub-floor observations dropped; inner entries are re-summarised
// bottom-up, with emptied children pruned whole and underfull
// survivors dissolved into orphan observations for reinsertion.
func (t *Tree) sweepNode(n *Node, factor, floor float64, st *SweepStats, orphanP *[][]float64, orphanW *[]float64) {
	if n.leaf {
		if factor != 1 && n.weights == nil && len(n.points) > 0 {
			n.weights = make([]float64, len(n.points))
			for i := range n.weights {
				n.weights[i] = 1
			}
		}
		if n.weights == nil {
			return
		}
		kept := 0
		for i := range n.points {
			w := n.weights[i] * factor
			if floor > 0 && w < floor {
				continue
			}
			n.points[kept] = n.points[i]
			n.weights[kept] = w
			kept++
		}
		clear(n.points[kept:])
		n.points = n.points[:kept]
		n.weights = n.weights[:kept]
		return
	}
	kept := 0
	for i := range n.entries {
		child := n.entries[i].Child
		t.sweepNode(child, factor, floor, st, orphanP, orphanW)
		// A non-empty child's mass is a sum of leaf weights the pass
		// above already held to the floor, so no separate subtree mass
		// check is needed: below-floor subtrees are exactly the emptied
		// ones.
		if childEmpty(child) {
			st.SubtreesPruned++
			continue
		}
		underfull := (child.leaf && len(child.points) < t.cfg.MinLeaf) ||
			(!child.leaf && len(child.entries) < t.cfg.MinFanout)
		if underfull {
			collectWeightedPoints(child, orphanP, orphanW)
			st.SubtreesCollapsed++
			continue
		}
		n.entries[kept] = t.summarize(child)
		kept++
	}
	clear(n.entries[kept:])
	n.entries = n.entries[:kept]
}

func childEmpty(n *Node) bool {
	return (n.leaf && len(n.points) == 0) || (!n.leaf && len(n.entries) == 0)
}

func countTreePoints(n *Node) int {
	if n.leaf {
		return len(n.points)
	}
	c := 0
	for i := range n.entries {
		c += countTreePoints(n.entries[i].Child)
	}
	return c
}

// collectWeightedPoints gathers every observation under n with its
// weight (1 for unweighted leaves), for dissolving subtrees.
func collectWeightedPoints(n *Node, pts *[][]float64, ws *[]float64) {
	if n.leaf {
		*pts = append(*pts, n.points...)
		if n.weights != nil {
			*ws = append(*ws, n.weights...)
			return
		}
		for range n.points {
			*ws = append(*ws, 1)
		}
		return
	}
	for i := range n.entries {
		collectWeightedPoints(n.entries[i].Child, pts, ws)
	}
}

// weightedLeaf builds a leaf from the selected indices of a weighted
// point set (the split path for leaves that carry decayed weights).
func weightedLeaf(points [][]float64, weights []float64, idx []int) *Node {
	n := &Node{leaf: true, points: make([][]float64, len(idx)), weights: make([]float64, len(idx))}
	for k, i := range idx {
		n.points[k] = points[i]
		n.weights[k] = weights[i]
	}
	return n
}

// ---------------------------------------------------------------------
// MultiTree

// EnableDecay switches exponential forgetting on (or reconfigures it),
// as Tree.EnableDecay does for a per-class tree.
func (t *MultiTree) EnableDecay(opts DecayOptions) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	t.decay = opts
	t.queryState.Store(nil)
	t.soaInvalidate()
	return nil
}

// DecayConfig returns the decay options in effect (zero value = off).
func (t *MultiTree) DecayConfig() DecayOptions { return t.decay }

// Epoch returns the tree's current logical decay epoch.
func (t *MultiTree) Epoch() int64 { return t.epoch }

// DecayState returns the decay options, current epoch and reference
// epoch, for snapshotting.
func (t *MultiTree) DecayState() (opts DecayOptions, epoch, ref int64) {
	return t.decay, t.epoch, t.refEpoch
}

// RestoreDecayState reinstates decay state decoded from a snapshot.
func (t *MultiTree) RestoreDecayState(opts DecayOptions, epoch, ref int64) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	if epoch < ref {
		return fmt.Errorf("core: decay epoch %d before reference %d", epoch, ref)
	}
	t.decay = opts
	t.epoch = epoch
	t.refEpoch = ref
	t.queryState.Store(nil)
	t.soaInvalidate()
	return nil
}

// AdvanceEpoch moves logical time forward by n epochs, invalidating the
// cached query-time constants (see Tree.AdvanceEpoch).
func (t *MultiTree) AdvanceEpoch(n int64) {
	if n <= 0 || !t.decay.Enabled() {
		return
	}
	t.epoch += n
	t.queryState.Store(nil)
	t.soaInvalidate()
}

func (t *MultiTree) insertWeight() float64 {
	return stats.GrowthFactor(t.decay.Lambda, t.epoch-t.refEpoch)
}

// Weight returns the tree's effective total mass (see Tree.Weight).
// With decay disabled it equals float64(Len()) exactly. As there, the
// mass is read from the root level directly — no query-state rebuild.
func (t *MultiTree) Weight() float64 {
	if !t.decay.Enabled() {
		return float64(t.size)
	}
	if t.size == 0 {
		return 0
	}
	var mass float64
	if t.root.leaf {
		if t.root.weights == nil {
			mass = float64(len(t.root.points))
		} else {
			for _, w := range t.root.weights {
				mass += w
			}
		}
	} else {
		for i := range t.root.entries {
			mass += t.root.entries[i].Total.N
		}
	}
	return mass * stats.DecayFactor(t.decay.Lambda, t.epoch-t.refEpoch)
}

// CountNodes returns the number of tree nodes (inner and leaf) — the
// bounded-memory observable a drift-tracking server reports.
func (t *MultiTree) CountNodes() int {
	var walk func(n *MultiNode) int
	walk = func(n *MultiNode) int {
		if n.leaf {
			return 1
		}
		c := 1
		for i := range n.entries {
			c += walk(n.entries[i].Child)
		}
		return c
	}
	return walk(t.root)
}

// DecaySweep applies the decay accumulated since the last sweep (see
// Tree.DecaySweep): rescale, prune below the floor, collapse underfull
// children, reset the reference epoch, recompute the per-class masses
// and invalidate the cached query state.
func (t *MultiTree) DecaySweep() SweepStats {
	var st SweepStats
	if !t.decay.Enabled() {
		return st
	}
	factor := stats.DecayFactor(t.decay.Lambda, t.epoch-t.refEpoch)
	if factor == 1 && t.decay.MinWeight <= 0 {
		t.refEpoch = t.epoch
		return st
	}
	before := t.size
	var orphans []LabeledPoint
	var orphanW []float64
	t.sweepMultiNode(t.root, factor, t.decay.MinWeight, &st, &orphans, &orphanW)
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].Child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &MultiNode{leaf: true}
	}
	t.refEpoch = t.epoch
	for k, p := range orphans {
		t.insertPointW(p, orphanW[k])
	}
	st.Reinserted = len(orphans)
	t.size = countMultiPoints(t.root)
	root := t.summarize(t.root)
	for c := range t.counts {
		t.counts[c] = root.CFs[c].N
	}
	st.PointsPruned = before - t.size
	t.queryState.Store(nil)
	t.soaInvalidate()
	return st
}

// sweepMultiNode is sweepNode for the multi-class tree.
func (t *MultiTree) sweepMultiNode(n *MultiNode, factor, floor float64, st *SweepStats, orphans *[]LabeledPoint, orphanW *[]float64) {
	if n.leaf {
		if factor != 1 && n.weights == nil && len(n.points) > 0 {
			n.weights = make([]float64, len(n.points))
			for i := range n.weights {
				n.weights[i] = 1
			}
		}
		if n.weights == nil {
			return
		}
		kept := 0
		for i := range n.points {
			w := n.weights[i] * factor
			if floor > 0 && w < floor {
				continue
			}
			n.points[kept] = n.points[i]
			n.weights[kept] = w
			kept++
		}
		clear(n.points[kept:])
		n.points = n.points[:kept]
		n.weights = n.weights[:kept]
		return
	}
	kept := 0
	for i := range n.entries {
		child := n.entries[i].Child
		t.sweepMultiNode(child, factor, floor, st, orphans, orphanW)
		// As in Tree.sweepNode: below-floor subtrees are exactly the
		// children the leaf pass emptied.
		empty := (child.leaf && len(child.points) == 0) || (!child.leaf && len(child.entries) == 0)
		if empty {
			st.SubtreesPruned++
			continue
		}
		underfull := (child.leaf && len(child.points) < t.cfg.MinLeaf) ||
			(!child.leaf && len(child.entries) < t.cfg.MinFanout)
		if underfull {
			collectWeightedMultiPoints(child, orphans, orphanW)
			st.SubtreesCollapsed++
			continue
		}
		n.entries[kept] = t.summarize(child)
		kept++
	}
	clear(n.entries[kept:])
	n.entries = n.entries[:kept]
}

func countMultiPoints(n *MultiNode) int {
	if n.leaf {
		return len(n.points)
	}
	c := 0
	for i := range n.entries {
		c += countMultiPoints(n.entries[i].Child)
	}
	return c
}

func collectWeightedMultiPoints(n *MultiNode, pts *[]LabeledPoint, ws *[]float64) {
	if n.leaf {
		*pts = append(*pts, n.points...)
		if n.weights != nil {
			*ws = append(*ws, n.weights...)
			return
		}
		for range n.points {
			*ws = append(*ws, 1)
		}
		return
	}
	for i := range n.entries {
		collectWeightedMultiPoints(n.entries[i].Child, pts, ws)
	}
}

// weightedMultiLeaf builds a multi-class leaf from the selected indices
// of a weighted point set.
func weightedMultiLeaf(points []LabeledPoint, weights []float64, idx []int) *MultiNode {
	n := &MultiNode{leaf: true, points: make([]LabeledPoint, len(idx)), weights: make([]float64, len(idx))}
	for k, i := range idx {
		n.points[k] = points[i]
		n.weights[k] = weights[i]
	}
	return n
}

// ---------------------------------------------------------------------
// Classifier

// EnableDecay switches exponential forgetting on for every class tree.
func (c *Classifier) EnableDecay(opts DecayOptions) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	for _, t := range c.trees {
		if err := t.EnableDecay(opts); err != nil {
			return err
		}
	}
	return nil
}

// AdvanceEpoch moves every class tree's logical time forward by n
// epochs.
func (c *Classifier) AdvanceEpoch(n int64) {
	for _, t := range c.trees {
		t.AdvanceEpoch(n)
	}
}

// DecaySweep runs the maintenance sweep on every class tree and
// refreshes the class priors from the decayed masses. A class whose
// tree decays empty keeps a −Inf prior until new observations arrive.
func (c *Classifier) DecaySweep() SweepStats {
	var st SweepStats
	for _, t := range c.trees {
		st.add(t.DecaySweep())
	}
	c.refreshPriors()
	return st
}

// AdvanceDecay advances one decay epoch and immediately sweeps — the
// single-call form maintenance loops and stream runners use.
func (c *Classifier) AdvanceDecay() SweepStats {
	c.AdvanceEpoch(1)
	return c.DecaySweep()
}

// refreshPriors recomputes the log class priors from the trees'
// effective masses. With decay disabled Weight() is exactly
// float64(Len()), so this is digit-identical to the count-based priors.
func (c *Classifier) refreshPriors() {
	if cap(c.priorBuf) < len(c.trees) {
		c.priorBuf = make([]float64, len(c.trees))
	}
	ws := c.priorBuf[:len(c.trees)]
	var total float64
	for i, t := range c.trees {
		ws[i] = t.Weight()
		total += ws[i]
	}
	for i := range c.logPriors {
		if ws[i] > 0 && total > 0 {
			c.logPriors[i] = math.Log(ws[i] / total)
		} else {
			c.logPriors[i] = math.Inf(-1)
		}
	}
}

// splitIndices splits the index set [0, n) of a weighted item slice
// with the same R* topological split splitItems performs; the caller
// projects the index groups onto its parallel point/weight arrays.
func splitIndices(n int, rectOf func(int) mbr.Rect, dim, minFill int) (left, right []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return splitItems(idx, rectOf, dim, minFill)
}
