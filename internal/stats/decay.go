package stats

import "math"

// DecayFactor returns the exponential decay weight 2^(−λ·Δe) of the
// clustering extension (Section 4.2) for λ = lambda and Δe = epochs
// elapsed decay epochs. It is 1 exactly when decay is disabled (λ ≤ 0)
// or no time has passed, so multiplying by the factor is always safe.
// Decaying a cluster feature by this factor is exactly CF.Scale.
func DecayFactor(lambda float64, epochs int64) float64 {
	if lambda <= 0 || epochs <= 0 {
		return 1
	}
	// Clamp the exponent so even absurd epoch deltas yield a tiny but
	// positive factor (~1e-301) rather than underflowing to exactly 0,
	// which would turn stored weights into values the rebuild
	// validation rightly rejects.
	e := lambda * float64(epochs)
	if e > 1000 {
		e = 1000
	}
	return math.Exp2(-e)
}

// GrowthFactor is the inverse of DecayFactor: the amplification 2^(λ·Δe)
// applied to the weight of an observation inserted Δe epochs after the
// reference timestamp its tree's cluster features are stored at. Storing
// new mass amplified — rather than eagerly decaying every stored feature
// on each insert — keeps relative weights exact while deferring the
// whole-tree rescale to the maintenance sweep.
func GrowthFactor(lambda float64, epochs int64) float64 {
	if lambda <= 0 || epochs <= 0 {
		return 1
	}
	// Clamp as in DecayFactor: 2^512 (~1e154) already makes all older
	// mass negligible while staying far from +Inf, so an insert after
	// an extreme un-swept epoch delta cannot poison cluster features
	// with non-finite weights.
	e := lambda * float64(epochs)
	if e > 512 {
		e = 512
	}
	return math.Exp2(e)
}
