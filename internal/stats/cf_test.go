package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCFMeanVarianceMatchDirect(t *testing.T) {
	xs := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	cf := CFOfAll(xs, 2)
	if cf.N != 4 {
		t.Fatalf("N = %v", cf.N)
	}
	mean := cf.Mean()
	if math.Abs(mean[0]-2.5) > 1e-12 || math.Abs(mean[1]-25) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
	// Population variance of {1,2,3,4} is 1.25.
	variance := cf.Variance()
	if math.Abs(variance[0]-1.25) > 1e-12 {
		t.Errorf("variance[0] = %v, want 1.25", variance[0])
	}
	if math.Abs(variance[1]-125) > 1e-9 {
		t.Errorf("variance[1] = %v, want 125", variance[1])
	}
}

// Property: CF additivity — the CF of a union equals the merged CFs
// (Definition 1's foundation and the paper's Section 4.2 "additivity
// property").
func TestCFAdditivityProperty(t *testing.T) {
	f := func(seed int64, nA, nB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randPoints(rng, int(nA%32)+1, 3)
		b := randPoints(rng, int(nB%32)+1, 3)
		all := append(append([][]float64{}, a...), b...)
		direct := CFOfAll(all, 3)
		merged := CFOfAll(a, 3)
		other := CFOfAll(b, 3)
		merged.Merge(other)
		return cfClose(direct, merged, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Subtract inverts Merge.
func TestCFSubtractInvertsMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := CFOfAll(randPoints(rng, 10, 2), 2)
		b := CFOfAll(randPoints(rng, 5, 2), 2)
		orig := a.Clone()
		a.Merge(b)
		a.Subtract(b)
		return cfClose(a, orig, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCFScaleDecay(t *testing.T) {
	cf := CFOfAll([][]float64{{2, 4}, {4, 8}}, 2)
	mean := cf.Mean()
	cf.Scale(0.5)
	if math.Abs(cf.N-1) > 1e-12 {
		t.Errorf("decayed N = %v, want 1", cf.N)
	}
	// Decay preserves the mean (and the variance).
	if !floatsClose(cf.Mean(), mean, 1e-12) {
		t.Errorf("decay changed the mean: %v vs %v", cf.Mean(), mean)
	}
}

func TestCFAddWeighted(t *testing.T) {
	cf := NewCF(1)
	cf.AddWeighted([]float64{10}, 0.25)
	cf.AddWeighted([]float64{20}, 0.75)
	if math.Abs(cf.N-1) > 1e-12 {
		t.Errorf("N = %v", cf.N)
	}
	if got := cf.Mean()[0]; math.Abs(got-17.5) > 1e-12 {
		t.Errorf("weighted mean = %v, want 17.5", got)
	}
}

func TestCFEmptyBehaviour(t *testing.T) {
	cf := NewCF(2)
	if !cf.IsEmpty() {
		t.Errorf("new CF not empty")
	}
	if got := cf.Mean(); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty mean = %v", got)
	}
	for _, v := range cf.Variance() {
		if v != VarianceFloor {
			t.Errorf("empty variance = %v, want floor", v)
		}
	}
	if cf.Radius() != 0 {
		t.Errorf("empty radius = %v", cf.Radius())
	}
}

func TestCFVarianceFloored(t *testing.T) {
	// Identical points: true variance zero, must clamp to floor.
	cf := CFOfAll([][]float64{{5}, {5}, {5}}, 1)
	if got := cf.Variance()[0]; got != VarianceFloor {
		t.Errorf("variance = %v, want floor %v", got, VarianceFloor)
	}
}

func TestCFGaussianConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := randPoints(rng, 50, 4)
	cf := CFOfAll(xs, 4)
	g := cf.Gaussian()
	if !floatsClose(g.Mean, cf.Mean(), 1e-12) {
		t.Errorf("Gaussian mean differs from CF mean")
	}
	if !floatsClose(g.Var, cf.Variance(), 1e-12) {
		t.Errorf("Gaussian variance differs from CF variance")
	}
}

func TestCFRadius(t *testing.T) {
	// Two points at distance 2 on one axis: RMS distance from centroid 1.
	cf := CFOfAll([][]float64{{0}, {2}}, 1)
	if got := cf.Radius(); math.Abs(got-1) > 1e-9 {
		t.Errorf("radius = %v, want 1", got)
	}
}

func TestCFValidate(t *testing.T) {
	cf := CFOfAll([][]float64{{1, 2}}, 2)
	if err := cf.Validate(); err != nil {
		t.Errorf("valid CF rejected: %v", err)
	}
	bad := cf.Clone()
	bad.N = -1
	if err := bad.Validate(); err == nil {
		t.Errorf("negative count accepted")
	}
	bad = cf.Clone()
	bad.LS[0] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Errorf("NaN LS accepted")
	}
	bad = cf.Clone()
	bad.SS = bad.SS[:1]
	if err := bad.Validate(); err == nil {
		t.Errorf("dim mismatch accepted")
	}
}

func TestCFCloneIndependence(t *testing.T) {
	cf := CFOfAll([][]float64{{1}}, 1)
	cp := cf.Clone()
	cp.Add([]float64{3})
	if cf.N != 1 {
		t.Errorf("Clone aliases storage")
	}
}

func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		for k := range p {
			p[k] = rng.NormFloat64() * 10
		}
		out[i] = p
	}
	return out
}

func cfClose(a, b CF, tol float64) bool {
	if math.Abs(a.N-b.N) > tol {
		return false
	}
	return floatsClose(a.LS, b.LS, tol*100) && floatsClose(a.SS, b.SS, tol*1000)
}

func floatsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}
