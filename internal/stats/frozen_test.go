package stats

import (
	"math"
	"math/rand"
	"testing"
)

func randomCF(rng *rand.Rand, d, n int) CF {
	cf := NewCF(d)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for k := range x {
			x[k] = rng.NormFloat64()*(1+float64(k)) + 10*rng.Float64()
		}
		cf.Add(x)
	}
	return cf
}

// The frozen fast path must agree with the reference Gaussian density to
// floating-point reassociation error across random cluster features.
func TestFrozenLogPDFMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(16)
		cf := randomCF(rng, d, 2+rng.Intn(50))
		g := cf.Gaussian()
		f := Freeze(&cf)
		for q := 0; q < 5; q++ {
			x := make([]float64, d)
			for k := range x {
				x[k] = rng.NormFloat64() * 20
			}
			want := g.LogPDF(x)
			got := f.LogPDF(x)
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("trial %d: frozen %v vs gaussian %v (diff %g)", trial, got, want, got-want)
			}
		}
	}
}

// Same agreement for the marginal (missing-value) path, including the
// empty-observation contract.
func TestFrozenLogPDFObsMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		d := 2 + rng.Intn(12)
		cf := randomCF(rng, d, 3+rng.Intn(40))
		g := cf.Gaussian()
		f := Freeze(&cf)
		x := make([]float64, d)
		for k := range x {
			x[k] = rng.NormFloat64() * 5
		}
		var obs []int
		for k := 0; k < d; k++ {
			if rng.Float64() < 0.6 {
				obs = append(obs, k)
			}
		}
		want := g.LogPDFObs(x, obs)
		got := f.LogPDFObs(x, obs)
		if obs == nil {
			if got != f.LogPDF(x) {
				t.Fatalf("nil obs must mean all dims")
			}
			continue
		}
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("trial %d: frozen obs %v vs gaussian obs %v", trial, got, want)
		}
	}
	cf := randomCF(rand.New(rand.NewSource(3)), 3, 10)
	f := Freeze(&cf)
	if got := f.LogPDFObs([]float64{1, 2, 3}, []int{}); got != 0 {
		t.Fatalf("empty obs = %v, want 0 (empty product)", got)
	}
}

// Freezing a Gaussian directly and round-tripping must preserve moments.
func TestFreezeRoundTrip(t *testing.T) {
	g := Gaussian{Mean: []float64{1, -2, 3}, Var: []float64{0.5, 2, 1e-12}}
	f := g.Freeze()
	back := f.Gaussian()
	for i := range g.Mean {
		if back.Mean[i] != g.Mean[i] {
			t.Fatalf("mean[%d] %v != %v", i, back.Mean[i], g.Mean[i])
		}
	}
	// The degenerate variance must come back clamped to the floor.
	if math.Abs(back.Var[2]-VarianceFloor) > 1e-24 {
		t.Fatalf("variance floor not applied: %v", back.Var[2])
	}
}

func TestObservedDimsInto(t *testing.T) {
	if obs, _ := ObservedDimsInto([]float64{1, 2, 3}, nil); obs != nil {
		t.Fatalf("fully observed must return nil, got %v", obs)
	}
	obs, scratch := ObservedDimsInto([]float64{1, math.NaN(), 3}, nil)
	if len(obs) != 2 || obs[0] != 0 || obs[1] != 2 {
		t.Fatalf("observed dims %v, want [0 2]", obs)
	}
	// All-missing must be non-nil empty (distinct from "all observed").
	obs, scratch = ObservedDimsInto([]float64{math.NaN(), math.NaN()}, scratch)
	if obs == nil || len(obs) != 0 {
		t.Fatalf("all-missing must be non-nil empty, got %v", obs)
	}
	// Reuse must not allocate a new backing array once grown.
	obs, _ = ObservedDimsInto([]float64{math.NaN(), 5}, scratch)
	if len(obs) != 1 || obs[0] != 1 {
		t.Fatalf("reuse produced %v", obs)
	}
}

// --- Micro-benchmarks: frozen vs unfrozen log density -------------------

func benchmarkLogPDF(b *testing.B, frozen bool, d int) {
	rng := rand.New(rand.NewSource(7))
	cf := randomCF(rng, d, 100)
	x := make([]float64, d)
	for k := range x {
		x[k] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	if frozen {
		f := Freeze(&cf)
		for i := 0; i < b.N; i++ {
			_ = f.LogPDF(x)
		}
		return
	}
	for i := 0; i < b.N; i++ {
		g := cf.Gaussian() // the seed hot path re-derived this per entry
		_ = g.LogPDF(x)
	}
}

func BenchmarkLogPDFUnfrozen16(b *testing.B) { benchmarkLogPDF(b, false, 16) }
func BenchmarkLogPDFFrozen16(b *testing.B)   { benchmarkLogPDF(b, true, 16) }
