package stats

import "math"

// Missing-value support (Section 4.2 names "handling of missing values"
// as an extension): queries may carry NaN coordinates, which are treated
// as unobserved dimensions. For diagonal Gaussians the marginal density
// over the observed dimensions is simply the product over those
// dimensions, so evaluation restricted to an index set is exact
// marginalisation.

// ObservedDims returns the indices of non-NaN coordinates of x, or nil if
// every coordinate is observed (the common fast path).
func ObservedDims(x []float64) []int {
	missing := 0
	for _, v := range x {
		if math.IsNaN(v) {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	obs := make([]int, 0, len(x)-missing)
	for i, v := range x {
		if !math.IsNaN(v) {
			obs = append(obs, i)
		}
	}
	return obs
}

// ObservedDimsInto is ObservedDims with a caller-provided scratch buffer,
// for allocation-free reuse across queries (e.g. by pooled cursors). It
// returns the observed index slice — nil when every coordinate is observed
// — together with the (possibly grown) buffer to keep for the next call.
func ObservedDimsInto(x []float64, buf []int) (obs, scratch []int) {
	buf = buf[:0]
	missing := false
	for i, v := range x {
		if math.IsNaN(v) {
			missing = true
		} else {
			buf = append(buf, i)
		}
	}
	if !missing {
		return nil, buf
	}
	if buf == nil {
		// All coordinates missing with a nil scratch: the observed set is
		// empty but must be non-nil (nil means "all observed").
		buf = make([]int, 0)
	}
	return buf, buf
}

// LogPDFObs returns the log marginal density of x under g restricted to
// the observed dimensions obs. A nil obs means all dimensions (equivalent
// to LogPDF). An empty obs yields 0 (the empty product: every model
// explains a fully unobserved point equally).
func (g Gaussian) LogPDFObs(x []float64, obs []int) float64 {
	if obs == nil {
		return g.LogPDF(x)
	}
	var quad, logDet float64
	for _, i := range obs {
		v := g.Var[i]
		if v < VarianceFloor {
			v = VarianceFloor
		}
		d := x[i] - g.Mean[i]
		quad += d * d / v
		logDet += math.Log(v)
	}
	return -0.5 * (float64(len(obs))*log2Pi + logDet + quad)
}
