package stats

import (
	"math"
	"testing"
)

func TestObservedDims(t *testing.T) {
	if got := ObservedDims([]float64{1, 2, 3}); got != nil {
		t.Errorf("complete vector should give nil, got %v", got)
	}
	got := ObservedDims([]float64{1, math.NaN(), 3, math.NaN()})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ObservedDims = %v, want [0 2]", got)
	}
	if got := ObservedDims([]float64{math.NaN()}); len(got) != 0 || got == nil {
		t.Errorf("all-missing should give empty non-nil slice, got %v", got)
	}
}

func TestLogPDFObsMarginalises(t *testing.T) {
	g := Gaussian{Mean: []float64{1, 2, 3}, Var: []float64{0.5, 1, 2}}
	x := []float64{1.2, math.NaN(), 2.5}
	obs := []int{0, 2}
	// Marginal of a diagonal Gaussian = Gaussian over the kept dims.
	gr := Gaussian{Mean: []float64{1, 3}, Var: []float64{0.5, 2}}
	want := gr.LogPDF([]float64{1.2, 2.5})
	if got := g.LogPDFObs(x, obs); math.Abs(got-want) > 1e-12 {
		t.Errorf("masked logpdf %v, want %v", got, want)
	}
	// nil obs = full evaluation.
	full := []float64{1.2, 1.9, 2.5}
	if got, want := g.LogPDFObs(full, nil), g.LogPDF(full); got != want {
		t.Errorf("nil obs %v != full %v", got, want)
	}
	// Empty obs = empty product.
	if got := g.LogPDFObs(x, []int{}); got != 0 {
		t.Errorf("empty obs logpdf %v, want 0", got)
	}
}

func TestLogPDFObsVarianceFloor(t *testing.T) {
	g := Gaussian{Mean: []float64{0}, Var: []float64{0}}
	if got := g.LogPDFObs([]float64{0}, []int{0}); math.IsNaN(got) || math.IsInf(got, 1) {
		t.Errorf("floored masked density degenerate: %v", got)
	}
}
