// Package stats implements the statistical primitives of the Bayes tree:
// d-dimensional Gaussians with diagonal covariance, their densities and
// closed-form Kullback-Leibler divergence, cluster features (the (n, LS, SS)
// summaries stored in tree entries, Definition 1 of the paper), and the
// data-independent Silverman bandwidth rule used for the kernel estimators
// at leaf level (Section 2.1).
package stats

import (
	"fmt"
	"math"
)

// VarianceFloor is the smallest variance admitted per dimension. Cluster
// features of few or identical points can yield zero (or, through floating
// point cancellation, slightly negative) variances; densities would then be
// degenerate. Every variance that enters a density or divergence is clamped
// to at least this value.
const VarianceFloor = 1e-9

const log2Pi = 1.8378770664093453 // ln(2π)

// Gaussian is a d-dimensional normal distribution with diagonal covariance.
// Var holds the per-dimension variances (the σ² vector of the paper).
type Gaussian struct {
	Mean []float64
	Var  []float64
}

// Dim returns the dimensionality of the Gaussian.
func (g Gaussian) Dim() int { return len(g.Mean) }

// NewGaussian builds a Gaussian from mean and variance vectors, clamping
// variances to the floor. It returns an error if the dimensions disagree
// or any component is not finite.
func NewGaussian(mean, variance []float64) (Gaussian, error) {
	if len(mean) != len(variance) {
		return Gaussian{}, fmt.Errorf("stats: mean dim %d != variance dim %d", len(mean), len(variance))
	}
	v := make([]float64, len(variance))
	for i, x := range variance {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Gaussian{}, fmt.Errorf("stats: non-finite variance component %d", i)
		}
		if x < VarianceFloor {
			x = VarianceFloor
		}
		v[i] = x
	}
	for i, x := range mean {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Gaussian{}, fmt.Errorf("stats: non-finite mean component %d", i)
		}
	}
	m := make([]float64, len(mean))
	copy(m, mean)
	return Gaussian{Mean: m, Var: v}, nil
}

// LogPDF returns the log density of x under g. Variances are clamped to
// the floor on the fly so that Gaussians built directly from cluster
// features remain safe.
func (g Gaussian) LogPDF(x []float64) float64 {
	var quad, logDet float64
	for i := range g.Mean {
		v := g.Var[i]
		if v < VarianceFloor {
			v = VarianceFloor
		}
		d := x[i] - g.Mean[i]
		quad += d * d / v
		logDet += math.Log(v)
	}
	return -0.5 * (float64(len(g.Mean))*log2Pi + logDet + quad)
}

// PDF returns the density of x under g.
func (g Gaussian) PDF(x []float64) float64 { return math.Exp(g.LogPDF(x)) }

// Mahalanobis2 returns the squared Mahalanobis distance of x from g's mean
// under the diagonal covariance.
func (g Gaussian) Mahalanobis2(x []float64) float64 {
	var quad float64
	for i := range g.Mean {
		v := g.Var[i]
		if v < VarianceFloor {
			v = VarianceFloor
		}
		d := x[i] - g.Mean[i]
		quad += d * d / v
	}
	return quad
}

// KL returns the Kullback-Leibler divergence KL(g || h) between two
// diagonal Gaussians in closed form:
//
//	KL = ½ Σ_d [ σg²/σh² + (μh-μg)²/σh² − 1 + ln(σh²/σg²) ]
//
// It is non-negative and zero iff the distributions coincide (up to the
// variance floor). The paper uses this divergence inside the Goldberger
// bulk-loading distance (Definition 4).
func KL(g, h Gaussian) float64 {
	var s float64
	for i := range g.Mean {
		vg := g.Var[i]
		if vg < VarianceFloor {
			vg = VarianceFloor
		}
		vh := h.Var[i]
		if vh < VarianceFloor {
			vh = VarianceFloor
		}
		dm := h.Mean[i] - g.Mean[i]
		s += vg/vh + dm*dm/vh - 1 + math.Log(vh/vg)
	}
	return 0.5 * s
}

// SymKL returns the symmetrised divergence KL(g||h)+KL(h||g), occasionally
// useful as a merge criterion.
func SymKL(g, h Gaussian) float64 { return KL(g, h) + KL(h, g) }

// LogSumExp returns ln(Σ exp(xs_i)) computed stably. An empty input yields
// -Inf (the log of zero).
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// SilvermanBandwidth returns the per-dimension kernel bandwidths (standard
// deviations) of Silverman's data-independent rule of thumb for a sample of
// size n in d dimensions with per-dimension standard deviations sigma:
//
//	h_i = sigma_i · (4 / (d+2))^(1/(d+4)) · n^(−1/(d+4))
//
// This is the "common data independent method according to [18]" of
// Section 2.1. The returned vector contains bandwidths h_i, not variances;
// square them for use as Gaussian kernel variances.
func SilvermanBandwidth(sigma []float64, n int, d int) []float64 {
	if n < 1 {
		n = 1
	}
	if d < 1 {
		d = len(sigma)
	}
	exp := 1.0 / (float64(d) + 4.0)
	factor := math.Pow(4.0/(float64(d)+2.0), exp) * math.Pow(float64(n), -exp)
	out := make([]float64, len(sigma))
	for i, s := range sigma {
		if s <= 0 {
			s = math.Sqrt(VarianceFloor)
		}
		out[i] = s * factor
	}
	return out
}

// ScalarSilverman returns the Silverman factor alone (the bandwidth for a
// unit-variance dimension), convenient when a single pooled bandwidth is
// wanted.
func ScalarSilverman(n, d int) float64 {
	if n < 1 {
		n = 1
	}
	if d < 1 {
		d = 1
	}
	exp := 1.0 / (float64(d) + 4.0)
	return math.Pow(4.0/(float64(d)+2.0), exp) * math.Pow(float64(n), -exp)
}
