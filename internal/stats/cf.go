package stats

import (
	"fmt"
	"math"
)

// CF is the cluster feature of Definition 1: the number of objects n in a
// subtree, their linear sum LS and their squared sum SS (both per
// dimension). Cluster features are additive — the CF of a union of disjoint
// object sets is the component-wise sum of their CFs — which is what lets
// inner Bayes tree entries summarise whole subtrees and lets entries be
// merged, split and decayed cheaply.
//
// N is a float64 rather than an int so that the same summary supports the
// exponentially decayed weights of the anytime-clustering extension
// (Section 4.2), where object counts fade over time.
type CF struct {
	N  float64
	LS []float64
	SS []float64
}

// NewCF returns an empty cluster feature of dimension d.
func NewCF(d int) CF {
	return CF{LS: make([]float64, d), SS: make([]float64, d)}
}

// CFOf returns the cluster feature of a single object x (n = 1).
func CFOf(x []float64) CF {
	cf := NewCF(len(x))
	cf.Add(x)
	return cf
}

// CFOfAll returns the cluster feature summarising all given objects, which
// must share the dimension d.
func CFOfAll(xs [][]float64, d int) CF {
	cf := NewCF(d)
	for _, x := range xs {
		cf.Add(x)
	}
	return cf
}

// Dim returns the dimensionality of the cluster feature.
func (cf *CF) Dim() int { return len(cf.LS) }

// IsEmpty reports whether the cluster feature summarises no mass.
func (cf *CF) IsEmpty() bool { return cf.N <= 0 }

// Clone returns a deep copy of the cluster feature.
func (cf *CF) Clone() CF {
	out := CF{N: cf.N, LS: make([]float64, len(cf.LS)), SS: make([]float64, len(cf.SS))}
	copy(out.LS, cf.LS)
	copy(out.SS, cf.SS)
	return out
}

// Add absorbs a single object into the cluster feature.
func (cf *CF) Add(x []float64) {
	cf.N++
	for i, v := range x {
		cf.LS[i] += v
		cf.SS[i] += v * v
	}
}

// AddWeighted absorbs an object with fractional weight w (used by the
// decayed clustering extension).
func (cf *CF) AddWeighted(x []float64, w float64) {
	cf.N += w
	for i, v := range x {
		cf.LS[i] += w * v
		cf.SS[i] += w * v * v
	}
}

// Merge absorbs another cluster feature (the CF additivity property).
func (cf *CF) Merge(other CF) {
	cf.N += other.N
	for i := range cf.LS {
		cf.LS[i] += other.LS[i]
		cf.SS[i] += other.SS[i]
	}
}

// Subtract removes another cluster feature. The caller must guarantee that
// other is a sub-summary of cf; small negative residues from floating point
// cancellation are clamped when densities are derived, not here.
func (cf *CF) Subtract(other CF) {
	cf.N -= other.N
	for i := range cf.LS {
		cf.LS[i] -= other.LS[i]
		cf.SS[i] -= other.SS[i]
	}
}

// Scale multiplies the whole summary by factor w, implementing the
// exponential decay of the clustering extension: decaying a CF by 2^(-λΔt)
// is exactly Scale(2^(-λΔt)).
func (cf *CF) Scale(w float64) {
	cf.N *= w
	for i := range cf.LS {
		cf.LS[i] *= w
		cf.SS[i] *= w
	}
}

// Mean returns μ = LS/n. It returns a zero vector for an empty feature.
func (cf *CF) Mean() []float64 {
	out := make([]float64, len(cf.LS))
	if cf.N <= 0 {
		return out
	}
	inv := 1 / cf.N
	for i, v := range cf.LS {
		out[i] = v * inv
	}
	return out
}

// Variance returns σ² = SS/n − (LS/n)² per dimension, clamped to the
// variance floor so the result is always usable as a Gaussian covariance
// diagonal.
func (cf *CF) Variance() []float64 {
	out := make([]float64, len(cf.SS))
	if cf.N <= 0 {
		for i := range out {
			out[i] = VarianceFloor
		}
		return out
	}
	inv := 1 / cf.N
	for i := range cf.SS {
		m := cf.LS[i] * inv
		v := cf.SS[i]*inv - m*m
		if v < VarianceFloor {
			v = VarianceFloor
		}
		out[i] = v
	}
	return out
}

// Gaussian returns the Gaussian N(μ, σ²) summarised by the cluster
// feature — the mixture component an inner entry contributes to a
// probability density query.
func (cf *CF) Gaussian() Gaussian {
	return Gaussian{Mean: cf.Mean(), Var: cf.Variance()}
}

// Radius returns the root-mean-square distance of the summarised objects
// from their centroid, a standard compactness measure for cluster features.
func (cf *CF) Radius() float64 {
	if cf.N <= 0 {
		return 0
	}
	var s float64
	inv := 1 / cf.N
	for i := range cf.SS {
		m := cf.LS[i] * inv
		v := cf.SS[i]*inv - m*m
		if v > 0 {
			s += v
		}
	}
	return math.Sqrt(s)
}

// Validate checks internal consistency: finite components, matching
// dimensions and non-negative mass. It returns a descriptive error when the
// summary is broken, which the tree invariant checks rely on.
func (cf *CF) Validate() error {
	if len(cf.LS) != len(cf.SS) {
		return fmt.Errorf("stats: CF dims LS=%d SS=%d differ", len(cf.LS), len(cf.SS))
	}
	if math.IsNaN(cf.N) || math.IsInf(cf.N, 0) || cf.N < 0 {
		return fmt.Errorf("stats: CF has invalid count %v", cf.N)
	}
	for i := range cf.LS {
		if math.IsNaN(cf.LS[i]) || math.IsInf(cf.LS[i], 0) {
			return fmt.Errorf("stats: CF has non-finite LS[%d]", i)
		}
		if math.IsNaN(cf.SS[i]) || math.IsInf(cf.SS[i], 0) {
			return fmt.Errorf("stats: CF has non-finite SS[%d]", i)
		}
	}
	return nil
}
