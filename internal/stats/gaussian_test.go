package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianPDFMatchesClosedForm1D(t *testing.T) {
	g := Gaussian{Mean: []float64{2}, Var: []float64{4}}
	// N(2, 4) at x=2: 1/sqrt(2π·4)
	want := 1 / math.Sqrt(2*math.Pi*4)
	if got := g.PDF([]float64{2}); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF at mean = %v, want %v", got, want)
	}
	// At one standard deviation.
	want = math.Exp(-0.5) / math.Sqrt(2*math.Pi*4)
	if got := g.PDF([]float64{4}); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF at mean+σ = %v, want %v", got, want)
	}
}

func TestGaussianPDFFactorsOverDims(t *testing.T) {
	g := Gaussian{Mean: []float64{0, 1}, Var: []float64{1, 9}}
	g0 := Gaussian{Mean: []float64{0}, Var: []float64{1}}
	g1 := Gaussian{Mean: []float64{1}, Var: []float64{9}}
	x := []float64{0.3, -0.7}
	want := g0.PDF(x[:1]) * g1.PDF(x[1:])
	if got := g.PDF(x); math.Abs(got-want) > 1e-12*want {
		t.Errorf("product structure violated: %v vs %v", got, want)
	}
}

func TestNewGaussianValidation(t *testing.T) {
	if _, err := NewGaussian([]float64{0}, []float64{1, 2}); err == nil {
		t.Errorf("dimension mismatch accepted")
	}
	if _, err := NewGaussian([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Errorf("NaN mean accepted")
	}
	if _, err := NewGaussian([]float64{0}, []float64{math.Inf(1)}); err == nil {
		t.Errorf("Inf variance accepted")
	}
	g, err := NewGaussian([]float64{0}, []float64{0})
	if err != nil {
		t.Fatalf("zero variance rejected: %v", err)
	}
	if g.Var[0] < VarianceFloor {
		t.Errorf("zero variance not clamped: %v", g.Var[0])
	}
}

func TestMahalanobis(t *testing.T) {
	g := Gaussian{Mean: []float64{0, 0}, Var: []float64{1, 4}}
	if got := g.Mahalanobis2([]float64{1, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mahalanobis2 = %v, want 2", got)
	}
}

func TestKLSelfIsZero(t *testing.T) {
	g := Gaussian{Mean: []float64{1, -2}, Var: []float64{0.5, 3}}
	if got := KL(g, g); math.Abs(got) > 1e-12 {
		t.Errorf("KL(g,g) = %v, want 0", got)
	}
}

func TestKLKnownValue(t *testing.T) {
	// KL(N(0,1) || N(1,1)) = 0.5 per dimension.
	g := Gaussian{Mean: []float64{0}, Var: []float64{1}}
	h := Gaussian{Mean: []float64{1}, Var: []float64{1}}
	if got := KL(g, h); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("KL = %v, want 0.5", got)
	}
}

// Property: KL is non-negative for random diagonal Gaussians.
func TestKLNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		d := 1 + rng.Intn(6)
		g := randomGaussian(rng, d)
		h := randomGaussian(rng, d)
		if kl := KL(g, h); kl < -1e-9 {
			t.Fatalf("KL negative: %v for %v vs %v", kl, g, h)
		}
	}
}

// Property: symmetrised KL is symmetric.
func TestSymKLSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		g := randomGaussian(rng, 3)
		h := randomGaussian(rng, 3)
		if math.Abs(SymKL(g, h)-SymKL(h, g)) > 1e-9 {
			t.Fatalf("SymKL asymmetric")
		}
	}
}

func randomGaussian(rng *rand.Rand, d int) Gaussian {
	mean := make([]float64, d)
	variance := make([]float64, d)
	for i := 0; i < d; i++ {
		mean[i] = rng.NormFloat64() * 3
		variance[i] = 0.01 + rng.Float64()*5
	}
	return Gaussian{Mean: mean, Var: variance}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(empty) = %v, want -Inf", got)
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Stability: huge shifts must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	if math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Errorf("LogSumExp big = %v", got)
	}
	// All -Inf stays -Inf.
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(-Inf...) = %v", got)
	}
}

func TestLogSumExpMatchesNaive(t *testing.T) {
	f := func(a [6]float64) bool {
		xs := make([]float64, 0, 6)
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep values in a range where the naive sum is exact enough.
			xs = append(xs, math.Mod(v, 20))
		}
		var naive float64
		for _, x := range xs {
			naive += math.Exp(x)
		}
		got := LogSumExp(xs)
		return math.Abs(got-math.Log(naive)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	// d=1: h = σ (4/3)^(1/5) n^(-1/5).
	h := SilvermanBandwidth([]float64{2}, 100, 1)
	want := 2 * math.Pow(4.0/3.0, 0.2) * math.Pow(100, -0.2)
	if math.Abs(h[0]-want) > 1e-12 {
		t.Errorf("Silverman 1D = %v, want %v", h[0], want)
	}
	// Bandwidth shrinks with n.
	h1 := SilvermanBandwidth([]float64{1}, 10, 2)
	h2 := SilvermanBandwidth([]float64{1}, 10000, 2)
	if h2[0] >= h1[0] {
		t.Errorf("bandwidth should shrink with n: %v vs %v", h1[0], h2[0])
	}
	// Degenerate sigma gets floored, n<1 clamps.
	h = SilvermanBandwidth([]float64{0}, 0, 1)
	if h[0] <= 0 {
		t.Errorf("degenerate bandwidth %v", h[0])
	}
	if ScalarSilverman(0, 0) <= 0 {
		t.Errorf("ScalarSilverman degenerate")
	}
}
