package stats

import (
	"math"
	"testing"
)

func TestDecayFactor(t *testing.T) {
	if f := DecayFactor(0, 10); f != 1 {
		t.Errorf("λ=0 factor %v, want 1", f)
	}
	if f := DecayFactor(1, 0); f != 1 {
		t.Errorf("Δe=0 factor %v, want 1", f)
	}
	if f := DecayFactor(1, 1); f != 0.5 {
		t.Errorf("λ=1 Δe=1 factor %v, want 0.5", f)
	}
	if f := DecayFactor(0.5, 4); f != 0.25 {
		t.Errorf("λ=0.5 Δe=4 factor %v, want 0.25", f)
	}
	// Extreme deltas stay positive (never underflow to exactly 0).
	if f := DecayFactor(10, 1<<40); f <= 0 || math.IsNaN(f) {
		t.Errorf("extreme decay factor %v must stay positive", f)
	}
}

func TestGrowthFactorInverseAndClamp(t *testing.T) {
	for _, tc := range []struct {
		lambda float64
		epochs int64
	}{{1, 1}, {0.5, 6}, {2, 3}} {
		g := GrowthFactor(tc.lambda, tc.epochs)
		d := DecayFactor(tc.lambda, tc.epochs)
		if math.Abs(g*d-1) > 1e-12 {
			t.Errorf("λ=%v Δe=%d: growth·decay = %v, want 1", tc.lambda, tc.epochs, g*d)
		}
	}
	if g := GrowthFactor(10, 1<<40); math.IsInf(g, 0) || math.IsNaN(g) {
		t.Errorf("extreme growth factor %v must stay finite", g)
	}
}
