package stats

import "math"

// FrozenGaussian is an evaluation-optimised snapshot of a diagonal
// Gaussian. A cluster feature's Gaussian is immutable between inserts, yet
// the anytime query path evaluates it at every query — so the quantities a
// log-density needs are precomputed once here: the mean, the inverse
// variances (turning the per-dimension division into a multiply) and the
// log-normaliser
//
//	logNorm = −½ (D·ln 2π + Σ_d ln σ²_d),
//
// which removes every math.Log call from the hot path. LogPDF and
// LogPDFObs run one fused loop and allocate nothing.
//
// Variances are clamped to VarianceFloor at freeze time, exactly as
// Gaussian.LogPDF clamps on the fly, so a frozen Gaussian agrees with its
// source to floating-point reassociation error (see the equivalence tests).
type FrozenGaussian struct {
	Mean   []float64
	InvVar []float64 // 1/σ²_d, after flooring
	LogVar []float64 // ln σ²_d, after flooring (needed for marginals)
	// LogN is ln n of the source cluster feature (0 when frozen from bare
	// moments) — the mixture weight numerator, precomputed so the query
	// path does not take a log per entry.
	LogN float64
	// logNorm is −½(D·ln 2π + Σ ln σ²) — the full-dimensional normaliser.
	logNorm float64
}

// Dim returns the dimensionality of the frozen Gaussian.
func (f *FrozenGaussian) Dim() int { return len(f.Mean) }

// LogNorm returns the precomputed full-dimensional log-normaliser
// −½(D·ln 2π + Σ ln σ²) — exposed so flat structure-of-arrays mirrors
// can copy a frozen Gaussian's constants without re-deriving them.
func (f *FrozenGaussian) LogNorm() float64 { return f.logNorm }

// FrozenFromMoments builds a frozen Gaussian from mean and variance
// vectors. The mean slice is retained (not copied); the variance slice is
// only read. Variances are clamped to the floor.
func FrozenFromMoments(mean, variance []float64) FrozenGaussian {
	f := FrozenGaussian{
		Mean:   mean,
		InvVar: make([]float64, len(variance)),
		LogVar: make([]float64, len(variance)),
	}
	var logDet float64
	for i, v := range variance {
		if v < VarianceFloor {
			v = VarianceFloor
		}
		f.InvVar[i] = 1 / v
		lv := math.Log(v)
		f.LogVar[i] = lv
		logDet += lv
	}
	f.logNorm = -0.5 * (float64(len(variance))*log2Pi + logDet)
	return f
}

// Freeze returns the frozen form of the Gaussian summarised by the cluster
// feature — the precomputed equivalent of cf.Gaussian() — with LogN set to
// the log of the feature's count.
func Freeze(cf *CF) FrozenGaussian {
	f := FrozenFromMoments(cf.Mean(), cf.Variance())
	if cf.N > 0 {
		f.LogN = math.Log(cf.N)
	}
	return f
}

// Freeze returns the frozen form of g.
func (g Gaussian) Freeze() FrozenGaussian {
	return FrozenFromMoments(g.Mean, g.Var)
}

// Gaussian reconstructs the ordinary form (mainly for tests and reports).
func (f *FrozenGaussian) Gaussian() Gaussian {
	variance := make([]float64, len(f.InvVar))
	for i, iv := range f.InvVar {
		variance[i] = 1 / iv
	}
	return Gaussian{Mean: f.Mean, Var: variance}
}

// LogPDF returns the log density of x under the frozen Gaussian. It
// performs one multiply-accumulate loop and no allocation.
func (f *FrozenGaussian) LogPDF(x []float64) float64 {
	var quad float64
	mean, inv := f.Mean, f.InvVar
	for i, m := range mean {
		d := x[i] - m
		quad += d * d * inv[i]
	}
	return f.logNorm - 0.5*quad
}

// LogPDFObs returns the log marginal density restricted to the observed
// dimensions obs (nil = all dimensions, an empty obs yields 0 — the same
// contract as Gaussian.LogPDFObs).
func (f *FrozenGaussian) LogPDFObs(x []float64, obs []int) float64 {
	if obs == nil {
		return f.LogPDF(x)
	}
	var quad, logDet float64
	for _, i := range obs {
		d := x[i] - f.Mean[i]
		quad += d * d * f.InvVar[i]
		logDet += f.LogVar[i]
	}
	return -0.5 * (float64(len(obs))*log2Pi + logDet + quad)
}
