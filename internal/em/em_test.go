package em

import (
	"math"
	"math/rand"
	"testing"
)

// threeBlobs generates well-separated clusters with known membership.
func threeBlobs(n int, seed int64) (points [][]float64, truth []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for i := 0; i < n; i++ {
		c := i % 3
		points = append(points, []float64{
			centers[c][0] + rng.NormFloat64()*0.5,
			centers[c][1] + rng.NormFloat64()*0.5,
		})
		truth = append(truth, c)
	}
	return points, truth
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, Options{K: 2}); err == nil {
		t.Errorf("empty input accepted")
	}
	if _, err := Fit([][]float64{{}}, Options{K: 1}); err == nil {
		t.Errorf("zero-dim input accepted")
	}
	if _, err := Fit([][]float64{{1}}, Options{K: 0}); err == nil {
		t.Errorf("K=0 accepted")
	}
}

func TestFitRecoversSeparatedClusters(t *testing.T) {
	points, truth := threeBlobs(300, 1)
	res, err := Fit(points, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3", res.K())
	}
	// Assignment must be consistent with the truth up to relabeling:
	// within each true cluster, all points share one EM label.
	labelOf := map[int]int{}
	for i, a := range res.Assign {
		c := truth[i]
		if prev, ok := labelOf[c]; ok {
			if prev != a {
				t.Fatalf("true cluster %d split across EM components", c)
			}
		} else {
			labelOf[c] = a
		}
	}
	if len(labelOf) != 3 {
		t.Fatalf("collapsed clusters: %v", labelOf)
	}
}

// The EM guarantee: log-likelihood never decreases across iterations.
func TestFitLogLikelihoodMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points := make([][]float64, 400)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 2, rng.Float64()}
	}
	res, err := Fit(points, Options{K: 5, Seed: 7, MaxIters: 40, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.LogLikPath); i++ {
		if res.LogLikPath[i] < res.LogLikPath[i-1]-1e-6*math.Abs(res.LogLikPath[i-1]) {
			t.Fatalf("log-likelihood decreased at iter %d: %v → %v",
				i, res.LogLikPath[i-1], res.LogLikPath[i])
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	points, _ := threeBlobs(150, 3)
	a, err := Fit(points, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(points, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed, different assignment at %d", i)
		}
	}
	c, err := Fit(points, Options{K: 3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; only determinism is asserted
}

func TestFitWeightsNormalised(t *testing.T) {
	points, _ := threeBlobs(120, 4)
	res, err := Fit(points, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range res.Weights {
		if w <= 0 {
			t.Errorf("non-positive surviving weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestFitKGreaterThanN(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	res, err := Fit(points, Options{K: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() > 3 {
		t.Errorf("more components than points: %d", res.K())
	}
}

func TestFitIdenticalPoints(t *testing.T) {
	points := make([][]float64, 50)
	for i := range points {
		points[i] = []float64{3, 3}
	}
	res, err := Fit(points, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All mass should collapse into few (typically 1) components with
	// floored variance — and never NaN.
	for _, c := range res.Comps {
		for k := range c.Mean {
			if math.IsNaN(c.Mean[k]) || math.IsNaN(c.Var[k]) || c.Var[k] <= 0 {
				t.Fatalf("degenerate component: %+v", c)
			}
		}
	}
}

func TestClustersPartition(t *testing.T) {
	points, _ := threeBlobs(90, 5)
	res, err := Fit(points, Options{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(points))
	for _, cl := range res.Clusters() {
		if len(cl) == 0 {
			t.Fatalf("empty cluster returned")
		}
		for _, idx := range cl {
			if seen[idx] {
				t.Fatalf("index %d in two clusters", idx)
			}
			seen[idx] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d unassigned", i)
		}
	}
}

func TestKMeans(t *testing.T) {
	points, truth := threeBlobs(300, 6)
	assign, centers := KMeans(points, 3, 50, 1)
	if len(centers) != 3 {
		t.Fatalf("centers = %d", len(centers))
	}
	labelOf := map[int]int{}
	for i, a := range assign {
		c := truth[i]
		if prev, ok := labelOf[c]; ok && prev != a {
			t.Fatalf("k-means split true cluster %d", c)
		}
		labelOf[c] = a
	}
	// Degenerate inputs.
	assign, centers = KMeans(points[:2], 5, 10, 1)
	if len(assign) != 2 || len(centers) != 2 {
		t.Fatalf("k>n handling wrong: %d assigns, %d centers", len(assign), len(centers))
	}
}
