// Package em implements the expectation-maximisation algorithm for
// Gaussian mixture models with diagonal covariances (Dempster, Laird &
// Rubin [8]), the machine-learning workhorse behind the paper's EMTopDown
// bulk loading (Section 3.1). It also exposes the k-means++ seeding and a
// plain k-means fallback used when EM degenerates.
package em

import (
	"fmt"
	"math"
	"math/rand"

	"bayestree/internal/stats"
)

// Options configures a fit.
type Options struct {
	// K is the requested number of components (the bulk loader passes the
	// tree fanout M).
	K int
	// MaxIters bounds the EM loop; zero means 100.
	MaxIters int
	// Tol is the relative log-likelihood improvement below which the loop
	// stops; zero means 1e-4.
	Tol float64
	// Seed makes runs reproducible.
	Seed int64
	// MinWeight is the responsibility mass below which a component is
	// dropped (components that explain almost nothing). Zero means 1e-6·n.
	MinWeight float64
}

// Result is a fitted mixture plus hard assignments of the input points.
type Result struct {
	Weights    []float64
	Comps      []stats.Gaussian
	Assign     []int     // hard assignment per input point
	LogLik     float64   // final total log-likelihood
	LogLikPath []float64 // per-iteration log-likelihood (monotone non-decreasing)
	Iters      int
}

// K returns the number of surviving components.
func (r *Result) K() int { return len(r.Comps) }

// Clusters groups the input indices by their hard assignment; empty
// clusters are omitted.
func (r *Result) Clusters() [][]int {
	buckets := make(map[int][]int)
	for i, a := range r.Assign {
		buckets[a] = append(buckets[a], i)
	}
	out := make([][]int, 0, len(buckets))
	for j := 0; j < len(r.Comps); j++ {
		if len(buckets[j]) > 0 {
			out = append(out, buckets[j])
		}
	}
	return out
}

// Fit runs EM on the points. It may return fewer than K components when
// some collapse (the paper relies on this: "If the EM returns less than m
// clusters, the biggest resulting cluster is split again"). It returns an
// error only for unusable inputs; numerical degeneracies are handled by
// dropping components.
func Fit(points [][]float64, opts Options) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("em: no points")
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("em: zero-dimensional points")
	}
	k := opts.K
	if k < 1 {
		return nil, fmt.Errorf("em: K must be ≥ 1, got %d", k)
	}
	if k > n {
		k = n
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	minWeight := opts.MinWeight
	if minWeight <= 0 {
		minWeight = 1e-6 * float64(n)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Seed with k-means++ centres and a shared initial variance.
	centers := kMeansPlusPlus(points, k, rng)
	globalVar := globalVariance(points, d)
	comps := make([]stats.Gaussian, k)
	weights := make([]float64, k)
	for j := 0; j < k; j++ {
		comps[j] = stats.Gaussian{Mean: append([]float64(nil), centers[j]...), Var: append([]float64(nil), globalVar...)}
		weights[j] = 1 / float64(k)
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	logs := make([]float64, k)
	var path []float64
	prevLL := math.Inf(-1)
	iters := 0
	for iters < maxIters {
		iters++
		// E step.
		var ll float64
		for i, x := range points {
			for j := 0; j < k; j++ {
				if weights[j] <= 0 {
					logs[j] = math.Inf(-1)
					continue
				}
				logs[j] = math.Log(weights[j]) + comps[j].LogPDF(x)
			}
			lse := stats.LogSumExp(logs)
			ll += lse
			for j := 0; j < k; j++ {
				if math.IsInf(logs[j], -1) {
					resp[i][j] = 0
				} else {
					resp[i][j] = math.Exp(logs[j] - lse)
				}
			}
		}
		path = append(path, ll)
		// M step.
		for j := 0; j < k; j++ {
			var nj float64
			for i := 0; i < n; i++ {
				nj += resp[i][j]
			}
			if nj < minWeight {
				weights[j] = 0 // drop degenerate component
				continue
			}
			mean := make([]float64, d)
			for i, x := range points {
				r := resp[i][j]
				if r == 0 {
					continue
				}
				for c := 0; c < d; c++ {
					mean[c] += r * x[c]
				}
			}
			for c := 0; c < d; c++ {
				mean[c] /= nj
			}
			variance := make([]float64, d)
			for i, x := range points {
				r := resp[i][j]
				if r == 0 {
					continue
				}
				for c := 0; c < d; c++ {
					dm := x[c] - mean[c]
					variance[c] += r * dm * dm
				}
			}
			for c := 0; c < d; c++ {
				variance[c] /= nj
				if variance[c] < stats.VarianceFloor {
					variance[c] = stats.VarianceFloor
				}
			}
			weights[j] = nj / float64(n)
			comps[j] = stats.Gaussian{Mean: mean, Var: variance}
		}
		renormalize(weights)
		if ll-prevLL <= tol*math.Max(1, math.Abs(prevLL)) && iters > 1 {
			prevLL = math.Max(prevLL, ll)
			break
		}
		prevLL = ll
	}

	// Compact out dropped components and compute hard assignments.
	keep := make([]int, 0, k)
	for j := 0; j < k; j++ {
		if weights[j] > 0 {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 {
		// Total collapse: model everything with one component.
		cf := stats.CFOfAll(points, d)
		g := cf.Gaussian()
		res := &Result{
			Weights: []float64{1},
			Comps:   []stats.Gaussian{g},
			Assign:  make([]int, n),
			LogLik:  prevLL, LogLikPath: path, Iters: iters,
		}
		return res, nil
	}
	remap := make(map[int]int, len(keep))
	outW := make([]float64, len(keep))
	outC := make([]stats.Gaussian, len(keep))
	for newJ, oldJ := range keep {
		remap[oldJ] = newJ
		outW[newJ] = weights[oldJ]
		outC[newJ] = comps[oldJ]
	}
	renormalize(outW)
	assign := make([]int, n)
	for i := range points {
		best, bestV := keep[0], math.Inf(-1)
		for _, j := range keep {
			v := resp[i][j]
			if v > bestV {
				best, bestV = j, v
			}
		}
		assign[i] = remap[best]
	}
	return &Result{Weights: outW, Comps: outC, Assign: assign, LogLik: prevLL, LogLikPath: path, Iters: iters}, nil
}

func renormalize(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	if s <= 0 {
		return
	}
	for i := range w {
		w[i] /= s
	}
}

// kMeansPlusPlus picks k starting centres with the k-means++ D² weighting.
func kMeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, first)
	d2 := make([]float64, n)
	for i, x := range points {
		d2[i] = sqDist(x, first)
	}
	for len(centers) < k {
		var total float64
		for _, v := range d2 {
			total += v
		}
		var next []float64
		if total <= 0 {
			next = points[rng.Intn(n)]
		} else {
			u := rng.Float64() * total
			var acc float64
			idx := n - 1
			for i, v := range d2 {
				acc += v
				if u <= acc {
					idx = i
					break
				}
			}
			next = points[idx]
		}
		centers = append(centers, next)
		for i, x := range points {
			if d := sqDist(x, next); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// globalVariance returns the per-dimension variance of all points, used as
// the initial covariance for every component.
func globalVariance(points [][]float64, d int) []float64 {
	cf := stats.CFOfAll(points, d)
	return cf.Variance()
}

// KMeans runs Lloyd's algorithm with k-means++ seeding and returns hard
// assignments and centres. It is used as a splitting fallback and directly
// tested as a substrate.
func KMeans(points [][]float64, k int, maxIters int, seed int64) (assign []int, centers [][]float64) {
	n := len(points)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	rng := rand.New(rand.NewSource(seed))
	centers = kMeansPlusPlus(points, k, rng)
	assign = make([]int, n)
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, x := range points {
			best, bestD := 0, math.Inf(1)
			for j, c := range centers {
				if d := sqDist(x, c); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		d := len(points[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for j := range sums {
			sums[j] = make([]float64, d)
		}
		for i, x := range points {
			j := assign[i]
			counts[j]++
			for c := 0; c < d; c++ {
				sums[j][c] += x[c]
			}
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				centers[j] = points[rng.Intn(n)]
				continue
			}
			for c := 0; c < d; c++ {
				sums[j][c] /= float64(counts[j])
			}
			centers[j] = sums[j]
		}
		if !changed {
			break
		}
	}
	return assign, centers
}
