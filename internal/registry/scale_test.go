package registry

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"bayestree/internal/loadgen"
)

// TestThousandTenantsUnderZipfLoad is the headline acceptance run:
// 1000+ named tenants served from one process through the loadgen
// Zipf-tenant workload while the resident cap stays far below the
// tenant count — so the measured phase continuously pages the cold
// tail in and out. The run must stay error-free: every 404/503 or
// half-closed engine would land in the report's ErrorRate.
func TestThousandTenantsUnderZipfLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-tenant scale run skipped in -short mode")
	}
	const tenants = 1000
	const cap = 32
	r := openTestRegistry(t, t.TempDir(), func(o *Options) {
		o.MaxResident = cap
		o.FsyncEvery = 5 * time.Millisecond
	})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Scenario{
		Target:      ts.URL,
		Workload:    loadgen.WorkloadClassify,
		Proc:        loadgen.Poisson{Rate: 700},
		Duration:    4 * time.Second,
		Mix:         loadgen.Mix{InsertFraction: 0.3, Budget: 16},
		Seed:        7,
		Tenants:     tenants,
		TenantSkew:  1.2,
		Warmup:      2 * tenants,
		Concurrency: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors under tenant churn: %d of %d (rate %.4f)", rep.Errors, rep.Requests, rep.ErrorRate)
	}
	if got := r.Tenants(); got < tenants {
		t.Fatalf("tenant population: %d, want >= %d", got, tenants)
	}
	if got := r.Resident(); got > cap {
		t.Fatalf("resident %d exceeds cap %d", got, cap)
	}
	st := r.Stats()
	if st.Evictions == 0 || st.ColdLoads <= tenants {
		t.Fatalf("no paging happened under Zipf skew: %+v", st)
	}
	t.Logf("scale: %d tenants, %d resident (cap %d), %d evictions, %d cold loads (mean %.2fms max %.2fms), %d reqs at %.0f rps, p99 %.2fms",
		r.Tenants(), r.Resident(), cap, st.Evictions, st.ColdLoads,
		st.ColdLoadMeanMs, st.ColdLoadMaxMs, rep.Requests, rep.AchievedRPS,
		rep.Latency["all"].P99Ms)
}
